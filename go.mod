module durassd

go 1.23
