module durassd

go 1.22
