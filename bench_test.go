// Benchmarks that regenerate every table and figure of the paper's
// evaluation at reduced scale, asserting the qualitative shapes the paper
// reports: who wins, by roughly what factor, where crossovers fall.
//
// Run with:
//
//	go test -bench=. -benchmem -benchtime=1x
//
// (each iteration executes a complete scaled experiment; -benchtime=1x is
// the intended way to run the heavier ones). The cmd/ tools run the same
// experiments at larger scale with full output tables.
package durassd_test

import (
	"testing"

	"durassd/internal/dbsim/index"
	"durassd/internal/fio"
	"durassd/internal/host"
	"durassd/internal/innodb"
	"durassd/internal/pgsql"
	"durassd/internal/repro"
	"durassd/internal/sim"
	"durassd/internal/ssd"
	"durassd/internal/storage"
	"durassd/internal/workload/linkbench"
)

// BenchmarkTable1 regenerates Table 1: effect of fsync frequency and the
// flush-cache command on 4 KB random-write IOPS across HDD, SSD-A, SSD-B
// and DuraSSD.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := repro.Table1(repro.Table1Config{Scale: 32, OpsPerCell: 600, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		dura := res.IOPS["DuraSSD/ON"]
		nb := res.IOPS["DuraSSD/ON(NoBarrier)"]
		hdd := res.IOPS["HDD/ON"]
		ssdA := res.IOPS["SSD-A/ON"]

		// Paper shapes: SSDs gain >13x from eliminating per-write fsync,
		// the disk <10x; NoBarrier flattens the sweep near its ceiling.
		if gain := dura[0] / dura[1]; gain < 13 {
			b.Fatalf("DuraSSD fsync gain %.1fx, paper reports ~68x", gain)
		}
		if gain := ssdA[0] / ssdA[1]; gain < 10 {
			b.Fatalf("SSD-A fsync gain %.1fx, paper reports ~46x", gain)
		}
		if gain := hdd[0] / hdd[1]; gain > 12 {
			b.Fatalf("HDD fsync gain %.1fx, paper reports <7x", gain)
		}
		if nb[1] < 0.4*nb[0] {
			b.Fatalf("NoBarrier row not flat: fsync-1 %.0f vs no-fsync %.0f", nb[1], nb[0])
		}
		b.ReportMetric(dura[0], "dura_nofsync_iops")
		b.ReportMetric(dura[1], "dura_fsync1_iops")
		b.ReportMetric(nb[1], "dura_nobarrier_fsync1_iops")
	}
}

// BenchmarkTable2 regenerates Table 2: page-size effect on IOPS for
// DuraSSD and the disk.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := repro.Table2(repro.Table2Config{Scale: 32, OpsPerCell: 2000, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		ro := res.IOPS[repro.T2ReadOnly128]
		nb := res.IOPS[repro.T2Write128NoBa]
		hw := res.IOPS[repro.T2HDDWrite128]
		// 16 KB -> 4 KB roughly triples read IOPS (paper: 29.9k -> 89.1k).
		if ratio := ro[4*storage.KB] / ro[16*storage.KB]; ratio < 2.0 {
			b.Fatalf("read-only 4KB/16KB ratio %.2f, paper reports ~3x", ratio)
		}
		// No-barrier writes gain >2x (paper: 13.4k -> 49k).
		if ratio := nb[4*storage.KB] / nb[16*storage.KB]; ratio < 1.8 {
			b.Fatalf("no-barrier write 4KB/16KB ratio %.2f, paper reports ~3.6x", ratio)
		}
		// The disk barely notices page size (paper: 428 -> 444).
		if ratio := hw[4*storage.KB] / hw[16*storage.KB]; ratio > 1.5 {
			b.Fatalf("HDD write 4KB/16KB ratio %.2f, paper reports ~1.04x", ratio)
		}
		b.ReportMetric(ro[4*storage.KB], "read4k_iops")
		b.ReportMetric(nb[4*storage.KB], "nobarrier_write4k_iops")
	}
}

// BenchmarkFig5 regenerates Figure 5: LinkBench TPS under the four
// barrier × double-write configurations and three page sizes.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := repro.Fig5(repro.LinkBenchConfig{Scale: 512, Requests: 30_000, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		onon := res.TPS["ON/ON"]
		onoff := res.TPS["ON/OFF"]
		offoff := res.TPS["OFF/OFF"]
		// Headline: best (OFF/OFF 4KB) vs worst (ON/ON 16KB) > 10x
		// (paper: >20x).
		headline := offoff[4*storage.KB] / onon[16*storage.KB]
		if headline < 10 {
			b.Fatalf("best/worst = %.1fx, paper reports >20x", headline)
		}
		// Double-write off roughly doubles throughput when barriers are on.
		if ratio := onoff[4*storage.KB] / onon[4*storage.KB]; ratio < 1.4 {
			b.Fatalf("ON/OFF vs ON/ON = %.2fx, paper reports ~2x", ratio)
		}
		// With barriers off, smaller pages win.
		if offoff[4*storage.KB] <= offoff[16*storage.KB] {
			b.Fatalf("OFF/OFF 4KB (%.0f) not above 16KB (%.0f)",
				offoff[4*storage.KB], offoff[16*storage.KB])
		}
		b.ReportMetric(headline, "best_vs_worst_x")
		b.ReportMetric(offoff[4*storage.KB], "offoff_4k_tps")
		b.ReportMetric(onon[16*storage.KB], "onon_16k_tps")
	}
}

// BenchmarkFig6 regenerates Figure 6: buffer miss ratio and TPS versus
// buffer pool size (OFF/OFF).
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := repro.Fig6(repro.LinkBenchConfig{Scale: 512, Requests: 25_000, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		m4 := res.Miss[4*storage.KB]
		// Miss ratio falls as the pool grows, and 4 KB pages pollute less
		// than 16 KB ones at the full pool.
		if m4[10] >= m4[2] {
			b.Fatalf("4KB miss ratio did not fall with pool size: %.1f%% -> %.1f%%", m4[2], m4[10])
		}
		if res.Miss[4*storage.KB][10] >= res.Miss[16*storage.KB][10] {
			b.Fatalf("4KB miss (%.1f%%) not below 16KB (%.1f%%) at 10GB",
				res.Miss[4*storage.KB][10], res.Miss[16*storage.KB][10])
		}
		// TPS grows with the pool and 4 KB stays on top.
		t4 := res.TPS[4*storage.KB]
		if t4[10] <= t4[2]*0.95 {
			b.Fatalf("4KB TPS did not grow with pool size: %.0f -> %.0f", t4[2], t4[10])
		}
		if res.TPS[4*storage.KB][10] <= res.TPS[16*storage.KB][10] {
			b.Fatalf("4KB TPS not above 16KB at 10GB")
		}
		b.ReportMetric(m4[10], "miss4k_10gb_pct")
		b.ReportMetric(t4[10], "tps4k_10gb")
	}
}

// BenchmarkTable3 regenerates Table 3: LinkBench latency distributions
// under the MySQL default configuration versus the DuraSSD-optimal one.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := repro.Table3(repro.LinkBenchConfig{Scale: 512, Requests: 30_000, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		var worstP99Gain, meanGainMin = 0.0, 1e18
		for _, op := range linkOps() {
			d, bt := res.Default.Hist(op), res.Best.Hist(op)
			if d.Count() == 0 || bt.Count() == 0 {
				continue
			}
			p99Gain := float64(d.Percentile(99)) / float64(bt.Percentile(99))
			if p99Gain > worstP99Gain {
				worstP99Gain = p99Gain
			}
			meanGain := float64(d.Mean()) / float64(bt.Mean())
			if meanGain < meanGainMin {
				meanGainMin = meanGain
			}
		}
		// Paper: P99 improves by roughly two orders of magnitude; means by
		// 5-45x. Require at least 20x P99 somewhere and >2x mean everywhere.
		if worstP99Gain < 20 {
			b.Fatalf("best P99 improvement %.1fx, paper reports ~100x", worstP99Gain)
		}
		if meanGainMin < 2 {
			b.Fatalf("weakest mean improvement %.1fx, paper reports >=5x", meanGainMin)
		}
		b.ReportMetric(worstP99Gain, "p99_gain_max_x")
		b.ReportMetric(meanGainMin, "mean_gain_min_x")
	}
}

// BenchmarkTable4 regenerates Table 4: TPC-C tpmC with barriers on vs off
// across page sizes on the commercial-style engine.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := repro.Table4(repro.TPCCConfig{Scale: 256, Requests: 25_000, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		on, off := res.TpmC["On"], res.TpmC["Off"]
		// Barrier off gains >8x (paper: 15.3-22.8x).
		for _, ps := range repro.PageSizes {
			if gain := off[ps] / on[ps]; gain < 8 {
				b.Fatalf("%dKB barrier gain %.1fx, paper reports >15x", ps/storage.KB, gain)
			}
		}
		// Smaller pages win when barriers are off (paper: 1.8-2.3x).
		if ratio := off[4*storage.KB] / off[16*storage.KB]; ratio < 1.5 {
			b.Fatalf("barrier-off 4KB/16KB = %.2fx, paper reports ~2.3x", ratio)
		}
		b.ReportMetric(off[4*storage.KB], "tpmC_off_4k")
		b.ReportMetric(on[16*storage.KB], "tpmC_on_16k")
	}
}

// BenchmarkTable5 regenerates Table 5: Couchbase-style YCSB throughput
// versus fsync batch size, barriers on and off.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := repro.Table5(repro.YCSBConfig{Operations: 30_000, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		on100 := res.OPS["On"]["100"]
		off100 := res.OPS["Off"]["100"]
		// Barriers on: batch-100 is >5x batch-1 (paper: >20x).
		if gain := on100[100] / on100[1]; gain < 5 {
			b.Fatalf("barrier-on batch gain %.1fx, paper reports >20x", gain)
		}
		// Barriers off: the gap narrows to ~2x (paper: 2.1x).
		if gain := off100[100] / off100[1]; gain < 1.3 || gain > 4 {
			b.Fatalf("barrier-off batch gain %.1fx, paper reports ~2.1x", gain)
		}
		// At batch-1, turning barriers off is a ~10x win (paper: ~12x).
		if gain := off100[1] / on100[1]; gain < 4 {
			b.Fatalf("batch-1 barrier-off gain %.1fx, paper reports ~12x", gain)
		}
		b.ReportMetric(on100[1], "ops_on_batch1")
		b.ReportMetric(off100[1], "ops_off_batch1")
	}
}

// --- device micro-benchmarks and design-choice ablations ---

func newBenchRig(b *testing.B, prof ssd.Profile) (*sim.Engine, *host.FS) {
	b.Helper()
	eng := sim.New()
	dev, err := ssd.New(eng, prof)
	if err != nil {
		b.Fatal(err)
	}
	return eng, host.NewFS(dev, false)
}

// BenchmarkDeviceRandomWrite4K measures single-thread cached 4 KB random
// writes on DuraSSD (the Table 1 fast path), reporting simulated IOPS.
func BenchmarkDeviceRandomWrite4K(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng, fs := newBenchRig(b, ssd.DuraSSD(32))
		res, err := fio.Run(eng, fs, fio.Job{
			Name: "bench", BlockBytes: 4 * storage.KB, Ops: 3000,
			FilePages: fs.Device().Pages() / 2, Preload: true, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.IOPS(), "sim_iops")
	}
}

// BenchmarkAblationOverProvisioning compares sustained random-write IOPS at
// 12% vs 28% FTL over-provisioning: the GC headroom DESIGN.md calls out.
func BenchmarkAblationOverProvisioning(b *testing.B) {
	run := func(op int) float64 {
		prof := ssd.DuraSSD(32)
		prof.FTL.OverProvisionPct = op
		eng, fs := newBenchRig(b, prof)
		res, err := fio.Run(eng, fs, fio.Job{
			Name: "op", BlockBytes: 4 * storage.KB, Ops: 4000,
			FilePages: fs.Device().Pages() * 4 / 5, Preload: true, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.IOPS()
	}
	for i := 0; i < b.N; i++ {
		lean, rich := run(12), run(28)
		if rich < lean {
			// More OP must never hurt sustained writes at high fill.
			b.Fatalf("OP 28%% (%.0f IOPS) slower than OP 12%% (%.0f IOPS)", rich, lean)
		}
		b.ReportMetric(lean, "iops_op12")
		b.ReportMetric(rich, "iops_op28")
	}
}

// BenchmarkAblationFlushWorkers compares the flusher exploiting 4 vs 32
// NAND planes: the internal-parallelism argument of paper §2.3.
func BenchmarkAblationFlushWorkers(b *testing.B) {
	run := func(workers int) float64 {
		prof := ssd.DuraSSD(32)
		prof.Cache.FlushWorkers = workers
		eng, fs := newBenchRig(b, prof)
		res, err := fio.Run(eng, fs, fio.Job{
			Name: "fw", Threads: 32, BlockBytes: 4 * storage.KB, Ops: 6000,
			FilePages: fs.Device().Pages() / 2, Preload: true, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.IOPS()
	}
	for i := 0; i < b.N; i++ {
		narrow, wide := run(4), run(32)
		if wide < narrow {
			b.Fatalf("32 flush workers (%.0f IOPS) slower than 4 (%.0f IOPS)", wide, narrow)
		}
		b.ReportMetric(narrow, "iops_4workers")
		b.ReportMetric(wide, "iops_32workers")
	}
}

func linkOps() []linkbench.OpType { return linkbench.OpTypes() }

// BenchmarkAblationRedundantWrites compares the three torn-page-protection
// strategies of paper §2.1 on the same update workload with write barriers
// ON (where the strategies differ most): InnoDB's double-write buffer,
// PostgreSQL's full-page writes, and none (safe only on DuraSSD).
func BenchmarkAblationRedundantWrites(b *testing.B) {
	updatesPerSec := func(strategy string) float64 {
		eng := sim.New()
		dev, err := ssd.New(eng, ssd.DuraSSD(16))
		if err != nil {
			b.Fatal(err)
		}
		fs := host.NewFS(dev, true)
		const updates = 2000
		var run func(p *sim.Proc) error
		switch strategy {
		case "dwb", "none-innodb":
			e, err := innodb.Open(eng, fs, fs, innodb.Config{
				PageBytes: 4 * storage.KB, BufferBytes: 512 * storage.KB,
				DoubleWrite: strategy == "dwb",
				DataPages:   30_000, LogFilePages: 6_000, LogFiles: 1,
				CleanerInterval: -1, // evictions pay the strategy cost directly
			})
			if err != nil {
				b.Fatal(err)
			}
			tbl, err := e.CreateTable("t", index.Config{RowBytes: 200, MaxRows: 100_000})
			if err != nil {
				b.Fatal(err)
			}
			if err := tbl.BulkLoad(50_000); err != nil {
				b.Fatal(err)
			}
			run = func(p *sim.Proc) error {
				defer e.Close()
				for i := int64(0); i < updates/32; i++ {
					tx := e.Begin()
					for j := int64(0); j < 32; j++ {
						if err := tx.Update(p, tbl, (i*32+j)*131%50_000); err != nil {
							return err
						}
					}
					if err := tx.Commit(p); err != nil {
						return err
					}
				}
				return e.FlushAll(p)
			}
		case "fpw":
			e, err := pgsql.Open(eng, fs, fs, pgsql.Config{
				PageBytes: 4 * storage.KB, BufferBytes: 512 * storage.KB,
				FullPageWrites: true, DataPages: 30_000,
				LogFilePages: 12_000, LogFiles: 1,
				CleanerInterval: -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			tbl, err := e.CreateTable("t", index.Config{RowBytes: 200, MaxRows: 100_000})
			if err != nil {
				b.Fatal(err)
			}
			if err := tbl.BulkLoad(50_000); err != nil {
				b.Fatal(err)
			}
			run = func(p *sim.Proc) error {
				defer e.Close()
				for i := int64(0); i < updates/32; i++ {
					tx := e.Begin()
					for j := int64(0); j < 32; j++ {
						if err := tx.Update(p, tbl, (i*32+j)*131%50_000); err != nil {
							return err
						}
					}
					if err := tx.Commit(p); err != nil {
						return err
					}
				}
				return e.FlushAll(p)
			}
		}
		var rerr error
		start := eng.Now()
		eng.Go("bench", func(p *sim.Proc) { rerr = run(p) })
		eng.Run()
		if rerr != nil {
			b.Fatal(rerr)
		}
		return float64(updates) / (eng.Now() - start).Seconds()
	}
	for i := 0; i < b.N; i++ {
		none := updatesPerSec("none-innodb")
		dwb := updatesPerSec("dwb")
		fpw := updatesPerSec("fpw")
		// Dropping redundant writes must win over both software schemes.
		if none < dwb || none < fpw {
			b.Fatalf("no-redundancy (%.0f/s) not fastest (dwb %.0f/s, fpw %.0f/s)", none, dwb, fpw)
		}
		b.ReportMetric(none, "updates_none")
		b.ReportMetric(dwb, "updates_dwb")
		b.ReportMetric(fpw, "updates_fpw")
	}
}
