package stats

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestHistBasics(t *testing.T) {
	var h Hist
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 {
		t.Fatal("zero hist not zero")
	}
	h.Record(1 * time.Millisecond)
	h.Record(2 * time.Millisecond)
	h.Record(3 * time.Millisecond)
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 2*time.Millisecond {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Min() != time.Millisecond || h.Max() != 3*time.Millisecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestPercentileAccuracy(t *testing.T) {
	var h Hist
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	p50 := h.Percentile(50)
	if p50 < 400*time.Microsecond || p50 > 650*time.Microsecond {
		t.Fatalf("P50 = %v, expected ~500µs", p50)
	}
	p99 := h.Percentile(99)
	if p99 < 900*time.Microsecond || p99 > 1200*time.Microsecond {
		t.Fatalf("P99 = %v, expected ~990µs", p99)
	}
	if h.Percentile(100) != h.Max() {
		t.Fatalf("P100 = %v, max = %v", h.Percentile(100), h.Max())
	}
}

func TestPercentileMonotonic(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var h Hist
		for i := 0; i < 500; i++ {
			h.Record(time.Duration(rng.Intn(10_000_000)))
		}
		last := time.Duration(0)
		for _, q := range []float64{1, 25, 50, 75, 90, 99, 100} {
			v := h.Percentile(q)
			if v < last {
				return false
			}
			last = v
		}
		return h.Percentile(100) <= h.Max()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMerge(t *testing.T) {
	var a, b Hist
	a.Record(time.Millisecond)
	b.Record(3 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 2 || a.Max() != 3*time.Millisecond || a.Min() != time.Millisecond {
		t.Fatalf("merged = count %d min %v max %v", a.Count(), a.Min(), a.Max())
	}
	if a.Mean() != 2*time.Millisecond {
		t.Fatalf("merged mean = %v", a.Mean())
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(1000, time.Second); got != 1000 {
		t.Fatalf("Throughput = %v", got)
	}
	if got := Throughput(10, 0); got != 0 {
		t.Fatalf("zero-window throughput = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Demo", "Name", "IOPS")
	tbl.AddRow("fast", 12345.0)
	tbl.AddRow("slow", 1.5)
	tbl.AddComment("note")
	s := tbl.String()
	for _, want := range []string{"Demo", "Name", "12,345", "1.5", "# note"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestCommafy(t *testing.T) {
	cases := map[string]string{
		"1":        "1",
		"999":      "999",
		"1000":     "1,000",
		"1234567":  "1,234,567",
		"-1234":    "-1,234",
		"12345678": "12,345,678",
	}
	for in, want := range cases {
		if got := commafy(in); got != want {
			t.Fatalf("commafy(%s) = %s, want %s", in, got, want)
		}
	}
}

func TestDurationFormatting(t *testing.T) {
	tbl := NewTable("", "d")
	tbl.AddRow(1500 * time.Microsecond)
	tbl.AddRow(250 * time.Millisecond)
	s := tbl.String()
	if !strings.Contains(s, "1.5ms") || !strings.Contains(s, "250ms") {
		t.Fatalf("duration formatting wrong:\n%s", s)
	}
}
