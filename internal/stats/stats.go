// Package stats provides latency histograms, throughput accounting and
// small table-rendering helpers used by the benchmark harnesses to print
// the paper's tables and figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Hist is a geometric-bucket latency histogram (~12% resolution from 1 µs
// to ~10 hours). The zero value is ready to use.
type Hist struct {
	buckets [nbuckets]int64
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

const (
	nbuckets = 256
	base     = float64(time.Microsecond)
	ratio    = 1.12
)

var logRatio = math.Log(ratio)

func bucketOf(d time.Duration) int {
	if d < time.Microsecond {
		return 0
	}
	b := int(math.Log(float64(d)/base)/logRatio) + 1
	if b >= nbuckets {
		b = nbuckets - 1
	}
	return b
}

// boundOf returns the upper bound of bucket b.
func boundOf(b int) time.Duration {
	if b == 0 {
		return time.Microsecond
	}
	return time.Duration(base * math.Pow(ratio, float64(b)))
}

// Record adds one observation.
func (h *Hist) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketOf(d)]++
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of observations.
func (h *Hist) Count() int64 { return h.count }

// Sum returns the total of all observations.
func (h *Hist) Sum() time.Duration { return h.sum }

// Mean returns the average observation.
func (h *Hist) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min returns the smallest observation.
func (h *Hist) Min() time.Duration { return h.min }

// Max returns the largest observation.
func (h *Hist) Max() time.Duration { return h.max }

// Percentile returns the q-quantile (0 < q <= 100) as the upper bound of
// the bucket containing it.
func (h *Hist) Percentile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	target := int64(math.Ceil(q / 100 * float64(h.count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for b := 0; b < nbuckets; b++ {
		cum += h.buckets[b]
		if cum >= target {
			ub := boundOf(b)
			if ub > h.max {
				ub = h.max
			}
			return ub
		}
	}
	return h.max
}

// Merge folds other into h.
func (h *Hist) Merge(other *Hist) {
	if other.count == 0 {
		return
	}
	for b := range other.buckets {
		h.buckets[b] += other.buckets[b]
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}

// Reset clears the histogram.
func (h *Hist) Reset() { *h = Hist{} }

// Throughput converts an operation count over a virtual-time window into
// operations per second.
func Throughput(ops int64, window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(ops) / window.Seconds()
}

// Table accumulates rows and renders them with aligned columns, in the
// spirit of the paper's tables.
type Table struct {
	Title   string
	header  []string
	rows    [][]string
	comment []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// AddRow appends a row; values are formatted with %v (floats compactly).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case time.Duration:
			row[i] = formatDuration(v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// AddComment appends a footnote line printed under the table.
func (t *Table) AddComment(format string, args ...any) {
	t.comment = append(t.comment, fmt.Sprintf(format, args...))
}

func formatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return commafy(fmt.Sprintf("%.0f", v))
	case math.Abs(v) >= 100:
		return commafy(fmt.Sprintf("%.0f", v))
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

func formatDuration(d time.Duration) string {
	ms := float64(d) / float64(time.Millisecond)
	switch {
	case ms >= 100:
		return fmt.Sprintf("%.0fms", ms)
	case ms >= 1:
		return fmt.Sprintf("%.1fms", ms)
	default:
		// Sub-millisecond values rendered as "0.00ms" lose the detail that
		// matters most at device-cache speeds; print microseconds instead.
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	}
}

// commafy inserts thousands separators into a decimal integer string.
func commafy(s string) string {
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	if len(s) <= 3 {
		if neg {
			return "-" + s
		}
		return s
	}
	var b strings.Builder
	lead := len(s) % 3
	if lead > 0 {
		b.WriteString(s[:lead])
	}
	for i := lead; i < len(s); i += 3 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s[i : i+3])
	}
	if neg {
		return "-" + b.String()
	}
	return b.String()
}

// Header returns the column headers.
func (t *Table) Header() []string { return t.header }

// Rows returns the formatted rows (callers must not mutate them).
func (t *Table) Rows() [][]string { return t.rows }

// Comments returns the footnote lines.
func (t *Table) Comments() []string { return t.comment }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, hcell := range t.header {
		widths[i] = len(hcell)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2) + "\n")
	for _, row := range t.rows {
		line(row)
	}
	for _, c := range t.comment {
		fmt.Fprintf(&b, "# %s\n", c)
	}
	return b.String()
}

// SortRowsBy sorts rows by the given column (string order).
func (t *Table) SortRowsBy(col int) {
	sort.SliceStable(t.rows, func(i, j int) bool { return t.rows[i][col] < t.rows[j][col] })
}
