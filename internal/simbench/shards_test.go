package simbench

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"durassd/internal/iotrace"
)

// shardsDigest builds the shards scenario, records every device's event
// stream through the shard merge, runs it at the given worker count, and
// returns the merged schedule fingerprint plus the totals.
func shardsDigest(t *testing.T, workers int) string {
	t.Helper()
	r, err := newShardsRig(workers)
	if err != nil {
		t.Fatalf("newShardsRig(%d): %v", workers, err)
	}
	rec := iotrace.NewShardRecorder(shardsDomains)
	for i, d := range r.devs {
		rec.Attach(i, d.Registry())
	}
	events, err := r.run()
	if err != nil {
		t.Fatalf("shards run (workers=%d): %v", workers, err)
	}
	var wrote int64
	for _, d := range r.devs {
		wrote += d.Stats().PagesWritten
	}
	return fmt.Sprintf("%s events=%d written=%d", rec.Digest(), events, wrote)
}

// TestShardsDigestWorkerSweep is the headline determinism gate: the same
// seeds produce a byte-identical merged device schedule whether the four
// domains run on one worker thread or four, at GOMAXPROCS 1 and N.
func TestShardsDigestWorkerSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scenario")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	want := shardsDigest(t, 1)
	for _, procs := range []int{1, runtime.NumCPU() + 1} {
		runtime.GOMAXPROCS(procs)
		for _, workers := range []int{shardsWorkers} {
			if got := shardsDigest(t, workers); got != want {
				t.Fatalf("GOMAXPROCS=%d workers=%d: schedule diverged\n got: %s\nwant: %s",
					procs, workers, got, want)
			}
		}
	}
}

// TestCheckRegressionAllocs pins the allocs/event arm of the -check gate.
func TestCheckRegressionAllocs(t *testing.T) {
	base := &JSONBaseline{
		Schema: 1, Tool: "simbench",
		Metrics: map[string]float64{
			"s/ns_per_event":     100,
			"s/allocs_per_event": 0.5,
		},
	}
	mk := func(allocs uint64) []Result {
		return []Result{{Name: "s", Events: 1000, Wall: 100 * time.Microsecond, Allocs: allocs}}
	}
	if err := CheckRegression(mk(900), base, 2.0); err != nil {
		t.Errorf("0.9 allocs/event vs 0.5 baseline at 2x: unexpected failure: %v", err)
	}
	if err := CheckRegression(mk(1200), base, 2.0); err == nil {
		t.Error("1.2 allocs/event vs 0.5 baseline at 2x: regression not caught")
	}
	// Scenarios absent from the baseline start a fresh trajectory.
	fresh := []Result{{Name: "new", Events: 1000, Wall: time.Second, Allocs: 1 << 20}}
	if err := CheckRegression(fresh, base, 2.0); err != nil {
		t.Errorf("scenario missing from baseline must pass: %v", err)
	}
}
