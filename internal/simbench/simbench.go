// Package simbench measures the simulator's own wall-clock speed on fixed
// seeded scenarios: events per second, nanoseconds per event and heap
// allocations per event. Every run of a scenario replays the identical
// virtual-time schedule (same seeds, same event order), so differences
// between two measurements are differences in the scheduler and device
// hot paths — the BENCH_<n>.json files committed at the repo root track
// that trajectory across PRs, and CI fails on a >2x ns/event regression.
//
// The numbers are host wall-clock readings, the one place in the tree
// (outside cmd/) that legitimately reads the real clock; the simulated
// results themselves stay in virtual time and are byte-identical across
// hosts.
package simbench

import (
	"fmt"
	"runtime"
	"time"

	"durassd/internal/couch"
	"durassd/internal/faults"
	"durassd/internal/fio"
	"durassd/internal/host"
	"durassd/internal/repro"
	"durassd/internal/sim"
	"durassd/internal/ssd"
	"durassd/internal/storage"
	"durassd/internal/vol"
	"durassd/internal/workload/ycsb"
)

// Result is one scenario measurement.
type Result struct {
	Name   string
	Events uint64        // engine events processed
	Wall   time.Duration // host wall-clock time for the run
	Allocs uint64        // heap allocations during the run
}

// EventsPerSec returns the throughput of the simulator core.
func (r Result) EventsPerSec() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Events) / r.Wall.Seconds()
}

// NsPerEvent returns the mean wall-clock cost of one event.
func (r Result) NsPerEvent() float64 {
	if r.Events == 0 {
		return 0
	}
	return float64(r.Wall.Nanoseconds()) / float64(r.Events)
}

// AllocsPerEvent returns mean heap allocations per event (whole scenario:
// workload and device model included, not just the scheduler).
func (r Result) AllocsPerEvent() float64 {
	if r.Events == 0 {
		return 0
	}
	return float64(r.Allocs) / float64(r.Events)
}

// Scenario is one fixed seeded workload. run executes it once on a fresh
// engine and returns the number of engine events processed.
type Scenario struct {
	Name string
	Desc string
	run  func() (uint64, error)
}

// Scenarios returns the benchmark suite, in reporting order. Each entry is
// fully seeded: the virtual-time schedule is identical on every run.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name: "fio-randwrite-durassd",
			Desc: "fio 4KB random write, 4 threads, DuraSSD scale 16, preloaded",
			run:  runFioRandWrite,
		},
		{
			Name: "ycsb-a-striped4",
			Desc: "YCSB-A (50/50) on a couch store over striped-4 DuraSSD",
			run:  runYCSBAStriped4,
		},
		{
			Name: "crashexplore-probe",
			Desc: "crash-point probe run: InnoDB on DuraSSD, no cut, schedule recorded",
			run:  runCrashExploreProbe,
		},
		{
			Name: "shards",
			Desc: "4 DuraSSD domains (2×fio randwrite, 2×YCSB-A), parallel merge, 4 workers",
			run:  func() (uint64, error) { return runShards(shardsWorkers) },
		},
		{
			Name: "shards-seq",
			Desc: "same 4-domain program through the sequential merge (1 worker)",
			run:  func() (uint64, error) { return runShards(1) },
		},
		{
			Name: "serve-mixed",
			Desc: "mixed-tenant serving (YCSB-A + LinkBench + TPC-C) over a 4-shard DuraSSD box",
			run:  runServeMixed,
		},
		{
			Name: "serve-chaos",
			Desc: "replicated serving (R=3 W=2 groups) under seeded brownout, crash+catch-up and overload faults",
			run:  runServeChaos,
		},
	}
}

// Find returns the named scenario.
func Find(name string) (Scenario, error) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("simbench: unknown scenario %q", name)
}

func runFioRandWrite() (uint64, error) {
	rig, err := repro.NewRig(repro.DuraSSD, 16, false)
	if err != nil {
		return 0, err
	}
	_, err = fio.Run(rig.Eng, rig.FS, fio.Job{
		Name:    "randwrite",
		Threads: 4,
		ReadPct: 0,
		Ops:     24_000,
		Seed:    42,
		Preload: true,
	})
	return rig.Eng.Events(), err
}

func runYCSBAStriped4() (uint64, error) {
	const docs = 4000
	eng := sim.New()
	members := make([]storage.Device, 4)
	for i := range members {
		d, err := ssd.New(eng, ssd.DuraSSD(32))
		if err != nil {
			return 0, err
		}
		members[i] = d
	}
	v, err := vol.NewStriped(eng, members, 0)
	if err != nil {
		return 0, err
	}
	fs := host.NewFS(v, true)
	st, err := couch.Open(eng, fs, couch.Config{Docs: docs, BatchSize: 100})
	if err != nil {
		return 0, err
	}
	_, err = ycsb.Run(eng, st, docs, ycsb.Config{
		Operations: 8000,
		UpdatePct:  50,
		Threads:    2,
		Seed:       7,
	})
	return eng.Events(), err
}

func runCrashExploreProbe() (uint64, error) {
	var eng *sim.Engine
	_, err := faults.RunWith(faults.Scenario{
		Device:  faults.DuraSSD,
		Engine:  faults.EngineInnoDB,
		Clients: 8,
		Updates: 600,
		Seed:    11,
	}, faults.Options{
		NoCut:      true,
		EngineHook: func(e *sim.Engine) { eng = e },
	})
	if err != nil {
		return 0, err
	}
	return eng.Events(), nil
}

// Measure runs s once and reports its cost. A GC runs first so the
// allocation delta belongs to the scenario.
func Measure(s Scenario) (Result, error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now() //simlint:allow nowalltime benchmark harness measures host wall-clock speed by design
	events, err := s.run()
	wall := time.Since(start) //simlint:allow nowalltime benchmark harness measures host wall-clock speed by design
	runtime.ReadMemStats(&m1)
	if err != nil {
		return Result{}, fmt.Errorf("simbench: scenario %s: %w", s.Name, err)
	}
	if events == 0 {
		return Result{}, fmt.Errorf("simbench: scenario %s processed no events", s.Name)
	}
	return Result{Name: s.Name, Events: events, Wall: wall, Allocs: m1.Mallocs - m0.Mallocs}, nil
}

// MeasureBest runs s repeat times and keeps the fastest wall clock (the
// run least disturbed by the host); the event count is identical across
// repeats by construction, and the allocation count is taken from the
// first run (later runs hit warmed package-level state).
func MeasureBest(s Scenario, repeat int) (Result, error) {
	if repeat < 1 {
		repeat = 1
	}
	var best Result
	for i := 0; i < repeat; i++ {
		r, err := Measure(s)
		if err != nil {
			return Result{}, err
		}
		if i == 0 {
			best = r
			continue
		}
		if r.Wall < best.Wall {
			r.Allocs = best.Allocs
			best = r
		}
	}
	return best, nil
}

// annotateSingleCore marks reports produced on a single-CPU host: wall-clock
// comparisons between parallel and sequential scenarios are meaningless
// there (the BENCH_7.json caveat), and downstream tooling needs to know
// without guessing from the numbers.
func annotateSingleCore(rep *repro.JSONReport, numCPU int) {
	if numCPU == 1 {
		rep.SetConfig("single_core", true)
	}
}

// Report assembles the shared -json schema from a set of results. Metric
// keys are "<scenario>/<metric>" so downstream tooling can track each
// scenario's trajectory independently.
func Report(results []Result, repeat int) *repro.JSONReport {
	rep := repro.NewJSONReport("simbench")
	rep.SetConfig("repeat", repeat)
	annotateSingleCore(rep, runtime.NumCPU())
	for _, r := range results {
		rep.AddMetric(r.Name+"/events", float64(r.Events))
		rep.AddMetric(r.Name+"/wall_ns", float64(r.Wall.Nanoseconds()))
		rep.AddMetric(r.Name+"/ns_per_event", r.NsPerEvent())
		rep.AddMetric(r.Name+"/events_per_sec", r.EventsPerSec())
		rep.AddMetric(r.Name+"/allocs_per_event", r.AllocsPerEvent())
	}
	return rep
}

// CheckRegression compares fresh results against a committed baseline
// report and returns an error if any scenario's ns/event or allocs/event
// exceeds factor times its committed value. Scenarios missing from the
// baseline are ignored (new scenarios start a fresh trajectory).
func CheckRegression(results []Result, baseline *JSONBaseline, factor float64) error {
	for _, r := range results {
		if base, ok := baseline.Metrics[r.Name+"/ns_per_event"]; ok && base > 0 {
			if cur := r.NsPerEvent(); cur > base*factor {
				return fmt.Errorf("simbench: %s regressed: %.1f ns/event vs baseline %.1f (limit %.1fx)",
					r.Name, cur, base, factor)
			}
		}
		// Allocation regressions are wall-clock-independent, so this arm of
		// the gate is immune to noisy CI hosts. The +0.05 floor keeps
		// near-zero baselines (the zero-alloc hot paths) from turning one
		// stray allocation into a failure.
		if base, ok := baseline.Metrics[r.Name+"/allocs_per_event"]; ok && base > 0 {
			if cur := r.AllocsPerEvent(); cur > base*factor+0.05 {
				return fmt.Errorf("simbench: %s regressed: %.3f allocs/event vs baseline %.3f (limit %.1fx)",
					r.Name, cur, base, factor)
			}
		}
	}
	return nil
}

// JSONBaseline is the subset of the shared report schema the regression
// check needs.
type JSONBaseline struct {
	Schema  int                `json:"schema"`
	Tool    string             `json:"tool"`
	Metrics map[string]float64 `json:"metrics"`
}
