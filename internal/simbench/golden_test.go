package simbench

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"durassd/internal/couch"
	"durassd/internal/crashpoint"
	"durassd/internal/faults"
	"durassd/internal/fio"
	"durassd/internal/iotrace"
	"durassd/internal/repro"
	"durassd/internal/workload/ycsb"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_digests.json from the current engine")

// The golden digests pin the exact virtual-time schedule of every database
// engine and workload on DuraSSD: device event streams (write acks, flush
// drains, NAND programs/erases, retirements) hashed together with the
// audited outcomes. A scheduler change that reorders two events, shifts a
// timestamp by a nanosecond, or changes a crash verdict flips a digest.
// They were generated before the zero-alloc scheduler refactor and must
// stay byte-identical after it.

type digestFn func(t *testing.T) string

func goldenCases() map[string]digestFn {
	return map[string]digestFn{
		"faults-innodb-durassd": func(t *testing.T) string {
			return faultsDigest(t, faults.EngineInnoDB, false, 5, 12*time.Millisecond, false)
		},
		"faults-pgsql-durassd": func(t *testing.T) string {
			return faultsDigest(t, faults.EnginePgSQL, true, 6, 15*time.Millisecond, false)
		},
		"faults-innodb-durassd-wearout": func(t *testing.T) string { return faultsDigest(t, faults.EngineInnoDB, false, 9, 0, true) },
		"crashpoint-innodb-durassd":     func(t *testing.T) string { return crashpointDigest(t, faults.EngineInnoDB, 3) },
		"crashpoint-pgsql-durassd":      func(t *testing.T) string { return crashpointDigest(t, faults.EnginePgSQL, 4) },
		"fio-fsync-durassd":             fioDigest,
		"ycsb-a-durassd":                ycsbDigest,
	}
}

// faultsDigest runs one crash (or wear-out probe) scenario and hashes the
// member-stamped device event stream plus the audited verdict.
func faultsDigest(t *testing.T, engine faults.EngineKind, doubleWrite bool, seed int64, cutAfter time.Duration, wearOut bool) string {
	t.Helper()
	var b strings.Builder
	opts := faults.Options{
		EventFn: func(member int, kind iotrace.EventKind, at time.Duration) {
			fmt.Fprintf(&b, "%d %s %d\n", member, kind, int64(at))
		},
	}
	s := faults.Scenario{
		Device:      faults.DuraSSD,
		Engine:      engine,
		DoubleWrite: doubleWrite,
		Clients:     8,
		Updates:     300,
		CutAfter:    cutAfter,
		Seed:        seed,
		WearOut:     wearOut,
	}
	if wearOut {
		opts.NoCut = true // probe: run the scrub/retire schedule to completion
	}
	v, err := faults.RunWith(s, opts)
	if err != nil {
		t.Fatalf("faults.RunWith: %v", err)
	}
	fmt.Fprintf(&b, "acked=%d lost=%d torn=%d redo=%d dump=%d retries=%d lostdev=%d\n",
		v.AckedCommits, v.LostCommits, v.TornPages, v.RedoApplied, v.DumpPages, v.DumpRetries, v.LostDevPages)
	return hash(b.String())
}

// crashpointDigest explores a small campaign and folds the schedule digest
// together with the safety tallies.
func crashpointDigest(t *testing.T, engine faults.EngineKind, seed int64) string {
	t.Helper()
	res, err := crashpoint.Explore(crashpoint.Campaign{
		Scenario: faults.Scenario{
			Device:  faults.DuraSSD,
			Engine:  engine,
			Clients: 6,
			Updates: 120,
			Seed:    seed,
		},
		MaxPoints: 6,
	})
	if err != nil {
		t.Fatalf("crashpoint.Explore: %v", err)
	}
	return hash(fmt.Sprintf("schedule=%s points=%d unsafe=%d lost=%d torn=%d\n",
		res.Digest, len(res.Points), res.Unsafe, res.Lost, res.Torn))
}

// fioDigest runs a small fsync-heavy fio job on DuraSSD and hashes the
// device event stream plus the final throughput numbers.
func fioDigest(t *testing.T) string {
	t.Helper()
	rig, err := repro.NewRig(repro.DuraSSD, 32, true)
	if err != nil {
		t.Fatalf("NewRig: %v", err)
	}
	var b strings.Builder
	rig.SSDDev().Registry().SetEventFn(func(kind iotrace.EventKind, at time.Duration) {
		fmt.Fprintf(&b, "%s %d\n", kind, int64(at))
	})
	res, err := fio.Run(rig.Eng, rig.FS, fio.Job{
		Name:       "golden",
		Threads:    3,
		ReadPct:    20,
		FsyncEvery: 8,
		Ops:        1200,
		FilePages:  rig.Dev.Pages() / 2, // leave GC headroom at this small scale
		Seed:       1234,
		Preload:    true,
	})
	if err != nil {
		t.Fatalf("fio.Run: %v", err)
	}
	st := rig.Dev.Stats()
	fmt.Fprintf(&b, "ops=%d elapsed=%d written=%d read=%d flushes=%d\n",
		res.Ops, int64(res.Elapsed), st.PagesWritten, st.PagesRead, st.FlushCommands)
	return hash(b.String())
}

// ycsbDigest runs a small YCSB-A job against couch on DuraSSD and hashes
// the device event stream plus the final counters.
func ycsbDigest(t *testing.T) string {
	t.Helper()
	rig, err := repro.NewRig(repro.DuraSSD, 32, true)
	if err != nil {
		t.Fatalf("NewRig: %v", err)
	}
	var b strings.Builder
	rig.SSDDev().Registry().SetEventFn(func(kind iotrace.EventKind, at time.Duration) {
		fmt.Fprintf(&b, "%s %d\n", kind, int64(at))
	})
	const docs = 2000
	st, err := couch.Open(rig.Eng, rig.FS, couch.Config{Docs: docs, BatchSize: 50})
	if err != nil {
		t.Fatalf("couch.Open: %v", err)
	}
	res, err := ycsb.Run(rig.Eng, st, docs, ycsb.Config{
		Operations: 3000,
		UpdatePct:  50,
		Threads:    2,
		Seed:       99,
	})
	if err != nil {
		t.Fatalf("ycsb.Run: %v", err)
	}
	ds := rig.Dev.Stats()
	fmt.Fprintf(&b, "ops=%d elapsed=%d written=%d read=%d flushes=%d\n",
		res.Ops, int64(res.Elapsed), ds.PagesWritten, ds.PagesRead, ds.FlushCommands)
	return hash(b.String())
}

func hash(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

const goldenPath = "testdata/golden_digests.json"

func TestGoldenDigests(t *testing.T) {
	cases := goldenCases()
	got := make(map[string]string, len(cases))
	for _, name := range repro.SortedKeys(cases) {
		got[name] = cases[name](t)
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden digests to %s", len(got), goldenPath)
		return
	}
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading goldens (run with -update-golden to generate): %v", err)
	}
	want := make(map[string]string)
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parsing %s: %v", goldenPath, err)
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d entries, test has %d", len(want), len(got))
	}
	for _, name := range repro.SortedKeys(got) {
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: missing from golden file (run -update-golden)", name)
			continue
		}
		if got[name] != w {
			t.Errorf("%s: digest drifted\n  got  %s\n  want %s\nthe virtual-time schedule changed: identical seeds must stay byte-identical across scheduler refactors", name, got[name], w)
		}
	}
}

// TestGoldenDigestsStable runs one representative digest twice in-process
// to catch nondeterminism that would also poison the golden comparison.
func TestGoldenDigestsStable(t *testing.T) {
	a := crashpointDigest(t, faults.EngineInnoDB, 3)
	b := crashpointDigest(t, faults.EngineInnoDB, 3)
	if a != b {
		t.Fatalf("same-process digests differ: %s vs %s", a, b)
	}
}
