package simbench

import (
	"runtime"
	"testing"
	"time"
)

// TestSingleCoreAnnotation: reports produced on a one-CPU host must carry
// "single_core": true, and hosts with real parallelism must not be tagged —
// the BENCH_7.json caveat, mechanized.
func TestSingleCoreAnnotation(t *testing.T) {
	rows := []ShardSweepRow{
		{Workers: 1, Result: Result{Name: "shards-w1", Events: 1000, Wall: time.Millisecond}},
		{Workers: 4, Result: Result{Name: "shards-w4", Events: 1000, Wall: time.Millisecond}},
	}
	rep := SweepReport(rows, 3)
	want := runtime.NumCPU() == 1
	got, present := rep.Config["single_core"]
	if present != want {
		t.Errorf("single_core present=%t on a %d-CPU host, want %t", present, runtime.NumCPU(), want)
	}
	if present && got != true {
		t.Errorf("single_core = %v, want true", got)
	}
	if rep.Config["num_cpu"] != runtime.NumCPU() {
		t.Errorf("num_cpu = %v, want %d", rep.Config["num_cpu"], runtime.NumCPU())
	}
	if _, ok := rep.Metrics["shards-w4/ns_per_event"]; !ok {
		t.Error("sweep metrics missing from the report")
	}

	// Both branches of the detector, independent of the host we run on.
	single := Report(nil, 1)
	annotateSingleCore(single, 1)
	if single.Config["single_core"] != true {
		t.Error("numCPU=1 report not annotated")
	}
	multi := Report(nil, 1)
	delete(multi.Config, "single_core")
	annotateSingleCore(multi, 8)
	if _, ok := multi.Config["single_core"]; ok {
		t.Error("numCPU=8 report wrongly annotated")
	}
}

// TestServeMixedScenarioRegistered: the serving-layer scenario is part of
// the suite and runs clean with a stable nonzero event count.
func TestServeMixedScenarioRegistered(t *testing.T) {
	s, err := Find("serve-mixed")
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.run()
	if err != nil {
		t.Fatal(err)
	}
	if a == 0 || a != b {
		t.Fatalf("serve-mixed event count unstable: %d vs %d", a, b)
	}
}

// TestServeChaosScenarioRegistered: the replicated chaos scenario is part
// of the suite and runs clean with a stable nonzero event count — fault
// injection included, the schedule is fully seeded.
func TestServeChaosScenarioRegistered(t *testing.T) {
	s, err := Find("serve-chaos")
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.run()
	if err != nil {
		t.Fatal(err)
	}
	if a == 0 || a != b {
		t.Fatalf("serve-chaos event count unstable: %d vs %d", a, b)
	}
}
