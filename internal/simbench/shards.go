package simbench

import (
	"fmt"
	"runtime"
	"time"

	"durassd/internal/couch"
	"durassd/internal/fio"
	"durassd/internal/host"
	"durassd/internal/repro"
	"durassd/internal/sim"
	"durassd/internal/ssd"
	"durassd/internal/storage"
	"durassd/internal/workload/ycsb"
)

// The shards scenario is the multi-device benchmark the cluster runtime
// exists for: four DuraSSDs, each in its own simulation domain with its own
// workload — two running fio 4KB random writes, two running YCSB-A against
// a couch store. "shards" drives the cluster with one worker thread per
// domain; "shards-seq" runs the identical program through the sequential
// merge (workers=1), so the pair measures the parallel speedup of the
// conservative virtual-time merge at equal schedules: both produce
// byte-identical virtual-time behavior (pinned by TestShardsDigestWorkerSweep),
// only the wall clock differs.

// shardsLatency is the cross-domain link latency (the lookahead bound).
// The domains exchange no messages, so it only sets the epoch grain: each
// merge round lets every domain advance up to one window past the globally
// earliest event.
const shardsLatency = 250 * time.Microsecond

// shardsDomains is the domain count of the shards scenario (ISSUE: 4
// DuraSSDs), and shardsWorkers the worker-thread count of the parallel
// variant.
const (
	shardsDomains = 4
	shardsWorkers = 4
)

// shardsRig is the built-but-not-run scenario: call run to drive it.
type shardsRig struct {
	c    *sim.Cluster
	devs []storage.Device
	fio  []*fio.Pending
	ycsb []*ycsb.Pending
}

// newShardsRig builds the cluster and spawns every client thread. Setup
// (file creation, preload, store population) is instant virtual time and
// happens while the cluster is idle.
func newShardsRig(workers int) (*shardsRig, error) {
	c := sim.NewCluster(shardsDomains, shardsLatency, workers)
	r := &shardsRig{c: c, devs: make([]storage.Device, shardsDomains)}
	ok := false
	defer func() {
		if !ok {
			c.Close()
		}
	}()
	// Domains 0-1: fio 4KB random write, 4 threads each.
	for i := 0; i < 2; i++ {
		dom := c.Domain(i)
		d, err := ssd.New(dom.Engine(), ssd.DuraSSD(16))
		if err != nil {
			return nil, err
		}
		r.devs[i] = d
		fs := host.NewFS(d, false)
		filePages := d.Pages() * 9 / 10
		file, err := fs.Create(fmt.Sprintf("shard%d", i), filePages)
		if err != nil {
			return nil, err
		}
		if err := file.Preload(0, filePages, nil); err != nil {
			return nil, err
		}
		pd, err := fio.Start(dom.Engine(), file, fio.Job{
			Name:    fmt.Sprintf("shard%d", i),
			Threads: 4,
			ReadPct: 0,
			Ops:     12_000,
			Seed:    42 + int64(i),
		})
		if err != nil {
			return nil, err
		}
		r.fio = append(r.fio, pd)
	}
	// Domains 2-3: YCSB-A on a couch store, 2 threads each.
	for i := 2; i < 4; i++ {
		dom := c.Domain(i)
		d, err := ssd.New(dom.Engine(), ssd.DuraSSD(32))
		if err != nil {
			return nil, err
		}
		r.devs[i] = d
		fs := host.NewFS(d, true)
		const docs = 4000
		st, err := couch.Open(dom.Engine(), fs, couch.Config{Docs: docs, BatchSize: 100})
		if err != nil {
			return nil, err
		}
		r.ycsb = append(r.ycsb, ycsb.Start(dom.Engine(), st, docs, ycsb.Config{
			Operations: 6000,
			UpdatePct:  50,
			Threads:    2,
			Seed:       7 + int64(i),
		}))
	}
	ok = true
	return r, nil
}

// run drives the cluster to completion, surfaces the first workload error,
// and returns the total events processed across all domains.
func (r *shardsRig) run() (uint64, error) {
	defer r.c.Close()
	r.c.Run()
	for i, pd := range r.fio {
		if _, err := pd.Result(); err != nil {
			return 0, fmt.Errorf("fio shard %d: %w", i, err)
		}
	}
	for i, pd := range r.ycsb {
		if _, err := pd.Result(); err != nil {
			return 0, fmt.Errorf("ycsb shard %d: %w", i+2, err)
		}
	}
	return r.c.Events(), nil
}

// runShards executes the scenario at the given worker count.
func runShards(workers int) (uint64, error) {
	r, err := newShardsRig(workers)
	if err != nil {
		return 0, err
	}
	return r.run()
}

// ShardSweepRow is one cell of the worker-scaling sweep.
type ShardSweepRow struct {
	Workers int
	Result  Result
}

// SweepReport assembles the shared -json schema from a worker sweep. On a
// single-CPU host the report carries "single_core": true — the scaling
// ratios in it compare thread scheduling overhead, not parallelism.
func SweepReport(rows []ShardSweepRow, repeat int) *repro.JSONReport {
	rep := repro.NewJSONReport("simbench-shardsweep")
	rep.SetConfig("repeat", repeat)
	rep.SetConfig("num_cpu", runtime.NumCPU())
	annotateSingleCore(rep, runtime.NumCPU())
	for _, row := range rows {
		prefix := fmt.Sprintf("shards-w%d", row.Workers)
		rep.AddMetric(prefix+"/events", float64(row.Result.Events))
		rep.AddMetric(prefix+"/wall_ns", float64(row.Result.Wall.Nanoseconds()))
		rep.AddMetric(prefix+"/ns_per_event", row.Result.NsPerEvent())
		rep.AddMetric(prefix+"/events_per_sec", row.Result.EventsPerSec())
	}
	return rep
}

// ShardSweep measures the shards scenario at each worker count (repeat
// runs each, fastest kept): the scaling table for EXPERIMENTS.md. Virtual
// time is identical in every cell; only wall clock varies.
func ShardSweep(workerCounts []int, repeat int) ([]ShardSweepRow, error) {
	rows := make([]ShardSweepRow, 0, len(workerCounts))
	for _, w := range workerCounts {
		w := w
		s := Scenario{
			Name: fmt.Sprintf("shards-w%d", w),
			Desc: fmt.Sprintf("shards scenario at %d workers", w),
			run:  func() (uint64, error) { return runShards(w) },
		}
		r, err := MeasureBest(s, repeat)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ShardSweepRow{Workers: w, Result: r})
	}
	return rows, nil
}
