package simbench

import (
	"durassd/internal/serve"
)

// runServeMixed drives the mixed-tenant serving scenario (YCSB-A, LinkBench
// and TPC-C tenants over a 4-shard DuraSSD box) at one worker: the simbench
// entry tracks the serving layer's scheduler cost — gateway dispatch, group
// commit, admission queues — on a fixed seed. The virtual-time result is
// pinned separately by the serve package's determinism tests.
func runServeMixed() (uint64, error) {
	res, err := serve.RunScenario(serve.ScenarioConfig{Workers: 1, Seed: 1})
	if err != nil {
		return 0, err
	}
	return res.Events, nil
}

// runServeChaos drives the replicated chaos scenario at one worker: R=3 W=2
// shard groups under a seeded fault schedule (replica brownout, replica
// power-fail with mid-traffic reboot and catch-up, overload burst). The
// simbench entry tracks the cost of the failure-handling hot paths —
// quorum fan-out, hedged reads, deadline timers, breaker bookkeeping —
// which a healthy-path scenario never exercises.
func runServeChaos() (uint64, error) {
	res, err := serve.RunScenario(serve.ChaosScenario(1, 42))
	if err != nil {
		return 0, err
	}
	return res.Events, nil
}
