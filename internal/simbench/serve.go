package simbench

import (
	"durassd/internal/serve"
)

// runServeMixed drives the mixed-tenant serving scenario (YCSB-A, LinkBench
// and TPC-C tenants over a 4-shard DuraSSD box) at one worker: the simbench
// entry tracks the serving layer's scheduler cost — gateway dispatch, group
// commit, admission queues — on a fixed seed. The virtual-time result is
// pinned separately by the serve package's determinism tests.
func runServeMixed() (uint64, error) {
	res, err := serve.RunScenario(serve.ScenarioConfig{Workers: 1, Seed: 1})
	if err != nil {
		return 0, err
	}
	return res.Events, nil
}
