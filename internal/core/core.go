// Package core implements the paper's primary contribution: the DuraSSD
// firmware built around a capacitor-backed durable write cache (paper §3).
//
// The Controller combines the four components of Figure 3:
//
//   - Durable cache — a pool of buffered pages plus the page mapping table,
//     both protected by tantalum capacitors. Writes are acknowledged the
//     moment their data lands in the cache; duplicate copies of a page that
//     has not reached flash yet are coalesced, improving endurance.
//   - Atomic writer — a write command's slots are staged into the cache in
//     a single uninterruptible step after admission control, so a power cut
//     can never leave a command half-applied (incomplete commands roll
//     back, complete commands are durable).
//   - Flusher — background workers continuously pull write-backs from the
//     FIFO flush list, pair 4 KB slots into full 8 KB NAND programs, and
//     exploit the array's channel/plane parallelism.
//   - Recovery manager — on power-off detection, flushes the modified
//     mapping entries and the buffer pool to the pre-erased dump area under
//     capacitor power; on reboot, recharges the capacitors, replays the
//     dump and erases it (idempotent recovery).
//
// The same Controller type, constructed with Durable=false, models a
// conventional volatile write cache: flush-cache really drains to NAND plus
// a mapping-journal flush, and a power cut loses every cached page.
package core

import (
	"errors"
	"time"

	"durassd/internal/ftl"
	"durassd/internal/iotrace"
	"durassd/internal/sim"
	"durassd/internal/storage"
)

// ErrCacheDead reports an operation on a controller that lost power.
var ErrCacheDead = errors.New("core: controller lost power")

// ErrCommandTooLarge reports a write command larger than the cache.
var ErrCommandTooLarge = errors.New("core: write command exceeds cache size")

// Config tunes the cache controller.
type Config struct {
	// Frames is the number of cache frames; each holds one mapping unit
	// (4 KB). The paper's DuraSSD carries 512 MB of DRAM, most of it
	// mapping table; the write buffer itself is a few MB (§3.1.1).
	Frames int
	// Durable marks the cache capacitor-backed (DuraSSD). False models a
	// conventional volatile write cache (SSD-A / SSD-B).
	Durable bool
	// DumpBudgetPages caps how many physical pages the capacitors can
	// program after power-off detection (map journal + buffer pool).
	// Zero means "sized to the dump area" — the paper's design point.
	DumpBudgetPages int
	// FlushWorkers is the number of concurrent write-back workers; it
	// bounds how much of the array's parallelism the flusher can use.
	FlushWorkers int
	// SlotAccess is the DRAM cost of staging or serving one slot.
	SlotAccess time.Duration
	// FlushAck is the fixed firmware cost of completing a flush-cache
	// command after the drain.
	FlushAck time.Duration
	// RebootRecharge is the capacitor recharge time before recovery starts.
	RebootRecharge time.Duration
}

// DefaultConfig returns the paper's DuraSSD cache configuration for the
// given FTL: a write buffer of a few thousand frames, one flush worker per
// plane, and a dump budget matching the dump area.
func DefaultConfig(f *ftl.FTL) Config {
	return Config{
		Frames:         4096, // 16 MB of 4 KB frames
		Durable:        true,
		FlushWorkers:   f.Array().Config().Planes(),
		SlotAccess:     2 * time.Microsecond,
		FlushAck:       20 * time.Microsecond,
		RebootRecharge: 100 * time.Millisecond,
	}
}

// lpnQueue is a FIFO of LPNs with a compacting head index: popping advances
// head instead of reslicing, so the backing array is reused instead of
// leaking capacity at the front (which made append reallocate on every
// enqueue/dequeue cycle of the flush list). Amortized O(1), zero allocs in
// steady state.
type lpnQueue struct {
	buf  []storage.LPN
	head int
}

func (q *lpnQueue) push(l storage.LPN) {
	if len(q.buf) == cap(q.buf) && q.head > 0 {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	q.buf = append(q.buf, l)
}

func (q *lpnQueue) len() int { return len(q.buf) - q.head }

func (q *lpnQueue) pop() storage.LPN {
	l := q.buf[q.head]
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return l
}

// at returns the i-th queued LPN in FIFO order (dump iteration).
func (q *lpnQueue) at(i int) storage.LPN { return q.buf[q.head+i] }

type frameState uint8

const (
	frameClean frameState = iota
	frameDirty            // queued for write-back
	frameBusy             // write-back in progress
)

type frame struct {
	lpn     storage.LPN
	data    []byte // latest host data; nil in timing-only mode
	state   frameState
	hasData bool           // distinguishes timing-only writes from zero pages
	redirty bool           // overwritten while busy; requeue after write-back
	origin  iotrace.Origin // origin of the latest staged copy
	readers int32          // parked readers holding a reference (not poolable)
}

// Controller is the device cache controller described above.
type Controller struct {
	eng *sim.Engine
	f   *ftl.FTL
	cfg Config

	frames    map[storage.LPN]*frame
	framePool []*frame // recycled evicted frames (only ones with no parked readers)
	dirtyq    lpnQueue // FIFO flush list
	cleanq    lpnQueue // eviction order for clean frames (lazy)
	pinned    int      // frames in state dirty or busy (not evictable)
	reserved  int      // frames promised to commands still streaming in
	queued    int      // entries in dirtyq
	inFlush   int      // slots currently being programmed
	flushed   int64    // slots ever written back (flush-cache epoch counter)

	hasDirty *sim.Queue // flusher workers wait here
	space    *sim.Queue // writers stalled on a full cache
	drained  *sim.Queue // flush-cache commands wait here

	dead     bool
	closed   bool
	readOnly bool // FTL degraded: writes fail typed, reads keep working

	reg   *iotrace.Registry
	stats *storage.Stats
}

// NewController builds a controller over f and starts its flush workers.
// The registry (shared with the owning device) may be nil.
func NewController(f *ftl.FTL, cfg Config, reg *iotrace.Registry) *Controller {
	if reg == nil {
		reg = iotrace.NewRegistry()
	}
	if cfg.Frames <= 0 {
		cfg.Frames = 1024
	}
	if cfg.FlushWorkers <= 0 {
		cfg.FlushWorkers = f.Array().Config().Planes()
	}
	eng := f.Array().Engine()
	c := &Controller{
		eng:      eng,
		f:        f,
		cfg:      cfg,
		frames:   make(map[storage.LPN]*frame),
		hasDirty: sim.NewQueue(eng),
		space:    sim.NewQueue(eng),
		drained:  sim.NewQueue(eng),
		reg:      reg,
		stats:    reg.Stats(),
	}
	for i := 0; i < cfg.FlushWorkers; i++ {
		eng.Go("flusher", c.flushWorker)
	}
	return c
}

// Durable reports whether the cache is capacitor-backed.
func (c *Controller) Durable() bool { return c.cfg.Durable }

// ReadOnly reports whether the device degraded to read-only (FTL reserve
// pool exhausted by bad-block retirement).
func (c *Controller) ReadOnly() bool { return c.readOnly }

// DropClean evicts lpn's frame if it is resident and clean, so the next
// read is served from flash. Returns false while the frame is dirty or
// busy (dropping it would lose acknowledged data). Fault-injection hook.
func (c *Controller) DropClean(lpn storage.LPN) bool {
	fr, ok := c.frames[lpn]
	if !ok {
		return true
	}
	if fr.state != frameClean || fr.redirty {
		return false
	}
	delete(c.frames, lpn)
	return true
}

// DirtySlots returns the number of slots awaiting write-back (queued or in
// flight).
func (c *Controller) DirtySlots() int { return c.queued + c.inFlush }

// CachedSlots returns the number of resident frames.
func (c *Controller) CachedSlots() int { return len(c.frames) }

// Write stages a write command's slots into the cache and returns once the
// command is complete (the DuraSSD durability point). The staging step
// itself is atomic: admission control and the DRAM copy happen before any
// frame is touched, so a power failure never leaves a command half-staged.
//
//simlint:hotpath
func (c *Controller) Write(p *sim.Proc, req iotrace.Req, slots []ftl.SlotWrite) error {
	if c.dead {
		return ErrCacheDead
	}
	if c.readOnly {
		return storage.ErrReadOnly
	}
	if len(slots) > c.cfg.Frames {
		return ErrCommandTooLarge
	}
	sp := req.Begin(p, iotrace.LayerCache)
	defer sp.End(p)
	// Admission control: wait until every new frame the command needs can
	// be taken without evicting dirty data (write stall, §2.3). The frames
	// are reserved before the DRAM transfer so concurrent commands cannot
	// oversubscribe the cache.
	var needNew int
	for {
		if c.dead {
			return ErrCacheDead
		}
		if c.readOnly {
			return storage.ErrReadOnly
		}
		needNew = 0
		for _, s := range slots {
			if _, ok := c.frames[s.LPN]; !ok {
				needNew++
			}
		}
		if c.pinned+c.reserved+needNew <= c.cfg.Frames {
			break
		}
		c.space.Wait(p)
	}
	c.reserved += needNew
	// DRAM transfer for the whole command.
	p.Sleep(time.Duration(len(slots)) * c.cfg.SlotAccess)
	c.reserved -= needNew
	if c.dead {
		return ErrPowerDuringWrite
	}
	if c.readOnly {
		return storage.ErrReadOnly // degraded mid-transfer: roll back
	}
	// Atomic staging: no virtual time passes below this line.
	for _, s := range slots {
		c.stage(s)
	}
	return nil
}

// ErrPowerDuringWrite reports that power failed while the command's data
// was still streaming into the cache; the command was rolled back.
var ErrPowerDuringWrite = errors.New("core: power failed before command completion; rolled back")

func (c *Controller) stage(s ftl.SlotWrite) {
	fr, ok := c.frames[s.LPN]
	if !ok {
		if len(c.frames) >= c.cfg.Frames {
			c.evictClean()
		}
		fr = c.getFrame(s.LPN)
		c.frames[s.LPN] = fr
	}
	if s.Data != nil {
		if fr.state == frameBusy {
			// The in-flight program batch aliases fr.data; overwriting it in
			// place would change the bytes mid-program. Give the new copy a
			// fresh buffer and let the old one go with the batch.
			fr.data = append([]byte(nil), s.Data...) //simlint:allow hotalloc busy-frame aliasing copy; only taken when a flush races the same LPN
		} else {
			fr.data = append(fr.data[:0], s.Data...)
		}
	} else {
		fr.data = nil
	}
	fr.hasData = true
	fr.origin = s.Origin
	switch fr.state {
	case frameBusy:
		// The old copy is mid-program; requeue the new one afterwards.
		fr.redirty = true
		c.stats.CacheOverlaps++
	case frameDirty:
		// Still queued: the newer copy replaces the old in place — the old
		// version is never programmed, which is the endurance win of §3.1.1.
		c.stats.CacheOverlaps++
	default:
		fr.state = frameDirty
		c.pinned++
		c.enqueueDirty(s.LPN)
	}
}

func (c *Controller) enqueueDirty(lpn storage.LPN) {
	c.dirtyq.push(lpn)
	c.queued++
	c.hasDirty.WakeOne()
}

// getFrame returns a recycled frame (data buffer capacity preserved — the
// caller overwrites fr.data before any reader can see it) or a fresh one.
func (c *Controller) getFrame(lpn storage.LPN) *frame {
	if n := len(c.framePool); n > 0 {
		fr := c.framePool[n-1]
		c.framePool[n-1] = nil
		c.framePool = c.framePool[:n-1]
		data := fr.data
		*fr = frame{lpn: lpn, data: data[:0]}
		return fr
	}
	return &frame{lpn: lpn} //simlint:allow hotalloc pool miss fallback; steady state recycles pooled frames
}

// evictClean drops the oldest clean frame. Callers guarantee one exists.
// The frame is recycled only when no parked reader still holds it; pooling
// never changes which frame is evicted, so the schedule is unaffected.
func (c *Controller) evictClean() {
	for c.cleanq.len() > 0 {
		lpn := c.cleanq.pop()
		fr, ok := c.frames[lpn]
		if !ok || fr.state != frameClean {
			continue // stale queue entry
		}
		delete(c.frames, lpn)
		c.stats.CacheEvicts++
		if fr.readers == 0 && len(c.framePool) < 64 {
			c.framePool = append(c.framePool, fr)
		}
		return
	}
	panic("core: no clean frame to evict")
}

// Read serves one slot, from the cache when resident (device cache hit) or
// from flash otherwise.
//
//simlint:hotpath
func (c *Controller) Read(p *sim.Proc, req iotrace.Req, lpn storage.LPN, buf []byte) error {
	if c.dead {
		return ErrCacheDead
	}
	if fr, ok := c.frames[lpn]; ok {
		sp := req.Begin(p, iotrace.LayerCache)
		fr.readers++ // pin: frame may be evicted while we sleep
		p.Sleep(c.cfg.SlotAccess)
		fr.readers--
		sp.End(p)
		if c.dead {
			return ErrCacheDead
		}
		c.stats.CacheHits++
		if buf != nil {
			if fr.data != nil {
				copy(buf, fr.data)
			} else {
				for i := range buf {
					buf[i] = 0
				}
			}
		}
		return nil
	}
	return c.f.ReadSlot(p, req, lpn, buf)
}

// FlushCache executes the device flush-cache command: it drains every dirty
// frame to NAND. DuraSSD honors the command too — Table 1's "ON" row shows
// the durable drive crawling under per-write fsync just like the volatile
// ones; its advantage is that the host may safely *stop sending* the
// command (write barriers off, §2.2), because the capacitors already
// guarantee everything acknowledged. A volatile cache additionally journals
// the dirty mapping entries; DuraSSD's mapping table is capacitor-protected
// and skips that.
func (c *Controller) FlushCache(p *sim.Proc, req iotrace.Req) error {
	if c.dead {
		return ErrCacheDead
	}
	sp := req.Begin(p, iotrace.LayerFlushDrain)
	// Snapshot semantics: the command covers data dirty at its arrival;
	// writes arriving during the drain belong to the next flush. (Without
	// the epoch counter a steady writer stream would starve the flush.)
	target := c.flushed + int64(c.queued+c.inFlush)
	for c.flushed < target {
		if c.readOnly {
			// The flushers stopped; the remaining dirty frames cannot drain.
			sp.End(p)
			return storage.ErrReadOnly
		}
		c.drained.Wait(p)
		if c.dead {
			sp.End(p)
			return ErrCacheDead
		}
	}
	if c.cfg.Durable {
		p.Sleep(c.cfg.FlushAck)
		sp.End(p)
		return nil
	}
	sp.End(p)
	return c.f.FlushMapJournal(p, req)
}

// flushWorker continuously pulls write-backs from the flush list, pairing
// slots into full physical pages (§3.1.2's 4 KB-over-8 KB scheme).
func (c *Controller) flushWorker(p *sim.Proc) {
	// Per-worker scratch, reused across iterations: the FTL copies slot data
	// before its program completes, so nothing aliases these after Program
	// returns.
	var batch []*frame
	var slots []ftl.SlotWrite
	for {
		if c.closed || c.dead {
			return
		}
		batch = c.takeBatch(batch[:0])
		if len(batch) == 0 {
			c.f.NotifyIdle() // idle device: let background GC run
			c.hasDirty.Wait(p)
			continue
		}
		slots = slots[:0]
		for _, fr := range batch {
			slots = append(slots, ftl.SlotWrite{LPN: fr.lpn, Data: fr.data, Origin: fr.origin})
		}
		// Write-backs run under a background request tagged with the first
		// frame's origin, so GC they trigger is charged to the database
		// mechanism whose pages filled the cache.
		req := c.reg.NewReq(p, iotrace.OpWriteback, batch[0].origin, uint64(batch[0].lpn), len(batch))
		err := c.f.Program(p, req, slots)
		req.Finish(p)
		c.completeBatch(batch, err == nil)
		if errors.Is(err, storage.ErrReadOnly) {
			// FTL degraded to read-only: writes are over, but the device is
			// not dead — reads (cache hits and flash) keep working. Wake
			// everyone stalled on flusher progress so they fail typed.
			if !c.readOnly {
				c.readOnly = true
				c.hasDirty.WakeAll()
				c.space.WakeAll()
				c.drained.WakeAll()
			}
			return
		}
		if err != nil {
			// Power failure or a fatal FTL error (e.g. out of space). Mark
			// the controller dead so stalled writers fail instead of
			// waiting forever on a flusher that no longer runs.
			if !c.dead {
				c.dead = true
				c.hasDirty.WakeAll()
				c.space.WakeAll()
				c.drained.WakeAll()
			}
			return
		}
	}
}

// takeBatch pops up to SlotsPerPage dirty frames from the flush list,
// appending them to the caller's scratch.
func (c *Controller) takeBatch(batch []*frame) []*frame {
	max := c.f.SlotsPerPage()
	for len(batch) < max && c.dirtyq.len() > 0 {
		lpn := c.dirtyq.pop()
		c.queued--
		fr, ok := c.frames[lpn]
		if !ok || fr.state != frameDirty {
			continue // superseded entry
		}
		fr.state = frameBusy
		c.inFlush++
		batch = append(batch, fr)
	}
	return batch
}

func (c *Controller) completeBatch(batch []*frame, ok bool) {
	for _, fr := range batch {
		c.inFlush--
		if !ok {
			// Program failed (power cut): leave the frame busy; the dump
			// or the loss accounting picks it up.
			continue
		}
		c.flushed++ // the staged version is on flash now
		if fr.redirty {
			fr.redirty = false
			fr.state = frameDirty
			c.enqueueDirty(fr.lpn)
			continue
		}
		fr.state = frameClean
		c.pinned--
		c.cleanq.push(fr.lpn)
	}
	if ok {
		c.space.WakeAll()
		c.drained.WakeAll()
	}
}

// Close stops the flush workers once the queue is idle (test hygiene).
func (c *Controller) Close() {
	c.closed = true
	c.hasDirty.WakeAll()
}

// PowerFail is called by the device on power-off detection. For a durable
// cache it runs the capacitor-powered dump; for a volatile cache it counts
// the lost pages. Either way the controller is dead afterwards.
func (c *Controller) PowerFail() {
	if c.dead {
		return
	}
	c.dead = true
	c.hasDirty.WakeAll()
	c.space.WakeAll()
	c.drained.WakeAll()

	if !c.cfg.Durable {
		for _, fr := range c.frames {
			if fr.state != frameClean || fr.redirty {
				c.stats.LostPages++
			}
		}
		c.frames = nil
		return
	}
	c.dump()
}

// dump writes the modified mapping entries and every pinned frame to the
// dump area under capacitor power (instantaneous in virtual time: the host
// clock has stopped).
func (c *Controller) dump() {
	area := newDumpArea(c.f)
	budget := c.cfg.DumpBudgetPages
	if budget <= 0 {
		budget = area.capacity()
	}

	// Mapping entries first: without them the buffered pages could not be
	// reintegrated idempotently. A program that fails with bad status (the
	// partial-dump fault: the dying supply tears the page) is retried on the
	// next pre-erased dump page while budget and area remain — the margin
	// the paper sizes the dump area for.
	mapPages := c.f.MapJournalPages()
	for done := 0; done < mapPages && budget > 0; {
		budget--
		if area.programMapPage() {
			done++
			c.stats.DumpPages++
		} else if area.capacity() == 0 {
			break
		} else {
			c.stats.DumpRetries++
		}
	}
	c.f.ClearMapDirty()

	// Buffer pool in flush-list order, then remaining pinned frames.
	var pending []ftl.SlotWrite
	flushPage := func() bool {
		if len(pending) == 0 {
			return true
		}
		for budget > 0 {
			budget--
			if area.programSlots(pending) {
				c.stats.DumpPages++
				pending = nil
				return true
			}
			if area.capacity() == 0 {
				return false
			}
			c.stats.DumpRetries++ // torn dump page: retry on the next one
		}
		return false
	}
	seen := make(map[storage.LPN]bool)
	emit := func(fr *frame) bool {
		if fr == nil || seen[fr.lpn] || (fr.state == frameClean && !fr.redirty) {
			return true
		}
		seen[fr.lpn] = true
		pending = append(pending, ftl.SlotWrite{LPN: fr.lpn, Data: fr.data})
		if len(pending) == c.f.SlotsPerPage() {
			return flushPage()
		}
		return true
	}
	ok := true
	for i := 0; i < c.dirtyq.len(); i++ {
		if !emit(c.frames[c.dirtyq.at(i)]) {
			ok = false
			break
		}
	}
	if ok {
		// Busy frames are not on the queue; dump them in LPN-stable order
		// via the clean queue trick is impossible, so walk the flush list
		// first and sweep the rest deterministically by LPN.
		rest := make([]storage.LPN, 0)
		for lpn, fr := range c.frames {
			if !seen[lpn] && (fr.state != frameClean || fr.redirty) {
				rest = append(rest, lpn)
			}
		}
		sortLPNs(rest)
		for _, lpn := range rest {
			if !emit(c.frames[lpn]) {
				ok = false
				break
			}
		}
	}
	if ok && !flushPage() {
		ok = false
	}
	if !ok {
		// Capacitor budget exhausted: remaining pinned frames are lost.
		for lpn, fr := range c.frames {
			if !seen[lpn] && (fr.state != frameClean || fr.redirty) {
				c.stats.LostPages++
				_ = lpn
			}
		}
		c.stats.LostPages += int64(len(pending))
	}
	c.frames = nil
}

func sortLPNs(lpns []storage.LPN) {
	// insertion sort: dump sets are small (a few thousand at most)
	for i := 1; i < len(lpns); i++ {
		for j := i; j > 0 && lpns[j] < lpns[j-1]; j-- {
			lpns[j], lpns[j-1] = lpns[j-1], lpns[j]
		}
	}
}
