package core

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"durassd/internal/ftl"
	"durassd/internal/iotrace"
	"durassd/internal/nand"
	"durassd/internal/sim"
	"durassd/internal/storage"
)

type rig struct {
	eng   *sim.Engine
	arr   *nand.Array
	f     *ftl.FTL
	c     *Controller
	stats *storage.Stats
}

func newRig(t *testing.T, durable bool, frames int) *rig {
	t.Helper()
	eng := sim.New()
	reg := iotrace.NewRegistry()
	stats := reg.Stats()
	a, err := nand.New(eng, nand.EnterpriseConfig(16), reg)
	if err != nil {
		t.Fatal(err)
	}
	fcfg := ftl.DefaultConfig(a.Config().PageSize)
	if durable {
		fcfg.DumpBlocks = 16
	} else {
		fcfg.EagerMapping = true
	}
	f, err := ftl.New(a, fcfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(f)
	cfg.Durable = durable
	if frames > 0 {
		cfg.Frames = frames
	}
	c := NewController(f, cfg, reg)
	return &rig{eng: eng, arr: a, f: f, c: c, stats: stats}
}

func slotData(ss int, v byte) []byte { return bytes.Repeat([]byte{v}, ss) }

func TestWriteAcksFromCache(t *testing.T) {
	r := newRig(t, true, 0)
	var ackTime time.Duration
	r.eng.Go("w", func(p *sim.Proc) {
		if err := r.c.Write(p, iotrace.Req{}, []ftl.SlotWrite{{LPN: 1}}); err != nil {
			t.Errorf("Write: %v", err)
		}
		ackTime = p.Now()
	})
	r.eng.Run()
	// Ack must come at DRAM speed, far below the NAND program latency.
	if ackTime >= r.arr.Config().ProgramLatency {
		t.Fatalf("ack at %v, not cache-speed", ackTime)
	}
	// But the flusher must eventually program it.
	if r.stats.NANDPrograms == 0 {
		t.Fatal("flusher never programmed the page")
	}
	if r.c.DirtySlots() != 0 {
		t.Fatal("dirty slots remain after drain")
	}
}

func TestReadHitsCache(t *testing.T) {
	r := newRig(t, true, 0)
	ss := r.f.SlotSize()
	d := slotData(ss, 0x5a)
	r.eng.Go("rw", func(p *sim.Proc) {
		if err := r.c.Write(p, iotrace.Req{}, []ftl.SlotWrite{{LPN: 9, Data: d}}); err != nil {
			t.Errorf("Write: %v", err)
		}
		buf := make([]byte, ss)
		if err := r.c.Read(p, iotrace.Req{}, 9, buf); err != nil {
			t.Errorf("Read: %v", err)
		}
		if !bytes.Equal(buf, d) {
			t.Error("cache read returned wrong data")
		}
	})
	r.eng.Run()
	if r.stats.CacheHits == 0 {
		t.Fatal("read did not hit the cache")
	}
}

func TestReadMissGoesToFlash(t *testing.T) {
	r := newRig(t, true, 0)
	ss := r.f.SlotSize()
	d := slotData(ss, 0x77)
	if err := r.f.LoadSlots([]ftl.SlotWrite{{LPN: 33, Data: d}}); err != nil {
		t.Fatal(err)
	}
	r.eng.Go("r", func(p *sim.Proc) {
		buf := make([]byte, ss)
		if err := r.c.Read(p, iotrace.Req{}, 33, buf); err != nil {
			t.Errorf("Read: %v", err)
		}
		if !bytes.Equal(buf, d) {
			t.Error("flash read returned wrong data")
		}
	})
	r.eng.Run()
	if r.stats.CacheHits != 0 {
		t.Fatal("unexpected cache hit")
	}
	if r.stats.NANDReads == 0 {
		t.Fatal("no NAND read issued")
	}
}

func TestOverwriteCoalescesInCache(t *testing.T) {
	// Rapid overwrites of the same LPN must not multiply NAND programs:
	// old copies are discarded (paper §3.1.1 endurance point).
	r := newRig(t, true, 0)
	const n = 50
	r.eng.Go("w", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			if err := r.c.Write(p, iotrace.Req{}, []ftl.SlotWrite{{LPN: 4}}); err != nil {
				t.Errorf("Write: %v", err)
			}
		}
	})
	r.eng.Run()
	if r.stats.CacheOverlaps == 0 {
		t.Fatal("no overlapped writes coalesced")
	}
	if r.stats.NANDPrograms >= n {
		t.Fatalf("NAND programs = %d for %d overwrites; coalescing broken", r.stats.NANDPrograms, n)
	}
}

func TestDurableFlushCacheDrainsButSkipsMapJournal(t *testing.T) {
	// DuraSSD honors flush-cache (Table 1 "ON" row), but its capacitor-
	// protected mapping table needs no journal flush.
	r := newRig(t, true, 0)
	r.eng.Go("w", func(p *sim.Proc) {
		for i := 0; i < 32; i++ {
			if err := r.c.Write(p, iotrace.Req{}, []ftl.SlotWrite{{LPN: storage.LPN(i)}}); err != nil {
				t.Errorf("Write: %v", err)
			}
		}
		if err := r.c.FlushCache(p, iotrace.Req{}); err != nil {
			t.Errorf("FlushCache: %v", err)
		}
		if r.c.DirtySlots() != 0 {
			t.Error("flush-cache did not drain the durable cache")
		}
	})
	r.eng.Run()
	if r.stats.MapFlushPages != 0 {
		t.Fatal("durable cache journaled the mapping table")
	}
}

func TestVolatileFlushCacheDrains(t *testing.T) {
	r := newRig(t, false, 0)
	var flushTime time.Duration
	r.eng.Go("w", func(p *sim.Proc) {
		for i := 0; i < 32; i++ {
			if err := r.c.Write(p, iotrace.Req{}, []ftl.SlotWrite{{LPN: storage.LPN(i)}}); err != nil {
				t.Errorf("Write: %v", err)
			}
		}
		start := p.Now()
		if err := r.c.FlushCache(p, iotrace.Req{}); err != nil {
			t.Errorf("FlushCache: %v", err)
		}
		flushTime = p.Now() - start
		if r.c.DirtySlots() != 0 {
			t.Error("dirty slots remain after flush-cache")
		}
	})
	r.eng.Run()
	if flushTime < r.arr.Config().ProgramLatency {
		t.Fatalf("volatile flush-cache took only %v; did not drain", flushTime)
	}
	if r.stats.MapFlushPages == 0 {
		t.Fatal("volatile flush did not journal the mapping")
	}
}

func TestWriteStallWhenCacheFull(t *testing.T) {
	// A cache of 8 frames fed 64 distinct pages must stall writers on the
	// flusher, but still complete everything.
	r := newRig(t, true, 8)
	var done int
	r.eng.Go("w", func(p *sim.Proc) {
		for i := 0; i < 64; i++ {
			if err := r.c.Write(p, iotrace.Req{}, []ftl.SlotWrite{{LPN: storage.LPN(i)}}); err != nil {
				t.Errorf("Write %d: %v", i, err)
				return
			}
			done++
		}
	})
	r.eng.Run()
	if done != 64 {
		t.Fatalf("completed %d/64 writes", done)
	}
	if err := r.f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCommandTooLarge(t *testing.T) {
	r := newRig(t, true, 4)
	var err error
	r.eng.Go("w", func(p *sim.Proc) {
		slots := make([]ftl.SlotWrite, 5)
		for i := range slots {
			slots[i].LPN = storage.LPN(i)
		}
		err = r.c.Write(p, iotrace.Req{}, slots)
	})
	r.eng.Run()
	if err != ErrCommandTooLarge {
		t.Fatalf("err = %v, want ErrCommandTooLarge", err)
	}
}

func TestFlusherPairsSlots(t *testing.T) {
	// With 2 slots per physical page, N dirty slots should need about N/2
	// programs, not N.
	r := newRig(t, true, 0)
	const n = 64
	r.eng.Go("w", func(p *sim.Proc) {
		slots := make([]ftl.SlotWrite, n)
		for i := range slots {
			slots[i].LPN = storage.LPN(i)
		}
		if err := r.c.Write(p, iotrace.Req{}, slots); err != nil {
			t.Errorf("Write: %v", err)
		}
	})
	r.eng.Run()
	if r.stats.NANDPrograms > n/2+4 {
		t.Fatalf("programs = %d for %d slots; pairing broken", r.stats.NANDPrograms, n)
	}
}

func TestDurablePowerFailDumpsAndRecovers(t *testing.T) {
	r := newRig(t, true, 0)
	ss := r.f.SlotSize()
	const n = 40
	want := make(map[storage.LPN][]byte)
	r.eng.Go("w", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			lpn := storage.LPN(i)
			d := slotData(ss, byte(i+1))
			want[lpn] = d
			if err := r.c.Write(p, iotrace.Req{}, []ftl.SlotWrite{{LPN: lpn, Data: d}}); err != nil {
				return // power may hit mid-run
			}
		}
	})
	// Cut power while writes are streaming (some flushed, some cached).
	r.eng.Schedule(200*time.Microsecond, func() {
		r.arr.PowerFail()
		r.c.PowerFail()
	})
	r.eng.Run()

	if r.stats.LostPages != 0 {
		t.Fatalf("durable cache lost %d pages", r.stats.LostPages)
	}
	// Reboot: recover and verify every acknowledged write.
	r.arr.PowerOn()
	if !NeedsRecovery(r.f) && r.stats.DumpPages > 0 {
		t.Fatal("dump present but NeedsRecovery is false")
	}
	r.eng.Go("recover", func(p *sim.Proc) {
		if err := Recover(p, r.f, time.Millisecond, r.stats); err != nil {
			t.Errorf("Recover: %v", err)
			return
		}
		buf := make([]byte, ss)
		for lpn, d := range want {
			if err := r.f.ReadSlot(p, iotrace.Req{}, lpn, buf); err != nil {
				t.Errorf("read %d: %v", lpn, err)
				return
			}
			if !bytes.Equal(buf, d) {
				t.Errorf("page %d lost or corrupted after recovery", lpn)
				return
			}
		}
	})
	r.eng.Run()
	if NeedsRecovery(r.f) {
		t.Fatal("dump area not cleared after recovery")
	}
	if r.stats.Recoveries != 1 {
		t.Fatalf("recoveries = %d", r.stats.Recoveries)
	}
	if err := r.f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestVolatilePowerFailLosesCachedWrites(t *testing.T) {
	r := newRig(t, false, 0)
	r.eng.Go("w", func(p *sim.Proc) {
		for i := 0; i < 40; i++ {
			if err := r.c.Write(p, iotrace.Req{}, []ftl.SlotWrite{{LPN: storage.LPN(i)}}); err != nil {
				return
			}
		}
	})
	r.eng.Schedule(150*time.Microsecond, func() {
		r.arr.PowerFail()
		r.c.PowerFail()
	})
	r.eng.Run()
	if r.stats.LostPages == 0 {
		t.Fatal("volatile cache lost nothing despite power cut with dirty data")
	}
	if r.stats.DumpPages != 0 {
		t.Fatal("volatile cache produced a dump")
	}
}

func TestCapacitorBudgetTooSmall(t *testing.T) {
	// Ablation: an under-provisioned capacitor bank cannot dump the whole
	// buffer pool; the shortfall is recorded as lost pages.
	eng := sim.New()
	reg := iotrace.NewRegistry()
	stats := reg.Stats()
	a, _ := nand.New(eng, nand.EnterpriseConfig(16), reg)
	fcfg := ftl.DefaultConfig(a.Config().PageSize)
	fcfg.DumpBlocks = 16
	f, _ := ftl.New(a, fcfg, reg)
	cfg := DefaultConfig(f)
	cfg.DumpBudgetPages = 2 // can only save ~4 slots
	cfg.FlushWorkers = 1    // keep lots of data in cache
	c := NewController(f, cfg, reg)

	eng.Go("w", func(p *sim.Proc) {
		slots := make([]ftl.SlotWrite, 64)
		for i := range slots {
			slots[i].LPN = storage.LPN(i)
		}
		_ = c.Write(p, iotrace.Req{}, slots)
		a.PowerFail()
		c.PowerFail()
	})
	eng.Run()
	if stats.DumpPages == 0 {
		t.Fatal("no pages dumped at all")
	}
	if stats.LostPages == 0 {
		t.Fatal("undersized capacitor bank lost nothing — budget not enforced")
	}
}

func TestAtomicWriterRollsBackIncompleteCommand(t *testing.T) {
	// Power fails while a command's data is still streaming into the
	// cache: the command must report failure and stage nothing.
	r := newRig(t, true, 0)
	var werr error
	r.eng.Go("w", func(p *sim.Proc) {
		slots := make([]ftl.SlotWrite, 32)
		for i := range slots {
			slots[i].LPN = storage.LPN(100 + i)
		}
		werr = r.c.Write(p, iotrace.Req{}, slots)
	})
	// 32 slots * 2us SlotAccess = 64us transfer; cut at 10us.
	r.eng.Schedule(10*time.Microsecond, func() {
		r.arr.PowerFail()
		r.c.PowerFail()
	})
	r.eng.Run()
	if werr != ErrPowerDuringWrite {
		t.Fatalf("err = %v, want ErrPowerDuringWrite", werr)
	}
	if r.stats.DumpPages != 0 {
		t.Fatal("incomplete command leaked into the dump")
	}
	// After reboot, none of the command's pages may exist.
	r.arr.PowerOn()
	r.eng.Go("check", func(p *sim.Proc) {
		if err := Recover(p, r.f, 0, r.stats); err != nil {
			t.Errorf("Recover: %v", err)
		}
		for i := 0; i < 32; i++ {
			if r.f.Mapped(storage.LPN(100 + i)) {
				t.Errorf("slot %d from rolled-back command is visible", 100+i)
				return
			}
		}
	})
	r.eng.Run()
}

func TestRecoveryIdempotent(t *testing.T) {
	// Run recovery twice; the second run must be a no-op.
	r := newRig(t, true, 0)
	r.eng.Go("w", func(p *sim.Proc) {
		_ = r.c.Write(p, iotrace.Req{}, []ftl.SlotWrite{{LPN: 7}})
		r.arr.PowerFail()
		r.c.PowerFail()
	})
	r.eng.Run()
	r.arr.PowerOn()
	r.eng.Go("recover", func(p *sim.Proc) {
		if err := Recover(p, r.f, 0, r.stats); err != nil {
			t.Errorf("first recover: %v", err)
		}
		if err := Recover(p, r.f, 0, r.stats); err != nil {
			t.Errorf("second recover: %v", err)
		}
	})
	r.eng.Run()
	if !r.f.Mapped(7) && r.stats.DumpPages > 0 {
		t.Fatal("recovered page lost")
	}
}

func TestRandomPowerCutsNeverLoseAckedWrites(t *testing.T) {
	// Property: for many random power-cut instants, every write that was
	// acknowledged before the cut is bit-exact after recovery.
	for trial := 0; trial < 12; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		eng := sim.New()
		reg := iotrace.NewRegistry()
		stats := reg.Stats()
		a, _ := nand.New(eng, nand.EnterpriseConfig(16), reg)
		fcfg := ftl.DefaultConfig(a.Config().PageSize)
		fcfg.DumpBlocks = 16
		f, _ := ftl.New(a, fcfg, reg)
		c := NewController(f, DefaultConfig(f), reg)

		acked := make(map[storage.LPN]byte)
		ss := f.SlotSize()
		eng.Go("w", func(p *sim.Proc) {
			for i := 0; i < 300; i++ {
				lpn := storage.LPN(rng.Intn(64))
				v := byte(rng.Intn(255) + 1)
				if err := c.Write(p, iotrace.Req{}, []ftl.SlotWrite{{LPN: lpn, Data: slotData(ss, v)}}); err != nil {
					return
				}
				acked[lpn] = v
			}
		})
		cut := time.Duration(rng.Intn(3000)) * time.Microsecond
		eng.Schedule(cut, func() {
			a.PowerFail()
			c.PowerFail()
		})
		eng.Run()

		a.PowerOn()
		eng.Go("verify", func(p *sim.Proc) {
			if err := Recover(p, f, 0, stats); err != nil {
				t.Errorf("trial %d: recover: %v", trial, err)
				return
			}
			buf := make([]byte, ss)
			for lpn, v := range acked {
				if err := f.ReadSlot(p, iotrace.Req{}, lpn, buf); err != nil {
					t.Errorf("trial %d: read: %v", trial, err)
					return
				}
				for _, b := range buf {
					if b != v {
						t.Errorf("trial %d (cut=%v): lpn %d = %x, want %x", trial, cut, lpn, b, v)
						return
					}
				}
			}
		})
		eng.Run()
		if stats.LostPages != 0 {
			t.Fatalf("trial %d: durable cache lost %d pages", trial, stats.LostPages)
		}
	}
}

func TestDumpRetriesTornDumpProgram(t *testing.T) {
	// Partial-dump fault: the dying supply tears a dump program mid-block.
	// The firmware sees the bad status, retries on the next pre-erased dump
	// page, and recovery still restores every acknowledged write.
	r := newRig(t, true, 0)
	ss := r.f.SlotSize()
	const n = 40
	want := make(map[storage.LPN][]byte)
	r.eng.Go("w", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			lpn := storage.LPN(i)
			d := slotData(ss, byte(i+1))
			want[lpn] = d
			if err := r.c.Write(p, iotrace.Req{}, []ftl.SlotWrite{{LPN: lpn, Data: d}}); err != nil {
				return
			}
		}
	})
	r.eng.Schedule(200*time.Microsecond, func() {
		r.arr.SetFaults(nand.Faults{DumpTearAfter: 2})
		r.arr.PowerFail()
		r.c.PowerFail()
	})
	r.eng.Run()

	if r.stats.DumpRetries == 0 {
		t.Fatal("armed dump tear produced no retry — the fault did not fire")
	}
	if r.stats.TornPages == 0 {
		t.Fatal("torn dump page not recorded")
	}
	if r.stats.LostPages != 0 {
		t.Fatalf("dump retry still lost %d pages", r.stats.LostPages)
	}

	r.arr.PowerOn()
	r.eng.Go("recover", func(p *sim.Proc) {
		if err := Recover(p, r.f, time.Millisecond, r.stats); err != nil {
			t.Errorf("Recover: %v", err)
			return
		}
		buf := make([]byte, ss)
		for lpn, d := range want {
			if err := r.f.ReadSlot(p, iotrace.Req{}, lpn, buf); err != nil {
				t.Errorf("read %d: %v", lpn, err)
				return
			}
			if !bytes.Equal(buf, d) {
				t.Errorf("page %d lost or corrupted after torn-dump recovery", lpn)
				return
			}
		}
	})
	r.eng.Run()
	if NeedsRecovery(r.f) {
		t.Fatal("dump area not cleared after recovery")
	}
	if err := r.f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
