package core

import (
	"sort"
	"time"

	"durassd/internal/ftl"
	"durassd/internal/iotrace"
	"durassd/internal/nand"
	"durassd/internal/sim"
	"durassd/internal/storage"
)

// dumpArea manages the pre-erased blocks reserved for the power-failure
// dump (paper §3.4.1: "a group of clean flash memory blocks are always
// available for the dump area ... so the key data structures can be flushed
// as fast as possible without encountering a garbage collection").
type dumpArea struct {
	f      *ftl.FTL
	a      *nand.Array
	blocks []int
	cursor int // pages already consumed across the area
}

func newDumpArea(f *ftl.FTL) *dumpArea {
	return &dumpArea{f: f, a: f.Array(), blocks: f.DumpBlockIDs()}
}

// capacity returns the remaining programmable pages in the area.
func (d *dumpArea) capacity() int {
	return len(d.blocks)*d.a.Config().PagesPerBlock - d.cursor
}

func (d *dumpArea) nextPage() (nand.PPN, bool) {
	ppb := d.a.Config().PagesPerBlock
	for d.cursor < len(d.blocks)*ppb {
		blk := d.blocks[d.cursor/ppb]
		ppn := d.a.PageOfBlock(blk) + nand.PPN(d.cursor%ppb)
		d.cursor++
		if d.a.State(ppn) == nand.PageFree {
			return ppn, true
		}
	}
	return 0, false
}

// programMapPage dumps one page of modified mapping entries.
func (d *dumpArea) programMapPage() bool {
	ppn, ok := d.nextPage()
	if !ok {
		return false
	}
	return d.a.ProgramPageInstant(ppn, nil, nil, true) == nil
}

// programSlots dumps one buffer-pool page holding the given slots.
func (d *dumpArea) programSlots(slots []ftl.SlotWrite) bool {
	ppn, ok := d.nextPage()
	if !ok {
		return false
	}
	tags := make([]nand.SlotTag, len(slots))
	var data []byte
	for i, s := range slots {
		tags[i] = nand.SlotTag{LPN: s.LPN}
		if s.Data != nil && data == nil {
			data = make([]byte, d.a.Config().PageSize)
		}
	}
	if data != nil {
		ss := d.f.SlotSize()
		for i, s := range slots {
			if s.Data != nil {
				copy(data[i*ss:(i+1)*ss], s.Data)
			}
		}
	}
	return d.a.ProgramPageInstant(ppn, tags, data, true) == nil
}

// NeedsRecovery reports whether the dump area holds a power-failure dump
// (the paper's "emergent shutdown" flag: the dump's existence is the flag).
func NeedsRecovery(f *ftl.FTL) bool {
	a := f.Array()
	ppb := a.Config().PagesPerBlock
	for _, blk := range f.DumpBlockIDs() {
		first := a.PageOfBlock(blk)
		for i := 0; i < ppb; i++ {
			if m := a.Meta(first + nand.PPN(i)); m != nil && m.Dump {
				return true
			}
		}
	}
	return false
}

// Recover implements the reboot path of the recovery manager (paper §3.4.2):
// recharge the capacitors, replay the write-backs stored in the dump area
// through the normal program path (reflecting them in the mapping table),
// then clear the dump area and the emergency state. Recovery is idempotent:
// replayed pages are programmed before the dump is erased, so a second
// power failure during recovery just replays again.
func Recover(p *sim.Proc, f *ftl.FTL, recharge time.Duration, stats *storage.Stats) error {
	p.Sleep(recharge)
	req := f.Registry().NewReq(p, iotrace.OpRecovery, iotrace.OriginUnknown, 0, 0)
	defer req.Finish(p)
	a := f.Array()
	ppb := a.Config().PagesPerBlock
	ss := f.SlotSize()

	type dumpPage struct {
		seq   uint64
		slots []ftl.SlotWrite
	}
	var pages []dumpPage
	for _, blk := range f.DumpBlockIDs() {
		first := a.PageOfBlock(blk)
		for i := 0; i < ppb; i++ {
			ppn := first + nand.PPN(i)
			meta := a.Meta(ppn)
			if meta == nil || !meta.Dump || len(meta.Slots) == 0 {
				continue // erased, or a mapping-entry page (no replay needed)
			}
			var buf []byte
			if a.Data(ppn) != nil {
				buf = make([]byte, a.Config().PageSize)
			}
			if err := a.ReadPage(p, req, ppn, buf); err != nil {
				return err
			}
			dp := dumpPage{seq: meta.Seq}
			for si, tag := range meta.Slots {
				// Torn dump pages (a program the dying capacitors failed to
				// finish) are detectable and must not be replayed — the dump
				// logic already re-programmed their slots at a higher seq.
				if tag.LPN == nand.InvalidLPN || tag.Torn {
					continue
				}
				var d []byte
				if buf != nil {
					d = append([]byte(nil), buf[si*ss:(si+1)*ss]...)
				}
				dp.slots = append(dp.slots, ftl.SlotWrite{LPN: tag.LPN, Data: d})
			}
			if len(dp.slots) > 0 {
				pages = append(pages, dp)
			}
		}
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i].seq < pages[j].seq })
	for _, dp := range pages {
		if err := f.Program(p, req, dp.slots); err != nil {
			return err
		}
	}
	for _, blk := range f.DumpBlockIDs() {
		if a.Meta(a.PageOfBlock(blk)) == nil {
			// Cheap check: block already erased (no page 0 metadata and
			// dumps fill pages in order).
			continue
		}
		if err := a.EraseBlock(p, req, blk); err != nil {
			return err
		}
	}
	f.ClearMapDirty() // replay re-dirtied entries; they are map-journal clean now
	if stats != nil {
		stats.Recoveries++
	}
	return nil
}
