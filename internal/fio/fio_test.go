package fio

import (
	"testing"

	"durassd/internal/host"
	"durassd/internal/sim"
	"durassd/internal/ssd"
	"durassd/internal/storage"
)

func newFS(t *testing.T) (*sim.Engine, *host.FS) {
	t.Helper()
	eng := sim.New()
	dev, err := ssd.New(eng, ssd.DuraSSD(16))
	if err != nil {
		t.Fatal(err)
	}
	return eng, host.NewFS(dev, true)
}

func TestWriteJob(t *testing.T) {
	eng, fs := newFS(t)
	res, err := Run(eng, fs, Job{
		Name: "w", Threads: 4, BlockBytes: 4 * storage.KB, Ops: 1000,
		FilePages: 10_000, Preload: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 1000 || res.IOPS() <= 0 {
		t.Fatalf("ops=%d iops=%v", res.Ops, res.IOPS())
	}
	if res.Lat.Count() != 1000 {
		t.Fatalf("latency samples = %d", res.Lat.Count())
	}
}

func TestReadJobNeedsPreload(t *testing.T) {
	eng, fs := newFS(t)
	res, err := Run(eng, fs, Job{
		Name: "r", Threads: 8, BlockBytes: 4 * storage.KB, ReadPct: 100,
		Ops: 500, FilePages: 10_000, Preload: true, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fs.Device().Stats().NANDReads == 0 {
		t.Fatal("read-only job issued no NAND reads")
	}
	_ = res
}

func TestFsyncFrequencyHurtsThroughput(t *testing.T) {
	run := func(every int) float64 {
		eng, fs := newFS(t)
		res, err := Run(eng, fs, Job{
			Name: "f", BlockBytes: 4 * storage.KB, Ops: 400,
			FsyncEvery: every, FilePages: 10_000, Preload: true, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.IOPS()
	}
	everyWrite, rarely := run(1), run(128)
	if rarely < 5*everyWrite {
		t.Fatalf("fsync-per-write IOPS %v vs fsync/128 %v; Table 1's effect missing", everyWrite, rarely)
	}
}

func TestBadBlockSizeRejected(t *testing.T) {
	eng, fs := newFS(t)
	if _, err := Run(eng, fs, Job{Name: "bad", BlockBytes: 5000, Ops: 1, FilePages: 100}); err == nil {
		t.Fatal("non-multiple block size accepted")
	}
}

func TestRunFileReusesWorkingSet(t *testing.T) {
	eng, fs := newFS(t)
	file, err := fs.Create("shared", 10_000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		res, err := RunFile(eng, file, Job{Name: "re", BlockBytes: 4 * storage.KB, Ops: 200, Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Ops != 200 {
			t.Fatalf("run %d ops = %d", i, res.Ops)
		}
	}
}
