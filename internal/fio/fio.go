// Package fio is a flexible I/O benchmark harness in the spirit of the fio
// tool the paper uses for Tables 1 and 2: multi-threaded random reads and
// writes of a configurable block size against a file, with an fsync every N
// writes per thread.
package fio

import (
	"fmt"
	"math/rand"
	"time"

	"durassd/internal/host"
	"durassd/internal/iotrace"
	"durassd/internal/sim"
	"durassd/internal/stats"
)

// Job describes one benchmark run.
type Job struct {
	Name       string
	Threads    int   // concurrent client threads
	BlockBytes int   // I/O size per operation (must be a multiple of the device page)
	ReadPct    int   // 0 = write-only, 100 = read-only
	FsyncEvery int   // fsync after every N writes per thread; 0 = never
	Ops        int   // total operations across all threads
	FilePages  int64 // file size in device pages (0 = most of the device)
	Seed       int64
	Preload    bool // instant-fill the file before the run (for reads / GC realism)
}

// Result summarizes a run.
type Result struct {
	Job     Job
	Ops     int64
	Elapsed time.Duration
	Lat     stats.Hist
	// ReadLat and WriteLat split the distribution by direction (tail-
	// latency analysis: reads suffering behind writes, paper §1-2).
	ReadLat  stats.Hist
	WriteLat stats.Hist
}

// IOPS returns operations per second of virtual time.
func (r Result) IOPS() float64 { return stats.Throughput(r.Ops, r.Elapsed) }

// Run creates a working file on fs (90% of the device unless FilePages is
// set), optionally preloads it, and executes the job.
func Run(eng *sim.Engine, fs *host.FS, job Job) (Result, error) {
	filePages := job.FilePages
	if filePages == 0 {
		filePages = fs.Device().Pages() * 9 / 10
	}
	name := fmt.Sprintf("fio-%s-%d", job.Name, eng.Now())
	file, err := fs.Create(name, filePages)
	if err != nil {
		return Result{}, err
	}
	if job.Preload {
		if err := file.Preload(0, filePages, nil); err != nil {
			return Result{}, err
		}
	}
	return RunFile(eng, file, job)
}

// RunFile executes the job against an existing file, so a sweep can reuse
// one device and working set across cells. It drives the engine, so the
// caller must not be inside a simulation process.
func RunFile(eng *sim.Engine, file *host.File, job Job) (Result, error) {
	pd, err := Start(eng, file, job)
	if err != nil {
		return Result{}, err
	}
	eng.Run()
	return pd.Result()
}

// Pending is a started but not yet completed job: Start has spawned the
// client threads, and the caller drives the simulation (Engine.Run, or
// Cluster.Run when the job is one shard of a multi-domain benchmark).
// Collect the outcome with Result once the run drains.
type Pending struct {
	eng      *sim.Engine
	res      *Result
	firstErr *error
	start    time.Duration
}

// Result returns the job outcome. Call it only after the simulation has
// drained; Elapsed is measured from Start to the engine's current time.
func (pd *Pending) Result() (Result, error) {
	pd.res.Elapsed = pd.eng.Now() - pd.start
	return *pd.res, *pd.firstErr
}

// Start spawns the job's client threads on eng without driving the
// simulation, in exactly the order RunFile would — the event schedule is
// identical, only the caller owns the Run.
func Start(eng *sim.Engine, file *host.File, job Job) (*Pending, error) {
	if job.Threads <= 0 {
		job.Threads = 1
	}
	if file.Origin() == iotrace.OriginUnknown {
		file.SetOrigin(iotrace.OriginData)
	}
	devPage := file.PageSize()
	if job.BlockBytes == 0 {
		job.BlockBytes = devPage
	}
	if job.BlockBytes%devPage != 0 {
		return nil, fmt.Errorf("fio: block %d not a multiple of device page %d", job.BlockBytes, devPage)
	}
	pagesPerOp := job.BlockBytes / devPage
	blocks := file.Pages() / int64(pagesPerOp)
	if blocks <= 0 {
		return nil, fmt.Errorf("fio: file too small for block size")
	}

	pd := &Pending{eng: eng, res: &Result{Job: job}, start: eng.Now()}
	res := pd.res
	perThread := job.Ops / job.Threads
	if perThread == 0 {
		perThread = 1
	}
	var firstErr error
	pd.firstErr = &firstErr
	for t := 0; t < job.Threads; t++ {
		rng := rand.New(rand.NewSource(job.Seed + int64(t)*7919))
		eng.Go(fmt.Sprintf("fio-%d", t), func(p *sim.Proc) {
			writes := 0
			for i := 0; i < perThread; i++ {
				off := rng.Int63n(blocks) * int64(pagesPerOp)
				opStart := p.Now()
				var err error
				isRead := rng.Intn(100) < job.ReadPct
				if isRead {
					err = file.ReadPages(p, off, pagesPerOp, nil)
				} else {
					err = file.WritePages(p, off, pagesPerOp, nil)
					if err == nil {
						writes++
						if job.FsyncEvery > 0 && writes%job.FsyncEvery == 0 {
							err = file.Fsync(p)
						}
					}
				}
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				took := p.Now() - opStart
				res.Lat.Record(took)
				if isRead {
					res.ReadLat.Record(took)
				} else {
					res.WriteLat.Record(took)
				}
				res.Ops++
			}
		})
	}
	return pd, nil
}
