package couch

import (
	"testing"
	"time"

	"durassd/internal/host"
	"durassd/internal/sim"
	"durassd/internal/ssd"
	"durassd/internal/storage"
)

func newStore(t *testing.T, barrier bool, batch int) (*sim.Engine, *Store, *ssd.Device) {
	t.Helper()
	eng := sim.New()
	dev, err := ssd.New(eng, ssd.DuraSSD(16))
	if err != nil {
		t.Fatal(err)
	}
	fs := host.NewFS(dev, barrier)
	st, err := Open(eng, fs, Config{Docs: 100_000, BatchSize: batch})
	if err != nil {
		t.Fatal(err)
	}
	return eng, st, dev
}

func TestUpdateUnitIsAbout20KBAtPaperScale(t *testing.T) {
	// At the paper's scale (millions of documents) the COW tree is four
	// levels deep and each update appends ~20 KB.
	eng := sim.New()
	dev, err := ssd.New(eng, ssd.DuraSSD(16))
	if err != nil {
		t.Fatal(err)
	}
	st, err := Open(eng, host.NewFS(dev, true), Config{Docs: 2_000_000, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Depth() != 4 {
		t.Fatalf("tree depth = %d, want the paper's 4", st.Depth())
	}
	ub := st.UpdateBytes()
	if ub < 16*storage.KB || ub > 24*storage.KB {
		t.Fatalf("update unit = %d bytes, want ~20KB", ub)
	}
}

func TestBatchSizeControlsFsyncs(t *testing.T) {
	for _, batch := range []int{1, 10} {
		eng, st, _ := newStore(t, true, batch)
		eng.Go("t", func(p *sim.Proc) {
			for i := int64(0); i < 100; i++ {
				if err := st.Update(p, i); err != nil {
					t.Errorf("Update: %v", err)
					return
				}
			}
		})
		eng.Run()
		want := int64(100 / batch)
		if st.Fsyncs() != want {
			t.Fatalf("batch=%d fsyncs = %d, want %d", batch, st.Fsyncs(), want)
		}
	}
}

func TestBarrierDominatesUpdateCost(t *testing.T) {
	cost := func(barrier bool) time.Duration {
		eng, st, _ := newStore(t, barrier, 1)
		var total time.Duration
		eng.Go("t", func(p *sim.Proc) {
			start := p.Now()
			for i := int64(0); i < 50; i++ {
				if err := st.Update(p, i); err != nil {
					t.Errorf("Update: %v", err)
					return
				}
			}
			total = p.Now() - start
		})
		eng.Run()
		return total
	}
	on, off := cost(true), cost(false)
	if on < 3*off {
		t.Fatalf("barrier-on updates (%v) not much slower than barrier-off (%v)", on, off)
	}
}

func TestReadCachedVsStorage(t *testing.T) {
	eng, st, dev := newStore(t, true, 1)
	eng.Go("t", func(p *sim.Proc) {
		if err := st.Read(p, 5, true); err != nil {
			t.Errorf("cached read: %v", err)
		}
		reads := dev.Stats().ReadCommands
		if reads != 0 {
			t.Error("cached read touched storage")
		}
		if err := st.Read(p, 5, false); err != nil {
			t.Errorf("storage read: %v", err)
		}
		if dev.Stats().ReadCommands == reads {
			t.Error("storage read issued no device read")
		}
	})
	eng.Run()
}

func TestKeyRange(t *testing.T) {
	eng, st, _ := newStore(t, true, 1)
	eng.Go("t", func(p *sim.Proc) {
		if err := st.Update(p, -1); err == nil {
			t.Error("negative key accepted")
		}
		if err := st.Read(p, 1<<40, false); err == nil {
			t.Error("out-of-range key accepted")
		}
	})
	eng.Run()
}

func TestAppendLogWraps(t *testing.T) {
	// Drive enough updates to wrap the append log at least once.
	eng := sim.New()
	dev, _ := ssd.New(eng, ssd.DuraSSD(32))
	fs := host.NewFS(dev, false)
	st, err := Open(eng, fs, Config{Docs: 1_000, BatchSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	n := int(st.filePages/int64(st.pagesPerUpd)) + 50
	eng.Go("t", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			if err := st.Update(p, int64(i%1000)); err != nil {
				t.Errorf("Update %d: %v", i, err)
				return
			}
		}
	})
	eng.Run()
	if st.wraps == 0 {
		t.Fatal("append log never wrapped")
	}
}

func TestCompactRewritesLiveData(t *testing.T) {
	eng, st, _ := newStore(t, false, 10)
	eng.Go("t", func(p *sim.Proc) {
		rewritten, err := st.Compact(p)
		if err != nil {
			t.Errorf("Compact: %v", err)
			return
		}
		if rewritten <= 0 {
			t.Error("compaction rewrote nothing")
		}
	})
	eng.Run()
}
