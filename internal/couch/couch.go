// Package couch implements a Couchbase-style document store: an
// append-only, copy-on-write B+-tree where every update rewrites the
// root-to-leaf node path plus the document and appends them to storage as
// one unit (paper §4.3.3). Durability is traded against throughput with the
// batch-size knob: an fsync every k updates.
//
// With the paper's parameters — 1 KB documents, 4 KB tree nodes, a tree of
// depth four — each update appends about 20 KB.
package couch

import (
	"fmt"
	"time"

	"durassd/internal/dbsim/index"
	"durassd/internal/host"
	"durassd/internal/iotrace"
	"durassd/internal/sim"
	"durassd/internal/storage"
)

// Config describes the store.
type Config struct {
	Docs      int64 // number of documents
	DocBytes  int   // document size (YCSB: ~1 KB)
	NodeBytes int   // B+-tree node size (default 4 KB)
	BatchSize int   // fsync every BatchSize updates (>=1)

	// CacheDocs is the fraction (percent) of reads served from Couchbase's
	// managed object cache without touching storage.
	CacheDocsPct int

	// OpCPU is the per-operation server CPU (single-threaded appends).
	OpCPU time.Duration
	// FsyncCPU is the host-side cost of an fsync call even without write
	// barriers (journal bookkeeping).
	FsyncCPU time.Duration
}

func (c *Config) defaults() error {
	if c.Docs <= 0 {
		return fmt.Errorf("couch: Docs must be positive")
	}
	if c.DocBytes <= 0 {
		c.DocBytes = 1 * storage.KB
	}
	if c.NodeBytes <= 0 {
		c.NodeBytes = 4 * storage.KB
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 1
	}
	if c.CacheDocsPct < 0 || c.CacheDocsPct > 100 {
		return fmt.Errorf("couch: CacheDocsPct out of range")
	}
	if c.OpCPU == 0 {
		c.OpCPU = 150 * time.Microsecond
	}
	if c.FsyncCPU == 0 {
		c.FsyncCPU = 200 * time.Microsecond
	}
	return nil
}

// Store is one Couchbase bucket's storage engine.
type Store struct {
	cfg  Config
	eng  *sim.Engine
	file *host.File
	tree *index.Tree

	appendPos    int64 // next device page in the append log
	filePages    int64
	sinceFsync   int
	pagesPerUpd  int
	updatesTotal int64
	fsyncsTotal  int64
	wraps        int64 // compaction cycles (log wrap-arounds)
}

// Open creates the store's append log on fs, sized to most of the device,
// and installs the initial documents instantly.
func Open(eng *sim.Engine, fs *host.FS, cfg Config) (*Store, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	// 75% of the device: an append-only store at higher fill would thrash
	// the FTL's garbage collector (thin over-provisioning + full logical
	// space is the worst case for greedy GC).
	filePages := fs.Device().Pages() * 3 / 4
	file, err := fs.Create("couch.couch", filePages)
	if err != nil {
		return nil, err
	}
	file.SetOrigin(iotrace.OriginJournal)
	tree, err := index.New(index.Config{
		PageBytes: cfg.NodeBytes,
		RowBytes:  64, // key + file offset per entry
		KeyBytes:  16,
		MaxRows:   cfg.Docs * 2,
	}, 0)
	if err != nil {
		return nil, err
	}
	tree.SetRows(cfg.Docs)

	st := &Store{cfg: cfg, eng: eng, file: file, tree: tree, filePages: filePages}
	// Update unit: root-to-leaf node path + the document, rounded to
	// device pages ("the size of each update was about 20KB").
	devPage := fs.Device().PageSize()
	updBytes := tree.Depth()*cfg.NodeBytes + cfg.DocBytes
	st.pagesPerUpd = (updBytes + devPage - 1) / devPage

	// Preload the initial documents (timing-free bulk load).
	initPages := cfg.Docs * int64((cfg.DocBytes+devPage-1)/devPage)
	if initPages > filePages/2 {
		initPages = filePages / 2
	}
	if err := file.Preload(0, initPages, nil); err != nil {
		return nil, err
	}
	st.appendPos = initPages
	return st, nil
}

// UpdateBytes returns the bytes appended per update.
func (s *Store) UpdateBytes() int { return s.pagesPerUpd * s.file.PageSize() }

// Depth returns the B+-tree depth.
func (s *Store) Depth() int { return s.tree.Depth() }

// Fsyncs returns the number of fsync calls issued.
func (s *Store) Fsyncs() int64 { return s.fsyncsTotal }

// Update rewrites one document: the new document and its rewritten tree
// path are appended as a single unit, and every BatchSize-th update fsyncs
// the log.
func (s *Store) Update(p *sim.Proc, key int64) error {
	if key < 0 || key >= s.cfg.Docs {
		return fmt.Errorf("couch: key %d out of range", key)
	}
	p.Sleep(s.cfg.OpCPU)
	if s.appendPos+int64(s.pagesPerUpd) > s.filePages {
		// The append log wrapped: compaction reclaimed the head (modeled
		// as a free wrap; compaction I/O runs in Compact).
		s.appendPos = 0
		s.wraps++
	}
	if err := s.file.WritePages(p, s.appendPos, s.pagesPerUpd, nil); err != nil {
		return err
	}
	s.appendPos += int64(s.pagesPerUpd)
	s.updatesTotal++
	s.sinceFsync++
	if s.sinceFsync >= s.cfg.BatchSize {
		s.sinceFsync = 0
		if err := s.fsync(p); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) fsync(p *sim.Proc) error {
	p.Sleep(s.cfg.FsyncCPU)
	s.fsyncsTotal++
	return s.file.Fdatasync(p)
}

// Read fetches one document. A CacheDocsPct fraction is served from the
// managed cache; the rest reads the document from the log.
func (s *Store) Read(p *sim.Proc, key int64, cached bool) error {
	if key < 0 || key >= s.cfg.Docs {
		return fmt.Errorf("couch: key %d out of range", key)
	}
	p.Sleep(s.cfg.OpCPU)
	if cached {
		return nil
	}
	devPage := s.file.PageSize()
	n := (s.cfg.DocBytes + devPage - 1) / devPage
	off := (key * int64(n)) % (s.filePages - int64(n))
	return s.file.ReadPages(p, off, n, nil)
}

// Compact rewrites the live data sequentially (a full compaction pass),
// returning the bytes rewritten. Offered as an extension; the paper's runs
// don't trigger it.
func (s *Store) Compact(p *sim.Proc) (int64, error) {
	devPage := s.file.PageSize()
	docPages := int64((s.cfg.DocBytes + devPage - 1) / devPage)
	live := s.cfg.Docs * docPages
	if live > s.filePages {
		live = s.filePages
	}
	const chunk = 256
	for off := int64(0); off < live; off += chunk {
		n := int64(chunk)
		if off+n > live {
			n = live - off
		}
		if err := s.file.ReadPages(p, off, int(n), nil); err != nil {
			return 0, err
		}
		if err := s.file.WritePages(p, off, int(n), nil); err != nil {
			return 0, err
		}
	}
	if err := s.fsync(p); err != nil {
		return 0, err
	}
	return live * int64(devPage), nil
}
