package nand

import (
	"math/rand"
	"time"
)

// DefaultECCBits is the per-page correction capability assumed when
// MediaConfig.ECCBits is zero.
const DefaultECCBits = 8

// MediaConfig parameterizes the seeded, deterministic bit-error model.
// The zero value is ideal media: no retention loss, no read disturb, no
// wear sensitivity — reads behave exactly as before the model existed.
// Stuck-bit injection (InjectBitErrors) and the ECC threshold are active
// regardless, so fault-injection tests work on any configuration.
type MediaConfig struct {
	// Seed drives the stochastic rounding of fractional expected error
	// counts. Same seed + same read schedule = identical error outcomes.
	Seed int64
	// RetentionPerMs is the expected number of soft bit errors per page per
	// millisecond of (virtual) time since the page was programmed.
	RetentionPerMs float64
	// DisturbPerKRead is the expected number of soft bit errors per page
	// per thousand physical reads of any page in its block.
	DisturbPerKRead float64
	// WearFactor scales both rates by (1 + WearFactor × block erase count),
	// modeling cell degradation with program/erase cycles.
	WearFactor float64
	// ECCBits is the correctable-bit threshold per page (0 = DefaultECCBits).
	// It is clamped to the number of ECC codewords per page.
	ECCBits int
}

// active reports whether the time/read-dependent error rates are armed.
func (m MediaConfig) active() bool {
	return m.RetentionPerMs > 0 || m.DisturbPerKRead > 0
}

// ReadInfo reports the media-level detail of one successful page read.
type ReadInfo struct {
	// CorrectedBits is the number of bit errors the ECC corrected.
	CorrectedBits int
}

// initMedia sets up the error-model state (called from New).
func (a *Array) initMedia(m MediaConfig) {
	a.media = m
	a.eccBits = m.ECCBits
	if a.eccBits <= 0 {
		a.eccBits = DefaultECCBits
	}
	if cw := eccCodewords(a.cfg.PageSize); a.eccBits > cw {
		a.eccBits = cw
	}
	a.mediaRng = rand.New(rand.NewSource(m.Seed))
	a.progAt = make([]time.Duration, a.cfg.Pages())
	a.stuck = make([]int32, a.cfg.Pages())
	a.blockReads = make([]int64, a.cfg.Blocks())
}

// ECCBits returns the effective per-page correction threshold.
func (a *Array) ECCBits() int { return a.eccBits }

// ProgrammedAt returns the virtual time ppn was last programmed (the
// scrubber's retention-age gate).
func (a *Array) ProgrammedAt(ppn PPN) time.Duration { return a.progAt[ppn] }

// InjectBitErrors adds n stuck bit errors to the stored image of ppn —
// damage that read retries cannot shift away, cleared only by erasing the
// block. Returns false when ppn is out of range or not programmed.
func (a *Array) InjectBitErrors(ppn PPN, n int) bool {
	if int64(ppn) >= a.cfg.Pages() || a.state[ppn] != PageValid {
		return false
	}
	a.stuck[ppn] += int32(n)
	return true
}

// SetWear overrides the erase counter of the global block index (campaign
// hook: pre-age specific blocks so wear-out retirement triggers on a
// schedule instead of after thousands of simulated erases).
func (a *Array) SetWear(block int, erases int64) { a.erases[block] = erases }

// softBits returns the model's transient (retry-recoverable) bit-error
// count for a read of ppn right now: retention age and accumulated block
// read disturb, scaled by wear, with seeded stochastic rounding of the
// fractional part.
func (a *Array) softBits(ppn PPN) int {
	m := a.media
	if !m.active() {
		return 0
	}
	block := a.BlockOf(ppn)
	age := float64(a.eng.Now()-a.progAt[ppn]) / float64(time.Millisecond)
	x := m.RetentionPerMs*age + m.DisturbPerKRead*float64(a.blockReads[block])/1000
	x *= 1 + m.WearFactor*float64(a.erases[block])
	n := int(x)
	if frac := x - float64(n); frac > 0 && a.mediaRng.Float64() < frac {
		n++
	}
	return n
}

// errorBits returns the total bit errors a read of ppn observes on retry
// attempt k (0 = first read). Each retry re-reads with a shifted reference
// voltage, halving the soft errors; stuck bits never improve.
func (a *Array) errorBits(ppn PPN, attempt int) int {
	soft := a.softBits(ppn)
	if attempt > 0 {
		soft >>= uint(attempt)
	}
	return int(a.stuck[ppn]) + soft
}

// corruptPage flips n bits of page in place at deterministic positions,
// placed so the real ECC codec reaches the same verdict as the model:
// while n is within the correction threshold the flips spread one per
// codeword (each corrected by SEC-DED); beyond it they cluster in codeword
// zero, which SEC-DED detects (even count) or the page CRC catches (odd
// miscorrection).
func corruptPage(page []byte, ppn PPN, n, eccBits int) {
	if n <= 0 || len(page) == 0 {
		return
	}
	base := int(uint32(ppn) * 2654435761 >> 4) // Knuth hash: vary positions across pages
	if n <= eccBits {
		for k := 0; k < n; k++ {
			cw := cwSlice(page, k)
			pos := (base + k*40503) % (len(cw) * 8)
			cw[pos>>3] ^= 1 << (pos & 7)
		}
		return
	}
	cw := cwSlice(page, 0)
	bits := len(cw) * 8
	if n > bits {
		n = bits
	}
	for k := 0; k < n; k++ {
		pos := (base + k) % bits
		cw[pos>>3] ^= 1 << (pos & 7)
	}
}

// cwSlice returns the i-th codeword of page.
func cwSlice(page []byte, i int) []byte {
	start := i * eccCodewordBytes
	end := start + eccCodewordBytes
	if end > len(page) {
		end = len(page)
	}
	return page[start:end]
}
