package nand

import (
	"bytes"
	"testing"
)

// FuzzECCRoundTrip drives the codec with arbitrary page images and
// arbitrary corruption patterns. The safety property under fuzz is the one
// the whole media pipeline rests on: ECCDecode must NEVER return ok=true
// for bytes that differ from the encoded original. Failing to correct is
// acceptable (the FTL retries, retires, or reports the typed error);
// miscorrecting silently is not.
func FuzzECCRoundTrip(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{0x00}, []byte{0x00, 0x01})
	f.Add(bytes.Repeat([]byte{0xa5}, 512), []byte{0x01, 0x02, 0x03})
	f.Add(bytes.Repeat([]byte{0x3c}, 1024), []byte{0xff, 0xfe, 0x10, 0x20, 0x30, 0x40})
	f.Add(testPage(4096, 42), []byte{0x07, 0x07, 0x07})
	f.Fuzz(func(t *testing.T, page, flips []byte) {
		if len(page) > 16384 {
			page = page[:16384]
		}
		parity := ECCEncode(page)
		img := append([]byte(nil), page...)
		// Interpret the fuzz bytes as bit-flip positions (two bytes each)
		// across the page, plus a final parity-corruption toggle.
		for i := 0; i+1 < len(flips) && len(img) > 0; i += 2 {
			pos := (int(flips[i])<<8 | int(flips[i+1])) % (len(img) * 8)
			img[pos>>3] ^= 1 << (pos & 7)
		}
		if len(flips)%2 == 1 && len(parity) > 0 {
			parity[int(flips[len(flips)-1])%len(parity)] ^= 0x40
		}
		n, ok := ECCDecode(img, parity)
		if !ok {
			return // detected damage: safe outcome by definition
		}
		if !bytes.Equal(img, page) {
			t.Fatalf("ECCDecode returned wrong data as correct (corrected=%d, %d flip bytes)", n, len(flips))
		}
	})
}
