package nand

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"durassd/internal/iotrace"
	"durassd/internal/sim"
	"durassd/internal/storage"
)

func mediaConfig(m MediaConfig) Config {
	cfg := testConfig()
	cfg.Media = m
	return cfg
}

func TestInjectBitErrorsRequiresProgrammedPage(t *testing.T) {
	a := newTestArray(t, sim.New())
	if a.InjectBitErrors(0, 4) {
		t.Fatal("injection accepted on a free page")
	}
	if a.InjectBitErrors(PPN(a.Config().Pages()), 4) {
		t.Fatal("injection accepted out of range")
	}
	if err := a.ProgramPageInstant(0, []SlotTag{{LPN: 1}}, nil, false); err != nil {
		t.Fatal(err)
	}
	if !a.InjectBitErrors(0, 4) {
		t.Fatal("injection rejected on a programmed page")
	}
}

func TestStuckBitsBeyondECCStayUncorrectable(t *testing.T) {
	eng := sim.New()
	reg := iotrace.NewRegistry()
	a, err := New(eng, testConfig(), reg)
	if err != nil {
		t.Fatal(err)
	}
	data := testPage(a.Config().PageSize, 7)
	if err := a.ProgramPageInstant(0, []SlotTag{{LPN: 1}}, data, false); err != nil {
		t.Fatal(err)
	}
	if !a.InjectBitErrors(0, a.ECCBits()+1) {
		t.Fatal("injection rejected")
	}
	eng.Go("io", func(p *sim.Proc) {
		buf := make([]byte, len(data))
		if err := a.ReadPage(p, iotrace.Req{}, 0, buf); !errors.Is(err, storage.ErrUncorrectable) {
			t.Errorf("first read = %v, want ErrUncorrectable", err)
		}
		// Stuck damage is in the cells, not the read conditions: retries
		// with shifted reference voltages cannot recover it.
		if _, err := a.ReadPageRetry(p, iotrace.Req{}, 0, buf, 3); !errors.Is(err, storage.ErrUncorrectable) {
			t.Errorf("retry read = %v, want ErrUncorrectable", err)
		}
	})
	eng.Run()
	if got := reg.Stats().NANDReads; got != 2 {
		t.Fatalf("NANDReads = %d, want 2", got)
	}
}

func TestRetentionErrorsCorrectedWithinThreshold(t *testing.T) {
	eng := sim.New()
	reg := iotrace.NewRegistry()
	a, err := New(eng, mediaConfig(MediaConfig{Seed: 3, RetentionPerMs: 0.25}), reg)
	if err != nil {
		t.Fatal(err)
	}
	data := testPage(a.Config().PageSize, 8)
	if err := a.ProgramPageInstant(0, []SlotTag{{LPN: 1}}, data, false); err != nil {
		t.Fatal(err)
	}
	eng.Go("io", func(p *sim.Proc) {
		p.Sleep(8 * time.Millisecond) // age the page: ~2 expected soft errors
		buf := make([]byte, len(data))
		info, err := a.ReadPageRetry(p, iotrace.Req{}, 0, buf, 0)
		if err != nil {
			t.Errorf("aged read: %v", err)
			return
		}
		if info.CorrectedBits < 1 || info.CorrectedBits > a.ECCBits() {
			t.Errorf("CorrectedBits = %d, want within (0, %d]", info.CorrectedBits, a.ECCBits())
		}
		if !bytes.Equal(buf, data) {
			t.Error("corrected read returned wrong bytes")
		}
	})
	eng.Run()
	if reg.Stats().CorrectedBits == 0 {
		t.Fatal("CorrectedBits stat not accumulated")
	}
}

func TestReadRetryRecoversHeavyRetentionLoss(t *testing.T) {
	eng := sim.New()
	a, err := New(eng, mediaConfig(MediaConfig{Seed: 5, RetentionPerMs: 1}), nil)
	if err != nil {
		t.Fatal(err)
	}
	data := testPage(a.Config().PageSize, 9)
	if err := a.ProgramPageInstant(0, []SlotTag{{LPN: 1}}, data, false); err != nil {
		t.Fatal(err)
	}
	eng.Go("io", func(p *sim.Proc) {
		p.Sleep(12 * time.Millisecond) // ~12 soft errors: past the ECC threshold
		buf := make([]byte, len(data))
		if _, err := a.ReadPageRetry(p, iotrace.Req{}, 0, buf, 0); !errors.Is(err, storage.ErrUncorrectable) {
			t.Errorf("attempt 0 = %v, want ErrUncorrectable", err)
		}
		// One retry halves the transient errors back under the threshold.
		info, err := a.ReadPageRetry(p, iotrace.Req{}, 0, buf, 1)
		if err != nil {
			t.Errorf("attempt 1: %v", err)
			return
		}
		if info.CorrectedBits == 0 {
			t.Error("retry read should still have corrected bits")
		}
		if !bytes.Equal(buf, data) {
			t.Error("retry read returned wrong bytes")
		}
	})
	eng.Run()
}

func TestEraseClearsStuckBitsAndAge(t *testing.T) {
	eng := sim.New()
	a := newTestArray(t, eng)
	data := testPage(a.Config().PageSize, 10)
	if err := a.ProgramPageInstant(0, []SlotTag{{LPN: 1}}, data, false); err != nil {
		t.Fatal(err)
	}
	a.InjectBitErrors(0, 1000)
	a.EraseBlockInstant(0)
	if err := a.ProgramPageInstant(0, []SlotTag{{LPN: 1}}, data, false); err != nil {
		t.Fatal(err)
	}
	eng.Go("io", func(p *sim.Proc) {
		buf := make([]byte, len(data))
		info, err := a.ReadPageRetry(p, iotrace.Req{}, 0, buf, 0)
		if err != nil || info.CorrectedBits != 0 {
			t.Errorf("post-erase read = (%d, %v), want clean", info.CorrectedBits, err)
		}
		if !bytes.Equal(buf, data) {
			t.Error("post-erase read returned wrong bytes")
		}
	})
	eng.Run()
}

func TestWearScalesErrorRates(t *testing.T) {
	eng := sim.New()
	a, err := New(eng, mediaConfig(MediaConfig{Seed: 6, RetentionPerMs: 0.5, WearFactor: 1}), nil)
	if err != nil {
		t.Fatal(err)
	}
	data := testPage(a.Config().PageSize, 11)
	// Page 0 sits in a fresh block; a heavily-cycled block sees the same
	// retention age amplified past the ECC threshold.
	if err := a.ProgramPageInstant(0, []SlotTag{{LPN: 1}}, data, false); err != nil {
		t.Fatal(err)
	}
	a.SetWear(0, 50) // 4ms * 0.5/ms * (1+50) ≈ 102 expected errors
	eng.Go("io", func(p *sim.Proc) {
		p.Sleep(4 * time.Millisecond)
		buf := make([]byte, len(data))
		if _, err := a.ReadPageRetry(p, iotrace.Req{}, 0, buf, 0); !errors.Is(err, storage.ErrUncorrectable) {
			t.Errorf("worn-block read = %v, want ErrUncorrectable", err)
		}
	})
	eng.Run()
}
