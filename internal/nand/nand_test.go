package nand

import (
	"bytes"
	"testing"
	"time"

	"durassd/internal/iotrace"
	"durassd/internal/sim"
	"durassd/internal/storage"
)

func testConfig() Config {
	cfg := EnterpriseConfig(16)
	return cfg
}

func newTestArray(t *testing.T, eng *sim.Engine) *Array {
	t.Helper()
	a, err := New(eng, testConfig(), nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return a
}

func TestConfigGeometry(t *testing.T) {
	cfg := EnterpriseConfig(1)
	if got := cfg.Planes(); got != 32 {
		t.Fatalf("Planes = %d, want 32", got)
	}
	if cfg.Pages() != int64(cfg.Blocks())*int64(cfg.PagesPerBlock) {
		t.Fatal("page accounting inconsistent")
	}
	if cfg.Bytes() != cfg.Pages()*int64(cfg.PageSize) {
		t.Fatal("byte accounting inconsistent")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := testConfig()
	bad.Channels = 0
	if _, err := New(sim.New(), bad, nil); err == nil {
		t.Fatal("expected error for zero channels")
	}
	bad = testConfig()
	bad.PageSize = 0
	if _, err := New(sim.New(), bad, nil); err == nil {
		t.Fatal("expected error for zero page size")
	}
}

func TestProgramReadRoundTrip(t *testing.T) {
	eng := sim.New()
	a := newTestArray(t, eng)
	data := bytes.Repeat([]byte{0xab}, a.Config().PageSize)
	eng.Go("io", func(p *sim.Proc) {
		if err := a.ProgramPage(p, iotrace.Req{}, 0, []SlotTag{{LPN: 7}, {LPN: 8}}, data, false); err != nil {
			t.Errorf("ProgramPage: %v", err)
		}
		buf := make([]byte, a.Config().PageSize)
		if err := a.ReadPage(p, iotrace.Req{}, 0, buf); err != nil {
			t.Errorf("ReadPage: %v", err)
		}
		if !bytes.Equal(buf, data) {
			t.Error("read data differs from programmed data")
		}
	})
	eng.Run()
	if a.State(0) != PageValid {
		t.Fatal("page not valid after program")
	}
	meta := a.Meta(0)
	if meta == nil || len(meta.Slots) != 2 || meta.Slots[0].LPN != 7 || meta.Slots[1].LPN != 8 {
		t.Fatalf("OOB = %+v", meta)
	}
}

func TestProgramRequiresErase(t *testing.T) {
	eng := sim.New()
	a := newTestArray(t, eng)
	eng.Go("io", func(p *sim.Proc) {
		if err := a.ProgramPage(p, iotrace.Req{}, 3, []SlotTag{{LPN: 1}}, nil, false); err != nil {
			t.Errorf("first program: %v", err)
		}
		if err := a.ProgramPage(p, iotrace.Req{}, 3, []SlotTag{{LPN: 2}}, nil, false); err == nil {
			t.Error("expected rewrite without erase to fail")
		}
		if err := a.EraseBlock(p, iotrace.Req{}, a.BlockOf(3)); err != nil {
			t.Errorf("erase: %v", err)
		}
		if err := a.ProgramPage(p, iotrace.Req{}, 3, []SlotTag{{LPN: 2}}, nil, false); err != nil {
			t.Errorf("program after erase: %v", err)
		}
	})
	eng.Run()
	if a.EraseCount(a.BlockOf(3)) != 1 {
		t.Fatalf("erase count = %d, want 1", a.EraseCount(a.BlockOf(3)))
	}
}

func TestEraseClearsBlock(t *testing.T) {
	eng := sim.New()
	a := newTestArray(t, eng)
	ppb := a.Config().PagesPerBlock
	eng.Go("io", func(p *sim.Proc) {
		for i := 0; i < ppb; i++ {
			if err := a.ProgramPage(p, iotrace.Req{}, PPN(i), []SlotTag{{LPN: storage.LPN(i)}}, nil, false); err != nil {
				t.Errorf("program %d: %v", i, err)
			}
		}
		if err := a.EraseBlock(p, iotrace.Req{}, 0); err != nil {
			t.Errorf("erase: %v", err)
		}
	})
	eng.Run()
	for i := 0; i < ppb; i++ {
		if a.State(PPN(i)) != PageFree {
			t.Fatalf("page %d not free after erase", i)
		}
		if a.Meta(PPN(i)) != nil {
			t.Fatalf("page %d retains OOB after erase", i)
		}
	}
}

func TestParallelProgramsAcrossPlanes(t *testing.T) {
	eng := sim.New()
	a := newTestArray(t, eng)
	cfg := a.Config()
	pagesPerPlane := cfg.BlocksPerPlane * cfg.PagesPerBlock

	// Program one page in each of 8 distinct planes, all on distinct
	// channels where possible: programs should overlap.
	var finish time.Duration
	n := cfg.Channels
	for i := 0; i < n; i++ {
		planesPerChannel := cfg.PackagesPerChannel * cfg.ChipsPerPackage * cfg.PlanesPerChip
		ppn := PPN(i * planesPerChannel * pagesPerPlane)
		eng.Go("prog", func(p *sim.Proc) {
			if err := a.ProgramPage(p, iotrace.Req{}, ppn, []SlotTag{{LPN: 1}}, nil, false); err != nil {
				t.Errorf("program: %v", err)
			}
			if p.Now() > finish {
				finish = p.Now()
			}
		})
	}
	eng.Run()
	serial := time.Duration(n) * cfg.ProgramLatency
	if finish >= serial {
		t.Fatalf("no parallelism: finished at %v, serial would be %v", finish, serial)
	}
}

func TestSameplaneProgramsSerialize(t *testing.T) {
	eng := sim.New()
	a := newTestArray(t, eng)
	cfg := a.Config()
	var finish time.Duration
	for i := 0; i < 4; i++ {
		ppn := PPN(i) // same block, same plane
		eng.Go("prog", func(p *sim.Proc) {
			if err := a.ProgramPage(p, iotrace.Req{}, ppn, []SlotTag{{LPN: 1}}, nil, false); err != nil {
				t.Errorf("program: %v", err)
			}
			if p.Now() > finish {
				finish = p.Now()
			}
		})
	}
	eng.Run()
	if finish < 4*cfg.ProgramLatency {
		t.Fatalf("same-plane programs overlapped: %v < %v", finish, 4*cfg.ProgramLatency)
	}
}

func TestPowerFailTearsInflightProgram(t *testing.T) {
	eng := sim.New()
	a := newTestArray(t, eng)
	data := bytes.Repeat([]byte{0x11}, a.Config().PageSize)
	var progErr error
	eng.Go("prog", func(p *sim.Proc) {
		progErr = a.ProgramPage(p, iotrace.Req{}, 5, []SlotTag{{LPN: 42}}, data, false)
	})
	// Cut power in the middle of the cell program (transfer ~29us, program 900us).
	eng.Schedule(200*time.Microsecond, func() { a.PowerFail() })
	eng.Run()
	if progErr != storage.ErrPowerFail {
		t.Fatalf("program error = %v, want ErrPowerFail", progErr)
	}
	meta := a.Meta(5)
	if meta == nil || !meta.Slots[0].Torn {
		t.Fatalf("page 5 not marked torn: %+v", meta)
	}
	img := a.Data(5)
	if bytes.Equal(img, data) {
		t.Fatal("torn page holds fully-new data")
	}
	if storage.Checksum(img) == storage.Checksum(data) {
		t.Fatal("torn page checksum matches intended data")
	}
}

func TestPowerFailBeforeTransferReturnsOffline(t *testing.T) {
	eng := sim.New()
	a := newTestArray(t, eng)
	a.PowerFail()
	var err error
	eng.Go("prog", func(p *sim.Proc) {
		err = a.ProgramPage(p, iotrace.Req{}, 5, []SlotTag{{LPN: 42}}, nil, false)
	})
	eng.Run()
	if err != storage.ErrOffline {
		t.Fatalf("err = %v, want ErrOffline", err)
	}
	if a.State(5) != PageFree {
		t.Fatal("page programmed while offline")
	}
}

func TestInstantOpsBypassTiming(t *testing.T) {
	eng := sim.New()
	a := newTestArray(t, eng)
	if err := a.ProgramPageInstant(9, []SlotTag{{LPN: 3}}, nil, true); err != nil {
		t.Fatalf("instant program: %v", err)
	}
	if eng.Now() != 0 {
		t.Fatal("instant program consumed virtual time")
	}
	if !a.Meta(9).Dump {
		t.Fatal("dump flag not recorded")
	}
	a.EraseBlockInstant(a.BlockOf(9))
	if a.State(9) != PageFree {
		t.Fatal("instant erase did not free page")
	}
}

func TestSequenceNumbersMonotonic(t *testing.T) {
	eng := sim.New()
	a := newTestArray(t, eng)
	eng.Go("io", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			if err := a.ProgramPage(p, iotrace.Req{}, PPN(i), []SlotTag{{LPN: storage.LPN(i)}}, nil, false); err != nil {
				t.Errorf("program: %v", err)
			}
		}
	})
	eng.Run()
	var last uint64
	for i := 0; i < 5; i++ {
		seq := a.Meta(PPN(i)).Seq
		if seq <= last {
			t.Fatalf("sequence not monotonic: %d after %d", seq, last)
		}
		last = seq
	}
}

func TestStatsCounters(t *testing.T) {
	eng := sim.New()
	reg := iotrace.NewRegistry()
	stats := reg.Stats()
	a, err := New(eng, testConfig(), reg)
	if err != nil {
		t.Fatal(err)
	}
	eng.Go("io", func(p *sim.Proc) {
		_ = a.ProgramPage(p, iotrace.Req{}, 0, []SlotTag{{LPN: 1}}, nil, false)
		_ = a.ReadPage(p, iotrace.Req{}, 0, nil)
		_ = a.EraseBlock(p, iotrace.Req{}, 0)
	})
	eng.Run()
	if stats.NANDPrograms != 1 || stats.NANDReads != 1 || stats.NANDErases != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestReadOutOfRange(t *testing.T) {
	eng := sim.New()
	a := newTestArray(t, eng)
	var err error
	eng.Go("io", func(p *sim.Proc) {
		err = a.ReadPage(p, iotrace.Req{}, PPN(a.Config().Pages()), nil)
	})
	eng.Run()
	if err != storage.ErrOutOfRange {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
}

func TestTimingOnlyReadZeroFills(t *testing.T) {
	eng := sim.New()
	a := newTestArray(t, eng)
	eng.Go("io", func(p *sim.Proc) {
		if err := a.ProgramPage(p, iotrace.Req{}, 0, []SlotTag{{LPN: 1}}, nil, false); err != nil {
			t.Errorf("program: %v", err)
		}
		buf := bytes.Repeat([]byte{0xff}, a.Config().PageSize)
		if err := a.ReadPage(p, iotrace.Req{}, 0, buf); err != nil {
			t.Errorf("read: %v", err)
		}
		for _, b := range buf {
			if b != 0 {
				t.Error("timing-only page did not read back zeroed")
				break
			}
		}
	})
	eng.Run()
}

func TestDumpTearFaultTearsNthInstantProgram(t *testing.T) {
	eng := sim.New()
	a := newTestArray(t, eng)
	a.SetFaults(Faults{DumpTearAfter: 2})
	a.PowerFail()
	data := bytes.Repeat([]byte{0xcd}, a.Config().PageSize)

	// First post-power-off program succeeds.
	if err := a.ProgramPageInstant(0, []SlotTag{{LPN: 1}}, data, true); err != nil {
		t.Fatalf("dump program 1: %v", err)
	}
	// Second one is the armed tear: bad status, page left torn.
	if err := a.ProgramPageInstant(1, []SlotTag{{LPN: 2}}, data, true); err != ErrProgramFailed {
		t.Fatalf("dump program 2: err = %v, want ErrProgramFailed", err)
	}
	if a.State(1) != PageValid {
		t.Fatal("torn dump page must read back as programmed (garbage), not free")
	}
	meta := a.Meta(1)
	if meta == nil || !meta.Dump || len(meta.Slots) != 1 || !meta.Slots[0].Torn || meta.Slots[0].LPN != 2 {
		t.Fatalf("torn dump OOB = %+v, want Dump-flagged torn tag preserving LPN 2", meta)
	}
	if bytes.Equal(a.Data(1), data) {
		t.Fatal("torn dump page holds the intended image intact")
	}
	// The retry on the next pre-erased page succeeds: the fault is one-shot.
	if err := a.ProgramPageInstant(2, []SlotTag{{LPN: 2}}, data, true); err != nil {
		t.Fatalf("dump retry: %v", err)
	}
	if a.Registry().Stats().TornPages != 1 {
		t.Fatalf("TornPages = %d, want 1", a.Registry().Stats().TornPages)
	}
}

func TestInterruptedEraseScramblesBlock(t *testing.T) {
	eng := sim.New()
	a := newTestArray(t, eng)
	a.SetFaults(Faults{InterruptedErase: true})
	data := bytes.Repeat([]byte{0x5a}, a.Config().PageSize)
	a.ProgramPageInstant(0, []SlotTag{{LPN: 9}}, data, false)

	var eraseErr error
	eng.Go("erase", func(p *sim.Proc) {
		eraseErr = a.EraseBlock(p, iotrace.Req{}, 0)
	})
	eng.Schedule(a.Config().EraseLatency/2, func() { a.PowerFail() })
	eng.Run()
	if eraseErr != storage.ErrPowerFail {
		t.Fatalf("erase err = %v, want ErrPowerFail", eraseErr)
	}
	// Every page of the block is indeterminate: programmed garbage under
	// unreadable (torn, LPN-less) OOB.
	for i := 0; i < a.Config().PagesPerBlock; i++ {
		ppn := PPN(i)
		if a.State(ppn) != PageValid {
			t.Fatalf("page %d state = %v, want PageValid (half-erased garbage)", i, a.State(ppn))
		}
		meta := a.Meta(ppn)
		if meta == nil || len(meta.Slots) != 1 || meta.Slots[0].LPN != InvalidLPN || !meta.Slots[0].Torn {
			t.Fatalf("page %d OOB = %+v, want single {InvalidLPN, Torn} tag", i, meta)
		}
	}
	if got := a.Registry().Stats().InterruptedErases; got != 1 {
		t.Fatalf("InterruptedErases = %d, want 1", got)
	}

	// A fresh erase under stable power reclaims the block.
	a.PowerOn()
	eng.Go("re-erase", func(p *sim.Proc) {
		if err := a.EraseBlock(p, iotrace.Req{}, 0); err != nil {
			t.Errorf("re-erase: %v", err)
		}
	})
	eng.Run()
	if a.State(0) != PageFree {
		t.Fatal("block not free after re-erase")
	}
}

func TestUninterruptedEraseCutLeavesBlockUntouched(t *testing.T) {
	// Without the fault armed, a power cut mid-erase is conservative: the
	// old contents survive verbatim.
	eng := sim.New()
	a := newTestArray(t, eng)
	data := bytes.Repeat([]byte{0x77}, a.Config().PageSize)
	a.ProgramPageInstant(0, []SlotTag{{LPN: 4}}, data, false)

	var eraseErr error
	eng.Go("erase", func(p *sim.Proc) {
		eraseErr = a.EraseBlock(p, iotrace.Req{}, 0)
	})
	eng.Schedule(a.Config().EraseLatency/2, func() { a.PowerFail() })
	eng.Run()
	if eraseErr != storage.ErrPowerFail {
		t.Fatalf("erase err = %v, want ErrPowerFail", eraseErr)
	}
	if a.State(0) != PageValid {
		t.Fatal("page lost without the interrupted-erase fault armed")
	}
	meta := a.Meta(0)
	if meta == nil || meta.Slots[0].LPN != 4 || meta.Slots[0].Torn {
		t.Fatalf("OOB = %+v, want intact {LPN 4} tag", meta)
	}
	if !bytes.Equal(a.Data(0), data) {
		t.Fatal("page contents changed across an un-faulted interrupted erase")
	}
}

func TestEventEmission(t *testing.T) {
	eng := sim.New()
	a := newTestArray(t, eng)
	var seen [iotrace.NumEvents]int
	a.Registry().SetEventFn(func(kind iotrace.EventKind, at time.Duration) {
		seen[kind]++
	})
	eng.Go("io", func(p *sim.Proc) {
		if err := a.ProgramPage(p, iotrace.Req{}, 0, []SlotTag{{LPN: 1}}, nil, false); err != nil {
			t.Errorf("program: %v", err)
		}
		if err := a.EraseBlock(p, iotrace.Req{}, 0); err != nil {
			t.Errorf("erase: %v", err)
		}
	})
	eng.Run()
	if seen[iotrace.EvProgram] != 1 || seen[iotrace.EvErase] != 1 {
		t.Fatalf("events = %v, want one program and one erase", seen)
	}
}
