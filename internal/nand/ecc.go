package nand

import (
	"encoding/binary"
	"hash/crc32"
)

// ECC codec: per-codeword SEC-DED Hamming parity with a whole-page CRC-32C
// backstop, stored in the OOB metadata of every page programmed with real
// bytes.
//
// Each page is split into 512-byte codewords. Per codeword the encoder
// stores a 13-bit syndrome — the XOR of (bit position | synMark) over every
// set bit — which corrects any single flipped bit and detects any even
// number of flips. An odd number of flips ≥ 3 can alias a single-bit
// correction (miscorrection); the page-level CRC catches that case, so the
// decoder never returns wrong data as correct (the fuzz target
// FuzzECCRoundTrip asserts exactly this property).

const (
	// eccCodewordBytes is the SEC-DED codeword granularity. Real devices
	// protect 512-byte or 1-KB chunks; one syndrome per chunk bounds the
	// correction capability per page to the number of codewords.
	eccCodewordBytes = 512
	// synMark is OR-ed into every position term so the syndrome of a single
	// flipped bit is nonzero and distinguishable from an even-flip detect.
	// It must exceed the largest bit position in a codeword (4095).
	synMark = 0x1000
)

var (
	eccCRC = crc32.MakeTable(crc32.Castagnoli)
	// bitXOR[b] is the XOR of the indices (0..7) of the set bits of b;
	// bitPar[b] is the parity of its popcount. Together they let cwSyndrome
	// fold a whole byte into the syndrome with two table lookups.
	bitXOR [256]uint16
	bitPar [256]uint16
)

func init() {
	for b := 1; b < 256; b++ {
		for i := 0; i < 8; i++ {
			if b&(1<<i) != 0 {
				bitXOR[b] ^= uint16(i)
				bitPar[b] ^= 1
			}
		}
	}
}

// eccCodewords returns the number of codewords covering a page of n bytes.
func eccCodewords(n int) int {
	return (n + eccCodewordBytes - 1) / eccCodewordBytes
}

// ECCSize returns the parity blob size for a page of n bytes: two syndrome
// bytes per codeword plus the 4-byte page CRC.
func ECCSize(n int) int { return 2*eccCodewords(n) + 4 }

// cwSyndrome computes the codeword syndrome: the XOR of (p | synMark) over
// every set bit position p. A single flipped bit at p changes the syndrome
// by exactly (p | synMark).
func cwSyndrome(cw []byte) uint16 {
	var xp, pr uint16
	for i, b := range cw {
		if b == 0 {
			continue
		}
		if bitPar[b] != 0 {
			xp ^= uint16(i) << 3
			pr ^= 1
		}
		xp ^= bitXOR[b]
	}
	if pr != 0 {
		xp |= synMark
	}
	return xp
}

// ECCEncode computes the parity blob for a page image.
func ECCEncode(page []byte) []byte {
	return ECCEncodeInto(nil, page)
}

// ECCEncodeInto appends the parity blob for a page image to dst (which is
// truncated to zero length first), reusing dst's capacity when possible.
func ECCEncodeInto(dst, page []byte) []byte {
	n := eccCodewords(len(page))
	size := 2*n + 4
	if cap(dst) >= size {
		dst = dst[:size]
	} else {
		dst = make([]byte, size) //simlint:allow hotalloc parity buffer capacity miss; steady state reuses the caller's slice
	}
	out := dst
	for c := 0; c < n; c++ {
		end := (c + 1) * eccCodewordBytes
		if end > len(page) {
			end = len(page)
		}
		binary.LittleEndian.PutUint16(out[2*c:], cwSyndrome(page[c*eccCodewordBytes:end]))
	}
	binary.LittleEndian.PutUint32(out[2*n:], crc32.Checksum(page, eccCRC))
	return out
}

// ECCDecode verifies page against the parity blob, correcting single-bit
// errors per codeword in place. It returns the number of bits corrected and
// whether the page decoded cleanly; on ok=false the page contents are
// undefined and must not be used.
func ECCDecode(page, parity []byte) (corrected int, ok bool) {
	n := eccCodewords(len(page))
	if len(parity) != 2*n+4 {
		return 0, false
	}
	for c := 0; c < n; c++ {
		end := (c + 1) * eccCodewordBytes
		if end > len(page) {
			end = len(page)
		}
		cw := page[c*eccCodewordBytes : end]
		d := binary.LittleEndian.Uint16(parity[2*c:]) ^ cwSyndrome(cw)
		switch {
		case d == 0:
			// Codeword clean.
		case d&synMark != 0:
			pos := int(d &^ synMark)
			if pos >= len(cw)*8 {
				return 0, false // syndrome points outside the codeword: multi-bit damage
			}
			cw[pos>>3] ^= 1 << (pos & 7)
			corrected++
		default:
			return 0, false // even number of flips: detected, uncorrectable
		}
	}
	if crc32.Checksum(page, eccCRC) != binary.LittleEndian.Uint32(parity[2*n:]) {
		return 0, false // miscorrection (≥3 aliased flips): CRC backstop
	}
	return corrected, true
}
