package nand

import (
	"bytes"
	"math/rand"
	"testing"
)

func testPage(size int, seed int64) []byte {
	page := make([]byte, size)
	rand.New(rand.NewSource(seed)).Read(page)
	return page
}

func TestECCRoundTripClean(t *testing.T) {
	for _, size := range []int{512, 4096, 8192, 1000} {
		page := testPage(size, 1)
		parity := ECCEncode(page)
		if got := len(parity); got != ECCSize(size) {
			t.Fatalf("size %d: parity length %d, want %d", size, got, ECCSize(size))
		}
		img := append([]byte(nil), page...)
		n, ok := ECCDecode(img, parity)
		if !ok || n != 0 {
			t.Fatalf("size %d: clean decode = (%d, %v), want (0, true)", size, n, ok)
		}
		if !bytes.Equal(img, page) {
			t.Fatalf("size %d: clean decode mutated the page", size)
		}
	}
}

func TestECCCorrectsOneBitPerCodeword(t *testing.T) {
	page := testPage(8192, 2)
	parity := ECCEncode(page)
	img := append([]byte(nil), page...)
	cws := eccCodewords(len(page))
	for c := 0; c < cws; c++ {
		pos := c*eccCodewordBytes*8 + (c*37+5)%(eccCodewordBytes*8)
		img[pos>>3] ^= 1 << (pos & 7)
	}
	n, ok := ECCDecode(img, parity)
	if !ok || n != cws {
		t.Fatalf("decode = (%d, %v), want (%d, true)", n, ok, cws)
	}
	if !bytes.Equal(img, page) {
		t.Fatal("correction did not restore the original page")
	}
}

func TestECCDetectsDoubleFlip(t *testing.T) {
	page := testPage(4096, 3)
	parity := ECCEncode(page)
	img := append([]byte(nil), page...)
	img[10] ^= 1 << 3
	img[200] ^= 1 << 6 // same codeword: even flip count, detected not corrected
	if _, ok := ECCDecode(img, parity); ok {
		t.Fatal("double flip in one codeword decoded as ok")
	}
}

func TestECCCRCBackstopsOddMultiFlip(t *testing.T) {
	// Three flips in one codeword can alias a single-bit correction; the
	// page CRC must reject the miscorrected image. Whatever the syndrome
	// path decides, ok=true with wrong bytes is the one forbidden outcome.
	page := testPage(4096, 4)
	parity := ECCEncode(page)
	for trial := int64(0); trial < 64; trial++ {
		img := append([]byte(nil), page...)
		rng := rand.New(rand.NewSource(trial))
		for k := 0; k < 3; k++ {
			pos := rng.Intn(eccCodewordBytes * 8)
			img[pos>>3] ^= 1 << (pos & 7)
		}
		if _, ok := ECCDecode(img, parity); ok && !bytes.Equal(img, page) {
			t.Fatalf("trial %d: triple flip returned wrong data as correct", trial)
		}
	}
}

func TestECCRejectsParityLengthMismatch(t *testing.T) {
	page := testPage(512, 5)
	if _, ok := ECCDecode(page, make([]byte, 3)); ok {
		t.Fatal("short parity accepted")
	}
}
