// Package nand models an array of NAND flash memory chips: the persistent
// medium inside every simulated SSD.
//
// The array reproduces the structural properties the paper's results depend
// on: multi-channel / multi-plane parallelism (paper §2.3: up to
// channels × packages × chips × planes concurrent operations), the latency
// gap between page reads and page programs, erase-before-rewrite semantics,
// and per-block wear. Page contents and out-of-band (OOB) metadata are
// stored so higher layers can implement recovery scans and torn-write
// detection with real bytes.
//
// An Array is the durable object in a power-failure experiment: SSD
// controllers are discarded and rebuilt across power cycles, the Array
// persists.
package nand

import (
	"fmt"
	"math/rand"
	"time"

	"durassd/internal/iotrace"
	"durassd/internal/sim"
	"durassd/internal/storage"
)

// PPN is a physical page number within an Array.
type PPN uint64

// InvalidPPN marks an unmapped physical page slot.
const InvalidPPN = PPN(1<<64 - 1)

// Config describes the geometry and timing of a NAND array.
type Config struct {
	Channels           int // independent buses to the controller
	PackagesPerChannel int
	ChipsPerPackage    int
	PlanesPerChip      int
	BlocksPerPlane     int
	PagesPerBlock      int
	PageSize           int // physical page size in bytes (8 KB in the paper)

	ReadLatency    time.Duration // cell-to-register page read
	ProgramLatency time.Duration // register-to-cell page program
	EraseLatency   time.Duration // block erase
	ChannelMBps    int           // channel bus bandwidth, MiB/s
	CmdOverhead    time.Duration // fixed per-operation channel occupancy

	// Media parameterizes the bit-error model (retention, read disturb,
	// wear scaling, ECC threshold). The zero value is ideal media.
	Media MediaConfig
}

// EnterpriseConfig returns a geometry resembling the paper's 480 GB
// enterprise SATA drive, scaled down by `scale` (1 = ~4 GiB of flash for
// simulation tractability; larger values shrink further). Parallelism
// (channels × planes) is preserved; only capacity shrinks.
func EnterpriseConfig(scale int) Config {
	if scale < 1 {
		scale = 1
	}
	blocks := 256 / scale
	if blocks < 8 {
		blocks = 8
	}
	return Config{
		Channels:           8,
		PackagesPerChannel: 2,
		ChipsPerPackage:    1,
		PlanesPerChip:      2,
		BlocksPerPlane:     blocks,
		PagesPerBlock:      64,
		PageSize:           8 * storage.KB,
		ReadLatency:        60 * time.Microsecond,
		ProgramLatency:     900 * time.Microsecond,
		EraseLatency:       3 * time.Millisecond,
		ChannelMBps:        330,
		CmdOverhead:        4 * time.Microsecond,
	}
}

// Planes returns the total number of planes (the device's maximum degree of
// operation-level parallelism).
func (c Config) Planes() int {
	return c.Channels * c.PackagesPerChannel * c.ChipsPerPackage * c.PlanesPerChip
}

// Blocks returns the total number of erase blocks.
func (c Config) Blocks() int { return c.Planes() * c.BlocksPerPlane }

// Pages returns the total number of physical pages.
func (c Config) Pages() int64 { return int64(c.Blocks()) * int64(c.PagesPerBlock) }

// Bytes returns the raw capacity in bytes.
func (c Config) Bytes() int64 { return c.Pages() * int64(c.PageSize) }

func (c Config) validate() error {
	switch {
	case c.Channels <= 0, c.PackagesPerChannel <= 0, c.ChipsPerPackage <= 0,
		c.PlanesPerChip <= 0, c.BlocksPerPlane <= 0, c.PagesPerBlock <= 0:
		return fmt.Errorf("nand: non-positive geometry: %+v", c)
	case c.PageSize <= 0:
		return fmt.Errorf("nand: non-positive page size %d", c.PageSize)
	case c.ChannelMBps <= 0:
		return fmt.Errorf("nand: non-positive channel bandwidth")
	}
	return nil
}

// PageState describes the lifecycle of a physical page.
type PageState uint8

// Page lifecycle states.
const (
	PageFree  PageState = iota // erased, programmable
	PageValid                  // programmed, holds live data
)

// OOB is the out-of-band metadata programmed alongside each page. Recovery
// scans read it to rebuild mappings without host involvement.
type OOB struct {
	// Slots records the logical page (4 KB mapping unit) stored in each
	// sub-slot of the physical page. InvalidLPN marks an unused slot.
	Slots []SlotTag
	Seq   uint64 // monotonically increasing program sequence number
	Dump  bool   // page belongs to a power-failure dump, not the main map
	// Parity is the ECC blob (per-codeword SEC-DED syndromes + page CRC)
	// computed when the page was programmed with real bytes; nil for
	// timing-only or torn pages.
	Parity []byte
}

// InvalidLPN marks an unused OOB slot.
const InvalidLPN = storage.LPN(1<<64 - 1)

// SlotTag identifies one logical slot inside a physical page.
type SlotTag struct {
	LPN  storage.LPN
	Torn bool // power failed mid-program; contents are garbage
}

// Faults configures the injectable NAND-level fault models beyond the
// always-on torn-program window. The crash-point exploration harness arms
// these per trial; all are off by default.
type Faults struct {
	// InterruptedErase makes a power cut during a block erase leave the
	// block's cells in an indeterminate state: every page reads back as
	// programmed garbage with unreadable (torn, unmapped) OOB tags, instead
	// of the old contents surviving untouched. The block must be erased
	// again before reuse; garbage collection reclaims it naturally because
	// no mapping entry points into it.
	InterruptedErase bool
	// DumpTearAfter, when > 0, tears the Nth (1-based) capacitor-powered
	// dump program after power-off detection: the page is left partially
	// programmed (torn tags, garbage image) and the program reports failure,
	// modeling the voltage droop of a dying supply. Firmware that checks
	// program status retries on the next pre-erased dump page.
	DumpTearAfter int
}

// Array is a simulated NAND flash array.
type Array struct {
	cfg Config
	eng *sim.Engine

	channels []*sim.Resource // per-channel bus
	planes   []*sim.Resource // per-plane cell array

	state  []PageState
	oob    []*OOB   // per-page OOB; nil for never-programmed-since-erase
	data   [][]byte // per-page bytes; nil for timing-only pages
	erases []int64  // per-block erase count
	seq    uint64

	// Erase recycling: an erase physically destroys the page contents, so
	// the OOB structs and data buffers of erased pages return to these free
	// lists and later programs reuse them — steady-state programs allocate
	// nothing. (Stale Meta/Data references across an erase were always
	// invalid; now they are visibly so.)
	oobPool []*OOB
	bufPool [][]byte
	tagPool [][]SlotTag // recycled in-flight tag copies

	inflight map[PPN][]SlotTag // programs racing a potential power cut
	erasing  map[int]bool      // block erases racing a potential power cut
	powered  bool

	faults       Faults
	dumpPrograms int // instant programs issued since power-off detection

	// Bit-error model state (see media.go).
	media      MediaConfig
	eccBits    int             // effective correction threshold per page
	mediaRng   *rand.Rand      // seeded: stochastic rounding of error counts
	progAt     []time.Duration // per-page last program time (retention age)
	stuck      []int32         // per-page injected stuck bits (cleared by erase)
	blockReads []int64         // per-block reads since erase (read disturb)

	reg   *iotrace.Registry
	stats *storage.Stats
}

// New builds an array with the given geometry, attached to eng. The
// registry (shared with the owning device) may be nil, in which case the
// array keeps private counters.
func New(eng *sim.Engine, cfg Config, reg *iotrace.Registry) (*Array, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if reg == nil {
		reg = iotrace.NewRegistry()
	}
	a := &Array{
		cfg:      cfg,
		eng:      eng,
		state:    make([]PageState, cfg.Pages()),
		oob:      make([]*OOB, cfg.Pages()),
		data:     make([][]byte, cfg.Pages()),
		erases:   make([]int64, cfg.Blocks()),
		inflight: make(map[PPN][]SlotTag),
		erasing:  make(map[int]bool),
		powered:  true,
		reg:      reg,
		stats:    reg.Stats(),
	}
	a.channels = make([]*sim.Resource, cfg.Channels)
	for i := range a.channels {
		a.channels[i] = sim.NewResource(eng, 1)
	}
	a.planes = make([]*sim.Resource, cfg.Planes())
	for i := range a.planes {
		a.planes[i] = sim.NewResource(eng, 1)
	}
	a.initMedia(cfg.Media)
	return a, nil
}

// Config returns the array geometry.
func (a *Array) Config() Config { return a.cfg }

// Engine returns the simulation engine the array is attached to.
func (a *Array) Engine() *sim.Engine { return a.eng }

// Registry returns the metrics registry shared with the owning device.
func (a *Array) Registry() *iotrace.Registry { return a.reg }

// PlaneOf returns the plane index holding ppn.
func (a *Array) PlaneOf(ppn PPN) int {
	return int(ppn / PPN(a.cfg.BlocksPerPlane*a.cfg.PagesPerBlock))
}

// ChannelOf returns the channel index serving ppn.
func (a *Array) ChannelOf(ppn PPN) int {
	planesPerChannel := a.cfg.PackagesPerChannel * a.cfg.ChipsPerPackage * a.cfg.PlanesPerChip
	return a.PlaneOf(ppn) / planesPerChannel
}

// BlockOf returns the global block index holding ppn.
func (a *Array) BlockOf(ppn PPN) int { return int(ppn) / a.cfg.PagesPerBlock }

// PageOfBlock returns the first PPN of the global block index.
func (a *Array) PageOfBlock(block int) PPN { return PPN(block * a.cfg.PagesPerBlock) }

// BlockOfPlane returns the global block index for block b of plane pl.
func (a *Array) BlockOfPlane(pl, b int) int { return pl*a.cfg.BlocksPerPlane + b }

// State returns the lifecycle state of ppn.
func (a *Array) State(ppn PPN) PageState { return a.state[ppn] }

// Meta returns the OOB metadata of ppn (nil if never programmed since the
// last erase).
func (a *Array) Meta(ppn PPN) *OOB { return a.oob[ppn] }

// Data returns the stored bytes of ppn, or nil if the page was programmed
// in timing-only mode.
func (a *Array) Data(ppn PPN) []byte { return a.data[ppn] }

// EraseCount returns the wear counter of the global block index.
func (a *Array) EraseCount(block int) int64 { return a.erases[block] }

// Powered reports whether the array currently has power.
func (a *Array) Powered() bool { return a.powered }

// SetFaults arms (or clears) the injectable fault models.
func (a *Array) SetFaults(f Faults) { a.faults = f }

// Faults returns the currently armed fault models.
func (a *Array) Faults() Faults { return a.faults }

func (a *Array) xferTime(bytes int) time.Duration {
	return a.cfg.CmdOverhead + time.Duration(float64(bytes)/float64(a.cfg.ChannelMBps*storage.MB)*float64(time.Second))
}

// ReadPage reads the physical page ppn, occupying its plane for the cell
// read and its channel for the data transfer. If buf is non-nil the stored
// bytes are copied into it (zero-filled when the page was timing-only).
// Media bit errors within the ECC threshold are corrected transparently;
// beyond it the read fails with storage.ErrUncorrectable.
//
//simlint:hotpath
func (a *Array) ReadPage(p *sim.Proc, req iotrace.Req, ppn PPN, buf []byte) error {
	_, err := a.ReadPageRetry(p, req, ppn, buf, 0)
	return err
}

// ReadPageRetry is ReadPage with an explicit retry attempt number. Attempt
// k > 0 models a read-retry with a shifted reference voltage: transient
// (retention / read-disturb) errors halve per attempt, stuck bits do not.
// On success the ReadInfo reports how many bit errors the ECC corrected.
//
//simlint:hotpath
func (a *Array) ReadPageRetry(p *sim.Proc, req iotrace.Req, ppn PPN, buf []byte, attempt int) (ReadInfo, error) {
	var info ReadInfo
	if !a.powered {
		return info, storage.ErrOffline
	}
	if int64(ppn) >= a.cfg.Pages() {
		return info, storage.ErrOutOfRange
	}
	sp := req.Begin(p, iotrace.LayerNAND)
	defer sp.End(p)
	plane := a.planes[a.PlaneOf(ppn)]
	plane.Acquire(p, 1)
	p.Sleep(a.cfg.ReadLatency)
	plane.Release(1)
	a.channels[a.ChannelOf(ppn)].Use(p, a.xferTime(a.cfg.PageSize))
	if !a.powered {
		return info, storage.ErrPowerFail
	}
	a.stats.NANDReads++
	a.blockReads[a.BlockOf(ppn)]++
	errBits := 0
	if a.state[ppn] == PageValid {
		errBits = a.errorBits(ppn, attempt)
	}
	if errBits > a.eccBits {
		return info, storage.ErrUncorrectable
	}
	if buf != nil {
		d := a.data[ppn]
		meta := a.oob[ppn]
		switch {
		case d == nil:
			for i := range buf {
				buf[i] = 0
			}
		case errBits > 0 && meta != nil && meta.Parity != nil:
			// Real-bytes path: corrupt a copy of the stored image and run
			// the actual codec, so the returned bytes demonstrably survive
			// the modeled damage (not just the model's verdict).
			img := append([]byte(nil), d...) //simlint:allow hotalloc media-damage decode path copies the page before ECC repair
			corruptPage(img, ppn, errBits, a.eccBits)
			n, ok := ECCDecode(img, meta.Parity)
			if !ok {
				return info, storage.ErrUncorrectable
			}
			errBits = n
			copy(buf, img)
		default:
			copy(buf, d)
		}
	}
	if errBits > 0 {
		info.CorrectedBits = errBits
		a.stats.CorrectedBits += int64(errBits)
	}
	return info, nil
}

// ProgramPage programs ppn with the given OOB tags and optional data.
// The page must be free (erase-before-rewrite). The program occupies the
// channel for the transfer, then the plane for the cell program. If power
// fails during the cell program, the page is recorded as torn.
//
//simlint:hotpath
func (a *Array) ProgramPage(p *sim.Proc, req iotrace.Req, ppn PPN, slots []SlotTag, data []byte, dump bool) error {
	if !a.powered {
		return storage.ErrOffline
	}
	if int64(ppn) >= a.cfg.Pages() {
		return storage.ErrOutOfRange
	}
	if a.state[ppn] != PageFree {
		return fmt.Errorf("nand: program of non-free page %d", ppn) //simlint:allow hotalloc error construction on an illegal program; never taken at steady state
	}
	sp := req.Begin(p, iotrace.LayerNAND)
	defer sp.End(p)
	a.channels[a.ChannelOf(ppn)].Use(p, a.xferTime(a.cfg.PageSize))
	if !a.powered {
		return storage.ErrPowerFail
	}

	// The cell program is the window where a power cut tears the page.
	a.inflight[ppn] = append(a.getTags(), slots...) //simlint:allow hotalloc appends into pooled tag capacity; grows only on first use
	a.reg.Emit(iotrace.EvProgram, a.eng.Now())
	plane := a.planes[a.PlaneOf(ppn)]
	plane.Acquire(p, 1)
	p.Sleep(a.cfg.ProgramLatency)
	plane.Release(1)
	tags, ok := a.inflight[ppn]
	if !ok {
		// PowerFail removed us from inflight and recorded the torn page.
		return storage.ErrPowerFail
	}
	delete(a.inflight, ppn)
	a.putTags(tags)
	if !a.powered {
		return storage.ErrPowerFail
	}

	a.commitProgram(ppn, slots, data, dump)
	return nil
}

// commitProgram installs the page image and OOB, drawing the OOB struct,
// its slot/parity storage and the data buffer from the erase-recycling
// pools. slots and data remain caller-owned (their contents are copied).
func (a *Array) commitProgram(ppn PPN, slots []SlotTag, data []byte, dump bool) {
	a.seq++
	meta := a.getOOB()
	meta.Slots = append(meta.Slots, slots...)
	meta.Seq = a.seq
	meta.Dump = dump
	a.state[ppn] = PageValid
	a.oob[ppn] = meta
	if data != nil {
		a.data[ppn] = append(a.getBuf(), data...) //simlint:allow hotalloc appends into pooled buffer capacity; grows only on first use
		meta.Parity = ECCEncodeInto(meta.Parity, data)
	} else {
		meta.Parity = nil // timing-only pages carry no parity
	}
	a.progAt[ppn] = a.eng.Now()
	a.stats.NANDPrograms++
}

// getOOB returns a recycled (emptied) or fresh OOB struct.
func (a *Array) getOOB() *OOB {
	if last := len(a.oobPool) - 1; last >= 0 {
		m := a.oobPool[last]
		a.oobPool[last] = nil
		a.oobPool = a.oobPool[:last]
		m.Slots = m.Slots[:0]
		m.Parity = m.Parity[:0]
		m.Seq = 0
		m.Dump = false
		return m
	}
	return &OOB{} //simlint:allow hotalloc pool miss fallback; steady state recycles pooled OOB records
}

// getBuf returns a recycled or fresh zero-length page data buffer.
func (a *Array) getBuf() []byte {
	if last := len(a.bufPool) - 1; last >= 0 {
		b := a.bufPool[last]
		a.bufPool[last] = nil
		a.bufPool = a.bufPool[:last]
		return b[:0]
	}
	return make([]byte, 0, a.cfg.PageSize) //simlint:allow hotalloc pool miss fallback; steady state recycles pooled buffers
}

// getTags returns a recycled or fresh zero-length in-flight tag slice.
func (a *Array) getTags() []SlotTag {
	if last := len(a.tagPool) - 1; last >= 0 {
		t := a.tagPool[last]
		a.tagPool[last] = nil
		a.tagPool = a.tagPool[:last]
		return t[:0]
	}
	return nil
}

func (a *Array) putTags(t []SlotTag) {
	if cap(t) == 0 || len(a.tagPool) >= 64 {
		return
	}
	a.tagPool = append(a.tagPool, t[:0])
}

// ErrProgramFailed reports a cell program that completed with bad status:
// the target page is left partially programmed (torn) and must not be
// trusted. Firmware retries on a different page.
var ErrProgramFailed = fmt.Errorf("nand: program failed, page torn")

// ProgramPageInstant programs ppn without consuming virtual time. It models
// the capacitor-powered dump after power-off detection, where the engine's
// normal resource scheduling no longer applies (the host is gone and the
// firmware owns the whole device). The caller accounts for dump energy.
//
// With the DumpTearAfter fault armed, the Nth post-power-off program tears
// its page and returns ErrProgramFailed — the partial-dump fault shape: the
// page holds a recognizably corrupt image under torn OOB tags, and the
// caller is expected to retry on the next pre-erased page.
func (a *Array) ProgramPageInstant(ppn PPN, slots []SlotTag, data []byte, dump bool) error {
	if int64(ppn) >= a.cfg.Pages() {
		return storage.ErrOutOfRange
	}
	if a.state[ppn] != PageFree {
		return fmt.Errorf("nand: program of non-free page %d", ppn)
	}
	if !a.powered {
		a.dumpPrograms++
		if a.faults.DumpTearAfter > 0 && a.dumpPrograms == a.faults.DumpTearAfter {
			a.tearPage(ppn, slots, data, dump)
			return ErrProgramFailed
		}
	}
	a.commitProgram(ppn, slots, data, dump)
	return nil
}

// EraseBlock erases the global block index, returning its pages to PageFree.
// If power fails during the erase pulse the block is left untouched — or,
// with the InterruptedErase fault armed, in an indeterminate half-erased
// state (see Faults).
func (a *Array) EraseBlock(p *sim.Proc, req iotrace.Req, block int) error {
	if !a.powered {
		return storage.ErrOffline
	}
	sp := req.Begin(p, iotrace.LayerNAND)
	defer sp.End(p)
	first := a.PageOfBlock(block)
	a.erasing[block] = true
	a.reg.Emit(iotrace.EvErase, a.eng.Now())
	plane := a.planes[a.PlaneOf(first)]
	plane.Acquire(p, 1)
	p.Sleep(a.cfg.EraseLatency)
	plane.Release(1)
	if !a.erasing[block] {
		// PowerFail interrupted the erase and scrambled the block.
		return storage.ErrPowerFail
	}
	delete(a.erasing, block)
	if !a.powered {
		return storage.ErrPowerFail
	}
	a.eraseNow(block)
	return nil
}

// EraseBlockInstant erases without consuming virtual time (recovery path).
func (a *Array) EraseBlockInstant(block int) { a.eraseNow(block) }

func (a *Array) eraseNow(block int) {
	first := a.PageOfBlock(block)
	for i := 0; i < a.cfg.PagesPerBlock; i++ {
		ppn := first + PPN(i)
		a.state[ppn] = PageFree
		if m := a.oob[ppn]; m != nil {
			a.oob[ppn] = nil
			a.oobPool = append(a.oobPool, m)
		}
		if d := a.data[ppn]; d != nil {
			a.data[ppn] = nil
			a.bufPool = append(a.bufPool, d)
		}
		a.stuck[ppn] = 0
		a.progAt[ppn] = 0
	}
	a.blockReads[block] = 0
	a.erases[block]++
	a.stats.NANDErases++
}

// PowerFail cuts power to the array. Every in-flight cell program tears its
// target page: the page reads back as garbage with Torn OOB tags, exactly
// the "shorn write" anomaly the paper cites from the FAST'13 power-fault
// study. The original slot tags are preserved (with Torn set) so that an
// eagerly-updated mapping exposes the corruption to the host.
//
// With the InterruptedErase fault armed, every in-flight block erase leaves
// its block half-erased: all pages read back as programmed garbage with
// unreadable OOB, and the block must be erased again before reuse.
func (a *Array) PowerFail() {
	if !a.powered {
		return
	}
	a.powered = false
	a.dumpPrograms = 0
	for ppn, tags := range a.inflight {
		a.seq++
		torn := make([]SlotTag, len(tags))
		for i, tag := range tags {
			torn[i] = SlotTag{LPN: tag.LPN, Torn: true}
		}
		if len(torn) == 0 {
			torn = []SlotTag{{LPN: InvalidLPN, Torn: true}}
		}
		a.state[ppn] = PageValid
		a.oob[ppn] = &OOB{Slots: torn, Seq: a.seq}
		a.data[ppn] = tornImage(a.data[ppn], a.cfg.PageSize)
		a.progAt[ppn] = a.eng.Now()
		a.stats.TornPages++
		delete(a.inflight, ppn)
	}
	if a.faults.InterruptedErase {
		for block := range a.erasing {
			first := a.PageOfBlock(block)
			for i := 0; i < a.cfg.PagesPerBlock; i++ {
				ppn := first + PPN(i)
				a.seq++
				a.state[ppn] = PageValid
				a.oob[ppn] = &OOB{Slots: []SlotTag{{LPN: InvalidLPN, Torn: true}}, Seq: a.seq}
				a.data[ppn] = tornImage(a.data[ppn], a.cfg.PageSize)
				a.progAt[ppn] = a.eng.Now()
			}
			a.stats.InterruptedErases++
			delete(a.erasing, block)
		}
	}
}

// PowerOn restores power.
func (a *Array) PowerOn() { a.powered = true }

// tearPage leaves ppn partially programmed: torn tags (LPNs preserved so an
// eager mapping exposes the damage), a half-old half-garbage image, and the
// Dump flag as issued so recovery scans see — and skip — the bad dump page.
func (a *Array) tearPage(ppn PPN, slots []SlotTag, data []byte, dump bool) {
	a.seq++
	torn := make([]SlotTag, len(slots))
	for i, tag := range slots {
		torn[i] = SlotTag{LPN: tag.LPN, Torn: true}
	}
	if len(torn) == 0 {
		torn = []SlotTag{{LPN: InvalidLPN, Torn: true}}
	}
	a.state[ppn] = PageValid
	a.oob[ppn] = &OOB{Slots: torn, Seq: a.seq, Dump: dump}
	a.data[ppn] = tornImage(data, a.cfg.PageSize)
	a.progAt[ppn] = a.eng.Now()
	a.stats.TornPages++
}

// tornImage fabricates a recognizably corrupt page image.
func tornImage(old []byte, size int) []byte {
	img := make([]byte, size)
	if old != nil {
		copy(img, old)
	}
	// Corrupt the second half: a mix of old (or zero) and garbage bytes.
	for i := size / 2; i < size; i++ {
		img[i] = byte(0xde ^ i)
	}
	return img
}
