// Package badallow is driver testdata for the rejected //simlint:allow
// paths: an unknown analyzer name, a missing reason, and a directive with
// no fields at all. Each malformed directive is itself a finding and
// suppresses nothing, so the underlying seededrand diagnostics survive.
// The assertions live in driver_test.go (the malformed forms cannot carry
// inline want comments — trailing text would parse as the reason).
package badallow

import "math/rand"

func unknownAnalyzer() int {
	return rand.Intn(3) //simlint:allow nosuchanalyzer some plausible reason
}

func missingReason() int {
	return rand.Intn(3) //simlint:allow seededrand
}

func missingEverything() int {
	return rand.Intn(3) //simlint:allow
}
