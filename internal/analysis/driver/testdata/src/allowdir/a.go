// Package allowdir is driver testdata for the honored //simlint:allow
// path: well-formed directives (trailing and own-line) suppress exactly
// the named analyzer's diagnostics on the guarded line, so this package
// must produce no findings at all.
package allowdir

import "math/rand"

func honored() int {
	return rand.Intn(3) //simlint:allow seededrand fuzz-corpus shuffling; audited 2026-08
}

func honoredOwnLine() int {
	//simlint:allow seededrand doc example; output never asserted
	return rand.Intn(3)
}
