package driver_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"durassd/internal/analysis"
	"durassd/internal/analysis/all"
	"durassd/internal/analysis/checktest"
	"durassd/internal/analysis/driver"
	"durassd/internal/analysis/hotalloc"
)

// TestAllowHonored: a well-formed //simlint:allow directive (trailing or
// own-line) suppresses the named analyzer's diagnostics on the guarded
// line. The testdata package contains only allowed violations, so the full
// suite must report nothing.
func TestAllowHonored(t *testing.T) {
	checktest.Run(t, "allowdir", all.Analyzers...)
}

// TestAllowRejected: malformed directives are findings themselves and
// suppress nothing — the seededrand diagnostics they tried to silence
// must survive alongside them.
func TestAllowRejected(t *testing.T) {
	findings := checktest.Diagnostics(t, "badallow", all.Analyzers...)

	counts := map[string]int{}
	var directiveMsgs []string
	for _, f := range findings {
		counts[f.Analyzer]++
		if f.Analyzer == "simlint" {
			directiveMsgs = append(directiveMsgs, f.Message)
		}
	}
	// Three malformed directives, three surviving seededrand findings.
	if counts["simlint"] != 3 {
		t.Errorf("want 3 directive findings, got %d: %v", counts["simlint"], findings)
	}
	if counts["seededrand"] != 3 {
		t.Errorf("want 3 surviving seededrand findings, got %d: %v", counts["seededrand"], findings)
	}
	wantSubstrings := []string{
		"unknown analyzer nosuchanalyzer",
		"missing reason in //simlint:allow seededrand",
		"malformed directive",
	}
	for _, sub := range wantSubstrings {
		found := false
		for _, m := range directiveMsgs {
			if strings.Contains(m, sub) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no directive finding contains %q; got %v", sub, directiveMsgs)
		}
	}
}

// TestLoadRealPackage drives the go-list loader against a real repository
// package (with its test files) and runs the full suite over it: the
// engine package must come back type-checked and clean.
func TestLoadRealPackage(t *testing.T) {
	loader := driver.NewLoader("", true)
	pkgs, err := loader.Load("durassd/internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	sawTestFile := false
	for _, p := range pkgs {
		if len(p.TypeErrors) > 0 {
			t.Fatalf("%s: type errors: %v", p.ImportPath, p.TypeErrors)
		}
		for _, f := range p.Files {
			if strings.HasSuffix(loader.Fset().Position(f.Pos()).Filename, "_test.go") {
				sawTestFile = true
			}
		}
	}
	if !sawTestFile {
		t.Error("loader did not include _test.go files; simlint would miss test-side determinism violations")
	}
	res, err := driver.Run(pkgs, all.Analyzers, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Findings {
		t.Errorf("unexpected finding in clean package: %s", f)
	}
}

// TestFactsSurviveCache analyzes a two-package chain in a scratch module
// through the on-disk result cache. Run 1 populates the cache and must
// attribute the downstream hot-path finding to the upstream allocation.
// Run 2 is pure cache hits with identical findings. Run 3 edits only the
// downstream package: its re-analysis must still produce the same
// cross-package finding, which is only possible if the upstream package's
// summary facts were restored from the cache rather than recomputed.
func TestFactsSurviveCache(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module cachetest\n\ngo 1.23\n")
	write("a/a.go", `package a

// Scratch builds a fresh buffer on every call.
func Scratch() []byte {
	return make([]byte, 64)
}
`)
	write("b/b.go", `package b

import "cachetest/a"

//simlint:hotpath
func Hot() int {
	return len(a.Scratch())
}
`)

	opts := driver.Options{
		Dir:       dir,
		Patterns:  []string{"./..."},
		Analyzers: []*analysis.Analyzer{hotalloc.Analyzer},
		CacheDir:  filepath.Join(dir, "cache"),
	}
	wantFinding := func(res *driver.Result, run string) string {
		t.Helper()
		if len(res.Findings) != 1 {
			t.Fatalf("%s: want exactly one finding, got %v", run, res.Findings)
		}
		msg := res.Findings[0].String()
		for _, sub := range []string{"make allocates at a.go", "cachetest/b.Hot → cachetest/a.Scratch"} {
			if !strings.Contains(msg, sub) {
				t.Errorf("%s: finding %q does not mention %q", run, msg, sub)
			}
		}
		return msg
	}

	res1, err := driver.Analyze(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Packages != 2 || res1.CacheHits != 0 {
		t.Errorf("run 1: want 2 packages, 0 cache hits; got %d, %d", res1.Packages, res1.CacheHits)
	}
	first := wantFinding(res1, "run 1")

	res2, err := driver.Analyze(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res2.CacheHits != 2 {
		t.Errorf("run 2: want 2 cache hits, got %d", res2.CacheHits)
	}
	if got := wantFinding(res2, "run 2"); got != first {
		t.Errorf("run 2: cached finding %q != original %q", got, first)
	}

	// Invalidate only the downstream package.
	src, err := os.ReadFile(filepath.Join(dir, "b", "b.go"))
	if err != nil {
		t.Fatal(err)
	}
	write("b/b.go", string(src)+"\n// touched\n")
	res3, err := driver.Analyze(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res3.CacheHits != 1 {
		t.Errorf("run 3: want 1 cache hit (upstream only), got %d", res3.CacheHits)
	}
	if got := wantFinding(res3, "run 3"); got != first {
		t.Errorf("run 3: finding %q != original %q; upstream facts did not survive the cache", got, first)
	}
}
