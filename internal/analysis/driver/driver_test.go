package driver_test

import (
	"strings"
	"testing"

	"durassd/internal/analysis/all"
	"durassd/internal/analysis/checktest"
	"durassd/internal/analysis/driver"
)

// TestAllowHonored: a well-formed //simlint:allow directive (trailing or
// own-line) suppresses the named analyzer's diagnostics on the guarded
// line. The testdata package contains only allowed violations, so the full
// suite must report nothing.
func TestAllowHonored(t *testing.T) {
	checktest.Run(t, "allowdir", all.Analyzers...)
}

// TestAllowRejected: malformed directives are findings themselves and
// suppress nothing — the seededrand diagnostics they tried to silence
// must survive alongside them.
func TestAllowRejected(t *testing.T) {
	findings := checktest.Diagnostics(t, "badallow", all.Analyzers...)

	counts := map[string]int{}
	var directiveMsgs []string
	for _, f := range findings {
		counts[f.Analyzer]++
		if f.Analyzer == "simlint" {
			directiveMsgs = append(directiveMsgs, f.Message)
		}
	}
	// Three malformed directives, three surviving seededrand findings.
	if counts["simlint"] != 3 {
		t.Errorf("want 3 directive findings, got %d: %v", counts["simlint"], findings)
	}
	if counts["seededrand"] != 3 {
		t.Errorf("want 3 surviving seededrand findings, got %d: %v", counts["seededrand"], findings)
	}
	wantSubstrings := []string{
		"unknown analyzer nosuchanalyzer",
		"missing reason in //simlint:allow seededrand",
		"malformed directive",
	}
	for _, sub := range wantSubstrings {
		found := false
		for _, m := range directiveMsgs {
			if strings.Contains(m, sub) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no directive finding contains %q; got %v", sub, directiveMsgs)
		}
	}
}

// TestLoadRealPackage drives the go-list loader against a real repository
// package (with its test files) and runs the full suite over it: the
// engine package must come back type-checked and clean.
func TestLoadRealPackage(t *testing.T) {
	loader := driver.NewLoader("", true)
	pkgs, err := loader.Load("durassd/internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	sawTestFile := false
	for _, p := range pkgs {
		if len(p.TypeErrors) > 0 {
			t.Fatalf("%s: type errors: %v", p.ImportPath, p.TypeErrors)
		}
		for _, f := range p.Files {
			if strings.HasSuffix(loader.Fset().Position(f.Pos()).Filename, "_test.go") {
				sawTestFile = true
			}
		}
	}
	if !sawTestFile {
		t.Error("loader did not include _test.go files; simlint would miss test-side determinism violations")
	}
	res, err := driver.Run(pkgs, all.Analyzers, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Findings {
		t.Errorf("unexpected finding in clean package: %s", f)
	}
}
