// Package driver loads packages and applies simlint analyzers to them.
//
// It plays the role golang.org/x/tools/go/analysis's multichecker driver
// plays for standard analyzers: list packages with the go command, type
// check them against compiled export data, run every analyzer, honor
// //simlint:allow directives, and optionally apply suggested fixes.
package driver

import (
	"fmt"
	"go/token"
	"sort"

	"durassd/internal/analysis"
)

// Finding is one reportable diagnostic with its resolved position.
type Finding struct {
	analysis.Diagnostic
	Position token.Position
	Package  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Position, f.Analyzer, f.Message)
}

// Result is the outcome of one Run.
type Result struct {
	Findings []Finding
	// Fixed counts text edits applied (only when Run was asked to fix).
	Fixed int
}

// Run applies analyzers to pkgs. Diagnostics on lines carrying a
// well-formed //simlint:allow directive for the same analyzer are
// suppressed; malformed directives are themselves findings. When fix is
// true, the first suggested fix of every surviving diagnostic is applied
// to the source files on disk and the fixed diagnostics are dropped from
// the result.
func Run(pkgs []*Package, analyzers []*analysis.Analyzer, fix bool) (*Result, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	res := &Result{}
	fixer := newFixer()
	for _, pkg := range pkgs {
		allows, bad := analysis.NewAllowSet(analysis.ParseAllows(pkg.Fset, pkg.Files), known)
		for _, d := range bad {
			res.Findings = append(res.Findings, Finding{Diagnostic: d, Position: pkg.Fset.Position(d.Pos), Package: pkg.ImportPath})
		}
		for _, err := range pkg.TypeErrors {
			res.Findings = append(res.Findings, Finding{
				Diagnostic: analysis.Diagnostic{Analyzer: "typecheck", Message: err.Error()},
				Package:    pkg.ImportPath,
			})
		}
		for _, a := range analyzers {
			var diags []analysis.Diagnostic
			pass := analysis.NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, func(d analysis.Diagnostic) {
				diags = append(diags, d)
			})
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", pkg.ImportPath, a.Name, err)
			}
			for _, d := range diags {
				if allows.Allows(pkg.Fset, d.Analyzer, d.Pos) {
					continue
				}
				if fix && len(d.SuggestedFixes) > 0 {
					fixer.add(pkg.Fset, d.SuggestedFixes[0])
					continue
				}
				res.Findings = append(res.Findings, Finding{Diagnostic: d, Position: pkg.Fset.Position(d.Pos), Package: pkg.ImportPath})
			}
		}
	}
	if fix {
		n, err := fixer.apply()
		if err != nil {
			return nil, err
		}
		res.Fixed = n
	}
	sort.Slice(res.Findings, func(i, j int) bool {
		a, b := res.Findings[i], res.Findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return res, nil
}
