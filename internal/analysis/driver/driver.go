// Package driver loads packages and applies simlint analyzers to them.
//
// It plays the role golang.org/x/tools/go/analysis's multichecker driver
// plays for standard analyzers: list packages with the go command, type
// check them against compiled export data, run every analyzer in
// dependency order so per-function summary facts flow across package
// boundaries, honor //simlint:allow directives, audit stale ones, and
// optionally apply suggested fixes. Analyze adds parallel per-package
// scheduling with an on-disk result cache keyed on source and export-data
// hashes.
package driver

import (
	"fmt"
	"go/token"
	"sort"

	"durassd/internal/analysis"
)

// Finding is one reportable diagnostic with its resolved position.
type Finding struct {
	analysis.Diagnostic
	Position token.Position
	Package  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Position, f.Analyzer, f.Message)
}

// Result is the outcome of one Run or Analyze.
type Result struct {
	Findings []Finding
	// Fixed counts text edits applied (only when fixing was requested).
	Fixed int
	// Packages and CacheHits describe an Analyze run: how many packages
	// were scheduled and how many were satisfied from the result cache.
	Packages  int
	CacheHits int
}

// Run applies analyzers to pkgs in the given order, threading exported
// facts from earlier packages to later ones (callers pass dependencies
// first; Load returns packages sorted by import path, which is dependency
// order for the flat testdata trees the golden harness uses — Analyze
// computes a true topological order). Diagnostics on lines carrying a
// well-formed //simlint:allow directive for the same analyzer are
// suppressed; malformed directives are themselves findings; when the
// directiveaudit analyzer is in the set, well-formed directives that
// suppressed nothing become findings with a deletion fix. When fix is
// true, the first suggested fix of every surviving diagnostic is applied
// to the source files on disk and the fixed diagnostics are dropped from
// the result.
func Run(pkgs []*Package, analyzers []*analysis.Analyzer, fix bool) (*Result, error) {
	res := &Result{}
	store := NewFactStore()
	fixer := newFixer()
	for _, pkg := range pkgs {
		findings, facts, err := runPackage(pkg, analyzers, store, fixer, fix)
		if err != nil {
			return nil, err
		}
		store.PutAll(pkg.ImportPath, facts)
		res.Findings = append(res.Findings, findings...)
	}
	if fix {
		n, err := fixer.apply()
		if err != nil {
			return nil, err
		}
		res.Fixed = n
	}
	sortFindings(res.Findings)
	return res, nil
}

// runPackage runs the analyzer set over one loaded package: directive
// handling, fact threading, and the stale-allow audit. It returns the
// surviving findings and the facts each analyzer exported. Fixable
// findings are absorbed into fixer when fix is true.
func runPackage(pkg *Package, analyzers []*analysis.Analyzer, store *FactStore, fixer *fixer, fix bool) ([]Finding, map[string]analysis.PackageFacts, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var findings []Finding
	allows, bad := analysis.NewAllowSet(analysis.ParseAllows(pkg.Fset, pkg.Files), known)
	for _, d := range bad {
		findings = append(findings, Finding{Diagnostic: d, Position: pkg.Fset.Position(d.Pos), Package: pkg.ImportPath})
	}
	for _, err := range pkg.TypeErrors {
		findings = append(findings, Finding{
			Diagnostic: analysis.Diagnostic{Analyzer: "typecheck", Message: err.Error()},
			Package:    pkg.ImportPath,
		})
	}

	keep := func(d analysis.Diagnostic) {
		if fix && len(d.SuggestedFixes) > 0 {
			fixer.add(pkg.Fset, d.SuggestedFixes[0])
			return
		}
		findings = append(findings, Finding{Diagnostic: d, Position: pkg.Fset.Position(d.Pos), Package: pkg.ImportPath})
	}

	facts := make(map[string]analysis.PackageFacts)
	ran := make(map[string]bool, len(analyzers))
	audit := false
	for _, a := range analyzers {
		if a.Name == analysis.DirectiveAuditName {
			// The audit needs the other analyzers' allow usage; it runs
			// after them, below.
			audit = true
			continue
		}
		ran[a.Name] = true
		var diags []analysis.Diagnostic
		pass := analysis.NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, func(d analysis.Diagnostic) {
			diags = append(diags, d)
		})
		a := a
		pass.SetFactSource(func(dep string) analysis.PackageFacts { return store.Get(dep, a.Name) })
		pass.SetAllowSource(func(name string, pos token.Pos) bool { return allows.Allows(pkg.Fset, name, pos) })
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("%s: %s: %w", pkg.ImportPath, a.Name, err)
		}
		if exported := pass.ExportedFacts(); len(exported) > 0 {
			facts[a.Name] = exported
		}
		for _, d := range diags {
			if allows.Allows(pkg.Fset, d.Analyzer, d.Pos) {
				continue
			}
			keep(d)
		}
	}

	if audit {
		// Round one: directives for analyzers that ran but suppressed
		// nothing. A directiveaudit allow can vouch for a deliberately
		// kept directive (e.g. one guarding a platform-specific finding);
		// checking suppression here marks it used.
		for _, a := range allows.Unused(func(name string) bool { return ran[name] }) {
			d := staleAllowDiagnostic(a)
			if allows.Allows(pkg.Fset, analysis.DirectiveAuditName, d.Pos) {
				continue
			}
			keep(d)
		}
		// Round two: directiveaudit allows that vouched for nothing are
		// themselves stale. No further suppression — the regress stops
		// here.
		for _, a := range allows.Unused(func(name string) bool { return name == analysis.DirectiveAuditName }) {
			keep(staleAllowDiagnostic(a))
		}
	}
	return findings, facts, nil
}

// staleAllowDiagnostic builds the directiveaudit finding for one unused
// directive, with a fix that deletes it cleanly.
func staleAllowDiagnostic(a analysis.Allow) analysis.Diagnostic {
	return analysis.Diagnostic{
		Analyzer: analysis.DirectiveAuditName,
		Pos:      a.Pos,
		Message:  fmt.Sprintf("stale //simlint:allow %s directive suppresses no finding; delete it", a.Analyzer),
		SuggestedFixes: []analysis.SuggestedFix{{
			Message:   "delete stale directive",
			TextEdits: []analysis.TextEdit{{Pos: a.DelPos, End: a.DelEnd}},
		}},
	}
}

// sortFindings orders findings by file, line, column, analyzer.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
