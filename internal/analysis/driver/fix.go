package driver

import (
	"fmt"
	"go/format"
	"go/token"
	"os"
	"sort"
	"sync"

	"durassd/internal/analysis"
)

// fixer accumulates text edits per file and applies them in one pass. add
// is safe for concurrent use (Analyze feeds it from parallel packages).
type fixer struct {
	mu    sync.Mutex
	edits map[string][]edit // file name -> edits
}

type edit struct {
	start, end int // byte offsets
	text       []byte
}

func newFixer() *fixer { return &fixer{edits: make(map[string][]edit)} }

func (f *fixer) add(fset *token.FileSet, fix analysis.SuggestedFix) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, te := range fix.TextEdits {
		p := fset.Position(te.Pos)
		f.edits[p.Filename] = append(f.edits[p.Filename], edit{
			start: p.Offset,
			end:   fset.Position(te.End).Offset,
			text:  te.NewText,
		})
	}
}

// apply rewrites every touched file, largest offset first so earlier edits
// stay valid, then re-formats it. Overlapping edits abort the fix run.
func (f *fixer) apply() (int, error) {
	n := 0
	for name, edits := range f.edits {
		src, err := os.ReadFile(name)
		if err != nil {
			return n, err
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		prevStart := len(src) + 1
		for _, e := range edits {
			if e.end > prevStart || e.start > e.end || e.end > len(src) {
				return n, fmt.Errorf("simlint: overlapping or out-of-range fixes in %s", name)
			}
			src = append(src[:e.start], append(append([]byte{}, e.text...), src[e.end:]...)...)
			prevStart = e.start
			n++
		}
		out, err := format.Source(src)
		if err != nil {
			// Leave the file formatted as edited rather than losing the fix.
			out = src
		}
		if err := os.WriteFile(name, out, 0o644); err != nil {
			return n, err
		}
	}
	return n, nil
}
