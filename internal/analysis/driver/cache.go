package driver

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sync"

	"durassd/internal/analysis"
)

// cacheSchema versions the on-disk entry format; bumping it orphans every
// existing entry.
const cacheSchema = "durassd-simlint-cache-v1"

// CacheDir resolves the result-cache directory: explicit dir if non-empty,
// else $SIMLINT_CACHE, else <user cache dir>/durassd-simlint.
func CacheDir(dir string) string {
	if dir != "" {
		return dir
	}
	if env := os.Getenv("SIMLINT_CACHE"); env != "" {
		return env
	}
	base, err := os.UserCacheDir()
	if err != nil {
		base = os.TempDir()
	}
	return filepath.Join(base, "durassd-simlint")
}

// diskCache is a best-effort content-addressed result cache: one JSON file
// per (package, analyzer set, toolchain) key. Reads that fail for any
// reason are misses; writes that fail are dropped. Invalidation is purely
// by key — source bytes, dependency export data, the analyzer set, the go
// version, and the simlint binary itself all feed the hash, so a stale hit
// is only possible when all of them are unchanged.
type diskCache struct {
	dir string
}

func openCache(dir string) *diskCache {
	dir = CacheDir(dir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil
	}
	return &diskCache{dir: dir}
}

// cacheEntry is one package's cached outcome: its surviving findings
// (positions resolved, since token.Pos values do not survive the process)
// and the facts each analyzer exported.
type cacheEntry struct {
	Findings []cachedFinding                  `json:"findings,omitempty"`
	Facts    map[string]analysis.PackageFacts `json:"facts,omitempty"`
}

type cachedFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	Package  string `json:"package"`
}

func (c *diskCache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key[2:]+".json")
}

func (c *diskCache) get(key string) (*cacheEntry, bool) {
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if json.Unmarshal(b, &e) != nil {
		return nil, false
	}
	return &e, true
}

func (c *diskCache) put(key string, e *cacheEntry) {
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	p := c.path(key)
	if os.MkdirAll(filepath.Dir(p), 0o755) != nil {
		return
	}
	// Write-to-temp + rename keeps concurrent runs from observing a
	// half-written entry.
	tmp, err := os.CreateTemp(filepath.Dir(p), "tmp-")
	if err != nil {
		return
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	tmp.Close()
	if os.Rename(tmp.Name(), p) != nil {
		os.Remove(tmp.Name())
	}
}

// toCached converts live findings for storage.
func toCached(fs []Finding) []cachedFinding {
	out := make([]cachedFinding, 0, len(fs))
	for _, f := range fs {
		out = append(out, cachedFinding{
			Analyzer: f.Analyzer,
			File:     f.Position.Filename,
			Line:     f.Position.Line,
			Col:      f.Position.Column,
			Message:  f.Message,
			Package:  f.Package,
		})
	}
	return out
}

// fromCached rehydrates findings; Pos is NoPos (suggested fixes do not
// survive the cache, which is why fixing disables it).
func fromCached(cs []cachedFinding) []Finding {
	out := make([]Finding, 0, len(cs))
	for _, c := range cs {
		out = append(out, Finding{
			Diagnostic: analysis.Diagnostic{Analyzer: c.Analyzer, Message: c.Message},
			Position:   token.Position{Filename: c.File, Line: c.Line, Column: c.Col},
			Package:    c.Package,
		})
	}
	return out
}

// hasher memoizes content hashes of files feeding cache keys.
type hasher struct {
	mu sync.Mutex
	m  map[string]string
}

func newHasher() *hasher { return &hasher{m: make(map[string]string)} }

// file returns the hex sha256 of the file's contents, "absent" when it
// cannot be read.
func (h *hasher) file(path string) string {
	h.mu.Lock()
	if v, ok := h.m[path]; ok {
		h.mu.Unlock()
		return v
	}
	h.mu.Unlock()
	v := "absent"
	if f, err := os.Open(path); err == nil {
		sum := sha256.New()
		if _, err := io.Copy(sum, f); err == nil {
			v = hex.EncodeToString(sum.Sum(nil))
		}
		f.Close()
	}
	h.mu.Lock()
	h.m[path] = v
	h.mu.Unlock()
	return v
}

var exeHashOnce struct {
	sync.Once
	v string
}

// exeHash hashes the running binary, so rebuilding simlint (any analyzer
// change) invalidates every cached entry automatically.
func exeHash() string {
	exeHashOnce.Do(func() {
		exeHashOnce.v = "unknown-exe"
		if exe, err := os.Executable(); err == nil {
			h := newHasher()
			exeHashOnce.v = h.file(exe)
		}
	})
	return exeHashOnce.v
}

// keyWriter builds a cache key incrementally.
type keyWriter struct {
	h io.Writer
	s interface{ Sum([]byte) []byte }
}

func newKey() *keyWriter {
	s := sha256.New()
	return &keyWriter{h: s, s: s}
}

func (k *keyWriter) add(parts ...string) {
	for _, p := range parts {
		fmt.Fprintf(k.h, "%d:%s\n", len(p), p)
	}
}

func (k *keyWriter) sum() string {
	return hex.EncodeToString(k.s.Sum(nil))
}
