package driver

import (
	"sync"

	"durassd/internal/analysis"
)

// FactStore accumulates per-package, per-analyzer summary facts as the
// driver works through packages in dependency order. By the time a package
// is analyzed, the facts of every analyzed dependency are present — either
// computed this run or restored from the on-disk result cache — so
// analyzers can see across package boundaries without loading dependency
// source.
type FactStore struct {
	mu sync.Mutex
	m  map[string]map[string]analysis.PackageFacts // pkg path -> analyzer -> facts
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: make(map[string]map[string]analysis.PackageFacts)}
}

// Get returns the facts analyzer exported for pkgPath, or nil.
func (s *FactStore) Get(pkgPath, analyzer string) analysis.PackageFacts {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[pkgPath][analyzer]
}

// PutAll records every analyzer's facts for pkgPath.
func (s *FactStore) PutAll(pkgPath string, byAnalyzer map[string]analysis.PackageFacts) {
	if len(byAnalyzer) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	dst := s.m[pkgPath]
	if dst == nil {
		dst = make(map[string]analysis.PackageFacts, len(byAnalyzer))
		s.m[pkgPath] = dst
	}
	for name, facts := range byAnalyzer {
		dst[name] = facts
	}
}
