package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, parsed and type-checked package, ready for
// analyzers.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	// Files holds the package's GoFiles plus, when tests are loaded,
	// its in-package _test.go files. External (package foo_test) test
	// files become their own Package with ImportPath suffixed "_test".
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors are non-fatal type-checking problems. Analyzers still
	// run; the driver surfaces them as diagnostics so a broken tree
	// cannot silently pass the lint gate.
	TypeErrors []error
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	Dir          string
	ImportPath   string
	Name         string
	Export       string
	Standard     bool
	DepOnly      bool
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	TestImports  []string
	XTestImports []string
	Incomplete   bool
	Error        *listedErr
	DepsErrors   []*listedErr
}

type listedErr struct {
	Err string
}

// Loader loads packages for analysis using the go command for metadata and
// compiled export data, and go/types for type checking. It is safe to load
// several pattern sets through one Loader; export data is shared.
type Loader struct {
	// Dir is the working directory for go command invocations; empty
	// means the current directory. It must lie inside the target module.
	Dir string
	// Tests includes _test.go files in the returned packages.
	Tests bool

	fset    *token.FileSet
	exports map[string]string // import path -> export data file
	imp     types.Importer
}

// NewLoader returns a Loader rooted at dir.
func NewLoader(dir string, tests bool) *Loader {
	l := &Loader{Dir: dir, Tests: tests, fset: token.NewFileSet(), exports: make(map[string]string)}
	l.imp = importer.ForCompiler(l.fset, "gc", l.lookup)
	return l
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// lookup feeds compiled export data to the gc importer.
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	exp, ok := l.exports[path]
	if !ok {
		// Test-only or testdata-only dependency not covered by the root
		// `go list -deps` sweep: resolve it on demand.
		if err := l.goList(nil, "-export", "--", path); err != nil {
			return nil, fmt.Errorf("resolving import %q: %w", path, err)
		}
		exp, ok = l.exports[path]
		if !ok || exp == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
	}
	if exp == "" {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(exp)
}

// goList runs `go list -json` with the given extra flags and arguments,
// recording export data for every listed package and appending non-DepOnly
// entries to roots (when roots is non-nil).
func (l *Loader) goList(roots *[]*listedPkg, extra ...string) error {
	args := []string{"list", "-e", "-json=Dir,ImportPath,Name,Export,Standard,DepOnly,GoFiles,TestGoFiles,XTestGoFiles,TestImports,XTestImports,Incomplete,Error,DepsErrors"}
	args = append(args, extra...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go %v: %v\n%s", args, err, stderr.Bytes())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil {
			return fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		if roots != nil && !p.DepOnly {
			q := p
			*roots = append(*roots, &q)
		}
	}
	return nil
}

// Load lists patterns, type-checks every matched package, and returns them
// sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var roots []*listedPkg
	if err := l.goList(&roots, append([]string{"-deps", "-export", "--"}, patterns...)...); err != nil {
		return nil, err
	}
	// Test-only imports are not covered by -deps (which follows only
	// non-test edges); resolve them in one batched call up front.
	if l.Tests {
		missing := map[string]bool{}
		for _, r := range roots {
			for _, imp := range append(append([]string{}, r.TestImports...), r.XTestImports...) {
				if _, ok := l.exports[imp]; !ok && imp != "C" && imp != "unsafe" {
					missing[imp] = true
				}
			}
		}
		if len(missing) > 0 {
			paths := make([]string, 0, len(missing))
			for p := range missing {
				paths = append(paths, p)
			}
			sort.Strings(paths)
			if err := l.goList(nil, append([]string{"-deps", "-export", "--"}, paths...)...); err != nil {
				return nil, err
			}
		}
	}

	var pkgs []*Package
	for _, r := range roots {
		if r.Standard {
			continue
		}
		files := append([]string{}, r.GoFiles...)
		if l.Tests {
			files = append(files, r.TestGoFiles...)
		}
		if len(files) > 0 {
			pkg, err := l.check(r.ImportPath, r.Dir, files)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
		}
		if l.Tests && len(r.XTestGoFiles) > 0 {
			pkg, err := l.check(r.ImportPath+"_test", r.Dir, r.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// LoadDir parses and type-checks the .go files of one directory outside the
// go command's view (e.g. a testdata source tree), under the given import
// path. Imports resolve through the same export-data cache as Load.
func (l *Loader) LoadDir(importPath, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return l.check(importPath, dir, files)
}

// check parses and type-checks one package from the given file names
// (relative to dir).
func (l *Loader) check(importPath, dir string, fileNames []string) (*Package, error) {
	pkg := &Package{ImportPath: importPath, Dir: dir, Fset: l.fset}
	for _, name := range fileNames {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(importPath, l.fset, pkg.Files, pkg.Info)
	if tpkg == nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}
