package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"sync"
)

// Package is one loaded, parsed and type-checked package, ready for
// analyzers.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	// Files holds the package's GoFiles plus, when tests are loaded,
	// its in-package _test.go files. External (package foo_test) test
	// files become their own Package with ImportPath suffixed "_test".
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors are non-fatal type-checking problems. Analyzers still
	// run; the driver surfaces them as diagnostics so a broken tree
	// cannot silently pass the lint gate.
	TypeErrors []error
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	Dir          string
	ImportPath   string
	Name         string
	Export       string
	Standard     bool
	DepOnly      bool
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	TestImports  []string
	XTestImports []string
	Incomplete   bool
	Error        *listedErr
	DepsErrors   []*listedErr
}

type listedErr struct {
	Err string
}

// Loader loads packages for analysis using the go command for metadata and
// compiled export data, and go/types for type checking. It is safe to load
// several pattern sets through one Loader, and — for the Analyze pipeline —
// to type-check several packages concurrently: the go/importer state and
// the local source-package registry are mutex-guarded, and token.FileSet
// is internally synchronized. Packages type-checked from source register
// themselves and take precedence over export data for later imports, which
// both gives external test packages visibility into in-package test
// helpers and lets testdata trees form multi-package import chains without
// any export data existing for them.
type Loader struct {
	// Dir is the working directory for go command invocations; empty
	// means the current directory. It must lie inside the target module.
	Dir string
	// Tests includes _test.go files in the returned packages.
	Tests bool

	fset *token.FileSet

	// impMu serializes the gc importer (stateful, not concurrency-safe)
	// and the local source-package registry; mu guards the export-data
	// map, which lookup touches while impMu is held.
	impMu   sync.Mutex
	mu      sync.Mutex
	exports map[string]string // import path -> export data file
	local   map[string]*types.Package
	gc      types.Importer
}

// NewLoader returns a Loader rooted at dir.
func NewLoader(dir string, tests bool) *Loader {
	l := &Loader{
		Dir:     dir,
		Tests:   tests,
		fset:    token.NewFileSet(),
		exports: make(map[string]string),
		local:   make(map[string]*types.Package),
	}
	l.gc = importer.ForCompiler(l.fset, "gc", l.lookup)
	return l
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Import resolves an import for type checking: local source-checked
// packages first, then gc export data. It serializes access to the gc
// importer, which is not safe for concurrent use.
func (l *Loader) Import(path string) (*types.Package, error) {
	l.impMu.Lock()
	defer l.impMu.Unlock()
	if p := l.local[path]; p != nil {
		return p, nil
	}
	return l.gc.Import(path)
}

// export returns the recorded export-data file for path.
func (l *Loader) export(path string) (string, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	exp, ok := l.exports[path]
	return exp, ok
}

// exportFile returns the compiled export data file for path, resolving it
// on demand, or "" when the package has none.
func (l *Loader) exportFile(path string) string {
	if exp, ok := l.export(path); ok {
		return exp
	}
	_ = l.goList(nil, "-export", "--", path)
	l.mu.Lock()
	defer l.mu.Unlock()
	// Cache the miss too, so repeated keys don't re-shell out.
	if _, ok := l.exports[path]; !ok {
		l.exports[path] = ""
	}
	return l.exports[path]
}

// lookup feeds compiled export data to the gc importer (it runs under
// impMu, never mu).
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	exp, ok := l.export(path)
	if !ok {
		// Test-only or testdata-only dependency not covered by the root
		// `go list -deps` sweep: resolve it on demand.
		if err := l.goList(nil, "-export", "--", path); err != nil {
			return nil, fmt.Errorf("resolving import %q: %w", path, err)
		}
		exp, _ = l.export(path)
	}
	if exp == "" {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(exp)
}

// goList runs `go list -json` with the given extra flags and arguments,
// recording export data for every listed package and appending non-DepOnly
// entries to roots (when roots is non-nil). It must be called without l.mu
// held.
func (l *Loader) goList(roots *[]*listedPkg, extra ...string) error {
	args := []string{"list", "-e", "-json=Dir,ImportPath,Name,Export,Standard,DepOnly,GoFiles,TestGoFiles,XTestGoFiles,Imports,TestImports,XTestImports,Incomplete,Error,DepsErrors"}
	args = append(args, extra...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go %v: %v\n%s", args, err, stderr.Bytes())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil {
			return fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		l.mu.Lock()
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		l.mu.Unlock()
		if roots != nil && !p.DepOnly {
			q := p
			*roots = append(*roots, &q)
		}
	}
	return nil
}

// list resolves patterns to root packages with export data for their
// dependency closure, including test-only imports when tests are loaded.
func (l *Loader) list(patterns ...string) ([]*listedPkg, error) {
	var roots []*listedPkg
	if err := l.goList(&roots, append([]string{"-deps", "-export", "--"}, patterns...)...); err != nil {
		return nil, err
	}
	// Test-only imports are not covered by -deps (which follows only
	// non-test edges); resolve them in one batched call up front.
	if l.Tests {
		missing := map[string]bool{}
		l.mu.Lock()
		for _, r := range roots {
			for _, imp := range append(append([]string{}, r.TestImports...), r.XTestImports...) {
				if _, ok := l.exports[imp]; !ok && imp != "C" && imp != "unsafe" {
					missing[imp] = true
				}
			}
		}
		l.mu.Unlock()
		if len(missing) > 0 {
			paths := make([]string, 0, len(missing))
			for p := range missing {
				paths = append(paths, p)
			}
			sort.Strings(paths)
			if err := l.goList(nil, append([]string{"-deps", "-export", "--"}, paths...)...); err != nil {
				return nil, err
			}
		}
	}
	return roots, nil
}

// Load lists patterns, type-checks every matched package, and returns them
// sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	roots, err := l.list(patterns...)
	if err != nil {
		return nil, err
	}

	var pkgs []*Package
	for _, r := range roots {
		if r.Standard {
			continue
		}
		files := append([]string{}, r.GoFiles...)
		if l.Tests {
			files = append(files, r.TestGoFiles...)
		}
		if len(files) > 0 {
			pkg, err := l.check(r.ImportPath, r.Dir, files)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
		}
		if l.Tests && len(r.XTestGoFiles) > 0 {
			pkg, err := l.check(r.ImportPath+"_test", r.Dir, r.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// LoadDir parses and type-checks the .go files of one directory outside the
// go command's view (e.g. a testdata source tree), under the given import
// path. Imports resolve through earlier LoadDir packages first, then the
// shared export-data cache — so testdata trees can form multi-package
// import chains.
func (l *Loader) LoadDir(importPath, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return l.check(importPath, dir, files)
}

// check parses and type-checks one package from the given file names
// (relative to dir), registering the result for later imports.
func (l *Loader) check(importPath, dir string, fileNames []string) (*Package, error) {
	pkg := &Package{ImportPath: importPath, Dir: dir, Fset: l.fset}
	for _, name := range fileNames {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: importerFunc(l.Import),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(importPath, l.fset, pkg.Files, pkg.Info)
	if tpkg == nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	pkg.Types = tpkg
	l.impMu.Lock()
	l.local[importPath] = tpkg
	l.impMu.Unlock()
	return pkg, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// joinDir joins a package directory and a file name.
func joinDir(dir, name string) string { return filepath.Join(dir, name) }
