package driver

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"durassd/internal/analysis"
)

// Options configures one Analyze run.
type Options struct {
	// Dir is the working directory for go command invocations.
	Dir string
	// Patterns are go package patterns; empty means ./...
	Patterns []string
	// Analyzers is the suite to apply.
	Analyzers []*analysis.Analyzer
	// Tests includes _test.go files.
	Tests bool
	// Fix applies suggested fixes. Fixing disables the cache: suggested
	// fixes carry token.Pos values that do not survive serialization.
	Fix bool
	// NoCache bypasses the on-disk result cache entirely.
	NoCache bool
	// CacheDir overrides the cache location (default: $SIMLINT_CACHE,
	// else the user cache dir + /durassd-simlint).
	CacheDir string
	// Workers bounds concurrent package analysis; <=0 means GOMAXPROCS.
	Workers int
}

// node is one schedulable unit: a package (with its in-package test files
// when Tests is set) or an external test package.
type node struct {
	path    string // import path; external tests get a "_test" suffix
	dir     string
	files   []string // file names relative to dir
	imports []string // direct imports (module-external ones keyed by export hash)
	deps    []*node  // imports that are themselves analyzed this run
	key     string   // cache key, filled in topological order
}

// Analyze lists the pattern packages, orders them topologically, and runs
// the analyzer suite over them — in parallel across packages within each
// dependency level, threading summary facts along import edges, and
// consulting the on-disk result cache so unchanged packages cost one
// key computation instead of a parse, type check, and analyzer sweep.
func Analyze(opts Options) (*Result, error) {
	patterns := opts.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	l := NewLoader(opts.Dir, opts.Tests)
	roots, err := l.list(patterns...)
	if err != nil {
		return nil, err
	}

	nodes, byPath := buildNodes(roots, opts.Tests)
	levels, err := topoLevels(nodes, byPath)
	if err != nil {
		return nil, err
	}

	var cache *diskCache
	if !opts.NoCache && !opts.Fix {
		cache = openCache(opts.CacheDir)
	}
	h := newHasher()
	for _, level := range levels {
		for _, n := range level {
			n.key = cacheKey(n, byPath, l, h, opts)
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	res := &Result{Packages: len(nodes)}
	store := NewFactStore()
	fixer := newFixer()
	var (
		mu       sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, workers)
	for _, level := range levels {
		var wg sync.WaitGroup
		for _, n := range level {
			wg.Add(1)
			// Parallelism across packages of one dependency level; the
			// level barrier guarantees dependency facts are in the store
			// before any dependent starts.
			go func(n *node) { //simlint:allow simproc host-side lint driver, never runs inside the simulator
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()

				if cache != nil {
					if ent, ok := cache.get(n.key); ok {
						store.PutAll(n.path, ent.Facts)
						mu.Lock()
						res.Findings = append(res.Findings, fromCached(ent.Findings)...)
						res.CacheHits++
						mu.Unlock()
						return
					}
				}
				pkg, err := l.check(n.path, n.dir, n.files)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("loading %s: %w", n.path, err)
					}
					mu.Unlock()
					return
				}
				findings, facts, err := runPackage(pkg, opts.Analyzers, store, fixer, opts.Fix)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				store.PutAll(n.path, facts)
				if cache != nil {
					cache.put(n.key, &cacheEntry{Findings: toCached(findings), Facts: facts})
				}
				mu.Lock()
				res.Findings = append(res.Findings, findings...)
				mu.Unlock()
			}(n)
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
	}

	if opts.Fix {
		n, err := fixer.apply()
		if err != nil {
			return nil, err
		}
		res.Fixed = n
	}
	sortFindings(res.Findings)
	return res, nil
}

// buildNodes converts listed packages into schedulable nodes: one per
// package (GoFiles plus TestGoFiles when tests are loaded) and one per
// non-empty external test package.
func buildNodes(roots []*listedPkg, tests bool) ([]*node, map[string]*node) {
	var nodes []*node
	byPath := make(map[string]*node)
	add := func(n *node) {
		nodes = append(nodes, n)
		byPath[n.path] = n
	}
	for _, r := range roots {
		if r.Standard {
			continue
		}
		files := append([]string{}, r.GoFiles...)
		imports := append([]string{}, r.Imports...)
		if tests {
			files = append(files, r.TestGoFiles...)
			imports = append(imports, r.TestImports...)
		}
		if len(files) > 0 {
			add(&node{path: r.ImportPath, dir: r.Dir, files: files, imports: dedup(imports)})
		}
		if tests && len(r.XTestGoFiles) > 0 {
			ximports := append([]string{}, r.XTestImports...)
			// The external test package depends on its subject even when
			// it does not import it (e.g. a pure TestMain wrapper).
			ximports = append(ximports, r.ImportPath)
			add(&node{path: r.ImportPath + "_test", dir: r.Dir, files: append([]string{}, r.XTestGoFiles...), imports: dedup(ximports)})
		}
	}
	for _, n := range nodes {
		for _, imp := range n.imports {
			if dep, ok := byPath[imp]; ok && dep != n {
				n.deps = append(n.deps, dep)
			}
		}
	}
	return nodes, byPath
}

// topoLevels groups nodes into dependency levels: everything in level i
// depends only on nodes in levels < i. Packages within a level are
// independent and safe to analyze concurrently.
func topoLevels(nodes []*node, byPath map[string]*node) ([][]*node, error) {
	depth := make(map[*node]int, len(nodes))
	state := make(map[*node]int, len(nodes)) // 0 new, 1 visiting, 2 done
	var visit func(n *node) error
	visit = func(n *node) error {
		switch state[n] {
		case 1:
			return fmt.Errorf("import cycle through %s", n.path)
		case 2:
			return nil
		}
		state[n] = 1
		d := 0
		for _, dep := range n.deps {
			if err := visit(dep); err != nil {
				return err
			}
			if depth[dep]+1 > d {
				d = depth[dep] + 1
			}
		}
		depth[n] = d
		state[n] = 2
		return nil
	}
	maxDepth := 0
	for _, n := range nodes {
		if err := visit(n); err != nil {
			return nil, err
		}
		if depth[n] > maxDepth {
			maxDepth = depth[n]
		}
	}
	levels := make([][]*node, maxDepth+1)
	for _, n := range nodes {
		levels[depth[n]] = append(levels[depth[n]], n)
	}
	// Deterministic order within a level keeps scheduling (and any error
	// reporting) stable run to run.
	for _, level := range levels {
		sort.Slice(level, func(i, j int) bool { return level[i].path < level[j].path })
	}
	return levels, nil
}

// cacheKey derives the content hash that addresses n's cache entry. Any
// input that can change the analysis outcome feeds it: the entry schema,
// toolchain and binary, the analyzer set, the package's own sources, and —
// transitively, via chained keys — every analyzed dependency, plus the
// export data of module-external ones.
func cacheKey(n *node, byPath map[string]*node, l *Loader, h *hasher, opts Options) string {
	k := newKey()
	k.add(cacheSchema, runtime.Version(), exeHash(), fmt.Sprintf("tests=%t", opts.Tests))
	names := make([]string, 0, len(opts.Analyzers))
	for _, a := range opts.Analyzers {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	k.add(names...)
	k.add(n.path)
	files := append([]string{}, n.files...)
	sort.Strings(files)
	for _, f := range files {
		k.add(f, h.file(joinDir(n.dir, f)))
	}
	imports := append([]string{}, n.imports...)
	sort.Strings(imports)
	for _, imp := range imports {
		if imp == "C" || imp == "unsafe" {
			continue
		}
		if dep, ok := byPath[imp]; ok && dep != n {
			k.add("dep", imp, dep.key)
			continue
		}
		k.add("export", imp, h.file(l.exportFile(imp)))
	}
	return k.sum()
}

func dedup(ss []string) []string {
	seen := make(map[string]bool, len(ss))
	out := ss[:0]
	for _, s := range ss {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
