package devcheck_test

import (
	"testing"

	"durassd/internal/analysis/checktest"
	"durassd/internal/analysis/devcheck"
)

func TestDevCheck(t *testing.T) {
	checktest.Run(t, "devcheck", devcheck.Analyzer)
}
