package devcheck

import (
	"durassd/internal/iotrace"
	"durassd/internal/sim"
	"durassd/internal/storage"
)

// Discards buried in deferred closures and function literals are exactly
// as dangerous as top-level ones: the deferred cleanup path is where
// recovery errors surface.
func deferredClosure(p *sim.Proc, dev storage.Device) {
	defer func() {
		dev.Flush(p, iotrace.Req{}) // want `error from \(storage\.Device\)\.Flush discarded`
	}()
	defer func() {
		_ = dev.Flush(p, iotrace.Req{}) // want `error from \(storage\.Device\)\.Flush discarded`
	}()
	cleanup := func(pc storage.PowerCycler) {
		_ = pc.Reboot(p) // want `error from \(storage\.PowerCycler\)\.Reboot discarded`
	}
	cleanup(nil)
}

// Tuple assignment pairs each RHS with its own LHS: both errors here are
// discarded and both must be flagged.
func tupleDiscard(p *sim.Proc, a, b storage.Device) {
	_, _ = a.Flush(p, iotrace.Req{}), b.Flush(p, iotrace.Req{}) // want `error from \(storage\.Device\)\.Flush discarded` // want `error from \(storage\.Device\)\.Flush discarded`
}

// A consumed error in a tuple assignment must not be flagged.
func tupleConsumed(p *sim.Proc, a, b storage.Device) error {
	var err error
	_, err = a.Flush(p, iotrace.Req{}), b.Flush(p, iotrace.Req{}) // want `error from \(storage\.Device\)\.Flush discarded`
	return err
}

// Parenthesizing the callee must not hide the discard.
func parenthesized(p *sim.Proc, dev storage.Device) {
	(dev.Flush)(p, iotrace.Req{}) // want `error from \(storage\.Device\)\.Flush discarded`
}
