// Package devcheck is analyzer testdata: discarded errors from
// storage.Device / storage.PowerCycler methods hide durability verdicts
// and must be flagged, on both interface and concrete receivers.
package devcheck

import (
	"durassd/internal/iotrace"
	"durassd/internal/sim"
	"durassd/internal/storage"
)

func bad(p *sim.Proc, dev storage.Device) {
	dev.Write(p, iotrace.Req{}, 0, 1, nil)    // want `error from \(storage\.Device\)\.Write discarded`
	_ = dev.Flush(p, iotrace.Req{})           // want `error from \(storage\.Device\)\.Flush discarded`
	defer dev.Flush(p, iotrace.Req{})         // want `error from \(storage\.Device\)\.Flush discarded`
	_ = dev.Read(p, iotrace.Req{}, 0, 1, nil) // want `error from \(storage\.Device\)\.Read discarded`
}

func badCycler(p *sim.Proc, pc storage.PowerCycler) {
	pc.PowerFail() // no error result: fine to call bare
	pc.Reboot(p)   // want `error from \(storage\.PowerCycler\)\.Reboot discarded`
}

func good(p *sim.Proc, dev storage.Device) error {
	if err := dev.Write(p, iotrace.Req{}, 0, 1, nil); err != nil {
		return err
	}
	_ = dev.PageSize() // no error result: fine to discard the int
	return dev.Flush(p, iotrace.Req{})
}

func allowed(p *sim.Proc, dev storage.Device) {
	dev.Flush(p, iotrace.Req{}) //simlint:allow devcheck cut already injected; flush failure is the point of the test
}
