package devcheck

import (
	"durassd/internal/iotrace"
	"durassd/internal/sim"
	"durassd/internal/storage"
)

// fake is a concrete Device: the analyzer must recognize implementations,
// not just the interface type itself.
type fake struct{}

func (fake) PageSize() int { return 4096 }
func (fake) Pages() int64  { return 8 }
func (fake) Read(p *sim.Proc, req iotrace.Req, lpn storage.LPN, n int, buf []byte) error {
	return nil
}
func (fake) Write(p *sim.Proc, req iotrace.Req, lpn storage.LPN, n int, data []byte) error {
	return nil
}
func (fake) Flush(p *sim.Proc, req iotrace.Req) error { return nil }
func (fake) Stats() *storage.Stats                    { return nil }
func (fake) Registry() *iotrace.Registry              { return nil }

var _ storage.Device = fake{}

func concreteBad(p *sim.Proc) {
	var d fake
	d.Write(p, iotrace.Req{}, 0, 1, nil) // want `error from \(devcheck\.fake\)\.Write discarded`
}

// notADevice has a Write method but does not implement Device; discarding
// its error is unrelated to device durability and not this analyzer's job.
type notADevice struct{}

func (notADevice) Write(b []byte) (int, error) { return len(b), nil }

func unrelatedWrite() {
	var w notADevice
	w.Write(nil)
}
