// Package devcheck forbids discarding errors from storage devices.
//
// Invariant protected: every storage.Device and storage.PowerCycler method
// that returns an error is reporting a durability-relevant event —
// ErrPowerFail (the operation's effect is now undefined), ErrOutOfRange,
// ErrOffline, or a recovery failure from Reboot. Code that drops such an
// error continues as if an acknowledged write were durable or a recovery
// had succeeded, which is precisely the class of silent ordering/
// durability bug this repository exists to expose in real systems. Every
// call to an error-returning method on a value whose type implements
// Device or PowerCycler must consume the error: assigning it to `_`, using
// the call as a bare statement, or launching it via go/defer is a finding.
package devcheck

import (
	"go/ast"
	"go/types"

	"durassd/internal/analysis"
)

// StoragePath is the package that defines the guarded interfaces.
const StoragePath = "durassd/internal/storage"

// GuardedInterfaces are the interface names whose error-returning methods
// must never be discarded.
var GuardedInterfaces = []string{"Device", "PowerCycler"}

// Analyzer is the devcheck check.
var Analyzer = &analysis.Analyzer{
	Name: "devcheck",
	Doc:  "flag discarded error returns from storage.Device / storage.PowerCycler methods; dropped device errors hide durability violations",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	ifaces := guardedInterfaces(pass.Pkg)
	if len(ifaces) == 0 {
		// The package does not (transitively) know about storage devices.
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				check(pass, ifaces, st.X)
			case *ast.GoStmt:
				check(pass, ifaces, st.Call)
			case *ast.DeferStmt:
				check(pass, ifaces, st.Call)
			case *ast.AssignStmt:
				if len(st.Rhs) == 1 {
					// Single call (possibly multi-valued): the error is the
					// last result, so a blank in the last LHS position —
					// `_ =` or `n, _ :=` — discards it.
					if isBlank(st.Lhs[len(st.Lhs)-1]) {
						check(pass, ifaces, st.Rhs[0])
					}
				} else {
					// Tuple assignment: each RHS pairs with its own LHS, so
					// `_, err = a.Flush(...), b.Flush(...)` discards only
					// the first error.
					for i, rhs := range st.Rhs {
						if i < len(st.Lhs) && isBlank(st.Lhs[i]) {
							check(pass, ifaces, rhs)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// check reports expr if it is a call to an error-returning guarded method.
func check(pass *analysis.Pass, ifaces map[*types.Interface][]string, expr ast.Expr) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || !returnsError(fn) {
		return
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return
	}
	recv := selection.Recv()
	for iface, methods := range ifaces {
		if !hasMethod(methods, fn.Name()) {
			continue
		}
		if implements(recv, iface) {
			pass.Reportf(call.Pos(), "error from (%s).%s discarded; device errors carry durability verdicts (power failure, torn state, failed recovery) and must be handled",
				types.TypeString(recv, func(p *types.Package) string { return p.Name() }), fn.Name())
			return
		}
	}
}

func hasMethod(methods []string, name string) bool {
	for _, m := range methods {
		if m == name {
			return true
		}
	}
	return false
}

func implements(t types.Type, iface *types.Interface) bool {
	if types.Implements(t, iface) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), iface)
	}
	return false
}

// returnsError reports whether fn's last result is error.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// guardedInterfaces finds the storage package among pkg's transitive
// imports and returns each guarded interface with its error-returning
// method names.
func guardedInterfaces(pkg *types.Package) map[*types.Interface][]string {
	storage := findImport(pkg, StoragePath, map[*types.Package]bool{})
	if storage == nil {
		return nil
	}
	out := make(map[*types.Interface][]string)
	for _, name := range GuardedInterfaces {
		obj := storage.Scope().Lookup(name)
		if obj == nil {
			continue
		}
		iface, ok := obj.Type().Underlying().(*types.Interface)
		if !ok {
			continue
		}
		var methods []string
		for i := 0; i < iface.NumMethods(); i++ {
			if returnsError(iface.Method(i)) {
				methods = append(methods, iface.Method(i).Name())
			}
		}
		if len(methods) > 0 {
			out[iface] = methods
		}
	}
	return out
}

// findImport walks the import graph below pkg looking for path.
func findImport(pkg *types.Package, path string, seen map[*types.Package]bool) *types.Package {
	if pkg.Path() == path {
		return pkg
	}
	if seen[pkg] {
		return nil
	}
	seen[pkg] = true
	for _, imp := range pkg.Imports() {
		if found := findImport(imp, path, seen); found != nil {
			return found
		}
	}
	return nil
}
