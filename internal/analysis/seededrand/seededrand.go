// Package seededrand forbids the global math/rand generators.
//
// Invariant protected: every random choice in a run — fio offsets,
// LinkBench/TPC-C transaction mixes, fault-injection cut instants — must
// derive from the run's configured seed, so identical seeds give identical
// schedules (even under `go test -shuffle`, which perturbs the implicit
// global source's consumption order across tests). The global math/rand
// and math/rand/v2 top-level functions draw from process-wide state that
// any package can advance; they are banned everywhere. Construct a local
// generator instead:
//
//	rng := rand.New(rand.NewSource(cfg.Seed))
//
// and thread the *rand.Rand through. When a *rand.Rand is already in
// scope, `simlint -fix` mechanically rewrites the global call to use it.
package seededrand

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"durassd/internal/analysis"
)

// forbidden are the top-level math/rand functions that consume the global
// source. Constructors (New, NewSource, NewZipf) and *rand.Rand methods
// are the sanctioned replacements and stay allowed.
var forbidden = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 additions.
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64N": true,
	"Uint32N": true, "Uint64N": true, "Uint": true, "UintN": true,
}

var randPkgs = map[string]bool{"math/rand": true, "math/rand/v2": true}

// Analyzer is the seededrand check.
var Analyzer = &analysis.Analyzer{
	Name: "seededrand",
	Doc:  "forbid global math/rand functions; randomness must flow from an injected *rand.Rand seeded by the run configuration",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok || !randPkgs[pn.Imported().Path()] || !forbidden[sel.Sel.Name] {
				return true
			}
			d := analysis.Diagnostic{
				Pos: sel.Pos(),
				Message: fmt.Sprintf("global %s.%s draws from process-wide state; use a *rand.Rand seeded from the run's seed",
					pn.Imported().Path(), sel.Sel.Name),
			}
			// Mechanical fix: if exactly one *rand.Rand variable is in
			// scope at the call site, route the call through it.
			if rng, ok := scopedRand(pass, sel.Pos(), pn.Imported()); ok {
				d.SuggestedFixes = []analysis.SuggestedFix{{
					Message: fmt.Sprintf("call %s.%s instead", rng, sel.Sel.Name),
					TextEdits: []analysis.TextEdit{{
						Pos: id.Pos(), End: id.End(), NewText: []byte(rng),
					}},
				}}
			}
			pass.Report(d)
			return true
		})
	}
	return nil
}

// scopedRand returns the name of the unique variable of type *rand.Rand
// (from randPkg) visible at pos, if there is exactly one. Zero or several
// candidates mean the rewrite is ambiguous and no fix is offered.
func scopedRand(pass *analysis.Pass, pos token.Pos, randPkg *types.Package) (string, bool) {
	inner := pass.Pkg.Scope().Innermost(pos)
	if inner == nil {
		return "", false
	}
	seen := map[string]bool{}
	var names []string
	for s := inner; s != nil; s = s.Parent() {
		for _, name := range s.Names() {
			obj := s.Lookup(name)
			v, ok := obj.(*types.Var)
			if !ok || seen[name] {
				continue
			}
			// Names in inner scopes shadow outer ones either way.
			seen[name] = true
			if !isRandRand(v.Type(), randPkg) {
				continue
			}
			// A local declared after the call site is not yet in scope.
			if s != types.Universe && s.Contains(pos) && v.Pos() > pos {
				continue
			}
			names = append(names, name)
		}
	}
	if len(names) == 1 {
		return names[0], true
	}
	return "", false
}

// isRandRand reports whether t is *rand.Rand of the given rand package.
func isRandRand(t types.Type, randPkg *types.Package) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Rand" && obj.Pkg() != nil && obj.Pkg().Path() == randPkg.Path()
}
