package seededrand

import randv2 "math/rand/v2"

func v2Bad() int {
	return randv2.IntN(10) // want `global math/rand/v2\.IntN`
}

func v2Methods(rng *randv2.Rand) uint64 {
	return rng.Uint64()
}
