// Package seededrand is analyzer testdata: global math/rand draws must be
// flagged, seeded *rand.Rand usage must not, and when a unique *rand.Rand
// is in scope the suggested fix routes the call through it.
package seededrand

import "math/rand"

func bad() int {
	// No *rand.Rand in scope: diagnostic only, no autofix possible.
	return rand.Intn(10) // want `global math/rand\.Intn draws from process-wide state`
}

func alsoBad() {
	rand.Seed(42)        // want `global math/rand\.Seed`
	_ = rand.Float64()   // want `global math/rand\.Float64`
	rand.Shuffle(3, nil) // want `global math/rand\.Shuffle`
}

func fixable(rng *rand.Rand) int {
	// A unique *rand.Rand in scope: simlint -fix rewrites rand -> rng.
	return rand.Intn(10) // want `global math/rand\.Intn`
}

func ambiguous(a, b *rand.Rand) int {
	// Two candidates: diagnostic without a fix (rewrite would guess).
	return rand.Intn(10) // want `global math/rand\.Intn`
}

func seeded(seed int64) *rand.Rand {
	// The sanctioned pattern: construct from the run's seed.
	return rand.New(rand.NewSource(seed))
}

func methodsAreFine(rng *rand.Rand) int {
	return rng.Intn(10) + int(rng.Int63n(5))
}

func allowed() int {
	return rand.Intn(10) //simlint:allow seededrand doc example; output never asserted
}
