package seededrand_test

import (
	"testing"

	"durassd/internal/analysis/checktest"
	"durassd/internal/analysis/seededrand"
)

// TestSeededRand exercises diagnostics and the mechanical rand->rng fix:
// testdata/src/seededrand/a.go.golden is the expected post-fix source.
func TestSeededRand(t *testing.T) {
	checktest.RunFix(t, "seededrand", seededrand.Analyzer)
}
