// Package crossdomain polices memory shared across simulation domains.
//
// Invariant protected: the parallel cluster runs each sim.Domain on its
// own goroutine and only synchronizes at epoch barriers. State owned by
// one domain must therefore never be mutated from another domain except
// through the message values shipped by Domain.Send and Domain.Call —
// anything else is a data race in host time and, worse, a determinism
// leak in virtual time. The dangerous patterns are closures: a func value
// handed to Send executes later in the destination domain, and a func
// value handed to Call executes in the destination domain while the
// caller is parked.
//
// Two rules:
//
// Send (asynchronous) — a variable captured by the shipped closure that
// the sender goes on using after the send is shared mutable state with no
// ordering between the two domains. Flagged when the capture is
// pointer-shaped, written inside the closure, or written by the sender
// afterwards. "Afterwards" is judged inside the innermost enclosing
// function: textually after the send, anywhere in an enclosing loop body
// (the next iteration runs after the send), or inside a deferred closure.
// Method values ship their receiver the same way. A self-send
// (d.Send(d, …)) is an ordinary local event and is exempt, as are
// captures of the simulator's own messaging primitives (*sim.Domain,
// *sim.Cluster, *sim.Engine, *sim.Proc), which are designed to be named
// across domains.
//
// Call (synchronous) — the caller is parked and the epoch barrier orders
// the callee's writes before the caller resumes, so captures may be read
// and results written back through bare captured identifiers
// (`v, found, err = st.Get(q, key)` is the sanctioned idiom). What must
// not happen is retention: the closure storing a reference to
// caller-domain memory into state that outlives the call — a write
// through a selector/index/dereference rooted outside the closure whose
// right-hand side mentions a captured pointer or takes the address of an
// outer variable. After the call returns, the remote domain would mutate
// the caller's memory with no barrier in sight.
//
// Wrappers that forward a func-typed parameter into Send or Call export a
// summary fact ({"sends":[i]} / {"calls":[j]}), so call sites of e.g. a
// span-proxy helper in another package get the same scrutiny as direct
// sends.
package crossdomain

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"

	"durassd/internal/analysis"
	"durassd/internal/analysis/callgraph"
)

// Analyzer is the crossdomain check.
var Analyzer = &analysis.Analyzer{
	Name: "crossdomain",
	Doc:  "state owned by one sim.Domain must not be shared with or retained by another domain except through Send/Call message values",
	Run:  run,
}

// The simulator's messaging entry points, matched by qualified name.
const (
	simPath      = "durassd/internal/sim"
	sendFullName = "(*durassd/internal/sim.Domain).Send"
	callFullName = "(*durassd/internal/sim.Domain).Call"
)

const (
	kindSend = iota
	kindCall
)

// shipsFact is the exported summary for functions that forward func-typed
// parameters into Send (async) or Call (sync).
type shipsFact struct {
	Sends []int `json:"sends,omitempty"`
	Calls []int `json:"calls,omitempty"`
}

// shipPoint describes where a given call expression ships closures:
// which argument indices, and with which delivery semantics.
type shipPoint struct {
	kind int
	arg  int
	dst  int // argument index of the destination *Domain, or -1
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo

	ships := inferShips(pass)
	for name, f := range ships.export {
		if err := pass.ExportFact(name, f); err != nil {
			return err
		}
	}

	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, sp := range ships.at(info, call) {
				if sp.arg >= len(call.Args) {
					continue
				}
				if sp.dst >= 0 && sp.dst < len(call.Args) && isSelfSend(call, sp.dst) {
					continue
				}
				checkShipment(pass, call, call.Args[sp.arg], sp.kind, append([]ast.Node(nil), stack...))
			}
			return true
		})
	}
	return nil
}

// isSelfSend reports whether the receiver domain and destination argument
// are textually the same expression: d.Send(d, …) is a local event.
func isSelfSend(call *ast.CallExpr, dstArg int) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return types.ExprString(ast.Unparen(sel.X)) == types.ExprString(ast.Unparen(call.Args[dstArg]))
}

// checkShipment applies the Send or Call rule to one shipped func value.
func checkShipment(pass *analysis.Pass, call *ast.CallExpr, fnArg ast.Expr, kind int, stack []ast.Node) {
	info := pass.TypesInfo
	switch arg := ast.Unparen(fnArg).(type) {
	case *ast.FuncLit:
		if kind == kindSend {
			checkSendCaptures(pass, call, arg, capturedVars(info, arg), stack)
		} else {
			checkCallRetention(pass, arg)
		}
	case *ast.SelectorExpr:
		// Method value: pc.PowerFail ships its receiver.
		sel, ok := info.Selections[arg]
		if !ok || sel.Kind() != types.MethodVal {
			return
		}
		if kind != kindSend {
			return
		}
		if id, ok := rootIdent(arg.X); ok {
			if v, ok := info.Uses[id].(*types.Var); ok {
				checkSendCaptures(pass, call, arg, []*types.Var{v}, stack)
			}
		}
	}
}

// checkSendCaptures flags captured variables the sender keeps using after
// an asynchronous ship.
func checkSendCaptures(pass *analysis.Pass, call *ast.CallExpr, shipped ast.Node, caps []*types.Var, stack []ast.Node) {
	info := pass.TypesInfo
	body, loop := enclosing(stack, call)
	if body == nil {
		return
	}
	for _, v := range caps {
		if exemptType(v.Type()) {
			continue
		}
		after := afterUses(info, body, loop, call, shipped, v)
		if len(after) == 0 {
			continue
		}
		afterPos := map[token.Pos]bool{}
		for _, id := range after {
			afterPos[id.Pos()] = true
		}
		shared := pointerShaped(v.Type()) ||
			writesVar(info, shipped, v) ||
			writesInRegion(info, body, v, afterPos)
		if !shared {
			continue
		}
		pass.Reportf(call.Pos(),
			"variable %s is captured by a closure sent to another domain but still used by the sender at %s; cross-domain messages must transfer ownership, not share memory",
			v.Name(), posString(pass.Fset, after[0].Pos()))
	}
}

// checkCallRetention flags a synchronous Call closure that stores
// caller-domain references into state that outlives the call.
func checkCallRetention(pass *analysis.Pass, lit *ast.FuncLit) {
	info := pass.TypesInfo
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			lhs = ast.Unparen(lhs)
			if _, bare := lhs.(*ast.Ident); bare {
				continue // bare result write-back: the sanctioned idiom
			}
			root, ok := rootIdent(lhs)
			if !ok {
				continue
			}
			rv, ok := info.Uses[root].(*types.Var)
			if !ok || declaredInside(rv, lit) {
				continue
			}
			if i >= len(as.Rhs) && len(as.Rhs) != 1 {
				continue
			}
			rhs := as.Rhs[min(i, len(as.Rhs)-1)]
			if ref, name := mentionsCallerMemory(info, rhs, lit); ref {
				pass.Reportf(as.Pos(),
					"closure run in another domain via Call stores a reference to caller memory (%s) into %s; the remote domain would retain caller state beyond the call",
					name, types.ExprString(lhs))
			}
		}
		return true
	})
}

// mentionsCallerMemory reports whether expr carries a reference to memory
// from the calling domain: a pointer-shaped variable declared outside the
// closure, or the address of any outer variable.
func mentionsCallerMemory(info *types.Info, expr ast.Expr, lit *ast.FuncLit) (bool, string) {
	found := ""
	ast.Inspect(expr, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return true
			}
			if id, ok := rootIdent(x.X); ok {
				if v, ok := info.Uses[id].(*types.Var); ok && !declaredInside(v, lit) && !exemptType(v.Type()) {
					found = "&" + v.Name()
					return false
				}
			}
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok &&
				!v.IsField() && !declaredInside(v, lit) && !packageLevel(v) &&
				pointerShaped(v.Type()) && !exemptType(v.Type()) {
				found = v.Name()
				return false
			}
		}
		return true
	})
	return found != "", found
}

// enclosing returns the innermost enclosing function body around call and
// the outermost loop between that function and the call, using the
// ancestor stack captured during the walk.
func enclosing(stack []ast.Node, call *ast.CallExpr) (*ast.BlockStmt, ast.Stmt) {
	var loop ast.Stmt
	for i := len(stack) - 1; i >= 0; i-- {
		switch x := stack[i].(type) {
		case *ast.FuncLit:
			return x.Body, loop
		case *ast.FuncDecl:
			return x.Body, loop
		case *ast.ForStmt:
			loop = x
		case *ast.RangeStmt:
			loop = x
		}
	}
	return nil, loop
}

// afterUses collects identifiers of v in the after-region of body: past
// the call, in an enclosing loop body, or inside deferred closures —
// always excluding the shipped value itself.
func afterUses(info *types.Info, body *ast.BlockStmt, loop ast.Stmt, call *ast.CallExpr, shipped ast.Node, v *types.Var) []*ast.Ident {
	var out []*ast.Ident
	inShipped := func(pos token.Pos) bool {
		return pos >= shipped.Pos() && pos <= shipped.End()
	}
	inLoop := func(pos token.Pos) bool {
		return loop != nil && pos >= loop.Pos() && pos <= loop.End()
	}
	var deferRanges [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok && !inShipped(d.Pos()) {
			deferRanges = append(deferRanges, [2]token.Pos{d.Pos(), d.End()})
		}
		return true
	})
	inDefer := func(pos token.Pos) bool {
		for _, r := range deferRanges {
			if pos >= r[0] && pos <= r[1] {
				return true
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != v || inShipped(id.Pos()) {
			return true
		}
		if id.Pos() > call.End() || inLoop(id.Pos()) || inDefer(id.Pos()) {
			out = append(out, id)
		}
		return true
	})
	return out
}

// writesVar reports whether v is written anywhere inside node.
func writesVar(info *types.Info, node ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		found = writeTargets(info, n, func(w *types.Var) bool { return w == v }, nil)
		return !found
	})
	return found
}

// writesInRegion reports whether v is written by a statement whose
// target identifier sits at one of the after-region positions.
func writesInRegion(info *types.Info, body *ast.BlockStmt, v *types.Var, region map[token.Pos]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		found = writeTargets(info, n, func(w *types.Var) bool { return w == v }, region)
		return !found
	})
	return found
}

// writeTargets reports whether node is a statement/expression that writes
// a variable matching pred: assignment LHS roots, ++/--, and address-of.
// When region is non-nil, only target identifiers at those positions
// count.
func writeTargets(info *types.Info, node ast.Node, pred func(*types.Var) bool, region map[token.Pos]bool) bool {
	check := func(e ast.Expr) bool {
		id, ok := rootIdent(e)
		if !ok {
			return false
		}
		if region != nil && !region[id.Pos()] {
			return false
		}
		if v, ok := info.Uses[id].(*types.Var); ok && pred(v) {
			return true
		}
		if v, ok := info.Defs[id].(*types.Var); ok && pred(v) {
			return true
		}
		return false
	}
	switch x := node.(type) {
	case *ast.AssignStmt:
		for _, lhs := range x.Lhs {
			if check(lhs) {
				return true
			}
		}
	case *ast.IncDecStmt:
		return check(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return check(x.X)
		}
	case *ast.RangeStmt:
		if x.Key != nil && check(x.Key) {
			return true
		}
		if x.Value != nil && check(x.Value) {
			return true
		}
	}
	return false
}

// inferShips computes, to a local fixpoint, which functions forward a
// func-typed parameter into Send (async) or Call (sync) — directly as the
// shipped argument, possibly through another local or imported shipper.
type shipsIndex struct {
	pass   *analysis.Pass
	local  map[*types.Func]*shipsFact
	export map[string]*shipsFact
}

func inferShips(pass *analysis.Pass) *shipsIndex {
	info := pass.TypesInfo
	idx := &shipsIndex{pass: pass, local: map[*types.Func]*shipsFact{}, export: map[string]*shipsFact{}}

	type declInfo struct {
		fn     *types.Func
		decl   *ast.FuncDecl
		params map[*types.Var]int
	}
	var decls []declInfo
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			params := map[*types.Var]int{}
			sig := fn.Type().(*types.Signature)
			for i := 0; i < sig.Params().Len(); i++ {
				p := sig.Params().At(i)
				if _, isFunc := p.Type().Underlying().(*types.Signature); isFunc {
					params[p] = i
				}
			}
			decls = append(decls, declInfo{fn, fd, params})
		}
	}

	for changed := true; changed; {
		changed = false
		for _, di := range decls {
			ast.Inspect(di.decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, sp := range idx.at(info, call) {
					if sp.arg >= len(call.Args) {
						continue
					}
					id, ok := ast.Unparen(call.Args[sp.arg]).(*ast.Ident)
					if !ok {
						continue
					}
					v, ok := info.Uses[id].(*types.Var)
					if !ok {
						continue
					}
					pi, isParam := di.params[v]
					if !isParam {
						continue
					}
					f := idx.local[di.fn]
					if f == nil {
						f = &shipsFact{}
						idx.local[di.fn] = f
					}
					if sp.kind == kindSend && !hasInt(f.Sends, pi) {
						f.Sends = append(f.Sends, pi)
						changed = true
					}
					if sp.kind == kindCall && !hasInt(f.Calls, pi) {
						f.Calls = append(f.Calls, pi)
						changed = true
					}
				}
				return true
			})
		}
	}
	for fn, f := range idx.local {
		idx.export[fn.FullName()] = f
	}
	return idx
}

// at classifies one call expression's shipping behavior: the intrinsic
// Domain.Send / Domain.Call entry points, or any function carrying a
// ships fact (local or imported).
func (idx *shipsIndex) at(info *types.Info, call *ast.CallExpr) []shipPoint {
	callee := callgraph.StaticCallee(info, call)
	if callee == nil {
		return nil
	}
	switch callee.FullName() {
	case sendFullName:
		return []shipPoint{{kind: kindSend, arg: 1, dst: 0}}
	case callFullName:
		return []shipPoint{{kind: kindCall, arg: 3, dst: 1}}
	}
	var fact *shipsFact
	if f, ok := idx.local[callee]; ok {
		fact = f
	} else if pkg := callee.Pkg(); pkg != nil && pkg != idx.pass.Pkg {
		raw := idx.pass.ImportedFacts(pkg.Path())[callee.FullName()]
		if raw != nil {
			var f shipsFact
			if json.Unmarshal(raw, &f) == nil {
				fact = &f
			}
		}
	}
	if fact == nil {
		return nil
	}
	var out []shipPoint
	for _, i := range fact.Sends {
		out = append(out, shipPoint{kind: kindSend, arg: i, dst: -1})
	}
	for _, i := range fact.Calls {
		out = append(out, shipPoint{kind: kindCall, arg: i, dst: -1})
	}
	return out
}

// capturedVars lists the variables a function literal closes over (same
// definition as hotalloc: declared outside the literal, not package
// level, not fields).
func capturedVars(info *types.Info, lit *ast.FuncLit) []*types.Var {
	seen := map[*types.Var]bool{}
	var out []*types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Pos() == token.NoPos || (v.Pos() >= lit.Pos() && v.Pos() <= lit.End()) {
			return true
		}
		if packageLevel(v) {
			return true
		}
		seen[v] = true
		out = append(out, v)
		return true
	})
	return out
}

func packageLevel(v *types.Var) bool {
	pkg := v.Pkg()
	return pkg == nil || pkg.Scope().Lookup(v.Name()) == v
}

func declaredInside(v *types.Var, lit *ast.FuncLit) bool {
	return v.Pos() >= lit.Pos() && v.Pos() <= lit.End()
}

// exemptType reports whether t is one of the simulator's messaging
// primitives, which are designed to be named across domains.
func exemptType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	} else if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != simPath {
		return false
	}
	switch obj.Name() {
	case "Domain", "Cluster", "Engine", "Proc":
		return true
	}
	return false
}

// pointerShaped reports whether values of t carry references: pointers,
// slices, maps, chans, funcs, interfaces, or aggregates containing them.
func pointerShaped(t types.Type) bool {
	return pointerShapedDepth(t, 0)
}

func pointerShapedDepth(t types.Type, depth int) bool {
	if depth > 10 {
		return true // give up conservatively
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if pointerShapedDepth(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return pointerShapedDepth(u.Elem(), depth+1)
	}
	return false
}

// rootIdent unwraps selectors, indexes, stars, slices and parens down to
// the base identifier.
func rootIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, true
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

func hasInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// posString renders a position compactly for diagnostics.
func posString(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
