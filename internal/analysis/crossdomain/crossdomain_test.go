package crossdomain_test

import (
	"testing"

	"durassd/internal/analysis/checktest"
	"durassd/internal/analysis/crossdomain"
)

func TestCrossdomain(t *testing.T) {
	checktest.Run(t, "crossdomain", crossdomain.Analyzer)
}

// TestCrossdomainFacts runs a two-package chain: dep exports a ships
// fact for its forwarding wrapper, and a call site in use must be
// scrutinized exactly like a direct Send.
func TestCrossdomainFacts(t *testing.T) {
	checktest.RunDirs(t, []string{"crossdomain/dep", "crossdomain/use"}, crossdomain.Analyzer)
}
