// Package use calls dep's shipping wrapper: the finding below only
// exists if dep's ships fact crossed the package boundary.
package use

import (
	"crossdomain/dep"

	"durassd/internal/sim"
)

func leak(d, dst *sim.Domain, buf []byte) byte {
	dep.ShipAsync(d, dst, func() { // want `variable buf is captured by a closure sent to another domain but still used by the sender`
		buf[0] = 1
	})
	return buf[0]
}
