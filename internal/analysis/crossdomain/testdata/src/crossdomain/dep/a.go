// Package dep exports a shipping wrapper: the ships fact it exports lets
// importers' call sites get full Send scrutiny.
package dep

import "durassd/internal/sim"

// ShipAsync forwards fn to dst asynchronously.
func ShipAsync(d, dst *sim.Domain, fn func()) {
	d.Send(dst, fn)
}
