// Package crossdomain is analyzer testdata built against the real
// simulator types: closures shipped between domains must transfer
// ownership, and synchronous Call closures must not retain caller memory.
package crossdomain

import "durassd/internal/sim"

type result struct {
	v   []byte
	ok  bool
	err error
}

type cache struct {
	last *[]byte
}

func fetch() ([]byte, error) { return nil, nil }

// brokenProxy is the deliberately-broken span proxy: the shipped closure
// appends into a slice the sender keeps reading, so the two domains share
// a mutable buffer with no ordering between them.
func brokenProxy(d, remote *sim.Domain, buf []byte) int {
	d.Send(remote, func() { // want `variable buf is captured by a closure sent to another domain but still used by the sender at a\.go:\d+; cross-domain messages must transfer ownership, not share memory`
		buf[0] = 1
	})
	return len(buf)
}

// fixedProxy is the accepted rewrite: ownership of buf transfers with the
// message — the sender never touches it again.
func fixedProxy(d, remote *sim.Domain, buf []byte) {
	d.Send(remote, func() {
		buf[0] = 1
	})
}

// selfSend is an ordinary local event, not a cross-domain shipment.
func selfSend(d *sim.Domain, n *int) int {
	d.Send(d, func() { *n++ })
	return *n
}

// exemptCapture names another domain after shipping to it: the messaging
// primitives are designed to be shared across domains.
func exemptCapture(d, remote *sim.Domain) *sim.Domain {
	d.Send(remote, func() {
		remote.Send(remote, func() {})
	})
	return remote
}

type poker struct{ hits int }

func (k *poker) Poke() { k.hits++ }

// methodValue ships a bound method: the receiver travels with it.
func methodValue(d, remote *sim.Domain, k *poker) int {
	d.Send(remote, k.Poke) // want `variable k is captured by a closure sent to another domain but still used by the sender`
	return k.hits
}

// loopSend re-uses the captured slice on the next iteration, which runs
// after the send.
func loopSend(d, remote *sim.Domain, counts []int) {
	for i := 0; i < len(counts); i++ {
		d.Send(remote, func() { // want `variable counts is captured by a closure sent to another domain but still used by the sender`
			counts[0]++
		})
	}
}

// okCall is the sanctioned synchronous idiom: results come back through
// bare captured identifiers, ordered by the epoch barrier.
func okCall(p *sim.Proc, d, remote *sim.Domain) result {
	var r result
	d.Call(p, remote, "get", func(q *sim.Proc) {
		r.v, r.err = fetch()
	})
	return r
}

// retainVia stores a pointer to caller memory into remote state that
// outlives the call.
func retainVia(p *sim.Proc, d, remote *sim.Domain, c *cache, buf []byte) {
	d.Call(p, remote, "put", func(q *sim.Proc) {
		c.last = &buf // want `closure run in another domain via Call stores a reference to caller memory \(&buf\) into c\.last; the remote domain would retain caller state beyond the call`
	})
}

// shipVia forwards its func parameter into Send: call sites get the same
// scrutiny as direct sends, via the inferred ships fact.
func shipVia(d, remote *sim.Domain, fn func()) {
	d.Send(remote, fn)
}

func useWrapper(d, remote *sim.Domain, buf []byte) byte {
	shipVia(d, remote, func() { // want `variable buf is captured by a closure sent to another domain but still used by the sender`
		buf[0] = 2
	})
	return buf[0]
}
