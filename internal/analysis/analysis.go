// Package analysis is a self-contained reimplementation of the API surface
// of golang.org/x/tools/go/analysis that this repository's simlint suite
// needs. The module is intentionally dependency-free (the simulator builds
// from the standard library alone), so rather than importing x/tools we
// provide the same shape — Analyzer, Pass, Diagnostic, SuggestedFix — on
// top of go/ast and go/types, with a go-list-based loader in
// internal/analysis/driver and an analysistest-style golden harness in
// internal/analysis/checktest.
//
// The analyzers themselves live in sibling packages (nowalltime,
// seededrand, simproc, maporder, devcheck) and mechanically enforce the
// determinism and crash-safety invariants the simulation's guarantees rest
// on; see each package's doc comment for the invariant it protects.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one simlint check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //simlint:allow directives. It must be a valid Go identifier.
	Name string
	// Doc is a one-paragraph description: the invariant the analyzer
	// protects and why violating it is a bug in this repository.
	Doc string
	// Run applies the analyzer to one package, reporting diagnostics via
	// pass.Report. The returned error aborts the whole simlint run and is
	// reserved for internal failures, not findings.
	Run func(pass *Pass) error
}

// PackageFacts is one package's exported facts for one analyzer: a map
// from object key (conventionally types.Func.FullName of the summarized
// function) to an opaque JSON-encoded summary. Facts are how analyzers see
// across package boundaries: the driver analyzes packages in dependency
// order, so by the time a package runs, the facts of everything it imports
// are available — either computed this run or restored from the on-disk
// result cache.
type PackageFacts map[string]json.RawMessage

// Pass presents one package to an Analyzer.Run.
type Pass struct {
	Analyzer *Analyzer
	// Fset maps token positions for every file in Files.
	Fset *token.FileSet
	// Files are the parsed source files of the package, including
	// in-package _test.go files when the driver loads them.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checking results for Files.
	TypesInfo *types.Info

	report   func(Diagnostic)
	imported func(pkgPath string) PackageFacts
	exported PackageFacts
	allowed  func(analyzer string, pos token.Pos) bool
}

// Allowed reports whether a //simlint:allow directive for this pass's
// analyzer covers pos, and marks the directive used. Most analyzers never
// call it — the driver suppresses allowed diagnostics after the fact —
// but interprocedural analyzers consult it up front so that an allowed
// site is also dropped from exported summary facts, keeping one audited
// directive from echoing as findings at every transitive call site.
func (p *Pass) Allowed(pos token.Pos) bool {
	return p.allowed != nil && p.allowed(p.Analyzer.Name, pos)
}

// SetAllowSource wires the driver's allow lookup into the pass. The
// callback must mark matching directives as used.
func (p *Pass) SetAllowSource(allowed func(analyzer string, pos token.Pos) bool) {
	p.allowed = allowed
}

// ImportedFacts returns the facts this analyzer exported when it analyzed
// pkgPath (a dependency of the current package), or nil when the driver
// has none — either because the dependency exports no facts or because the
// pass runs outside a fact-threading driver.
func (p *Pass) ImportedFacts(pkgPath string) PackageFacts {
	if p.imported == nil {
		return nil
	}
	return p.imported(pkgPath)
}

// ExportFact records a fact for the current package under key, visible to
// later passes of the same analyzer over packages that import this one.
// The value must be JSON-serializable; facts survive process boundaries
// through the driver's result cache.
func (p *Pass) ExportFact(key string, value any) error {
	raw, err := json.Marshal(value)
	if err != nil {
		return fmt.Errorf("%s: encoding fact %q: %w", p.Analyzer.Name, key, err)
	}
	if p.exported == nil {
		p.exported = make(PackageFacts)
	}
	p.exported[key] = raw
	return nil
}

// ExportedFacts returns the facts recorded by ExportFact (nil when none).
func (p *Pass) ExportedFacts() PackageFacts { return p.exported }

// SetFactSource wires the driver's imported-fact lookup into the pass.
func (p *Pass) SetFactSource(imported func(pkgPath string) PackageFacts) {
	p.imported = imported
}

// Report emits a finding.
func (p *Pass) Report(d Diagnostic) {
	if d.Analyzer == "" {
		d.Analyzer = p.Analyzer.Name
	}
	p.report(d)
}

// Reportf emits a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Analyzer names the analyzer that produced the finding. Pass.Report
	// fills it in; drivers use it to match //simlint:allow directives.
	Analyzer string
	Pos      token.Pos
	Message  string
	// SuggestedFixes, if non-empty, are mechanical rewrites that resolve
	// the finding; `simlint -fix` applies the first one.
	SuggestedFixes []SuggestedFix
}

// SuggestedFix is one self-contained rewrite.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// TextEdit replaces the source in [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// NewPass assembles a Pass. The report callback receives every diagnostic
// the analyzer emits, already stamped with the analyzer name.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, report func(Diagnostic)) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		report:    report,
	}
}
