package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"durassd/internal/analysis"
)

const directiveSrc = `package p

import "time"

func trailing(d time.Duration) {
	time.Sleep(d) //simlint:allow nowalltime reason one
}

func ownLine(d time.Duration) {
	//simlint:allow nowalltime reason two
	time.Sleep(d)
}

func bad() {
	_ = 1 //simlint:allow
	_ = 2 //simlint:allow nosuch reason
	_ = 3 //simlint:allow nowalltime
}

//simlint:hotpath
func hot() {}

func cold() {
	//simlint:hotpath
	_ = 4
}
`

// parseOnDisk writes src to a real file before parsing: the directive
// parser re-reads source bytes to classify own-line vs trailing comments
// and to compute deletion ranges.
func parseOnDisk(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "p.go")
	if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestParseAllowsAndAllowSet(t *testing.T) {
	fset, f := parseOnDisk(t, directiveSrc)
	allows := analysis.ParseAllows(fset, []*ast.File{f})
	if len(allows) != 5 {
		t.Fatalf("parsed %d directives, want 5: %+v", len(allows), allows)
	}
	if allows[0].OwnLine || allows[0].Analyzer != "nowalltime" || allows[0].Reason != "reason one" {
		t.Errorf("trailing directive parsed wrong: %+v", allows[0])
	}
	if !allows[1].OwnLine {
		t.Errorf("own-line directive not recognized: %+v", allows[1])
	}
	if allows[1].Line != fset.Position(allows[1].Pos).Line+1 {
		t.Errorf("own-line directive must guard the next line: %+v", allows[1])
	}
	// Trailing deletion range swallows the separating whitespace; own-line
	// deletion swallows the whole line including its newline.
	src, _ := os.ReadFile(fset.Position(f.Pos()).Filename)
	tf := fset.File(f.Pos())
	trail := string(src[tf.Offset(allows[0].DelPos):tf.Offset(allows[0].DelEnd)])
	if !strings.HasPrefix(trail, " ") || !strings.HasSuffix(trail, "reason one") {
		t.Errorf("trailing deletion range = %q", trail)
	}
	own := string(src[tf.Offset(allows[1].DelPos):tf.Offset(allows[1].DelEnd)])
	if !strings.HasSuffix(own, "\n") || !strings.Contains(own, "reason two") {
		t.Errorf("own-line deletion range = %q", own)
	}

	known := map[string]bool{"nowalltime": true}
	set, bad := analysis.NewAllowSet(allows, known)
	if len(bad) != 3 {
		t.Fatalf("want 3 malformed-directive findings, got %v", bad)
	}
	for i, sub := range []string{"malformed directive", "unknown analyzer nosuch", "missing reason"} {
		if !strings.Contains(bad[i].Message, sub) {
			t.Errorf("bad[%d] = %q, want it to contain %q", i, bad[i].Message, sub)
		}
		if bad[i].Analyzer != "simlint" {
			t.Errorf("bad[%d].Analyzer = %q, want simlint", i, bad[i].Analyzer)
		}
	}

	// The trailing directive suppresses its own line; the own-line one the
	// next; a miss on analyzer or line suppresses nothing.
	sleepPos := allows[0].Pos // same line as the guarded call
	if !set.Allows(fset, "nowalltime", sleepPos) {
		t.Error("trailing allow did not suppress its line")
	}
	if set.Allows(fset, "seededrand", sleepPos) {
		t.Error("allow suppressed a different analyzer")
	}
	if set.Allows(fset, "nowalltime", allows[1].Pos) {
		t.Error("own-line allow suppressed its own line instead of the next")
	}
	unused := set.Unused(func(string) bool { return true })
	if len(unused) != 1 || unused[0].Pos != allows[1].Pos {
		t.Errorf("unused = %+v, want only the own-line directive", unused)
	}
	if got := set.Unused(func(name string) bool { return false }); len(got) != 0 {
		t.Errorf("pred=false must restrict the audit, got %+v", got)
	}
}

func TestHotpathFuncs(t *testing.T) {
	_, f := parseOnDisk(t, directiveSrc)
	marked, misplaced := analysis.HotpathFuncs([]*ast.File{f})
	if len(marked) != 1 || marked[0].Name.Name != "hot" {
		t.Errorf("marked = %v, want [hot]", marked)
	}
	if len(misplaced) != 1 {
		t.Errorf("want 1 misplaced directive, got %d", len(misplaced))
	}
}

func TestPassFactsAndAllows(t *testing.T) {
	a := &analysis.Analyzer{Name: "demo"}
	var got []analysis.Diagnostic
	pass := analysis.NewPass(a, token.NewFileSet(), nil, nil, nil, func(d analysis.Diagnostic) {
		got = append(got, d)
	})

	// Facts round-trip through ExportFact and an imported-fact source.
	if pass.ExportedFacts() != nil {
		t.Error("fresh pass already has facts")
	}
	if err := pass.ExportFact("p.F", []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	if pass.ImportedFacts("dep") != nil {
		t.Error("ImportedFacts must be nil without a fact source")
	}
	pass.SetFactSource(func(pkgPath string) analysis.PackageFacts {
		if pkgPath != "dep" {
			return nil
		}
		return pass.ExportedFacts()
	})
	if raw := pass.ImportedFacts("dep")["p.F"]; string(raw) != "[1,2]" {
		t.Errorf("fact round trip = %s", raw)
	}

	// Allowed is nil-safe and routes through the configured source with
	// the analyzer's own name.
	if pass.Allowed(token.Pos(1)) {
		t.Error("Allowed must be false without an allow source")
	}
	pass.SetAllowSource(func(name string, pos token.Pos) bool { return name == "demo" })
	if !pass.Allowed(token.Pos(1)) {
		t.Error("Allowed must consult the source with the analyzer name")
	}

	// Reportf stamps the analyzer name.
	pass.Reportf(token.Pos(2), "n=%d", 7)
	if len(got) != 1 || got[0].Analyzer != "demo" || got[0].Message != "n=7" {
		t.Errorf("reported = %+v", got)
	}
}
