package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

const directiveSrc = `package p

func a() {
	f() //simlint:allow check1 trailing directive guards its own line
}

func b() {
	//simlint:allow check2 own-line directive guards the next line
	g()
}

func c() {
	f() //simlint:allow check1
}
`

func parseDirectives(t *testing.T) (*token.FileSet, []Allow, string) {
	t.Helper()
	// ParseAllows re-reads the source to classify trailing vs own-line
	// directives, so the file must exist on disk.
	name := filepath.Join(t.TempDir(), "p.go")
	if err := os.WriteFile(name, []byte(directiveSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, ParseAllows(fset, []*ast.File{f}), name
}

func TestParseAllows(t *testing.T) {
	_, allows, _ := parseDirectives(t)
	if len(allows) != 3 {
		t.Fatalf("want 3 directives, got %d: %+v", len(allows), allows)
	}
	// Trailing directive: guards its own line (the f() call on line 4).
	if allows[0].Analyzer != "check1" || allows[0].Line != 4 || allows[0].Reason == "" {
		t.Errorf("trailing directive parsed as %+v", allows[0])
	}
	// Own-line directive: guards the following line (g() on line 9).
	if allows[1].Analyzer != "check2" || allows[1].Line != 9 || allows[1].Reason == "" {
		t.Errorf("own-line directive parsed as %+v", allows[1])
	}
	// Reason-less directive parses with an empty reason; NewAllowSet
	// rejects it.
	if allows[2].Analyzer != "check1" || allows[2].Reason != "" {
		t.Errorf("reason-less directive parsed as %+v", allows[2])
	}
}

func TestNewAllowSet(t *testing.T) {
	fset, allows, name := parseDirectives(t)
	known := map[string]bool{"check1": true}
	set, bad := NewAllowSet(allows, known)

	// check2 is unknown and the third directive lacks a reason: two
	// rejections.
	if len(bad) != 2 {
		t.Fatalf("want 2 rejected directives, got %d: %+v", len(bad), bad)
	}

	// The well-formed check1 directive suppresses check1 on line 4 only,
	// and only for that analyzer.
	tf := fset.File(allows[0].Pos)
	line4 := tf.LineStart(4)
	if !set.Allows(fset, "check1", line4) {
		t.Errorf("well-formed directive does not suppress check1 at %s:4", name)
	}
	if set.Allows(fset, "other", line4) {
		t.Error("directive suppressed a different analyzer")
	}
	if set.Allows(fset, "check1", tf.LineStart(9)) {
		t.Error("rejected (unknown-analyzer) directive still suppressed line 9")
	}
	if set.Allows(fset, "check1", tf.LineStart(13)) {
		t.Error("rejected (missing-reason) directive still suppressed line 13")
	}
}
