// Package directiveaudit is testdata for the driver-implemented stale
// directive audit: used allows survive, stale ones become findings whose
// fix deletes them cleanly, and a directiveaudit allow can vouch for a
// deliberately kept directive.
package directiveaudit

import "time"

func used(d time.Duration) {
	time.Sleep(d) //simlint:allow nowalltime throttles a log follower outside the sim
}

func staleTrailing() time.Duration {
	return 3 * time.Millisecond //simlint:allow nowalltime durations are values // want `stale //simlint:allow nowalltime directive suppresses no finding; delete it`
}

func staleOwnLine() time.Duration {
	//simlint:allow nowalltime guards a line that is clean // want `stale //simlint:allow nowalltime directive suppresses no finding; delete it`
	return time.Duration(0)
}

func vouched() time.Duration {
	//simlint:allow directiveaudit kept deliberately: fires only under -race instrumentation
	return time.Duration(1) //simlint:allow nowalltime fires only under -race instrumentation
}

func staleVoucher() time.Duration {
	//simlint:allow directiveaudit vouches for nothing // want `stale //simlint:allow directiveaudit directive suppresses no finding; delete it`
	return time.Duration(2)
}
