package directiveaudit_test

import (
	"testing"

	"durassd/internal/analysis/checktest"
	"durassd/internal/analysis/directiveaudit"
	"durassd/internal/analysis/nowalltime"
)

// TestDirectiveAudit covers the audit's full round trip with -fix: a used
// allow survives untouched, stale trailing and own-line allows are
// findings whose fixes splice them out (compared against a.go.golden),
// and a directiveaudit voucher keeps a deliberately retained directive.
func TestDirectiveAudit(t *testing.T) {
	checktest.RunFix(t, "directiveaudit", nowalltime.Analyzer, directiveaudit.Analyzer)
}
