// Package directiveaudit declares the analyzer that flags stale
// //simlint:allow directives — ones that no longer suppress any finding.
// Unlike the other analyzers it has no Run logic of its own: only the
// driver knows, after every other analyzer has swept a package, which
// directives were actually consulted, so the driver implements the check
// (see internal/analysis/driver.runPackage) and reports under this
// analyzer's name. -fix deletes the stale directive, whole line included
// when it stands alone.
//
// A directive can be kept deliberately — e.g. one guarding a finding that
// only appears on another platform — by vouching for it with
// //simlint:allow directiveaudit <reason> on the same or preceding line.
package directiveaudit

import "durassd/internal/analysis"

// Analyzer flags //simlint:allow directives that suppress nothing.
var Analyzer = &analysis.Analyzer{
	Name: analysis.DirectiveAuditName,
	Doc:  "flag //simlint:allow directives that no longer suppress any finding",
	Run:  func(*analysis.Pass) error { return nil },
}
