// Package procbudget guards the per-request process budget of the device
// hot path.
//
// Invariant protected: the device request path (devfront NCQ slots, ssd
// command dispatch, ftl program/GC, nand plane ops) runs on the scheduler's
// zero-allocation fast path — parked coroutines plus Schedule/Timer
// callbacks — so a simulated I/O costs no process spawn. A sim.Engine.Go
// call on that path allocates a Proc and a coroutine per request and
// reintroduces exactly the per-request churn the scheduler refactor
// removed, silently regressing events/sec for every experiment. New
// processes in these packages must be long-lived (started at construction,
// living for the device's lifetime) and must carry an audited
// //simlint:allow procbudget <reason> directive; per-request work belongs
// in callbacks or on an existing process. sim.Domain.Go — the cluster-era
// shorthand for Engine().Go — counts against the same budget.
//
// Test files are exempt: spawning driver processes is how device tests
// express workloads, and none of that runs inside measured scenarios.
package procbudget

import (
	"go/ast"
	"go/types"
	"strings"

	"durassd/internal/analysis"
)

// TargetPaths are the device hot-path packages under budget.
var TargetPaths = map[string]bool{
	"durassd/internal/devfront": true,
	"durassd/internal/ssd":      true,
	"durassd/internal/ftl":      true,
	"durassd/internal/nand":     true,
}

// Analyzer is the procbudget check.
var Analyzer = &analysis.Analyzer{
	Name: "procbudget",
	Doc:  "require an audited //simlint:allow justification for sim.Engine.Go inside the device hot-path packages; per-request processes defeat the zero-alloc scheduler fast path",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !TargetPaths[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Name() != "Go" {
				return true
			}
			recv := spawnReceiver(fn)
			if recv == "" {
				return true
			}
			pass.Reportf(call.Pos(), "sim.%s.Go in device hot-path package %s: per-request processes defeat the zero-alloc scheduler fast path; use Schedule/Timer callbacks or an existing process, or justify a long-lived singleton with //simlint:allow procbudget <reason>", recv, pass.Pkg.Path())
			return true
		})
	}
	return nil
}

// spawnReceiver returns "Engine" or "Domain" when fn is the corresponding
// process-spawning method of durassd/internal/sim (Domain.Go is just
// Engine().Go shorthand, so both count against the budget), else "".
func spawnReceiver(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	ptr, ok := sig.Recv().Type().(*types.Pointer)
	if !ok {
		return ""
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "durassd/internal/sim" {
		return ""
	}
	if n := obj.Name(); n == "Engine" || n == "Domain" {
		return n
	}
	return ""
}
