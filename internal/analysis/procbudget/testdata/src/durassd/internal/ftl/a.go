// Package ftl is analyzer testdata: sim.Engine.Go inside a device
// hot-path package needs an audited justification.
package ftl

import "durassd/internal/sim"

func perRequest(eng *sim.Engine) {
	eng.Go("per-request", func(p *sim.Proc) {}) // want `sim\.Engine\.Go in device hot-path package`
}

func viaProc(p *sim.Proc) {
	p.Engine().Go("nested", func(q *sim.Proc) {}) // want `sim\.Engine\.Go in device hot-path package`
}

func allowedSingleton(eng *sim.Engine) {
	eng.Go("bg-loop", func(p *sim.Proc) {}) //simlint:allow procbudget long-lived singleton started once at construction
}

func callbacksAreTheFastPath(eng *sim.Engine) {
	eng.Schedule(0, func() {})
}

type notSim struct{}

func (notSim) Go(string, func()) {}

func unrelatedGoMethod() {
	var n notSim
	n.Go("x", func() {})
}

func perRequestViaDomain(d *sim.Domain) {
	d.Go("per-request", func(p *sim.Proc) {}) // want `sim\.Domain\.Go in device hot-path package`
}

func allowedDomainSingleton(d *sim.Domain) {
	d.Go("bg-loop", func(p *sim.Proc) {}) //simlint:allow procbudget long-lived singleton started once at construction
}
