// Package vol is analyzer testdata: packages outside the device hot path
// may spawn processes freely — the budget covers only
// internal/{devfront,ssd,ftl,nand}.
package vol

import "durassd/internal/sim"

func spawnFreely(eng *sim.Engine) {
	eng.Go("vol-io", func(p *sim.Proc) {})
}

func spawnFreelyViaDomain(d *sim.Domain) {
	d.Go("vol-io", func(p *sim.Proc) {})
}
