package procbudget_test

import (
	"testing"

	"durassd/internal/analysis/checktest"
	"durassd/internal/analysis/procbudget"
)

func TestProcBudget(t *testing.T) {
	checktest.Run(t, "durassd/internal/ftl", procbudget.Analyzer)
}

// TestOutsideBudget verifies packages off the device hot path may spawn
// processes without a directive.
func TestOutsideBudget(t *testing.T) {
	checktest.Run(t, "durassd/internal/vol", procbudget.Analyzer)
}
