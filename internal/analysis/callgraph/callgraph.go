// Package callgraph builds the static, package-level call graph the
// interprocedural simlint analyzers (hotalloc, crossdomain) walk. Edges
// are the statically resolvable calls only: package functions, methods on
// concrete receivers, and qualified imports. Calls through interface
// values, function-typed variables, and function parameters have no
// static callee and produce no edge — analyzers that need to see through
// them compose per-function summary facts instead.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Call is one statically resolved call site.
type Call struct {
	Pos    token.Pos
	Callee *types.Func
}

// Node is one function declared in the package. Calls inside nested
// function literals are attributed to the enclosing declaration: the
// literal shares its lifetime and, on a hot path, its allocation budget.
type Node struct {
	Func  *types.Func
	Decl  *ast.FuncDecl
	Calls []Call
}

// Graph maps every function declared in the package to its outgoing
// static calls.
type Graph struct {
	Nodes map[*types.Func]*Node
}

// Build walks files and records one Node per function declaration. When
// skip is non-nil, subtrees for which it returns true are excluded (used
// by hotalloc to ignore cold regions like deferred recover handlers).
func Build(info *types.Info, files []*ast.File, skip func(ast.Node) bool) *Graph {
	g := &Graph{Nodes: make(map[*types.Func]*Node)}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &Node{Func: fn, Decl: fd}
			ast.Inspect(fd.Body, func(node ast.Node) bool {
				if node == nil {
					return false
				}
				if skip != nil && skip(node) {
					return false
				}
				if call, ok := node.(*ast.CallExpr); ok {
					if callee := StaticCallee(info, call); callee != nil {
						n.Calls = append(n.Calls, Call{Pos: call.Lparen, Callee: callee})
					}
				}
				return true
			})
			g.Nodes[fn] = n
		}
	}
	return g
}

// StaticCallee resolves the function a call expression invokes, or nil
// when the callee is dynamic (interface method, function value), a
// conversion, or a builtin.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			// Method call: static only when the receiver is concrete.
			if types.IsInterface(recvType(sel)) {
				return nil
			}
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Qualified identifier: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// recvType unwraps a method selection's receiver down to its named core.
func recvType(sel *types.Selection) types.Type {
	t := sel.Recv()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	return t
}

// Reachable returns the set of local functions reachable from roots over
// g's edges, including the roots themselves.
func (g *Graph) Reachable(roots []*types.Func) map[*types.Func]bool {
	seen := make(map[*types.Func]bool)
	var walk func(fn *types.Func)
	walk = func(fn *types.Func) {
		if seen[fn] {
			return
		}
		seen[fn] = true
		n := g.Nodes[fn]
		if n == nil {
			return
		}
		for _, c := range n.Calls {
			if _, ok := g.Nodes[c.Callee]; ok {
				walk(c.Callee)
			}
		}
	}
	for _, r := range roots {
		walk(r)
	}
	return seen
}
