package callgraph_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"durassd/internal/analysis/callgraph"
)

const src = `package p

type T struct{}

func (t *T) M() { helper() }

type I interface{ M() }

func helper() {}

func root(t *T, i I, f func()) {
	t.M()      // static: concrete method
	i.M()      // dynamic: interface method, no edge
	f()        // dynamic: function value, no edge
	helper()   // static: package function
	_ = len("") // builtin, no edge
	defer cleanup()
}

func cleanup() { helper() }

func island() {}
`

func load(t *testing.T) (*types.Info, []*ast.File, *types.Package) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Types:      make(map[ast.Expr]types.TypeAndValue),
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return info, []*ast.File{f}, pkg
}

func fn(t *testing.T, pkg *types.Package, name string) *types.Func {
	t.Helper()
	obj := pkg.Scope().Lookup(name)
	if obj == nil {
		t.Fatalf("no object %s", name)
	}
	return obj.(*types.Func)
}

// TestBuild: static callees become edges, dynamic ones (interface
// methods, function values, builtins) do not, and skip prunes subtrees.
func TestBuild(t *testing.T) {
	info, files, pkg := load(t)
	g := callgraph.Build(info, files, nil)

	root := fn(t, pkg, "root")
	n := g.Nodes[root]
	if n == nil {
		t.Fatal("root has no node")
	}
	var callees []string
	for _, c := range n.Calls {
		callees = append(callees, c.Callee.Name())
		if !c.Pos.IsValid() {
			t.Errorf("call to %s has no position", c.Callee.Name())
		}
	}
	want := []string{"M", "helper", "cleanup"}
	if len(callees) != len(want) {
		t.Fatalf("root callees = %v, want %v", callees, want)
	}
	for i := range want {
		if callees[i] != want[i] {
			t.Errorf("callee %d = %s, want %s", i, callees[i], want[i])
		}
	}

	// Skipping defer statements removes the cleanup edge.
	pruned := callgraph.Build(info, files, func(n ast.Node) bool {
		_, isDefer := n.(*ast.DeferStmt)
		return isDefer
	})
	for _, c := range pruned.Nodes[root].Calls {
		if c.Callee.Name() == "cleanup" {
			t.Error("skip did not prune the deferred call")
		}
	}
}

// TestReachable: the closure from root includes concrete-method and
// function callees transitively, and excludes islands.
func TestReachable(t *testing.T) {
	info, files, pkg := load(t)
	g := callgraph.Build(info, files, nil)

	root := fn(t, pkg, "root")
	seen := g.Reachable([]*types.Func{root})
	for _, name := range []string{"root", "helper", "cleanup"} {
		if !seen[fn(t, pkg, name)] {
			t.Errorf("%s not reachable from root", name)
		}
	}
	if seen[fn(t, pkg, "island")] {
		t.Error("island must not be reachable")
	}
	if len(seen) != 4 { // root, helper, cleanup, (*T).M
		t.Errorf("reachable set has %d functions, want 4: %v", len(seen), seen)
	}
}
