// Package nowalltime forbids wall-clock time in sim-driven packages.
//
// Invariant protected: the simulation runs entirely in virtual time on
// sim.Engine's clock. A single time.Now or time.Sleep in a device model,
// engine, or workload makes run timing depend on the host machine, which
// breaks replay determinism — and with it crash-point exploration's
// bit-identical replayed prefixes and the SHA-256 schedule digests
// harnesses assert against. Durations (time.Duration, time.Millisecond,
// ...) are pure values and remain allowed; only the functions that read or
// wait on the real clock are flagged.
//
// Command-line front-ends under cmd/ report elapsed wall-clock time to the
// terminal; they are exempt via the driver's default exemption for import
// paths starting with "durassd/cmd/". Anything else needs an audited
// //simlint:allow nowalltime <reason> directive.
package nowalltime

import (
	"go/ast"
	"go/types"
	"strings"

	"durassd/internal/analysis"
)

// forbidden are the time package's wall-clock entry points. Everything
// else in package time (Duration arithmetic, constants, formatting of
// explicit values) is deterministic and allowed.
var forbidden = map[string]string{
	"Now":       "read the virtual clock (sim.Engine.Now / sim.Proc.Now) instead",
	"Sleep":     "block in virtual time (sim.Proc.Sleep) instead",
	"After":     "schedule a virtual-time event (sim.Engine.Schedule) instead",
	"Tick":      "schedule repeating virtual-time events (sim.Engine.Schedule) instead",
	"NewTimer":  "schedule a virtual-time event (sim.Engine.Schedule) instead",
	"NewTicker": "schedule repeating virtual-time events (sim.Engine.Schedule) instead",
	"AfterFunc": "schedule a virtual-time event (sim.Engine.Schedule) instead",
	"Since":     "subtract virtual timestamps from sim.Engine.Now instead",
	"Until":     "subtract virtual timestamps from sim.Engine.Now instead",
}

// ExemptPrefixes lists import-path prefixes whose packages may use the
// wall clock: command front-ends report real elapsed time to the user.
var ExemptPrefixes = []string{"durassd/cmd/"}

// Analyzer is the nowalltime check.
var Analyzer = &analysis.Analyzer{
	Name: "nowalltime",
	Doc:  "forbid wall-clock time (time.Now, time.Sleep, ...) in sim-driven packages; all timing must come from the virtual clock",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, p := range ExemptPrefixes {
		if strings.HasPrefix(pass.Pkg.Path(), p) {
			return nil
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			hint, bad := forbidden[sel.Sel.Name]
			if !bad || !isPkg(pass, sel.X, "time") {
				return true
			}
			pass.Reportf(sel.Pos(), "wall-clock time.%s in sim-driven package %s: %s", sel.Sel.Name, pass.Pkg.Path(), hint)
			return true
		})
	}
	return nil
}

// isPkg reports whether expr is a reference to the package named by path.
func isPkg(pass *analysis.Pass, expr ast.Expr, path string) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == path
}
