package nowalltime_test

import (
	"testing"

	"durassd/internal/analysis/checktest"
	"durassd/internal/analysis/nowalltime"
)

func TestNoWallTime(t *testing.T) {
	checktest.Run(t, "nowalltime", nowalltime.Analyzer)
}

// TestCmdExempt verifies the wall-clock exemption for command front-ends:
// the testdata package under durassd/cmd/ uses time.Now freely and must
// produce no findings.
func TestCmdExempt(t *testing.T) {
	checktest.Run(t, "durassd/cmd/fake", nowalltime.Analyzer)
}
