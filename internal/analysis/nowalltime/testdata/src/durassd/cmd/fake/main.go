// Command fake is analyzer testdata: packages under durassd/cmd/ report
// real elapsed time to the terminal and are exempt from nowalltime.
package main

import "time"

func main() {
	start := time.Now()
	time.Sleep(time.Millisecond)
	_ = time.Since(start)
}
