// Package nowalltime is analyzer testdata: wall-clock reads must be
// flagged in sim-driven packages while pure duration values stay legal.
package nowalltime

import "time"

func bad(d time.Duration) {
	_ = time.Now()              // want `wall-clock time\.Now in sim-driven package nowalltime`
	time.Sleep(d)               // want `wall-clock time\.Sleep`
	<-time.After(d)             // want `wall-clock time\.After`
	_ = time.NewTimer(d)        // want `wall-clock time\.NewTimer`
	_ = time.Tick(d)            // want `wall-clock time\.Tick`
	_ = time.Since(time.Time{}) // want `wall-clock time\.Since`
}

func durationsAreValues() time.Duration {
	// Durations are plain numbers; only clock reads are nondeterministic.
	d := 3 * time.Millisecond
	return d + time.Microsecond
}

func allowed() {
	time.Sleep(time.Millisecond) //simlint:allow nowalltime throttles a log follower outside the sim
}

func allowedOwnLine() {
	//simlint:allow nowalltime wall-clock watchdog documented in DESIGN.md
	_ = time.Now()
}

type clock struct{}

// Now on a non-time receiver must not be confused with time.Now.
func (clock) Now() time.Duration { return 0 }

func virtualNowIsFine(c clock) time.Duration { return c.Now() }
