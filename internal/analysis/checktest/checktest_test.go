package checktest_test

import (
	"strings"
	"testing"

	"durassd/internal/analysis/checktest"
	"durassd/internal/analysis/directiveaudit"
	"durassd/internal/analysis/nowalltime"
)

// TestHarnessSelfTest runs the harness against its own testdata: want
// matching, allow handling, and the fix-vs-golden diff all on one
// package.
func TestHarnessSelfTest(t *testing.T) {
	checktest.RunFix(t, "selftest", nowalltime.Analyzer, directiveaudit.Analyzer)
}

// TestDiagnostics returns raw findings for callers that assert on them
// directly.
func TestDiagnostics(t *testing.T) {
	findings := checktest.Diagnostics(t, "selftest", nowalltime.Analyzer)
	if len(findings) != 1 {
		t.Fatalf("want 1 finding, got %v", findings)
	}
	if !strings.Contains(findings[0].Message, "time.Now") {
		t.Errorf("unexpected finding %v", findings[0])
	}
}
