// Package checktest is an analysistest-style golden harness for simlint
// analyzers. A test package lives under testdata/src/<importpath>/ and
// marks each expected diagnostic with a trailing comment on the offending
// line:
//
//	time.Sleep(d) // want `wall-clock time\.Sleep`
//
// The pattern is a regular expression matched against the diagnostic
// message (either `backquoted` or "quoted"). Lines without a want comment
// must produce no diagnostic and vice versa — both directions are test
// failures, so every analyzer demonstrably catches what it claims to and
// nothing more. //simlint:allow directives in testdata are processed
// exactly as in production (via the shared driver), which lets the
// directive paths — honored, unknown analyzer, missing reason — be tested
// as golden cases too.
package checktest

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"durassd/internal/analysis"
	"durassd/internal/analysis/driver"
)

// Run loads testdata/src/<pkgPath> (testdata is resolved relative to the
// calling test's working directory), applies the analyzers, and matches
// diagnostics against want comments.
func Run(t *testing.T, pkgPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	runPkgs(t, []string{pkgPath}, analyzers, false)
}

// RunFix is Run plus suggested-fix verification: after matching
// diagnostics, it applies every suggested fix in memory and compares each
// changed file against the sibling <name>.golden file.
func RunFix(t *testing.T, pkgPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	runPkgs(t, []string{pkgPath}, analyzers, true)
}

// RunDirs loads several testdata packages in the given order (dependencies
// first — later packages may import earlier ones by their pkgPath) and
// applies the analyzers to the whole set, threading exported facts along
// the chain. This is how the interprocedural analyzers' cross-package
// behavior is golden-tested: the want comments in a downstream package
// assert on findings that only exist if the upstream package's summary
// facts arrived.
func RunDirs(t *testing.T, pkgPaths []string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	runPkgs(t, pkgPaths, analyzers, false)
}

func runPkgs(t *testing.T, pkgPaths []string, analyzers []*analysis.Analyzer, fix bool) {
	t.Helper()
	loader := driver.NewLoader("", true)
	var pkgs []*driver.Package
	for _, pkgPath := range pkgPaths {
		dir := filepath.Join("testdata", "src", filepath.FromSlash(pkgPath))
		pkg, err := loader.LoadDir(pkgPath, dir)
		if err != nil {
			t.Fatalf("loading %s: %v", dir, err)
		}
		for _, e := range pkg.TypeErrors {
			t.Errorf("testdata must type-check: %v", e)
		}
		pkgs = append(pkgs, pkg)
	}
	res, err := driver.Run(pkgs, analyzers, false)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	var files []*ast.File
	for _, pkg := range pkgs {
		files = append(files, pkg.Files...)
	}
	wants := parseWants(t, loader.Fset(), files)
	matched := make([]bool, len(wants))
	for _, f := range res.Findings {
		key := posKey{filepath.Base(f.Position.Filename), f.Position.Line}
		ok := false
		for i, w := range wants {
			if w.posKey == key && !matched[i] && w.re.MatchString(f.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s:%d: %s: %s", key.file, key.line, f.Analyzer, f.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}

	if fix {
		verifyFixes(t, loader.Fset(), res)
	}
}

type posKey struct {
	file string
	line int
}

type want struct {
	posKey
	re *regexp.Regexp
}

var wantRe = regexp.MustCompile("// want (`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

// parseWants extracts want expectations from the package's comments.
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var out []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					pat := m[1]
					if strings.HasPrefix(pat, "`") {
						pat = strings.Trim(pat, "`")
					} else if s, err := strconv.Unquote(pat); err == nil {
						pat = s
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("bad want pattern %q: %v", pat, err)
					}
					p := fset.Position(c.Pos())
					out = append(out, want{posKey{filepath.Base(p.Filename), p.Line}, re})
				}
			}
		}
	}
	return out
}

// verifyFixes applies the suggested fixes in memory and diffs the result
// against <file>.golden.
func verifyFixes(t *testing.T, fset *token.FileSet, res *driver.Result) {
	t.Helper()
	type edit struct {
		start, end int
		text       []byte
	}
	byFile := map[string][]edit{}
	for _, f := range res.Findings {
		if len(f.SuggestedFixes) == 0 {
			continue
		}
		for _, te := range f.SuggestedFixes[0].TextEdits {
			p := fset.Position(te.Pos)
			byFile[p.Filename] = append(byFile[p.Filename], edit{p.Offset, fset.Position(te.End).Offset, te.NewText})
		}
	}
	for name, edits := range byFile {
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		// Apply back to front so earlier offsets stay valid.
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		for _, e := range edits {
			src = append(src[:e.start], append(append([]byte{}, e.text...), src[e.end:]...)...)
		}
		goldenFile := name + ".golden"
		golden, err := os.ReadFile(goldenFile)
		if err != nil {
			t.Fatalf("fix produced output but golden file is missing: %v", err)
		}
		if string(src) != string(golden) {
			t.Errorf("fixed %s does not match %s:\n--- got ---\n%s\n--- want ---\n%s",
				filepath.Base(name), filepath.Base(goldenFile), src, golden)
		}
	}
}

// Diagnostics is a convenience for tests that assert on raw findings.
func Diagnostics(t *testing.T, pkgPath string, analyzers ...*analysis.Analyzer) []driver.Finding {
	t.Helper()
	dir := filepath.Join("testdata", "src", filepath.FromSlash(pkgPath))
	loader := driver.NewLoader("", true)
	pkg, err := loader.LoadDir(pkgPath, dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	res, err := driver.Run([]*driver.Package{pkg}, analyzers, false)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	return res.Findings
}
