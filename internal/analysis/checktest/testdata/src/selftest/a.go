// Package selftest exercises the golden harness itself: a matched want,
// a used allow, and a stale allow whose fix is diffed against the golden.
package selftest

import "time"

func flagged() {
	_ = time.Now() // want `wall-clock time\.Now`
}

func allowed(d time.Duration) {
	time.Sleep(d) //simlint:allow nowalltime throttle outside the sim
}

func stale() time.Duration {
	return 2 * time.Second //simlint:allow nowalltime durations are values // want `stale //simlint:allow nowalltime directive`
}
