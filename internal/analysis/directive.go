package analysis

import (
	"go/ast"
	"go/token"
	"os"
	"strings"
)

// AllowPrefix introduces an audited-exception directive:
//
//	//simlint:allow <analyzer> <reason...>
//
// A directive written as a trailing comment suppresses that analyzer's
// diagnostics on its own line; a directive on a line of its own suppresses
// them on the next line. The reason is mandatory — an allow without a
// recorded justification is itself a finding.
const AllowPrefix = "//simlint:allow"

// HotpathPrefix marks a function declaration as a zero-allocation hot
// path:
//
//	//simlint:hotpath <optional note>
//
// It must appear in the doc comment of a FuncDecl. The hotalloc analyzer
// treats the function and everything statically reachable from it —
// across package boundaries, via exported summary facts — as forbidden
// from heap allocation.
const HotpathPrefix = "//simlint:hotpath"

// DirectiveAuditName is the analyzer name under which stale-allow
// findings are reported. The analyzer itself (package directiveaudit) is
// declarative: the driver implements the check, because only the driver
// knows which directives suppressed a finding after every other analyzer
// has run.
const DirectiveAuditName = "directiveaudit"

// Allow is one parsed //simlint:allow directive.
type Allow struct {
	Pos      token.Pos
	End      token.Pos
	Analyzer string // analyzer name, "" if missing
	Reason   string // justification text, "" if missing
	// Line is the source line the directive suppresses: the directive's
	// own line for trailing comments, the following line otherwise.
	Line int
	File string
	// OwnLine reports whether the directive stands on a line of its own
	// (guarding the next line) rather than trailing code.
	OwnLine bool
	// DelPos/DelEnd is the source range a fix deletes to remove the
	// directive: the whole line (newline included) for own-line
	// directives, the comment plus the whitespace separating it from the
	// code for trailing ones.
	DelPos, DelEnd token.Pos
}

// ParseAllows extracts every //simlint:allow directive from files.
func ParseAllows(fset *token.FileSet, files []*ast.File) []Allow {
	srcs := make(map[string][]byte)
	var out []Allow
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, AllowPrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				a := Allow{Pos: c.Pos(), End: c.End(), Line: pos.Line, File: pos.Filename}
				// A comment with no code before it on its line guards the
				// next line instead of its own.
				a.OwnLine = ownLine(fset, srcs, c.Pos())
				if a.OwnLine {
					a.Line++
				}
				a.DelPos, a.DelEnd = deletionRange(fset, srcs, c, a.OwnLine)
				fields := strings.Fields(rest)
				if len(fields) > 0 {
					a.Analyzer = fields[0]
					a.Reason = strings.Join(fields[1:], " ")
				}
				out = append(out, a)
			}
		}
	}
	return out
}

// HotpathFuncs returns the function declarations in files whose doc
// comment carries a //simlint:hotpath directive, plus the positions of
// misplaced directives (hotpath comments that are not part of a FuncDecl
// doc comment — those mark nothing and are reported as findings).
func HotpathFuncs(files []*ast.File) (marked []*ast.FuncDecl, misplaced []token.Pos) {
	inDoc := make(map[*ast.Comment]bool)
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			hot := false
			for _, c := range fd.Doc.List {
				inDoc[c] = true
				if strings.HasPrefix(c.Text, HotpathPrefix) {
					hot = true
				}
			}
			if hot {
				marked = append(marked, fd)
			}
		}
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, HotpathPrefix) && !inDoc[c] {
					misplaced = append(misplaced, c.Pos())
				}
			}
		}
	}
	return marked, misplaced
}

// src returns the cached contents of the file containing pos (nil when
// unreadable).
func src(fset *token.FileSet, srcs map[string][]byte, pos token.Pos) (*token.File, []byte) {
	tf := fset.File(pos)
	b, ok := srcs[tf.Name()]
	if !ok {
		b, _ = os.ReadFile(tf.Name())
		srcs[tf.Name()] = b
	}
	return tf, b
}

// ownLine reports whether only whitespace precedes pos on its source line.
func ownLine(fset *token.FileSet, srcs map[string][]byte, pos token.Pos) bool {
	tf, b := src(fset, srcs, pos)
	start := tf.Offset(tf.LineStart(fset.Position(pos).Line))
	end := tf.Offset(pos)
	if b == nil || end > len(b) {
		// Source unavailable: treat as a trailing comment.
		return false
	}
	return strings.TrimSpace(string(b[start:end])) == ""
}

// deletionRange computes the source range that removes directive c
// cleanly: the full line (trailing newline included) for an own-line
// directive, or the comment together with the whitespace that separates it
// from the code for a trailing one.
func deletionRange(fset *token.FileSet, srcs map[string][]byte, c *ast.Comment, own bool) (token.Pos, token.Pos) {
	tf, b := src(fset, srcs, c.Pos())
	if b == nil {
		return c.Pos(), c.End()
	}
	if own {
		line := fset.Position(c.Pos()).Line
		start := tf.LineStart(line)
		end := c.End()
		// Extend through the newline so no blank line is left behind.
		if off := tf.Offset(end); off < len(b) && b[off] == '\n' {
			end++
		}
		return start, end
	}
	start := c.Pos()
	for off := tf.Offset(start); off > 0 && (b[off-1] == ' ' || b[off-1] == '\t'); off-- {
		start--
	}
	return start, c.End()
}

// AllowSet indexes directives for suppression lookups.
type AllowSet struct {
	byKey map[allowKey]*allowUse
	// entries holds the well-formed directives in parse order, so the
	// driver can audit which of them actually suppressed something.
	entries []Allow
}

type allowKey struct {
	file     string
	line     int
	analyzer string
}

type allowUse struct {
	used bool
}

// NewAllowSet indexes the given directives. Malformed directives (missing
// analyzer or reason, or an analyzer name not in known) are returned as
// diagnostics attributed to the pseudo-analyzer "simlint" and do not
// suppress anything.
func NewAllowSet(allows []Allow, known map[string]bool) (*AllowSet, []Diagnostic) {
	s := &AllowSet{byKey: make(map[allowKey]*allowUse)}
	var bad []Diagnostic
	for _, a := range allows {
		switch {
		case a.Analyzer == "":
			bad = append(bad, Diagnostic{
				Analyzer: "simlint",
				Pos:      a.Pos,
				Message:  "malformed directive: want //simlint:allow <analyzer> <reason>",
			})
		case !known[a.Analyzer]:
			bad = append(bad, Diagnostic{
				Analyzer: "simlint",
				Pos:      a.Pos,
				Message:  "unknown analyzer " + a.Analyzer + " in //simlint:allow directive",
			})
		case a.Reason == "":
			bad = append(bad, Diagnostic{
				Analyzer: "simlint",
				Pos:      a.Pos,
				Message:  "missing reason in //simlint:allow " + a.Analyzer + " directive",
			})
		default:
			key := allowKey{a.File, a.Line, a.Analyzer}
			if s.byKey[key] == nil {
				s.byKey[key] = &allowUse{}
				s.entries = append(s.entries, a)
			}
		}
	}
	return s, bad
}

// Allows reports whether a diagnostic from analyzer at position pos is
// suppressed by a well-formed directive, and marks that directive used.
func (s *AllowSet) Allows(fset *token.FileSet, analyzer string, pos token.Pos) bool {
	p := fset.Position(pos)
	u := s.byKey[allowKey{p.Filename, p.Line, analyzer}]
	if u == nil {
		return false
	}
	u.used = true
	return true
}

// Unused returns the well-formed directives that suppressed nothing, in
// parse order, restricted to analyzers for which pred returns true (so a
// partial run — `simlint -only hotalloc` — never flags directives it could
// not have exercised).
func (s *AllowSet) Unused(pred func(analyzer string) bool) []Allow {
	var out []Allow
	for _, a := range s.entries {
		if !pred(a.Analyzer) {
			continue
		}
		if !s.byKey[allowKey{a.File, a.Line, a.Analyzer}].used {
			out = append(out, a)
		}
	}
	return out
}
