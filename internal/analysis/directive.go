package analysis

import (
	"go/ast"
	"go/token"
	"os"
	"strings"
)

// AllowPrefix introduces an audited-exception directive:
//
//	//simlint:allow <analyzer> <reason...>
//
// A directive written as a trailing comment suppresses that analyzer's
// diagnostics on its own line; a directive on a line of its own suppresses
// them on the next line. The reason is mandatory — an allow without a
// recorded justification is itself a finding.
const AllowPrefix = "//simlint:allow"

// Allow is one parsed //simlint:allow directive.
type Allow struct {
	Pos      token.Pos
	Analyzer string // analyzer name, "" if missing
	Reason   string // justification text, "" if missing
	// Line is the source line the directive suppresses: the directive's
	// own line for trailing comments, the following line otherwise.
	Line int
	File string
}

// ParseAllows extracts every //simlint:allow directive from files.
func ParseAllows(fset *token.FileSet, files []*ast.File) []Allow {
	srcs := make(map[string][]byte)
	var out []Allow
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, AllowPrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				a := Allow{Pos: c.Pos(), Line: pos.Line, File: pos.Filename}
				// A comment with no code before it on its line guards the
				// next line instead of its own.
				if ownLine(fset, srcs, c.Pos()) {
					a.Line++
				}
				fields := strings.Fields(rest)
				if len(fields) > 0 {
					a.Analyzer = fields[0]
					a.Reason = strings.Join(fields[1:], " ")
				}
				out = append(out, a)
			}
		}
	}
	return out
}

// ownLine reports whether only whitespace precedes pos on its source line.
// srcs caches file contents across calls.
func ownLine(fset *token.FileSet, srcs map[string][]byte, pos token.Pos) bool {
	tf := fset.File(pos)
	src, ok := srcs[tf.Name()]
	if !ok {
		src, _ = os.ReadFile(tf.Name())
		srcs[tf.Name()] = src
	}
	start := tf.Offset(tf.LineStart(fset.Position(pos).Line))
	end := tf.Offset(pos)
	if src == nil || end > len(src) {
		// Source unavailable: treat as a trailing comment.
		return false
	}
	return strings.TrimSpace(string(src[start:end])) == ""
}

// AllowSet indexes directives for suppression lookups.
type AllowSet struct {
	byKey map[allowKey]bool
}

type allowKey struct {
	file     string
	line     int
	analyzer string
}

// NewAllowSet indexes the given directives. Malformed directives (missing
// analyzer or reason, or an analyzer name not in known) are returned as
// diagnostics attributed to the pseudo-analyzer "simlint" and do not
// suppress anything.
func NewAllowSet(allows []Allow, known map[string]bool) (*AllowSet, []Diagnostic) {
	s := &AllowSet{byKey: make(map[allowKey]bool)}
	var bad []Diagnostic
	for _, a := range allows {
		switch {
		case a.Analyzer == "":
			bad = append(bad, Diagnostic{
				Analyzer: "simlint",
				Pos:      a.Pos,
				Message:  "malformed directive: want //simlint:allow <analyzer> <reason>",
			})
		case !known[a.Analyzer]:
			bad = append(bad, Diagnostic{
				Analyzer: "simlint",
				Pos:      a.Pos,
				Message:  "unknown analyzer " + a.Analyzer + " in //simlint:allow directive",
			})
		case a.Reason == "":
			bad = append(bad, Diagnostic{
				Analyzer: "simlint",
				Pos:      a.Pos,
				Message:  "missing reason in //simlint:allow " + a.Analyzer + " directive",
			})
		default:
			s.byKey[allowKey{a.File, a.Line, a.Analyzer}] = true
		}
	}
	return s, bad
}

// Allows reports whether a diagnostic from analyzer at position pos is
// suppressed by a well-formed directive.
func (s *AllowSet) Allows(fset *token.FileSet, analyzer string, pos token.Pos) bool {
	p := fset.Position(pos)
	return s.byKey[allowKey{p.Filename, p.Line, analyzer}]
}
