package simproc_test

import (
	"testing"

	"durassd/internal/analysis/checktest"
	"durassd/internal/analysis/simproc"
)

func TestSimProc(t *testing.T) {
	checktest.Run(t, "simproc", simproc.Analyzer)
}

// TestEngineExempt verifies internal/sim itself may start raw goroutines:
// the engine's handoff protocol is the sanctioned home for them.
func TestEngineExempt(t *testing.T) {
	checktest.Run(t, "durassd/internal/sim", simproc.Analyzer)
}
