// Package simproc forbids raw goroutines outside the simulation engine.
//
// Invariant protected: exactly one simulated process executes at any
// virtual instant, and the engine interleaves processes in a deterministic
// (timestamp, sequence) order. A raw `go` statement anywhere else
// introduces OS-scheduler interleaving that the engine cannot order, so
// two runs with the same seed may diverge — silently corrupting schedule
// digests, replayed crash prefixes, and every "same seed, same result"
// test in the tree. Concurrency in simulated components must be expressed
// as engine processes (sim.Engine.Go), which are ordinary goroutines
// *driven* by the engine's handoff protocol.
//
// internal/sim itself is exempt: it owns the handoff protocol and is the
// one place a raw goroutine is part of the design. Anything else needs an
// audited //simlint:allow simproc <reason> directive.
package simproc

import (
	"go/ast"

	"durassd/internal/analysis"
)

// ExemptPaths are the packages allowed to start raw goroutines.
var ExemptPaths = map[string]bool{"durassd/internal/sim": true}

// Analyzer is the simproc check.
var Analyzer = &analysis.Analyzer{
	Name: "simproc",
	Doc:  "forbid raw go statements outside internal/sim; simulated concurrency must go through engine processes so replay stays deterministic",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if ExemptPaths[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(), "raw go statement outside internal/sim: OS-scheduled goroutines break deterministic replay; use sim.Engine.Go to start an engine process")
			}
			return true
		})
	}
	return nil
}
