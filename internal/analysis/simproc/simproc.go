// Package simproc forbids raw goroutines outside the simulation engine.
//
// Invariant protected: exactly one simulated process executes at any
// virtual instant, and the engine interleaves processes in a deterministic
// (timestamp, sequence) order. A raw `go` statement anywhere else
// introduces OS-scheduler interleaving that the engine cannot order, so
// two runs with the same seed may diverge — silently corrupting schedule
// digests, replayed crash prefixes, and every "same seed, same result"
// test in the tree. Concurrency in simulated components must be expressed
// as engine processes (sim.Engine.Go), which are ordinary goroutines
// *driven* by the engine's handoff protocol.
//
// The same fence covers OS-thread pinning: runtime.LockOSThread and
// runtime.UnlockOSThread exist for the cluster runtime's per-domain
// workers, whose coroutines must always resume on their creation thread.
// Pinning anywhere else either does nothing (single-engine code) or
// fights the cluster's thread discipline (a coroutine resumed under a
// different lock state aborts the process) — so thread locking outside
// internal/sim is flagged alongside raw go statements.
//
// internal/sim itself is exempt: it owns the handoff protocol and the
// cluster's worker threads, and is the one place raw goroutines and
// thread pinning are part of the design. Anything else needs an audited
// //simlint:allow simproc <reason> directive.
package simproc

import (
	"go/ast"
	"go/types"

	"durassd/internal/analysis"
)

// ExemptPaths are the packages allowed to start raw goroutines and pin OS
// threads: the engine + cluster runtime only.
var ExemptPaths = map[string]bool{"durassd/internal/sim": true}

// Analyzer is the simproc check.
var Analyzer = &analysis.Analyzer{
	Name: "simproc",
	Doc:  "forbid raw go statements and OS-thread pinning outside internal/sim; simulated concurrency must go through engine processes so replay stays deterministic",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if ExemptPaths[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "raw go statement outside internal/sim: OS-scheduled goroutines break deterministic replay; use sim.Engine.Go to start an engine process")
			case *ast.CallExpr:
				if name := threadLockCall(pass, n); name != "" {
					pass.Reportf(n.Pos(), "runtime.%s outside internal/sim: OS-thread pinning belongs to the cluster runtime's domain workers; coroutines resumed under a different lock state abort", name)
				}
			}
			return true
		})
	}
	return nil
}

// threadLockCall returns "LockOSThread"/"UnlockOSThread" when call invokes
// the corresponding runtime function, else "".
func threadLockCall(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "runtime" {
		return ""
	}
	if n := fn.Name(); n == "LockOSThread" || n == "UnlockOSThread" {
		return n
	}
	return ""
}
