// Package sim is analyzer testdata standing in for the real engine
// package: internal/sim owns the process handoff protocol and the cluster
// runtime's per-domain worker threads, so it is the one place raw
// goroutines and OS-thread pinning are part of the design.
package sim

import "runtime"

func resume() {
	go func() {}()
}

// worker mimics the cluster runtime: each domain worker locks itself to an
// OS thread so coroutines always resume on their creation thread.
func worker() {
	go func() {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}()
}
