// Package sim is analyzer testdata standing in for the real engine
// package: internal/sim owns the process handoff protocol and is the one
// place a raw goroutine is part of the design.
package sim

func resume() {
	go func() {}()
}
