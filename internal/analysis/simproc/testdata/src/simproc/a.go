// Package simproc is analyzer testdata: raw goroutines outside
// internal/sim break deterministic replay and must be flagged.
package simproc

func bad() {
	go func() {}() // want `raw go statement outside internal/sim`
}

func badNamed() {
	go worker() // want `raw go statement outside internal/sim`
}

func worker() {}

func closuresWithoutGoAreFine() {
	f := func() {}
	f()
	defer f()
}

func allowed() {
	go worker() //simlint:allow simproc audited: drains a host-side channel, never touches sim state
}
