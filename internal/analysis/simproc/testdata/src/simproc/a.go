// Package simproc is analyzer testdata: raw goroutines outside
// internal/sim break deterministic replay and must be flagged.
package simproc

import "runtime"

func bad() {
	go func() {}() // want `raw go statement outside internal/sim`
}

func badNamed() {
	go worker() // want `raw go statement outside internal/sim`
}

func worker() {}

func closuresWithoutGoAreFine() {
	f := func() {}
	f()
	defer f()
}

func allowed() {
	go worker() //simlint:allow simproc audited: drains a host-side channel, never touches sim state
}

func pinsThread() {
	runtime.LockOSThread()         // want `runtime\.LockOSThread outside internal/sim`
	defer runtime.UnlockOSThread() // want `runtime\.UnlockOSThread outside internal/sim`
}

func allowedPin() {
	runtime.LockOSThread() //simlint:allow simproc audited: cgo callback thread required by a host library
}

func otherRuntimeCallsAreFine() {
	runtime.Gosched()
	_ = runtime.NumCPU()
}

type fakeRuntime struct{}

func (fakeRuntime) LockOSThread() {}

func methodOfOtherTypeIsFine() {
	var r fakeRuntime
	r.LockOSThread()
}
