// Package hotalloc enforces allocation-free hot paths.
//
// Invariant protected: PR 6 took the dispatch loop from 2.83 to 0.23
// allocs/event by pooling events, reusing scratch buffers, and keeping
// per-request work off the garbage collector; nothing but a benchmark
// regression gate guards that property dynamically. This analyzer guards
// it statically: a function whose doc comment carries //simlint:hotpath,
// and every function statically reachable from it — across package
// boundaries, via per-function summary facts the driver threads along
// import edges — must not heap-allocate.
//
// Flagged allocation sites: composite literals whose address is taken,
// slice and map literals, make and new, append that can grow its backing
// array (the in-place idioms `x = append(x, …)` and `x = append(x[:0], …)`
// are amortized into an existing backing array and exempt), string
// concatenation, []byte/string/[]rune conversions, closures that capture
// variables, bound-method values, fmt calls, and arguments boxed into
// interface parameters at call sites. Calls that leave the package are
// checked against the callee's exported summary: if anything behind the
// call allocates, the call site is flagged with the attribution chain
// ("via ssd.(*DuraSSD).Write → ftl.(*FTL).MapWrite").
//
// Two cold regions are exempt because they run only when the simulation
// is already failing: deferred closures containing recover(), and the
// arguments of panic calls. Everything else on a hot path needs either a
// fix or an audited //simlint:allow hotalloc directive with a reason.
//
// Dynamic dispatch — interface method calls, function values — has no
// static callee and is not followed; hot paths that fan out through
// interfaces (storage.Device implementations, timer callbacks) are
// covered by seeding //simlint:hotpath on each implementation's entry
// points, which the repository does across sim, devfront, ssd, ftl, nand,
// and core.
package hotalloc

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"durassd/internal/analysis"
	"durassd/internal/analysis/callgraph"
)

// Analyzer is the hotalloc check.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "functions marked //simlint:hotpath and everything statically reachable from them must not heap-allocate",
	Run:  run,
}

// allocEntry is one reachable allocation in a function's exported
// summary fact.
type allocEntry struct {
	P string   `json:"p"`           // site position, file:line:col
	W string   `json:"w"`           // what allocates
	V []string `json:"v,omitempty"` // call chain from the summarized function to the site
}

const (
	// maxEntriesPerFunc bounds each summary so facts stay small; a hot
	// function with more than this many reachable allocations is broken
	// enough that the first few findings tell the story.
	maxEntriesPerFunc = 8
	// maxChain bounds attribution depth.
	maxChain = 6
)

// site is one local allocation site.
type site struct {
	pos  token.Pos
	what string
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo

	marked, misplaced := analysis.HotpathFuncs(pass.Files)
	for _, pos := range misplaced {
		pass.Reportf(pos, "misplaced //simlint:hotpath directive: it must appear in a function declaration's doc comment")
	}

	skip := coldRegionSkipper(info)
	graph := callgraph.Build(info, pass.Files, skip)

	// A //simlint:allow hotalloc directive trailing a function declaration
	// exempts the whole function: its sites are neither reported nor
	// exported, and the hot walk stops at its boundary. This is how cold
	// recovery chains (media-error retirement, refresh migration) opt out
	// once, at their gateway, instead of needing an allow at every
	// transitive allocation they reach.
	exempt := make(map[*types.Func]bool)
	sites := make(map[*types.Func][]site)
	for _, n := range graph.Nodes {
		if pass.Allowed(n.Decl.Pos()) {
			exempt[n.Func] = true
			continue
		}
		sites[n.Func] = collectSites(pass, n.Decl, skip)
	}

	// Bottom-up summaries: every function's transitively reachable
	// allocations, composed from local sites, local callees, and imported
	// facts. Exported so importing packages see through this one.
	memo := make(map[*types.Func][]allocEntry)
	visiting := make(map[*types.Func]bool)
	var summarize func(fn *types.Func) []allocEntry
	external := func(callee *types.Func) []allocEntry {
		pkg := callee.Pkg()
		if pkg == nil || pkg == pass.Pkg {
			return nil
		}
		raw := pass.ImportedFacts(pkg.Path())[callee.FullName()]
		if raw == nil {
			return nil
		}
		var entries []allocEntry
		if json.Unmarshal(raw, &entries) != nil {
			return nil
		}
		return entries
	}
	summarize = func(fn *types.Func) []allocEntry {
		if exempt[fn] {
			return nil
		}
		if e, ok := memo[fn]; ok {
			return e
		}
		if visiting[fn] {
			// Recursion: the cycle's sites are collected at the first
			// visit; cutting here under-counts nothing.
			return nil
		}
		visiting[fn] = true
		defer func() { visiting[fn] = false }()

		var out []allocEntry
		seen := make(map[string]bool)
		add := func(e allocEntry) {
			key := e.P + "|" + e.W
			if seen[key] || len(out) >= maxEntriesPerFunc {
				return
			}
			seen[key] = true
			out = append(out, e)
		}
		for _, s := range sites[fn] {
			add(allocEntry{P: posString(pass.Fset, s.pos), W: s.what})
		}
		if n := graph.Nodes[fn]; n != nil {
			for _, c := range n.Calls {
				var callee []allocEntry
				if _, local := graph.Nodes[c.Callee]; local {
					callee = summarize(c.Callee)
				} else {
					callee = external(c.Callee)
				}
				for _, e := range callee {
					if len(e.V) >= maxChain {
						continue
					}
					add(allocEntry{P: e.P, W: e.W, V: append([]string{c.Callee.FullName()}, e.V...)})
				}
			}
		}
		memo[fn] = out
		return out
	}
	for _, n := range graph.Nodes {
		if entries := summarize(n.Func); len(entries) > 0 {
			if err := pass.ExportFact(n.Func.FullName(), entries); err != nil {
				return err
			}
		}
	}

	// Report: walk the hot closure from each marked root. Local sites are
	// reported in place; allocations behind a cross-package call are
	// reported at the call site with the chain that reaches them.
	reported := make(map[token.Pos]bool)
	walked := make(map[*types.Func]bool)
	var visit func(fn *types.Func, path []string)
	visit = func(fn *types.Func, path []string) {
		if walked[fn] || exempt[fn] {
			return
		}
		walked[fn] = true
		for _, s := range sites[fn] {
			if reported[s.pos] {
				continue
			}
			reported[s.pos] = true
			msg := "heap allocation on hot path: " + s.what
			if len(path) > 1 {
				msg += " (reached via " + strings.Join(path, " → ") + ")"
			}
			pass.Reportf(s.pos, "%s", msg)
		}
		n := graph.Nodes[fn]
		if n == nil {
			return
		}
		for _, c := range n.Calls {
			if _, local := graph.Nodes[c.Callee]; local {
				visit(c.Callee, append(path, shorten(c.Callee.FullName())))
				continue
			}
			entries := external(c.Callee)
			if len(entries) == 0 || reported[c.Pos] {
				continue
			}
			reported[c.Pos] = true
			e := entries[0]
			chain := append(append([]string{}, path...), shorten(c.Callee.FullName()))
			for _, v := range e.V {
				chain = append(chain, shorten(v))
			}
			msg := fmt.Sprintf("call on hot path reaches heap allocation: %s at %s (via %s)", e.W, e.P, strings.Join(chain, " → "))
			if len(entries) > 1 {
				msg += fmt.Sprintf("; %d more allocation site(s) behind this call", len(entries)-1)
			}
			pass.Reportf(c.Pos, "%s", msg)
		}
	}
	for _, fd := range marked {
		fn, ok := info.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		visit(fn, []string{shorten(fn.FullName())})
	}
	return nil
}

// coldRegionSkipper returns the subtree filter for regions that only run
// when the simulation is already failing.
func coldRegionSkipper(info *types.Info) func(ast.Node) bool {
	return func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt:
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok && containsRecover(info, lit) {
				return true
			}
		case *ast.CallExpr:
			if isBuiltin(info, x, "panic") {
				return true
			}
		}
		return false
	}
}

func containsRecover(info *types.Info, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isBuiltin(info, call, "recover") {
			found = true
		}
		return !found
	})
	return found
}

func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// collectSites walks one declaration's body and records every local
// allocation site, excluding cold regions and amortized appends.
func collectSites(pass *analysis.Pass, decl *ast.FuncDecl, skip func(ast.Node) bool) []site {
	info := pass.TypesInfo
	amortized := amortizedAppends(info, decl.Body)
	calleeExprs := make(map[ast.Expr]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			calleeExprs[ast.Unparen(call.Fun)] = true
		}
		return true
	})

	var out []site
	add := func(pos token.Pos, what string) {
		// An allow directly on the site keeps it out of the exported
		// summary too, so importing packages do not re-report it.
		if pass.Allowed(pos) {
			return
		}
		out = append(out, site{pos, what})
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if skip(n) {
			return false
		}
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					add(x.Pos(), "composite literal escapes to the heap (&"+typeName(info, x.X)+"{…})")
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[x]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					add(x.Pos(), "slice literal allocates its backing array")
				case *types.Map:
					add(x.Pos(), "map literal allocates")
				}
			}
		case *ast.FuncLit:
			if caps := captured(info, x); len(caps) > 0 {
				add(x.Pos(), "closure captures "+strings.Join(caps, ", ")+" and allocates")
			}
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.MethodVal && !calleeExprs[ast.Expr(x)] {
				add(x.Pos(), "method value "+x.Sel.Name+" allocates a bound-method closure")
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isNonConstString(info, x) {
				add(x.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isString(info, x.Lhs[0]) {
				add(x.Pos(), "string concatenation allocates")
			}
		case *ast.CallExpr:
			collectCallSites(pass, x, amortized, add)
		}
		return true
	})
	return out
}

// collectCallSites handles the allocation classes rooted at a call
// expression: builtins, conversions, fmt, and interface boxing.
func collectCallSites(pass *analysis.Pass, call *ast.CallExpr, amortized map[*ast.CallExpr]bool, add func(token.Pos, string)) {
	info := pass.TypesInfo
	fun := ast.Unparen(call.Fun)

	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				add(call.Pos(), "make allocates")
			case "new":
				add(call.Pos(), "new allocates")
			case "append":
				if !amortized[call] {
					add(call.Pos(), "append may grow and reallocate its backing array")
				}
			}
			return
		}
	}

	// Conversion: T(x).
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		dst := tv.Type
		if len(call.Args) != 1 {
			return
		}
		src, ok := info.Types[call.Args[0]]
		if !ok {
			return
		}
		switch dst.Underlying().(type) {
		case *types.Slice:
			if isString(info, call.Args[0]) {
				add(call.Pos(), "string-to-slice conversion allocates")
			}
		case *types.Basic:
			if b, ok := dst.Underlying().(*types.Basic); ok && b.Kind() == types.String {
				if _, isSlice := src.Type.Underlying().(*types.Slice); isSlice {
					add(call.Pos(), "slice-to-string conversion allocates")
				}
			}
		case *types.Interface:
			if boxes(src) {
				add(call.Pos(), "conversion to interface boxes "+src.Type.String())
			}
		}
		return
	}

	if callee := callgraph.StaticCallee(info, call); callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		add(call.Pos(), "call to fmt."+callee.Name()+" allocates")
		return
	}

	// Interface boxing at the call site: concrete, non-pointer-shaped
	// arguments passed to interface parameters.
	sig, ok := info.Types[fun].Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... forwards an existing slice, no boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		if src, ok := info.Types[arg]; ok && boxes(src) {
			add(arg.Pos(), "argument boxed into interface parameter ("+src.Type.String()+")")
		}
	}
}

// boxes reports whether converting the value to an interface heap-boxes
// it: concrete, not pointer-shaped, not a compile-time constant.
func boxes(tv types.TypeAndValue) bool {
	if tv.Value != nil || tv.IsNil() || tv.Type == nil {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		return tv.Type.Underlying().(*types.Basic).Kind() != types.UnsafePointer
	}
	return true
}

// amortizedAppends finds append calls in the in-place idioms
// `x = append(x, …)` and `x = append(x[:0], …)` (any self-slice base):
// they reuse an existing backing array and are amortized allocation-free.
func amortizedAppends(info *types.Info, body *ast.BlockStmt) map[*ast.CallExpr]bool {
	out := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || len(call.Args) == 0 || !isBuiltin(info, call, "append") {
				continue
			}
			dst := types.ExprString(as.Lhs[i])
			arg0 := ast.Unparen(call.Args[0])
			if se, ok := arg0.(*ast.SliceExpr); ok {
				arg0 = ast.Unparen(se.X)
			}
			if types.ExprString(arg0) == dst {
				out[call] = true
			}
		}
		return true
	})
	return out
}

// captured lists the variables a function literal closes over: named
// objects declared outside the literal but inside some enclosing
// function (package-level state is not a capture).
func captured(info *types.Info, lit *ast.FuncLit) []string {
	seen := make(map[*types.Var]bool)
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Pos() == token.NoPos || (v.Pos() >= lit.Pos() && v.Pos() <= lit.End()) {
			return true
		}
		if pkg := v.Pkg(); pkg == nil || pkg.Scope().Lookup(v.Name()) == v {
			return true // package-level variable, not a capture
		}
		seen[v] = true
		names = append(names, v.Name())
		return true
	})
	return names
}

func isString(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isNonConstString(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value == nil && isString(info, e)
}

func typeName(info *types.Info, e ast.Expr) string {
	if tv, ok := info.Types[ast.Unparen(e)]; ok && tv.Type != nil {
		s := tv.Type.String()
		if i := strings.LastIndexByte(s, '/'); i >= 0 {
			s = s[i+1:]
		}
		return s
	}
	return "T"
}

// posString renders a site position compactly for facts and messages.
func posString(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d:%d", filepath.Base(p.Filename), p.Line, p.Column)
}

// shorten trims module path noise from a FullName for diagnostics.
func shorten(full string) string {
	return strings.ReplaceAll(full, "durassd/internal/", "")
}
