// Package dep is the upstream half of the cross-package hotalloc golden:
// it has no hot roots of its own, so nothing is reported here, but its
// allocation summaries are exported as facts for importers.
package dep

// Scratch builds a fresh buffer on every call.
func Scratch() []byte {
	return make([]byte, 64)
}

// Quiet is allocation-free.
func Quiet(b []byte) int {
	return len(b)
}
