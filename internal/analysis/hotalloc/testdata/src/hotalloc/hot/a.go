// Package hot is the downstream half of the cross-package hotalloc
// golden: the findings below only exist if dep's summary facts crossed
// the package boundary.
package hot

import "hotalloc/dep"

//simlint:hotpath
func Hot() int {
	b := dep.Scratch() // want `call on hot path reaches heap allocation: make allocates at a\.go:\d+:\d+ \(via hotalloc/hot\.Hot → hotalloc/dep\.Scratch\)`
	return dep.Quiet(b)
}
