// Package hotalloc is analyzer testdata: every allocation class on a hot
// path must be flagged, amortized and cold-region idioms must not, and
// allow directives must silence sites and whole functions.
package hotalloc

import "fmt"

type buf struct {
	b []byte
	n int
}

func sink(v any) { _ = v }

var global []byte

//simlint:hotpath
func Hot(scratch []byte, s string) {
	_ = make([]byte, 8)          // want `heap allocation on hot path: make allocates`
	_ = new(buf)                 // want `heap allocation on hot path: new allocates`
	_ = &buf{n: 1}               // want `composite literal escapes to the heap \(&hotalloc\.buf\{…\}\)`
	_ = []int{1, 2}              // want `slice literal allocates its backing array`
	_ = map[string]int{"k": 1}   // want `map literal allocates`
	scratch = append(global, 0)  // want `append may grow and reallocate its backing array`
	scratch = append(scratch, 0) // amortized in-place idiom: no finding
	scratch = append(scratch[:0], 1)
	_ = s + "suffix"    // want `string concatenation allocates`
	_ = []byte(s)       // want `string-to-slice conversion allocates`
	_ = string(scratch) // want `slice-to-string conversion allocates`
	sink(len(scratch))  // want `argument boxed into interface parameter \(int\)`
	sink(nil)           // nil boxes nothing
	fmt.Sprintln(s)     // want `call to fmt\.Sprintln allocates`
	n := 0
	f := func() { n++ } // want `closure captures n and allocates`
	f()
	g := func() {} // captures nothing: no finding
	g()
	helper()
}

// helper is unmarked but reachable from Hot, so its sites are attributed.
func helper() {
	_ = new(int) // want `heap allocation on hot path: new allocates \(reached via hotalloc\.Hot → hotalloc\.helper\)`
}

// Unmarked is not reachable from any hot root: it may allocate freely.
func Unmarked() []byte {
	return make([]byte, 64)
}

//simlint:hotpath
func HotRecover() {
	defer func() {
		if r := recover(); r != nil {
			_ = fmt.Sprint(r) // cold region: deferred recover closure
		}
	}()
	if global == nil {
		panic("state " + "lost") // cold region: panic arguments
	}
}

//simlint:hotpath
func HotAllowedSite(pool [][]byte) []byte {
	if len(pool) > 0 {
		return pool[0]
	}
	return make([]byte, 64) //simlint:allow hotalloc pool miss fallback exercised only at warmup
}

//simlint:hotpath
func HotGateway() {
	coldChain()
}

// coldChain opts out wholesale: the allow on the declaration line exempts
// every site inside and stops the hot walk at its boundary.
func coldChain() { //simlint:allow hotalloc cold retirement path runs at most once per failure
	_ = make([]byte, 1)
	_ = fmt.Sprintf("%d", 1)
}

func misplacedHost() int {
	//simlint:hotpath // want `misplaced //simlint:hotpath directive: it must appear in a function declaration's doc comment`
	return 0
}
