package hotalloc_test

import (
	"testing"

	"durassd/internal/analysis/checktest"
	"durassd/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	checktest.Run(t, "hotalloc", hotalloc.Analyzer)
}

// TestHotallocFacts runs a two-package chain: dep exports allocation
// summaries, hot imports dep and must report the call site with the
// cross-package attribution chain.
func TestHotallocFacts(t *testing.T) {
	checktest.RunDirs(t, []string{"hotalloc/dep", "hotalloc/hot"}, hotalloc.Analyzer)
}
