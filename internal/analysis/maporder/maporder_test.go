package maporder_test

import (
	"testing"

	"durassd/internal/analysis/checktest"
	"durassd/internal/analysis/maporder"
)

func TestMapOrder(t *testing.T) {
	checktest.Run(t, "maporder", maporder.Analyzer)
}
