// Package maporder flags map iteration that leaks into ordered output.
//
// Invariant protected: Go randomizes map iteration order on purpose, so a
// `range` over a map that feeds an order-sensitive sink — an iotrace event
// stream, a schedule digest being hashed, a rendered stats table, a JSON
// report — produces output that differs run to run even when the
// simulation itself was deterministic. That breaks the byte-identical
// schedule digests crash-point exploration asserts and makes golden-file
// comparisons flaky. The sanctioned idiom is to collect the keys, sort
// them, and range over the sorted slice; ranging over the map directly is
// then fine because nothing ordered escapes the loop.
//
// A loop body is considered order-sensitive when it (transitively, inside
// the loop's AST) calls into the report-producing packages
// (internal/iotrace, internal/stats, internal/repro, internal/crashpoint),
// prints via fmt (Print/Fprint family), or calls Write / WriteString /
// WriteByte / WriteRune on any io.Writer — which covers hash.Hash digests,
// bytes.Buffer/strings.Builder report assembly, and files. Loops that
// merely aggregate (sum counters, build a slice that is sorted afterwards)
// are not flagged.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"durassd/internal/analysis"
)

// SinkPkgs are the import paths whose call surface is treated as ordered
// output. Reaching any of them from inside a map-range body is a finding.
var SinkPkgs = map[string]bool{
	"durassd/internal/iotrace":    true,
	"durassd/internal/stats":      true,
	"durassd/internal/repro":      true,
	"durassd/internal/crashpoint": true,
}

// fmtEmitters are the fmt functions that emit directly (as opposed to the
// Sprint family, which builds values whose eventual use is what matters).
var fmtEmitters = map[string]bool{
	"Print": true, "Println": true, "Printf": true,
	"Fprint": true, "Fprintln": true, "Fprintf": true,
}

// orderedWriteMethods are the method names that append to an ordered byte
// stream when the receiver satisfies io.Writer.
var orderedWriteMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

// Analyzer is the maporder check.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flag range over a map whose body feeds an order-sensitive sink (trace events, digests, reports, rendered stats); sort the keys first",
	Run:  run,
}

// ioWriter is a structural io.Writer, built by hand so the analyzer does
// not depend on the checked package importing io.
var ioWriter = func() *types.Interface {
	errType := types.Universe.Lookup("error").Type()
	sig := types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(token.NoPos, nil, "p", types.NewSlice(types.Typ[types.Byte]))),
		types.NewTuple(types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
			types.NewVar(token.NoPos, nil, "err", errType)),
		false)
	i := types.NewInterfaceType([]*types.Func{types.NewFunc(token.NoPos, nil, "Write", sig)}, nil)
	i.Complete()
	return i
}()

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if sink, pos := findSink(pass, rng.Body); sink != "" {
				pass.Reportf(pos, "map iteration order reaches %s inside this range (map ranged at %s); sort the keys and range the slice instead",
					sink, pass.Fset.Position(rng.Pos()))
			}
			return true
		})
	}
	return nil
}

// findSink locates the first order-sensitive call inside body.
func findSink(pass *analysis.Pass, body *ast.BlockStmt) (string, token.Pos) {
	var sink string
	var pos token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok {
			return true
		}
		if pkg := fn.Pkg(); pkg != nil {
			if SinkPkgs[pkg.Path()] {
				sink, pos = pkg.Path()+"."+fn.Name(), call.Pos()
				return false
			}
			if pkg.Path() == "fmt" && fmtEmitters[fn.Name()] {
				sink, pos = "fmt."+fn.Name(), call.Pos()
				return false
			}
		}
		// A write on anything that satisfies io.Writer: digest, buffer,
		// builder, file — all ordered byte streams. The convenience
		// methods count too: a strings.Builder filled via WriteString
		// inside the range and rendered into a report afterwards leaks
		// exactly the same iteration order as Write would.
		if orderedWriteMethods[fn.Name()] {
			if s, ok := pass.TypesInfo.Selections[sel]; ok && writesBytes(s.Recv()) {
				sink, pos = recvName(s.Recv())+"."+fn.Name(), call.Pos()
				return false
			}
		}
		return true
	})
	return sink, pos
}

// writesBytes reports whether t (or *t, for addressable values with
// pointer-receiver Write methods) satisfies io.Writer.
func writesBytes(t types.Type) bool {
	if types.Implements(t, ioWriter) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), ioWriter)
	}
	return false
}

// recvName renders a receiver type compactly for the diagnostic.
func recvName(t types.Type) string {
	s := types.TypeString(t, func(p *types.Package) string { return p.Name() })
	return strings.TrimPrefix(s, "*")
}
