package maporder

import (
	"fmt"
	"sort"
	"strings"
)

// A strings.Builder filled inside a map range and rendered into a report
// afterwards leaks iteration order through the convenience write methods,
// not just through Write itself.
func builderReport(m map[string]int) string {
	var b strings.Builder
	for k, v := range m {
		b.WriteString(fmt.Sprintf("%s=%d\n", k, v)) // want `map iteration order reaches strings\.Builder\.WriteString`
	}
	return b.String()
}

func builderByteRune(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteByte(k[0]) // want `map iteration order reaches strings\.Builder\.WriteByte`
	}
	for k := range m {
		b.WriteRune(rune(k[0])) // want `map iteration order reaches strings\.Builder\.WriteRune`
	}
	return b.String()
}

// The sorted-keys idiom stays clean with the convenience methods too.
func builderSortedGood(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(fmt.Sprintf("%s=%d\n", k, m[k]))
	}
	return b.String()
}

// WriteString on something that is not an io.Writer is not an ordered
// byte stream for this analyzer's purposes.
type notAWriter struct{ n int }

func (w *notAWriter) WriteString(s string) { w.n += len(s) }

func notAWriterGood(m map[string]int) int {
	var w notAWriter
	for k := range m {
		w.WriteString(k)
	}
	return w.n
}
