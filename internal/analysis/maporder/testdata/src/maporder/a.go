// Package maporder is analyzer testdata: map iteration feeding ordered
// sinks (digests, emitted text, byte streams) must be flagged, while pure
// aggregation and the sorted-keys idiom must not.
package maporder

import (
	"crypto/sha256"
	"fmt"
	"sort"
)

func digestBad(m map[string]int) []byte {
	h := sha256.New()
	for k := range m {
		h.Write([]byte(k)) // want `map iteration order reaches hash\.Hash\.Write`
	}
	return h.Sum(nil)
}

func printBad(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `map iteration order reaches fmt\.Println`
	}
}

func fprintfBad(m map[string]int) []byte {
	h := sha256.New()
	for k, v := range m {
		fmt.Fprintf(h, "%s=%d\n", k, v) // want `map iteration order reaches fmt\.Fprintf`
	}
	return h.Sum(nil)
}

func sortedKeysGood(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

func aggregationGood(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func sliceRangeGood(s []string) {
	// Slices iterate in index order; emission is deterministic.
	for _, v := range s {
		fmt.Println(v)
	}
}

func sprintIsValueConstruction(m map[string]int) map[string]string {
	// Sprint builds values; determinism depends on how they are used,
	// which keyed re-insertion preserves.
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = fmt.Sprintf("%d", v)
	}
	return out
}

func allowed(m map[string]int) {
	for k := range m {
		fmt.Println(k) //simlint:allow maporder debug dump; order never asserted
	}
}
