package maporder

import "durassd/internal/stats"

// Calls into the repository's report-producing packages are ordered sinks
// even though they are not byte streams themselves: a stats.Table renders
// rows in insertion order.
func tableBad(m map[string]float64) *stats.Table {
	t := stats.NewTable("cells", "key", "value")
	for k, v := range m {
		t.AddRow(k, v) // want `map iteration order reaches durassd/internal/stats\.AddRow`
	}
	return t
}

func tableGood(m map[string]float64, keys []string) *stats.Table {
	t := stats.NewTable("cells", "key", "value")
	for _, k := range keys {
		t.AddRow(k, m[k])
	}
	return t
}
