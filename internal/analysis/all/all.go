// Package all registers every simlint analyzer. cmd/simlint runs them;
// tests use the registry to validate //simlint:allow directives against
// the real analyzer set.
package all

import (
	"durassd/internal/analysis"
	"durassd/internal/analysis/crossdomain"
	"durassd/internal/analysis/devcheck"
	"durassd/internal/analysis/directiveaudit"
	"durassd/internal/analysis/hotalloc"
	"durassd/internal/analysis/maporder"
	"durassd/internal/analysis/nowalltime"
	"durassd/internal/analysis/procbudget"
	"durassd/internal/analysis/seededrand"
	"durassd/internal/analysis/simproc"
)

// Analyzers is the full simlint suite, in reporting order.
var Analyzers = []*analysis.Analyzer{
	crossdomain.Analyzer,
	devcheck.Analyzer,
	directiveaudit.Analyzer,
	hotalloc.Analyzer,
	maporder.Analyzer,
	nowalltime.Analyzer,
	procbudget.Analyzer,
	seededrand.Analyzer,
	simproc.Analyzer,
}
