package sim

import "time"

// Timer fires a fixed callback at a virtual instant, with O(log n) Reset
// and Stop. It is the callback fast path for sequential service loops: a
// device stage driven by a Timer costs one recycled arena event per firing
// — no goroutine, no channel handoff, and no allocation after the Timer
// itself. Use a Proc instead when the logic genuinely blocks (acquiring
// resources, waiting on queues mid-operation).
//
// A Timer fires at most once per Reset; Reset from within the callback
// re-arms it. Like everything else on the Engine, Timers are single-owner:
// call methods only from the engine's own processes and callbacks.
type Timer struct {
	eng  *Engine
	fn   func()
	wrap func() // clears idx, then runs fn; allocated once
	idx  int32  // arena index of the pending event; -1 when idle
}

// NewTimer returns an idle timer that will run fn each time it fires.
func (e *Engine) NewTimer(fn func()) *Timer {
	t := &Timer{eng: e, fn: fn, idx: -1}
	t.wrap = func() {
		t.idx = -1
		t.fn()
	}
	return t
}

// Reset (re)schedules the timer to fire after d of virtual time, cancelling
// any pending firing. A negative delay is treated as zero.
//
//simlint:hotpath
func (t *Timer) Reset(d time.Duration) {
	if d < 0 {
		d = 0
	}
	if t.idx >= 0 {
		t.eng.removeEvent(t.idx)
	}
	t.idx = t.eng.pushEvent(t.eng.now+d, t.wrap, nil)
}

// Stop cancels a pending firing and reports whether one was pending.
func (t *Timer) Stop() bool {
	if t.idx < 0 {
		return false
	}
	t.eng.removeEvent(t.idx)
	t.idx = -1
	return true
}

// Active reports whether a firing is pending.
func (t *Timer) Active() bool { return t.idx >= 0 }
