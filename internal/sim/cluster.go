// Cluster: deterministic parallel simulation across sharded engines.
//
// A Cluster owns N Domains, each wrapping its own Engine. Domains advance in
// lock-stepped epochs under a conservative virtual-time merge (classic
// conservative parallel discrete-event simulation): the fixed cross-domain
// link latency is the lookahead bound, so within one epoch every domain may
// safely run ahead on its own events without seeing the others — no event it
// could receive can land inside the window it is executing. Cross-domain
// sends become timestamped messages queued on per-pair single-producer /
// single-consumer outboxes; at each epoch barrier the coordinator merges all
// pending messages in (delivery time, source domain, source sequence) order
// and injects them into the destination engines before computing the next
// epoch.
//
// # Determinism
//
// The same seed produces byte-identical schedules whether the cluster runs
// on 1 worker or N workers:
//
//   - Within an epoch a domain executes alone on its own engine — its event
//     order is the engine's usual (timestamp, seq) order, unaffected by what
//     other domains do concurrently.
//   - Epoch boundaries are pure functions of the domains' next-event times,
//     which are themselves deterministic.
//   - Message injection is sorted by (delivery time, source domain, source
//     seq) — a total order independent of worker interleaving — so injected
//     events receive identical engine sequence numbers on every run.
//
// Wall-clock parallelism therefore never leaks into virtual time; the
// GOMAXPROCS-sweep digest tests pin this.
//
// # Epoch bound
//
// With lookahead L and per-domain next-event times peek_j, domain i may
// execute every event strictly before
//
//	limit_i = min( min_{j≠i, j nonempty} peek_j + L,  m + 2L )
//
// where m is the global minimum next-event time. The first term bounds
// messages sent directly by another busy domain (they arrive no earlier
// than its next event plus one hop). The second bounds relays through
// currently idle domains: an idle domain can only act after a message
// reaches it (≥ m+L), so anything it forwards arrives at ≥ m+2L. Deeper
// relays are later still. Note the domain's own events never constrain it —
// self-sends are ordinary local events.
//
// # Thread pinning
//
// In parallel mode each domain gets a dedicated worker goroutine locked to
// its own OS thread. This is required for correctness, not just affinity:
// process coroutines (iter.Pull) created on a thread-locked goroutine must
// always be resumed from that same thread, so a domain's processes are
// created and resumed exclusively by its worker. The worker mode is fixed
// at construction for the same reason — a cluster must not alternate
// between sequential and parallel execution of the same coroutines.
package sim

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"time"
)

// maxTime is a far-future sentinel used while computing epoch bounds.
// Dividing by four keeps `sentinel + 2*latency` from overflowing.
const maxTime = time.Duration(math.MaxInt64 / 4)

// Cluster is a set of simulation domains advanced together under a
// conservative virtual-time merge. Create one with NewCluster, build each
// domain's devices and processes on Domain(i).Engine(), then drive the
// whole cluster with Run/RunUntil. Call Close when done with a parallel
// cluster to release its worker threads.
//
// A Cluster must be driven from a single goroutine. While Run executes,
// each domain's state may only be touched from that domain's own processes
// and callbacks; between runs (and before the first) the owning goroutine
// may touch any domain directly.
type Cluster struct {
	latency  time.Duration
	domains  []*Domain
	parallel bool

	running bool
	spawned bool
	closed  bool

	start []chan time.Duration // per-domain epoch kickoff (parallel mode)
	done  chan workerDone

	inbox  []xmsg          // merge scratch: all pending cross-domain messages
	peeks  []time.Duration // scratch: per-domain next-event time (maxTime = none)
	limits []time.Duration // scratch: per-domain epoch bound
	panics []any           // scratch: per-domain panic values from one epoch
}

// Domain is one shard of a Cluster: an Engine plus the cross-domain link
// endpoints. Devices and processes bind to a domain by being constructed on
// its Engine.
type Domain struct {
	id      int
	c       *Cluster
	eng     *Engine
	out     [][]xmsg // outbox per destination domain; written only by this domain
	sendSeq uint64
}

// xmsg is one cross-domain message: a callback to run in the destination
// engine at the delivery time. (at, src, seq) is a total order.
type xmsg struct {
	at  time.Duration
	src int32
	dst int32
	seq uint64
	fn  func()
}

type workerDone struct {
	id       int
	panicVal any
}

// NewCluster returns a cluster of n domains connected by links with the
// given fixed latency (the conservative lookahead; it must be positive).
// workers <= 1 selects sequential mode: epochs run domain-by-domain on the
// calling goroutine. workers > 1 selects parallel mode: each domain runs
// its epochs on a dedicated goroutine locked to its own OS thread. Both
// modes produce byte-identical schedules.
func NewCluster(n int, latency time.Duration, workers int) *Cluster {
	if n <= 0 {
		panic("sim: cluster needs at least one domain")
	}
	if latency <= 0 {
		panic("sim: cluster link latency (lookahead) must be positive")
	}
	c := &Cluster{
		latency:  latency,
		domains:  make([]*Domain, n),
		parallel: workers > 1,
		peeks:    make([]time.Duration, n),
		limits:   make([]time.Duration, n),
		panics:   make([]any, n),
	}
	for i := range c.domains {
		d := &Domain{id: i, c: c, eng: New(), out: make([][]xmsg, n)}
		d.eng.dom = d
		c.domains[i] = d
	}
	return c
}

// Domains returns the number of domains.
func (c *Cluster) Domains() int { return len(c.domains) }

// Latency returns the cross-domain link latency (the lookahead bound).
func (c *Cluster) Latency() time.Duration { return c.latency }

// Domain returns domain i.
func (c *Cluster) Domain(i int) *Domain { return c.domains[i] }

// Events returns the total number of events processed across all domains.
func (c *Cluster) Events() uint64 {
	var n uint64
	for _, d := range c.domains {
		n += d.eng.Events()
	}
	return n
}

// Blocked returns the names of processes parked with no pending wakeup
// across every domain, in one globally sorted order: neither registration
// order nor domain layout leaks into the report.
func (c *Cluster) Blocked() []string {
	var names []string
	for _, d := range c.domains {
		names = append(names, d.eng.Blocked()...)
	}
	sort.Strings(names)
	return names
}

// Close shuts down the cluster's worker threads (parallel mode). The
// cluster must not be run again afterwards. Close is idempotent.
func (c *Cluster) Close() {
	if c.closed {
		return
	}
	if c.running {
		panic("sim: Close called while the cluster is running")
	}
	c.closed = true
	if c.spawned {
		for _, ch := range c.start {
			close(ch)
		}
	}
}

// Run advances every domain until no events remain anywhere and no
// cross-domain messages are in flight. Like Engine.Run, processes still
// waiting on queues or resources are left blocked.
func (c *Cluster) Run() { c.RunUntil(-1) }

// RunFor advances the cluster by d of virtual time past the latest domain
// clock.
func (c *Cluster) RunFor(d time.Duration) {
	var now time.Duration
	for _, dom := range c.domains {
		if t := dom.eng.Now(); t > now {
			now = t
		}
	}
	c.RunUntil(now + d)
}

// RunUntil processes events with timestamps <= deadline in every domain,
// then sets each domain clock to deadline. A negative deadline drains the
// cluster completely.
func (c *Cluster) RunUntil(deadline time.Duration) {
	if c.closed {
		panic("sim: cluster used after Close")
	}
	if c.running {
		panic("sim: cluster Run called reentrantly")
	}
	c.running = true
	defer func() { c.running = false }()
	if c.parallel && !c.spawned {
		c.spawn()
	}
	for {
		c.inject()
		m, second := c.peekAll()
		if m == maxTime || (deadline >= 0 && m > deadline) {
			break
		}
		c.computeLimits(m, second, deadline)
		if c.parallel {
			c.runEpochParallel()
		} else {
			c.runEpochSequential()
		}
		c.rethrow()
	}
	if deadline >= 0 {
		for _, d := range c.domains {
			d.eng.advanceTo(deadline)
		}
	}
}

// spawn starts one worker per domain, each locked to its own OS thread.
func (c *Cluster) spawn() {
	c.spawned = true
	c.start = make([]chan time.Duration, len(c.domains))
	c.done = make(chan workerDone, len(c.domains))
	for i, d := range c.domains {
		c.start[i] = make(chan time.Duration, 1)
		go c.worker(d) // the one sanctioned home for raw goroutines: the cluster runtime
	}
}

// worker drives one domain's epochs. It locks itself to an OS thread so the
// domain's coroutines are always created and resumed on the same thread;
// the thread is released when the channel closes and the goroutine exits.
func (c *Cluster) worker(d *Domain) {
	runtime.LockOSThread()
	for limit := range c.start[d.id] {
		var pv any
		func() {
			defer func() { pv = recover() }()
			d.eng.runEpochBefore(limit)
		}()
		c.done <- workerDone{id: d.id, panicVal: pv}
	}
}

// peekAll fills c.peeks and returns the two smallest next-event times
// (maxTime when absent).
func (c *Cluster) peekAll() (m, second time.Duration) {
	m, second = maxTime, maxTime
	for i, d := range c.domains {
		t := maxTime
		if at, ok := d.eng.peek(); ok {
			t = at
		}
		c.peeks[i] = t
		if t < m {
			second = m
			m = t
		} else if t < second {
			second = t
		}
	}
	return m, second
}

// computeLimits derives each domain's epoch bound from the peek snapshot:
// events strictly before the bound are safe to execute this epoch.
func (c *Cluster) computeLimits(m, second time.Duration, deadline time.Duration) {
	relay := m + 2*c.latency // earliest arrival via a currently idle relay
	for i := range c.domains {
		minOther := m
		if c.peeks[i] == m {
			minOther = second
		}
		limit := relay
		if minOther != maxTime && minOther+c.latency < limit {
			limit = minOther + c.latency
		}
		if deadline >= 0 && deadline+1 < limit {
			limit = deadline + 1
		}
		c.limits[i] = limit
	}
}

// runEpochParallel kicks every domain with work and waits for all of them.
func (c *Cluster) runEpochParallel() {
	active := 0
	for i := range c.domains {
		c.panics[i] = nil
		if c.peeks[i] < c.limits[i] {
			c.start[i] <- c.limits[i]
			active++
		}
	}
	for ; active > 0; active-- {
		dn := <-c.done
		c.panics[dn.id] = dn.panicVal
	}
}

// runEpochSequential runs the same epoch on the calling goroutine, domain
// by domain in id order. Panics are captured per domain (like parallel
// mode, every domain's epoch completes) and rethrown afterwards.
func (c *Cluster) runEpochSequential() {
	for i, d := range c.domains {
		c.panics[i] = nil
		if c.peeks[i] >= c.limits[i] {
			continue
		}
		func() {
			defer func() { c.panics[i] = recover() }()
			d.eng.runEpochBefore(c.limits[i])
		}()
	}
}

// rethrow re-raises the lowest-domain panic from the last epoch, so the
// escaping panic is deterministic across worker counts.
func (c *Cluster) rethrow() {
	for i, pv := range c.panics {
		if pv != nil {
			panic(fmt.Errorf("sim: domain %d: %v", i, pv))
		}
	}
}

// inject drains every outbox and delivers the pending messages into their
// destination engines in (delivery time, source domain, source seq) order —
// a total order, so every run assigns the same engine sequence numbers to
// the same messages regardless of how workers interleaved.
func (c *Cluster) inject() {
	buf := c.inbox[:0]
	for _, d := range c.domains {
		for dst, q := range d.out {
			if len(q) == 0 {
				continue
			}
			buf = append(buf, q...)
			d.out[dst] = q[:0]
		}
	}
	if len(buf) == 0 {
		c.inbox = buf
		return
	}
	sort.Slice(buf, func(i, j int) bool {
		a, b := &buf[i], &buf[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
	for i := range buf {
		msg := &buf[i]
		c.domains[msg.dst].eng.pushEvent(msg.at, msg.fn, nil)
		msg.fn = nil // drop the closure so the scratch buffer doesn't pin it
	}
	c.inbox = buf[:0]
}

// ID returns the domain's index within its cluster.
func (d *Domain) ID() int { return d.id }

// Cluster returns the owning cluster.
func (d *Domain) Cluster() *Cluster { return d.c }

// Engine returns the domain's engine. Construct the domain's devices and
// processes on it; do not call its Run methods directly — the cluster
// drives it.
func (d *Domain) Engine() *Engine { return d.eng }

// Now returns the domain's virtual clock.
func (d *Domain) Now() time.Duration { return d.eng.Now() }

// Go starts a process in this domain (shorthand for Engine().Go).
func (d *Domain) Go(name string, fn func(p *Proc)) *Proc { return d.eng.Go(name, fn) }

// Send schedules fn to run in dst's domain one link latency after this
// domain's current virtual time. Messages between one (src, dst) pair are
// delivered in send order. Send must be called from within this domain's
// own execution (a process or callback running on its engine) or while the
// cluster is idle between runs.
//
//simlint:hotpath
func (d *Domain) Send(dst *Domain, fn func()) {
	if dst.c != d.c {
		panic("sim: Send across clusters")
	}
	at := d.eng.now + d.c.latency
	if dst == d {
		// A self-send is an ordinary local event — no merge involvement.
		d.eng.pushEvent(at, fn, nil)
		return
	}
	d.out[dst.id] = append(d.out[dst.id], xmsg{
		at:  at,
		src: int32(d.id),
		dst: int32(dst.id),
		seq: d.sendSeq,
		fn:  fn,
	})
	d.sendSeq++
}

// Call runs fn as a new process in dst's domain and parks p until it
// finishes. The request and its completion each take one link-latency hop,
// so the caller observes at least 2*Latency of round-trip time. fn's
// writes are visible to the caller when Call returns (the epoch barrier
// orders them); it is the building block for cross-domain request /
// completion pairs such as volume member I/O.
func (d *Domain) Call(p *Proc, dst *Domain, name string, fn func(q *Proc)) {
	if dst == d {
		// Local fast path: no hops, run inline on the caller's process.
		fn(p)
		return
	}
	sig := NewSignal(d.eng)
	//simlint:allow crossdomain sig is the rendezvous: Fire ships back on the completion hop before Wait resumes, so the two domains never touch it concurrently
	d.Send(dst, func() {
		dst.eng.Go(name, func(q *Proc) {
			fn(q)
			dst.Send(d, sig.Fire)
		})
	})
	sig.Wait(p)
}
