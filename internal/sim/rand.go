package sim

// Rand is a small, fast, seeded PRNG (splitmix64) for workload generators.
// It is an order of magnitude cheaper than math/rand's locked source, never
// allocates, and — unlike the global math/rand functions, which simlint
// forbids — is explicitly seeded, so workloads that use it stay replayable.
// Not cryptographic.
//
// Existing workloads keep their math/rand sources: their golden schedules
// are pinned to that exact value stream. New generators should use Rand.
type Rand struct {
	s uint64
}

// NewRand returns a generator seeded with seed. Distinct seeds — including
// 0 and 1 — give well-separated streams.
func NewRand(seed int64) *Rand {
	return &Rand{s: uint64(seed)}
}

// Seed resets the generator to the given seed.
func (r *Rand) Seed(seed int64) { r.s = uint64(seed) }

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	if n&(n-1) == 0 { // power of two
		return r.Int63() & (n - 1)
	}
	max := int64((1 << 63) - 1 - (1<<63)%uint64(n))
	v := r.Int63()
	for v > max {
		v = r.Int63()
	}
	return v % n
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int { return int(r.Int63n(int64(n))) }

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}
