// Package sim implements a deterministic discrete-event simulation engine.
//
// All devices, database engines and workload clients in this repository run
// in virtual time on a single Engine. Simulated concurrency is expressed with
// processes (Proc): coroutines that are scheduled cooperatively so that
// exactly one process executes at any instant. This makes every run
// deterministic for a given seed and lets multi-hour hardware experiments
// finish in milliseconds of wall-clock time.
//
// The engine orders events by (timestamp, sequence number), so events
// scheduled at the same virtual instant fire in the order they were created.
//
// # Scheduler internals
//
// Events live in a pooled arena ([]event plus a free list) and are ordered
// by an indexed 4-ary min-heap whose nodes carry the (timestamp, seq) key
// inline next to the arena index, so Schedule, Sleep and queue wakeups
// allocate nothing in steady state and sift comparisons stay in one array. Processes are coroutines
// (iter.Pull): resuming one is a direct stack switch on the dispatching
// goroutine, costing tens of nanoseconds — no channel operation, no runtime
// scheduler pass, no OS-thread wakeup. The dispatch loop runs on the single
// goroutine that called Run: it pops events strictly by (timestamp, seq),
// runs callback events (Schedule, Timer) inline, and switches into the
// resumed process's coroutine for process events; the process switches back
// when it parks. None of this changes the event order — schedules, and
// every digest derived from them, are bit-identical to the boxed-heap
// channel engine this replaced.
package sim

import (
	"fmt"
	"iter"
	"sort"
	"time"
)

// Engine is a discrete-event simulator clock and scheduler.
// Create one with New, add processes with Go, then call Run.
//
// An Engine must only be accessed from the goroutine that calls Run and from
// processes started via Go (which are serialized by the engine); it is not
// safe for use from unrelated goroutines.
type Engine struct {
	now       time.Duration
	seq       uint64
	processed uint64

	arena []event   // event storage; stable slots addressed by index
	free  []int32   // recycled arena slots
	heap  []heapEnt // 4-ary min-heap ordered by (at, seq), key stored inline

	running  bool
	deadline time.Duration // active RunUntil deadline; negative = drain

	procs    int
	live     []*Proc // started-or-pending, not yet finished (for Blocked)
	current  *Proc   // process being resumed (panic attribution); nil in callbacks
	panicVal any     // re-raised by Run if a process or callback panicked

	dom *Domain // owning cluster domain; nil for a standalone engine
}

type event struct {
	at   time.Duration
	seq  uint64
	fn   func() // callback event; nil when proc != nil
	proc *Proc  // process to resume; nil for callback events
	hpos int32  // position in heap; -1 when not queued
}

// heapEnt is one heap node: the event's sort key plus its arena index.
type heapEnt struct {
	at  time.Duration
	seq uint64
	idx int32
}

// New returns an empty engine with the virtual clock at zero.
func New() *Engine {
	return &Engine{deadline: -1}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Domain returns the cluster domain that owns this engine, or nil for a
// standalone engine driven directly with Run.
func (e *Engine) Domain() *Domain { return e.dom }

// Events returns the total number of events processed since creation
// (process resumptions plus callback firings). Benchmark harnesses divide
// wall-clock time by this to get ns/event.
func (e *Engine) Events() uint64 { return e.processed }

// Schedule registers fn to run after delay d of virtual time.
// A negative delay is treated as zero.
//
//simlint:hotpath
func (e *Engine) Schedule(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.pushEvent(e.now+d, fn, nil)
}

// Go starts a new process executing fn. The process begins running at the
// current virtual time (after already-pending events at this instant).
// Go may be called before Run or from within a running process.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, body: fn}
	e.procs++
	e.addLive(p)
	e.pushEvent(e.now, nil, p)
	return p
}

// Run processes events until none remain, then returns. Processes that are
// still waiting on a Queue or Resource when the event heap drains are left
// blocked (query them with Blocked). If any process panicked, Run re-panics
// with the original value after draining.
func (e *Engine) Run() {
	e.RunUntil(-1)
}

// RunFor advances the simulation by at most d of virtual time.
func (e *Engine) RunFor(d time.Duration) {
	e.RunUntil(e.now + d)
}

// RunUntil processes events with timestamps <= deadline and then sets the
// clock to deadline. A negative deadline means run until the heap is empty.
func (e *Engine) RunUntil(deadline time.Duration) {
	if e.dom != nil {
		panic("sim: engine is owned by a cluster domain; drive it via Cluster.Run")
	}
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	e.deadline = deadline
	e.loop()
	e.running = false
	e.deadline = -1
	if deadline >= 0 && deadline > e.now {
		e.now = deadline
	}
	if pv := e.panicVal; pv != nil {
		e.panicVal = nil
		panic(pv)
	}
}

// peek reports the timestamp of the earliest queued event, if any. The
// cluster merge uses it to compute epoch bounds.
func (e *Engine) peek() (time.Duration, bool) {
	if len(e.heap) == 0 {
		return 0, false
	}
	return e.heap[0].at, true
}

// advanceTo moves the clock forward to t without processing anything;
// Cluster.RunUntil uses it to align all domain clocks on the deadline.
func (e *Engine) advanceTo(t time.Duration) {
	if t > e.now {
		e.now = t
	}
}

// runEpochBefore processes every event with a timestamp strictly below
// limit — one conservative epoch. Unlike RunUntil it never advances the
// clock past the last processed event: between epochs the domain's time is
// simply its progress so far, and only the final Cluster.RunUntil aligns
// clocks on the deadline. Panics from processes or callbacks are re-raised
// to the caller (the cluster worker), which forwards them to the merge
// loop for deterministic rethrow.
func (e *Engine) runEpochBefore(limit time.Duration) {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	e.deadline = limit - 1
	e.loop()
	e.running = false
	e.deadline = -1
	if pv := e.panicVal; pv != nil {
		e.panicVal = nil
		panic(pv)
	}
}

// loop is the dispatch loop: it pops events in (timestamp, seq) order,
// running callbacks inline and switching into process coroutines. A panic in
// a process or callback aborts the run; RunUntil re-raises it.
//
//simlint:hotpath
func (e *Engine) loop() {
	defer func() {
		if r := recover(); r != nil {
			if p := e.current; p != nil {
				p.dead = true
				e.procs--
				e.removeLive(p)
				r = fmt.Errorf("sim: process %q panicked: %v", p.name, r)
			}
			e.panicVal = r
		}
		e.current = nil
	}()
	for len(e.heap) > 0 {
		at := e.heap[0].at
		if e.deadline >= 0 && at > e.deadline {
			return
		}
		idx := e.popMin()
		ev := &e.arena[idx]
		fn, proc := ev.fn, ev.proc
		e.freeEvent(idx)
		if at > e.now {
			e.now = at
		}
		e.processed++
		if proc == nil {
			e.current = nil
			fn()
			continue
		}
		proc.blocked = false
		e.current = proc
		e.resume(proc)
		e.current = nil
	}
}

// resume switches into p's coroutine, starting it on first resumption. It
// returns when p parks again or its body finishes.
func (e *Engine) resume(p *Proc) {
	if !p.started {
		p.started = true
		p.next, _ = iter.Pull(iter.Seq[struct{}](p.coro)) //simlint:allow hotalloc one-time coroutine start; steady-state resumes reuse p.next
	}
	if _, more := p.next(); !more {
		// Body returned: the process is finished.
		p.dead = true
		e.procs--
		e.removeLive(p)
	}
}

// Blocked returns the names of processes that are parked with no pending
// wakeup event, in sorted order so the result is deterministic across runs.
// Useful for diagnosing simulation deadlocks in tests.
func (e *Engine) Blocked() []string {
	var names []string
	for _, p := range e.live {
		if p.blocked {
			names = append(names, p.name)
		}
	}
	sort.Strings(names)
	return names
}

// Procs returns the number of live processes (started or pending, not yet
// finished).
func (e *Engine) Procs() int { return e.procs }

func (e *Engine) addLive(p *Proc) {
	p.liveIdx = int32(len(e.live))
	e.live = append(e.live, p)
}

func (e *Engine) removeLive(p *Proc) {
	i := p.liveIdx
	last := len(e.live) - 1
	e.live[i] = e.live[last]
	e.live[i].liveIdx = i
	e.live[last] = nil
	e.live = e.live[:last]
	p.liveIdx = -1
}

// Proc is a simulated process: a coroutine whose execution is interleaved
// deterministically with other processes by the Engine. All Proc methods
// must be called from the process itself (inside its body function).
type Proc struct {
	eng     *Engine
	name    string
	body    func(p *Proc)
	next    func() (struct{}, bool) // resumes the coroutine
	yield   func(struct{}) bool     // parks the coroutine; set by coro
	started bool
	blocked bool  // parked, wakeup not yet processed
	dead    bool  // body finished or panicked
	liveIdx int32 // position in eng.live; -1 when finished
}

// Name returns the name given to Engine.Go.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.eng.now }

// coro is the coroutine body: capture the yield switch, then run the
// process body. Panics propagate out of the resume call in the dispatch
// loop, which attributes them to this process.
func (p *Proc) coro(yield func(struct{}) bool) {
	p.yield = yield
	p.body(p)
}

// Sleep suspends the process for d of virtual time.
//
//simlint:hotpath
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	e := p.eng
	e.pushEvent(e.now+d, nil, p)
	p.park()
}

// Yield reschedules the process at the current instant, letting other
// events and processes scheduled for this instant run first.
func (p *Proc) Yield() { p.Sleep(0) }

// park switches back to the dispatch loop until another event resumes p.
// The caller must have arranged a wakeup (event, queue signal, ...).
//
// Fast path: when the earliest runnable event is p's own wakeup (common for
// sequential service loops sleeping through an idle stretch), p consumes it
// in place — the clock advances and the event counts as processed, but no
// coroutine switch happens. The pop order is unchanged: the event consumed
// is exactly the one the dispatch loop would have popped next.
func (p *Proc) park() {
	e := p.eng
	if len(e.heap) > 0 {
		top := e.heap[0]
		if e.arena[top.idx].proc == p && (e.deadline < 0 || top.at <= e.deadline) {
			at := top.at
			e.freeEvent(e.popMin())
			if at > e.now {
				e.now = at
			}
			e.processed++
			return
		}
	}
	p.blocked = true
	p.yield(struct{}{})
}

// --- event arena and indexed min-heap ---

// pushEvent queues an event, reusing a free arena slot when one exists.
// It returns the arena index (used by Timer to cancel).
func (e *Engine) pushEvent(at time.Duration, fn func(), proc *Proc) int32 {
	var idx int32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.arena = append(e.arena, event{})
		idx = int32(len(e.arena) - 1)
	}
	ev := &e.arena[idx]
	ev.at = at
	ev.seq = e.seq
	e.seq++
	ev.fn = fn
	ev.proc = proc
	e.heap = append(e.heap, heapEnt{at: at, seq: ev.seq, idx: idx})
	ev.hpos = int32(len(e.heap) - 1)
	e.siftUp(len(e.heap) - 1)
	return idx
}

// freeEvent recycles an arena slot, dropping references so the GC can
// collect captured closures.
func (e *Engine) freeEvent(idx int32) {
	ev := &e.arena[idx]
	ev.fn = nil
	ev.proc = nil
	e.free = append(e.free, idx)
}

// less orders two heap entries by (at, seq) — a total order, since seq is
// unique per event.
func less(a, b *heapEnt) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// The heap is 4-ary and stores the (at, seq) sort key inline next to the
// arena index, so sifts compare without chasing into the arena. 4 children
// halve the depth of a binary heap; the key is a total order, so any correct
// heap pops events in exactly the same sequence — arity and layout are
// invisible to the simulated schedule (locked by the golden-digest tests).

func (e *Engine) siftUp(i int) {
	h := e.heap
	for i > 0 {
		parent := (i - 1) / 4
		if !less(&h[i], &h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		e.arena[h[i].idx].hpos = int32(i)
		i = parent
	}
	e.arena[h[i].idx].hpos = int32(i)
}

// siftDown restores the heap below i and reports whether i moved.
func (e *Engine) siftDown(i int) bool {
	h := e.heap
	n := len(h)
	start := i
	for {
		l := 4*i + 1
		if l >= n {
			break
		}
		m := l
		end := l + 4
		if end > n {
			end = n
		}
		for c := l + 1; c < end; c++ {
			if less(&h[c], &h[m]) {
				m = c
			}
		}
		if !less(&h[m], &h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		e.arena[h[i].idx].hpos = int32(i)
		i = m
	}
	e.arena[h[i].idx].hpos = int32(i)
	return i > start
}

// popMin removes and returns the arena index of the earliest event.
func (e *Engine) popMin() int32 {
	h := e.heap
	idx := h[0].idx
	last := len(h) - 1
	if last > 0 {
		h[0] = h[last]
		e.arena[h[0].idx].hpos = 0
	}
	e.heap = h[:last]
	if last > 1 {
		e.siftDown(0)
	}
	e.arena[idx].hpos = -1
	return idx
}

// removeEvent cancels a queued event and recycles its slot (Timer.Stop).
func (e *Engine) removeEvent(idx int32) {
	pos := int(e.arena[idx].hpos)
	if pos < 0 {
		return
	}
	h := e.heap
	last := len(h) - 1
	if pos != last {
		h[pos] = h[last]
		e.arena[h[pos].idx].hpos = int32(pos)
	}
	e.heap = h[:last]
	if pos < last && !e.siftDown(pos) {
		e.siftUp(pos)
	}
	e.arena[idx].hpos = -1
	e.freeEvent(idx)
}
