// Package sim implements a deterministic discrete-event simulation engine.
//
// All devices, database engines and workload clients in this repository run
// in virtual time on a single Engine. Simulated concurrency is expressed with
// processes (Proc): ordinary goroutines that are scheduled cooperatively so
// that exactly one process executes at any instant. This makes every run
// deterministic for a given seed and lets multi-hour hardware experiments
// finish in milliseconds of wall-clock time.
//
// The engine orders events by (timestamp, sequence number), so events
// scheduled at the same virtual instant fire in the order they were created.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"time"
)

// Engine is a discrete-event simulator clock and scheduler.
// Create one with New, add processes with Go, then call Run.
//
// An Engine must only be accessed from the goroutine that calls Run and from
// processes started via Go (which are serialized by the engine); it is not
// safe for use from unrelated goroutines.
type Engine struct {
	now    time.Duration
	seq    uint64
	events eventHeap

	yield   chan yieldMsg // running process -> engine handoff
	running bool
	procs   int // live (started, not yet finished) processes
	blocked map[*Proc]struct{}

	panicVal any // re-raised by Run if a process panicked
}

type yieldMsg struct {
	done bool // process finished (returned or panicked)
}

type event struct {
	at   time.Duration
	seq  uint64
	fn   func() // callback event; nil when proc != nil
	proc *Proc  // process to resume; nil for callback events
}

// New returns an empty engine with the virtual clock at zero.
func New() *Engine {
	return &Engine{
		yield:   make(chan yieldMsg),
		blocked: make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Schedule registers fn to run after delay d of virtual time.
// A negative delay is treated as zero.
func (e *Engine) Schedule(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.push(&event{at: e.now + d, fn: fn})
}

func (e *Engine) push(ev *event) {
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.events, ev)
}

// Go starts a new process executing fn. The process begins running at the
// current virtual time (after already-pending events at this instant).
// Go may be called before Run or from within a running process.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:  e,
		name: name,
		wake: make(chan struct{}),
		body: fn,
	}
	e.procs++
	e.push(&event{at: e.now, proc: p})
	return p
}

// Run processes events until none remain, then returns. Processes that are
// still waiting on a Queue or Resource when the event heap drains are left
// blocked (query them with Blocked). If any process panicked, Run re-panics
// with the original value after draining.
func (e *Engine) Run() {
	e.RunUntil(-1)
}

// RunFor advances the simulation by at most d of virtual time.
func (e *Engine) RunFor(d time.Duration) {
	e.RunUntil(e.now + d)
}

// RunUntil processes events with timestamps <= deadline and then sets the
// clock to deadline. A negative deadline means run until the heap is empty.
func (e *Engine) RunUntil(deadline time.Duration) {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()

	for len(e.events) > 0 {
		ev := e.events[0]
		if deadline >= 0 && ev.at > deadline {
			break
		}
		heap.Pop(&e.events)
		if ev.at > e.now {
			e.now = ev.at
		}
		if ev.proc != nil {
			e.resume(ev.proc)
		} else {
			ev.fn()
		}
		if e.panicVal != nil {
			panic(e.panicVal)
		}
	}
	if deadline >= 0 && deadline > e.now {
		e.now = deadline
	}
}

// resume transfers control to p and blocks until p parks or finishes.
func (e *Engine) resume(p *Proc) {
	delete(e.blocked, p)
	if !p.started {
		p.started = true
		go p.run()
	} else {
		p.wake <- struct{}{}
	}
	msg := <-e.yield
	if msg.done {
		e.procs--
	}
}

// Blocked returns the names of processes that are parked with no pending
// wakeup event, in sorted order so the result is deterministic across runs.
// Useful for diagnosing simulation deadlocks in tests.
func (e *Engine) Blocked() []string {
	var names []string
	for p := range e.blocked {
		names = append(names, p.name)
	}
	sort.Strings(names)
	return names
}

// Procs returns the number of live processes (started or pending, not yet
// finished).
func (e *Engine) Procs() int { return e.procs }

// Proc is a simulated process: a goroutine whose execution is interleaved
// deterministically with other processes by the Engine. All Proc methods
// must be called from the process's own goroutine.
type Proc struct {
	eng     *Engine
	name    string
	wake    chan struct{}
	body    func(p *Proc)
	started bool
}

// Name returns the name given to Engine.Go.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.eng.now }

func (p *Proc) run() {
	defer func() {
		if r := recover(); r != nil {
			p.eng.panicVal = fmt.Errorf("sim: process %q panicked: %v", p.name, r)
		}
		p.eng.yield <- yieldMsg{done: true}
	}()
	p.body(p)
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.eng.push(&event{at: p.eng.now + d, proc: p})
	p.park()
}

// Yield reschedules the process at the current instant, letting other
// events and processes scheduled for this instant run first.
func (p *Proc) Yield() { p.Sleep(0) }

// park returns control to the engine until another event resumes p.
// The caller must have arranged a wakeup (event, queue signal, ...).
func (p *Proc) park() {
	p.eng.blocked[p] = struct{}{}
	p.eng.yield <- yieldMsg{}
	<-p.wake
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
