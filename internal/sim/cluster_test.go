package sim

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// pingPongDigest builds a deliberately contentious cross-domain workload —
// every domain streams messages to every other, with overlapping delivery
// times and relays through otherwise idle domains — and returns a digest of
// the exact execution order observed. Any sensitivity to worker
// interleaving shows up as a digest change.
func pingPongDigest(t *testing.T, domains, workers int) string {
	t.Helper()
	c := NewCluster(domains, 100*time.Microsecond, workers)
	defer c.Close()
	// Each domain records into its own stream (cross-domain writes to one
	// shared log would race in parallel mode); the streams are merged by
	// (virtual time, domain id, per-domain order) after the run — the same
	// discipline the iotrace shard merge uses.
	type rec struct {
		at  time.Duration
		dom int
		seq int
		msg string
	}
	logs := make([][]rec, domains)
	log := func(d *Domain, what string) {
		logs[d.ID()] = append(logs[d.ID()], rec{at: d.Now(), dom: d.ID(), seq: len(logs[d.ID()]), msg: what})
	}
	// Each domain runs a local ticker plus a chatter process that sends a
	// token around the ring; receipt schedules more local work, so local
	// event order interleaves with injected messages.
	for i := 0; i < domains; i++ {
		d := c.Domain(i)
		d.Go(fmt.Sprintf("ticker-%d", i), func(p *Proc) {
			for k := 0; k < 40; k++ {
				p.Sleep(time.Duration(30+7*d.ID()) * time.Microsecond)
				log(d, "tick")
			}
		})
	}
	var hop func(d *Domain, ttl int)
	hop = func(d *Domain, ttl int) {
		log(d, "hop")
		if ttl == 0 {
			return
		}
		next := c.Domain((d.ID() + 1) % domains)
		d.Send(next, func() { hop(next, ttl-1) })
		// Also fan out a short-lived burst to every other domain so
		// multiple sources target one destination at equal times.
		for j := 0; j < domains; j++ {
			if j == d.ID() {
				continue
			}
			dst := c.Domain(j)
			d.Send(dst, func() { log(dst, "burst") })
		}
	}
	first := c.Domain(0)
	first.Go("kickoff", func(p *Proc) {
		p.Sleep(10 * time.Microsecond)
		hop(first, 25)
	})
	c.Run()
	var all []rec
	for _, l := range logs {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].at != all[j].at {
			return all[i].at < all[j].at
		}
		if all[i].dom != all[j].dom {
			return all[i].dom < all[j].dom
		}
		return all[i].seq < all[j].seq
	})
	var b strings.Builder
	for _, r := range all {
		fmt.Fprintf(&b, "%d %s %d\n", r.dom, r.msg, int64(r.at))
	}
	fmt.Fprintf(&b, "events=%d\n", c.Events())
	for i := 0; i < domains; i++ {
		fmt.Fprintf(&b, "now%d=%d\n", i, int64(c.Domain(i).Now()))
	}
	return b.String()
}

// TestClusterDeterminism is the core guarantee: the same program produces a
// byte-identical schedule at 1 worker and N workers, at GOMAXPROCS 1 and N.
func TestClusterDeterminism(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	want := pingPongDigest(t, 4, 1)
	for _, procs := range []int{1, runtime.NumCPU() + 2} {
		runtime.GOMAXPROCS(procs)
		for _, workers := range []int{1, 2, 4, 8} {
			if got := pingPongDigest(t, 4, workers); got != want {
				t.Fatalf("GOMAXPROCS=%d workers=%d: schedule diverged from sequential baseline\n got: %.200s\nwant: %.200s",
					procs, workers, got, want)
			}
		}
	}
}

// TestClusterSendLatencyAndFIFO checks delivery timing (exactly one link
// latency after the send) and per-pair FIFO order, including messages that
// share one delivery instant.
func TestClusterSendLatencyAndFIFO(t *testing.T) {
	const latency = 50 * time.Microsecond
	c := NewCluster(2, latency, 1)
	defer c.Close()
	src, dst := c.Domain(0), c.Domain(1)
	var got []string
	src.Go("sender", func(p *Proc) {
		p.Sleep(30 * time.Microsecond)
		sent := p.Now()
		for i := 0; i < 3; i++ {
			i := i
			src.Send(dst, func() {
				if dst.Now() != sent+latency {
					t.Errorf("msg %d delivered at %v, want %v", i, dst.Now(), sent+latency)
				}
				got = append(got, fmt.Sprintf("m%d", i))
			})
		}
	})
	c.Run()
	if want := "m0 m1 m2"; strings.Join(got, " ") != want {
		t.Fatalf("delivery order %v, want %q (per-pair FIFO at one instant)", got, want)
	}
}

// TestClusterSelfSend checks that a domain sending to itself behaves like a
// plain local event one latency in the future.
func TestClusterSelfSend(t *testing.T) {
	c := NewCluster(2, 10*time.Microsecond, 1)
	defer c.Close()
	d := c.Domain(0)
	fired := time.Duration(-1)
	d.Go("self", func(p *Proc) {
		p.Sleep(5 * time.Microsecond)
		d.Send(d, func() { fired = d.Now() })
	})
	c.Run()
	if want := 15 * time.Microsecond; fired != want {
		t.Fatalf("self-send fired at %v, want %v", fired, want)
	}
}

// TestClusterCall checks the request/completion round trip: the callee runs
// in the destination domain, the caller resumes only after the completion
// hop, and the callee's writes are visible to the caller.
func TestClusterCall(t *testing.T) {
	const latency = 25 * time.Microsecond
	for _, workers := range []int{1, 4} {
		c := NewCluster(3, latency, workers)
		src, dst := c.Domain(0), c.Domain(2)
		var result int
		var returned time.Duration
		src.Go("caller", func(p *Proc) {
			p.Sleep(40 * time.Microsecond)
			src.Call(p, dst, "callee", func(q *Proc) {
				if q.Engine() != dst.Engine() {
					t.Error("callee running on the wrong engine")
				}
				q.Sleep(7 * time.Microsecond)
				result = 42
			})
			returned = p.Now()
		})
		c.Run()
		c.Close()
		if result != 42 {
			t.Fatalf("workers=%d: callee write not visible: result=%d", workers, result)
		}
		// send hop + callee sleep + completion hop
		if want := 40*time.Microsecond + latency + 7*time.Microsecond + latency; returned != want {
			t.Fatalf("workers=%d: caller resumed at %v, want %v", workers, returned, want)
		}
	}
}

// TestClusterCallLocal checks the same-domain fast path runs inline with no
// link hops.
func TestClusterCallLocal(t *testing.T) {
	c := NewCluster(2, 25*time.Microsecond, 1)
	defer c.Close()
	d := c.Domain(0)
	var returned time.Duration
	d.Go("caller", func(p *Proc) {
		p.Sleep(10 * time.Microsecond)
		d.Call(p, d, "callee", func(q *Proc) { q.Sleep(3 * time.Microsecond) })
		returned = p.Now()
	})
	c.Run()
	if want := 13 * time.Microsecond; returned != want {
		t.Fatalf("local call returned at %v, want %v (no link hops)", returned, want)
	}
}

// TestClusterBlockedSorted pins the satellite requirement: Cluster.Blocked
// returns one globally sorted list — domain layout and registration order
// must not leak into the report.
func TestClusterBlockedSorted(t *testing.T) {
	c := NewCluster(3, 10*time.Microsecond, 1)
	defer c.Close()
	// Register in an order that is neither sorted globally nor by domain:
	// domain 2 gets "alpha" last, domain 0 gets "zeta" first.
	block := func(p *Proc) { NewSignal(p.Engine()).Wait(p) }
	c.Domain(0).Go("zeta", block)
	c.Domain(1).Go("mid", block)
	c.Domain(0).Go("beta", block)
	c.Domain(2).Go("alpha", block)
	c.Run()
	got := strings.Join(c.Blocked(), ",")
	if want := "alpha,beta,mid,zeta"; got != want {
		t.Fatalf("Blocked() = %q, want %q", got, want)
	}
}

// TestClusterRunUntil checks deadline semantics: events past the deadline
// stay queued and every domain clock lands exactly on the deadline.
func TestClusterRunUntil(t *testing.T) {
	c := NewCluster(2, 10*time.Microsecond, 1)
	defer c.Close()
	var late bool
	c.Domain(1).Engine().Schedule(300*time.Microsecond, func() { late = true })
	var early bool
	c.Domain(0).Engine().Schedule(50*time.Microsecond, func() { early = true })
	c.RunUntil(100 * time.Microsecond)
	if !early || late {
		t.Fatalf("early=%v late=%v after RunUntil(100µs)", early, late)
	}
	for i := 0; i < 2; i++ {
		if now := c.Domain(i).Now(); now != 100*time.Microsecond {
			t.Fatalf("domain %d clock %v, want 100µs", i, now)
		}
	}
	c.Run()
	if !late {
		t.Fatal("late event never fired after drain")
	}
}

// TestClusterPanicDeterministic checks that a panicking process surfaces
// from Cluster.Run with domain attribution, identically at any worker
// count, and that when two domains panic in one epoch the lowest domain id
// wins.
func TestClusterPanicDeterministic(t *testing.T) {
	run := func(workers int) (msg string) {
		c := NewCluster(4, 10*time.Microsecond, workers)
		defer c.Close()
		defer func() { msg = fmt.Sprint(recover()) }()
		// Both panic at the same virtual instant, in the same epoch.
		c.Domain(3).Go("boom-hi", func(p *Proc) { p.Sleep(5 * time.Microsecond); panic("hi") })
		c.Domain(1).Go("boom-lo", func(p *Proc) { p.Sleep(5 * time.Microsecond); panic("lo") })
		c.Run()
		return ""
	}
	want := run(1)
	if !strings.Contains(want, "domain 1") || !strings.Contains(want, "boom-lo") {
		t.Fatalf("sequential panic = %q, want domain-1 attribution", want)
	}
	for _, workers := range []int{2, 4} {
		if got := run(workers); got != want {
			t.Fatalf("workers=%d: panic %q, want %q", workers, got, want)
		}
	}
}

// TestClusterOwnedEngineGuard checks that a domain-owned engine refuses
// direct Run calls.
func TestClusterOwnedEngineGuard(t *testing.T) {
	c := NewCluster(1, 10*time.Microsecond, 1)
	defer c.Close()
	defer func() {
		if r := recover(); r == nil || !strings.Contains(fmt.Sprint(r), "owned by a cluster domain") {
			t.Fatalf("recover() = %v, want owned-engine panic", r)
		}
	}()
	c.Domain(0).Engine().Run()
}

// TestClusterCloseIdempotent checks double-Close and use-after-Close.
func TestClusterCloseIdempotent(t *testing.T) {
	c := NewCluster(2, 10*time.Microsecond, 4)
	c.Domain(0).Go("noop", func(p *Proc) { p.Sleep(time.Microsecond) })
	c.Run()
	c.Close()
	c.Close()
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("Run after Close did not panic")
		}
	}()
	c.Run()
}

// TestClusterSingleDomain checks the degenerate 1-domain cluster matches a
// standalone engine's schedule exactly.
func TestClusterSingleDomain(t *testing.T) {
	program := func(eng *Engine, b *strings.Builder) {
		q := NewQueue(eng)
		eng.Go("prod", func(p *Proc) {
			for i := 0; i < 20; i++ {
				p.Sleep(3 * time.Microsecond)
				q.WakeOne()
				fmt.Fprintf(b, "prod %d\n", int64(p.Now()))
			}
		})
		eng.Go("cons", func(p *Proc) {
			for i := 0; i < 20; i++ {
				q.Wait(p)
				fmt.Fprintf(b, "cons %d\n", int64(p.Now()))
			}
		})
	}
	var solo strings.Builder
	eng := New()
	program(eng, &solo)
	eng.Run()

	var clustered strings.Builder
	c := NewCluster(1, 10*time.Microsecond, 1)
	defer c.Close()
	program(c.Domain(0).Engine(), &clustered)
	c.Run()

	if solo.String() != clustered.String() {
		t.Fatalf("1-domain cluster diverged from standalone engine:\n%s\nvs\n%s", clustered.String(), solo.String())
	}
}

// TestClusterReuseAcrossRuns checks the cluster can be driven in several
// RunUntil slices with cross-domain traffic spanning the boundaries.
func TestClusterReuseAcrossRuns(t *testing.T) {
	c := NewCluster(2, 20*time.Microsecond, 2)
	defer c.Close()
	var delivered []int64
	a, b := c.Domain(0), c.Domain(1)
	a.Go("drip", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(15 * time.Microsecond)
			a.Send(b, func() { delivered = append(delivered, int64(b.Now())) })
		}
	})
	c.RunUntil(40 * time.Microsecond)
	n := len(delivered)
	if n == 0 || n == 10 {
		t.Fatalf("partial run delivered %d messages, want a strict subset", n)
	}
	c.Run()
	if len(delivered) != 10 {
		t.Fatalf("delivered %d messages total, want 10", len(delivered))
	}
	for i := 1; i < len(delivered); i++ {
		if delivered[i] <= delivered[i-1] {
			t.Fatalf("deliveries out of order: %v", delivered)
		}
	}
}
