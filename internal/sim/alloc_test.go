package sim

import (
	"testing"
	"time"
)

// The scheduler hot paths must not allocate in steady state: the arena and
// free list recycle event slots, the heap reuses its backing array, and
// parked coroutines are resumed in place. These guards pin the
// 0 allocs/event acceptance criterion at the unit level, complementing the
// whole-device numbers in BENCH_6.json.

// TestScheduleZeroAlloc covers the callback fast path: Schedule + dispatch
// with a recycled arena slot.
func TestScheduleZeroAlloc(t *testing.T) {
	e := New()
	fired := 0
	fn := func() { fired++ }
	e.Schedule(0, fn) // warm up the arena and heap
	e.Run()
	allocs := testing.AllocsPerRun(200, func() {
		e.Schedule(0, fn)
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("Schedule/Run callback path allocates %.1f per event, want 0", allocs)
	}
	if fired == 0 {
		t.Fatal("callback never fired")
	}
}

// TestSleepWakeZeroAlloc covers the process path: queue wakeup, coroutine
// resume, Sleep re-park. The process is started (coroutine allocated)
// before measurement; steady-state resumes must be free.
func TestSleepWakeZeroAlloc(t *testing.T) {
	e := New()
	q := NewQueue(e)
	rounds := 0
	e.Go("sleeper", func(p *Proc) {
		for {
			q.Wait(p)
			p.Sleep(time.Microsecond)
			rounds++
		}
	})
	e.Run() // start the proc; it parks on q
	allocs := testing.AllocsPerRun(200, func() {
		q.WakeOne()
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("wake/resume/Sleep path allocates %.1f per round, want 0", allocs)
	}
	if rounds == 0 {
		t.Fatal("sleeper never ran")
	}
}

// TestTimerZeroAlloc covers the timer path: Reset and Stop recycle the
// same arena slot.
func TestTimerZeroAlloc(t *testing.T) {
	e := New()
	fired := 0
	tm := e.NewTimer(func() { fired++ })
	tm.Reset(time.Microsecond) // warm up
	e.Run()
	allocs := testing.AllocsPerRun(200, func() {
		tm.Reset(time.Microsecond)
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("Timer Reset/fire path allocates %.1f per event, want 0", allocs)
	}
	if fired == 0 {
		t.Fatal("timer never fired")
	}
}
