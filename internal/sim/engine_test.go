package sim

import (
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(2*time.Millisecond, func() { got = append(got, 2) })
	e.Schedule(1*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(3*time.Millisecond, func() { got = append(got, 3) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3*time.Millisecond {
		t.Fatalf("Now = %v, want 3ms", e.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant events out of order: %v", got)
		}
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := New()
	ran := false
	e.Schedule(-time.Second, func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("negative-delay event never ran")
	}
	if e.Now() != 0 {
		t.Fatalf("Now = %v, want 0", e.Now())
	}
}

func TestProcSleep(t *testing.T) {
	e := New()
	var wake time.Duration
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		wake = p.Now()
	})
	e.Run()
	if wake != 5*time.Millisecond {
		t.Fatalf("woke at %v, want 5ms", wake)
	}
}

func TestProcInterleaving(t *testing.T) {
	e := New()
	var trace []string
	e.Go("a", func(p *Proc) {
		trace = append(trace, "a0")
		p.Sleep(2 * time.Millisecond)
		trace = append(trace, "a2")
	})
	e.Go("b", func(p *Proc) {
		trace = append(trace, "b0")
		p.Sleep(1 * time.Millisecond)
		trace = append(trace, "b1")
	})
	e.Run()
	want := []string{"a0", "b0", "b1", "a2"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestNestedGo(t *testing.T) {
	e := New()
	done := 0
	e.Go("parent", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Engine().Go("child", func(c *Proc) {
				c.Sleep(time.Millisecond)
				done++
			})
		}
		p.Sleep(2 * time.Millisecond)
	})
	e.Run()
	if done != 3 {
		t.Fatalf("children done = %d, want 3", done)
	}
	if e.Procs() != 0 {
		t.Fatalf("live procs = %d, want 0", e.Procs())
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	count := 0
	e.Go("ticker", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(time.Millisecond)
			count++
		}
	})
	e.RunUntil(10 * time.Millisecond)
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	if e.Now() != 10*time.Millisecond {
		t.Fatalf("Now = %v", e.Now())
	}
	e.Run()
	if count != 100 {
		t.Fatalf("count = %d, want 100 after full run", count)
	}
}

func TestRunForAdvancesIdleClock(t *testing.T) {
	e := New()
	e.RunFor(7 * time.Second)
	if e.Now() != 7*time.Second {
		t.Fatalf("Now = %v, want 7s", e.Now())
	}
}

func TestQueueWakeOrder(t *testing.T) {
	e := New()
	q := NewQueue(e)
	var order []string
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		e.Go(name, func(p *Proc) {
			q.Wait(p)
			order = append(order, name)
		})
	}
	e.Go("waker", func(p *Proc) {
		p.Sleep(time.Millisecond)
		q.WakeOne()
		p.Sleep(time.Millisecond)
		q.WakeAll()
	})
	e.Run()
	want := []string{"w1", "w2", "w3"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order = %v, want %v", order, want)
		}
	}
}

func TestBlockedDetection(t *testing.T) {
	e := New()
	q := NewQueue(e)
	e.Go("stuck", func(p *Proc) { q.Wait(p) })
	e.Run()
	blocked := e.Blocked()
	if len(blocked) != 1 || blocked[0] != "stuck" {
		t.Fatalf("Blocked = %v, want [stuck]", blocked)
	}
}

func TestResourceSerializes(t *testing.T) {
	e := New()
	r := NewResource(e, 1)
	var finish []time.Duration
	for i := 0; i < 3; i++ {
		e.Go("user", func(p *Proc) {
			r.Acquire(p, 1)
			p.Sleep(10 * time.Millisecond)
			r.Release(1)
			finish = append(finish, p.Now())
		})
	}
	e.Run()
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish times = %v, want %v", finish, want)
		}
	}
}

func TestResourceParallelism(t *testing.T) {
	e := New()
	r := NewResource(e, 4)
	var last time.Duration
	for i := 0; i < 8; i++ {
		e.Go("user", func(p *Proc) {
			r.Use(p, 10*time.Millisecond)
			last = p.Now()
		})
	}
	e.Run()
	// 8 jobs, 4 servers, 10ms each -> 2 waves -> 20ms.
	if last != 20*time.Millisecond {
		t.Fatalf("completion = %v, want 20ms", last)
	}
}

func TestResourceFIFOFairness(t *testing.T) {
	e := New()
	r := NewResource(e, 2)
	var order []int
	for i := 0; i < 6; i++ {
		i := i
		e.Go("user", func(p *Proc) {
			r.Acquire(p, 1)
			order = append(order, i)
			p.Sleep(time.Millisecond)
			r.Release(1)
		})
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("admission order = %v, want ascending", order)
		}
	}
}

func TestResourceTryAcquire(t *testing.T) {
	e := New()
	r := NewResource(e, 2)
	if !r.TryAcquire(2) {
		t.Fatal("TryAcquire(2) on empty resource failed")
	}
	if r.TryAcquire(1) {
		t.Fatal("TryAcquire(1) on full resource succeeded")
	}
	r.Release(1)
	if !r.TryAcquire(1) {
		t.Fatal("TryAcquire(1) after release failed")
	}
}

func TestResourceMultiUnit(t *testing.T) {
	e := New()
	r := NewResource(e, 3)
	var got []string
	e.Go("big", func(p *Proc) {
		r.Acquire(p, 3)
		got = append(got, "big")
		p.Sleep(time.Millisecond)
		r.Release(3)
	})
	e.Go("small", func(p *Proc) {
		r.Acquire(p, 1)
		got = append(got, "small")
		r.Release(1)
	})
	e.Run()
	if got[0] != "big" || got[1] != "small" {
		t.Fatalf("order = %v; FIFO admission should let big go first", got)
	}
}

func TestSignal(t *testing.T) {
	e := New()
	s := NewSignal(e)
	var woke time.Duration
	e.Go("waiter", func(p *Proc) {
		s.Wait(p)
		woke = p.Now()
	})
	e.Go("firer", func(p *Proc) {
		p.Sleep(3 * time.Millisecond)
		s.Fire()
	})
	e.Run()
	if woke != 3*time.Millisecond {
		t.Fatalf("waiter woke at %v, want 3ms", woke)
	}
	// Waiting on an already-fired signal returns immediately.
	var immediate bool
	e.Go("late", func(p *Proc) {
		s.Wait(p)
		immediate = true
	})
	e.Run()
	if !immediate {
		t.Fatal("late waiter did not pass fired signal")
	}
}

func TestWaitGroup(t *testing.T) {
	e := New()
	wg := NewWaitGroup(e)
	var doneAt time.Duration
	wg.Add(3)
	for i := 1; i <= 3; i++ {
		i := i
		e.Go("worker", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Millisecond)
			wg.Done()
		})
	}
	e.Go("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	e.Run()
	if doneAt != 3*time.Millisecond {
		t.Fatalf("waitgroup released at %v, want 3ms", doneAt)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := New()
	e.Go("boom", func(p *Proc) { panic("kaboom") })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic to propagate from Run")
		}
	}()
	e.Run()
}

func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		e := New()
		r := NewResource(e, 2)
		var times []time.Duration
		for i := 0; i < 20; i++ {
			i := i
			e.Go("p", func(p *Proc) {
				p.Sleep(time.Duration(i%5) * time.Millisecond)
				r.Use(p, time.Duration(1+i%3)*time.Millisecond)
				times = append(times, p.Now())
			})
		}
		e.Run()
		return times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func BenchmarkEventThroughput(b *testing.B) {
	e := New()
	e.Go("looper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	e.Run()
}
