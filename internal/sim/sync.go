package sim

import "time"

// ring is a growable FIFO ring buffer. Push and pop are O(1) and the
// backing array is reused, so steady-state waiter traffic on queues and
// resources allocates nothing — unlike the copy-shift slices it replaces,
// whose front-removal was O(n) per wakeup.
type ring[T any] struct {
	buf  []T // length is always a power of two (or zero)
	head int
	n    int
}

func (r *ring[T]) push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

func (r *ring[T]) pop() T {
	var zero T
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

// front returns a pointer to the oldest element without removing it.
func (r *ring[T]) front() *T {
	return &r.buf[r.head]
}

func (r *ring[T]) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 8
	}
	nb := make([]T, size)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = nb
	r.head = 0
}

// Queue is a FIFO wait queue for processes, the building block for
// condition-style synchronization. A process calls Wait to park; another
// process (or a callback event) calls WakeOne/WakeAll to resume waiters.
// Wakeups are scheduled at the current virtual instant, preserving FIFO
// order via event sequence numbers.
type Queue struct {
	eng     *Engine
	waiters ring[*Proc]
}

// NewQueue returns an empty wait queue bound to eng.
func NewQueue(eng *Engine) *Queue { return &Queue{eng: eng} }

// Len returns the number of waiting processes.
func (q *Queue) Len() int { return q.waiters.n }

// Wait parks p until a wakeup. The caller must re-check its condition after
// returning (Mesa semantics).
//
//simlint:hotpath
func (q *Queue) Wait(p *Proc) {
	q.waiters.push(p)
	p.park()
}

// WakeOne resumes the longest-waiting process, if any, and reports whether
// a process was woken.
//
//simlint:hotpath
func (q *Queue) WakeOne() bool {
	if q.waiters.n == 0 {
		return false
	}
	p := q.waiters.pop()
	q.eng.pushEvent(q.eng.now, nil, p)
	return true
}

// WakeAll resumes every waiting process in FIFO order.
func (q *Queue) WakeAll() {
	for q.waiters.n > 0 {
		p := q.waiters.pop()
		q.eng.pushEvent(q.eng.now, nil, p)
	}
}

// Resource is a counting resource with FIFO admission, modelling servers
// with limited concurrency: NAND planes, channel buses, NCQ slots, ...
type Resource struct {
	eng      *Engine
	capacity int
	inUse    int
	waiters  ring[resWaiter]
}

type resWaiter struct {
	p *Proc
	n int
}

// NewResource returns a resource with the given capacity (units > 0).
func NewResource(eng *Engine, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{eng: eng, capacity: capacity}
}

// Capacity returns the total number of units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting to acquire.
func (r *Resource) QueueLen() int { return r.waiters.n }

// Acquire obtains n units for p, blocking in FIFO order until available.
// n must be positive and must not exceed the capacity.
func (r *Resource) Acquire(p *Proc, n int) {
	if n <= 0 {
		panic("sim: acquire units must be positive")
	}
	if n > r.capacity {
		panic("sim: acquire exceeds resource capacity")
	}
	if r.waiters.n == 0 && r.inUse+n <= r.capacity {
		r.inUse += n
		return
	}
	r.waiters.push(resWaiter{p: p, n: n})
	// Single park: Release applies the grant (inUse) before scheduling the
	// wakeup, and nothing else resumes a resource waiter, so the grant is
	// complete when park returns.
	p.park()
}

// TryAcquire obtains n units without blocking and reports success.
func (r *Resource) TryAcquire(n int) bool {
	if r.waiters.n == 0 && r.inUse+n <= r.capacity {
		r.inUse += n
		return true
	}
	return false
}

// Release returns n units (n > 0) and admits queued waiters in FIFO order.
func (r *Resource) Release(n int) {
	if n <= 0 {
		panic("sim: release units must be positive")
	}
	r.inUse -= n
	if r.inUse < 0 {
		panic("sim: resource released below zero")
	}
	for r.waiters.n > 0 {
		w := r.waiters.front()
		if r.inUse+w.n > r.capacity {
			break
		}
		r.inUse += w.n
		r.eng.pushEvent(r.eng.now, nil, w.p)
		r.waiters.pop()
	}
}

// Use acquires one unit, holds it for d of virtual time, then releases it.
// It models a FIFO service station with service time d.
func (r *Resource) Use(p *Proc, d time.Duration) {
	r.Acquire(p, 1)
	p.Sleep(d)
	r.Release(1)
}

// Signal is a one-shot completion flag: processes Wait until Fire is called.
// After Fire, Wait returns immediately. Useful for async I/O completions.
type Signal struct {
	fired bool
	q     Queue
}

// NewSignal returns an unfired signal bound to eng.
func NewSignal(eng *Engine) *Signal { return &Signal{q: Queue{eng: eng}} }

// Fired reports whether Fire has been called.
func (s *Signal) Fired() bool { return s.fired }

// Fire marks the signal and wakes all waiters. Firing twice is a no-op.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	s.q.WakeAll()
}

// Wait blocks p until the signal fires (returns immediately if it already
// has).
func (s *Signal) Wait(p *Proc) {
	for !s.fired {
		s.q.Wait(p)
	}
}

// WaitGroup counts outstanding work items within the simulation.
type WaitGroup struct {
	n int
	q Queue
}

// NewWaitGroup returns a wait group bound to eng.
func NewWaitGroup(eng *Engine) *WaitGroup { return &WaitGroup{q: Queue{eng: eng}} }

// Add increments the counter by delta.
func (wg *WaitGroup) Add(delta int) {
	wg.n += delta
	if wg.n < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if wg.n == 0 {
		wg.q.WakeAll()
	}
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait blocks p until the counter reaches zero.
func (wg *WaitGroup) Wait(p *Proc) {
	for wg.n > 0 {
		wg.q.Wait(p)
	}
}
