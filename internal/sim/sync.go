package sim

import "time"

// Queue is a FIFO wait queue for processes, the building block for
// condition-style synchronization. A process calls Wait to park; another
// process (or a callback event) calls WakeOne/WakeAll to resume waiters.
// Wakeups are scheduled at the current virtual instant, preserving FIFO
// order via event sequence numbers.
type Queue struct {
	eng     *Engine
	waiters []*Proc
}

// NewQueue returns an empty wait queue bound to eng.
func NewQueue(eng *Engine) *Queue { return &Queue{eng: eng} }

// Len returns the number of waiting processes.
func (q *Queue) Len() int { return len(q.waiters) }

// Wait parks p until a wakeup. The caller must re-check its condition after
// returning (Mesa semantics).
func (q *Queue) Wait(p *Proc) {
	q.waiters = append(q.waiters, p)
	p.park()
}

// WakeOne resumes the longest-waiting process, if any, and reports whether
// a process was woken.
func (q *Queue) WakeOne() bool {
	if len(q.waiters) == 0 {
		return false
	}
	p := q.waiters[0]
	copy(q.waiters, q.waiters[1:])
	q.waiters = q.waiters[:len(q.waiters)-1]
	q.eng.push(&event{at: q.eng.now, proc: p})
	return true
}

// WakeAll resumes every waiting process in FIFO order.
func (q *Queue) WakeAll() {
	for _, p := range q.waiters {
		q.eng.push(&event{at: q.eng.now, proc: p})
	}
	q.waiters = q.waiters[:0]
}

// Resource is a counting resource with FIFO admission, modelling servers
// with limited concurrency: NAND planes, channel buses, NCQ slots, ...
type Resource struct {
	eng      *Engine
	capacity int
	inUse    int
	waiters  []*resWaiter
}

type resWaiter struct {
	p       *Proc
	n       int
	granted bool
}

// NewResource returns a resource with the given capacity (units > 0).
func NewResource(eng *Engine, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{eng: eng, capacity: capacity}
}

// Capacity returns the total number of units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting to acquire.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Acquire obtains n units for p, blocking in FIFO order until available.
// n must not exceed the capacity.
func (r *Resource) Acquire(p *Proc, n int) {
	if n > r.capacity {
		panic("sim: acquire exceeds resource capacity")
	}
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.inUse += n
		return
	}
	w := &resWaiter{p: p, n: n}
	r.waiters = append(r.waiters, w)
	for !w.granted {
		p.park()
	}
}

// TryAcquire obtains n units without blocking and reports success.
func (r *Resource) TryAcquire(n int) bool {
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.inUse += n
		return true
	}
	return false
}

// Release returns n units and admits queued waiters in FIFO order.
func (r *Resource) Release(n int) {
	r.inUse -= n
	if r.inUse < 0 {
		panic("sim: resource released below zero")
	}
	for len(r.waiters) > 0 {
		w := r.waiters[0]
		if r.inUse+w.n > r.capacity {
			break
		}
		r.inUse += w.n
		w.granted = true
		copy(r.waiters, r.waiters[1:])
		r.waiters = r.waiters[:len(r.waiters)-1]
		r.eng.push(&event{at: r.eng.now, proc: w.p})
	}
}

// Use acquires one unit, holds it for d of virtual time, then releases it.
// It models a FIFO service station with service time d.
func (r *Resource) Use(p *Proc, d time.Duration) {
	r.Acquire(p, 1)
	p.Sleep(d)
	r.Release(1)
}

// Signal is a one-shot completion flag: processes Wait until Fire is called.
// After Fire, Wait returns immediately. Useful for async I/O completions.
type Signal struct {
	fired bool
	q     Queue
}

// NewSignal returns an unfired signal bound to eng.
func NewSignal(eng *Engine) *Signal { return &Signal{q: Queue{eng: eng}} }

// Fired reports whether Fire has been called.
func (s *Signal) Fired() bool { return s.fired }

// Fire marks the signal and wakes all waiters. Firing twice is a no-op.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	s.q.WakeAll()
}

// Wait blocks p until the signal fires (returns immediately if it already
// has).
func (s *Signal) Wait(p *Proc) {
	for !s.fired {
		s.q.Wait(p)
	}
}

// WaitGroup counts outstanding work items within the simulation.
type WaitGroup struct {
	n int
	q Queue
}

// NewWaitGroup returns a wait group bound to eng.
func NewWaitGroup(eng *Engine) *WaitGroup { return &WaitGroup{q: Queue{eng: eng}} }

// Add increments the counter by delta.
func (wg *WaitGroup) Add(delta int) {
	wg.n += delta
	if wg.n < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if wg.n == 0 {
		wg.q.WakeAll()
	}
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait blocks p until the counter reaches zero.
func (wg *WaitGroup) Wait(p *Proc) {
	for wg.n > 0 {
		wg.q.Wait(p)
	}
}
