package ssd

import (
	"bytes"
	"testing"
	"time"

	"durassd/internal/iotrace"
	"durassd/internal/sim"
	"durassd/internal/storage"
)

func newDura(t *testing.T) (*sim.Engine, *Device) {
	t.Helper()
	eng := sim.New()
	d, err := New(eng, DuraSSD(16))
	if err != nil {
		t.Fatal(err)
	}
	return eng, d
}

func TestProfilesConstruct(t *testing.T) {
	for _, prof := range []Profile{DuraSSD(16), SSDA(16), SSDB(16)} {
		eng := sim.New()
		d, err := New(eng, prof)
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		if d.PageSize() != 4*storage.KB {
			t.Fatalf("%s: page size %d", prof.Name, d.PageSize())
		}
		if d.Pages() <= 0 {
			t.Fatalf("%s: no capacity", prof.Name)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	eng, d := newDura(t)
	data := bytes.Repeat([]byte{0xcd}, 2*d.PageSize())
	eng.Go("io", func(p *sim.Proc) {
		if err := d.Write(p, iotrace.Req{}, 10, 2, data); err != nil {
			t.Errorf("Write: %v", err)
		}
		buf := make([]byte, 2*d.PageSize())
		if err := d.Read(p, iotrace.Req{}, 10, 2, buf); err != nil {
			t.Errorf("Read: %v", err)
		}
		if !bytes.Equal(buf, data) {
			t.Error("round trip mismatch")
		}
	})
	eng.Run()
	st := d.Stats()
	if st.WriteCommands != 1 || st.ReadCommands != 1 || st.PagesWritten != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWriteAckFasterThanNAND(t *testing.T) {
	eng, d := newDura(t)
	var ack time.Duration
	eng.Go("io", func(p *sim.Proc) {
		if err := d.Write(p, iotrace.Req{}, 0, 1, nil); err != nil {
			t.Errorf("Write: %v", err)
		}
		ack = p.Now()
	})
	eng.Run()
	if ack >= d.Profile().NAND.ProgramLatency {
		t.Fatalf("cached write acked at %v, slower than a NAND program", ack)
	}
}

func TestCacheOffWritePaysNAND(t *testing.T) {
	eng, d := newDura(t)
	d.SetWriteCache(false)
	var ack time.Duration
	eng.Go("io", func(p *sim.Proc) {
		if err := d.Write(p, iotrace.Req{}, 0, 1, nil); err != nil {
			t.Errorf("Write: %v", err)
		}
		ack = p.Now()
	})
	eng.Run()
	if ack < d.Profile().NAND.ProgramLatency {
		t.Fatalf("write-through acked at %v, faster than a NAND program", ack)
	}
}

func TestFlushDrains(t *testing.T) {
	eng, d := newDura(t)
	eng.Go("io", func(p *sim.Proc) {
		for i := 0; i < 16; i++ {
			if err := d.Write(p, iotrace.Req{}, storage.LPN(i), 1, nil); err != nil {
				t.Errorf("Write: %v", err)
			}
		}
		if err := d.Flush(p, iotrace.Req{}); err != nil {
			t.Errorf("Flush: %v", err)
		}
		if d.Controller().DirtySlots() != 0 {
			t.Error("dirty slots remain after flush")
		}
	})
	eng.Run()
	if d.Stats().FlushCommands != 1 {
		t.Fatalf("flush commands = %d", d.Stats().FlushCommands)
	}
}

func TestConcurrentFlushesSerialize(t *testing.T) {
	eng, d := newDura(t)
	var done time.Duration
	const n = 4
	for i := 0; i < n; i++ {
		lpn := storage.LPN(i)
		eng.Go("io", func(p *sim.Proc) {
			if err := d.Write(p, iotrace.Req{}, lpn, 1, nil); err != nil {
				t.Errorf("Write: %v", err)
			}
			if err := d.Flush(p, iotrace.Req{}); err != nil {
				t.Errorf("Flush: %v", err)
			}
			if p.Now() > done {
				done = p.Now()
			}
		})
	}
	eng.Run()
	// Each flush pays at least FlushAck serialized.
	if minSerial := time.Duration(n) * d.Profile().Cache.FlushAck; done < minSerial {
		t.Fatalf("4 concurrent flushes finished at %v; they must serialize past %v", done, minSerial)
	}
}

func TestOutOfRange(t *testing.T) {
	eng, d := newDura(t)
	eng.Go("io", func(p *sim.Proc) {
		if err := d.Write(p, iotrace.Req{}, storage.LPN(d.Pages()), 1, nil); err != storage.ErrOutOfRange {
			t.Errorf("Write OOR = %v", err)
		}
		if err := d.Read(p, iotrace.Req{}, storage.LPN(d.Pages()-1), 2, nil); err != storage.ErrOutOfRange {
			t.Errorf("Read OOR = %v", err)
		}
	})
	eng.Run()
}

func TestPowerCycleKeepsFlushedData(t *testing.T) {
	eng, d := newDura(t)
	data := bytes.Repeat([]byte{0x42}, d.PageSize())
	eng.Go("io", func(p *sim.Proc) {
		if err := d.Write(p, iotrace.Req{}, 5, 1, data); err != nil {
			t.Errorf("Write: %v", err)
			return
		}
		d.PowerFail()
		if err := d.Write(p, iotrace.Req{}, 6, 1, nil); err != storage.ErrOffline {
			t.Errorf("write while offline = %v", err)
		}
		if err := d.Reboot(p); err != nil {
			t.Errorf("Reboot: %v", err)
			return
		}
		buf := make([]byte, d.PageSize())
		if err := d.Read(p, iotrace.Req{}, 5, 1, buf); err != nil {
			t.Errorf("Read after reboot: %v", err)
			return
		}
		if !bytes.Equal(buf, data) {
			t.Error("acked write lost across power cycle")
		}
	})
	eng.Run()
	if d.Stats().LostPages != 0 {
		t.Fatalf("DuraSSD lost %d pages", d.Stats().LostPages)
	}
}

func TestVolatilePowerCycleLosesCache(t *testing.T) {
	eng := sim.New()
	d, err := New(eng, SSDA(16))
	if err != nil {
		t.Fatal(err)
	}
	eng.Go("io", func(p *sim.Proc) {
		for i := 0; i < 64; i++ {
			if err := d.Write(p, iotrace.Req{}, storage.LPN(i), 1, nil); err != nil {
				return
			}
		}
		d.PowerFail()
	})
	eng.Run()
	if d.Stats().LostPages == 0 {
		t.Fatal("volatile SSD lost nothing despite unflushed cache")
	}
}

func TestPreconditionMapsPages(t *testing.T) {
	eng, d := newDura(t)
	if err := d.Precondition(1000); err != nil {
		t.Fatal(err)
	}
	if eng.Now() != 0 {
		t.Fatal("precondition consumed virtual time")
	}
	if !d.FTL().Mapped(999) {
		t.Fatal("page 999 unmapped after precondition")
	}
}
