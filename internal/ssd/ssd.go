// Package ssd assembles complete flash SSD devices from the nand, ftl and
// core building blocks, and supplies the calibrated device profiles used in
// the paper's evaluation: the DuraSSD prototype, two commercial volatile-
// cache drives (SSD-A with 512 MB and SSD-B with 128 MB of cache), all
// behind a SATA-like host interface with native command queuing.
//
// Command timing decomposes into a serialized link component (per-command
// protocol overhead plus data transfer at the link rate) and a firmware
// component that overlaps across queued commands. The profiles are
// calibrated so the paper's Table 1 / Table 2 columns land in the right
// decade; the shapes (fsync sensitivity, page-size effect, cache on/off)
// emerge from the mechanisms rather than the constants.
package ssd

import (
	"time"

	"durassd/internal/core"
	"durassd/internal/devfront"
	"durassd/internal/ftl"
	"durassd/internal/iotrace"
	"durassd/internal/nand"
	"durassd/internal/sim"
	"durassd/internal/storage"
)

// Profile describes one drive model.
type Profile struct {
	Name string

	NAND  nand.Config
	FTL   ftl.Config
	Cache core.Config

	// Host interface.
	LinkMBps         int           // serialized link bandwidth
	WriteCmdOverhead time.Duration // serialized per write command
	ReadCmdOverhead  time.Duration // serialized per read command
	FirmwareWrite    time.Duration // overlapping per write command
	FirmwareRead     time.Duration // overlapping per read command
	NCQDepth         int           // outstanding commands (SATA NCQ: 32)
}

// DuraSSD returns the paper's prototype: durable cache, dump area, lazy
// mapping, 4 KB mapping units over 8 KB NAND pages. scale shrinks capacity
// (see nand.EnterpriseConfig).
func DuraSSD(scale int) Profile {
	ncfg := nand.EnterpriseConfig(scale)
	fcfg := ftl.DefaultConfig(ncfg.PageSize)
	fcfg.DumpBlocks = ncfg.Planes() // one pre-erased dump block per plane
	// Media-error handling: retry reads a few times with growing backoff
	// (read-retry reference-voltage shifts), and rewrite any page whose
	// corrected-bit count reaches half the ECC budget. Both are inert on
	// clean media; bad-block retirement and scrubbing stay off unless a
	// campaign opts in (ReserveBlocks / ScrubInterval).
	fcfg.ReadRetries = 3
	fcfg.RetryBackoff = 80 * time.Microsecond
	fcfg.RefreshThreshold = 4
	ccfg := core.Config{
		Frames:         4096,
		Durable:        true,
		FlushWorkers:   ncfg.Planes(),
		SlotAccess:     2 * time.Microsecond,
		FlushAck:       1500 * time.Microsecond,
		RebootRecharge: 100 * time.Millisecond,
	}
	return Profile{
		Name:             "DuraSSD",
		NAND:             ncfg,
		FTL:              fcfg,
		Cache:            ccfg,
		LinkMBps:         550,
		WriteCmdOverhead: 12 * time.Microsecond,
		ReadCmdOverhead:  4 * time.Microsecond,
		FirmwareWrite:    44 * time.Microsecond,
		FirmwareRead:     20 * time.Microsecond,
		NCQDepth:         32,
	}
}

// SSDA returns the volatile-cache commercial drive "SSD-A" (512 MB cache):
// throughput close to DuraSSD when flushes are rare, but fsync must drain
// the cache and journal the mapping, and power loss drops the cache.
func SSDA(scale int) Profile {
	p := DuraSSD(scale)
	p.Name = "SSD-A"
	p.NAND.ProgramLatency = 1100 * time.Microsecond
	p.FTL.DumpBlocks = 0
	p.FTL.EagerMapping = true
	p.Cache.Durable = false
	p.Cache.Frames = 4096
	p.Cache.FlushAck = 0
	p.WriteCmdOverhead = 16 * time.Microsecond
	p.FirmwareWrite = 64 * time.Microsecond
	return p
}

// SSDB returns the volatile-cache commercial drive "SSD-B" (128 MB cache):
// a slower host path but a leaner firmware whose flush-cache is cheaper.
func SSDB(scale int) Profile {
	p := DuraSSD(scale)
	p.Name = "SSD-B"
	p.NAND.ProgramLatency = 500 * time.Microsecond
	p.NAND.Channels = 4
	p.NAND.BlocksPerPlane *= 2 // keep capacity when halving channels
	p.FTL.DumpBlocks = 0
	p.FTL.EagerMapping = true
	p.Cache.Durable = false
	p.Cache.Frames = 1024
	p.Cache.FlushAck = 0
	p.WriteCmdOverhead = 24 * time.Microsecond
	p.FirmwareWrite = 90 * time.Microsecond
	p.ReadCmdOverhead = 8 * time.Microsecond
	p.FirmwareRead = 40 * time.Microsecond
	return p
}

// Device is a complete SSD. It implements storage.Device and
// storage.PowerCycler. The host-interface machinery (NCQ, serialized link,
// non-queued flush admission, power gating) lives in the shared devfront
// layer; this type composes it with the flash back-end (cache, FTL, NAND).
type Device struct {
	prof  Profile
	eng   *sim.Engine
	arr   *nand.Array
	f     *ftl.FTL
	ctrl  *core.Controller
	front *devfront.Front
	reg   *iotrace.Registry
	stats *storage.Stats

	cacheOn bool

	// slotsPool recycles the per-command SlotWrite scratch. A command holds
	// its slice exclusively from getSlots to putSlots (the cache controller
	// copies slot data during staging), so concurrent commands simply draw
	// distinct slices.
	slotsPool [][]ftl.SlotWrite
	// lpnPool recycles the per-read LPN scratch the same way.
	lpnPool [][]storage.LPN
}

func (d *Device) getSlots(n int) []ftl.SlotWrite {
	if last := len(d.slotsPool) - 1; last >= 0 {
		s := d.slotsPool[last]
		d.slotsPool[last] = nil
		d.slotsPool = d.slotsPool[:last]
		if cap(s) >= n {
			s = s[:n]
			for i := range s {
				s[i] = ftl.SlotWrite{}
			}
			return s
		}
	}
	return make([]ftl.SlotWrite, n) //simlint:allow hotalloc pool miss fallback; steady state recycles pooled slices
}

func (d *Device) putSlots(s []ftl.SlotWrite) {
	if cap(s) == 0 || len(d.slotsPool) >= 8 {
		return
	}
	d.slotsPool = append(d.slotsPool, s[:0])
}

func (d *Device) getLPNs(n int) []storage.LPN {
	if last := len(d.lpnPool) - 1; last >= 0 {
		s := d.lpnPool[last]
		d.lpnPool[last] = nil
		d.lpnPool = d.lpnPool[:last]
		if cap(s) >= n {
			return s[:n]
		}
	}
	return make([]storage.LPN, n) //simlint:allow hotalloc pool miss fallback; steady state recycles pooled slices
}

func (d *Device) putLPNs(s []storage.LPN) {
	if cap(s) == 0 || len(d.lpnPool) >= 8 {
		return
	}
	d.lpnPool = append(d.lpnPool, s[:0])
}

// New builds a powered-on, empty device from the profile.
func New(eng *sim.Engine, prof Profile) (*Device, error) {
	reg := iotrace.NewRegistry()
	arr, err := nand.New(eng, prof.NAND, reg)
	if err != nil {
		return nil, err
	}
	f, err := ftl.New(arr, prof.FTL, reg)
	if err != nil {
		return nil, err
	}
	if prof.NCQDepth <= 0 {
		prof.NCQDepth = 32
	}
	d := &Device{
		prof: prof,
		eng:  eng,
		arr:  arr,
		f:    f,
		front: devfront.New(eng, devfront.Config{
			LinkMBps:      prof.LinkMBps,
			ReadOverhead:  prof.ReadCmdOverhead,
			WriteOverhead: prof.WriteCmdOverhead,
			FlushOverhead: prof.WriteCmdOverhead, // flush issues as a write-class command
			Depth:         prof.NCQDepth,
		}, reg),
		reg:     reg,
		stats:   reg.Stats(),
		cacheOn: true,
	}
	d.ctrl = core.NewController(f, prof.Cache, reg)
	f.StartBackgroundGC() // no-op unless the profile configures a watermark
	f.StartScrubber()     // no-op unless the profile configures ScrubInterval
	return d, nil
}

// SetWriteCache enables or disables the volatile/durable write cache
// (Table 1's "Storage Cache OFF/ON" knob). Disable only while idle.
func (d *Device) SetWriteCache(on bool) { d.cacheOn = on }

// WriteCache reports whether the write cache is enabled.
func (d *Device) WriteCache() bool { return d.cacheOn }

// Profile returns the device profile.
func (d *Device) Profile() Profile { return d.prof }

// FTL exposes the translation layer (tests and preconditioning).
func (d *Device) FTL() *ftl.FTL { return d.f }

// Array exposes the NAND medium (fault-injection harnesses).
func (d *Device) Array() *nand.Array { return d.arr }

// Controller exposes the cache controller.
func (d *Device) Controller() *core.Controller { return d.ctrl }

// PageSize returns the mapping unit (4 KB).
func (d *Device) PageSize() int { return d.f.SlotSize() }

// Pages returns the logical capacity in mapping units.
func (d *Device) Pages() int64 { return d.f.LogicalSlots() }

// Stats returns the device counters.
func (d *Device) Stats() *storage.Stats { return d.stats }

// Registry returns the device's unified metrics registry.
func (d *Device) Registry() *iotrace.Registry { return d.reg }

// Write submits one write command covering n mapping units from lpn.
//
//simlint:hotpath
func (d *Device) Write(p *sim.Proc, req iotrace.Req, lpn storage.LPN, n int, data []byte) error {
	if err := d.front.AdmitRange(lpn, n, d.f.LogicalSlots()); err != nil {
		return err
	}
	ss := d.f.SlotSize()
	if err := devfront.CheckBuf("ssd: write", data, n, ss); err != nil {
		return err
	}
	d.front.Enqueue(p, req)
	defer d.front.Dequeue()

	// Serialized host-link occupancy: protocol overhead + data transfer.
	d.front.TransferIn(p, req, n*ss)
	// Firmware command handling overlaps across queued commands.
	fsp := req.Begin(p, iotrace.LayerFirmware)
	p.Sleep(d.prof.FirmwareWrite)
	fsp.End(p)
	if err := d.front.Interrupted(); err != nil {
		return err
	}

	slots := d.getSlots(n)
	defer d.putSlots(slots)
	for i := 0; i < n; i++ {
		slots[i].LPN = lpn + storage.LPN(i)
		slots[i].Origin = req.Origin
		if data != nil {
			slots[i].Data = data[i*ss : (i+1)*ss]
		}
	}
	var err error
	if d.cacheOn {
		err = d.ctrl.Write(p, req, slots)
	} else {
		// Write-through: program slot pairs directly (a lone 4 KB slot
		// still consumes a full physical page — §3.1.2's pairing only
		// happens in the cache).
		spp := d.f.SlotsPerPage()
		for start := 0; start < n && err == nil; start += spp {
			end := start + spp
			if end > n {
				end = n
			}
			err = d.f.Program(p, req, slots[start:end])
		}
	}
	if err != nil {
		return err
	}
	d.front.CompleteWrite(req, n)
	d.reg.Emit(iotrace.EvWriteAck, p.Now())
	return nil
}

// Read submits one read command covering n mapping units from lpn.
//
//simlint:hotpath
func (d *Device) Read(p *sim.Proc, req iotrace.Req, lpn storage.LPN, n int, buf []byte) error {
	if err := d.front.AdmitRange(lpn, n, d.f.LogicalSlots()); err != nil {
		return err
	}
	ss := d.f.SlotSize()
	if err := devfront.CheckBuf("ssd: read", buf, n, ss); err != nil {
		return err
	}
	d.front.Enqueue(p, req)
	defer d.front.Dequeue()

	fsp := req.Begin(p, iotrace.LayerFirmware)
	p.Sleep(d.prof.FirmwareRead)
	fsp.End(p)
	if err := d.front.Interrupted(); err != nil {
		return err
	}
	var err error
	if d.cacheOn {
		// Serve each slot from cache when resident, flash otherwise.
		for i := 0; i < n && err == nil; i++ {
			var sb []byte
			if buf != nil {
				sb = buf[i*ss : (i+1)*ss]
			}
			err = d.ctrl.Read(p, req, lpn+storage.LPN(i), sb)
		}
	} else {
		lpns := d.getLPNs(n)
		for i := range lpns {
			lpns[i] = lpn + storage.LPN(i)
		}
		err = d.f.ReadSlots(p, req, lpns, buf)
		d.putLPNs(lpns)
	}
	if err != nil {
		return err
	}
	// Data transfer back to the host.
	d.front.TransferOut(p, req, n*ss)
	if err := d.front.Interrupted(); err != nil {
		return err
	}
	d.front.CompleteRead(req, n)
	return nil
}

// Flush submits a flush-cache command (fsync with write barriers on).
// Flush-cache is a non-queued command — the devfront admission serializes
// it against other flushes and drains the NCQ first — which is exactly why
// fsync storms crater throughput (Table 1) and inflate tail latency
// (Table 3) on every drive that must honor them.
func (d *Device) Flush(p *sim.Proc, req iotrace.Req) error {
	if err := d.front.FlushEnter(p, req); err != nil {
		return err
	}
	defer d.front.FlushExit()
	d.reg.Emit(iotrace.EvFlushStart, p.Now())
	var err error
	if d.cacheOn {
		err = d.ctrl.FlushCache(p, req)
	} else {
		err = d.f.FlushMapJournal(p, req)
	}
	if err != nil {
		return err
	}
	d.front.CompleteFlush()
	d.reg.Emit(iotrace.EvFlushEnd, p.Now())
	return nil
}

// PowerFail cuts power instantly (storage.PowerCycler).
func (d *Device) PowerFail() {
	if !d.front.PowerFail() {
		return
	}
	d.arr.PowerFail()
	d.ctrl.PowerFail()
}

// Reboot restores power and runs device recovery: for DuraSSD, capacitor
// recharge plus dump replay; for volatile drives, a mapping rebuild from
// the OOB metadata already on flash.
func (d *Device) Reboot(p *sim.Proc) error {
	if !d.front.Offline() {
		return nil
	}
	d.arr.PowerOn()
	if d.prof.Cache.Durable {
		if err := core.Recover(p, d.f, d.prof.Cache.RebootRecharge, d.stats); err != nil {
			return err
		}
	} else {
		// Volatile drive: the mapping for everything that reached NAND is
		// reconstructed from OOB scans; cached-but-unflushed writes are
		// simply gone (already counted as LostPages).
		p.Sleep(50 * time.Millisecond)
		d.f.ClearMapDirty()
	}
	// Fresh controller over the same FTL: the old cache state died with
	// the power (its content, if durable, was replayed above).
	d.ctrl = core.NewController(d.f, d.prof.Cache, d.reg)
	d.front.PowerOn()
	return nil
}

// InjectReadErrors plants bits stuck bit errors on the physical page
// backing lpn (storage.MediaFaulter). It evicts lpn's clean cache frame
// first so the next read actually touches the damaged flash. Returns false
// when the slot is unmapped, still dirty in the cache (the damage would be
// invisible: the cache copy wins), or the page is not programmed.
func (d *Device) InjectReadErrors(lpn storage.LPN, bits int) bool {
	if !d.ctrl.DropClean(lpn) {
		return false
	}
	ppn, ok := d.f.PhysPageOf(lpn)
	if !ok {
		return false
	}
	return d.arr.InjectBitErrors(ppn, bits)
}

// PreloadPages installs n logical pages instantly starting at lpn, so that
// random reads hit mapped data and GC behaves as on a used drive. data may
// be nil (timing-only) or n*PageSize bytes.
func (d *Device) PreloadPages(lpn storage.LPN, n int64, data []byte) error {
	const batch = 4096
	ss := d.f.SlotSize()
	slots := make([]ftl.SlotWrite, 0, batch)
	for i := int64(0); i < n; i++ {
		sw := ftl.SlotWrite{LPN: lpn + storage.LPN(i)}
		if data != nil {
			sw.Data = data[i*int64(ss) : (i+1)*int64(ss)]
		}
		slots = append(slots, sw)
		if len(slots) == batch {
			if err := d.f.LoadSlots(slots); err != nil {
				return err
			}
			slots = slots[:0]
		}
	}
	if len(slots) > 0 {
		return d.f.LoadSlots(slots)
	}
	return nil
}

// Precondition installs n sequential logical pages instantly from LPN 0.
func (d *Device) Precondition(n int64) error { return d.PreloadPages(0, n, nil) }

var (
	_ storage.Device       = (*Device)(nil)
	_ storage.PowerCycler  = (*Device)(nil)
	_ storage.MediaFaulter = (*Device)(nil)
)
