// Package hdd models the magnetic disk baseline of the paper's Tables 1
// and 2: a 15K RPM enterprise drive (Seagate Cheetah 15K.6) with a 16 MB
// track cache.
//
// A single disk arm serves all media accesses. Random service time starts
// at the seek + rotation + transfer baseline and improves with queue depth
// (NCQ reordering / elevator scheduling), with diminishing returns:
//
//	service(qd) = max(MinService, BaseService × qd^-ReorderExp)
//
// With the write cache on, writes are acknowledged from the track cache and
// drained in the background; flush-cache drains the cache and pays a
// settle overhead. With the cache off, every write seeks. Either way the
// mechanical arm is the bottleneck — which is why the paper's Table 1 shows
// the disk gaining at most 7× from batching fsyncs while SSDs gain 13–68×.
package hdd

import (
	"fmt"
	"math"
	"time"

	"durassd/internal/devfront"
	"durassd/internal/iotrace"
	"durassd/internal/sim"
	"durassd/internal/storage"
)

// Config describes the drive.
type Config struct {
	PageSize    int   // host mapping unit, bytes (4 KB)
	Pages       int64 // capacity in pages
	CacheFrames int   // track cache frames (16 MB / 4 KB = 4096)

	BaseService time.Duration // random access at queue depth 1
	MinService  time.Duration // reordering floor
	ReorderExp  float64       // queue-depth exponent
	MaxReorderQ int           // queue depth clamp for reordering gain

	LinkMBps      int           // interface bandwidth
	CmdOverhead   time.Duration // per-command protocol + controller cost
	FlushOverhead time.Duration // flush-cache settle cost
}

// Cheetah15K returns the paper's disk: Seagate Cheetah 15K.6 146.8 GB with
// 16 MB of cache, scaled in capacity by scale (>=1).
func Cheetah15K(scale int) Config {
	if scale < 1 {
		scale = 1
	}
	return Config{
		PageSize:      4 * storage.KB,
		Pages:         int64(146*storage.GB) / int64(4*storage.KB) / int64(scale),
		CacheFrames:   4096,
		BaseService:   6300 * time.Microsecond,
		MinService:    1800 * time.Microsecond,
		ReorderExp:    0.35,
		MaxReorderQ:   32,
		LinkMBps:      160,
		CmdOverhead:   100 * time.Microsecond,
		FlushOverhead: 4500 * time.Microsecond,
	}
}

// Device is the disk. It implements storage.Device and storage.PowerCycler.
// The host interface (serialized link, non-queued flush admission, power
// gating, range checks) comes from the shared devfront layer; the disk has
// no host-visible command queue (Depth 0) — its reordering happens at the
// mechanical arm.
type Device struct {
	cfg Config
	eng *sim.Engine

	arm     *sim.Resource          // the mechanical arm: one access at a time
	armQ    int                    // accesses waiting or in service (for reordering)
	platter map[storage.LPN][]byte // real-bytes mode storage

	cacheOn    bool
	frames     map[storage.LPN][]byte // write cache (nil value = timing-only)
	dirtyq     []extent               // whole write commands drain as one seek
	dirty      map[storage.LPN]bool
	dirtyPages int
	inFlight   int
	hasDirty   *sim.Queue
	space      *sim.Queue
	drained    *sim.Queue

	front *devfront.Front
	reg   *iotrace.Registry
	stats *storage.Stats
}

// New builds a powered-on disk and starts its cache drainer.
func New(eng *sim.Engine, cfg Config) (*Device, error) {
	if cfg.PageSize <= 0 || cfg.Pages <= 0 {
		return nil, fmt.Errorf("hdd: invalid geometry %+v", cfg)
	}
	reg := iotrace.NewRegistry()
	d := &Device{
		cfg:      cfg,
		eng:      eng,
		arm:      sim.NewResource(eng, 1),
		platter:  make(map[storage.LPN][]byte),
		cacheOn:  true,
		frames:   make(map[storage.LPN][]byte),
		dirty:    make(map[storage.LPN]bool),
		hasDirty: sim.NewQueue(eng),
		space:    sim.NewQueue(eng),
		drained:  sim.NewQueue(eng),
		front: devfront.New(eng, devfront.Config{
			LinkMBps:      cfg.LinkMBps,
			ReadOverhead:  cfg.CmdOverhead,
			WriteOverhead: cfg.CmdOverhead,
		}, reg),
		reg:   reg,
		stats: reg.Stats(),
	}
	eng.Go("hdd-drain", d.drainer)
	return d, nil
}

// SetWriteCache toggles the track write cache.
func (d *Device) SetWriteCache(on bool) { d.cacheOn = on }

// PageSize returns the mapping unit.
func (d *Device) PageSize() int { return d.cfg.PageSize }

// Pages returns the capacity in pages.
func (d *Device) Pages() int64 { return d.cfg.Pages }

// Stats returns the device counters.
func (d *Device) Stats() *storage.Stats { return d.stats }

// Registry returns the device's unified metrics registry.
func (d *Device) Registry() *iotrace.Registry { return d.reg }

// service performs one random media access of n consecutive pages. depth is
// the scheduling window the firmware can reorder over: the arm queue for
// direct accesses, the dirty backlog for cache drains. The arm wait is a
// host-queue span; the mechanical access itself is charged to the media
// (NAND) layer so HDD and SSD breakdowns share one table shape.
func (d *Device) service(p *sim.Proc, req iotrace.Req, n, depth int) {
	qsp := req.Begin(p, iotrace.LayerHostQueue)
	d.armQ++
	d.arm.Acquire(p, 1)
	qsp.End(p)
	msp := req.Begin(p, iotrace.LayerNAND)
	defer msp.End(p)
	qd := d.armQ
	if depth > qd {
		qd = depth
	}
	if qd > d.cfg.MaxReorderQ {
		qd = d.cfg.MaxReorderQ
	}
	if qd < 1 {
		qd = 1
	}
	t := time.Duration(float64(d.cfg.BaseService) * math.Pow(float64(qd), -d.cfg.ReorderExp))
	if t < d.cfg.MinService {
		t = d.cfg.MinService
	}
	// Consecutive pages after the first stream at media rate.
	if n > 1 {
		t += time.Duration(n-1) * time.Duration(float64(d.cfg.PageSize)/float64(d.cfg.LinkMBps*storage.MB)*float64(time.Second))
	}
	p.Sleep(t)
	d.arm.Release(1)
	d.armQ--
}

// Write submits one write command of n pages starting at lpn.
func (d *Device) Write(p *sim.Proc, req iotrace.Req, lpn storage.LPN, n int, data []byte) error {
	if err := d.front.AdmitRange(lpn, n, d.cfg.Pages); err != nil {
		return err
	}
	if err := devfront.CheckBuf("hdd: write", data, n, d.cfg.PageSize); err != nil {
		return err
	}
	d.front.TransferIn(p, req, n*d.cfg.PageSize)
	if err := d.front.Interrupted(); err != nil {
		return err
	}
	if d.cacheOn {
		csp := req.Begin(p, iotrace.LayerCache)
		for d.dirtyPages+d.inFlight+n > d.cfg.CacheFrames {
			d.space.Wait(p)
			if err := d.front.Interrupted(); err != nil {
				csp.End(p)
				return err
			}
		}
		csp.End(p)
		for i := 0; i < n; i++ {
			l := lpn + storage.LPN(i)
			var pg []byte
			if data != nil {
				pg = append([]byte(nil), data[i*d.cfg.PageSize:(i+1)*d.cfg.PageSize]...)
			}
			d.frames[l] = pg
			if !d.dirty[l] {
				d.dirty[l] = true
			} else {
				d.stats.CacheOverlaps++
			}
		}
		d.dirtyPages += n
		d.dirtyq = append(d.dirtyq, extent{lpn: lpn, n: n, origin: req.Origin})
		d.hasDirty.WakeOne()
	} else {
		d.service(p, req, n, 0)
		if err := d.front.Interrupted(); err != nil {
			return err // in-place write may be torn
		}
		d.commit(lpn, n, data)
	}
	d.front.CompleteWrite(req, n)
	return nil
}

func (d *Device) commit(lpn storage.LPN, n int, data []byte) {
	for i := 0; i < n; i++ {
		var pg []byte
		if data != nil {
			pg = append([]byte(nil), data[i*d.cfg.PageSize:(i+1)*d.cfg.PageSize]...)
		}
		d.platter[lpn+storage.LPN(i)] = pg
	}
}

// extent is one cached write command awaiting write-back.
type extent struct {
	lpn    storage.LPN
	n      int
	origin iotrace.Origin
}

// drainer writes cached commands back to the platter in FIFO order, one
// seek per command regardless of its size.
func (d *Device) drainer(p *sim.Proc) {
	for {
		if d.front.Offline() {
			return
		}
		if len(d.dirtyq) == 0 {
			d.hasDirty.Wait(p)
			continue
		}
		ext := d.dirtyq[0]
		d.dirtyq = d.dirtyq[1:]
		d.dirtyPages -= ext.n
		d.inFlight += ext.n
		images := make([][]byte, ext.n)
		for i := 0; i < ext.n; i++ {
			images[i] = d.frames[ext.lpn+storage.LPN(i)]
		}
		req := d.reg.NewReq(p, iotrace.OpWriteback, ext.origin, uint64(ext.lpn), ext.n)
		d.service(p, req, ext.n, d.dirtyPages+1)
		req.Finish(p)
		d.inFlight -= ext.n
		if d.front.Offline() {
			return
		}
		for i := 0; i < ext.n; i++ {
			l := ext.lpn + storage.LPN(i)
			d.platter[l] = images[i]
			if d.frames[l] != nil || images[i] == nil {
				// Drop the frame unless a newer write replaced it and is
				// still queued behind us.
				if !d.stillQueued(l) {
					delete(d.dirty, l)
					delete(d.frames, l)
				}
			}
			d.stats.CacheEvicts++
		}
		d.space.WakeAll()
		if d.dirtyPages == 0 && d.inFlight == 0 {
			d.drained.WakeAll()
		}
	}
}

// stillQueued reports whether a later queued extent covers l.
func (d *Device) stillQueued(l storage.LPN) bool {
	for _, e := range d.dirtyq {
		if l >= e.lpn && l < e.lpn+storage.LPN(e.n) {
			return true
		}
	}
	return false
}

// Read submits one read command of n pages starting at lpn.
func (d *Device) Read(p *sim.Proc, req iotrace.Req, lpn storage.LPN, n int, buf []byte) error {
	if err := d.front.AdmitRange(lpn, n, d.cfg.Pages); err != nil {
		return err
	}
	if err := devfront.CheckBuf("hdd: read", buf, n, d.cfg.PageSize); err != nil {
		return err
	}
	allCached := true
	for i := 0; i < n; i++ {
		if _, ok := d.frames[lpn+storage.LPN(i)]; !ok {
			allCached = false
			break
		}
	}
	if allCached && d.cacheOn {
		d.stats.CacheHits += int64(n)
	} else {
		d.service(p, req, n, 0)
		if err := d.front.Interrupted(); err != nil {
			return err
		}
	}
	if buf != nil {
		for i := 0; i < n; i++ {
			l := lpn + storage.LPN(i)
			dst := buf[i*d.cfg.PageSize : (i+1)*d.cfg.PageSize]
			src, ok := d.frames[l]
			if !ok || !d.cacheOn {
				src = d.platter[l]
			}
			if src != nil {
				copy(dst, src)
			} else {
				for j := range dst {
					dst[j] = 0
				}
			}
		}
	}
	d.front.TransferOut(p, req, n*d.cfg.PageSize)
	if err := d.front.Interrupted(); err != nil {
		return err
	}
	d.front.CompleteRead(req, n)
	return nil
}

// Flush drains the track cache to the platter and settles. Like every
// flush-cache command it is non-queued: the devfront admission serializes
// concurrent flushes at the device.
func (d *Device) Flush(p *sim.Proc, req iotrace.Req) error {
	if err := d.front.FlushEnter(p, req); err != nil {
		return err
	}
	defer d.front.FlushExit()
	sp := req.Begin(p, iotrace.LayerFlushDrain)
	defer sp.End(p)
	if d.cacheOn {
		for d.dirtyPages > 0 || d.inFlight > 0 {
			d.drained.Wait(p)
			if err := d.front.Interrupted(); err != nil {
				return err
			}
		}
	}
	p.Sleep(d.cfg.FlushOverhead)
	if err := d.front.Interrupted(); err != nil {
		return err
	}
	d.front.CompleteFlush()
	return nil
}

// PreloadPages installs n pages instantly starting at lpn (bulk load).
// Timing-only preloads store nothing: disk reads need no mapping.
func (d *Device) PreloadPages(lpn storage.LPN, n int64, data []byte) error {
	if n < 0 || uint64(lpn) > uint64(d.cfg.Pages) || uint64(n) > uint64(d.cfg.Pages)-uint64(lpn) {
		return storage.ErrOutOfRange
	}
	if data != nil {
		for i := int64(0); i < n; i++ {
			d.platter[lpn+storage.LPN(i)] = append([]byte(nil),
				data[i*int64(d.cfg.PageSize):(i+1)*int64(d.cfg.PageSize)]...)
		}
	}
	return nil
}

// PowerFail cuts power: the volatile track cache is lost.
func (d *Device) PowerFail() {
	if !d.front.PowerFail() {
		return
	}
	for l := range d.dirty {
		_ = l
		d.stats.LostPages++
	}
	d.frames = make(map[storage.LPN][]byte)
	d.dirty = make(map[storage.LPN]bool)
	d.dirtyq = nil
	d.dirtyPages = 0
	d.inFlight = 0
	d.hasDirty.WakeAll()
	d.space.WakeAll()
	d.drained.WakeAll()
}

// Reboot restores power (disks need no recovery beyond spin-up).
func (d *Device) Reboot(p *sim.Proc) error {
	if !d.front.Offline() {
		return nil
	}
	p.Sleep(10 * time.Second) // spin-up
	d.front.PowerOn()
	d.eng.Go("hdd-drain", d.drainer)
	return nil
}

var (
	_ storage.Device      = (*Device)(nil)
	_ storage.PowerCycler = (*Device)(nil)
)
