package hdd

import (
	"bytes"
	"testing"
	"time"

	"durassd/internal/iotrace"
	"durassd/internal/sim"
	"durassd/internal/storage"
)

func newDisk(t *testing.T) (*sim.Engine, *Device) {
	t.Helper()
	eng := sim.New()
	d, err := New(eng, Cheetah15K(64))
	if err != nil {
		t.Fatal(err)
	}
	return eng, d
}

func TestWriteReadRoundTrip(t *testing.T) {
	eng, d := newDisk(t)
	data := bytes.Repeat([]byte{0x3c}, d.PageSize())
	eng.Go("io", func(p *sim.Proc) {
		if err := d.Write(p, iotrace.Req{}, 42, 1, data); err != nil {
			t.Errorf("Write: %v", err)
		}
		if err := d.Flush(p, iotrace.Req{}); err != nil {
			t.Errorf("Flush: %v", err)
		}
		buf := make([]byte, d.PageSize())
		if err := d.Read(p, iotrace.Req{}, 42, 1, buf); err != nil {
			t.Errorf("Read: %v", err)
		}
		if !bytes.Equal(buf, data) {
			t.Error("round trip mismatch")
		}
	})
	eng.Run()
}

func TestCachedWriteAcksFast(t *testing.T) {
	eng, d := newDisk(t)
	var ack time.Duration
	eng.Go("io", func(p *sim.Proc) {
		if err := d.Write(p, iotrace.Req{}, 0, 1, nil); err != nil {
			t.Errorf("Write: %v", err)
		}
		ack = p.Now()
	})
	eng.Run()
	if ack >= d.cfg.MinService {
		t.Fatalf("cached write acked at %v — no write-back caching", ack)
	}
}

func TestUncachedWriteSeeks(t *testing.T) {
	eng, d := newDisk(t)
	d.SetWriteCache(false)
	var ack time.Duration
	eng.Go("io", func(p *sim.Proc) {
		if err := d.Write(p, iotrace.Req{}, 0, 1, nil); err != nil {
			t.Errorf("Write: %v", err)
		}
		ack = p.Now()
	})
	eng.Run()
	if ack < d.cfg.BaseService {
		t.Fatalf("uncached write acked at %v, faster than a seek", ack)
	}
}

func TestReorderingImprovesThroughput(t *testing.T) {
	// 32 concurrent reads must finish much faster than 32 serial seeks.
	eng, d := newDisk(t)
	var last time.Duration
	for i := 0; i < 32; i++ {
		lpn := storage.LPN(i * 1000)
		eng.Go("r", func(p *sim.Proc) {
			if err := d.Read(p, iotrace.Req{}, lpn, 1, nil); err != nil {
				t.Errorf("Read: %v", err)
			}
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	eng.Run()
	serial := 32 * d.cfg.BaseService
	if last >= serial {
		t.Fatalf("no NCQ reordering gain: %v >= %v", last, serial)
	}
}

func TestExtentDrainsAsOneSeek(t *testing.T) {
	// A 16 KB (4-page) cached write must drain with one seek, so draining
	// it takes barely longer than draining a single page.
	timeFor := func(pages int) time.Duration {
		eng, d := newDisk(t)
		var done time.Duration
		eng.Go("io", func(p *sim.Proc) {
			if err := d.Write(p, iotrace.Req{}, 0, pages, nil); err != nil {
				t.Errorf("Write: %v", err)
			}
			if err := d.Flush(p, iotrace.Req{}); err != nil {
				t.Errorf("Flush: %v", err)
			}
			done = p.Now()
		})
		eng.Run()
		return done
	}
	t1, t4 := timeFor(1), timeFor(4)
	if t4 > t1*2 {
		t.Fatalf("4-page extent drained in %v vs %v for 1 page; not a single seek", t4, t1)
	}
}

func TestPowerFailLosesTrackCache(t *testing.T) {
	eng, d := newDisk(t)
	eng.Go("io", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			if err := d.Write(p, iotrace.Req{}, storage.LPN(i), 1, nil); err != nil {
				return
			}
		}
		d.PowerFail()
	})
	eng.Run()
	if d.Stats().LostPages == 0 {
		t.Fatal("track cache loss not recorded")
	}
}

func TestFlushWaitsForDrain(t *testing.T) {
	eng, d := newDisk(t)
	var flushDone time.Duration
	eng.Go("io", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			if err := d.Write(p, iotrace.Req{}, storage.LPN(i*500), 1, nil); err != nil {
				t.Errorf("Write: %v", err)
			}
		}
		if err := d.Flush(p, iotrace.Req{}); err != nil {
			t.Errorf("Flush: %v", err)
		}
		flushDone = p.Now()
	})
	eng.Run()
	if flushDone < 10*d.cfg.MinService {
		t.Fatalf("flush returned at %v, before 10 media writes could finish", flushDone)
	}
}
