package vol

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"durassd/internal/iotrace"
	"durassd/internal/sim"
	"durassd/internal/ssd"
	"durassd/internal/storage"
)

// spanRig builds a cluster with one front domain (0) plus one DuraSSD per
// extra domain, and a striped span volume over them.
func spanRig(t *testing.T, members, workers int, chunk int) (*sim.Cluster, *Span) {
	t.Helper()
	c := sim.NewCluster(members+1, 10*time.Microsecond, workers)
	sm := make([]SpanMember, members)
	for i := 0; i < members; i++ {
		dom := c.Domain(i + 1)
		d, err := ssd.New(dom.Engine(), ssd.DuraSSD(16))
		if err != nil {
			c.Close()
			t.Fatal(err)
		}
		sm[i] = SpanMember{Dev: d, Dom: dom}
	}
	v, err := NewStripedSpan(c.Domain(0), sm, chunk)
	if err != nil {
		c.Close()
		t.Fatal(err)
	}
	return c, v
}

func driveSpan(c *sim.Cluster, v *Span, fn func(p *sim.Proc)) {
	v.Front().Go("test", fn)
	c.Run()
}

func TestStripedSpanRoundTrip(t *testing.T) {
	for _, workers := range []int{1, 4} {
		c, v := spanRig(t, 4, workers, 4)
		const lpn, n = 2, 12 // spans all four members
		data := make([]byte, n*v.PageSize())
		for i := range data {
			data[i] = byte(i % 251)
		}
		var done time.Duration
		driveSpan(c, v, func(p *sim.Proc) {
			if err := v.Write(p, iotrace.Req{}, lpn, n, data); err != nil {
				t.Errorf("Write: %v", err)
				return
			}
			buf := make([]byte, n*v.PageSize())
			if err := v.Read(p, iotrace.Req{}, lpn, n, buf); err != nil {
				t.Errorf("Read: %v", err)
				return
			}
			if !bytes.Equal(buf, data) {
				t.Error("span round trip mismatch")
			}
			done = p.Now()
		})
		for i, m := range v.Members() {
			if m.Stats().PagesWritten == 0 {
				t.Errorf("workers=%d: member %d received no pages", workers, i)
			}
		}
		// Each member op pays one lookahead hop each way on top of device
		// time, so the caller must have advanced at least two hops.
		if done < 4*10*time.Microsecond {
			t.Errorf("workers=%d: span ops completed at %v — link hops missing", workers, done)
		}
		c.Close()
	}
}

// TestSpanScheduleWorkerSweep pins the determinism guarantee at the device
// level: the merged member event stream (via iotrace.ShardRecorder) is
// byte-identical at 1 worker and 4 workers.
func TestSpanScheduleWorkerSweep(t *testing.T) {
	digest := func(workers int) string {
		c, v := spanRig(t, 4, workers, 4)
		defer c.Close()
		rec := iotrace.NewShardRecorder(5)
		for i, m := range v.Members() {
			rec.Attach(i+1, m.Registry())
		}
		driveSpan(c, v, func(p *sim.Proc) {
			data := make([]byte, 4*v.PageSize())
			for round := 0; round < 8; round++ {
				for i := range data {
					data[i] = byte(round + i)
				}
				if err := v.Write(p, iotrace.Req{}, storage.LPN(round*4), 4, data); err != nil {
					t.Errorf("write %d: %v", round, err)
					return
				}
				if round%3 == 0 {
					if err := v.Flush(p, iotrace.Req{}); err != nil {
						t.Errorf("flush %d: %v", round, err)
						return
					}
				}
			}
		})
		if rec.Events() == 0 {
			t.Fatal("no device events captured")
		}
		return fmt.Sprintf("%s now=%d", rec.Digest(), int64(v.Front().Now()))
	}
	want := digest(1)
	for _, workers := range []int{2, 4} {
		if got := digest(workers); got != want {
			t.Fatalf("workers=%d: device schedule diverged: %s vs %s", workers, got, want)
		}
	}
}

// TestSpanCrashDuringQueuedFlush is the cross-boundary crash case: power
// fails while a flush is queued behind a write on remote members. DuraSSD's
// durable cache must preserve every acknowledged page across the cut, even
// though the cut reaches each member one link latency after the front.
func TestSpanCrashDuringQueuedFlush(t *testing.T) {
	for _, workers := range []int{1, 4} {
		c, v := spanRig(t, 4, workers, 4)
		const n = 8
		data := make([]byte, n*v.PageSize())
		for i := range data {
			data[i] = byte(i%127 + 1)
		}
		driveSpan(c, v, func(p *sim.Proc) {
			if err := v.Write(p, iotrace.Req{}, 0, n, data); err != nil {
				t.Errorf("write: %v", err)
			}
		})
		// Queue a flush plus a trailing write, then cut power mid-flight.
		v.Front().Go("flusher", func(p *sim.Proc) {
			_ = v.Flush(p, iotrace.Req{})             //simlint:allow devcheck crash test: the cut is expected to interrupt this flush
			_ = v.Write(p, iotrace.Req{}, n, n, data) //simlint:allow devcheck crash test: unacked write racing the cut carries no contract
		})
		v.Front().Engine().Schedule(60*time.Microsecond, v.PowerFail)
		c.Run()

		driveSpan(c, v, func(p *sim.Proc) {
			if err := v.Read(p, iotrace.Req{}, 0, 1, nil); err == nil {
				t.Error("read succeeded while offline")
			}
			if err := v.Reboot(p); err != nil {
				t.Errorf("reboot: %v", err)
				return
			}
			buf := make([]byte, n*v.PageSize())
			if err := v.Read(p, iotrace.Req{}, 0, n, buf); err != nil {
				t.Errorf("read after reboot: %v", err)
				return
			}
			if !bytes.Equal(buf, data) {
				t.Error("acknowledged pages lost across the domain-spanning cut")
			}
		})
		var lost int64
		for _, m := range v.Members() {
			lost += m.Stats().LostPages
		}
		if lost != 0 {
			t.Errorf("workers=%d: members report %d lost acknowledged pages", workers, lost)
		}
		c.Close()
	}
}

// TestSpanHidesMediaFaulter pins the interface narrowing: fault injection
// into remote members would mutate another domain synchronously, so a span
// must not satisfy storage.MediaFaulter (storagetest then skips media
// cases instead of racing).
func TestSpanHidesMediaFaulter(t *testing.T) {
	c, v := spanRig(t, 2, 1, 4)
	defer c.Close()
	var dev storage.Device = v
	if _, ok := dev.(storage.MediaFaulter); ok {
		t.Fatal("span volume exposes MediaFaulter across domains")
	}
	if _, ok := dev.(storage.PowerCycler); !ok {
		t.Fatal("span volume lost PowerCycler")
	}
}

// TestMirrorSpanReadRepair: a mirror spanning domains still serves reads
// after a crash and repairs secondaries, all through the proxies.
func TestMirrorSpanReadRepair(t *testing.T) {
	c := sim.NewCluster(3, 10*time.Microsecond, 2)
	defer c.Close()
	sm := make([]SpanMember, 2)
	for i := range sm {
		dom := c.Domain(i + 1)
		d, err := ssd.New(dom.Engine(), ssd.DuraSSD(16))
		if err != nil {
			t.Fatal(err)
		}
		sm[i] = SpanMember{Dev: d, Dom: dom}
	}
	v, err := NewMirrorSpan(c.Domain(0), sm)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	data := make([]byte, n*v.PageSize())
	for i := range data {
		data[i] = byte(i + 3)
	}
	v.Front().Go("test", func(p *sim.Proc) {
		if err := v.Write(p, iotrace.Req{}, 0, n, data); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		v.PowerFail()
	})
	c.Run()
	v.Front().Go("recover", func(p *sim.Proc) {
		if err := v.Reboot(p); err != nil {
			t.Errorf("reboot: %v", err)
			return
		}
		buf := make([]byte, n*v.PageSize())
		if err := v.Read(p, iotrace.Req{}, 0, n, buf); err != nil {
			t.Errorf("read: %v", err)
			return
		}
		if !bytes.Equal(buf, data) {
			t.Error("mirror span lost data across crash")
		}
	})
	c.Run()
	if wrote := v.Members()[1].Stats().PagesWritten; wrote < n {
		t.Errorf("secondary has %d pages written — mirror writes not reaching remote member", wrote)
	}
}
