package vol

import (
	"fmt"

	"durassd/internal/iotrace"
	"durassd/internal/sim"
	"durassd/internal/storage"
)

// This file teaches volumes to span cluster domains: a striped, mirrored or
// concatenated array whose member devices live on different simulation
// shards. The volume itself (its devfront, fanout processes and error
// aggregation) runs in one "front" domain; each remote member is wrapped in
// a proxy that turns the blocking storage.Device calls into cross-domain
// request/completion pairs via sim.Domain.Call, and power cuts into
// cross-domain messages. The existing striped/mirror/concat logic is reused
// unchanged — it cannot tell a proxied member from a local one, so array
// crash semantics (fanout error order, mirror read-repair, recovery
// sequencing) carry over verbatim.
//
// Crash semantics across the boundary: a PowerFail on the span reaches
// each member one link latency later, as a message ordered FIFO with any
// in-flight member commands from the same source. Acknowledged volume
// writes stay durable — the volume only acknowledges after every member
// round trip completes, and a member round trip completes only if the
// member processed the write before the cut arrives. The cut skew between
// members is bounded by the lookahead window, mirroring a real array whose
// power rails and HBA links do not fail at the exact same instant.

// SpanMember binds one member device to the cluster domain it lives in.
type SpanMember struct {
	Dev storage.Device
	Dom *sim.Domain
}

// spanVolume is the member-facing surface a span exposes — deliberately
// narrowed: no storage.MediaFaulter, because injecting media faults into a
// remote member would mutate another domain outside its execution.
type spanVolume interface {
	storage.Device
	storage.PowerCycler
	PreloadPages(lpn storage.LPN, n int64, data []byte) error
	SetWriteCache(on bool)
	Members() []storage.Device
}

// Span is a volume whose members live in different cluster domains. It
// implements storage.Device, storage.PowerCycler and the host preloader —
// but not storage.MediaFaulter (see spanVolume). Construct one with
// NewStripedSpan, NewMirrorSpan or NewConcatSpan and use it exactly like a
// single-engine volume from processes in the front domain.
type Span struct {
	spanVolume
	front *sim.Domain
}

// Front returns the domain the span volume runs in.
func (s *Span) Front() *sim.Domain { return s.front }

// wrapMembers validates domains and proxies every member that lives
// outside the front domain.
func wrapMembers(front *sim.Domain, members []SpanMember) ([]storage.Device, error) {
	if front == nil {
		return nil, fmt.Errorf("vol: span needs a front domain")
	}
	devs := make([]storage.Device, len(members))
	for i, m := range members {
		if m.Dev == nil {
			return nil, fmt.Errorf("vol: span member %d is nil", i)
		}
		if m.Dom == nil {
			return nil, fmt.Errorf("vol: span member %d has no domain", i)
		}
		if m.Dom.Cluster() != front.Cluster() {
			return nil, fmt.Errorf("vol: span member %d is in a different cluster", i)
		}
		if m.Dom == front {
			devs[i] = m.Dev
			continue
		}
		devs[i] = &remoteDev{front: front, dom: m.Dom, dev: m.Dev}
	}
	return devs, nil
}

// NewStripedSpan builds a RAID-0 volume over members that may live in
// other cluster domains (chunkPages <= 0 selects DefaultChunkPages).
func NewStripedSpan(front *sim.Domain, members []SpanMember, chunkPages int) (*Span, error) {
	devs, err := wrapMembers(front, members)
	if err != nil {
		return nil, err
	}
	v, err := NewStriped(front.Engine(), devs, chunkPages)
	if err != nil {
		return nil, err
	}
	return &Span{spanVolume: v, front: front}, nil
}

// NewMirrorSpan builds a RAID-1 volume over members that may live in other
// cluster domains.
func NewMirrorSpan(front *sim.Domain, members []SpanMember) (*Span, error) {
	devs, err := wrapMembers(front, members)
	if err != nil {
		return nil, err
	}
	v, err := NewMirror(front.Engine(), devs)
	if err != nil {
		return nil, err
	}
	return &Span{spanVolume: v, front: front}, nil
}

// NewConcatSpan builds a concatenated volume over members that may live in
// other cluster domains.
func NewConcatSpan(front *sim.Domain, members []SpanMember) (*Span, error) {
	devs, err := wrapMembers(front, members)
	if err != nil {
		return nil, err
	}
	v, err := NewConcat(front.Engine(), devs)
	if err != nil {
		return nil, err
	}
	return &Span{spanVolume: v, front: front}, nil
}

// remoteDev proxies a member device living in another cluster domain. The
// blocking Device methods ship the operation to the member's domain with
// Domain.Call — the calling process pays one link latency each way, and
// the epoch barrier makes the member's buffer/error writes visible on
// return. PowerFail ships as a one-way message (a cut propagating down a
// link). Geometry accessors read immutable configuration directly.
//
// remoteDev deliberately does not implement storage.MediaFaulter: fault
// injection mutates member state synchronously, which only the member's
// own domain may do.
type remoteDev struct {
	front *sim.Domain
	dom   *sim.Domain
	dev   storage.Device
}

// PageSize returns the member's mapping unit (immutable geometry).
func (r *remoteDev) PageSize() int { return r.dev.PageSize() }

// Pages returns the member's capacity (immutable geometry).
func (r *remoteDev) Pages() int64 { return r.dev.Pages() }

// detach rebuilds the request without the caller's span trace: a trace is
// confined to its domain, so the member records into its own registry only.
// Op and origin survive, keeping member-side traffic attribution intact.
func detach(req iotrace.Req, lpn storage.LPN, n int) iotrace.Req {
	return iotrace.Req{Op: req.Op, Origin: req.Origin, LPN: uint64(lpn), N: n}
}

// Read ships a read to the member's domain and blocks for the round trip.
func (r *remoteDev) Read(p *sim.Proc, req iotrace.Req, lpn storage.LPN, n int, buf []byte) (err error) {
	req = detach(req, lpn, n)
	r.front.Call(p, r.dom, "span-read", func(q *sim.Proc) {
		err = r.dev.Read(q, req, lpn, n, buf)
	})
	return err
}

// Write ships a write to the member's domain and blocks for the round trip.
func (r *remoteDev) Write(p *sim.Proc, req iotrace.Req, lpn storage.LPN, n int, data []byte) (err error) {
	req = detach(req, lpn, n)
	r.front.Call(p, r.dom, "span-write", func(q *sim.Proc) {
		err = r.dev.Write(q, req, lpn, n, data)
	})
	return err
}

// Flush ships a flush-cache command to the member's domain and blocks
// until the member's drain completes.
func (r *remoteDev) Flush(p *sim.Proc, req iotrace.Req) (err error) {
	req = detach(req, 0, 0)
	r.front.Call(p, r.dom, "span-flush", func(q *sim.Proc) {
		err = r.dev.Flush(q, req)
	})
	return err
}

// Stats returns the member's counters. Read them only while the cluster is
// idle (between or after runs) — they live in the member's domain.
func (r *remoteDev) Stats() *storage.Stats { return r.dev.Stats() }

// Registry returns the member's metrics registry; same idle-only rule as
// Stats.
func (r *remoteDev) Registry() *iotrace.Registry { return r.dev.Registry() }

// PowerFail propagates the cut to the member's domain as a message: the
// member loses power one link latency after the span does, FIFO-ordered
// with commands already sent down the same link.
func (r *remoteDev) PowerFail() {
	pc, ok := r.dev.(storage.PowerCycler)
	if !ok {
		return
	}
	r.front.Send(r.dom, pc.PowerFail)
}

// Reboot runs the member's firmware recovery in its own domain, blocking
// the calling process for the round trip.
func (r *remoteDev) Reboot(p *sim.Proc) (err error) {
	pc, ok := r.dev.(storage.PowerCycler)
	if !ok {
		return nil
	}
	r.front.Call(p, r.dom, "span-reboot", func(q *sim.Proc) {
		err = pc.Reboot(q)
	})
	return err
}

// PreloadPages bulk-loads page images instantly. Preloading is a setup
// operation: call it only while the cluster is idle, like Stats.
func (r *remoteDev) PreloadPages(lpn storage.LPN, n int64, data []byte) error {
	pl, ok := r.dev.(preloader)
	if !ok {
		return fmt.Errorf("vol: remote member does not support preloading")
	}
	return pl.PreloadPages(lpn, n, data)
}

// SetWriteCache forwards the cache toggle (setup-time, cluster idle).
func (r *remoteDev) SetWriteCache(on bool) {
	if wc, ok := r.dev.(writeCacher); ok {
		wc.SetWriteCache(on)
	}
}
