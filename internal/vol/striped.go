package vol

import (
	"fmt"

	"durassd/internal/devfront"
	"durassd/internal/iotrace"
	"durassd/internal/sim"
	"durassd/internal/storage"
)

// DefaultChunkPages is the stripe unit used when a caller passes
// chunkPages <= 0: 64 KB of 4 KB pages, the common md/RAID-0 default.
const DefaultChunkPages = 16

// Striped is a RAID-0 volume: consecutive chunks of chunkPages pages
// rotate across the members, so one large command — or many concurrent
// small ones — keeps every member busy at once. Capacity is the smallest
// member's, floored to a whole number of chunks, times the member count.
type Striped struct {
	volume
	chunk       int64 // stripe unit in pages
	memberPages int64 // usable pages per member (chunk multiple)
}

// NewStriped builds a RAID-0 volume over members with the given stripe
// unit in pages (<= 0 selects DefaultChunkPages).
func NewStriped(eng *sim.Engine, members []storage.Device, chunkPages int) (*Striped, error) {
	base, err := newVolume(eng, "striped", members)
	if err != nil {
		return nil, err
	}
	if chunkPages <= 0 {
		chunkPages = DefaultChunkPages
	}
	chunk := int64(chunkPages)
	usable := (minPages(members) / chunk) * chunk
	if usable == 0 {
		return nil, fmt.Errorf("vol: striped members smaller than one %d-page chunk", chunkPages)
	}
	return &Striped{volume: base, chunk: chunk, memberPages: usable}, nil
}

// ChunkPages returns the stripe unit in pages.
func (v *Striped) ChunkPages() int { return int(v.chunk) }

// Pages returns the volume capacity in pages.
func (v *Striped) Pages() int64 { return v.memberPages * int64(len(v.members)) }

// mapRange splits a volume command into per-member segments, one per chunk
// crossing. Segments stay in volume-address order so error reporting and
// buffer slicing are deterministic.
func (v *Striped) mapRange(lpn storage.LPN, n int) []segment {
	nMembers := int64(len(v.members))
	segs := make([]segment, 0, 4)
	addr := int64(lpn)
	left := int64(n)
	off := 0
	for left > 0 {
		chunkIdx := addr / v.chunk
		within := addr % v.chunk
		cnt := v.chunk - within
		if cnt > left {
			cnt = left
		}
		segs = append(segs, segment{
			member: int(chunkIdx % nMembers),
			lpn:    storage.LPN((chunkIdx/nMembers)*v.chunk + within),
			n:      int(cnt),
			off:    off,
		})
		addr += cnt
		left -= cnt
		off += int(cnt)
	}
	return segs
}

// Read reads n pages starting at lpn, fanning out across the stripe.
func (v *Striped) Read(p *sim.Proc, req iotrace.Req, lpn storage.LPN, n int, buf []byte) error {
	if err := v.front.AdmitRange(lpn, n, v.Pages()); err != nil {
		return err
	}
	if err := devfront.CheckBuf("vol: striped read", buf, n, v.pageSize); err != nil {
		return err
	}
	segs := v.mapRange(lpn, n)
	err := v.fanout(p, segs, func(q *sim.Proc, s segment) error {
		r := req
		if len(segs) > 1 {
			r = child(req, s)
		}
		return v.members[s.member].Read(q, r, s.lpn, s.n, s.slice(buf, v.pageSize))
	})
	if err != nil {
		return err
	}
	v.front.CompleteRead(req, n)
	return nil
}

// Write writes n pages starting at lpn, fanning out across the stripe.
func (v *Striped) Write(p *sim.Proc, req iotrace.Req, lpn storage.LPN, n int, data []byte) error {
	if err := v.front.AdmitRange(lpn, n, v.Pages()); err != nil {
		return err
	}
	if err := devfront.CheckBuf("vol: striped write", data, n, v.pageSize); err != nil {
		return err
	}
	segs := v.mapRange(lpn, n)
	err := v.fanout(p, segs, func(q *sim.Proc, s segment) error {
		r := req
		if len(segs) > 1 {
			r = child(req, s)
		}
		return v.members[s.member].Write(q, r, s.lpn, s.n, s.slice(data, v.pageSize))
	})
	if err != nil {
		return err
	}
	v.front.CompleteWrite(req, n)
	return nil
}

// Flush issues flush-cache to every member concurrently; it returns once
// the slowest member has drained.
func (v *Striped) Flush(p *sim.Proc, req iotrace.Req) error {
	if err := flushAll(&v.volume, p, req); err != nil {
		return err
	}
	v.front.CompleteFlush()
	return nil
}

// PowerFail cuts power to the whole array at once.
func (v *Striped) PowerFail() {
	if !v.front.PowerFail() {
		return
	}
	v.powerFailMembers()
}

// Reboot powers the members back up in parallel and runs their recovery.
func (v *Striped) Reboot(p *sim.Proc) error {
	if !v.front.Offline() {
		return nil
	}
	if err := v.rebootMembers(p); err != nil {
		return err
	}
	v.front.PowerOn()
	return nil
}

// InjectReadErrors forwards a media-fault injection to the member holding
// lpn (storage.MediaFaulter).
func (v *Striped) InjectReadErrors(lpn storage.LPN, bits int) bool {
	s := v.mapRange(lpn, 1)[0]
	mf, ok := v.members[s.member].(storage.MediaFaulter)
	return ok && mf.InjectReadErrors(s.lpn, bits)
}

// PreloadPages installs page images instantly across the stripe (bulk
// loading before a timed run).
func (v *Striped) PreloadPages(lpn storage.LPN, n int64, data []byte) error {
	if err := checkPreload(lpn, n, v.Pages()); err != nil {
		return err
	}
	for _, s := range v.mapRange(lpn, int(n)) {
		if err := v.preloadSegment(s, data); err != nil {
			return err
		}
	}
	return nil
}
