package vol

import (
	"durassd/internal/devfront"
	"durassd/internal/iotrace"
	"durassd/internal/sim"
	"durassd/internal/storage"
)

// Concat is a linear concatenation (JBOD/linear-LVM) volume: member 0
// serves the first member-0-capacity pages, member 1 the next span, and so
// on. Commands crossing a member boundary split into one sub-command per
// member.
type Concat struct {
	volume
	starts []int64 // cumulative start page of each member
	total  int64
}

// NewConcat builds a linear volume over members in order.
func NewConcat(eng *sim.Engine, members []storage.Device) (*Concat, error) {
	base, err := newVolume(eng, "concat", members)
	if err != nil {
		return nil, err
	}
	starts := make([]int64, len(members))
	var total int64
	for i, m := range members {
		starts[i] = total
		total += m.Pages()
	}
	return &Concat{volume: base, starts: starts, total: total}, nil
}

// Pages returns the summed capacity of the members.
func (v *Concat) Pages() int64 { return v.total }

// mapRange splits a volume command at member boundaries.
func (v *Concat) mapRange(lpn storage.LPN, n int) []segment {
	segs := make([]segment, 0, 2)
	addr := int64(lpn)
	left := int64(n)
	off := 0
	m := 0
	for v.starts[m]+v.members[m].Pages() <= addr {
		m++
	}
	for left > 0 {
		mlpn := addr - v.starts[m]
		cnt := v.members[m].Pages() - mlpn
		if cnt > left {
			cnt = left
		}
		segs = append(segs, segment{member: m, lpn: storage.LPN(mlpn), n: int(cnt), off: off})
		addr += cnt
		left -= cnt
		off += int(cnt)
		m++
	}
	return segs
}

// Read reads n pages starting at lpn.
func (v *Concat) Read(p *sim.Proc, req iotrace.Req, lpn storage.LPN, n int, buf []byte) error {
	if err := v.front.AdmitRange(lpn, n, v.total); err != nil {
		return err
	}
	if err := devfront.CheckBuf("vol: concat read", buf, n, v.pageSize); err != nil {
		return err
	}
	segs := v.mapRange(lpn, n)
	err := v.fanout(p, segs, func(q *sim.Proc, s segment) error {
		r := req
		if len(segs) > 1 {
			r = child(req, s)
		}
		return v.members[s.member].Read(q, r, s.lpn, s.n, s.slice(buf, v.pageSize))
	})
	if err != nil {
		return err
	}
	v.front.CompleteRead(req, n)
	return nil
}

// Write writes n pages starting at lpn.
func (v *Concat) Write(p *sim.Proc, req iotrace.Req, lpn storage.LPN, n int, data []byte) error {
	if err := v.front.AdmitRange(lpn, n, v.total); err != nil {
		return err
	}
	if err := devfront.CheckBuf("vol: concat write", data, n, v.pageSize); err != nil {
		return err
	}
	segs := v.mapRange(lpn, n)
	err := v.fanout(p, segs, func(q *sim.Proc, s segment) error {
		r := req
		if len(segs) > 1 {
			r = child(req, s)
		}
		return v.members[s.member].Write(q, r, s.lpn, s.n, s.slice(data, v.pageSize))
	})
	if err != nil {
		return err
	}
	v.front.CompleteWrite(req, n)
	return nil
}

// Flush issues flush-cache on every member concurrently.
func (v *Concat) Flush(p *sim.Proc, req iotrace.Req) error {
	if err := flushAll(&v.volume, p, req); err != nil {
		return err
	}
	v.front.CompleteFlush()
	return nil
}

// PowerFail cuts power to every member at once.
func (v *Concat) PowerFail() {
	if !v.front.PowerFail() {
		return
	}
	v.powerFailMembers()
}

// Reboot powers the members back up in parallel.
func (v *Concat) Reboot(p *sim.Proc) error {
	if !v.front.Offline() {
		return nil
	}
	if err := v.rebootMembers(p); err != nil {
		return err
	}
	v.front.PowerOn()
	return nil
}

// InjectReadErrors forwards a media-fault injection to the member holding
// lpn (storage.MediaFaulter).
func (v *Concat) InjectReadErrors(lpn storage.LPN, bits int) bool {
	s := v.mapRange(lpn, 1)[0]
	mf, ok := v.members[s.member].(storage.MediaFaulter)
	return ok && mf.InjectReadErrors(s.lpn, bits)
}

// PreloadPages installs page images instantly across the members.
func (v *Concat) PreloadPages(lpn storage.LPN, n int64, data []byte) error {
	if err := checkPreload(lpn, n, v.total); err != nil {
		return err
	}
	for _, s := range v.mapRange(lpn, int(n)) {
		if err := v.preloadSegment(s, data); err != nil {
			return err
		}
	}
	return nil
}
