// Package vol composes multiple storage.Devices into one: striped (RAID-0)
// volumes with a configurable chunk size, mirrored (RAID-1) volumes with
// read fan-out and post-recovery read-repair, and simple concatenation.
// Every volume implements storage.Device, storage.PowerCycler and the host
// layer's Preloader, so a database engine mounts a volume exactly like a
// single drive.
//
// The interesting part is the crash semantics. A power cut hits every
// member at the same instant — there is no "the mirror saves you" story
// against power loss, because both copies lose their volatile caches
// together. A stripe or mirror of DuraSSDs therefore inherits the durable
// cache's guarantees (no acknowledged write is lost, no page tears), while
// the same volume geometry over volatile-cache drives inherits their
// failure modes: `cmd/crashtest` demonstrates both. Recovery after a cut
// replays each member's own firmware recovery (in parallel, as real arrays
// power on), then the mirror enters a reconciliation mode in which reads
// are served from the primary copy and repaired onto the secondaries,
// because divergent members may hold different post-crash page images.
//
// Volumes reuse the shared devfront layer for power-state gating, uniform
// ErrOutOfRange checking and the metrics registry; they add no link or
// queue of their own (each member brings its own host interface).
package vol

import (
	"fmt"

	"durassd/internal/devfront"
	"durassd/internal/iotrace"
	"durassd/internal/sim"
	"durassd/internal/storage"
)

// preloader matches host.Preloader without importing the host package.
type preloader interface {
	PreloadPages(lpn storage.LPN, n int64, data []byte) error
}

// writeCacher is implemented by devices with a toggleable write cache.
type writeCacher interface {
	SetWriteCache(on bool)
}

// volume is the state shared by every volume type.
type volume struct {
	eng      *sim.Engine
	front    *devfront.Front
	members  []storage.Device
	pageSize int
}

func newVolume(eng *sim.Engine, kind string, members []storage.Device) (volume, error) {
	if len(members) == 0 {
		return volume{}, fmt.Errorf("vol: %s needs at least one member", kind)
	}
	ps := members[0].PageSize()
	for i, m := range members {
		if m == nil {
			return volume{}, fmt.Errorf("vol: %s member %d is nil", kind, i)
		}
		if m.PageSize() != ps {
			return volume{}, fmt.Errorf("vol: %s member %d page size %d != %d", kind, i, m.PageSize(), ps)
		}
	}
	reg := iotrace.NewRegistry()
	return volume{
		eng:      eng,
		front:    devfront.New(eng, devfront.Config{}, reg),
		members:  members,
		pageSize: ps,
	}, nil
}

// PageSize returns the common mapping-unit size of the members.
func (v *volume) PageSize() int { return v.pageSize }

// Members returns the member devices in order (member 0 is the mirror
// primary). Callers must not mutate the slice.
func (v *volume) Members() []storage.Device { return v.members }

// Stats returns the volume-level counters (host commands served by the
// volume; each member keeps its own counters too).
func (v *volume) Stats() *storage.Stats { return v.front.Stats() }

// Registry returns the volume's unified metrics registry.
func (v *volume) Registry() *iotrace.Registry { return v.front.Registry() }

// SetWriteCache forwards the cache toggle to every member that has one.
func (v *volume) SetWriteCache(on bool) {
	for _, m := range v.members {
		if wc, ok := m.(writeCacher); ok {
			wc.SetWriteCache(on)
		}
	}
}

// segment is the portion of one volume command that lands on one member.
type segment struct {
	member int
	lpn    storage.LPN // member-local page address
	n      int         // pages
	off    int         // page offset within the volume command
}

// slice returns the sub-buffer of a command payload covering seg (nil stays
// nil for timing-only commands).
func (s segment) slice(buf []byte, pageSize int) []byte {
	if buf == nil {
		return nil
	}
	return buf[s.off*pageSize : (s.off+s.n)*pageSize]
}

// child derives the member-command request context for one segment of a
// fanned-out volume command. It deliberately drops the parent's trace —
// spans from concurrently executing members cannot nest into one request —
// but keeps the op and origin so member registries attribute traffic
// correctly. Single-segment commands bypass this and carry the parent
// request (with its trace) straight through.
func child(req iotrace.Req, s segment) iotrace.Req {
	return iotrace.Req{Op: req.Op, Origin: req.Origin, LPN: uint64(s.lpn), N: s.n}
}

// fanout runs one operation per segment concurrently (each in its own
// simulated process) and blocks the caller until all complete. It returns
// the first error in segment order, so outcomes are deterministic.
func (v *volume) fanout(p *sim.Proc, segs []segment, op func(q *sim.Proc, s segment) error) error {
	if len(segs) == 1 {
		return op(p, segs[0])
	}
	errs := make([]error, len(segs))
	wg := sim.NewWaitGroup(v.eng)
	for i := range segs {
		i := i
		wg.Add(1)
		v.eng.Go("vol-io", func(q *sim.Proc) {
			defer wg.Done()
			errs[i] = op(q, segs[i])
		})
	}
	wg.Wait(p)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// powerFailMembers cuts power to every member that supports it.
func (v *volume) powerFailMembers() {
	for _, m := range v.members {
		if pc, ok := m.(storage.PowerCycler); ok {
			pc.PowerFail()
		}
	}
}

// rebootMembers restores power to every member in parallel — real arrays
// spin their drives up concurrently — and returns the first error in
// member order.
func (v *volume) rebootMembers(p *sim.Proc) error {
	errs := make([]error, len(v.members))
	wg := sim.NewWaitGroup(v.eng)
	for i, m := range v.members {
		pc, ok := m.(storage.PowerCycler)
		if !ok {
			continue
		}
		i, pc := i, pc
		wg.Add(1)
		v.eng.Go("vol-reboot", func(q *sim.Proc) {
			defer wg.Done()
			errs[i] = pc.Reboot(q)
		})
	}
	wg.Wait(p)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// flushAll issues flush-cache on every member concurrently and returns the
// first error in member order.
func flushAll(v *volume, p *sim.Proc, req iotrace.Req) error {
	if err := v.front.Admit(); err != nil {
		return err
	}
	if len(v.members) == 1 {
		return v.members[0].Flush(p, req)
	}
	errs := make([]error, len(v.members))
	wg := sim.NewWaitGroup(v.eng)
	for i, m := range v.members {
		i, m := i, m
		wg.Add(1)
		v.eng.Go("vol-flush", func(q *sim.Proc) {
			defer wg.Done()
			errs[i] = m.Flush(q, iotrace.Req{Op: req.Op, Origin: req.Origin})
		})
	}
	wg.Wait(p)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// preloadSegment forwards one preload segment to a member, requiring the
// member to support instant loads.
func (v *volume) preloadSegment(s segment, data []byte) error {
	pl, ok := v.members[s.member].(preloader)
	if !ok {
		return fmt.Errorf("vol: member %d does not support preloading", s.member)
	}
	return pl.PreloadPages(s.lpn, int64(s.n), s.slice(data, v.pageSize))
}

// checkPreload validates a bulk-load range against the volume capacity.
func checkPreload(lpn storage.LPN, n int64, pages int64) error {
	if n < 0 || uint64(lpn) > uint64(pages) || uint64(n) > uint64(pages)-uint64(lpn) {
		return storage.ErrOutOfRange
	}
	return nil
}

// minPages returns the smallest member capacity.
func minPages(members []storage.Device) int64 {
	min := members[0].Pages()
	for _, m := range members[1:] {
		if p := m.Pages(); p < min {
			min = p
		}
	}
	return min
}
