package vol

import (
	"errors"

	"durassd/internal/devfront"
	"durassd/internal/iotrace"
	"durassd/internal/sim"
	"durassd/internal/storage"
)

// Mirror is a RAID-1 volume: every write lands on all members, reads
// rotate round-robin across them. A mirror does NOT protect against power
// loss — the cut hits both copies at the same instant, so a mirror of
// volatile-cache SSDs can still lose or tear acknowledged writes (both
// members drop their caches together), while a mirror of DuraSSDs cannot.
//
// After a power cycle the copies may legitimately diverge: each member's
// firmware recovered whatever its own cache state allowed, so page images
// can differ between members. The mirror therefore reboots into a degraded
// mode in which all reads are served from member 0 (the primary) and, when
// the read carries real bytes, the primary's image is re-written onto the
// secondaries ("read-repair"). Once every page of a range has been
// repaired, reads of that range resume round-robin fan-out.
type Mirror struct {
	volume
	next     int // round-robin read cursor
	degraded bool
	repaired map[storage.LPN]bool // pages reconciled since the last reboot
}

// NewMirror builds a RAID-1 volume over members; member 0 is the primary
// copy used for post-crash reconciliation.
func NewMirror(eng *sim.Engine, members []storage.Device) (*Mirror, error) {
	base, err := newVolume(eng, "mirror", members)
	if err != nil {
		return nil, err
	}
	return &Mirror{volume: base}, nil
}

// Pages returns the volume capacity: the smallest member's.
func (v *Mirror) Pages() int64 { return minPages(v.members) }

// Degraded reports whether the mirror is reconciling after a power cycle.
func (v *Mirror) Degraded() bool { return v.degraded }

// writeSegs returns one same-range segment per member (the whole payload
// goes to everyone).
func (v *Mirror) writeSegs(lpn storage.LPN, n int) []segment {
	segs := make([]segment, len(v.members))
	for i := range segs {
		segs[i] = segment{member: i, lpn: lpn, n: n}
	}
	return segs
}

// Write stores n pages on every member; it acknowledges when the slowest
// copy has acknowledged.
func (v *Mirror) Write(p *sim.Proc, req iotrace.Req, lpn storage.LPN, n int, data []byte) error {
	if err := v.front.AdmitRange(lpn, n, v.Pages()); err != nil {
		return err
	}
	if err := devfront.CheckBuf("vol: mirror write", data, n, v.pageSize); err != nil {
		return err
	}
	err := v.fanout(p, v.writeSegs(lpn, n), func(q *sim.Proc, s segment) error {
		return v.members[s.member].Write(q, child(req, s), s.lpn, s.n, data)
	})
	if err != nil {
		return err
	}
	if v.degraded {
		// A fresh write overwrites any divergence on all copies at once.
		v.markRepaired(lpn, n)
	}
	v.front.CompleteWrite(req, n)
	return nil
}

// Read serves n pages from one copy: round-robin when the mirror is clean,
// from the primary (with read-repair onto the secondaries) while degraded.
func (v *Mirror) Read(p *sim.Proc, req iotrace.Req, lpn storage.LPN, n int, buf []byte) error {
	if err := v.front.AdmitRange(lpn, n, v.Pages()); err != nil {
		return err
	}
	if err := devfront.CheckBuf("vol: mirror read", buf, n, v.pageSize); err != nil {
		return err
	}
	if v.degraded && !v.rangeRepaired(lpn, n) {
		if err := v.readRepair(p, req, lpn, n, buf); err != nil {
			return err
		}
	} else {
		m := v.next
		v.next = (v.next + 1) % len(v.members)
		err := v.members[m].Read(p, req, lpn, n, buf)
		if errors.Is(err, storage.ErrUncorrectable) {
			// The selected copy has an unreadable page: serve the data from a
			// healthy replica and rewrite the damaged one (read-repair during
			// normal operation, not just post-crash reconciliation).
			err = v.repairFrom(p, req, m, lpn, n, buf)
		}
		if err != nil {
			return err
		}
	}
	v.front.CompleteRead(req, n)
	return nil
}

// readRepair serves a degraded read from the primary and, when the caller
// supplied a real buffer, pushes the primary's image onto the secondaries
// so the copies reconverge. Timing-only reads (nil buf) cannot repair —
// there are no bytes to copy — so they leave the range degraded.
func (v *Mirror) readRepair(p *sim.Proc, req iotrace.Req, lpn storage.LPN, n int, buf []byte) error {
	err := v.members[0].Read(p, req, lpn, n, buf)
	if errors.Is(err, storage.ErrUncorrectable) {
		// Even the primary can hit unreadable media; fall back to the
		// secondaries and heal the primary before reconciling from it.
		err = v.repairFrom(p, req, 0, lpn, n, buf)
	}
	if err != nil {
		return err
	}
	if buf == nil {
		return nil
	}
	segs := make([]segment, 0, len(v.members)-1)
	for i := 1; i < len(v.members); i++ {
		segs = append(segs, segment{member: i, lpn: lpn, n: n})
	}
	err = v.fanout(p, segs, func(q *sim.Proc, s segment) error {
		r := iotrace.Req{Op: iotrace.OpWrite, Origin: req.Origin, LPN: uint64(s.lpn), N: s.n}
		return v.members[s.member].Write(q, r, s.lpn, s.n, buf)
	})
	if err != nil {
		return err
	}
	v.markRepaired(lpn, n)
	return nil
}

// repairFrom serves lpn..lpn+n from the first replica that still reads
// cleanly (scanning from bad+1 in deterministic order) and rewrites the
// healthy image onto the damaged member so its firmware remaps the range
// away from the failing flash. The volume read succeeds as long as any
// copy survives; ErrUncorrectable escapes to the host only when every
// member returns it.
func (v *Mirror) repairFrom(p *sim.Proc, req iotrace.Req, bad int, lpn storage.LPN, n int, buf []byte) error {
	for off := 1; off < len(v.members); off++ {
		m := (bad + off) % len(v.members)
		r := iotrace.Req{Op: iotrace.OpRead, Origin: req.Origin, LPN: uint64(lpn), N: n}
		if err := v.members[m].Read(p, r, lpn, n, buf); err != nil {
			if errors.Is(err, storage.ErrUncorrectable) {
				continue // this copy is damaged too; keep scanning
			}
			return err
		}
		w := iotrace.Req{Op: iotrace.OpWrite, Origin: req.Origin, LPN: uint64(lpn), N: n}
		if werr := v.members[bad].Write(p, w, lpn, n, buf); werr == nil {
			v.front.Stats().ReadRepairs++
		}
		// A failed rewrite (member degraded read-only, power race) leaves the
		// damage in place — the read still succeeded with correct bytes, and
		// the next read of the range retries the repair.
		return nil
	}
	return storage.ErrUncorrectable
}

func (v *Mirror) markRepaired(lpn storage.LPN, n int) {
	for i := 0; i < n; i++ {
		v.repaired[lpn+storage.LPN(i)] = true
	}
	if int64(len(v.repaired)) == v.Pages() {
		v.degraded = false
		v.repaired = nil
	}
}

func (v *Mirror) rangeRepaired(lpn storage.LPN, n int) bool {
	for i := 0; i < n; i++ {
		if !v.repaired[lpn+storage.LPN(i)] {
			return false
		}
	}
	return true
}

// Flush issues flush-cache on every member concurrently.
func (v *Mirror) Flush(p *sim.Proc, req iotrace.Req) error {
	if err := flushAll(&v.volume, p, req); err != nil {
		return err
	}
	v.front.CompleteFlush()
	return nil
}

// PowerFail cuts power to both copies at the same instant — the scenario a
// mirror cannot defend against.
func (v *Mirror) PowerFail() {
	if !v.front.PowerFail() {
		return
	}
	v.powerFailMembers()
}

// Reboot powers the members back up in parallel, then enters degraded mode:
// the copies may have recovered different page images, so reads reconcile
// against the primary until every page has been repaired or rewritten.
func (v *Mirror) Reboot(p *sim.Proc) error {
	if !v.front.Offline() {
		return nil
	}
	if err := v.rebootMembers(p); err != nil {
		return err
	}
	v.degraded = true
	v.repaired = make(map[storage.LPN]bool)
	v.front.PowerOn()
	return nil
}

// InjectReadErrors plants stuck bit errors on every secondary copy of lpn
// (storage.MediaFaulter). The primary is left intact deliberately: it is
// the reconciliation source while degraded, and damaging every copy would
// test data loss, not redundancy. Returns true when at least one member
// accepted the injection.
func (v *Mirror) InjectReadErrors(lpn storage.LPN, bits int) bool {
	any := false
	for _, m := range v.members[1:] {
		if mf, ok := m.(storage.MediaFaulter); ok && mf.InjectReadErrors(lpn, bits) {
			any = true
		}
	}
	return any
}

// PreloadPages installs page images instantly on every member.
func (v *Mirror) PreloadPages(lpn storage.LPN, n int64, data []byte) error {
	if err := checkPreload(lpn, n, v.Pages()); err != nil {
		return err
	}
	for i := range v.members {
		if err := v.preloadSegment(segment{member: i, lpn: lpn, n: int(n)}, data); err != nil {
			return err
		}
	}
	return nil
}
