package vol

import (
	"bytes"
	"testing"
	"time"

	"durassd/internal/iotrace"
	"durassd/internal/sim"
	"durassd/internal/ssd"
	"durassd/internal/storage"
)

func newMembers(t *testing.T, eng *sim.Engine, prof func(int) ssd.Profile, n int) []storage.Device {
	t.Helper()
	members := make([]storage.Device, n)
	for i := range members {
		d, err := ssd.New(eng, prof(16))
		if err != nil {
			t.Fatal(err)
		}
		members[i] = d
	}
	return members
}

func run(t *testing.T, eng *sim.Engine, fn func(p *sim.Proc)) {
	t.Helper()
	eng.Go("test", fn)
	eng.Run()
}

func TestStripedMapping(t *testing.T) {
	eng := sim.New()
	v, err := NewStriped(eng, newMembers(t, eng, ssd.DuraSSD, 4), 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Pages() % (4 * 4); got != 0 {
		t.Fatalf("capacity %d not a whole number of stripes", v.Pages())
	}
	// One chunk, fully inside member 1's first chunk.
	segs := v.mapRange(4, 4)
	if len(segs) != 1 || segs[0].member != 1 || segs[0].lpn != 0 || segs[0].n != 4 {
		t.Fatalf("chunk-aligned map = %+v", segs)
	}
	// Crossing three chunk boundaries: pages 2..13 touch members 0,1,2,3.
	segs = v.mapRange(2, 12)
	want := []segment{
		{member: 0, lpn: 2, n: 2, off: 0},
		{member: 1, lpn: 0, n: 4, off: 2},
		{member: 2, lpn: 0, n: 4, off: 6},
		{member: 3, lpn: 0, n: 2, off: 10},
	}
	if len(segs) != len(want) {
		t.Fatalf("map(2,12) = %+v", segs)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Errorf("seg %d = %+v, want %+v", i, segs[i], want[i])
		}
	}
	// Second stripe row lands at member-local chunk 1.
	segs = v.mapRange(16, 1)
	if len(segs) != 1 || segs[0].member != 0 || segs[0].lpn != 4 {
		t.Fatalf("second-row map = %+v", segs)
	}
}

func TestStripedRoundTrip(t *testing.T) {
	eng := sim.New()
	v, err := NewStriped(eng, newMembers(t, eng, ssd.DuraSSD, 4), 4)
	if err != nil {
		t.Fatal(err)
	}
	const lpn, n = 2, 12 // spans all four members
	data := make([]byte, n*v.PageSize())
	for i := range data {
		data[i] = byte(i % 251)
	}
	run(t, eng, func(p *sim.Proc) {
		if err := v.Write(p, iotrace.Req{}, lpn, n, data); err != nil {
			t.Errorf("Write: %v", err)
			return
		}
		buf := make([]byte, n*v.PageSize())
		if err := v.Read(p, iotrace.Req{}, lpn, n, buf); err != nil {
			t.Errorf("Read: %v", err)
			return
		}
		if !bytes.Equal(buf, data) {
			t.Error("striped round trip mismatch")
		}
	})
	for i, m := range v.Members() {
		if m.Stats().PagesWritten == 0 {
			t.Errorf("member %d received no pages — stripe not fanning out", i)
		}
	}
	if v.Stats().WriteCommands != 1 || v.Stats().PagesWritten != n {
		t.Errorf("volume stats = %+v", v.Stats())
	}
}

// TestStripedParallelism: a stripe-spanning write should complete in far
// less time than the same pages written through a single member, because
// the members program concurrently.
func TestStripedParallelism(t *testing.T) {
	const pages = 64

	single := func() time.Duration {
		eng := sim.New()
		d := newMembers(t, eng, ssd.DuraSSD, 1)[0]
		var done time.Duration
		run(t, eng, func(p *sim.Proc) {
			if err := d.Write(p, iotrace.Req{}, 0, pages, nil); err != nil {
				t.Errorf("single write: %v", err)
			}
			done = p.Now()
		})
		return done
	}()

	striped := func() time.Duration {
		eng := sim.New()
		v, err := NewStriped(eng, newMembers(t, eng, ssd.DuraSSD, 4), 4)
		if err != nil {
			t.Fatal(err)
		}
		var done time.Duration
		run(t, eng, func(p *sim.Proc) {
			if err := v.Write(p, iotrace.Req{}, 0, pages, nil); err != nil {
				t.Errorf("striped write: %v", err)
			}
			done = p.Now()
		})
		return done
	}()

	if striped >= single {
		t.Fatalf("4-way stripe (%v) not faster than single member (%v)", striped, single)
	}
}

func TestMirrorFanoutAndRoundRobin(t *testing.T) {
	eng := sim.New()
	v, err := NewMirror(eng, newMembers(t, eng, ssd.DuraSSD, 2))
	if err != nil {
		t.Fatal(err)
	}
	run(t, eng, func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			if err := v.Write(p, iotrace.Req{}, storage.LPN(i), 1, nil); err != nil {
				t.Errorf("Write: %v", err)
			}
		}
		for i := 0; i < 4; i++ {
			if err := v.Read(p, iotrace.Req{}, storage.LPN(i), 1, nil); err != nil {
				t.Errorf("Read: %v", err)
			}
		}
	})
	for i, m := range v.Members() {
		if got := m.Stats().PagesWritten; got != 4 {
			t.Errorf("member %d wrote %d pages, want 4 (mirror writes everywhere)", i, got)
		}
		if got := m.Stats().ReadCommands; got != 2 {
			t.Errorf("member %d served %d reads, want 2 (round-robin)", i, got)
		}
	}
}

func TestMirrorCrashRepair(t *testing.T) {
	eng := sim.New()
	v, err := NewMirror(eng, newMembers(t, eng, ssd.DuraSSD, 2))
	if err != nil {
		t.Fatal(err)
	}
	page := bytes.Repeat([]byte{0xa5}, v.PageSize())
	run(t, eng, func(p *sim.Proc) {
		if err := v.Write(p, iotrace.Req{}, 7, 1, page); err != nil {
			t.Errorf("Write: %v", err)
			return
		}
		v.PowerFail()
		if err := v.Write(p, iotrace.Req{}, 7, 1, page); err != storage.ErrOffline {
			t.Errorf("offline Write = %v, want ErrOffline", err)
		}
		if err := v.Reboot(p); err != nil {
			t.Errorf("Reboot: %v", err)
			return
		}
		if !v.Degraded() {
			t.Error("mirror not degraded after power cycle")
		}
		// Degraded read: served from the primary, repaired onto the
		// secondary. DuraSSD members recover acked writes, so the data
		// must come back intact.
		buf := make([]byte, v.PageSize())
		if err := v.Read(p, iotrace.Req{}, 7, 1, buf); err != nil {
			t.Errorf("degraded Read: %v", err)
			return
		}
		if !bytes.Equal(buf, page) {
			t.Error("acked write lost across power cycle on DuraSSD mirror")
		}
		if !v.rangeRepaired(7, 1) {
			t.Error("read did not repair the range")
		}
		// The secondary now holds the primary's image.
		sec := make([]byte, v.PageSize())
		if err := v.Members()[1].Read(p, iotrace.Req{}, 7, 1, sec); err != nil {
			t.Errorf("secondary Read: %v", err)
			return
		}
		if !bytes.Equal(sec, page) {
			t.Error("read-repair did not converge the secondary")
		}
		// A fresh write also repairs its range.
		if err := v.Write(p, iotrace.Req{}, 9, 1, page); err != nil {
			t.Errorf("post-crash Write: %v", err)
			return
		}
		if !v.rangeRepaired(9, 1) {
			t.Error("write did not mark its range repaired")
		}
	})
}

func TestConcatMappingAndRoundTrip(t *testing.T) {
	eng := sim.New()
	members := newMembers(t, eng, ssd.DuraSSD, 2)
	v, err := NewConcat(eng, members)
	if err != nil {
		t.Fatal(err)
	}
	if v.Pages() != members[0].Pages()+members[1].Pages() {
		t.Fatalf("concat capacity %d != member sum", v.Pages())
	}
	boundary := storage.LPN(members[0].Pages())
	segs := v.mapRange(boundary-1, 2)
	if len(segs) != 2 || segs[0].member != 0 || segs[1].member != 1 || segs[1].lpn != 0 {
		t.Fatalf("boundary map = %+v", segs)
	}
	data := make([]byte, 2*v.PageSize())
	for i := range data {
		data[i] = byte(i % 249)
	}
	run(t, eng, func(p *sim.Proc) {
		if err := v.Write(p, iotrace.Req{}, boundary-1, 2, data); err != nil {
			t.Errorf("Write: %v", err)
			return
		}
		buf := make([]byte, 2*v.PageSize())
		if err := v.Read(p, iotrace.Req{}, boundary-1, 2, buf); err != nil {
			t.Errorf("Read: %v", err)
			return
		}
		if !bytes.Equal(buf, data) {
			t.Error("concat boundary round trip mismatch")
		}
	})
}

func TestVolumeBounds(t *testing.T) {
	eng := sim.New()
	v, err := NewStriped(eng, newMembers(t, eng, ssd.DuraSSD, 2), 4)
	if err != nil {
		t.Fatal(err)
	}
	run(t, eng, func(p *sim.Proc) {
		cases := []struct {
			lpn storage.LPN
			n   int
		}{
			{storage.LPN(v.Pages()), 1},     // starts past the end
			{storage.LPN(v.Pages() - 1), 2}, // runs past the end
			{0, 0},                          // zero length
			{storage.LPN(1) << 63, 1},       // overflow address
		}
		for _, c := range cases {
			if err := v.Write(p, iotrace.Req{}, c.lpn, c.n, nil); err != storage.ErrOutOfRange {
				t.Errorf("Write(%d,%d) = %v, want ErrOutOfRange", c.lpn, c.n, err)
			}
			if err := v.Read(p, iotrace.Req{}, c.lpn, c.n, nil); err != storage.ErrOutOfRange {
				t.Errorf("Read(%d,%d) = %v, want ErrOutOfRange", c.lpn, c.n, err)
			}
		}
		// No member saw any traffic from the rejected commands.
		for i, m := range v.Members() {
			if m.Stats().WriteCommands+m.Stats().ReadCommands != 0 {
				t.Errorf("member %d saw traffic from out-of-range commands", i)
			}
		}
	})
}

func TestVolumePreload(t *testing.T) {
	eng := sim.New()
	v, err := NewStriped(eng, newMembers(t, eng, ssd.DuraSSD, 2), 4)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 8*v.PageSize())
	for i := range data {
		data[i] = byte(i)
	}
	if err := v.PreloadPages(0, 8, data); err != nil {
		t.Fatal(err)
	}
	run(t, eng, func(p *sim.Proc) {
		buf := make([]byte, 8*v.PageSize())
		if err := v.Read(p, iotrace.Req{}, 0, 8, buf); err != nil {
			t.Errorf("Read: %v", err)
			return
		}
		if !bytes.Equal(buf, data) {
			t.Error("preloaded data mismatch")
		}
	})
}

// TestMirrorMediaReadRepair is the normal-operation (non-degraded) repair
// regression: a round-robin read that lands on a replica with unreadable
// media must transparently serve the bytes from the healthy copy, rewrite
// the damaged replica, and count one read-repair — the host never sees the
// media error.
func TestMirrorMediaReadRepair(t *testing.T) {
	eng := sim.New()
	v, err := NewMirror(eng, newMembers(t, eng, ssd.DuraSSD, 2))
	if err != nil {
		t.Fatal(err)
	}
	page := bytes.Repeat([]byte{0x3c}, v.PageSize())
	run(t, eng, func(p *sim.Proc) {
		if err := v.Write(p, iotrace.Req{}, 5, 1, page); err != nil {
			t.Fatalf("Write: %v", err)
		}
		if err := v.Flush(p, iotrace.Req{}); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		// Damage the secondary's only copy beyond ECC reach.
		if !v.InjectReadErrors(5, 1000) {
			t.Fatal("injection not accepted")
		}
		// First read round-robins to the healthy primary; the second lands
		// on the damaged secondary and must trigger the repair path.
		buf := make([]byte, v.PageSize())
		for i := 0; i < 2; i++ {
			for j := range buf {
				buf[j] = 0xff
			}
			if err := v.Read(p, iotrace.Req{}, 5, 1, buf); err != nil {
				t.Fatalf("Read %d: %v", i, err)
			}
			if !bytes.Equal(buf, page) {
				t.Fatalf("Read %d returned wrong bytes", i)
			}
		}
		if got := v.Stats().ReadRepairs; got != 1 {
			t.Errorf("ReadRepairs = %d, want 1", got)
		}
		// The rewrite remapped the secondary away from the failing flash:
		// reading it directly must now succeed with the original bytes.
		sec := make([]byte, v.PageSize())
		if err := v.Members()[1].Read(p, iotrace.Req{}, 5, 1, sec); err != nil {
			t.Fatalf("secondary Read after repair: %v", err)
		}
		if !bytes.Equal(sec, page) {
			t.Error("secondary not healed by read-repair")
		}
	})
}
