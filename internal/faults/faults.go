// Package faults injects power failures into full database stacks and
// verifies the paper's central claims end to end:
//
//   - DuraSSD keeps every acknowledged commit and never exposes a torn
//     page, in every host configuration — including the fast one (write
//     barriers off, double-write buffer off).
//   - A volatile-cache SSD in the fast configuration loses acknowledged
//     commits and/or leaves shorn pages, reproducing the anomalies of the
//     FAST'13 power-fault study the paper cites (§5.2).
//   - The safe-but-slow configuration (barriers on, double-write on)
//     protects even the volatile drive — at the throughput cost Tables 1–5
//     quantify.
//
// A scenario runs a database engine (InnoDB or PostgreSQL) in RealBytes
// mode (checksummed page images, real redo records) on a simulated device,
// cuts power at a chosen or random instant under load, reboots the device
// (running its firmware recovery), reopens the engine, runs torn-page +
// redo recovery, and then audits every acknowledged transaction.
//
// RunWith extends Run with the knobs crash-point exploration needs: an
// event recorder for the command schedule, NAND-level fault injection
// (partial dump, interrupted erase), and probe runs without a cut.
package faults

import (
	"fmt"
	"math/rand"
	"time"

	"durassd/internal/dbsim/buffer"
	"durassd/internal/host"
	"durassd/internal/iotrace"
	"durassd/internal/nand"
	"durassd/internal/sim"
	"durassd/internal/ssd"
	"durassd/internal/storage"
	"durassd/internal/vol"
)

// DeviceKind selects the drive under test.
type DeviceKind string

// Devices under test.
const (
	DuraSSD DeviceKind = "DuraSSD"
	SSDA    DeviceKind = "SSD-A"
)

// Layout selects the volume geometry under test.
type Layout string

// Volume geometries. The interesting cases are the composed ones: a power
// cut hits every member of a volume at the same instant, so striping or
// mirroring volatile-cache drives does not buy back durability — while
// DuraSSD members keep their guarantees in any geometry.
const (
	Single  Layout = ""        // one drive (default)
	Striped Layout = "striped" // RAID-0 over Width members
	Mirror  Layout = "mirror"  // RAID-1 over Width members
)

// Scenario describes one crash experiment.
type Scenario struct {
	Device      DeviceKind
	Engine      EngineKind // database engine (default: InnoDB)
	Layout      Layout     // volume geometry (default: single drive)
	Width       int        // volume member count (default 2)
	Barrier     bool
	DoubleWrite bool // InnoDB double-write buffer / PostgreSQL full-page writes
	Clients     int
	Updates     int           // updates attempted before/while power fails
	CutAfter    time.Duration // power-cut instant; 0 = random in [1ms, 30ms]
	Seed        int64
	// WearOut arms the media wear-out story: the device gets a bad-block
	// reserve pool and a patrol scrubber, a cold filler region is preloaded
	// outside the database footprint, and mid-workload one filler page is
	// hit with uncorrectable damage. The scrubber discovers it and retires
	// the block, migrating its live data — so the schedule contains a
	// retirement window for crash-point exploration to cut into.
	WearOut bool
}

func (s *Scenario) defaults() {
	if s.Engine == "" {
		s.Engine = EngineInnoDB
	}
	if s.Clients <= 0 {
		s.Clients = 8
	}
	if s.Updates <= 0 {
		s.Updates = 400
	}
	if s.Layout != Single && s.Width <= 0 {
		s.Width = 2
	}
}

// Name summarizes the configuration.
func (s Scenario) Name() string {
	b, d := "off", "off"
	if s.Barrier {
		b = "on"
	}
	if s.DoubleWrite {
		d = "on"
	}
	dev := string(s.Device)
	if s.Layout != Single {
		w := s.Width
		if w <= 0 {
			w = 2
		}
		dev = fmt.Sprintf("%s %s-%d", s.Device, s.Layout, w)
	}
	prot := "dwb" // torn-page protection knob: DWB (InnoDB) or FPW (PostgreSQL)
	if s.Engine == EnginePgSQL {
		prot = "fpw"
	}
	if s.Engine != "" && s.Engine != EngineInnoDB {
		dev = fmt.Sprintf("%s %s", dev, s.Engine)
	}
	if s.WearOut {
		dev += " wear"
	}
	return fmt.Sprintf("%s barrier=%s %s=%s", dev, b, prot, d)
}

// Options are the extra knobs crash-point exploration layers on a Scenario.
type Options struct {
	// NoCut runs the workload to completion without a power cut: the probe
	// run that records the command schedule.
	NoCut bool
	// EventFn, when set, observes device events (write acks, flush drains,
	// NAND programs and erases) on every volume member during the workload
	// phase. The member index disambiguates flush start/end pairing.
	EventFn func(member int, kind iotrace.EventKind, at time.Duration)
	// DumpTearAfter arms the partial-dump fault on member 0: the Nth
	// capacitor-powered dump program tears its page (see nand.Faults).
	DumpTearAfter int
	// EngineHook, when set, receives the scenario's freshly created engine
	// before the workload starts. Benchmark harnesses use it to read the
	// processed-event counter after the run; it must not drive the engine.
	EngineHook func(*sim.Engine)
	// InterruptedErase arms the interrupted-erase fault on every member.
	InterruptedErase bool
}

// Verdict is the audited outcome of one crash.
type Verdict struct {
	Scenario     Scenario
	AckedCommits int
	LostCommits  int // acked commits whose page versions regressed
	TornPages    int // unrepairable torn pages found by recovery
	RedoApplied  int
	DumpPages    int64
	DumpRetries  int64 // dump programs retried after a torn dump page
	LostDevPages int64
	Err          error

	// Origins snapshots the device's per-origin traffic counters at the
	// end of the run, attributing write amplification to the database
	// mechanism (redo log, double-write, data pages) that caused it.
	Origins [iotrace.NumOrigins]iotrace.OriginCounters
}

// Safe reports whether the configuration preserved every guarantee.
func (v *Verdict) Safe() bool {
	return v.Err == nil && v.LostCommits == 0 && v.TornPages == 0
}

// Profile returns the ssd.Profile behind a device kind (exploration reads
// program/erase latencies from it to place mid-operation crash points).
func Profile(k DeviceKind) (ssd.Profile, error) {
	switch k {
	case DuraSSD:
		return ssd.DuraSSD(16), nil
	case SSDA:
		return ssd.SSDA(16), nil
	}
	return ssd.Profile{}, fmt.Errorf("faults: unknown device %q", k)
}

// Run executes the scenario and audits the aftermath.
func Run(s Scenario) (*Verdict, error) { return RunWith(s, Options{}) }

// RunWith executes the scenario with exploration options and audits the
// aftermath.
func RunWith(s Scenario, o Options) (*Verdict, error) {
	s.defaults()
	v := &Verdict{Scenario: s}
	eng := sim.New()
	if o.EngineHook != nil {
		o.EngineHook(eng)
	}

	prof, err := Profile(s.Device)
	if err != nil {
		return nil, err
	}
	if s.WearOut {
		// Bad-block handling armed: a small reserve pool and a patrol
		// scrubber aggressive enough to find planted damage mid-campaign.
		prof.FTL.ReserveBlocks = 2
		prof.FTL.ScrubInterval = 5 * time.Millisecond
	}
	dev, err := buildDevice(eng, prof, s)
	if err != nil {
		return nil, err
	}
	if s.WearOut {
		if err := armWearOut(eng, dev); err != nil {
			return nil, err
		}
	}
	members := memberDevices(dev)
	for i, m := range members {
		arr, hasArr := m.(interface{ Array() *nand.Array })
		if hasArr {
			fl := arr.Array().Faults()
			fl.InterruptedErase = o.InterruptedErase
			if i == 0 {
				fl.DumpTearAfter = o.DumpTearAfter
			}
			arr.Array().SetFaults(fl)
		}
		if o.EventFn != nil {
			member := i
			m.Registry().SetEventFn(func(kind iotrace.EventKind, at time.Duration) {
				o.EventFn(member, kind, at)
			})
		}
	}
	fs := host.NewFS(dev, s.Barrier)

	h, err := newHarness(s)
	if err != nil {
		return nil, err
	}
	if err := h.open(eng, fs); err != nil {
		return nil, err
	}

	// Writer clients: update random rows, commit, record acked versions.
	acked := make(map[buffer.PageID]uint64)
	ackedCount := 0
	perClient := s.Updates / s.Clients
	for c := 0; c < s.Clients; c++ {
		rng := rand.New(rand.NewSource(s.Seed + int64(c)*7_919))
		eng.Go(fmt.Sprintf("writer-%d", c), func(p *sim.Proc) {
			for i := 0; i < perClient; i++ {
				touched, err := h.update(p, rng.Int63n(tableRows))
				if err != nil {
					return // power failed mid-operation
				}
				// The commit was acknowledged: its versions must survive.
				for id, ver := range touched {
					if ver > acked[id] {
						acked[id] = ver
					}
				}
				ackedCount++
			}
		})
	}

	cycler := dev.(storage.PowerCycler)
	if !o.NoCut {
		cut := s.CutAfter
		if cut == 0 {
			rng := rand.New(rand.NewSource(s.Seed ^ 0x5eed))
			cut = time.Duration(1+rng.Intn(29)) * time.Millisecond
		}
		eng.Schedule(cut, func() { cycler.PowerFail() })
	}
	eng.Run()
	h.close()
	for _, m := range members {
		m.Registry().SetEventFn(nil) // the schedule covers the workload only
	}
	v.AckedCommits = ackedCount
	for _, m := range members {
		v.DumpPages += m.Stats().DumpPages
		v.DumpRetries += m.Stats().DumpRetries
		v.LostDevPages += m.Stats().LostPages
	}

	// Reboot the device (firmware recovery) and the engine (torn-page
	// repair + redo).
	var auditErr error
	eng.Go("recovery", func(p *sim.Proc) {
		if err := cycler.Reboot(p); err != nil {
			auditErr = fmt.Errorf("device reboot: %w", err)
			return
		}
		redo, torn, err := h.recoverCrashed(p, eng, fs)
		if err != nil {
			auditErr = fmt.Errorf("engine recovery: %w", err)
			return
		}
		defer h.closeRecovered()
		v.TornPages = torn
		v.RedoApplied = redo
		// Audit: every acked page version must be present (or newer).
		for id, want := range acked {
			got, ok, err := h.pageVersionOnDisk(p, id)
			if err != nil {
				auditErr = err
				return
			}
			if !ok || got < want {
				v.LostCommits++
			}
		}
	})
	eng.Run()
	for _, m := range members {
		for o := iotrace.Origin(0); o < iotrace.NumOrigins; o++ {
			c := m.Registry().Origin(o)
			v.Origins[o].PagesWritten += c.PagesWritten
			v.Origins[o].PagesRead += c.PagesRead
			v.Origins[o].NANDSlots += c.NANDSlots
			v.Origins[o].GCSlots += c.GCSlots
		}
	}
	if auditErr != nil {
		v.Err = auditErr
		v.TornPages, v.RedoApplied = 0, 0
		return v, nil
	}
	return v, nil
}

const (
	// wearFillerSlots is the size of the cold filler region preloaded at the
	// top of the address space for WearOut scenarios — far above the
	// database files, so the damaged page is never part of the commit audit.
	wearFillerSlots = 64
	// wearInjectAt is the virtual instant the stuck damage is planted.
	wearInjectAt = 2 * time.Millisecond
)

// armWearOut preloads the filler region and schedules the mid-workload
// damage injection on it. The scrubber (enabled via the profile) finds the
// unreadable page on patrol and retires its block, so retirement and its
// live-data migration happen during the recorded schedule.
func armWearOut(eng *sim.Engine, dev storage.Device) error {
	pl, okPl := dev.(interface {
		PreloadPages(lpn storage.LPN, n int64, data []byte) error
	})
	mf, okMf := dev.(storage.MediaFaulter)
	if !okPl || !okMf {
		return fmt.Errorf("faults: device does not support wear-out arming")
	}
	base := storage.LPN(dev.Pages() - wearFillerSlots)
	if err := pl.PreloadPages(base, wearFillerSlots, nil); err != nil {
		return fmt.Errorf("faults: wear filler preload: %w", err)
	}
	eng.Schedule(wearInjectAt, func() { mf.InjectReadErrors(base+3, 1000) })
	return nil
}

// buildDevice assembles the device under test: a single drive, or a volume
// of identical drives per the scenario's layout.
func buildDevice(eng *sim.Engine, prof ssd.Profile, s Scenario) (storage.Device, error) {
	if s.Layout == Single {
		return ssd.New(eng, prof)
	}
	members := make([]storage.Device, s.Width)
	for i := range members {
		m, err := ssd.New(eng, prof)
		if err != nil {
			return nil, err
		}
		members[i] = m
	}
	switch s.Layout {
	case Striped:
		return vol.NewStriped(eng, members, 0)
	case Mirror:
		return vol.NewMirror(eng, members)
	}
	return nil, fmt.Errorf("faults: unknown layout %q", s.Layout)
}

// memberDevices returns the physical drives behind dev: the volume members
// when dev is composed, dev itself otherwise. Firmware-level counters
// (dump pages, lost pages, per-origin NAND traffic) live on the members.
func memberDevices(dev storage.Device) []storage.Device {
	if m, ok := dev.(interface{ Members() []storage.Device }); ok {
		return m.Members()
	}
	return []storage.Device{dev}
}
