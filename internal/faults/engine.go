package faults

import (
	"fmt"

	"durassd/internal/dbsim/buffer"
	"durassd/internal/dbsim/index"
	"durassd/internal/host"
	"durassd/internal/innodb"
	"durassd/internal/pgsql"
	"durassd/internal/sim"
	"durassd/internal/storage"
)

// EngineKind selects the database engine under test.
type EngineKind string

// Engines under test. Both implement torn-page protection in software —
// InnoDB with the double-write buffer, PostgreSQL with full-page writes —
// and both can switch it off, which is only safe on a device with atomic
// page writes (the paper's §2.1).
const (
	EngineInnoDB EngineKind = "innodb" // default
	EnginePgSQL  EngineKind = "pgsql"
)

// engineHarness abstracts the two database engines over the surface a crash
// experiment needs: open + load, committed updates, crash-recover, and a
// raw page-version audit.
type engineHarness interface {
	// open creates the engine on fs, creates the table and bulk-loads it.
	open(eng *sim.Engine, fs *host.FS) error
	// update runs one committed single-row update and returns the page
	// versions the acknowledged transaction touched.
	update(p *sim.Proc, rank int64) (map[buffer.PageID]uint64, error)
	// close releases the pre-crash engine (stops its background procs).
	close()
	// recoverCrashed reopens a fresh engine over the same files (after the
	// device rebooted) and runs crash recovery, reporting redo progress and
	// unrepairable torn pages.
	recoverCrashed(p *sim.Proc, eng *sim.Engine, fs *host.FS) (redoApplied, tornUnrepaired int, err error)
	// pageVersionOnDisk audits one page against the recovered engine.
	pageVersionOnDisk(p *sim.Proc, id buffer.PageID) (uint64, bool, error)
	// closeRecovered releases the post-crash engine.
	closeRecovered()
}

const (
	tableRows = 4_000
	rowBytes  = 200
	maxRows   = 8_000
)

func newHarness(s Scenario) (engineHarness, error) {
	switch s.Engine {
	case EngineInnoDB:
		return &innodbHarness{cfg: innodb.Config{
			PageBytes:    4 * storage.KB,
			BufferBytes:  256 * storage.KB, // tiny pool: changes reach the device fast
			DoubleWrite:  s.DoubleWrite,
			DataPages:    20_000,
			LogFilePages: 4_000,
			LogFiles:     1,
			RealBytes:    true,
		}}, nil
	case EnginePgSQL:
		return &pgsqlHarness{cfg: pgsql.Config{
			PageBytes:      8 * storage.KB, // PostgreSQL page over two 4 KB device slots
			BufferBytes:    256 * storage.KB,
			FullPageWrites: s.DoubleWrite,
			DataPages:      10_000,
			LogFilePages:   4_000,
			LogFiles:       1,
			RealBytes:      true,
		}}, nil
	}
	return nil, fmt.Errorf("faults: unknown engine %q", s.Engine)
}

type innodbHarness struct {
	cfg   innodb.Config
	e, e2 *innodb.Engine
	table *innodb.Table
}

func (h *innodbHarness) open(eng *sim.Engine, fs *host.FS) error {
	e, err := innodb.Open(eng, fs, fs, h.cfg)
	if err != nil {
		return err
	}
	h.e = e
	h.table, err = e.CreateTable("t", index.Config{RowBytes: rowBytes, MaxRows: maxRows})
	if err != nil {
		return err
	}
	return h.table.BulkLoad(tableRows)
}

func (h *innodbHarness) update(p *sim.Proc, rank int64) (map[buffer.PageID]uint64, error) {
	tx := h.e.Begin()
	if err := tx.Update(p, h.table, rank); err != nil {
		return nil, err
	}
	if err := tx.Commit(p); err != nil {
		return nil, err
	}
	return tx.Touched(), nil
}

func (h *innodbHarness) close() { h.e.Close() }

func (h *innodbHarness) recoverCrashed(p *sim.Proc, eng *sim.Engine, fs *host.FS) (int, int, error) {
	e2, err := innodb.Reopen(eng, fs, fs, h.cfg)
	if err != nil {
		return 0, 0, err
	}
	h.e2 = e2
	rep, err := e2.Recover(p)
	if err != nil {
		e2.Close()
		return 0, 0, err
	}
	return rep.RedoApplied, rep.TornUnrepaired, nil
}

func (h *innodbHarness) pageVersionOnDisk(p *sim.Proc, id buffer.PageID) (uint64, bool, error) {
	return h.e2.PageVersionOnDisk(p, id)
}

func (h *innodbHarness) closeRecovered() { h.e2.Close() }

type pgsqlHarness struct {
	cfg   pgsql.Config
	e, e2 *pgsql.Engine
	table *pgsql.Table
}

func (h *pgsqlHarness) open(eng *sim.Engine, fs *host.FS) error {
	e, err := pgsql.Open(eng, fs, fs, h.cfg)
	if err != nil {
		return err
	}
	h.e = e
	h.table, err = e.CreateTable("t", index.Config{RowBytes: rowBytes, MaxRows: maxRows})
	if err != nil {
		return err
	}
	return h.table.BulkLoad(tableRows)
}

func (h *pgsqlHarness) update(p *sim.Proc, rank int64) (map[buffer.PageID]uint64, error) {
	tx := h.e.Begin()
	if err := tx.Update(p, h.table, rank); err != nil {
		return nil, err
	}
	if err := tx.Commit(p); err != nil {
		return nil, err
	}
	return tx.Touched(), nil
}

func (h *pgsqlHarness) close() { h.e.Close() }

func (h *pgsqlHarness) recoverCrashed(p *sim.Proc, eng *sim.Engine, fs *host.FS) (int, int, error) {
	e2, err := pgsql.Reopen(eng, fs, fs, h.cfg)
	if err != nil {
		return 0, 0, err
	}
	h.e2 = e2
	rep, err := e2.Recover(p)
	if err != nil {
		e2.Close()
		return 0, 0, err
	}
	return rep.RedoApplied, rep.TornUnrepaired, nil
}

func (h *pgsqlHarness) pageVersionOnDisk(p *sim.Proc, id buffer.PageID) (uint64, bool, error) {
	return h.e2.PageVersionOnDisk(p, id)
}

func (h *pgsqlHarness) closeRecovered() { h.e2.Close() }
