package faults

import "testing"

func runTrials(t *testing.T, s Scenario, trials int) (lost, torn, acked int) {
	t.Helper()
	for i := 0; i < trials; i++ {
		s.Seed = int64(i + 1)
		v, err := Run(s)
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		if v.Err != nil {
			t.Fatalf("trial %d audit: %v", i, v.Err)
		}
		lost += v.LostCommits
		torn += v.TornPages
		acked += v.AckedCommits
	}
	return
}

func TestDuraSSDFastConfigIsSafe(t *testing.T) {
	// The paper's headline: barriers off, double-write off, and still no
	// acknowledged commit is ever lost and no page is ever torn.
	lost, torn, acked := runTrials(t, Scenario{
		Device: DuraSSD, Barrier: false, DoubleWrite: false,
	}, 10)
	if acked == 0 {
		t.Fatal("no commits acknowledged before the cut; scenario too short")
	}
	if lost != 0 || torn != 0 {
		t.Fatalf("DuraSSD OFF/OFF lost %d commits, %d torn pages across trials", lost, torn)
	}
}

func TestDuraSSDDefaultConfigIsSafe(t *testing.T) {
	lost, torn, _ := runTrials(t, Scenario{
		Device: DuraSSD, Barrier: true, DoubleWrite: true,
	}, 4)
	if lost != 0 || torn != 0 {
		t.Fatalf("DuraSSD ON/ON lost %d commits, %d torn pages", lost, torn)
	}
}

func TestVolatileSSDFastConfigLosesData(t *testing.T) {
	// The counterexample: the same fast configuration on a volatile-cache
	// drive must lose acknowledged commits across enough trials.
	lost, _, acked := runTrials(t, Scenario{
		Device: SSDA, Barrier: false, DoubleWrite: false,
	}, 10)
	if acked == 0 {
		t.Fatal("no commits acknowledged before the cut")
	}
	if lost == 0 {
		t.Fatal("volatile SSD with barriers off lost nothing across 10 power cuts — the unsafety the paper warns about is not being modeled")
	}
}

func TestDuraSSDVolumesStaySafe(t *testing.T) {
	// Composing DuraSSDs into a stripe or mirror must not weaken the
	// guarantee: the power cut hits every member, and every member's
	// durable cache holds.
	for _, layout := range []struct {
		layout Layout
		width  int
	}{{Striped, 4}, {Mirror, 2}} {
		lost, torn, acked := runTrials(t, Scenario{
			Device: DuraSSD, Layout: layout.layout, Width: layout.width,
			Barrier: false, DoubleWrite: false,
		}, 5)
		if acked == 0 {
			t.Fatalf("%s-%d: no commits acknowledged before the cut", layout.layout, layout.width)
		}
		if lost != 0 || torn != 0 {
			t.Fatalf("DuraSSD %s-%d OFF/OFF lost %d commits, %d torn pages", layout.layout, layout.width, lost, torn)
		}
	}
}

func TestVolatileMirrorIsNotDurable(t *testing.T) {
	// Redundancy is orthogonal to cache durability: both mirror copies
	// lose their volatile caches at the same instant, so acknowledged
	// commits still disappear.
	lost, _, acked := runTrials(t, Scenario{
		Device: SSDA, Layout: Mirror, Width: 2,
		Barrier: false, DoubleWrite: false,
	}, 10)
	if acked == 0 {
		t.Fatal("no commits acknowledged before the cut")
	}
	if lost == 0 {
		t.Fatal("mirrored volatile SSDs lost nothing across 10 power cuts — mirroring must not substitute for a durable cache")
	}
}

func TestPgSQLDuraSSDFastConfigIsSafe(t *testing.T) {
	// The same headline holds for PostgreSQL: full-page writes off,
	// barriers off, and the durable cache still loses nothing.
	lost, torn, acked := runTrials(t, Scenario{
		Device: DuraSSD, Engine: EnginePgSQL, Barrier: false, DoubleWrite: false,
	}, 6)
	if acked == 0 {
		t.Fatal("no commits acknowledged before the cut")
	}
	if lost != 0 || torn != 0 {
		t.Fatalf("pgsql DuraSSD OFF/OFF lost %d commits, %d torn pages", lost, torn)
	}
}

func TestPgSQLVolatileSSDFastConfigLosesData(t *testing.T) {
	lost, _, acked := runTrials(t, Scenario{
		Device: SSDA, Engine: EnginePgSQL, Barrier: false, DoubleWrite: false,
	}, 8)
	if acked == 0 {
		t.Fatal("no commits acknowledged before the cut")
	}
	if lost == 0 {
		t.Fatal("pgsql on a volatile SSD with barriers off lost nothing across 8 power cuts")
	}
}

func TestPgSQLVolatileSSDSafeConfigKeepsCommits(t *testing.T) {
	lost, torn, _ := runTrials(t, Scenario{
		Device: SSDA, Engine: EnginePgSQL, Barrier: true, DoubleWrite: true,
	}, 4)
	if lost != 0 || torn != 0 {
		t.Fatalf("pgsql safe config lost %d commits, %d torn pages", lost, torn)
	}
}

func TestVolatileSSDSafeConfigKeepsCommits(t *testing.T) {
	// Barriers on + double-write on protects even the volatile drive.
	lost, torn, _ := runTrials(t, Scenario{
		Device: SSDA, Barrier: true, DoubleWrite: true,
	}, 6)
	if lost != 0 {
		t.Fatalf("volatile SSD in the safe config lost %d commits", lost)
	}
	if torn != 0 {
		t.Fatalf("volatile SSD in the safe config left %d torn pages", torn)
	}
}
