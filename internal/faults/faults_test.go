package faults

import "testing"

func runTrials(t *testing.T, s Scenario, trials int) (lost, torn, acked int) {
	t.Helper()
	for i := 0; i < trials; i++ {
		s.Seed = int64(i + 1)
		v, err := Run(s)
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		if v.Err != nil {
			t.Fatalf("trial %d audit: %v", i, v.Err)
		}
		lost += v.LostCommits
		torn += v.TornPages
		acked += v.AckedCommits
	}
	return
}

func TestDuraSSDFastConfigIsSafe(t *testing.T) {
	// The paper's headline: barriers off, double-write off, and still no
	// acknowledged commit is ever lost and no page is ever torn.
	lost, torn, acked := runTrials(t, Scenario{
		Device: DuraSSD, Barrier: false, DoubleWrite: false,
	}, 10)
	if acked == 0 {
		t.Fatal("no commits acknowledged before the cut; scenario too short")
	}
	if lost != 0 || torn != 0 {
		t.Fatalf("DuraSSD OFF/OFF lost %d commits, %d torn pages across trials", lost, torn)
	}
}

func TestDuraSSDDefaultConfigIsSafe(t *testing.T) {
	lost, torn, _ := runTrials(t, Scenario{
		Device: DuraSSD, Barrier: true, DoubleWrite: true,
	}, 4)
	if lost != 0 || torn != 0 {
		t.Fatalf("DuraSSD ON/ON lost %d commits, %d torn pages", lost, torn)
	}
}

func TestVolatileSSDFastConfigLosesData(t *testing.T) {
	// The counterexample: the same fast configuration on a volatile-cache
	// drive must lose acknowledged commits across enough trials.
	lost, _, acked := runTrials(t, Scenario{
		Device: SSDA, Barrier: false, DoubleWrite: false,
	}, 10)
	if acked == 0 {
		t.Fatal("no commits acknowledged before the cut")
	}
	if lost == 0 {
		t.Fatal("volatile SSD with barriers off lost nothing across 10 power cuts — the unsafety the paper warns about is not being modeled")
	}
}

func TestVolatileSSDSafeConfigKeepsCommits(t *testing.T) {
	// Barriers on + double-write on protects even the volatile drive.
	lost, torn, _ := runTrials(t, Scenario{
		Device: SSDA, Barrier: true, DoubleWrite: true,
	}, 6)
	if lost != 0 {
		t.Fatalf("volatile SSD in the safe config lost %d commits", lost)
	}
	if torn != 0 {
		t.Fatalf("volatile SSD in the safe config left %d torn pages", torn)
	}
}
