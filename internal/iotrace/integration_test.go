package iotrace_test

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"durassd/internal/host"
	"durassd/internal/iotrace"
	"durassd/internal/sim"
	"durassd/internal/ssd"
)

// driveWorkload runs a seeded mixed read/write/fsync workload against a
// fresh DuraSSD behind the host filesystem and returns the engine and
// device for inspection.
func driveWorkload(t *testing.T, seed int64, tracing bool) (*sim.Engine, *ssd.Device) {
	t.Helper()
	eng := sim.New()
	dev, err := ssd.New(eng, ssd.DuraSSD(32))
	if err != nil {
		t.Fatal(err)
	}
	dev.Registry().EnableTracing(tracing)
	fs := host.NewFS(dev, true)
	file, err := fs.Create("wl", 4096)
	if err != nil {
		t.Fatal(err)
	}
	file.SetOrigin(iotrace.OriginData)
	if err := file.Preload(0, 4096, nil); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 4; c++ {
		rng := rand.New(rand.NewSource(seed + int64(c)*101))
		eng.Go("client", func(p *sim.Proc) {
			for i := 0; i < 120; i++ {
				off := rng.Int63n(4000)
				switch rng.Intn(10) {
				case 0, 1:
					if err := file.ReadPages(p, off, 1, nil); err != nil {
						t.Errorf("read: %v", err)
						return
					}
				case 2:
					if err := file.Fsync(p); err != nil {
						t.Errorf("fsync: %v", err)
						return
					}
				default:
					n := 1 + rng.Intn(4)
					if off+int64(n) > 4096 {
						n = 1
					}
					if err := file.WritePages(p, off, n, nil); err != nil {
						t.Errorf("write: %v", err)
						return
					}
				}
			}
		})
	}
	return eng, dev
}

// checkNesting verifies one finished request's span tree: spans are
// reported in begin order, timestamps are monotone, every span closes, and
// the Depth/interval structure is a proper nesting (children fully inside
// their parents, exclusive time consistent).
func checkNesting(t *testing.T, q iotrace.Req, spans []iotrace.SpanRec, now time.Duration) {
	t.Helper()
	if !q.WellNested() {
		t.Fatalf("%v request mis-nested: %+v", q.Op, spans)
	}
	type open struct {
		end   time.Duration
		child time.Duration
		rec   iotrace.SpanRec
	}
	var stack []open
	var lastStart time.Duration
	for _, sp := range spans {
		if sp.Start < lastStart {
			t.Fatalf("span starts not monotone: %+v", spans)
		}
		lastStart = sp.Start
		if sp.End < sp.Start || sp.End > now {
			t.Fatalf("span interval invalid: %+v (now %v)", sp, now)
		}
		// Pop ancestors that ended before this span began.
		for len(stack) > 0 && stack[len(stack)-1].end <= sp.Start {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				stack[len(stack)-1].child += top.end - top.rec.Start
			}
		}
		if sp.Depth != len(stack) {
			t.Fatalf("span depth %d, expected %d: %+v", sp.Depth, len(stack), spans)
		}
		if len(stack) > 0 && sp.End > stack[len(stack)-1].end {
			t.Fatalf("child span escapes parent: %+v", spans)
		}
		if sp.Excl < 0 || sp.Excl > sp.End-sp.Start {
			t.Fatalf("exclusive time out of range: %+v", sp)
		}
		stack = append(stack, open{end: sp.End, child: 0, rec: sp})
	}
}

// TestSpanTreesWellNested is the tentpole's property test: every request
// finished during a concurrent mixed workload yields a well-nested,
// monotone span tree whose exclusive times are consistent.
func TestSpanTreesWellNested(t *testing.T) {
	eng, dev := driveWorkload(t, 42, true)
	finished := 0
	dev.Registry().SetSpanSink(func(q iotrace.Req, spans []iotrace.SpanRec) {
		finished++
		checkNesting(t, q, spans, eng.Now())
	})
	eng.Run()
	if finished < 400 {
		t.Fatalf("only %d traced requests finished", finished)
	}
	// Exclusive layer times must sum to no more than total request time
	// (they are a partition of traced wall time minus untraced gaps).
	reg := dev.Registry()
	var layerSum time.Duration
	for l := iotrace.Layer(0); l < iotrace.NumLayers; l++ {
		layerSum += reg.LayerLatency(l).Sum()
	}
	var opSum time.Duration
	for o := iotrace.Op(0); o < iotrace.NumOps; o++ {
		opSum += reg.OpLatency(o).Sum()
	}
	if layerSum > opSum {
		t.Fatalf("exclusive layer time %v exceeds end-to-end op time %v", layerSum, opSum)
	}
}

// TestTracingDoesNotPerturbSimulation is the determinism guarantee: the
// same seed must produce bit-identical device stats and the same virtual
// end time whether tracing is on or off.
func TestTracingDoesNotPerturbSimulation(t *testing.T) {
	engOff, devOff := driveWorkload(t, 7, false)
	engOff.Run()
	engOn, devOn := driveWorkload(t, 7, true)
	engOn.Run()

	if engOff.Now() != engOn.Now() {
		t.Fatalf("virtual end time differs: tracing off %v, on %v", engOff.Now(), engOn.Now())
	}
	if !reflect.DeepEqual(*devOff.Stats(), *devOn.Stats()) {
		t.Fatalf("stats differ:\noff: %+v\non:  %+v", *devOff.Stats(), *devOn.Stats())
	}
	for o := iotrace.Origin(0); o < iotrace.NumOrigins; o++ {
		if *devOff.Registry().Origin(o) != *devOn.Registry().Origin(o) {
			t.Fatalf("origin %v counters differ", o)
		}
	}
	if devOn.Registry().OpLatency(iotrace.OpWrite).Count() == 0 {
		t.Fatal("traced run recorded no write latencies")
	}
	if devOff.Registry().OpLatency(iotrace.OpWrite).Count() != 0 {
		t.Fatal("untraced run recorded latencies")
	}
}
