package iotrace

import (
	"testing"
	"time"

	"durassd/internal/sim"
)

func TestZeroValueReqIsInertNoops(t *testing.T) {
	var q Req
	if q.Traced() {
		t.Fatal("zero Req claims to be traced")
	}
	// Nil proc everywhere: the disabled path must never touch it.
	sp := q.Begin(nil, LayerNAND)
	sp.End(nil)
	q.Finish(nil)
	if q.Spans() != nil {
		t.Fatal("untraced request recorded spans")
	}
	if !q.WellNested() {
		t.Fatal("untraced request reports mis-nesting")
	}
}

func TestSpanExclusiveTime(t *testing.T) {
	eng := sim.New()
	reg := NewRegistry()
	reg.EnableTracing(true)
	eng.Go("io", func(p *sim.Proc) {
		q := reg.NewReq(p, OpWrite, OriginData, 0, 1)
		outer := q.Begin(p, LayerFirmware)
		p.Sleep(10 * time.Microsecond)
		inner := q.Begin(p, LayerNAND)
		p.Sleep(30 * time.Microsecond)
		inner.End(p)
		p.Sleep(5 * time.Microsecond)
		outer.End(p)
		q.Finish(p)

		spans := q.Spans()
		if len(spans) != 2 {
			t.Fatalf("got %d spans", len(spans))
		}
		fw, nd := spans[0], spans[1]
		if fw.Layer != LayerFirmware || nd.Layer != LayerNAND {
			t.Fatalf("layers = %v, %v", fw.Layer, nd.Layer)
		}
		if fw.Depth != 0 || nd.Depth != 1 {
			t.Fatalf("depths = %d, %d", fw.Depth, nd.Depth)
		}
		// Outer ran 45us total but only 15us exclusively.
		if fw.End-fw.Start != 45*time.Microsecond || fw.Excl != 15*time.Microsecond {
			t.Fatalf("outer dur=%v excl=%v", fw.End-fw.Start, fw.Excl)
		}
		if nd.Excl != 30*time.Microsecond {
			t.Fatalf("inner excl=%v", nd.Excl)
		}
	})
	eng.Run()
	if reg.LayerLatency(LayerFirmware).Mean() != 15*time.Microsecond {
		t.Fatalf("firmware layer mean = %v", reg.LayerLatency(LayerFirmware).Mean())
	}
	if reg.LayerLatency(LayerNAND).Mean() != 30*time.Microsecond {
		t.Fatalf("NAND layer mean = %v", reg.LayerLatency(LayerNAND).Mean())
	}
	if reg.OpLatency(OpWrite).Count() != 1 {
		t.Fatal("op latency not recorded")
	}
}

func TestFinishClosesOpenSpans(t *testing.T) {
	eng := sim.New()
	reg := NewRegistry()
	reg.EnableTracing(true)
	var sunk []SpanRec
	reg.SetSpanSink(func(q Req, spans []SpanRec) { sunk = append(sunk, spans...) })
	eng.Go("io", func(p *sim.Proc) {
		q := reg.NewReq(p, OpFlush, OriginRedo, 0, 0)
		q.Begin(p, LayerFlushDrain)
		q.Begin(p, LayerFTL)
		p.Sleep(time.Microsecond)
		q.Finish(p) // both spans still open
		if !q.WellNested() {
			t.Error("auto-closed spans flagged as mis-nested")
		}
	})
	eng.Run()
	if len(sunk) != 2 {
		t.Fatalf("sink saw %d spans, want 2", len(sunk))
	}
	for _, sp := range sunk {
		if sp.End < sp.Start {
			t.Fatalf("span not closed: %+v", sp)
		}
	}
}

func TestMisNestedEndFlagsTrace(t *testing.T) {
	eng := sim.New()
	reg := NewRegistry()
	reg.EnableTracing(true)
	eng.Go("io", func(p *sim.Proc) {
		q := reg.NewReq(p, OpRead, OriginUnknown, 0, 1)
		a := q.Begin(p, LayerHostQueue)
		q.Begin(p, LayerNAND)
		a.End(p) // out of order: inner NAND span still open
		if q.WellNested() {
			t.Error("out-of-order End not detected")
		}
		q.Finish(p)
	})
	eng.Run()
}

func TestDisabledNewReqNeverTouchesProc(t *testing.T) {
	reg := NewRegistry()
	// A nil proc would panic if the disabled path read the clock.
	q := reg.NewReq(nil, OpWrite, OriginData, 7, 2)
	if q.Traced() {
		t.Fatal("request traced while tracing disabled")
	}
	if q.LPN != 7 || q.N != 2 || q.Op != OpWrite || q.Origin != OriginData {
		t.Fatalf("request fields lost: %+v", q)
	}
}

func TestTracingTogglePerRequest(t *testing.T) {
	eng := sim.New()
	reg := NewRegistry()
	eng.Go("io", func(p *sim.Proc) {
		off := reg.NewReq(p, OpWrite, OriginData, 0, 1)
		reg.EnableTracing(true)
		on := reg.NewReq(p, OpWrite, OriginData, 0, 1)
		if off.Traced() {
			t.Error("request created before enable is traced")
		}
		if !on.Traced() {
			t.Error("request created after enable is untraced")
		}
		on.Finish(p)
		off.Finish(p)
	})
	eng.Run()
}

func TestNamedCounters(t *testing.T) {
	reg := NewRegistry()
	names := reg.CounterNames()
	if len(names) != 28 {
		t.Fatalf("%d counter names", len(names))
	}
	c := reg.Counter("nand_programs")
	if reg.Counter("scrub_passes") == nil {
		t.Fatal("scrub_passes not registered")
	}
	if c == nil {
		t.Fatal("nand_programs not registered")
	}
	*c = 9
	if reg.Stats().NANDPrograms != 9 {
		t.Fatal("named counter not aliased to Stats field")
	}
	if reg.Counter("no_such") != nil {
		t.Fatal("unknown counter name resolved")
	}
}

func TestOriginCountersAndWA(t *testing.T) {
	reg := NewRegistry()
	if reg.OriginWriteAmplification(OriginRedo) != 0 {
		t.Fatal("WA of idle origin not 0")
	}
	reg.AddOriginWrite(OriginRedo, 10)
	reg.AddOriginNAND(OriginRedo, 25)
	reg.AddOriginGC(OriginRedo, 5)
	reg.AddOriginRead(OriginRedo, 3)
	c := reg.Origin(OriginRedo)
	if c.PagesWritten != 10 || c.NANDSlots != 25 || c.GCSlots != 5 || c.PagesRead != 3 {
		t.Fatalf("counters = %+v", c)
	}
	if got := reg.OriginWriteAmplification(OriginRedo); got != 2.5 {
		t.Fatalf("WA = %v", got)
	}
}

func TestEnumStrings(t *testing.T) {
	for o := Op(0); o < NumOps; o++ {
		if o.String() == "op?" {
			t.Fatalf("op %d unnamed", o)
		}
	}
	for o := Origin(0); o < NumOrigins; o++ {
		if o.String() == "origin?" {
			t.Fatalf("origin %d unnamed", o)
		}
	}
	for l := Layer(0); l < NumLayers; l++ {
		if l.String() == "layer?" {
			t.Fatalf("layer %d unnamed", l)
		}
	}
}
