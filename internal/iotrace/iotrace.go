// Package iotrace provides request-scoped I/O tracing and the unified
// metrics registry shared by every simulated device in this repository.
//
// A Req is the context of one host I/O command (or one background firmware
// activity such as a cache write-back): its operation kind, the LPN range it
// covers, the origin of the data (redo log, double-write buffer, data page,
// journal, ...) and — when tracing is enabled — an ordered list of spans
// recorded in virtual time as the request descends through the stack
// (host queue, link, firmware, device cache, flush drain, FTL, GC, NAND).
//
// Tracing is designed around two hard requirements:
//
//   - Zero allocation when disabled. Req is a small value type; with no
//     trace attached, Begin/End/Finish are no-ops that never touch the heap.
//   - Determinism. Recording a span never interacts with the simulation
//     engine (no sleeps, no resource acquisition, no goroutines), so the
//     same seed produces bit-identical simulation results with tracing on
//     or off.
//
// Spans nest strictly (LIFO begin/end per request) and the registry stores
// each span's *exclusive* time — its duration minus the time spent in child
// spans — so a per-layer breakdown is additive: the layer columns of
// `durabench -breakdown` sum to (approximately) the end-to-end latency.
package iotrace

import (
	"time"

	"durassd/internal/sim"
)

// Op is the kind of request being traced.
type Op uint8

// Request kinds.
const (
	OpRead      Op = iota // host read command
	OpWrite               // host write command
	OpFlush               // host flush-cache command
	OpWriteback           // background cache write-back (flusher, HDD drain)
	OpGC                  // background garbage collection
	OpRecovery            // reboot-time device recovery
	OpScrub               // background media scrub patrol
	NumOps
)

var opNames = [NumOps]string{"read", "write", "flush", "writeback", "gc", "recovery", "scrub"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "op?"
}

// Origin tags which database mechanism issued a request — the axis the
// paper's endurance and write-amplification claims are stated along
// (how much of the NAND traffic is the redundant-write scheme?).
type Origin uint8

// Request origins.
const (
	OriginUnknown     Origin = iota
	OriginData               // database data pages
	OriginRedo               // redo / write-ahead log (incl. full-page images)
	OriginDoubleWrite        // InnoDB double-write buffer
	OriginJournal            // rollback / append-only journal (SQLite, Couch)
	OriginMeta               // filesystem metadata (fsync journal commit)
	NumOrigins
)

var originNames = [NumOrigins]string{"unknown", "data", "redo", "double-write", "journal", "meta"}

func (o Origin) String() string {
	if int(o) < len(originNames) {
		return originNames[o]
	}
	return "origin?"
}

// Layer identifies where in the stack a span's time was spent.
type Layer uint8

// Stack layers, host side first.
const (
	LayerHostQueue  Layer = iota // NCQ slot / non-queued-command / arm-queue wait
	LayerLink                    // host link occupancy (protocol + data transfer)
	LayerFirmware                // per-command firmware handling
	LayerCache                   // device write cache: staging ack, hits, admission stalls
	LayerFlushDrain              // flush-cache command: drain wait + completion ack
	LayerFTL                     // mapping, journal, program orchestration
	LayerGC                      // garbage collection (victim scan, relocation overhead)
	LayerNAND                    // NAND plane/channel occupancy (HDD: platter access)
	NumLayers
)

var layerNames = [NumLayers]string{
	"host queue", "link", "firmware", "device cache", "flush drain", "FTL", "GC", "NAND",
}

func (l Layer) String() string {
	if int(l) < len(layerNames) {
		return layerNames[l]
	}
	return "layer?"
}

// Req is the context of one request. It is passed by value through the
// device stack; the zero value is a valid untraced, origin-unknown request.
type Req struct {
	Op     Op
	Origin Origin
	LPN    uint64 // first logical page of the range
	N      int    // pages in the range
	tr     *trace
}

// Span is a handle to an open span. The zero value (returned for untraced
// requests) is a no-op.
type Span struct {
	tr  *trace
	idx int
}

// SpanRec is one recorded span of a finished request.
type SpanRec struct {
	Layer Layer
	Depth int           // nesting depth (0 = top level)
	Start time.Duration // virtual time at Begin
	End   time.Duration // virtual time at End
	Excl  time.Duration // duration minus time spent in child spans
}

// trace is the mutable per-request recording state, allocated only when the
// registry has tracing enabled.
type trace struct {
	reg   *Registry
	start time.Duration
	spans []SpanRec
	stack []int // indices into spans of currently-open spans
	child []time.Duration
	bad   bool // begin/end mis-nesting detected
}

// Traced reports whether this request records spans.
func (r Req) Traced() bool { return r.tr != nil }

// Begin opens a span for layer l at the current virtual time. Every Begin
// must be matched by an End before the enclosing span (or the request)
// ends; spans are strictly nested.
func (r Req) Begin(p *sim.Proc, l Layer) Span {
	t := r.tr
	if t == nil {
		return Span{}
	}
	idx := len(t.spans)
	t.spans = append(t.spans, SpanRec{Layer: l, Depth: len(t.stack), Start: p.Now()})
	t.stack = append(t.stack, idx)
	t.child = append(t.child, 0)
	return Span{tr: t, idx: idx}
}

// End closes the span at the current virtual time. Ending a span that is
// not the innermost open one flags the trace as mis-nested (reported by
// the registry's span sink; the property tests assert it never happens).
func (s Span) End(p *sim.Proc) {
	t := s.tr
	if t == nil {
		return
	}
	top := len(t.stack) - 1
	if top < 0 || t.stack[top] != s.idx {
		t.bad = true
		return
	}
	now := p.Now()
	rec := &t.spans[s.idx]
	rec.End = now
	dur := now - rec.Start
	rec.Excl = dur - t.child[top]
	t.stack = t.stack[:top]
	t.child = t.child[:top]
	if top > 0 {
		t.child[top-1] += dur
	}
}

// Finish completes the request: any still-open spans are closed at the
// current instant (innermost first) and the recorded spans are folded into
// the registry's per-layer and per-op latency histograms.
func (r Req) Finish(p *sim.Proc) {
	t := r.tr
	if t == nil {
		return
	}
	for len(t.stack) > 0 {
		Span{tr: t, idx: t.stack[len(t.stack)-1]}.End(p)
	}
	t.reg.finish(r, p.Now()-t.start)
}

// Spans returns the spans recorded so far (tests and sinks; nil when
// untraced).
func (r Req) Spans() []SpanRec {
	if r.tr == nil {
		return nil
	}
	return r.tr.spans
}

// WellNested reports whether the request's begin/end calls were properly
// paired so far.
func (r Req) WellNested() bool { return r.tr == nil || !r.tr.bad }
