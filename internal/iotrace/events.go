package iotrace

import "time"

// EventKind labels a schedule-relevant device event. Crash-point exploration
// records these during a probe run to enumerate the instants at which a
// power cut is adversarial: right after an acknowledgment, inside a flush
// drain, or while a NAND cell program or block erase is in flight.
type EventKind uint8

// Device events observable by a crash-point recorder.
const (
	EvWriteAck    EventKind = iota // host write command acknowledged
	EvFlushStart                   // flush-cache command admitted; drain begins
	EvFlushEnd                     // flush-cache command completed
	EvProgram                      // NAND cell-program window opened
	EvErase                        // NAND block-erase window opened
	EvRetireStart                  // bad-block retirement: live-data migration begins
	EvRetireEnd                    // bad-block retirement: block moved to retired set
	NumEvents
)

// String returns a short stable label (used in schedule digests).
func (k EventKind) String() string {
	switch k {
	case EvWriteAck:
		return "write-ack"
	case EvFlushStart:
		return "flush-start"
	case EvFlushEnd:
		return "flush-end"
	case EvProgram:
		return "program"
	case EvErase:
		return "erase"
	case EvRetireStart:
		return "retire-start"
	case EvRetireEnd:
		return "retire-end"
	}
	return "unknown"
}

// EventFn receives device events as they happen, stamped with virtual time.
type EventFn func(kind EventKind, at time.Duration)

// SetEventFn installs (or, with nil, removes) the registry's event observer.
// At most one observer is supported; the emission path is a single nil check
// so devices pay nothing when no recorder is attached.
func (r *Registry) SetEventFn(fn EventFn) { r.ev = fn }

// Emit delivers an event to the observer, if any.
func (r *Registry) Emit(kind EventKind, at time.Duration) {
	if r.ev != nil {
		r.ev(kind, at)
	}
}
