package iotrace

import (
	"testing"
	"time"
)

func TestShardRecorderMergeOrder(t *testing.T) {
	r := NewShardRecorder(3)
	regs := []*Registry{NewRegistry(), NewRegistry(), NewRegistry()}
	for i, reg := range regs {
		r.Attach(i, reg)
	}
	// Emit out of global time order and with ties at t=10 across domains:
	// the merge must order ties by domain id, then per-domain seq.
	regs[2].Emit(EvProgram, 10*time.Microsecond)
	regs[0].Emit(EvWriteAck, 20*time.Microsecond)
	regs[1].Emit(EvFlushStart, 10*time.Microsecond)
	regs[1].Emit(EvFlushEnd, 10*time.Microsecond)
	regs[0].Emit(EvWriteAck, 5*time.Microsecond)

	got := r.Merged()
	want := []ShardRec{
		{At: 5 * time.Microsecond, Domain: 0, Seq: 1, Kind: EvWriteAck},
		{At: 10 * time.Microsecond, Domain: 1, Seq: 0, Kind: EvFlushStart},
		{At: 10 * time.Microsecond, Domain: 1, Seq: 1, Kind: EvFlushEnd},
		{At: 10 * time.Microsecond, Domain: 2, Seq: 0, Kind: EvProgram},
		{At: 20 * time.Microsecond, Domain: 0, Seq: 0, Kind: EvWriteAck},
	}
	if len(got) != len(want) {
		t.Fatalf("merged %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("merged[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	if r.Events() != 5 {
		t.Errorf("Events() = %d, want 5", r.Events())
	}
}

func TestShardRecorderDigestStable(t *testing.T) {
	build := func() *ShardRecorder {
		r := NewShardRecorder(2)
		a, b := NewRegistry(), NewRegistry()
		r.Attach(0, a)
		r.Attach(1, b)
		b.Emit(EvErase, 7*time.Microsecond)
		a.Emit(EvProgram, 7*time.Microsecond)
		a.Emit(EvWriteAck, 9*time.Microsecond)
		return r
	}
	if d1, d2 := build().Digest(), build().Digest(); d1 != d2 {
		t.Fatalf("digests differ for identical streams: %s vs %s", d1, d2)
	}
}

func TestSumStats(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Stats().PagesWritten = 10
	a.Stats().NANDPrograms = 25
	b.Stats().PagesWritten = 5
	b.Stats().FlushCommands = 3
	sum := SumStats(a, b)
	if sum.PagesWritten != 15 || sum.NANDPrograms != 25 || sum.FlushCommands != 3 {
		t.Fatalf("SumStats = %+v", sum)
	}
	if got := sum.WriteAmplification(); got != 25.0/15.0 {
		t.Fatalf("summed WA = %v", got)
	}
}
