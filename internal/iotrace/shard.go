package iotrace

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"time"
)

// ShardRec is one device event captured in a cluster domain, stamped with
// the domain id and a per-domain capture sequence. The triple
// (At, Domain, Seq) is a total order: events at one virtual instant are
// reported by ascending domain id, and within a domain in emission order.
type ShardRec struct {
	At     time.Duration
	Domain int
	Seq    uint64
	Kind   EventKind
}

// ShardRecorder collects device event streams from registries living in
// different cluster domains and merges them into one deterministic report.
// Each domain appends only to its own stream, so recording is safe under
// the cluster's parallel workers without locks; Merged and Digest must only
// be called while the cluster is idle (between or after runs).
//
// The merged order — (virtual time, domain id, per-domain seq) — depends
// only on the simulated schedule, never on how worker threads interleaved,
// so a digest taken at 1 worker is byte-identical to one taken at N.
type ShardRecorder struct {
	streams [][]ShardRec
}

// NewShardRecorder returns a recorder for the given number of domains.
func NewShardRecorder(domains int) *ShardRecorder {
	return &ShardRecorder{streams: make([][]ShardRec, domains)}
}

// Attach installs the recorder as reg's event observer, tagging every
// captured event with the given domain id. Multiple registries may share a
// domain; their events interleave in emission order, which the engine's
// dispatch order makes deterministic.
func (r *ShardRecorder) Attach(domain int, reg *Registry) {
	s := &r.streams[domain]
	reg.SetEventFn(func(kind EventKind, at time.Duration) {
		*s = append(*s, ShardRec{At: at, Domain: domain, Seq: uint64(len(*s)), Kind: kind})
	})
}

// Events returns the total number of captured events across all domains.
func (r *ShardRecorder) Events() int {
	n := 0
	for _, s := range r.streams {
		n += len(s)
	}
	return n
}

// Merged returns all captured events in (At, Domain, Seq) order.
func (r *ShardRecorder) Merged() []ShardRec {
	var all []ShardRec
	for _, s := range r.streams {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := &all[i], &all[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Domain != b.Domain {
			return a.Domain < b.Domain
		}
		return a.Seq < b.Seq
	})
	return all
}

// Digest returns a SHA-256 over the merged event stream: the schedule
// fingerprint used by the worker-sweep equality tests.
func (r *ShardRecorder) Digest() string {
	var b strings.Builder
	for _, rec := range r.Merged() {
		fmt.Fprintf(&b, "%d %d %s %d\n", rec.Domain, rec.Seq, rec.Kind, int64(rec.At))
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// SumStats returns the field-wise sum of the registries' cumulative
// counters: one report for a device array that spans domains. Stats is all
// int64 counters; the field walk is in declaration order, so the result is
// deterministic (and new counters are picked up automatically).
func SumStats(regs ...*Registry) Stats {
	var total Stats
	tv := reflect.ValueOf(&total).Elem()
	for _, reg := range regs {
		sv := reflect.ValueOf(reg.Stats()).Elem()
		for i := 0; i < sv.NumField(); i++ {
			tv.Field(i).SetInt(tv.Field(i).Int() + sv.Field(i).Int())
		}
	}
	return total
}
