package iotrace

import (
	"testing"

	"durassd/internal/sim"
)

// TestDisabledPathAllocatesNothing pins the tentpole's zero-allocation
// guarantee: with tracing off, the whole request lifecycle — NewReq,
// Begin/End per layer, Finish — must never touch the heap.
func TestDisabledPathAllocatesNothing(t *testing.T) {
	reg := NewRegistry()
	allocs := testing.AllocsPerRun(1000, func() {
		q := reg.NewReq(nil, OpWrite, OriginData, 42, 8)
		sp := q.Begin(nil, LayerHostQueue)
		inner := q.Begin(nil, LayerNAND)
		inner.End(nil)
		sp.End(nil)
		q.Finish(nil)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates %v times per request", allocs)
	}
}

// BenchmarkDisabledReq measures the per-request overhead of the tracing
// plumbing when tracing is off (the default in every benchmark run).
func BenchmarkDisabledReq(b *testing.B) {
	reg := NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := reg.NewReq(nil, OpWrite, OriginData, uint64(i), 8)
		sp := q.Begin(nil, LayerHostQueue)
		inner := q.Begin(nil, LayerNAND)
		inner.End(nil)
		sp.End(nil)
		q.Finish(nil)
	}
}

// BenchmarkEnabledReq is the traced counterpart, so the cost of turning
// -breakdown on is a one-line comparison away.
func BenchmarkEnabledReq(b *testing.B) {
	reg := NewRegistry()
	reg.EnableTracing(true)
	eng := sim.New()
	b.ReportAllocs()
	eng.Go("bench", func(p *sim.Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := reg.NewReq(p, OpWrite, OriginData, uint64(i), 8)
			sp := q.Begin(p, LayerHostQueue)
			inner := q.Begin(p, LayerNAND)
			inner.End(p)
			sp.End(p)
			q.Finish(p)
		}
	})
	eng.Run()
}
