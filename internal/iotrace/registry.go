package iotrace

import (
	"sort"
	"time"

	"durassd/internal/sim"
	"durassd/internal/stats"
)

// Stats holds per-device counters. All fields are cumulative since device
// creation (they survive power cycles, like a SMART log). The storage
// package aliases this type as storage.Stats, so existing field accesses
// compile unchanged; new code should reach it through a Registry.
type Stats struct {
	ReadCommands  int64 // host read commands completed
	WriteCommands int64 // host write commands completed
	FlushCommands int64 // host flush-cache commands completed
	PagesRead     int64 // host pages transferred in
	PagesWritten  int64 // host pages transferred out

	NANDReads    int64 // physical page reads (incl. GC)
	NANDPrograms int64 // physical page programs (incl. GC, dumps)
	NANDErases   int64 // block erases
	GCPrograms   int64 // programs caused by garbage collection

	CacheHits     int64 // host reads served from the device cache
	CacheEvicts   int64 // cache frames written back
	CacheOverlaps int64 // stale cached copies discarded on overwrite

	DumpPages     int64 // pages flushed to the dump area on power failure
	TornPages     int64 // pages torn by power failure mid-program
	LostPages     int64 // acknowledged pages lost to power failure
	Recoveries    int64 // successful reboot recoveries
	MapFlushPages int64 // mapping-table journal pages programmed

	DumpRetries       int64 // dump programs retried after a torn dump page
	InterruptedErases int64 // block erases interrupted by power failure

	CorrectedBits       int64 // media bit errors corrected by ECC across all reads
	ReadRetries         int64 // NAND read retries after an uncorrectable first attempt
	UncorrectableReads  int64 // reads still uncorrectable after all retries
	RefreshPrograms     int64 // pages rewritten because corrected bits hit the refresh threshold
	RetiredBlocks       int64 // blocks moved to the retired set (wear-out or media failure)
	ScrubPasses         int64 // completed scrubber patrol passes
	ScrubReads          int64 // pages patrolled by the scrubber
	DegradedTransitions int64 // device transitions to read-only (reserve pool exhausted)
	ReadRepairs         int64 // mirror pages repaired from a healthy replica on read
}

// WriteAmplification returns NAND pages programmed per host page written.
// It returns 0 when no host pages have been written.
func (s *Stats) WriteAmplification() float64 {
	if s.PagesWritten == 0 {
		return 0
	}
	return float64(s.NANDPrograms) / float64(s.PagesWritten)
}

// OriginCounters accumulates per-origin traffic so write amplification can
// be attributed to the database mechanism that caused it.
type OriginCounters struct {
	PagesWritten int64 // host pages written with this origin
	PagesRead    int64 // host pages read with this origin
	NANDSlots    int64 // NAND slots programmed on behalf of this origin
	GCSlots      int64 // of NANDSlots, those relocated by garbage collection
}

// WriteAmplification returns NAND slots programmed per host page written
// for this origin, or 0 when the origin wrote nothing.
func (c *OriginCounters) WriteAmplification() float64 {
	if c.PagesWritten == 0 {
		return 0
	}
	return float64(c.NANDSlots) / float64(c.PagesWritten)
}

// Registry is the unified per-device metrics store: the legacy cumulative
// counters (Stats), per-origin traffic counters, per-layer and per-op
// latency histograms, and a name → counter map for generic reporting.
//
// A Registry is confined to its device's simulation; the engine runs one
// process at a time, so no locking is needed (the race detector in CI
// verifies this).
type Registry struct {
	s       Stats
	tracing bool
	origin  [NumOrigins]OriginCounters
	layer   [NumLayers]stats.Hist
	op      [NumOps]stats.Hist
	named   map[string]*int64
	sink    func(Req, []SpanRec)
	ev      EventFn
}

// NewRegistry returns an empty registry with tracing disabled.
func NewRegistry() *Registry {
	r := &Registry{}
	s := &r.s
	r.named = map[string]*int64{
		"read_commands":   &s.ReadCommands,
		"write_commands":  &s.WriteCommands,
		"flush_commands":  &s.FlushCommands,
		"pages_read":      &s.PagesRead,
		"pages_written":   &s.PagesWritten,
		"nand_reads":      &s.NANDReads,
		"nand_programs":   &s.NANDPrograms,
		"nand_erases":     &s.NANDErases,
		"gc_programs":     &s.GCPrograms,
		"cache_hits":      &s.CacheHits,
		"cache_evicts":    &s.CacheEvicts,
		"cache_overlaps":  &s.CacheOverlaps,
		"dump_pages":      &s.DumpPages,
		"torn_pages":      &s.TornPages,
		"lost_pages":      &s.LostPages,
		"recoveries":      &s.Recoveries,
		"map_flush_pages": &s.MapFlushPages,

		"dump_retries":       &s.DumpRetries,
		"interrupted_erases": &s.InterruptedErases,

		"corrected_bits":       &s.CorrectedBits,
		"read_retries":         &s.ReadRetries,
		"uncorrectable_reads":  &s.UncorrectableReads,
		"refresh_programs":     &s.RefreshPrograms,
		"retired_blocks":       &s.RetiredBlocks,
		"scrub_passes":         &s.ScrubPasses,
		"scrub_reads":          &s.ScrubReads,
		"degraded_transitions": &s.DegradedTransitions,
		"read_repairs":         &s.ReadRepairs,
	}
	return r
}

// Stats returns the registry's live legacy counters. Callers may hold the
// pointer across operations; it always reflects current values.
func (r *Registry) Stats() *Stats { return &r.s }

// EnableTracing switches span recording on or off. Requests created while
// tracing is off stay untraced for their whole lifetime.
func (r *Registry) EnableTracing(on bool) { r.tracing = on }

// Tracing reports whether span recording is enabled.
func (r *Registry) Tracing() bool { return r.tracing }

// SetSpanSink installs a callback invoked with every finished traced
// request and its spans (property tests use this to check nesting).
func (r *Registry) SetSpanSink(fn func(Req, []SpanRec)) { r.sink = fn }

// NewReq creates a request context. With tracing disabled this allocates
// nothing and never touches p, so a nil proc is acceptable on that path.
func (r *Registry) NewReq(p *sim.Proc, op Op, origin Origin, lpn uint64, n int) Req {
	q := Req{Op: op, Origin: origin, LPN: lpn, N: n}
	if r != nil && r.tracing {
		q.tr = &trace{reg: r, start: p.Now()}
	}
	return q
}

// finish folds a completed traced request into the histograms.
func (r *Registry) finish(q Req, total time.Duration) {
	if q.Op < NumOps {
		r.op[q.Op].Record(total)
	}
	for _, sp := range q.tr.spans {
		if sp.Layer < NumLayers {
			r.layer[sp.Layer].Record(sp.Excl)
		}
	}
	if r.sink != nil {
		r.sink(q, q.tr.spans)
	}
}

// LayerLatency returns the histogram of exclusive time spent in layer l
// across all finished traced requests.
func (r *Registry) LayerLatency(l Layer) *stats.Hist { return &r.layer[l] }

// OpLatency returns the end-to-end latency histogram for op kind o.
func (r *Registry) OpLatency(o Op) *stats.Hist { return &r.op[o] }

// Origin returns the live traffic counters for origin o.
func (r *Registry) Origin(o Origin) *OriginCounters { return &r.origin[o] }

// OriginWriteAmplification returns the per-origin write amplification,
// guarded against division by zero.
func (r *Registry) OriginWriteAmplification(o Origin) float64 {
	return r.origin[o].WriteAmplification()
}

// AddOriginWrite credits n host pages written to origin o.
func (r *Registry) AddOriginWrite(o Origin, n int) {
	r.origin[o].PagesWritten += int64(n)
}

// AddOriginRead credits n host pages read to origin o.
func (r *Registry) AddOriginRead(o Origin, n int) {
	r.origin[o].PagesRead += int64(n)
}

// AddOriginNAND credits n NAND slot programs to origin o.
func (r *Registry) AddOriginNAND(o Origin, n int) {
	r.origin[o].NANDSlots += int64(n)
}

// AddOriginGC credits n GC-relocated slot programs to origin o (also
// counted in NANDSlots by the caller).
func (r *Registry) AddOriginGC(o Origin, n int) {
	r.origin[o].GCSlots += int64(n)
}

// Counter returns the named legacy counter, or nil if unknown.
func (r *Registry) Counter(name string) *int64 { return r.named[name] }

// RegisterCounter adds a named counter to the registry and returns its
// storage; registering an existing name returns the same counter. Layers
// above the device (the serving gateway's shed/throttle accounting, for
// example) use this to publish their tallies through the same reporting
// surface as the device counters.
func (r *Registry) RegisterCounter(name string) *int64 {
	if c, ok := r.named[name]; ok {
		return c
	}
	c := new(int64)
	r.named[name] = c
	return c
}

// CounterNames returns all registered counter names, sorted.
func (r *Registry) CounterNames() []string {
	names := make([]string, 0, len(r.named))
	for n := range r.named {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
