// Package storage defines the types shared by every simulated storage
// device in this repository: logical page addressing, the Device interface
// the host stack programs against, page checksums used for torn-write
// detection, and per-device statistics.
package storage

import (
	"errors"
	"hash/crc32"

	"durassd/internal/sim"
)

// LPN is a logical page number in the device's address space. One LPN
// addresses one mapping unit (Device.PageSize bytes, 4 KB by default),
// mirroring the paper's DuraSSD which emulates 4 KB pages over 8 KB NAND
// pages.
type LPN uint64

// Common unit sizes.
const (
	KB = 1 << 10
	MB = 1 << 20
	GB = 1 << 30
)

// Errors returned by devices.
var (
	// ErrPowerFail reports that the device lost power while the operation
	// was outstanding; the operation's effect is undefined (the page may be
	// old, new, or torn depending on the device).
	ErrPowerFail = errors.New("storage: power failure during operation")
	// ErrOutOfRange reports an access beyond the device capacity.
	ErrOutOfRange = errors.New("storage: page address out of range")
	// ErrOffline reports an operation submitted to a powered-off device.
	ErrOffline = errors.New("storage: device is offline")
)

// Device is a block storage device operating in virtual time. All methods
// that take a *sim.Proc block the calling process for the simulated duration
// of the operation.
//
// Data buffers may be nil, in which case the device tracks timing and
// page-state metadata only; throughput-oriented workloads use this mode,
// while crash-consistency tests pass real bytes.
type Device interface {
	// PageSize returns the mapping-unit size in bytes.
	PageSize() int
	// Pages returns the device capacity in pages.
	Pages() int64
	// Read reads n consecutive pages starting at lpn as one command.
	// If buf is non-nil it must be n*PageSize bytes and receives the data.
	Read(p *sim.Proc, lpn LPN, n int, buf []byte) error
	// Write writes n consecutive pages starting at lpn as one command.
	// If data is non-nil it must be n*PageSize bytes.
	Write(p *sim.Proc, lpn LPN, n int, data []byte) error
	// Flush executes a flush-cache command: on return, every previously
	// acknowledged write is on stable media (for devices with volatile
	// caches) or already guaranteed (durable caches treat this as a cheap
	// ordering point).
	Flush(p *sim.Proc) error
	// Stats returns the device's live counters.
	Stats() *Stats
}

// PowerCycler is implemented by devices that support power-fault injection.
type PowerCycler interface {
	// PowerFail cuts power instantly. In-flight NAND programs may tear,
	// volatile caches are lost; durable caches execute their capacitor-
	// backed dump. Outstanding commands fail with ErrPowerFail.
	PowerFail()
	// Reboot restores power and runs device-level recovery, returning the
	// simulated recovery duration.
	Reboot(p *sim.Proc) error
}

// Stats holds per-device counters. All fields are cumulative since device
// creation (they survive power cycles, like a SMART log).
type Stats struct {
	ReadCommands  int64 // host read commands completed
	WriteCommands int64 // host write commands completed
	FlushCommands int64 // host flush-cache commands completed
	PagesRead     int64 // host pages transferred in
	PagesWritten  int64 // host pages transferred out

	NANDReads    int64 // physical page reads (incl. GC)
	NANDPrograms int64 // physical page programs (incl. GC, dumps)
	NANDErases   int64 // block erases
	GCPrograms   int64 // programs caused by garbage collection

	CacheHits     int64 // host reads served from the device cache
	CacheEvicts   int64 // cache frames written back
	CacheOverlaps int64 // stale cached copies discarded on overwrite

	DumpPages     int64 // pages flushed to the dump area on power failure
	TornPages     int64 // pages torn by power failure mid-program
	LostPages     int64 // acknowledged pages lost to power failure
	Recoveries    int64 // successful reboot recoveries
	MapFlushPages int64 // mapping-table journal pages programmed
}

// WriteAmplification returns NAND pages programmed per host page written.
// It returns 0 when no host pages have been written.
func (s *Stats) WriteAmplification() float64 {
	if s.PagesWritten == 0 {
		return 0
	}
	return float64(s.NANDPrograms) / float64(s.PagesWritten)
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Checksum computes the CRC-32C of a page image. Database engines stamp it
// into page headers so recovery can detect torn writes.
func Checksum(page []byte) uint32 { return crc32.Checksum(page, crcTable) }
