// Package storage defines the types shared by every simulated storage
// device in this repository: logical page addressing, the Device interface
// the host stack programs against, page checksums used for torn-write
// detection, and per-device statistics.
package storage

import (
	"errors"
	"hash/crc32"

	"durassd/internal/iotrace"
	"durassd/internal/sim"
)

// LPN is a logical page number in the device's address space. One LPN
// addresses one mapping unit (Device.PageSize bytes, 4 KB by default),
// mirroring the paper's DuraSSD which emulates 4 KB pages over 8 KB NAND
// pages.
type LPN uint64

// Common unit sizes.
const (
	KB = 1 << 10
	MB = 1 << 20
	GB = 1 << 30
)

// Errors returned by devices.
var (
	// ErrPowerFail reports that the device lost power while the operation
	// was outstanding; the operation's effect is undefined (the page may be
	// old, new, or torn depending on the device).
	ErrPowerFail = errors.New("storage: power failure during operation")
	// ErrOutOfRange reports an access beyond the device capacity.
	ErrOutOfRange = errors.New("storage: page address out of range")
	// ErrOffline reports an operation submitted to a powered-off device.
	ErrOffline = errors.New("storage: device is offline")
	// ErrUncorrectable reports a read whose media bit errors exceeded the
	// ECC correction capability even after read retries. The page's stored
	// data is lost unless a redundant copy (mirror, double-write, log)
	// exists; the host must not treat the returned buffer as valid.
	ErrUncorrectable = errors.New("storage: uncorrectable media error")
	// ErrReadOnly reports a write or flush submitted to a device that has
	// degraded to read-only mode (bad-block reserve pool exhausted). Reads
	// continue to be served.
	ErrReadOnly = errors.New("storage: device degraded to read-only")
)

// Device is a block storage device operating in virtual time. All methods
// that take a *sim.Proc block the calling process for the simulated duration
// of the operation.
//
// Data buffers may be nil, in which case the device tracks timing and
// page-state metadata only; throughput-oriented workloads use this mode,
// while crash-consistency tests pass real bytes.
type Device interface {
	// PageSize returns the mapping-unit size in bytes.
	PageSize() int
	// Pages returns the device capacity in pages.
	Pages() int64
	// Read reads n consecutive pages starting at lpn as one command.
	// If buf is non-nil it must be n*PageSize bytes and receives the data.
	// req carries the request's tracing context and origin tag; pass
	// iotrace.Req{} for untraced, origin-unknown access.
	Read(p *sim.Proc, req iotrace.Req, lpn LPN, n int, buf []byte) error
	// Write writes n consecutive pages starting at lpn as one command.
	// If data is non-nil it must be n*PageSize bytes.
	Write(p *sim.Proc, req iotrace.Req, lpn LPN, n int, data []byte) error
	// Flush executes a flush-cache command: on return, every previously
	// acknowledged write is on stable media (for devices with volatile
	// caches) or already guaranteed (durable caches treat this as a cheap
	// ordering point).
	Flush(p *sim.Proc, req iotrace.Req) error
	// Stats returns the device's live counters.
	Stats() *Stats
	// Registry returns the device's unified metrics registry (counters,
	// per-origin traffic, latency histograms, tracing switch).
	Registry() *iotrace.Registry
}

// PowerCycler is implemented by devices that support power-fault injection.
type PowerCycler interface {
	// PowerFail cuts power instantly. In-flight NAND programs may tear,
	// volatile caches are lost; durable caches execute their capacitor-
	// backed dump. Outstanding commands fail with ErrPowerFail.
	PowerFail()
	// Reboot restores power and runs device-level recovery, returning the
	// simulated recovery duration.
	Reboot(p *sim.Proc) error
}

// MediaFaulter is implemented by devices (and volumes of such devices)
// that support media-fault injection: adding stuck bit errors to the
// on-flash image of a logical page so reads exercise the ECC, read-retry,
// and redundancy paths. Returns false when the page cannot be injected
// (unmapped, dirty in a device cache, or the device has no error model).
type MediaFaulter interface {
	InjectReadErrors(lpn LPN, bits int) bool
}

// Stats holds per-device counters. It is an alias of iotrace.Stats — the
// counters now live inside each device's iotrace.Registry, and Device.Stats
// remains a compatibility view of the same memory.
type Stats = iotrace.Stats

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Checksum computes the CRC-32C of a page image. Database engines stamp it
// into page headers so recovery can detect torn writes.
func Checksum(page []byte) uint32 { return crc32.Checksum(page, crcTable) }
