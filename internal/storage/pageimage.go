package storage

import "encoding/binary"

// Database page images used by the crash-consistency harnesses: a page is
// reproducible from (id, version), carries a CRC-32C over its whole body,
// and therefore detects torn writes exactly the way InnoDB page checksums
// do. The body is deterministic filler, so engines need not keep page
// bytes in memory — only the (id, version) pair.

// PageImageHeader is the byte size of the image header.
const PageImageHeader = 20

// BuildPageImage fills buf (any size >= PageImageHeader) with the canonical
// image of page id at the given version.
func BuildPageImage(buf []byte, id uint64, version uint64) {
	binary.LittleEndian.PutUint64(buf[4:12], id)
	binary.LittleEndian.PutUint64(buf[12:20], version)
	// Deterministic body derived from (id, version).
	seed := id*0x9e3779b97f4a7c15 ^ version*0xbf58476d1ce4e5b9
	for i := PageImageHeader; i < len(buf); i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		buf[i] = byte(seed >> 56)
	}
	binary.LittleEndian.PutUint32(buf[0:4], Checksum(buf[4:]))
}

// ParsePageImage validates buf's checksum and returns the embedded id and
// version. ok is false for torn, corrupt or never-written pages.
func ParsePageImage(buf []byte) (id, version uint64, ok bool) {
	if len(buf) < PageImageHeader {
		return 0, 0, false
	}
	if binary.LittleEndian.Uint32(buf[0:4]) != Checksum(buf[4:]) {
		return 0, 0, false
	}
	return binary.LittleEndian.Uint64(buf[4:12]), binary.LittleEndian.Uint64(buf[12:20]), true
}
