package storage

import (
	"testing"
	"testing/quick"
)

func TestChecksumDetectsFlips(t *testing.T) {
	page := make([]byte, 4096)
	for i := range page {
		page[i] = byte(i)
	}
	sum := Checksum(page)
	page[100] ^= 0x01
	if Checksum(page) == sum {
		t.Fatal("single-bit flip not detected")
	}
}

func TestPageImageRoundTrip(t *testing.T) {
	buf := make([]byte, 4096)
	BuildPageImage(buf, 42, 7)
	id, ver, ok := ParsePageImage(buf)
	if !ok || id != 42 || ver != 7 {
		t.Fatalf("parse = (%d, %d, %v)", id, ver, ok)
	}
}

func TestPageImageDetectsTear(t *testing.T) {
	buf := make([]byte, 4096)
	BuildPageImage(buf, 1, 2)
	// Tear: second half replaced with garbage.
	for i := 2048; i < 4096; i++ {
		buf[i] = byte(0xde ^ i)
	}
	if _, _, ok := ParsePageImage(buf); ok {
		t.Fatal("torn image parsed as valid")
	}
}

func TestPageImageDeterministic(t *testing.T) {
	check := func(id, ver uint64) bool {
		a := make([]byte, 1024)
		b := make([]byte, 1024)
		BuildPageImage(a, id, ver)
		BuildPageImage(b, id, ver)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		gid, gver, ok := ParsePageImage(a)
		return ok && gid == id && gver == ver
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPageImageVersionsDiffer(t *testing.T) {
	a := make([]byte, 1024)
	b := make([]byte, 1024)
	BuildPageImage(a, 5, 1)
	BuildPageImage(b, 5, 2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different versions produced identical images")
	}
}

func TestParsePageImageTooShort(t *testing.T) {
	if _, _, ok := ParsePageImage(make([]byte, 8)); ok {
		t.Fatal("short buffer parsed")
	}
}

func TestWriteAmplification(t *testing.T) {
	s := Stats{}
	if s.WriteAmplification() != 0 {
		t.Fatal("WA of empty stats not 0")
	}
	s.PagesWritten = 100
	s.NANDPrograms = 150
	if got := s.WriteAmplification(); got != 1.5 {
		t.Fatalf("WA = %v", got)
	}
}
