package storage

import "testing"

// FuzzPageImage round-trips (id, version) through the canonical page image
// and then checks that any single-byte corruption is caught — the property
// the crash harnesses rely on to classify torn pages.
func FuzzPageImage(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint16(PageImageHeader), 0)
	f.Add(uint64(7), uint64(3), uint16(4096), 100)
	f.Add(uint64(1)<<63, ^uint64(0), uint16(512), 3)
	f.Fuzz(func(t *testing.T, id, version uint64, size uint16, flip int) {
		n := int(size)
		if n < PageImageHeader {
			n = PageImageHeader
		}
		buf := make([]byte, n)
		BuildPageImage(buf, id, version)
		gotID, gotVer, ok := ParsePageImage(buf)
		if !ok {
			t.Fatalf("canonical image (id=%d ver=%d size=%d) failed validation", id, version, n)
		}
		if gotID != id || gotVer != version {
			t.Fatalf("round trip changed identity: got (%d, %d), want (%d, %d)", gotID, gotVer, id, version)
		}
		if flip < 0 {
			flip = -flip
		}
		flip %= n
		buf[flip] ^= 0x01
		if _, _, ok := ParsePageImage(buf); ok {
			t.Fatalf("single-bit corruption at offset %d/%d went undetected", flip, n)
		}
	})
}

// FuzzParsePageImage feeds arbitrary bytes to the validator: it must never
// panic, and short buffers must always be rejected.
func FuzzParsePageImage(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, PageImageHeader-1))
	f.Add(make([]byte, PageImageHeader))
	f.Add(make([]byte, 4096))
	canonical := make([]byte, 64)
	BuildPageImage(canonical, 5, 9)
	f.Add(canonical)
	f.Fuzz(func(t *testing.T, buf []byte) {
		id, version, ok := ParsePageImage(buf)
		if len(buf) < PageImageHeader && ok {
			t.Fatalf("short buffer (%d bytes) accepted", len(buf))
		}
		if ok {
			// Acceptance must be reproducible: rebuilding the header fields
			// into a canonical image of the same size must also validate.
			rebuilt := make([]byte, len(buf))
			BuildPageImage(rebuilt, id, version)
			if _, _, ok2 := ParsePageImage(rebuilt); !ok2 {
				t.Fatal("canonical rebuild of an accepted image failed validation")
			}
		}
	})
}
