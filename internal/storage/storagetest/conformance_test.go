package storagetest_test

import (
	"testing"
	"time"

	"durassd/internal/hdd"
	"durassd/internal/sim"
	"durassd/internal/ssd"
	"durassd/internal/storage"
	"durassd/internal/storage/storagetest"
	"durassd/internal/vol"
)

func ssdFactory(prof func(int) ssd.Profile) storagetest.Factory {
	return func(t *testing.T) storagetest.Harness {
		t.Helper()
		eng := sim.New()
		d, err := ssd.New(eng, prof(16))
		if err != nil {
			t.Fatal(err)
		}
		return storagetest.Harness{Eng: eng, Dev: d}
	}
}

func members(t *testing.T, eng *sim.Engine, n int) []storage.Device {
	t.Helper()
	ms := make([]storage.Device, n)
	for i := range ms {
		d, err := ssd.New(eng, ssd.DuraSSD(16))
		if err != nil {
			t.Fatal(err)
		}
		ms[i] = d
	}
	return ms
}

// spanFactory builds a striped-4 volume whose members are DuraSSDs in four
// separate cluster domains, fronted by a fifth domain.
func spanFactory(workers int) storagetest.Factory {
	return func(t *testing.T) storagetest.Harness {
		t.Helper()
		c := sim.NewCluster(5, 10*time.Microsecond, workers)
		t.Cleanup(c.Close)
		sm := make([]vol.SpanMember, 4)
		for i := range sm {
			dom := c.Domain(i + 1)
			d, err := ssd.New(dom.Engine(), ssd.DuraSSD(16))
			if err != nil {
				t.Fatal(err)
			}
			sm[i] = vol.SpanMember{Dev: d, Dom: dom}
		}
		v, err := vol.NewStripedSpan(c.Domain(0), sm, 4)
		if err != nil {
			t.Fatal(err)
		}
		return storagetest.Harness{Eng: c.Domain(0).Engine(), Dev: v, Cluster: c}
	}
}

func TestConformance(t *testing.T) {
	suites := []struct {
		name string
		f    storagetest.Factory
	}{
		{"DuraSSD", ssdFactory(ssd.DuraSSD)},
		{"SSD-A", ssdFactory(ssd.SSDA)},
		{"SSD-B", ssdFactory(ssd.SSDB)},
		{"HDD", func(t *testing.T) storagetest.Harness {
			eng := sim.New()
			d, err := hdd.New(eng, hdd.Cheetah15K(64))
			if err != nil {
				t.Fatal(err)
			}
			return storagetest.Harness{Eng: eng, Dev: d}
		}},
		{"Striped", func(t *testing.T) storagetest.Harness {
			eng := sim.New()
			v, err := vol.NewStriped(eng, members(t, eng, 4), 4)
			if err != nil {
				t.Fatal(err)
			}
			return storagetest.Harness{Eng: eng, Dev: v}
		}},
		{"Mirror", func(t *testing.T) storagetest.Harness {
			eng := sim.New()
			v, err := vol.NewMirror(eng, members(t, eng, 2))
			if err != nil {
				t.Fatal(err)
			}
			return storagetest.Harness{Eng: eng, Dev: v}
		}},
		{"Concat", func(t *testing.T) storagetest.Harness {
			eng := sim.New()
			v, err := vol.NewConcat(eng, members(t, eng, 2))
			if err != nil {
				t.Fatal(err)
			}
			return storagetest.Harness{Eng: eng, Dev: v}
		}},
		// A striped volume whose four members each live in their own cluster
		// domain, with the volume front in a fifth: every conformance case —
		// including the power cut during a queued flush — crosses the domain
		// boundary through the virtual-time merge, under parallel workers.
		{"StripedSpan4", spanFactory(1)},
		{"StripedSpan4Parallel", spanFactory(4)},
	}
	for _, s := range suites {
		t.Run(s.name, func(t *testing.T) { storagetest.Run(t, s.f) })
	}
}
