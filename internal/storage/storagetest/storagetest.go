// Package storagetest is a conformance suite for storage.Device
// implementations. Every device in this repository — flash SSDs, the disk,
// and composed volumes — must present the same host-visible contract:
// uniform ErrOutOfRange for commands that touch any page beyond capacity
// (with no partial side effects), ErrOffline after a power cut, durability
// of acknowledged writes once Flush returns, and live Stats/Registry.
//
// Device packages use it as:
//
//	storagetest.Run(t, func(t *testing.T) storagetest.Harness {
//		eng := sim.New()
//		d, err := ssd.New(eng, ssd.DuraSSD(16))
//		...
//		return storagetest.Harness{Eng: eng, Dev: d}
//	})
package storagetest

import (
	"bytes"
	"errors"
	"testing"

	"time"

	"durassd/internal/iotrace"
	"durassd/internal/sim"
	"durassd/internal/storage"
)

// Harness bundles one fresh device on its own engine. For a device that
// spans cluster domains, Eng is the front domain's engine (where host
// processes run) and Cluster is the owning cluster: the suite then drives
// the simulation through Cluster.Run, since a domain-owned engine refuses
// direct Run calls. The factory is responsible for Cluster cleanup
// (typically t.Cleanup(c.Close)).
type Harness struct {
	Eng     *sim.Engine
	Dev     storage.Device
	Cluster *sim.Cluster
}

// run drains the simulation: the whole cluster when the device spans
// domains, the single engine otherwise.
func (h Harness) run() {
	if h.Cluster != nil {
		h.Cluster.Run()
		return
	}
	h.Eng.Run()
}

// Factory builds a fresh powered-on device for one subtest.
type Factory func(t *testing.T) Harness

// Run executes the full conformance suite against devices built by f.
func Run(t *testing.T, f Factory) {
	t.Run("Bounds", func(t *testing.T) { testBounds(t, f(t)) })
	t.Run("OverrunNoSideEffects", func(t *testing.T) { testOverrun(t, f(t)) })
	t.Run("StatsRegistry", func(t *testing.T) { testStatsRegistry(t, f(t)) })
	t.Run("FlushDurability", func(t *testing.T) { testFlushDurability(t, f(t)) })
	t.Run("PowerCycleDuringQueuedFlush", func(t *testing.T) { testPowerCycleDuringQueuedFlush(t, f(t)) })
	t.Run("OfflineAfterPowerFail", func(t *testing.T) { testOffline(t, f(t)) })
	t.Run("MediaErrorCorrectableRead", func(t *testing.T) { testMediaCorrectable(t, f(t)) })
	t.Run("MediaErrorUncorrectablePowerCycle", func(t *testing.T) { testMediaUncorrectable(t, f(t)) })
}

// drive runs fn as one simulated process and drains the engine.
func drive(t *testing.T, h Harness, fn func(p *sim.Proc)) {
	t.Helper()
	h.Eng.Go("storagetest", fn)
	h.run()
}

// testBounds: commands with zero/negative length, starting past the end,
// or addressed beyond 2^63 must fail with ErrOutOfRange.
func testBounds(t *testing.T, h Harness) {
	d := h.Dev
	pages := d.Pages()
	if pages <= 0 {
		t.Fatalf("Pages() = %d", pages)
	}
	cases := []struct {
		name string
		lpn  storage.LPN
		n    int
	}{
		{"zero length", 0, 0},
		{"negative length", 0, -1},
		{"start at capacity", storage.LPN(pages), 1},
		{"start far past capacity", storage.LPN(pages) + 100, 1},
		{"address beyond 2^63", storage.LPN(1) << 63, 1},
		{"address wraps", ^storage.LPN(0), 2},
	}
	drive(t, h, func(p *sim.Proc) {
		for _, c := range cases {
			if err := d.Write(p, iotrace.Req{}, c.lpn, c.n, nil); err != storage.ErrOutOfRange {
				t.Errorf("%s: Write = %v, want ErrOutOfRange", c.name, err)
			}
			if err := d.Read(p, iotrace.Req{}, c.lpn, c.n, nil); err != storage.ErrOutOfRange {
				t.Errorf("%s: Read = %v, want ErrOutOfRange", c.name, err)
			}
		}
	})
	if s := d.Stats(); s.WriteCommands != 0 || s.ReadCommands != 0 {
		t.Errorf("rejected commands counted: %d writes, %d reads", s.WriteCommands, s.ReadCommands)
	}
}

// testOverrun: a multi-page command that starts in range but runs past the
// end must fail whole — ErrOutOfRange and no partial write of the in-range
// prefix. (Regression: per-device checks used to overflow for n near the
// end, admitting partial effects.)
func testOverrun(t *testing.T, h Harness) {
	d := h.Dev
	last := storage.LPN(d.Pages() - 1)
	before := bytes.Repeat([]byte{0x11}, d.PageSize())
	after := bytes.Repeat([]byte{0x22}, 2*d.PageSize())
	drive(t, h, func(p *sim.Proc) {
		if err := d.Write(p, iotrace.Req{}, last, 1, before); err != nil {
			t.Fatalf("seed write: %v", err)
		}
		if err := d.Flush(p, iotrace.Req{}); err != nil {
			t.Fatalf("seed flush: %v", err)
		}
		if err := d.Write(p, iotrace.Req{}, last, 2, after); err != storage.ErrOutOfRange {
			t.Fatalf("overrun Write = %v, want ErrOutOfRange", err)
		}
		buf := make([]byte, d.PageSize())
		if err := d.Read(p, iotrace.Req{}, last, 1, buf); err != nil {
			t.Fatalf("readback: %v", err)
		}
		if !bytes.Equal(buf, before) {
			t.Error("overrun command left a partial side effect on the in-range page")
		}
	})
}

// testStatsRegistry: Stats and Registry are non-nil, live, and count
// completed commands.
func testStatsRegistry(t *testing.T, h Harness) {
	d := h.Dev
	if d.Stats() == nil {
		t.Fatal("Stats() = nil")
	}
	if d.Registry() == nil {
		t.Fatal("Registry() = nil")
	}
	if d.Registry().Stats() != d.Stats() {
		t.Error("Registry().Stats() and Stats() disagree")
	}
	drive(t, h, func(p *sim.Proc) {
		if err := d.Write(p, iotrace.Req{Op: iotrace.OpWrite, Origin: iotrace.OriginData}, 0, 1, nil); err != nil {
			t.Fatalf("Write: %v", err)
		}
		if err := d.Read(p, iotrace.Req{Op: iotrace.OpRead, Origin: iotrace.OriginData}, 0, 1, nil); err != nil {
			t.Fatalf("Read: %v", err)
		}
		if err := d.Flush(p, iotrace.Req{}); err != nil {
			t.Fatalf("Flush: %v", err)
		}
	})
	s := d.Stats()
	if s.WriteCommands != 1 || s.PagesWritten != 1 {
		t.Errorf("write counters = %d commands / %d pages, want 1/1", s.WriteCommands, s.PagesWritten)
	}
	if s.ReadCommands != 1 || s.PagesRead != 1 {
		t.Errorf("read counters = %d commands / %d pages, want 1/1", s.ReadCommands, s.PagesRead)
	}
	if s.FlushCommands != 1 {
		t.Errorf("flush counter = %d, want 1", s.FlushCommands)
	}
	if got := d.Registry().Origin(iotrace.OriginData).PagesWritten; got != 1 {
		t.Errorf("origin write counter = %d, want 1", got)
	}
}

// testFlushDurability: data acknowledged before a Flush must read back
// intact after a power cut and reboot, on every device that supports power
// cycling.
func testFlushDurability(t *testing.T, h Harness) {
	d := h.Dev
	pc, ok := d.(storage.PowerCycler)
	if !ok {
		t.Skip("device does not implement storage.PowerCycler")
	}
	data := bytes.Repeat([]byte{0x5a}, 3*d.PageSize())
	drive(t, h, func(p *sim.Proc) {
		if err := d.Write(p, iotrace.Req{}, 10, 3, data); err != nil {
			t.Fatalf("Write: %v", err)
		}
		if err := d.Flush(p, iotrace.Req{}); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		pc.PowerFail()
		if err := pc.Reboot(p); err != nil {
			t.Fatalf("Reboot: %v", err)
		}
		buf := make([]byte, 3*d.PageSize())
		if err := d.Read(p, iotrace.Req{}, 10, 3, buf); err != nil {
			t.Fatalf("Read after reboot: %v", err)
		}
		if !bytes.Equal(buf, data) {
			t.Error("flushed data lost across power cycle")
		}
	})
}

// testPowerCycleDuringQueuedFlush: power dies while a flush is draining
// queued writes. Data whose flush completed before the cut must survive the
// power cycle on every device; data behind the interrupted flush is only
// required to survive if that flush actually returned success.
func testPowerCycleDuringQueuedFlush(t *testing.T, h Harness) {
	d := h.Dev
	pc, ok := d.(storage.PowerCycler)
	if !ok {
		t.Skip("device does not implement storage.PowerCycler")
	}
	flushed := bytes.Repeat([]byte{0x3c}, 3*d.PageSize())
	queued := bytes.Repeat([]byte{0xc3}, 3*d.PageSize())
	drive(t, h, func(p *sim.Proc) {
		if err := d.Write(p, iotrace.Req{}, 10, 3, flushed); err != nil {
			t.Fatalf("Write: %v", err)
		}
		if err := d.Flush(p, iotrace.Req{}); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		if err := d.Write(p, iotrace.Req{}, 20, 3, queued); err != nil {
			t.Fatalf("Write: %v", err)
		}
	})

	// Second phase: drain the queued writes, with the cut landing inside the
	// drain window (or just after it on devices that flush instantly — then
	// the flush's success makes the queued data part of the contract too).
	var flushErr error
	flushDone := false
	h.Eng.Go("flusher", func(p *sim.Proc) {
		flushErr = d.Flush(p, iotrace.Req{})
		flushDone = true
	})
	h.Eng.Schedule(100*time.Microsecond, func() { pc.PowerFail() })
	h.run()
	if !flushDone {
		t.Fatal("flush proc never returned after the power cut")
	}

	drive(t, h, func(p *sim.Proc) {
		if err := pc.Reboot(p); err != nil {
			t.Fatalf("Reboot: %v", err)
		}
		buf := make([]byte, 3*d.PageSize())
		if err := d.Read(p, iotrace.Req{}, 10, 3, buf); err != nil {
			t.Fatalf("Read after reboot: %v", err)
		}
		if !bytes.Equal(buf, flushed) {
			t.Error("previously flushed data lost across a cut mid queued-flush")
		}
		if flushErr == nil {
			if err := d.Read(p, iotrace.Req{}, 20, 3, buf); err != nil {
				t.Fatalf("Read after reboot: %v", err)
			}
			if !bytes.Equal(buf, queued) {
				t.Error("flush acknowledged before the cut, but its data did not survive")
			}
		}
	})
}

// testMediaCorrectable: a correctable amount of bit damage on a stored page
// must be invisible to the host — the read succeeds and returns the exact
// written bytes (via ECC correction, read retry, or replica repair), on
// every device that supports media-fault injection.
func testMediaCorrectable(t *testing.T, h Harness) {
	d := h.Dev
	mf, ok := d.(storage.MediaFaulter)
	if !ok {
		t.Skip("device does not implement storage.MediaFaulter")
	}
	data := bytes.Repeat([]byte{0xa7}, d.PageSize())
	drive(t, h, func(p *sim.Proc) {
		if err := d.Write(p, iotrace.Req{}, 5, 1, data); err != nil {
			t.Fatalf("Write: %v", err)
		}
		if err := d.Flush(p, iotrace.Req{}); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		if !mf.InjectReadErrors(5, 1) {
			t.Fatal("InjectReadErrors refused a flushed page")
		}
		// Several reads, so devices that rotate across replicas serve the
		// damaged copy at least once.
		for i := 0; i < 4; i++ {
			buf := make([]byte, d.PageSize())
			if err := d.Read(p, iotrace.Req{}, 5, 1, buf); err != nil {
				t.Fatalf("read %d with correctable damage: %v", i, err)
			}
			if !bytes.Equal(buf, data) {
				t.Errorf("read %d: correctable bit error corrupted the returned data", i)
			}
		}
	})
}

// testMediaUncorrectable: with damage beyond the correction capability, the
// contract is "typed error or correct bytes, never wrong bytes": each read
// either fails with storage.ErrUncorrectable or succeeds with the exact
// written data (a redundant volume may heal it). The verdict must hold
// across a power cycle — recovery cannot resurrect unreadable data as good
// — and rewriting the logical page must fully heal it (remap).
func testMediaUncorrectable(t *testing.T, h Harness) {
	d := h.Dev
	mf, ok := d.(storage.MediaFaulter)
	if !ok {
		t.Skip("device does not implement storage.MediaFaulter")
	}
	data := bytes.Repeat([]byte{0x4d}, d.PageSize())
	checkRead := func(p *sim.Proc, label string) {
		// Several reads, so devices that rotate across replicas serve the
		// damaged copy at least once.
		for i := 0; i < 4; i++ {
			buf := make([]byte, d.PageSize())
			err := d.Read(p, iotrace.Req{}, 7, 1, buf)
			switch {
			case err == nil:
				if !bytes.Equal(buf, data) {
					t.Errorf("%s: read %d succeeded but returned wrong bytes", label, i)
				}
			case errors.Is(err, storage.ErrUncorrectable):
				// Typed failure is the honest outcome.
			default:
				t.Errorf("%s: read %d = %v, want nil or ErrUncorrectable", label, i, err)
			}
		}
	}
	drive(t, h, func(p *sim.Proc) {
		if err := d.Write(p, iotrace.Req{}, 7, 1, data); err != nil {
			t.Fatalf("Write: %v", err)
		}
		if err := d.Flush(p, iotrace.Req{}); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		if !mf.InjectReadErrors(7, 1000) {
			t.Fatal("InjectReadErrors refused a flushed page")
		}
		checkRead(p, "before power cycle")
	})
	if pc, ok := d.(storage.PowerCycler); ok {
		drive(t, h, func(p *sim.Proc) {
			pc.PowerFail()
			if err := pc.Reboot(p); err != nil {
				t.Fatalf("Reboot: %v", err)
			}
			checkRead(p, "after power cycle")
		})
	}
	fresh := bytes.Repeat([]byte{0xb2}, d.PageSize())
	drive(t, h, func(p *sim.Proc) {
		if err := d.Write(p, iotrace.Req{}, 7, 1, fresh); err != nil {
			t.Fatalf("healing rewrite: %v", err)
		}
		if err := d.Flush(p, iotrace.Req{}); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		buf := make([]byte, d.PageSize())
		if err := d.Read(p, iotrace.Req{}, 7, 1, buf); err != nil {
			t.Fatalf("Read after healing rewrite: %v", err)
		}
		if !bytes.Equal(buf, fresh) {
			t.Error("rewrite did not heal the damaged logical page")
		}
	})
}

// testOffline: after PowerFail every command fails with ErrOffline until
// Reboot, and a second PowerFail is harmless.
func testOffline(t *testing.T, h Harness) {
	d := h.Dev
	pc, ok := d.(storage.PowerCycler)
	if !ok {
		t.Skip("device does not implement storage.PowerCycler")
	}
	drive(t, h, func(p *sim.Proc) {
		pc.PowerFail()
		pc.PowerFail() // idempotent
		if err := d.Write(p, iotrace.Req{}, 0, 1, nil); err != storage.ErrOffline {
			t.Errorf("offline Write = %v, want ErrOffline", err)
		}
		if err := d.Read(p, iotrace.Req{}, 0, 1, nil); err != storage.ErrOffline {
			t.Errorf("offline Read = %v, want ErrOffline", err)
		}
		if err := d.Flush(p, iotrace.Req{}); err != storage.ErrOffline {
			t.Errorf("offline Flush = %v, want ErrOffline", err)
		}
		if err := pc.Reboot(p); err != nil {
			t.Fatalf("Reboot: %v", err)
		}
		if err := d.Write(p, iotrace.Req{}, 0, 1, nil); err != nil {
			t.Errorf("Write after Reboot: %v", err)
		}
	})
}
