package devfront

import (
	"testing"
	"time"

	"durassd/internal/iotrace"
	"durassd/internal/sim"
	"durassd/internal/storage"
)

func TestCheckRange(t *testing.T) {
	const pages = 1000
	cases := []struct {
		lpn  storage.LPN
		n    int
		want error
	}{
		{0, 1, nil},
		{999, 1, nil},
		{0, 1000, nil},
		{0, 0, storage.ErrOutOfRange},    // zero-length
		{5, -3, storage.ErrOutOfRange},   // negative length
		{1000, 1, storage.ErrOutOfRange}, // starts past the end
		{999, 2, storage.ErrOutOfRange},  // starts in range, runs past the end
		{990, 1000, storage.ErrOutOfRange},
		// Addresses beyond 2^63 must not wrap into the valid range when
		// compared against an int64 capacity.
		{storage.LPN(1) << 63, 1, storage.ErrOutOfRange},
		{^storage.LPN(0), 1, storage.ErrOutOfRange},
		{^storage.LPN(0) - 5, 10, storage.ErrOutOfRange},
	}
	for _, c := range cases {
		if got := CheckRange(c.lpn, c.n, pages); got != c.want {
			t.Errorf("CheckRange(%d, %d, %d) = %v, want %v", c.lpn, c.n, pages, got, c.want)
		}
	}
}

func TestCheckBuf(t *testing.T) {
	if err := CheckBuf("dev: write", nil, 4, 4096); err != nil {
		t.Errorf("nil buffer: %v", err)
	}
	if err := CheckBuf("dev: write", make([]byte, 4*4096), 4, 4096); err != nil {
		t.Errorf("exact buffer: %v", err)
	}
	if err := CheckBuf("dev: write", make([]byte, 4096), 4, 4096); err == nil {
		t.Error("short buffer accepted")
	}
}

func TestPowerGating(t *testing.T) {
	eng := sim.New()
	f := New(eng, Config{Depth: 4}, iotrace.NewRegistry())
	if err := f.Admit(); err != nil {
		t.Fatalf("online Admit: %v", err)
	}
	if err := f.Interrupted(); err != nil {
		t.Fatalf("online Interrupted: %v", err)
	}
	if !f.PowerFail() {
		t.Fatal("first PowerFail reported no-op")
	}
	if f.PowerFail() {
		t.Fatal("second PowerFail not a no-op")
	}
	if err := f.Admit(); err != storage.ErrOffline {
		t.Fatalf("offline Admit = %v", err)
	}
	if err := f.Interrupted(); err != storage.ErrPowerFail {
		t.Fatalf("offline Interrupted = %v", err)
	}
	f.PowerOn()
	if err := f.Admit(); err != nil {
		t.Fatalf("Admit after PowerOn: %v", err)
	}
}

// TestFlushDrainsQueue verifies the non-queued command semantics: a flush
// waits for every outstanding queued command and blocks new ones while it
// runs.
func TestFlushDrainsQueue(t *testing.T) {
	eng := sim.New()
	f := New(eng, Config{Depth: 2, WriteOverhead: time.Microsecond}, iotrace.NewRegistry())

	var cmdDone, flushStart, lateStart time.Duration
	for i := 0; i < 2; i++ {
		eng.Go("cmd", func(p *sim.Proc) {
			f.Enqueue(p, iotrace.Req{})
			p.Sleep(100 * time.Microsecond)
			cmdDone = p.Now()
			f.Dequeue()
		})
	}
	eng.Go("flush", func(p *sim.Proc) {
		p.Sleep(time.Microsecond) // let both commands occupy the queue
		if err := f.FlushEnter(p, iotrace.Req{}); err != nil {
			t.Errorf("FlushEnter: %v", err)
			return
		}
		flushStart = p.Now()
		p.Sleep(50 * time.Microsecond)
		f.FlushExit()
	})
	eng.Go("late", func(p *sim.Proc) {
		p.Sleep(10 * time.Microsecond) // arrives while the flush is pending
		f.Enqueue(p, iotrace.Req{})
		lateStart = p.Now()
		f.Dequeue()
	})
	eng.Run()

	if flushStart < cmdDone {
		t.Fatalf("flush admitted at %v before outstanding commands finished at %v", flushStart, cmdDone)
	}
	if lateStart < flushStart+50*time.Microsecond {
		t.Fatalf("command admitted at %v while the flush held the queue until %v", lateStart, flushStart+50*time.Microsecond)
	}
}

// TestConcurrentFlushesSerialize: flush-cache commands serialize with each
// other even when the queue is idle.
func TestConcurrentFlushesSerialize(t *testing.T) {
	eng := sim.New()
	f := New(eng, Config{Depth: 2}, iotrace.NewRegistry())
	var last time.Duration
	for i := 0; i < 3; i++ {
		eng.Go("flush", func(p *sim.Proc) {
			if err := f.FlushEnter(p, iotrace.Req{}); err != nil {
				t.Errorf("FlushEnter: %v", err)
				return
			}
			p.Sleep(time.Millisecond)
			f.FlushExit()
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	eng.Run()
	if last < 3*time.Millisecond {
		t.Fatalf("3 flushes finished at %v; they must serialize past 3ms", last)
	}
}
