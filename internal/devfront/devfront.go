// Package devfront is the composable host-interface front-end shared by
// every simulated device in this repository. Before it existed, the SSD and
// HDD models each hand-rolled the same plumbing: a native command queue,
// a serialized host link, non-queued flush-cache semantics, power-state
// gating, multi-page range validation and the iotrace span + registry
// wiring. That machinery is the *host-visible* half of a device — identical
// across flash, magnetic and composed (multi-device volume) back-ends — so
// it lives here exactly once.
//
// A Front owns:
//
//   - the command queue (SATA NCQ: a counting resource of queue-depth
//     units; devices without a host-visible queue set Depth 0),
//   - the serialized link (protocol overhead + data transfer at the link
//     rate; one command's transfer occupies the link at a time),
//   - flush-cache admission: flush is a *non-queued* command, so it
//     serializes against other flushes and drains the whole NCQ before it
//     executes — the mechanism behind every "fsync storms poison reads"
//     result in the paper,
//   - the power state (Admit gates new commands with ErrOffline; Interrupted
//     converts a mid-command power cut into ErrPowerFail),
//   - uniform, overflow-safe ErrOutOfRange checking for multi-page
//     commands, and
//   - the device's unified metrics registry plus the host-command counters.
//
// Back-ends (internal/ssd, internal/hdd, internal/vol) compose these
// primitives in the order their hardware would: an SSD write is
// enqueue → transfer-in → firmware → media, an SSD read is
// enqueue → firmware → media → transfer-out, a disk write is
// transfer-in → cache/arm. The Front never sleeps on its own: every
// primitive is explicit, so each device's command timing remains fully
// visible in its own code.
package devfront

import (
	"fmt"
	"time"

	"durassd/internal/iotrace"
	"durassd/internal/sim"
	"durassd/internal/storage"
)

// Config describes the host-visible interface of a device.
type Config struct {
	LinkMBps      int           // serialized link bandwidth; 0 = infinitely fast link
	ReadOverhead  time.Duration // serialized protocol cost per read command
	WriteOverhead time.Duration // serialized protocol cost per write command
	FlushOverhead time.Duration // serialized protocol cost of issuing flush-cache
	Depth         int           // native command queue depth; 0 = no host-visible queue
}

// Front is the host-interface state of one device.
type Front struct {
	cfg       Config
	link      *sim.Resource
	ncq       *sim.Resource // nil when cfg.Depth == 0
	flushLock *sim.Resource // flush-cache commands serialize at the device
	reg       *iotrace.Registry
	stats     *storage.Stats
	offline   bool
}

// New builds a powered-on front with the given interface config, wired to
// the device's metrics registry.
func New(eng *sim.Engine, cfg Config, reg *iotrace.Registry) *Front {
	f := &Front{
		cfg:       cfg,
		link:      sim.NewResource(eng, 1),
		flushLock: sim.NewResource(eng, 1),
		reg:       reg,
		stats:     reg.Stats(),
	}
	if cfg.Depth > 0 {
		f.ncq = sim.NewResource(eng, cfg.Depth)
	}
	return f
}

// Registry returns the device's unified metrics registry.
func (f *Front) Registry() *iotrace.Registry { return f.reg }

// Stats returns the device's live counters.
func (f *Front) Stats() *storage.Stats { return f.stats }

// Depth returns the native command queue depth (0 = unqueued device).
func (f *Front) Depth() int { return f.cfg.Depth }

// Offline reports whether the device is powered off.
func (f *Front) Offline() bool { return f.offline }

// PowerFail marks the device offline and reports whether it was online
// (false means the call was a no-op on an already-dark device).
func (f *Front) PowerFail() bool {
	if f.offline {
		return false
	}
	f.offline = true
	return true
}

// PowerOn restores the power state after a reboot.
func (f *Front) PowerOn() { f.offline = false }

// Admit gates a newly submitted command on the power state.
func (f *Front) Admit() error {
	if f.offline {
		return storage.ErrOffline
	}
	return nil
}

// Interrupted reports ErrPowerFail if power was cut while the command was
// in flight (the command's effect is undefined), nil otherwise.
func (f *Front) Interrupted() error {
	if f.offline {
		return storage.ErrPowerFail
	}
	return nil
}

// CheckRange validates one multi-page command against a device of the given
// capacity: the command must cover at least one page and every page must lie
// inside the device. The comparison is carried out in uint64 so that an
// address beyond 2^63 cannot wrap into the valid range — commands that start
// in range but run past the end fail here, *before* any side effect.
func CheckRange(lpn storage.LPN, n int, pages int64) error {
	if n <= 0 || pages <= 0 {
		return storage.ErrOutOfRange
	}
	if uint64(lpn) >= uint64(pages) || uint64(n) > uint64(pages)-uint64(lpn) {
		return storage.ErrOutOfRange
	}
	return nil
}

// CheckBuf validates an optional data buffer for an n-page command: nil
// (timing-only) or exactly n*pageSize bytes.
func CheckBuf(name string, buf []byte, n, pageSize int) error {
	if buf != nil && len(buf) != n*pageSize {
		return fmt.Errorf("%s: buffer length %d != %d", name, len(buf), n*pageSize) //simlint:allow hotalloc error construction on a malformed request; never taken at steady state
	}
	return nil
}

// AdmitRange combines the power gate and the range check — the uniform
// prologue of every read and write command.
//
//simlint:hotpath
func (f *Front) AdmitRange(lpn storage.LPN, n int, pages int64) error {
	if err := f.Admit(); err != nil {
		return err
	}
	return CheckRange(lpn, n, pages)
}

// Enqueue occupies one command-queue slot, recording the wait as a
// host-queue span. Pair every Enqueue with exactly one Dequeue. Devices
// without a host-visible queue (Depth 0) get a no-op pair. The explicit
// pair (instead of a returned release closure) keeps the per-command hot
// path allocation-free.
//
//simlint:hotpath
func (f *Front) Enqueue(p *sim.Proc, req iotrace.Req) {
	if f.ncq == nil {
		return
	}
	qsp := req.Begin(p, iotrace.LayerHostQueue)
	f.ncq.Acquire(p, 1)
	qsp.End(p)
}

// Dequeue returns the command-queue slot taken by Enqueue.
//
//simlint:hotpath
func (f *Front) Dequeue() {
	if f.ncq != nil {
		f.ncq.Release(1)
	}
}

// xfer returns the serialized link occupancy of moving the given payload:
// per-command protocol overhead plus data transfer at the link rate.
func (f *Front) xfer(bytes int, overhead time.Duration) time.Duration {
	d := overhead
	if f.cfg.LinkMBps > 0 && bytes > 0 {
		d += time.Duration(float64(bytes) / float64(f.cfg.LinkMBps*storage.MB) * float64(time.Second))
	}
	return d
}

// TransferIn occupies the link for a host-to-device transfer of the given
// payload (write command: protocol overhead + data), recorded as a link
// span.
//
//simlint:hotpath
func (f *Front) TransferIn(p *sim.Proc, req iotrace.Req, bytes int) {
	f.occupy(p, req, f.xfer(bytes, f.cfg.WriteOverhead))
}

// TransferOut occupies the link for a device-to-host transfer of the given
// payload (read completion), recorded as a link span.
//
//simlint:hotpath
func (f *Front) TransferOut(p *sim.Proc, req iotrace.Req, bytes int) {
	f.occupy(p, req, f.xfer(bytes, f.cfg.ReadOverhead))
}

func (f *Front) occupy(p *sim.Proc, req iotrace.Req, d time.Duration) {
	lsp := req.Begin(p, iotrace.LayerLink)
	f.link.Use(p, d)
	lsp.End(p)
}

// FlushEnter performs the admission protocol of a flush-cache command:
// link protocol cost, then — because flush-cache is a *non-queued* command —
// serialization against other flushes and a full drain of the command
// queue. Commands arriving while the flush holds the queue wait behind it,
// which is how fsync storms poison read latency. On success the caller owes
// exactly one FlushExit once the device-specific flush work is done; on
// error the admission is rolled back internally and no FlushExit is owed.
func (f *Front) FlushEnter(p *sim.Proc, req iotrace.Req) error {
	if err := f.Admit(); err != nil {
		return err
	}
	if f.cfg.FlushOverhead > 0 {
		f.occupy(p, req, f.cfg.FlushOverhead)
	}
	qsp := req.Begin(p, iotrace.LayerHostQueue)
	f.flushLock.Acquire(p, 1)
	if f.ncq != nil {
		f.ncq.Acquire(p, f.cfg.Depth)
	}
	qsp.End(p)
	if err := f.Interrupted(); err != nil {
		f.FlushExit()
		return err
	}
	return nil
}

// FlushExit releases the flush-cache admission taken by a successful
// FlushEnter.
func (f *Front) FlushExit() {
	if f.ncq != nil {
		f.ncq.Release(f.cfg.Depth)
	}
	f.flushLock.Release(1)
}

// CompleteWrite records a successfully completed n-page host write.
//
//simlint:hotpath
func (f *Front) CompleteWrite(req iotrace.Req, n int) {
	f.stats.WriteCommands++
	f.stats.PagesWritten += int64(n)
	f.reg.AddOriginWrite(req.Origin, n)
}

// CompleteRead records a successfully completed n-page host read.
//
//simlint:hotpath
func (f *Front) CompleteRead(req iotrace.Req, n int) {
	f.stats.ReadCommands++
	f.stats.PagesRead += int64(n)
	f.reg.AddOriginRead(req.Origin, n)
}

// CompleteFlush records a successfully completed flush-cache command.
func (f *Front) CompleteFlush() { f.stats.FlushCommands++ }
