package ftl

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"durassd/internal/iotrace"
	"durassd/internal/nand"
	"durassd/internal/sim"
	"durassd/internal/storage"
)

// newMediaFTL builds an FTL over a NAND array with the given media model.
func newMediaFTL(t *testing.T, eng *sim.Engine, cfg Config, m nand.MediaConfig) *FTL {
	t.Helper()
	ncfg := nand.EnterpriseConfig(16)
	ncfg.Media = m
	reg := iotrace.NewRegistry()
	a, err := nand.New(eng, ncfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(a, cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// fillPages programs `pages` full physical pages with per-slot patterns and
// returns the per-LPN expected byte.
func fillPages(t *testing.T, f *FTL, p *sim.Proc, pages int) {
	t.Helper()
	spp := f.SlotsPerPage()
	ss := f.SlotSize()
	for pg := 0; pg < pages; pg++ {
		batch := make([]SlotWrite, spp)
		for i := range batch {
			lpn := storage.LPN(pg*spp + i)
			batch[i] = SlotWrite{LPN: lpn, Data: bytes.Repeat([]byte{byte(lpn)}, ss)}
		}
		if err := f.Program(p, iotrace.Req{}, batch); err != nil {
			t.Fatalf("fill program %d: %v", pg, err)
		}
	}
}

func TestRetirementMigratesLiveDataAndPinsDamage(t *testing.T) {
	eng := sim.New()
	cfg := defaultTestConfig()
	cfg.ReserveBlocks = 1
	f := newMediaFTL(t, eng, cfg, nand.MediaConfig{})
	spp := f.SlotsPerPage()
	ss := f.SlotSize()
	planes := f.a.Config().Planes()
	eng.Go("io", func(p *sim.Proc) {
		fillPages(t, f, p, 2*planes) // two pages in every plane's first block
		ppn0, ok := f.PhysPageOf(0)
		if !ok {
			t.Error("LPN 0 unmapped after fill")
			return
		}
		if !f.a.InjectBitErrors(ppn0, 1000) {
			t.Error("injection rejected")
			return
		}
		buf := make([]byte, ss)
		if err := f.ReadSlot(p, iotrace.Req{}, 0, buf); !errors.Is(err, storage.ErrUncorrectable) {
			t.Errorf("damaged read = %v, want ErrUncorrectable", err)
		}
		if f.RetiredBlocks() != 1 {
			t.Errorf("RetiredBlocks = %d, want 1", f.RetiredBlocks())
		}
		if got, want := f.ReserveFree(), planes*cfg.ReserveBlocks-1; got != want {
			t.Errorf("ReserveFree = %d, want %d", got, want)
		}
		// Retirement does not hide the damage: the unreadable page's slots
		// stay mapped and keep failing typed until the host rewrites them,
		// while every other slot — including the migrated block-mates —
		// reads back intact.
		for lpn := 0; lpn < 2*planes*spp; lpn++ {
			err := f.ReadSlot(p, iotrace.Req{}, storage.LPN(lpn), buf)
			if lpn < spp {
				if !errors.Is(err, storage.ErrUncorrectable) {
					t.Errorf("slot %d on damaged page: err=%v, want ErrUncorrectable", lpn, err)
				}
				continue
			}
			if err != nil || buf[0] != byte(lpn) {
				t.Errorf("slot %d after retirement: err=%v first=%#x want %#x", lpn, err, buf[0], byte(lpn))
			}
		}
		// A host rewrite heals the damaged slots completely.
		heal := make([]SlotWrite, spp)
		for i := range heal {
			heal[i] = SlotWrite{LPN: storage.LPN(i), Data: bytes.Repeat([]byte{0xee}, ss)}
		}
		if err := f.Program(p, iotrace.Req{}, heal); err != nil {
			t.Errorf("healing rewrite: %v", err)
			return
		}
		if err := f.ReadSlot(p, iotrace.Req{}, 0, buf); err != nil || buf[0] != 0xee {
			t.Errorf("read after rewrite: err=%v first=%#x", err, buf[0])
		}
	})
	eng.Run()
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if f.stats.UncorrectableReads == 0 || f.stats.RetiredBlocks != 1 {
		t.Fatalf("stats = uncorrectable %d retired %d", f.stats.UncorrectableReads, f.stats.RetiredBlocks)
	}
}

func TestReserveExhaustionDegradesToReadOnly(t *testing.T) {
	eng := sim.New()
	cfg := defaultTestConfig()
	cfg.ReserveBlocks = 1
	f := newMediaFTL(t, eng, cfg, nand.MediaConfig{})
	spp := f.SlotsPerPage()
	ss := f.SlotSize()
	planes := f.a.Config().Planes()
	eng.Go("io", func(p *sim.Proc) {
		fillPages(t, f, p, 4*planes)
		buf := make([]byte, ss)
		damage := func(lpn storage.LPN) {
			ppn, ok := f.PhysPageOf(lpn)
			if !ok {
				t.Fatalf("LPN %d unmapped", lpn)
			}
			if !f.a.InjectBitErrors(ppn, 1000) {
				t.Fatalf("injection rejected for LPN %d", lpn)
			}
			if err := f.ReadSlot(p, iotrace.Req{}, lpn, buf); !errors.Is(err, storage.ErrUncorrectable) {
				t.Fatalf("damaged read of %d = %v", lpn, err)
			}
		}
		damage(0)
		plane0 := f.a.PlaneOf(mustPhys(t, f, 0))
		// Find a second victim in the same plane: its retirement drains the
		// plane's one-block reserve and trips the read-only degradation.
		var second storage.LPN
		for lpn := storage.LPN(spp); ; lpn += storage.LPN(spp) {
			ppn, ok := f.PhysPageOf(lpn)
			if !ok {
				t.Error("ran out of candidate LPNs in plane")
				return
			}
			if f.a.PlaneOf(ppn) == plane0 {
				second = lpn
				break
			}
		}
		damage(second)
		if !f.ReadOnly() {
			t.Error("reserve exhausted but FTL not read-only")
		}
		if err := f.Program(p, iotrace.Req{}, []SlotWrite{{LPN: 9}}); !errors.Is(err, storage.ErrReadOnly) {
			t.Errorf("Program while degraded = %v, want ErrReadOnly", err)
		}
		// Reads keep working: degraded means no new writes, not no service.
		for lpn := storage.LPN(0); lpn < storage.LPN(4*planes*spp); lpn++ {
			if lpn < storage.LPN(spp) || (lpn >= second && lpn < second+storage.LPN(spp)) {
				continue // the two deliberately-damaged pages
			}
			if err := f.ReadSlot(p, iotrace.Req{}, lpn, buf); err != nil {
				t.Errorf("read of %d while degraded: %v", lpn, err)
				return
			}
		}
	})
	eng.Run()
	if f.stats.DegradedTransitions != 1 {
		t.Fatalf("DegradedTransitions = %d, want 1", f.stats.DegradedTransitions)
	}
}

func mustPhys(t *testing.T, f *FTL, lpn storage.LPN) nand.PPN {
	t.Helper()
	ppn, ok := f.PhysPageOf(lpn)
	if !ok {
		t.Fatalf("LPN %d unmapped", lpn)
	}
	return ppn
}

func TestRefreshRelocatesAgingPage(t *testing.T) {
	eng := sim.New()
	cfg := defaultTestConfig()
	cfg.RefreshThreshold = 2
	f := newMediaFTL(t, eng, cfg, nand.MediaConfig{Seed: 9, RetentionPerMs: 0.5})
	ss := f.SlotSize()
	eng.Go("io", func(p *sim.Proc) {
		batch := make([]SlotWrite, f.SlotsPerPage())
		for i := range batch {
			batch[i] = SlotWrite{LPN: storage.LPN(i), Data: bytes.Repeat([]byte{0x5a}, ss)}
		}
		if err := f.Program(p, iotrace.Req{}, batch); err != nil {
			t.Errorf("program: %v", err)
			return
		}
		old := mustPhys(t, f, 0)
		p.Sleep(6 * time.Millisecond) // ~3 expected soft errors: past the threshold
		buf := make([]byte, ss)
		if err := f.ReadSlot(p, iotrace.Req{}, 0, buf); err != nil {
			t.Errorf("aged read: %v", err)
			return
		}
		if !bytes.Equal(buf, batch[0].Data) {
			t.Error("aged read returned wrong bytes")
		}
		if now := mustPhys(t, f, 0); now == old {
			t.Error("refresh did not relocate the aging page")
		}
	})
	eng.Run()
	if f.stats.RefreshPrograms == 0 {
		t.Fatal("no refresh programs recorded")
	}
}

// TestScrubberPreventsUncorrectableHostReads is the paper-facing acceptance
// check: under a retention-heavy media model, cold data patrolled by the
// scrubber stays readable forever, while the identical run without
// scrubbing ends with uncorrectable host reads. Run twice, the scrubbed
// campaign must also produce byte-identical counters (determinism).
func TestScrubberPreventsUncorrectableHostReads(t *testing.T) {
	type counters struct {
		ScrubPasses, ScrubReads, RefreshPrograms, CorrectedBits, Uncorrectable int64
	}
	run := func(scrub bool) counters {
		eng := sim.New()
		cfg := defaultTestConfig()
		cfg.ReadRetries = 0 // isolate the scrubber: no retry safety net
		cfg.RefreshThreshold = 2
		cfg.ReserveBlocks = 1
		if scrub {
			cfg.ScrubInterval = 2 * time.Millisecond
		}
		f := newMediaFTL(t, eng, cfg, nand.MediaConfig{Seed: 21, RetentionPerMs: 0.5})
		f.StartScrubber()
		var uncorrectable int64
		eng.Go("host", func(p *sim.Proc) {
			fillPages(t, f, p, 8)
			// 30 ms of cold retention: ~15 expected soft errors per page,
			// far past the 8-bit ECC. The scrubber's patrol-and-refresh is
			// the only thing keeping the data alive.
			for i := 0; i < 15; i++ {
				p.Sleep(2 * time.Millisecond)
				f.NotifyIdle()
			}
			buf := make([]byte, f.SlotSize())
			for lpn := 0; lpn < 8*f.SlotsPerPage(); lpn++ {
				err := f.ReadSlot(p, iotrace.Req{}, storage.LPN(lpn), buf)
				switch {
				case errors.Is(err, storage.ErrUncorrectable):
					uncorrectable++
				case err != nil:
					t.Errorf("read %d: %v", lpn, err)
				case buf[0] != byte(lpn):
					t.Errorf("read %d returned wrong bytes", lpn)
				}
			}
		})
		eng.Run()
		return counters{
			ScrubPasses:     f.stats.ScrubPasses,
			ScrubReads:      f.stats.ScrubReads,
			RefreshPrograms: f.stats.RefreshPrograms,
			CorrectedBits:   f.stats.CorrectedBits,
			Uncorrectable:   uncorrectable,
		}
	}
	scrubbed := run(true)
	if scrubbed.Uncorrectable != 0 {
		t.Fatalf("scrub on: %d uncorrectable host reads, want 0", scrubbed.Uncorrectable)
	}
	if scrubbed.ScrubPasses == 0 || scrubbed.RefreshPrograms == 0 {
		t.Fatalf("scrubber idle: %+v", scrubbed)
	}
	if again := run(true); again != scrubbed {
		t.Fatalf("scrubbed campaign not deterministic:\n first %+v\nsecond %+v", scrubbed, again)
	}
	if unscrubbed := run(false); unscrubbed.Uncorrectable == 0 {
		t.Fatal("control run without scrubbing lost no reads — campaign too gentle to prove anything")
	}
}

func TestEnduranceRetirementDuringGC(t *testing.T) {
	eng := sim.New()
	cfg := defaultTestConfig()
	cfg.OverProvisionPct = 25
	cfg.EnduranceLimit = 3
	cfg.ReserveBlocks = 2
	f := newMediaFTL(t, eng, cfg, nand.MediaConfig{})
	writes := int(f.LogicalSlots()) * 4
	hot := int64(f.LogicalSlots() / 4)
	rng := rand.New(rand.NewSource(2))
	eng.Go("hammer", func(p *sim.Proc) {
		for i := 0; i < writes; i++ {
			lpn := storage.LPN(rng.Int63n(hot))
			err := f.Program(p, iotrace.Req{}, []SlotWrite{{LPN: lpn}})
			if errors.Is(err, storage.ErrReadOnly) {
				return // reserve ran dry under the hammering: valid endgame
			}
			if err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
		}
	})
	eng.Run()
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if f.RetiredBlocks() == 0 {
		t.Fatal("endurance limit never retired a block")
	}
	if f.ReadOnly() && f.stats.DegradedTransitions != 1 {
		t.Fatalf("read-only without exactly one degraded transition: %d", f.stats.DegradedTransitions)
	}
}
