package ftl

import (
	"errors"
	"time"

	"durassd/internal/iotrace"
	"durassd/internal/nand"
	"durassd/internal/sim"
	"durassd/internal/storage"
)

// Media-error handling: read-retry with bounded backoff, rewrite of pages
// whose corrected-bit count crosses the refresh threshold, bad-block
// retirement into the per-plane reserve pool with live-data migration, and
// the background scrubber that patrols cold blocks. When the reserve pool
// runs dry the FTL degrades to read-only (storage.ErrReadOnly) instead of
// risking silent corruption.

// ReadOnly reports whether the FTL has degraded to read-only mode.
func (f *FTL) ReadOnly() bool { return f.readOnly }

// RetiredBlocks returns the number of blocks removed from service.
func (f *FTL) RetiredBlocks() int { return len(f.retired) }

// ReserveFree returns the total blocks remaining in the reserve pool.
func (f *FTL) ReserveFree() int {
	n := 0
	for _, r := range f.reserve {
		n += len(r)
	}
	return n
}

// PhysPageOf returns the physical page currently holding lpn (fault
// injection and white-box tests). ok is false for unmapped slots.
func (f *FTL) PhysPageOf(lpn storage.LPN) (nand.PPN, bool) {
	spn, ok := f.spnOf(lpn)
	if !ok {
		return 0, false
	}
	return nand.PPN(spn / SPN(f.cfg.SlotsPerPage)), true
}

// readPagePhys reads ppn with up to ReadRetries bounded-backoff retries.
// Each retry models a reference-voltage shift: transient errors shrink,
// stuck bits persist. The caller decides retirement policy on failure.
func (f *FTL) readPagePhys(p *sim.Proc, req iotrace.Req, ppn nand.PPN, page []byte) (nand.ReadInfo, error) {
	info, err := f.a.ReadPageRetry(p, req, ppn, page, 0)
	for attempt := 1; err != nil && errors.Is(err, storage.ErrUncorrectable) && attempt <= f.cfg.ReadRetries; attempt++ {
		f.stats.ReadRetries++
		if f.cfg.RetryBackoff > 0 {
			p.Sleep(f.cfg.RetryBackoff * time.Duration(attempt))
		}
		info, err = f.a.ReadPageRetry(p, req, ppn, page, attempt)
	}
	return info, err
}

// noteUncorrectable reacts to a host-visible uncorrectable read: when
// retirement is enabled, the damaged block is migrated and retired so the
// fault cannot spread. Best-effort — a power cut mid-migration leaves the
// block unretired and the next failing read triggers it again.
func (f *FTL) noteUncorrectable(p *sim.Proc, req iotrace.Req, ppn nand.PPN) { //simlint:allow hotalloc cold media-error retirement; runs at most once per damaged page
	if f.cfg.ReserveBlocks <= 0 {
		return
	}
	// Retirement failure (power cut) is recoverable by construction: the
	// mapping still points at the damaged block and the retry happens on
	// the next failing read.
	_ = f.retireLive(p, req, f.a.BlockOf(ppn))
}

// retireLive migrates the readable live data of blk and moves the block to
// the retired set, pulling a replacement from the plane's reserve pool.
// Slots whose pages are unreadable stay mapped to the retired block: host
// reads keep returning the typed error (never silently-zero data) until
// the host rewrites them. The migration window is bracketed by retire
// events so the crash-point explorer can cut power mid-migration.
func (f *FTL) retireLive(p *sim.Proc, req iotrace.Req, blk int) error {
	pl := f.a.PlaneOf(f.a.PageOfBlock(blk))
	f.gcLocks[pl].Acquire(p, 1)
	defer f.gcLocks[pl].Release(1)
	if f.retired[blk] || f.dumpSet[blk] || f.isFree(pl, blk) || f.inReserve(pl, blk) {
		return nil
	}
	if blk == f.active[pl] {
		// Damage does not wait for the write frontier: seal the active
		// block so the next program opens a fresh one, then retire it like
		// any sealed block. Its remaining erased pages leave service with
		// it — the reserve pool replaces the whole block anyway.
		f.active[pl] = -1
	}
	f.reg.Emit(iotrace.EvRetireStart, f.a.Engine().Now())
	err := f.migrateBlock(p, req, blk)
	if err != nil {
		f.reg.Emit(iotrace.EvRetireEnd, f.a.Engine().Now())
		return err
	}
	f.retireBlock(pl, blk)
	f.reg.Emit(iotrace.EvRetireEnd, f.a.Engine().Now())
	return nil
}

// migrateBlock relocates every readable live slot of blk into the plane's
// current write stream (crash-safe: mappings move only after each program
// completes, exactly like GC relocation). Unreadable pages are skipped.
// The caller holds the plane's GC lock.
func (f *FTL) migrateBlock(p *sim.Proc, req iotrace.Req, blk int) error {
	ncfg := f.a.Config()
	pl := f.a.PlaneOf(f.a.PageOfBlock(blk))
	ss := f.SlotSize()
	first := f.a.PageOfBlock(blk)
	batch := make([]SlotWrite, 0, f.cfg.SlotsPerPage)
	live := make([]int, 0, f.cfg.SlotsPerPage)
	var page []byte
	defer func() { f.putPage(page) }()
	for i := 0; i < ncfg.PagesPerBlock; i++ {
		ppn := first + nand.PPN(i)
		live = f.liveSubsInto(live[:0], ppn)
		if len(live) == 0 {
			continue
		}
		var buf []byte
		if f.a.Data(ppn) != nil {
			if page == nil {
				page = f.getPage()
			}
			buf = page
		}
		if _, err := f.readPagePhys(p, req, ppn, buf); err != nil {
			if errors.Is(err, storage.ErrUncorrectable) {
				continue // leave these slots mapped to the damaged page
			}
			return err
		}
		for _, si := range live {
			var d []byte
			if buf != nil {
				d = append(f.getSlotBuf(), buf[si*ss:(si+1)*ss]...)
			}
			batch = append(batch, SlotWrite{LPN: f.a.Meta(ppn).Slots[si].LPN, Data: d})
			if len(batch) == f.cfg.SlotsPerPage {
				if err := f.programAt(p, req, batch, pl, true); err != nil {
					return err
				}
				batch = f.recycleBatch(batch)
			}
		}
	}
	if len(batch) > 0 {
		if err := f.programAt(p, req, batch, pl, true); err != nil {
			return err
		}
		f.recycleBatch(batch)
	}
	return nil
}

// retireBlock moves blk out of service and promotes a reserve block into
// the plane's free list. With the reserve exhausted the device degrades to
// read-only: refusing writes is the graceful alternative to reusing media
// known to be failing.
func (f *FTL) retireBlock(pl, blk int) {
	f.retired[blk] = true
	f.stats.RetiredBlocks++
	if n := len(f.reserve[pl]); n > 0 {
		f.planeFree[pl] = append(f.planeFree[pl], f.reserve[pl][n-1])
		f.reserve[pl] = f.reserve[pl][:n-1]
		return
	}
	if !f.readOnly {
		f.readOnly = true
		f.stats.DegradedTransitions++
	}
}

// liveSubs returns the sub-slot indices of ppn whose mapping entry still
// points at this physical page.
func (f *FTL) liveSubs(ppn nand.PPN) []int {
	return f.liveSubsInto(nil, ppn)
}

// liveSubsInto is liveSubs appending into dst. The scratch must be owned by
// the caller: relocation loops park between computing the live set and using
// it, so a shared FTL-level buffer would be clobbered by concurrent GC on
// another plane.
func (f *FTL) liveSubsInto(dst []int, ppn nand.PPN) []int {
	if f.a.State(ppn) != nand.PageValid {
		return dst
	}
	meta := f.a.Meta(ppn)
	if meta == nil {
		return dst
	}
	for si, tag := range meta.Slots {
		if tag.LPN == nand.InvalidLPN {
			continue
		}
		if spn, ok := f.spnOf(tag.LPN); ok && spn == SPN(uint64(ppn)*uint64(f.cfg.SlotsPerPage)+uint64(si)) {
			dst = append(dst, si)
		}
	}
	return dst
}

// maybeRefresh rewrites ppn's live slots when the read had to correct at
// least RefreshThreshold bits.
func (f *FTL) maybeRefresh(p *sim.Proc, req iotrace.Req, ppn nand.PPN, info nand.ReadInfo) {
	if f.cfg.RefreshThreshold > 0 && info.CorrectedBits >= f.cfg.RefreshThreshold {
		f.refreshBestEffort(p, req, ppn)
	}
}

// refreshBestEffort runs refreshPage, swallowing errors: the host read that
// triggered the refresh already succeeded, and a failed rewrite (power cut,
// read-only degradation, out of space) leaves the old page mapped and
// readable — the refresh simply happens again on a later read.
func (f *FTL) refreshBestEffort(p *sim.Proc, req iotrace.Req, ppn nand.PPN) { //simlint:allow hotalloc cold read-disturb refresh; rare by construction (RefreshThreshold)
	_ = f.refreshPage(p, req, ppn)
}

// refreshPage relocates ppn's live slots to a fresh location, resetting
// their retention age and escaping accumulated read disturb. The rewrite
// uses the stored image, which is identical to the ECC-corrected read
// (error accumulation is modeled at read time over pristine storage).
func (f *FTL) refreshPage(p *sim.Proc, req iotrace.Req, ppn nand.PPN) error {
	if f.readOnly {
		return storage.ErrReadOnly
	}
	subs := f.liveSubsInto(make([]int, 0, f.cfg.SlotsPerPage), ppn)
	if len(subs) == 0 {
		return nil
	}
	meta := f.a.Meta(ppn)
	d := f.a.Data(ppn)
	ss := f.SlotSize()
	batch := make([]SlotWrite, 0, len(subs))
	for _, si := range subs {
		var sd []byte
		if d != nil {
			sd = append(f.getSlotBuf(), d[si*ss:(si+1)*ss]...)
		}
		batch = append(batch, SlotWrite{LPN: meta.Slots[si].LPN, Data: sd})
	}
	err := f.program(p, req, batch, false)
	f.recycleBatch(batch)
	if err != nil {
		return err
	}
	f.stats.RefreshPrograms++
	return nil
}

// StartScrubber launches the background media scrubber (no-op unless
// ScrubInterval is configured). Call once. The scrubber is wakeup-driven
// (NotifyIdle) and rate-limited to one patrol pass per ScrubInterval of
// virtual time, so an idle simulation still terminates: the proc parks on
// its queue instead of sleeping on a timer.
func (f *FTL) StartScrubber() {
	if f.cfg.ScrubInterval <= 0 || f.scrubWake != nil {
		return
	}
	f.scrubWake = sim.NewQueue(f.a.Engine())
	f.a.Engine().Go("scrubber", f.scrubLoop) //simlint:allow procbudget long-lived singleton patrol loop, spawned once per FTL lifetime
}

func (f *FTL) scrubLoop(p *sim.Proc) {
	for {
		f.scrubWake.Wait(p)
		if !f.a.Powered() || f.readOnly {
			continue
		}
		now := f.a.Engine().Now()
		if now-f.lastScrub < f.cfg.ScrubInterval {
			continue
		}
		f.lastScrub = now
		if err := f.ScrubOnce(p); err != nil {
			// Power cut mid-pass: park until the next wakeup after reboot.
			continue
		}
	}
}

// ScrubOnce runs one patrol pass: every valid page older than the scrub
// interval is read (exercising ECC and read-retry); pages past the refresh
// threshold are rewritten, unreadable ones retire their block. Exported so
// tests can drive patrols deterministically.
func (f *FTL) ScrubOnce(p *sim.Proc) error {
	req := f.reg.NewReq(p, iotrace.OpScrub, iotrace.OriginUnknown, 0, 0)
	defer req.Finish(p)
	sp := req.Begin(p, iotrace.LayerFTL)
	defer sp.End(p)
	ncfg := f.a.Config()
	now := f.a.Engine().Now()
	live := make([]int, 0, f.cfg.SlotsPerPage)
	var page []byte
	defer func() { f.putPage(page) }()
	for blk := 0; blk < ncfg.Blocks(); blk++ {
		if f.dumpSet[blk] || f.retired[blk] || f.validCount[blk] == 0 {
			continue
		}
		first := f.a.PageOfBlock(blk)
		for i := 0; i < ncfg.PagesPerBlock; i++ {
			ppn := first + nand.PPN(i)
			if f.a.State(ppn) != nand.PageValid {
				continue
			}
			if f.cfg.ScrubInterval > 0 && now-f.a.ProgrammedAt(ppn) < f.cfg.ScrubInterval {
				continue // young page: retention cannot have accumulated yet
			}
			if live = f.liveSubsInto(live[:0], ppn); len(live) == 0 {
				continue
			}
			var buf []byte
			if f.a.Data(ppn) != nil {
				if page == nil {
					page = f.getPage()
				}
				buf = page
			}
			info, err := f.readPagePhys(p, req, ppn, buf)
			f.stats.ScrubReads++
			if err != nil {
				if errors.Is(err, storage.ErrUncorrectable) {
					if f.cfg.ReserveBlocks > 0 {
						if rerr := f.retireLive(p, req, blk); rerr != nil {
							return rerr
						}
						break // whole block migrated and retired
					}
					continue // no reserve: leave the page for the host, keep patrolling
				}
				return err
			}
			if f.cfg.RefreshThreshold > 0 && info.CorrectedBits >= f.cfg.RefreshThreshold {
				if err := f.refreshPage(p, req, ppn); err != nil {
					return err
				}
			}
		}
	}
	f.stats.ScrubPasses++
	return nil
}
