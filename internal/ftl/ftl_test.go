package ftl

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"durassd/internal/iotrace"
	"durassd/internal/nand"
	"durassd/internal/sim"
	"durassd/internal/storage"
)

func newTestFTL(t *testing.T, eng *sim.Engine, cfg Config) *FTL {
	t.Helper()
	ncfg := nand.EnterpriseConfig(16) // 16 blocks/plane, 32 planes, 64 pages/block
	reg := iotrace.NewRegistry()
	a, err := nand.New(eng, ncfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(a, cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func defaultTestConfig() Config {
	cfg := DefaultConfig(8 * storage.KB)
	return cfg
}

func TestNewValidation(t *testing.T) {
	eng := sim.New()
	ncfg := nand.EnterpriseConfig(16)
	a, _ := nand.New(eng, ncfg, nil)

	bad := defaultTestConfig()
	bad.SlotsPerPage = 3
	if _, err := New(a, bad, nil); err == nil {
		t.Fatal("expected error for non-dividing SlotsPerPage")
	}
	bad = defaultTestConfig()
	bad.GCThresholdBlocks = 1
	if _, err := New(a, bad, nil); err == nil {
		t.Fatal("expected error for GC threshold < 2")
	}
	bad = defaultTestConfig()
	bad.DumpBlocks = ncfg.Blocks()
	if _, err := New(a, bad, nil); err == nil {
		t.Fatal("expected error for dump area swallowing the device")
	}
}

func TestProgramReadRoundTrip(t *testing.T) {
	eng := sim.New()
	f := newTestFTL(t, eng, defaultTestConfig())
	ss := f.SlotSize()
	d1 := bytes.Repeat([]byte{0x11}, ss)
	d2 := bytes.Repeat([]byte{0x22}, ss)
	eng.Go("io", func(p *sim.Proc) {
		if err := f.Program(p, iotrace.Req{}, []SlotWrite{{LPN: 10, Data: d1}, {LPN: 20, Data: d2}}); err != nil {
			t.Errorf("Program: %v", err)
		}
		buf := make([]byte, ss)
		if err := f.ReadSlot(p, iotrace.Req{}, 10, buf); err != nil || !bytes.Equal(buf, d1) {
			t.Errorf("slot 10 mismatch (err=%v)", err)
		}
		if err := f.ReadSlot(p, iotrace.Req{}, 20, buf); err != nil || !bytes.Equal(buf, d2) {
			t.Errorf("slot 20 mismatch (err=%v)", err)
		}
	})
	eng.Run()
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOverwriteRemapsAndInvalidates(t *testing.T) {
	eng := sim.New()
	f := newTestFTL(t, eng, defaultTestConfig())
	ss := f.SlotSize()
	old := bytes.Repeat([]byte{0xaa}, ss)
	newer := bytes.Repeat([]byte{0xbb}, ss)
	eng.Go("io", func(p *sim.Proc) {
		if err := f.Program(p, iotrace.Req{}, []SlotWrite{{LPN: 5, Data: old}}); err != nil {
			t.Errorf("first: %v", err)
		}
		if err := f.Program(p, iotrace.Req{}, []SlotWrite{{LPN: 5, Data: newer}}); err != nil {
			t.Errorf("second: %v", err)
		}
		buf := make([]byte, ss)
		if err := f.ReadSlot(p, iotrace.Req{}, 5, buf); err != nil || !bytes.Equal(buf, newer) {
			t.Errorf("read after overwrite (err=%v)", err)
		}
	})
	eng.Run()
	if f.LiveSlots() != 1 {
		t.Fatalf("live slots = %d, want 1", f.LiveSlots())
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUnmappedReadsZero(t *testing.T) {
	eng := sim.New()
	f := newTestFTL(t, eng, defaultTestConfig())
	eng.Go("io", func(p *sim.Proc) {
		buf := bytes.Repeat([]byte{0xff}, f.SlotSize())
		if err := f.ReadSlot(p, iotrace.Req{}, 99, buf); err != nil {
			t.Errorf("read: %v", err)
		}
		for _, b := range buf {
			if b != 0 {
				t.Error("unmapped slot not zero-filled")
				break
			}
		}
	})
	eng.Run()
	if eng.Now() != 0 {
		t.Fatal("unmapped read consumed device time")
	}
}

func TestGarbageCollectionReclaimsSpace(t *testing.T) {
	eng := sim.New()
	cfg := defaultTestConfig()
	cfg.OverProvisionPct = 25
	f := newTestFTL(t, eng, cfg)
	// Hammer a small logical range; the device must GC and survive far more
	// writes than raw capacity.
	writes := int(f.LogicalSlots()) * 3
	hot := int64(f.LogicalSlots() / 4)
	rng := rand.New(rand.NewSource(1))
	eng.Go("hammer", func(p *sim.Proc) {
		for i := 0; i < writes; i++ {
			lpn := storage.LPN(rng.Int63n(hot))
			if err := f.Program(p, iotrace.Req{}, []SlotWrite{{LPN: lpn}}); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
		}
	})
	eng.Run()
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := f.Array()
	_ = st
	if f.stats.NANDErases == 0 {
		t.Fatal("no erases: GC never ran")
	}
	if f.stats.GCPrograms == 0 {
		t.Fatal("no GC relocations recorded")
	}
}

func TestGCPreservesData(t *testing.T) {
	eng := sim.New()
	cfg := defaultTestConfig()
	cfg.OverProvisionPct = 25
	f := newTestFTL(t, eng, cfg)
	ss := f.SlotSize()
	// Write a set of cold pages with known data, then hammer hot pages to
	// force GC; cold data must survive relocation bit-exactly.
	cold := 64
	want := make(map[storage.LPN][]byte)
	eng.Go("io", func(p *sim.Proc) {
		for i := 0; i < cold; i++ {
			lpn := storage.LPN(i)
			d := bytes.Repeat([]byte{byte(i + 1)}, ss)
			want[lpn] = d
			if err := f.Program(p, iotrace.Req{}, []SlotWrite{{LPN: lpn, Data: d}}); err != nil {
				t.Errorf("cold write: %v", err)
				return
			}
		}
		hotBase := storage.LPN(cold)
		hotRange := f.LogicalSlots()/4 - int64(cold)
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < int(f.LogicalSlots())*2; i++ {
			lpn := hotBase + storage.LPN(rng.Int63n(hotRange))
			if err := f.Program(p, iotrace.Req{}, []SlotWrite{{LPN: lpn}}); err != nil {
				t.Errorf("hot write: %v", err)
				return
			}
		}
		buf := make([]byte, ss)
		for lpn, d := range want {
			if err := f.ReadSlot(p, iotrace.Req{}, lpn, buf); err != nil {
				t.Errorf("read %d: %v", lpn, err)
				return
			}
			if !bytes.Equal(buf, d) {
				t.Errorf("cold page %d corrupted by GC", lpn)
				return
			}
		}
	})
	eng.Run()
	if f.stats.GCPrograms == 0 {
		t.Fatal("test did not exercise GC")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMapJournalFlush(t *testing.T) {
	eng := sim.New()
	f := newTestFTL(t, eng, defaultTestConfig())
	eng.Go("io", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			if err := f.Program(p, iotrace.Req{}, []SlotWrite{{LPN: storage.LPN(i)}}); err != nil {
				t.Errorf("write: %v", err)
			}
		}
		if f.DirtyMapEntries() != 10 {
			t.Errorf("dirty entries = %d, want 10", f.DirtyMapEntries())
		}
		if err := f.FlushMapJournal(p, iotrace.Req{}); err != nil {
			t.Errorf("flush: %v", err)
		}
		if f.DirtyMapEntries() != 0 {
			t.Error("dirty entries not cleared")
		}
	})
	eng.Run()
	if f.stats.MapFlushPages == 0 {
		t.Fatal("no journal pages programmed")
	}
	// Flushing a clean journal is free.
	before := f.stats.MapFlushPages
	eng.Go("io2", func(p *sim.Proc) {
		if err := f.FlushMapJournal(p, iotrace.Req{}); err != nil {
			t.Errorf("noop flush: %v", err)
		}
	})
	eng.Run()
	if f.stats.MapFlushPages != before {
		t.Fatal("clean journal flush programmed pages")
	}
}

func TestDumpBlocksReservedAndExcluded(t *testing.T) {
	eng := sim.New()
	cfg := defaultTestConfig()
	cfg.DumpBlocks = 8
	f := newTestFTL(t, eng, cfg)
	ids := f.DumpBlockIDs()
	if len(ids) != 8 {
		t.Fatalf("dump blocks = %d, want 8", len(ids))
	}
	// Fill most of the device (unpaired writes burn a whole physical page
	// per slot, so stay below the paired-capacity ceiling); no program may
	// land in a dump block.
	eng.Go("io", func(p *sim.Proc) {
		for i := int64(0); i < f.LogicalSlots()*6/10; i++ {
			if err := f.Program(p, iotrace.Req{}, []SlotWrite{{LPN: storage.LPN(i)}}); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
		}
	})
	eng.Run()
	for _, blk := range ids {
		first := f.Array().PageOfBlock(blk)
		for i := 0; i < f.Array().Config().PagesPerBlock; i++ {
			if f.Array().State(first+nand.PPN(i)) != nand.PageFree {
				t.Fatalf("dump block %d was programmed", blk)
			}
		}
	}
}

func TestLoadSlotsInstant(t *testing.T) {
	eng := sim.New()
	f := newTestFTL(t, eng, defaultTestConfig())
	ss := f.SlotSize()
	var slots []SlotWrite
	for i := 0; i < 100; i++ {
		slots = append(slots, SlotWrite{LPN: storage.LPN(i), Data: bytes.Repeat([]byte{byte(i)}, ss)})
	}
	if err := f.LoadSlots(slots); err != nil {
		t.Fatal(err)
	}
	if eng.Now() != 0 {
		t.Fatal("bulk load consumed virtual time")
	}
	if f.LiveSlots() != 100 {
		t.Fatalf("live slots = %d, want 100", f.LiveSlots())
	}
	eng.Go("io", func(p *sim.Proc) {
		buf := make([]byte, ss)
		if err := f.ReadSlot(p, iotrace.Req{}, 42, buf); err != nil || buf[0] != 42 {
			t.Errorf("loaded slot unreadable (err=%v, b0=%x)", err, buf[0])
		}
	})
	eng.Run()
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteAmplificationTracked(t *testing.T) {
	eng := sim.New()
	cfg := defaultTestConfig()
	cfg.OverProvisionPct = 25
	ncfg := nand.EnterpriseConfig(16)
	reg := iotrace.NewRegistry()
	stats := reg.Stats()
	a, _ := nand.New(eng, ncfg, reg)
	f, err := New(a, cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	hot := f.LogicalSlots() / 4
	rng := rand.New(rand.NewSource(3))
	n := int(f.LogicalSlots()) * 2
	eng.Go("io", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			pair := []SlotWrite{
				{LPN: storage.LPN(rng.Int63n(hot))},
				{LPN: storage.LPN(rng.Int63n(hot))},
			}
			if pair[0].LPN == pair[1].LPN {
				pair = pair[:1]
			}
			if err := f.Program(p, iotrace.Req{}, pair); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
	})
	eng.Run()
	if stats.NANDPrograms <= int64(n) {
		// paired writes: n programs minimum; GC must add more
		t.Fatalf("programs = %d, expected GC overhead beyond %d", stats.NANDPrograms, n)
	}
}

// TestRandomOpsInvariant is a property test: any interleaving of programs
// and reads keeps the mapping consistent and readable.
func TestRandomOpsInvariant(t *testing.T) {
	check := func(seed int64) bool {
		eng := sim.New()
		cfg := defaultTestConfig()
		cfg.OverProvisionPct = 30
		ncfg := nand.EnterpriseConfig(32)
		a, _ := nand.New(eng, ncfg, nil)
		f, err := New(a, cfg, nil)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		shadow := make(map[storage.LPN]byte)
		ok := true
		eng.Go("ops", func(p *sim.Proc) {
			ss := f.SlotSize()
			for i := 0; i < 600; i++ {
				lpn := storage.LPN(rng.Int63n(f.LogicalSlots() / 8))
				if rng.Intn(3) > 0 {
					v := byte(rng.Intn(255) + 1)
					if err := f.Program(p, iotrace.Req{}, []SlotWrite{{LPN: lpn, Data: bytes.Repeat([]byte{v}, ss)}}); err != nil {
						ok = false
						return
					}
					shadow[lpn] = v
				} else {
					buf := make([]byte, ss)
					if err := f.ReadSlot(p, iotrace.Req{}, lpn, buf); err != nil {
						ok = false
						return
					}
					if buf[0] != shadow[lpn] {
						ok = false
						return
					}
				}
			}
		})
		eng.Run()
		return ok && f.CheckInvariants() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestWearAwareAllocationBalancesErases(t *testing.T) {
	run := func(wearAware bool) int64 {
		eng := sim.New()
		cfg := defaultTestConfig()
		cfg.OverProvisionPct = 30
		cfg.WearAware = wearAware
		ncfg := nand.EnterpriseConfig(16)
		a, _ := nand.New(eng, ncfg, nil)
		f, err := New(a, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		hot := f.LogicalSlots() / 8
		rng := rand.New(rand.NewSource(9))
		eng.Go("hammer", func(p *sim.Proc) {
			for i := 0; i < int(f.LogicalSlots())*4; i++ {
				if err := f.Program(p, iotrace.Req{}, []SlotWrite{
					{LPN: storage.LPN(rng.Int63n(hot))},
					{LPN: storage.LPN(hot + rng.Int63n(hot))},
				}); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		})
		eng.Run()
		min, max := f.WearSpread()
		return max - min
	}
	spreadAware := run(true)
	spreadFIFO := run(false)
	if spreadAware > spreadFIFO {
		t.Fatalf("wear-aware spread %d worse than FIFO %d", spreadAware, spreadFIFO)
	}
}

func TestBackgroundGCReducesForegroundStalls(t *testing.T) {
	run := func(bg int) (gcPrograms int64) {
		eng := sim.New()
		cfg := defaultTestConfig()
		cfg.OverProvisionPct = 25
		cfg.BackgroundGCBlocks = bg
		ncfg := nand.EnterpriseConfig(16)
		reg := iotrace.NewRegistry()
		stats := reg.Stats()
		a, _ := nand.New(eng, ncfg, reg)
		f, err := New(a, cfg, reg)
		if err != nil {
			t.Fatal(err)
		}
		f.StartBackgroundGC()
		hot := f.LogicalSlots() / 4
		rng := rand.New(rand.NewSource(4))
		eng.Go("w", func(p *sim.Proc) {
			for i := 0; i < int(f.LogicalSlots())*2; i++ {
				if err := f.Program(p, iotrace.Req{}, []SlotWrite{{LPN: storage.LPN(rng.Int63n(hot))}}); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				if i%64 == 0 {
					f.NotifyIdle()
					p.Sleep(2 * time.Millisecond) // idle window for the collector
				}
			}
		})
		eng.Run()
		if err := f.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		// Count free headroom at the end: background GC should keep planes
		// above the hard threshold more often.
		return stats.GCPrograms
	}
	withBG := run(6)
	if withBG == 0 {
		t.Fatal("background GC never relocated anything")
	}
}
