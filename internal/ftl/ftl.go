// Package ftl implements a page-mapping flash translation layer over a
// nand.Array.
//
// Following the paper (§3.1.2), the FTL maps logical pages at a 4 KB
// granularity onto 8 KB physical NAND pages: each physical page holds
// SlotsPerPage logical slots, and the device cache tries to pair two 4 KB
// writes into one program. The FTL also provides greedy garbage collection
// with plane-local relocation, a mapping-table journal whose flush cost is
// charged on flush-cache (volatile devices) and never (durable cache), and
// a reserved, always-erased dump area for the DuraSSD power-failure dump.
package ftl

import (
	"errors"
	"fmt"
	"time"

	"durassd/internal/iotrace"
	"durassd/internal/nand"
	"durassd/internal/sim"
	"durassd/internal/storage"
)

// SPN is a slot page number: physical page number × SlotsPerPage + slot
// index. It is the value stored in the mapping table.
type SPN uint64

const invalidSPN = SPN(1<<64 - 1)

// ErrNoSpace reports that garbage collection could not reclaim a block.
var ErrNoSpace = errors.New("ftl: out of space")

// Config tunes the translation layer.
type Config struct {
	// SlotsPerPage is physical page size / mapping unit (2 in the paper:
	// 4 KB mapping over 8 KB NAND pages). Must divide the page size.
	SlotsPerPage int
	// OverProvisionPct is the percentage of slots hidden from the logical
	// space to keep GC effective (enterprise drives use ~7–28%).
	OverProvisionPct int
	// GCThresholdBlocks is the per-plane free-block low watermark that
	// triggers foreground garbage collection. Must be >= 2 so relocation
	// always has a destination.
	GCThresholdBlocks int
	// DumpBlocks reserves this many erased blocks (spread across planes)
	// for the DuraSSD power-failure dump area. Zero for volatile devices.
	DumpBlocks int
	// MapEntryBytes is the size of one mapping entry in the on-flash
	// journal (4 bytes in the paper for a 480 GB drive).
	MapEntryBytes int
	// WearAware makes block allocation pick the least-erased free block of
	// a plane instead of FIFO, spreading erases (the wear-leveling the
	// paper's §3.1.1 buffer pool scheduler considers).
	WearAware bool
	// BackgroundGCBlocks, when > GCThresholdBlocks, enables an idle-time
	// collector that tops planes up to this free-block watermark before
	// foreground writes ever stall on the hard threshold. Zero disables.
	BackgroundGCBlocks int
	// EagerMapping updates the mapping table before the cell program
	// completes, the behaviour of the commercial volatile-cache SSDs in the
	// FAST'13 power-fault study the paper cites: a power cut mid-program
	// leaves the mapping pointing at a shorn (torn) page, exposing the
	// corruption to the host. DuraSSD uses lazy mapping (false): a torn
	// page is never referenced, and the durable cache replays the write.
	EagerMapping bool

	// Media-error handling knobs (see media.go). All zeros = legacy
	// behavior: no retries, no refresh, no retirement, no scrubbing.

	// ReadRetries bounds the read-retry attempts after an uncorrectable
	// first read. Each retry re-reads with a shifted reference voltage.
	ReadRetries int
	// RetryBackoff is the extra wait before retry attempt k (charged
	// k × RetryBackoff: a bounded linear backoff).
	RetryBackoff time.Duration
	// RefreshThreshold rewrites a page to a fresh location when a read had
	// to correct at least this many bits (0 disables).
	RefreshThreshold int
	// ReserveBlocks withholds this many blocks per plane as the bad-block
	// reserve pool. Retired blocks (wear-out or uncorrectable pages) are
	// replaced from the reserve; when it runs dry the device degrades to
	// read-only instead of risking data loss. Zero disables retirement.
	ReserveBlocks int
	// EnduranceLimit retires a block once its erase count reaches this
	// value (checked at GC erase time; 0 = unlimited endurance).
	EnduranceLimit int64
	// ScrubInterval enables the background scrubber: a patrol pass over
	// pages older than the interval runs at most once per interval,
	// refreshing high-error pages before they decay past the ECC limit.
	// Zero disables the scrubber.
	ScrubInterval time.Duration
}

// DefaultConfig returns the paper's configuration: 4 KB mapping units over
// the array's physical page size.
func DefaultConfig(physPageSize int) Config {
	return Config{
		SlotsPerPage:      physPageSize / (4 * storage.KB),
		OverProvisionPct:  12,
		GCThresholdBlocks: 2,
		DumpBlocks:        0,
		MapEntryBytes:     4,
	}
}

// SlotWrite is one logical slot to program.
type SlotWrite struct {
	LPN    storage.LPN
	Data   []byte // SlotSize bytes, or nil for timing-only
	Origin iotrace.Origin
}

// FTL is a page-mapping flash translation layer.
type FTL struct {
	a   *nand.Array
	cfg Config

	mapTab     []SPN   // LPN -> SPN
	validCount []int   // live slots per global block
	planeFree  [][]int // erased block ids per plane
	active     []int   // active (partially written) block per plane, -1 if none
	writePtr   []int   // next page index within the active block
	nextPlane  int     // round-robin program cursor

	dumpBlocks      []int
	dumpSet         map[int]bool
	dirtyMapEntries int64
	logicalSlots    int64
	liveSlots       int64

	gcLocks []*sim.Resource // per-plane GC locks (concurrent GC across planes)
	bgWake  *sim.Queue      // background collector wakeup (nil when disabled)

	reserve   [][]int       // per-plane bad-block reserve pool
	retired   map[int]bool  // blocks removed from service (wear / media damage)
	readOnly  bool          // reserve pool exhausted: degraded to read-only
	scrubWake *sim.Queue    // scrubber wakeup (nil when disabled)
	lastScrub time.Duration // virtual time the last patrol pass started

	reg   *iotrace.Registry
	stats *storage.Stats

	// Program-path scratch pools. A program holds its tag slice and page
	// buffer exclusively from get to put (the NAND array copies both at
	// commit), so concurrent flusher workers simply draw distinct buffers.
	tagPool  [][]nand.SlotTag
	pagePool [][]byte
	slotPool [][]byte // slot-size relocation buffers (GC / scrub / refresh)

	// byPPN is ReadSlots' grouping scratch, cleared at the top of each
	// call instead of reallocated; FTL calls are serialized per device,
	// so a single map suffices.
	byPPN map[nand.PPN]int
}

func (f *FTL) getTags(n int) []nand.SlotTag {
	if last := len(f.tagPool) - 1; last >= 0 {
		t := f.tagPool[last]
		f.tagPool[last] = nil
		f.tagPool = f.tagPool[:last]
		if cap(t) >= n {
			t = t[:n]
			for i := range t {
				t[i] = nand.SlotTag{}
			}
			return t
		}
	}
	return make([]nand.SlotTag, n) //simlint:allow hotalloc pool miss fallback; steady state recycles pooled slices
}

func (f *FTL) putTags(t []nand.SlotTag) {
	if cap(t) == 0 || len(f.tagPool) >= 64 {
		return
	}
	f.tagPool = append(f.tagPool, t[:0])
}

// getPage returns a page-size buffer with unspecified contents: program
// paths zero exactly the slot gaps they leave, and read paths hand it to
// ReadPageRetry, which overwrites the full page.
func (f *FTL) getPage() []byte {
	if last := len(f.pagePool) - 1; last >= 0 {
		b := f.pagePool[last]
		f.pagePool[last] = nil
		f.pagePool = f.pagePool[:last]
		return b
	}
	return make([]byte, f.a.Config().PageSize) //simlint:allow hotalloc pool miss fallback; steady state recycles pooled slices
}

func (f *FTL) putPage(b []byte) {
	if b == nil || len(f.pagePool) >= 64 {
		return
	}
	f.pagePool = append(f.pagePool, b)
}

// getSlotBuf returns a slot-size buffer for relocation copies.
func (f *FTL) getSlotBuf() []byte {
	if last := len(f.slotPool) - 1; last >= 0 {
		b := f.slotPool[last]
		f.slotPool[last] = nil
		f.slotPool = f.slotPool[:last]
		return b[:0]
	}
	return make([]byte, 0, f.SlotSize()) //simlint:allow hotalloc pool miss fallback; steady state recycles pooled slices
}

func (f *FTL) putSlotBuf(b []byte) {
	if cap(b) == 0 || len(f.slotPool) >= 256 {
		return
	}
	f.slotPool = append(f.slotPool, b[:0])
}

// recycleBatch returns the relocation buffers of a just-programmed batch
// to the slot pool and truncates the batch for reuse.
func (f *FTL) recycleBatch(batch []SlotWrite) []SlotWrite {
	for i := range batch {
		if batch[i].Data != nil {
			f.putSlotBuf(batch[i].Data)
		}
		batch[i] = SlotWrite{}
	}
	return batch[:0]
}

// New builds an FTL over the array. All blocks start erased. The registry
// (shared with the owning device) may be nil.
func New(a *nand.Array, cfg Config, reg *iotrace.Registry) (*FTL, error) {
	ncfg := a.Config()
	if cfg.SlotsPerPage <= 0 || ncfg.PageSize%cfg.SlotsPerPage != 0 {
		return nil, fmt.Errorf("ftl: invalid SlotsPerPage %d for page size %d", cfg.SlotsPerPage, ncfg.PageSize)
	}
	if cfg.GCThresholdBlocks < 2 {
		return nil, fmt.Errorf("ftl: GCThresholdBlocks must be >= 2, got %d", cfg.GCThresholdBlocks)
	}
	if cfg.MapEntryBytes <= 0 {
		cfg.MapEntryBytes = 4
	}
	planes := ncfg.Planes()
	if cfg.DumpBlocks >= planes*(ncfg.BlocksPerPlane-cfg.GCThresholdBlocks-1) {
		return nil, fmt.Errorf("ftl: DumpBlocks %d leaves no usable space", cfg.DumpBlocks)
	}
	if cfg.ReserveBlocks < 0 ||
		(cfg.ReserveBlocks > 0 && cfg.DumpBlocks/planes+cfg.ReserveBlocks >= ncfg.BlocksPerPlane-cfg.GCThresholdBlocks-1) {
		return nil, fmt.Errorf("ftl: ReserveBlocks %d leaves no usable space", cfg.ReserveBlocks)
	}
	if reg == nil {
		reg = iotrace.NewRegistry()
	}
	f := &FTL{
		a:          a,
		cfg:        cfg,
		validCount: make([]int, ncfg.Blocks()),
		planeFree:  make([][]int, planes),
		active:     make([]int, planes),
		writePtr:   make([]int, planes),
		dumpSet:    make(map[int]bool),
		reserve:    make([][]int, planes),
		retired:    make(map[int]bool),
		byPPN:      make(map[nand.PPN]int),
		reg:        reg,
		stats:      reg.Stats(),
	}
	f.gcLocks = make([]*sim.Resource, planes)
	for i := range f.gcLocks {
		f.gcLocks[i] = sim.NewResource(a.Engine(), 1)
	}
	for pl := 0; pl < planes; pl++ {
		f.active[pl] = -1
		for b := 0; b < ncfg.BlocksPerPlane; b++ {
			f.planeFree[pl] = append(f.planeFree[pl], a.BlockOfPlane(pl, b))
		}
	}
	// Reserve dump blocks round-robin across planes so the power-failure
	// dump itself enjoys full parallelism.
	for i := 0; i < cfg.DumpBlocks; i++ {
		pl := i % planes
		free := f.planeFree[pl]
		blk := free[len(free)-1]
		f.planeFree[pl] = free[:len(free)-1]
		f.dumpBlocks = append(f.dumpBlocks, blk)
		f.dumpSet[blk] = true
	}
	// Carve the bad-block reserve pool from each plane's free tail. Reserve
	// blocks are invisible to allocation and GC until a retirement promotes
	// them into the plane's free list.
	for pl := 0; pl < planes && cfg.ReserveBlocks > 0; pl++ {
		free := f.planeFree[pl]
		n := len(free) - cfg.ReserveBlocks
		f.reserve[pl] = append([]int(nil), free[n:]...)
		f.planeFree[pl] = free[:n]
	}
	totalSlots := (int64(ncfg.Blocks()) - int64(cfg.DumpBlocks) - int64(planes*cfg.ReserveBlocks)) *
		int64(ncfg.PagesPerBlock) * int64(cfg.SlotsPerPage)
	f.logicalSlots = totalSlots * int64(100-cfg.OverProvisionPct) / 100
	f.mapTab = make([]SPN, f.logicalSlots)
	for i := range f.mapTab {
		f.mapTab[i] = invalidSPN
	}
	return f, nil
}

// SlotSize returns the mapping unit in bytes.
func (f *FTL) SlotSize() int { return f.a.Config().PageSize / f.cfg.SlotsPerPage }

// SlotsPerPage returns the number of logical slots per physical page.
func (f *FTL) SlotsPerPage() int { return f.cfg.SlotsPerPage }

// LogicalSlots returns the exported capacity in mapping units.
func (f *FTL) LogicalSlots() int64 { return f.logicalSlots }

// LiveSlots returns the number of currently mapped logical slots.
func (f *FTL) LiveSlots() int64 { return f.liveSlots }

// DirtyMapEntries returns mapping entries modified since the last journal
// flush.
func (f *FTL) DirtyMapEntries() int64 { return f.dirtyMapEntries }

// MapJournalPages returns how many physical pages the dirty mapping entries
// occupy when journaled or dumped.
func (f *FTL) MapJournalPages() int {
	bytes := f.dirtyMapEntries * int64(f.cfg.MapEntryBytes)
	return int((bytes + int64(f.a.Config().PageSize) - 1) / int64(f.a.Config().PageSize))
}

// DumpBlockIDs returns the reserved dump-area block ids.
func (f *FTL) DumpBlockIDs() []int { return append([]int(nil), f.dumpBlocks...) }

// Array returns the underlying NAND array.
func (f *FTL) Array() *nand.Array { return f.a }

// Registry returns the metrics registry shared with the owning device.
func (f *FTL) Registry() *iotrace.Registry { return f.reg }

func (f *FTL) spnOf(lpn storage.LPN) (SPN, bool) {
	if int64(lpn) >= f.logicalSlots {
		return 0, false
	}
	spn := f.mapTab[lpn]
	return spn, spn != invalidSPN
}

// Mapped reports whether lpn currently has a physical location.
func (f *FTL) Mapped(lpn storage.LPN) bool {
	_, ok := f.spnOf(lpn)
	return ok
}

// ReadSlot reads the 4 KB slot of lpn. If buf is non-nil it must be
// SlotSize bytes; unmapped or timing-only slots read back zeroed. Reading an
// unmapped slot costs no device time (the controller answers from the map).
//
//simlint:hotpath
func (f *FTL) ReadSlot(p *sim.Proc, req iotrace.Req, lpn storage.LPN, buf []byte) error {
	if int64(lpn) >= f.logicalSlots {
		return storage.ErrOutOfRange
	}
	sp := req.Begin(p, iotrace.LayerFTL)
	defer sp.End(p)
	spn, ok := f.spnOf(lpn)
	if !ok {
		zero(buf)
		return nil
	}
	ppn := nand.PPN(spn / SPN(f.cfg.SlotsPerPage))
	sub := int(spn % SPN(f.cfg.SlotsPerPage))
	var page []byte
	if buf != nil {
		page = f.getPage()
		defer f.putPage(page)
	}
	info, err := f.readPagePhys(p, req, ppn, page)
	if err != nil {
		if errors.Is(err, storage.ErrUncorrectable) {
			f.stats.UncorrectableReads++
			f.noteUncorrectable(p, req, ppn)
		}
		return err
	}
	if buf != nil {
		copy(buf, page[sub*f.SlotSize():(sub+1)*f.SlotSize()])
	}
	f.maybeRefresh(p, req, ppn, info)
	return nil
}

// ReadSlots reads several logical slots, issuing one physical page read per
// distinct physical page (consecutive DB-page slots often share a NAND
// page). If buf is non-nil it must be len(lpns)*SlotSize bytes.
//
//simlint:hotpath
func (f *FTL) ReadSlots(p *sim.Proc, req iotrace.Req, lpns []storage.LPN, buf []byte) error {
	sp := req.Begin(p, iotrace.LayerFTL)
	defer sp.End(p)
	ss := f.SlotSize()
	type pending struct {
		ppn  nand.PPN
		idxs []int // positions in lpns served by this physical page
		subs []int // sub-slot per position, captured before any relocation
	}
	var reads []pending
	clear(f.byPPN)
	for i, lpn := range lpns {
		spn, ok := f.spnOf(lpn)
		if !ok {
			if int64(lpn) >= f.logicalSlots {
				return storage.ErrOutOfRange
			}
			if buf != nil {
				zero(buf[i*ss : (i+1)*ss])
			}
			continue
		}
		ppn := nand.PPN(spn / SPN(f.cfg.SlotsPerPage))
		j, seen := f.byPPN[ppn]
		if !seen {
			j = len(reads)
			f.byPPN[ppn] = j
			reads = append(reads, pending{ppn: ppn})
		}
		reads[j].idxs = append(reads[j].idxs, i)
		reads[j].subs = append(reads[j].subs, int(spn%SPN(f.cfg.SlotsPerPage)))
	}
	// Refreshes are deferred past the copy loop: a refresh relocates
	// mappings and can trigger GC, which must not move or erase pages the
	// remaining pending reads still reference.
	var refresh []nand.PPN
	var page []byte
	if buf != nil && len(reads) > 0 {
		// One pooled buffer serves every pending page: readPagePhys
		// overwrites it in full before the copy loop reads it back.
		page = f.getPage()
		defer f.putPage(page)
	}
	for _, r := range reads {
		info, err := f.readPagePhys(p, req, r.ppn, page)
		if err != nil {
			if errors.Is(err, storage.ErrUncorrectable) {
				f.stats.UncorrectableReads++
				f.noteUncorrectable(p, req, r.ppn)
			}
			return err
		}
		if buf != nil {
			for k, i := range r.idxs {
				sub := r.subs[k]
				copy(buf[i*ss:(i+1)*ss], page[sub*ss:(sub+1)*ss])
			}
		}
		if f.cfg.RefreshThreshold > 0 && info.CorrectedBits >= f.cfg.RefreshThreshold {
			refresh = append(refresh, r.ppn)
		}
	}
	for _, ppn := range refresh {
		f.refreshBestEffort(p, req, ppn)
	}
	return nil
}

// Program writes up to SlotsPerPage logical slots as a single NAND program,
// running garbage collection first if the target plane is low on space.
// Duplicate LPNs within one call are not allowed. A device degraded to
// read-only (bad-block reserve exhausted) fails with storage.ErrReadOnly.
//
//simlint:hotpath
func (f *FTL) Program(p *sim.Proc, req iotrace.Req, slots []SlotWrite) error {
	if f.readOnly {
		return storage.ErrReadOnly
	}
	return f.program(p, req, slots, false)
}

func (f *FTL) program(p *sim.Proc, req iotrace.Req, slots []SlotWrite, gc bool) error {
	return f.programAt(p, req, slots, -1, gc)
}

// programAt programs slots on the given plane (-1 = round-robin). GC
// relocations pin to the victim's plane and skip the GC trigger.
func (f *FTL) programAt(p *sim.Proc, req iotrace.Req, slots []SlotWrite, pl int, gc bool) error {
	if len(slots) == 0 || len(slots) > f.cfg.SlotsPerPage {
		return fmt.Errorf("ftl: program of %d slots (max %d)", len(slots), f.cfg.SlotsPerPage) //simlint:allow hotalloc error construction on a rejected program; never taken at steady state
	}
	for _, s := range slots {
		if int64(s.LPN) >= f.logicalSlots {
			return storage.ErrOutOfRange
		}
	}
	sp := req.Begin(p, iotrace.LayerFTL)
	defer sp.End(p)
	if pl < 0 {
		pl = f.pickPlane()
	}
	if !gc {
		if err := f.ensureFree(p, req, pl); err != nil {
			return err
		}
	}
	ppn, err := f.nextPage(pl)
	if err != nil {
		return err
	}
	tags := f.getTags(len(slots))
	defer f.putTags(tags)
	var data []byte
	for i, s := range slots {
		tags[i] = nand.SlotTag{LPN: s.LPN}
		if s.Data != nil && data == nil {
			data = f.getPage()
		}
	}
	if data != nil {
		defer f.putPage(data)
		ss := f.SlotSize()
		for i, s := range slots {
			dst := data[i*ss : (i+1)*ss]
			if s.Data != nil {
				copy(dst, s.Data)
			} else {
				zero(dst) // timing-only slot sharing a page with real bytes
			}
		}
		zero(data[len(slots)*ss:]) // unfilled tail of a short batch
	}
	if f.cfg.EagerMapping {
		f.commitMapping(ppn, slots)
	}
	if err := f.a.ProgramPage(p, req, ppn, tags, data, false); err != nil {
		return err
	}
	if !f.cfg.EagerMapping {
		f.commitMapping(ppn, slots)
	}
	if gc {
		f.stats.GCPrograms++
	}
	// Attribute each programmed slot to its database-level origin. GC
	// relocations are charged to the origin that triggered the collection,
	// per the paper's question "who caused this NAND traffic?".
	for _, s := range slots {
		o := s.Origin
		if gc {
			o = req.Origin
			f.reg.AddOriginGC(o, 1)
		}
		f.reg.AddOriginNAND(o, 1)
	}
	return nil
}

func (f *FTL) commitMapping(ppn nand.PPN, slots []SlotWrite) {
	blk := f.a.BlockOf(ppn)
	for i, s := range slots {
		old := f.mapTab[s.LPN]
		if old != invalidSPN {
			f.validCount[int(old/SPN(f.cfg.SlotsPerPage))/f.a.Config().PagesPerBlock]--
		} else {
			f.liveSlots++
		}
		f.mapTab[s.LPN] = SPN(uint64(ppn)*uint64(f.cfg.SlotsPerPage) + uint64(i))
		f.validCount[blk]++
		f.dirtyMapEntries++
	}
}

// pickPlane advances the round-robin program cursor.
func (f *FTL) pickPlane() int {
	pl := f.nextPlane
	f.nextPlane = (f.nextPlane + 1) % len(f.planeFree)
	return pl
}

// nextPage returns the next erased page of the plane's active block,
// opening a new block from the free list when needed. With WearAware set,
// the least-erased free block is opened first.
func (f *FTL) nextPage(pl int) (nand.PPN, error) {
	ncfg := f.a.Config()
	if f.active[pl] == -1 || f.writePtr[pl] >= ncfg.PagesPerBlock {
		free := f.planeFree[pl]
		if len(free) == 0 {
			return 0, ErrNoSpace
		}
		pick := 0
		if f.cfg.WearAware {
			for i := 1; i < len(free); i++ {
				if f.a.EraseCount(free[i]) < f.a.EraseCount(free[pick]) {
					pick = i
				}
			}
		}
		f.active[pl] = free[pick]
		f.planeFree[pl] = append(free[:pick], free[pick+1:]...) //simlint:allow hotalloc removes one element in place; capacity never grows
		f.writePtr[pl] = 0
	}
	ppn := f.a.PageOfBlock(f.active[pl]) + nand.PPN(f.writePtr[pl])
	f.writePtr[pl]++
	return ppn, nil
}

// WearSpread returns (min, max) erase counts over all non-dump blocks —
// the wear-leveling quality metric.
func (f *FTL) WearSpread() (min, max int64) {
	first := true
	for blk := 0; blk < f.a.Config().Blocks(); blk++ {
		if f.dumpSet[blk] {
			continue
		}
		e := f.a.EraseCount(blk)
		if first {
			min, max, first = e, e, false
			continue
		}
		if e < min {
			min = e
		}
		if e > max {
			max = e
		}
	}
	return min, max
}

// StartBackgroundGC launches the idle-time collector (no-op unless
// BackgroundGCBlocks is configured above the hard threshold). Call once.
func (f *FTL) StartBackgroundGC() {
	if f.cfg.BackgroundGCBlocks <= f.cfg.GCThresholdBlocks || f.bgWake != nil {
		return
	}
	f.bgWake = sim.NewQueue(f.a.Engine())
	f.a.Engine().Go("bg-gc", f.backgroundGC) //simlint:allow procbudget long-lived singleton collector, spawned once per FTL lifetime
}

// NotifyIdle wakes the background collector and the media scrubber
// (devices call it when their write queues drain).
func (f *FTL) NotifyIdle() {
	if f.bgWake != nil {
		f.bgWake.WakeOne()
	}
	if f.scrubWake != nil {
		f.scrubWake.WakeOne()
	}
}

func (f *FTL) backgroundGC(p *sim.Proc) {
	for {
		worked := false
		for pl := range f.planeFree {
			if len(f.planeFree[pl]) >= f.cfg.BackgroundGCBlocks {
				continue
			}
			f.gcLocks[pl].Acquire(p, 1)
			var err error
			if len(f.planeFree[pl]) < f.cfg.BackgroundGCBlocks {
				req := f.reg.NewReq(p, iotrace.OpGC, iotrace.OriginUnknown, 0, 0)
				err = f.gcOnce(p, req, pl)
				req.Finish(p)
			}
			f.gcLocks[pl].Release(1)
			if err == nil {
				worked = true
			}
		}
		if !worked {
			f.bgWake.Wait(p)
		}
	}
}

// ensureFree runs greedy garbage collection on the plane until its free
// list is back above the low watermark. GC is serialized per plane, so
// concurrent flusher workers never pick the same victim but different
// planes collect in parallel.
func (f *FTL) ensureFree(p *sim.Proc, req iotrace.Req, pl int) error {
	for len(f.planeFree[pl]) < f.cfg.GCThresholdBlocks {
		if f.readOnly {
			return storage.ErrReadOnly
		}
		f.gcLocks[pl].Acquire(p, 1)
		var err error
		if len(f.planeFree[pl]) < f.cfg.GCThresholdBlocks { // recheck under lock
			err = f.gcOnce(p, req, pl)
		}
		f.gcLocks[pl].Release(1)
		if err == ErrNoSpace && len(f.planeFree[pl]) > 0 {
			// Nothing reclaimable (every block fully live — e.g. an
			// append-only workload before its first wrap), but erased
			// blocks remain: let the write dip into the GC reserve rather
			// than failing a device that still has room.
			return nil
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// gcOnce relocates the live slots of the plane's emptiest closed block and
// erases it.
func (f *FTL) gcOnce(p *sim.Proc, req iotrace.Req, pl int) error { //simlint:allow hotalloc GC batch buffers are amortized across a whole block relocation
	sp := req.Begin(p, iotrace.LayerGC)
	defer sp.End(p)
	ncfg := f.a.Config()
	victim, victimValid := -1, int(^uint(0)>>1)
	for b := 0; b < ncfg.BlocksPerPlane; b++ {
		blk := f.a.BlockOfPlane(pl, b)
		if blk == f.active[pl] || f.dumpSet[blk] || f.retired[blk] || f.isFree(pl, blk) || f.inReserve(pl, blk) {
			continue
		}
		if f.validCount[blk] < victimValid {
			victim, victimValid = blk, f.validCount[blk]
		}
	}
	if victim == -1 {
		return ErrNoSpace
	}
	// Relocating must gain at least one page, or GC would churn forever on
	// an (almost) fully-live plane.
	relocPages := (victimValid + f.cfg.SlotsPerPage - 1) / f.cfg.SlotsPerPage
	if relocPages >= ncfg.PagesPerBlock {
		return ErrNoSpace // no reclaimable space anywhere in this plane
	}

	// Will the erase at the end push this block past its endurance limit?
	// If so, the relocation below is the retirement's live-data migration:
	// bracket it with retire events so the crash-point explorer can cut
	// power mid-migration.
	willRetire := f.cfg.ReserveBlocks > 0 && f.cfg.EnduranceLimit > 0 &&
		f.a.EraseCount(victim)+1 >= f.cfg.EnduranceLimit
	if willRetire {
		f.reg.Emit(iotrace.EvRetireStart, f.a.Engine().Now())
	}

	// Relocate live slots, pairing them into full pages. The scratch
	// (live-slot indices, page image, batch) is per-call: concurrent GC on
	// other planes uses its own.
	batch := make([]SlotWrite, 0, f.cfg.SlotsPerPage)
	live := make([]int, 0, f.cfg.SlotsPerPage)
	var page []byte
	defer func() { f.putPage(page) }()
	ss := f.SlotSize()
	first := f.a.PageOfBlock(victim)
	for i := 0; i < ncfg.PagesPerBlock; i++ {
		ppn := first + nand.PPN(i)
		// Torn slots that are still mapped must be relocated as-is:
		// the host sees the garbage until it rewrites the page.
		live = f.liveSubsInto(live[:0], ppn)
		if len(live) == 0 {
			continue
		}
		if f.a.Data(ppn) != nil && page == nil {
			page = f.getPage()
		}
		var buf []byte
		if f.a.Data(ppn) != nil {
			buf = page
		}
		if _, err := f.readPagePhys(p, req, ppn, buf); err != nil {
			if errors.Is(err, storage.ErrUncorrectable) {
				// The victim holds an unreadable page: erasing it would turn
				// a typed media error into silent data loss. Retire it in
				// place — already-relocated slots stay relocated, unreadable
				// slots stay mapped here so host reads keep failing typed
				// until the host rewrites them.
				if !willRetire {
					f.reg.Emit(iotrace.EvRetireStart, f.a.Engine().Now())
				}
				f.retireBlock(pl, victim)
				f.reg.Emit(iotrace.EvRetireEnd, f.a.Engine().Now())
				return nil
			}
			return err
		}
		for _, si := range live {
			var d []byte
			if buf != nil {
				d = append(f.getSlotBuf(), buf[si*ss:(si+1)*ss]...)
			}
			batch = append(batch, SlotWrite{LPN: f.a.Meta(ppn).Slots[si].LPN, Data: d})
			if len(batch) == f.cfg.SlotsPerPage {
				if err := f.programAt(p, req, batch, pl, true); err != nil {
					return err
				}
				batch = f.recycleBatch(batch)
			}
		}
	}
	if len(batch) > 0 {
		if err := f.programAt(p, req, batch, pl, true); err != nil {
			return err
		}
		f.recycleBatch(batch)
	}
	if err := f.a.EraseBlock(p, req, victim); err != nil {
		return err
	}
	f.validCount[victim] = 0
	if willRetire {
		f.retireBlock(pl, victim)
		f.reg.Emit(iotrace.EvRetireEnd, f.a.Engine().Now())
	} else {
		f.planeFree[pl] = append(f.planeFree[pl], victim)
	}
	return nil
}

// inReserve reports whether blk is parked in the plane's bad-block
// reserve pool. Reserve blocks are invisible to GC and allocation until a
// retirement promotes them; erasing one as a zero-valid "victim" would put
// it in the free list while it still sits in the pool, and a later
// promotion would then hand the same block out twice.
func (f *FTL) inReserve(pl, blk int) bool {
	for _, b := range f.reserve[pl] {
		if b == blk {
			return true
		}
	}
	return false
}

func (f *FTL) isFree(pl, blk int) bool {
	for _, b := range f.planeFree[pl] {
		if b == blk {
			return true
		}
	}
	return false
}

// FlushMapJournal programs the dirty mapping entries to flash as journal
// pages (no live slots; GC reclaims them). Volatile-cache devices pay this
// on every flush-cache command; DuraSSD never does, because the mapping
// table sits in the capacitor-protected cache (paper §2.3).
func (f *FTL) FlushMapJournal(p *sim.Proc, req iotrace.Req) error {
	if f.dirtyMapEntries == 0 {
		return nil
	}
	if f.readOnly {
		return storage.ErrReadOnly
	}
	sp := req.Begin(p, iotrace.LayerFTL)
	defer sp.End(p)
	bytes := f.dirtyMapEntries * int64(f.cfg.MapEntryBytes)
	pages := int((bytes + int64(f.a.Config().PageSize) - 1) / int64(f.a.Config().PageSize))
	for i := 0; i < pages; i++ {
		pl := f.pickPlane()
		if err := f.ensureFree(p, req, pl); err != nil {
			return err
		}
		ppn, err := f.nextPage(pl)
		if err != nil {
			return err
		}
		if err := f.a.ProgramPage(p, req, ppn, nil, nil, false); err != nil {
			return err
		}
		f.stats.MapFlushPages++
	}
	f.dirtyMapEntries = 0
	return nil
}

// ClearMapDirty marks the mapping journal clean without I/O. The DuraSSD
// recovery manager uses it after dumping modified entries under capacitor
// power.
func (f *FTL) ClearMapDirty() { f.dirtyMapEntries = 0 }

// LoadSlots installs logical slots instantly (no virtual time), for
// preconditioning devices and bulk-loading databases before a measured run.
func (f *FTL) LoadSlots(slots []SlotWrite) error {
	ss := f.SlotSize()
	for start := 0; start < len(slots); start += f.cfg.SlotsPerPage {
		end := start + f.cfg.SlotsPerPage
		if end > len(slots) {
			end = len(slots)
		}
		group := slots[start:end]
		pl := f.pickPlane()
		if len(f.planeFree[pl]) < f.cfg.GCThresholdBlocks {
			return ErrNoSpace // bulk load must fit without GC
		}
		ppn, err := f.nextPage(pl)
		if err != nil {
			return err
		}
		tags := make([]nand.SlotTag, len(group))
		var data []byte
		for i, s := range group {
			if int64(s.LPN) >= f.logicalSlots {
				return storage.ErrOutOfRange
			}
			tags[i] = nand.SlotTag{LPN: s.LPN}
			if s.Data != nil && data == nil {
				data = make([]byte, f.a.Config().PageSize)
			}
		}
		if data != nil {
			for i, s := range group {
				if s.Data != nil {
					copy(data[i*ss:(i+1)*ss], s.Data)
				}
			}
		}
		if err := f.a.ProgramPageInstant(ppn, tags, data, false); err != nil {
			return err
		}
		f.commitMapping(ppn, group)
	}
	return nil
}

// CheckInvariants verifies mapping/accounting consistency; tests call it
// after randomized workloads.
func (f *FTL) CheckInvariants() error {
	ncfg := f.a.Config()
	recount := make([]int, ncfg.Blocks())
	var live int64
	for lpn := int64(0); lpn < f.logicalSlots; lpn++ {
		spn := f.mapTab[lpn]
		if spn == invalidSPN {
			continue
		}
		live++
		ppn := nand.PPN(spn / SPN(f.cfg.SlotsPerPage))
		sub := int(spn % SPN(f.cfg.SlotsPerPage))
		if f.a.State(ppn) != nand.PageValid {
			return fmt.Errorf("ftl: lpn %d maps to non-valid page %d", lpn, ppn)
		}
		meta := f.a.Meta(ppn)
		if meta == nil || sub >= len(meta.Slots) || meta.Slots[sub].LPN != storage.LPN(lpn) {
			return fmt.Errorf("ftl: lpn %d OOB mismatch at ppn %d slot %d", lpn, ppn, sub)
		}
		recount[f.a.BlockOf(ppn)]++
	}
	if live != f.liveSlots {
		return fmt.Errorf("ftl: live slots %d, counter says %d", live, f.liveSlots)
	}
	for blk, want := range recount {
		if f.validCount[blk] != want {
			return fmt.Errorf("ftl: block %d valid count %d, recount %d", blk, f.validCount[blk], want)
		}
	}
	return nil
}

func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
