package pgsql

import (
	"testing"
	"time"

	"durassd/internal/dbsim/buffer"
	"durassd/internal/dbsim/index"
	"durassd/internal/host"
	"durassd/internal/sim"
	"durassd/internal/ssd"
	"durassd/internal/storage"
)

func newRig(t *testing.T, kind string, barrier, fpw, realBytes bool) (*sim.Engine, *ssd.Device, *host.FS, *Engine, *Table, Config) {
	t.Helper()
	eng := sim.New()
	var prof ssd.Profile
	if kind == "dura" {
		prof = ssd.DuraSSD(16)
	} else {
		prof = ssd.SSDA(16)
	}
	dev, err := ssd.New(eng, prof)
	if err != nil {
		t.Fatal(err)
	}
	fs := host.NewFS(dev, barrier)
	cfg := Config{
		PageBytes:          8 * storage.KB,
		BufferBytes:        512 * storage.KB,
		DataPages:          15_000,
		FullPageWrites:     fpw,
		CheckpointWALBytes: 2 * storage.MB,
		LogFilePages:       6_000,
		LogFiles:           1,
		RealBytes:          realBytes,
	}
	e, err := Open(eng, fs, fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := e.CreateTable("t", index.Config{RowBytes: 300, MaxRows: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.BulkLoad(30_000); err != nil {
		t.Fatal(err)
	}
	return eng, dev, fs, e, tbl, cfg
}

func TestFullPageWritesLogOnceUntilCheckpoint(t *testing.T) {
	eng, _, _, e, tbl, _ := newRig(t, "dura", false, true, false)
	eng.Go("t", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			tx := e.Begin()
			if err := tx.Update(p, tbl, 42); err != nil {
				t.Errorf("Update: %v", err)
				return
			}
			if err := tx.Commit(p); err != nil {
				t.Errorf("Commit: %v", err)
				return
			}
		}
		if e.FPWImages != 1 {
			t.Errorf("FPW images = %d after 5 updates of one page, want 1", e.FPWImages)
		}
		if err := e.Checkpoint(p); err != nil {
			t.Errorf("Checkpoint: %v", err)
			return
		}
		tx := e.Begin()
		_ = tx.Update(p, tbl, 42)
		_ = tx.Commit(p)
		if e.FPWImages != 2 {
			t.Errorf("FPW images = %d after checkpoint re-arm, want 2", e.FPWImages)
		}
	})
	eng.Run()
	e.Close()
}

func TestFPWInflatesLogVolume(t *testing.T) {
	run := func(fpw bool) int64 {
		eng, _, _, e, tbl, _ := newRig(t, "dura", false, fpw, false)
		eng.Go("t", func(p *sim.Proc) {
			for i := int64(0); i < 400; i++ {
				tx := e.Begin()
				if err := tx.Update(p, tbl, i*73%30_000); err != nil {
					t.Errorf("Update: %v", err)
					return
				}
				if err := tx.Commit(p); err != nil {
					t.Errorf("Commit: %v", err)
					return
				}
			}
		})
		eng.Run()
		e.Close()
		return e.Log().BytesLogged
	}
	with, without := run(true), run(false)
	if with < 5*without {
		t.Fatalf("FPW log volume %d not >> %d; the paper's §2.1 cost is missing", with, without)
	}
}

func TestCheckpointTriggersOnWALBudget(t *testing.T) {
	eng, _, _, e, tbl, _ := newRig(t, "dura", false, true, false)
	eng.Go("t", func(p *sim.Proc) {
		for i := int64(0); i < 600; i++ {
			tx := e.Begin()
			if err := tx.Update(p, tbl, i*37%30_000); err != nil {
				t.Errorf("Update: %v", err)
				return
			}
			if err := tx.Commit(p); err != nil {
				t.Errorf("Commit: %v", err)
				return
			}
		}
	})
	eng.Run()
	e.Close()
	if e.Checkpoints == 0 {
		t.Fatal("WAL budget never triggered a checkpoint")
	}
}

// crashOnce runs updates on a volatile SSD with barriers ON, cuts power
// mid-run, recovers, and reports the recovery outcome.
func crashOnce(t *testing.T, fpw bool, seed int64) (*RecoveryReport, int, int) {
	t.Helper()
	eng, dev, fs, e, tbl, cfg := newRig(t, "ssda", true, fpw, true)
	acked := make(map[buffer.PageID]uint64)
	ackedN := 0
	for c := 0; c < 8; c++ {
		c := c
		eng.Go("w", func(p *sim.Proc) {
			for i := int64(0); i < 800; i++ {
				tx := e.Begin()
				if err := tx.Update(p, tbl, (int64(c)*7919+i*131)%30_000); err != nil {
					return
				}
				if err := tx.Commit(p); err != nil {
					return
				}
				for id, v := range tx.Touched() {
					if v > acked[id] {
						acked[id] = v
					}
				}
				ackedN++
			}
		})
	}
	eng.Schedule(time.Duration(30+seed*37%400)*time.Millisecond, func() { dev.PowerFail() })
	eng.Run()
	e.Close()

	var rep *RecoveryReport
	lost := 0
	eng.Go("r", func(p *sim.Proc) {
		if err := dev.Reboot(p); err != nil {
			t.Errorf("Reboot: %v", err)
			return
		}
		e2, err := Reopen(eng, fs, fs, cfg)
		if err != nil {
			t.Errorf("Reopen: %v", err)
			return
		}
		defer e2.Close()
		rep, err = e2.Recover(p)
		if err != nil {
			t.Errorf("Recover: %v", err)
			return
		}
		for id, want := range acked {
			got, ok, err := e2.PageVersionOnDisk(p, id)
			if err != nil {
				t.Errorf("probe: %v", err)
				return
			}
			if !ok || got < want {
				lost++
			}
		}
	})
	eng.Run()
	return rep, lost, ackedN
}

func TestFPWProtectsVolatileSSDWithBarriers(t *testing.T) {
	// Barriers on + full-page writes: the paper's safe PostgreSQL config.
	for seed := int64(0); seed < 8; seed++ {
		rep, lost, acked := crashOnce(t, true, seed)
		if rep == nil {
			t.Fatal("no recovery report")
		}
		if acked == 0 {
			t.Fatal("nothing acknowledged before the cut")
		}
		if lost != 0 || rep.TornUnrepaired != 0 {
			t.Fatalf("seed %d: lost=%d tornUnrepaired=%d in the safe config", seed, lost, rep.TornUnrepaired)
		}
	}
}

func TestNoFPWOnTornDeviceEventuallyCorrupts(t *testing.T) {
	// full_page_writes off on a device that tears pages: across enough
	// cuts, some torn page must be unrepairable (the §2.1 hazard).
	tornTotal := 0
	for seed := int64(0); seed < 20; seed++ {
		rep, _, _ := crashOnce(t, false, seed)
		if rep != nil {
			tornTotal += rep.TornUnrepaired
		}
	}
	if tornTotal == 0 {
		t.Fatal("no unrepairable torn pages across 20 cuts without FPW — the hazard is not modeled")
	}
}

func TestDuraSSDMakesFPWRedundant(t *testing.T) {
	// On DuraSSD (no torn pages ever) the engine can run FPW-off safely.
	eng, dev, fs, e, tbl, cfg := newRig(t, "dura", false, false, true)
	acked := make(map[buffer.PageID]uint64)
	eng.Go("w", func(p *sim.Proc) {
		for i := int64(0); i < 200; i++ {
			tx := e.Begin()
			if err := tx.Update(p, tbl, i*131%30_000); err != nil {
				return
			}
			if err := tx.Commit(p); err != nil {
				return
			}
			for id, v := range tx.Touched() {
				if v > acked[id] {
					acked[id] = v
				}
			}
		}
	})
	eng.Schedule(4*time.Millisecond, func() { dev.PowerFail() })
	eng.Run()
	e.Close()

	eng.Go("r", func(p *sim.Proc) {
		if err := dev.Reboot(p); err != nil {
			t.Errorf("Reboot: %v", err)
			return
		}
		e2, err := Reopen(eng, fs, fs, cfg)
		if err != nil {
			t.Errorf("Reopen: %v", err)
			return
		}
		defer e2.Close()
		rep, err := e2.Recover(p)
		if err != nil {
			t.Errorf("Recover: %v", err)
			return
		}
		if rep.TornUnrepaired != 0 {
			t.Errorf("torn pages on DuraSSD: %d", rep.TornUnrepaired)
		}
		for id, want := range acked {
			got, ok, err := e2.PageVersionOnDisk(p, id)
			if err != nil || !ok || got < want {
				t.Errorf("acked page %d lost (got %d ok=%v err=%v, want %d)", id, got, ok, err, want)
				return
			}
		}
	})
	eng.Run()
}
