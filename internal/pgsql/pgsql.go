// Package pgsql implements a PostgreSQL-style storage engine, the paper's
// §2.1 second example of software torn-page protection: instead of
// InnoDB's double-write buffer, the engine logs the **entire content of a
// page** into the WAL on the page's first modification after a checkpoint
// (the full_page_writes option). Torn in-place pages are then repaired
// from the logged image during redo — "at the cost of increasing the
// amount of data to be written to the log".
//
// On DuraSSD the option can be switched off: device-level atomic page
// writes make the full images redundant, shrinking the log by an order of
// magnitude for small-transaction workloads. The package's tests and the
// repository benchmarks quantify exactly that trade.
package pgsql

import (
	"fmt"
	"time"

	"durassd/internal/dbsim/buffer"
	"durassd/internal/dbsim/index"
	"durassd/internal/dbsim/wal"
	"durassd/internal/host"
	"durassd/internal/iotrace"
	"durassd/internal/sim"
	"durassd/internal/storage"
)

// Config tunes the engine.
type Config struct {
	PageBytes   int   // PostgreSQL default: 8 KB
	BufferBytes int64 // shared_buffers
	DataPages   int64 // data file capacity in pages

	// FullPageWrites logs a page's whole image on first touch after a
	// checkpoint (the safe default on torn-write storage).
	FullPageWrites bool
	// CheckpointWALBytes triggers a checkpoint after this much WAL
	// (max_wal_size); each checkpoint re-arms full-page logging.
	CheckpointWALBytes int64

	LogFilePages int64
	LogFiles     int
	RealBytes    bool

	CleanerInterval time.Duration
	CleanerBatch    int
	LogRecordBytes  int
	WriteHoldCPU    time.Duration
}

func (c *Config) defaults() error {
	if c.PageBytes <= 0 {
		c.PageBytes = 8 * storage.KB
	}
	if c.BufferBytes <= 0 {
		return fmt.Errorf("pgsql: BufferBytes must be positive")
	}
	if c.DataPages <= 0 {
		return fmt.Errorf("pgsql: DataPages must be positive")
	}
	if c.CheckpointWALBytes <= 0 {
		c.CheckpointWALBytes = 64 * storage.MB
	}
	if c.LogFiles <= 0 {
		c.LogFiles = 2
	}
	if c.LogFilePages <= 0 {
		c.LogFilePages = 32 * 1024
	}
	if c.CleanerInterval == 0 {
		c.CleanerInterval = 5 * time.Millisecond
	}
	if c.CleanerBatch <= 0 {
		c.CleanerBatch = 64
	}
	if c.LogRecordBytes <= 0 {
		c.LogRecordBytes = 128
	}
	if c.WriteHoldCPU == 0 {
		c.WriteHoldCPU = 100*time.Microsecond + 4*time.Microsecond*time.Duration(c.PageBytes/1024)
	}
	return nil
}

// Engine is the storage engine.
type Engine struct {
	eng    *sim.Engine
	cfg    Config
	dataFS *host.FS
	logFS  *host.FS

	dataFile *host.File
	pool     *buffer.Pool
	log      *wal.Log
	tables   map[string]*Table
	nextPage buffer.PageID
	perDB    int

	fpwLogged   map[buffer.PageID]bool // pages whose image is in WAL since last checkpoint
	ckptBase    int64                  // BytesLogged at the last checkpoint
	versions    map[buffer.PageID]uint64
	inCkpt      bool
	Commits     int64
	Checkpoints int64
	FPWImages   int64 // full-page images logged
}

// Open creates an engine on dataFS (data) and logFS (WAL).
func Open(eng *sim.Engine, dataFS, logFS *host.FS, cfg Config) (*Engine, error) {
	return open(eng, dataFS, logFS, cfg, false)
}

// Reopen attaches a fresh engine to existing files after a crash.
func Reopen(eng *sim.Engine, dataFS, logFS *host.FS, cfg Config) (*Engine, error) {
	return open(eng, dataFS, logFS, cfg, true)
}

func open(eng *sim.Engine, dataFS, logFS *host.FS, cfg Config, reopen bool) (*Engine, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	devPage := dataFS.Device().PageSize()
	if cfg.PageBytes%devPage != 0 {
		return nil, fmt.Errorf("pgsql: page %d not a multiple of device page %d", cfg.PageBytes, devPage)
	}
	e := &Engine{
		eng:       eng,
		cfg:       cfg,
		dataFS:    dataFS,
		logFS:     logFS,
		tables:    make(map[string]*Table),
		perDB:     cfg.PageBytes / devPage,
		fpwLogged: make(map[buffer.PageID]bool),
	}
	var err error
	if reopen {
		if e.dataFile, err = dataFS.Open("pgdata"); err != nil {
			return nil, err
		}
		if e.log, err = wal.Reopen(eng, logFS, wal.Config{FilePages: cfg.LogFilePages, Files: cfg.LogFiles, RealBytes: cfg.RealBytes}); err != nil {
			return nil, err
		}
	} else {
		if e.dataFile, err = dataFS.Create("pgdata", cfg.DataPages*int64(e.perDB)); err != nil {
			return nil, err
		}
		if e.log, err = wal.New(eng, logFS, wal.Config{FilePages: cfg.LogFilePages, Files: cfg.LogFiles, RealBytes: cfg.RealBytes}); err != nil {
			return nil, err
		}
	}
	e.dataFile.SetOrigin(iotrace.OriginData)
	e.pool, err = buffer.New(eng, buffer.Config{
		Frames:          int(cfg.BufferBytes / int64(cfg.PageBytes)),
		PageBytes:       cfg.PageBytes,
		RealBytes:       cfg.RealBytes,
		CleanerInterval: cfg.CleanerInterval,
		CleanerBatch:    cfg.CleanerBatch,
	}, (*pageReader)(e), (*pageWriter)(e))
	if err != nil {
		return nil, err
	}
	if cfg.RealBytes {
		e.versions = make(map[buffer.PageID]uint64)
	}
	return e, nil
}

// Pool exposes the buffer pool.
func (e *Engine) Pool() *buffer.Pool { return e.pool }

// Log exposes the WAL.
func (e *Engine) Log() *wal.Log { return e.log }

type pageReader Engine

func (r *pageReader) ReadPage(p *sim.Proc, id buffer.PageID, buf []byte) error {
	e := (*Engine)(r)
	return e.dataFile.ReadPages(p, int64(id)*int64(e.perDB), e.perDB, buf)
}

// pageWriter persists dirty pages: WAL first, then plain in-place writes
// plus one fsync per batch. No double-write — torn-page protection is the
// WAL's full images (when enabled).
type pageWriter Engine

func (w *pageWriter) WritePages(p *sim.Proc, pages []buffer.PageWrite) error {
	e := (*Engine)(w)
	var maxLSN uint64
	for _, pg := range pages {
		if pg.LSN > maxLSN {
			maxLSN = pg.LSN
		}
	}
	if maxLSN > 0 {
		if err := e.log.Commit(p, maxLSN); err != nil {
			return err
		}
	}
	for _, pg := range pages {
		if err := e.dataFile.WritePages(p, int64(pg.ID)*int64(e.perDB), e.perDB, pg.Data); err != nil {
			return err
		}
	}
	return e.dataFile.Fdatasync(p)
}

// Table is an index-organized table.
type Table struct {
	e    *Engine
	name string
	tree *index.Tree
}

// CreateTable reserves space for a table.
func (e *Engine) CreateTable(name string, cfg index.Config) (*Table, error) {
	if _, ok := e.tables[name]; ok {
		return nil, fmt.Errorf("pgsql: table %q exists", name)
	}
	cfg.PageBytes = e.cfg.PageBytes
	tree, err := index.New(cfg, e.nextPage)
	if err != nil {
		return nil, err
	}
	if int64(e.nextPage)+tree.Pages() > e.cfg.DataPages {
		return nil, fmt.Errorf("pgsql: data file full creating %q", name)
	}
	e.nextPage += buffer.PageID(tree.Pages())
	t := &Table{e: e, name: name, tree: tree}
	e.tables[name] = t
	return t, nil
}

// Tree exposes the table's topology.
func (t *Table) Tree() *index.Tree { return t.tree }

// BulkLoad installs rows instantly.
func (t *Table) BulkLoad(rows int64) error {
	t.tree.SetRows(rows)
	start := int64(t.tree.LeafOf(0)) * int64(t.e.perDB)
	return t.e.dataFile.Preload(start, t.tree.Pages()*int64(t.e.perDB), nil)
}

// AdoptTable re-registers a table after Reopen.
func (e *Engine) AdoptTable(name string, t *Table) {
	t.e = e
	e.tables[name] = t
	end := t.tree.LeafOf(0) + buffer.PageID(t.tree.Pages())
	if end > e.nextPage {
		e.nextPage = end
	}
}

// Tx is a transaction handle.
type Tx struct {
	e       *Engine
	maxLSN  uint64
	writes  int
	touched map[buffer.PageID]uint64
}

// Begin starts a transaction.
func (e *Engine) Begin() *Tx { return &Tx{e: e} }

// Touched returns the page versions written (RealBytes mode).
func (tx *Tx) Touched() map[buffer.PageID]uint64 { return tx.touched }

func (e *Engine) touchRead(p *sim.Proc, id buffer.PageID) error {
	fr, err := e.pool.Get(p, id)
	if err != nil {
		return err
	}
	e.pool.Unpin(fr)
	return nil
}

// touchWrite applies one row change, logging a full page image on the
// page's first modification since the last checkpoint when FPW is on.
func (e *Engine) touchWrite(p *sim.Proc, tx *Tx, id buffer.PageID) error {
	fr, err := e.pool.Get(p, id)
	if err != nil {
		return err
	}
	e.pool.LockX(p, fr)
	p.Sleep(e.cfg.WriteHoldCPU)
	var ver uint64
	if e.cfg.RealBytes {
		e.versions[id]++
		ver = e.versions[id]
		storage.BuildPageImage(fr.Data(), uint64(id), ver)
	}
	var lsn uint64
	if e.cfg.FullPageWrites && !e.fpwLogged[id] {
		e.fpwLogged[id] = true
		e.FPWImages++
		if e.cfg.RealBytes {
			lsn = e.log.AppendFullImage(uint64(id), ver, e.cfg.PageBytes+e.cfg.LogRecordBytes)
		} else {
			lsn = e.log.Append(e.cfg.PageBytes + e.cfg.LogRecordBytes)
		}
	} else if e.cfg.RealBytes {
		lsn = e.log.AppendRecord(uint64(id), ver, e.cfg.LogRecordBytes)
	} else {
		lsn = e.log.Append(e.cfg.LogRecordBytes)
	}
	if e.cfg.RealBytes {
		if tx.touched == nil {
			tx.touched = make(map[buffer.PageID]uint64)
		}
		tx.touched[id] = ver
	}
	if lsn > tx.maxLSN {
		tx.maxLSN = lsn
	}
	tx.writes++
	e.pool.MarkDirty(fr, lsn)
	e.pool.UnlockX(fr)
	e.pool.Unpin(fr)
	return nil
}

// Lookup reads the row at rank.
func (tx *Tx) Lookup(p *sim.Proc, t *Table, rank int64) error {
	for _, id := range t.tree.SearchPath(rank) {
		if err := tx.e.touchRead(p, id); err != nil {
			return err
		}
	}
	return nil
}

// Update modifies the row at rank.
func (tx *Tx) Update(p *sim.Proc, t *Table, rank int64) error {
	path := t.tree.SearchPath(rank)
	for _, id := range path[:len(path)-1] {
		if err := tx.e.touchRead(p, id); err != nil {
			return err
		}
	}
	return tx.e.touchWrite(p, tx, path[len(path)-1])
}

// Insert adds a row at rank.
func (tx *Tx) Insert(p *sim.Proc, t *Table, rank int64) error {
	path := t.tree.SearchPath(rank)
	for _, id := range path[:len(path)-1] {
		if err := tx.e.touchRead(p, id); err != nil {
			return err
		}
	}
	for _, id := range t.tree.Insert(rank) {
		if err := tx.e.touchWrite(p, tx, id); err != nil {
			return err
		}
	}
	return nil
}

// Commit flushes the WAL up to the transaction's LSN (group commit) and
// triggers a checkpoint if the WAL budget is spent.
func (tx *Tx) Commit(p *sim.Proc) error {
	if tx.writes > 0 {
		if err := tx.e.log.Commit(p, tx.maxLSN); err != nil {
			return err
		}
		tx.e.Commits++
	}
	if tx.e.log.BytesLogged-tx.e.ckptBase > tx.e.cfg.CheckpointWALBytes {
		return tx.e.Checkpoint(p)
	}
	return nil
}

// Checkpoint flushes every dirty page and re-arms full-page logging.
// Concurrent callers coalesce onto one checkpoint.
func (e *Engine) Checkpoint(p *sim.Proc) error {
	if e.inCkpt {
		return nil // another backend is already checkpointing
	}
	e.inCkpt = true
	defer func() { e.inCkpt = false }()
	e.ckptBase = e.log.BytesLogged
	if err := e.pool.FlushAll(p); err != nil {
		return err
	}
	e.fpwLogged = make(map[buffer.PageID]bool)
	e.Checkpoints++
	return nil
}

// FlushAll checkpoints (alias for symmetry with innodb).
func (e *Engine) FlushAll(p *sim.Proc) error { return e.Checkpoint(p) }

// Close stops background workers.
func (e *Engine) Close() { e.pool.Close() }

// RecoveryReport summarizes crash recovery.
type RecoveryReport struct {
	RedoRecords    int
	RedoApplied    int
	TornRepaired   int // torn pages re-established from full-page images
	TornUnrepaired int // torn pages with no full image (full_page_writes off!)
}

// Recover replays the WAL (RealBytes mode): full-page images establish
// page bases (repairing torn pages); delta records roll intact pages
// forward. Without full-page writes, a torn page is unrepairable — unless
// the device never tears pages, which is DuraSSD's whole pitch.
func (e *Engine) Recover(p *sim.Proc) (*RecoveryReport, error) {
	if !e.cfg.RealBytes {
		return nil, fmt.Errorf("pgsql: Recover requires RealBytes mode")
	}
	rep := &RecoveryReport{}
	recs, err := e.log.ReadAll(p)
	if err != nil {
		return nil, err
	}
	rep.RedoRecords = len(recs)
	pageBuf := make([]byte, e.cfg.PageBytes)
	state := make(map[uint64]uint64) // on-disk version; 0 = absent
	torn := make(map[uint64]bool)
	probe := func(id uint64) (uint64, error) {
		if v, ok := state[id]; ok {
			return v, nil
		}
		if err := e.dataFile.ReadPages(p, int64(id)*int64(e.perDB), e.perDB, pageBuf); err != nil {
			return 0, err
		}
		gotID, ver, ok := storage.ParsePageImage(pageBuf)
		if !ok || gotID != id {
			ver = 0
			if !ok && isNonZero(pageBuf) {
				torn[id] = true
				rep.TornUnrepaired++
			}
		}
		state[id] = ver
		return ver, nil
	}
	for _, rec := range recs {
		ver, err := probe(rec.Page)
		if err != nil {
			return nil, err
		}
		if torn[rec.Page] {
			if !rec.FullImage {
				continue // delta on a torn base: unusable
			}
			delete(torn, rec.Page)
			rep.TornUnrepaired--
			rep.TornRepaired++
			ver = 0
		}
		if ver < rec.Version {
			storage.BuildPageImage(pageBuf, rec.Page, rec.Version)
			if err := e.dataFile.WritePages(p, int64(rec.Page)*int64(e.perDB), e.perDB, pageBuf); err != nil {
				return nil, err
			}
			state[rec.Page] = rec.Version
			rep.RedoApplied++
		}
	}
	for id, v := range state {
		if v > 0 {
			e.versions[buffer.PageID(id)] = v
		}
	}
	return rep, nil
}

// PageVersionOnDisk reads a page's image version directly from storage.
func (e *Engine) PageVersionOnDisk(p *sim.Proc, id buffer.PageID) (uint64, bool, error) {
	buf := make([]byte, e.cfg.PageBytes)
	if err := e.dataFile.ReadPages(p, int64(id)*int64(e.perDB), e.perDB, buf); err != nil {
		return 0, false, err
	}
	gotID, ver, ok := storage.ParsePageImage(buf)
	if !ok || gotID != uint64(id) {
		return 0, false, nil
	}
	return ver, true, nil
}

func isNonZero(b []byte) bool {
	for _, x := range b {
		if x != 0 {
			return true
		}
	}
	return false
}
