package btree

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"durassd/internal/host"
	"durassd/internal/sim"
	"durassd/internal/ssd"
	"durassd/internal/storage"
)

type rig struct {
	eng  *sim.Engine
	dev  *ssd.Device
	fs   *host.FS
	file *host.File
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := sim.New()
	dev, err := ssd.New(eng, ssd.DuraSSD(16))
	if err != nil {
		t.Fatal(err)
	}
	fs := host.NewFS(dev, false) // DuraSSD: barriers off, still durable
	file, err := fs.Create("tree.db", dev.Pages()/2)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{eng: eng, dev: dev, fs: fs, file: file}
}

// run executes fn as a simulated process and drains the engine.
func (r *rig) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	r.eng.Go("test", fn)
	r.eng.Run()
}

func TestCreateOpenEmpty(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		tr, err := Create(p, r.file, 4*storage.KB)
		if err != nil {
			t.Errorf("Create: %v", err)
			return
		}
		if tr.Height() != 1 {
			t.Errorf("height = %d, want 1", tr.Height())
		}
		if _, err := tr.Get(p, 42); err != ErrNotFound {
			t.Errorf("Get on empty = %v, want ErrNotFound", err)
		}
		tr2, err := Open(p, r.file, 4*storage.KB)
		if err != nil {
			t.Errorf("Open: %v", err)
			return
		}
		if tr2.Height() != 1 {
			t.Errorf("reopened height = %d", tr2.Height())
		}
	})
}

func TestPutGetRoundTrip(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		tr, err := Create(p, r.file, 4*storage.KB)
		if err != nil {
			t.Errorf("Create: %v", err)
			return
		}
		for i := uint64(0); i < 100; i++ {
			if err := tr.Put(p, i, []byte(fmt.Sprintf("value-%d", i))); err != nil {
				t.Errorf("Put %d: %v", i, err)
				return
			}
		}
		for i := uint64(0); i < 100; i++ {
			v, err := tr.Get(p, i)
			if err != nil || string(v) != fmt.Sprintf("value-%d", i) {
				t.Errorf("Get %d = %q, %v", i, v, err)
				return
			}
		}
	})
}

func TestOverwrite(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		tr, _ := Create(p, r.file, 4*storage.KB)
		if err := tr.Put(p, 7, []byte("old")); err != nil {
			t.Errorf("Put: %v", err)
		}
		if err := tr.Put(p, 7, []byte("new-and-longer")); err != nil {
			t.Errorf("overwrite: %v", err)
		}
		v, err := tr.Get(p, 7)
		if err != nil || string(v) != "new-and-longer" {
			t.Errorf("Get = %q, %v", v, err)
		}
	})
}

func TestSplitsGrowHeight(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		tr, _ := Create(p, r.file, 4*storage.KB)
		val := make([]byte, 100)
		for i := uint64(0); i < 2000; i++ {
			if err := tr.Put(p, i, val); err != nil {
				t.Errorf("Put %d: %v", i, err)
				return
			}
		}
		if tr.Height() < 2 {
			t.Errorf("height = %d after 2000 inserts, expected splits", tr.Height())
		}
		if err := tr.Check(p); err != nil {
			t.Errorf("Check: %v", err)
		}
		for _, k := range []uint64{0, 999, 1999} {
			if _, err := tr.Get(p, k); err != nil {
				t.Errorf("Get %d after splits: %v", k, err)
			}
		}
	})
}

func TestDelete(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		tr, _ := Create(p, r.file, 4*storage.KB)
		for i := uint64(0); i < 50; i++ {
			_ = tr.Put(p, i, []byte("x"))
		}
		if err := tr.Delete(p, 25); err != nil {
			t.Errorf("Delete: %v", err)
		}
		if _, err := tr.Get(p, 25); err != ErrNotFound {
			t.Errorf("Get deleted = %v", err)
		}
		if err := tr.Delete(p, 25); err != ErrNotFound {
			t.Errorf("double delete = %v", err)
		}
		if _, err := tr.Get(p, 24); err != nil {
			t.Errorf("neighbor gone: %v", err)
		}
	})
}

func TestScan(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		tr, _ := Create(p, r.file, 4*storage.KB)
		for i := uint64(0); i < 500; i++ {
			_ = tr.Put(p, i*2, []byte{byte(i)}) // even keys
		}
		var got []uint64
		err := tr.Scan(p, 100, 10, func(k uint64, v []byte) bool {
			got = append(got, k)
			return true
		})
		if err != nil {
			t.Errorf("Scan: %v", err)
			return
		}
		if len(got) != 10 || got[0] != 100 || got[9] != 118 {
			t.Errorf("scan result %v", got)
		}
	})
}

func TestPersistenceAcrossOpen(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		tr, _ := Create(p, r.file, 4*storage.KB)
		for i := uint64(0); i < 1500; i++ {
			_ = tr.Put(p, i, []byte("persist"))
		}
	})
	r.run(t, func(p *sim.Proc) {
		tr, err := Open(p, r.file, 4*storage.KB)
		if err != nil {
			t.Errorf("Open: %v", err)
			return
		}
		if err := tr.Check(p); err != nil {
			t.Errorf("Check: %v", err)
		}
		if v, err := tr.Get(p, 1234); err != nil || string(v) != "persist" {
			t.Errorf("Get after reopen = %q, %v", v, err)
		}
	})
}

func TestValueTooLarge(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		tr, _ := Create(p, r.file, 4*storage.KB)
		if err := tr.Put(p, 1, make([]byte, 4096)); err != ErrValueSize {
			t.Errorf("oversized Put = %v", err)
		}
	})
}

// TestRandomOpsMatchModel is a property test: random Put/Delete/Get
// sequences agree with a map model, and the tree stays structurally valid.
func TestRandomOpsMatchModel(t *testing.T) {
	check := func(seed int64) bool {
		r := newRig(t)
		ok := true
		r.run(t, func(p *sim.Proc) {
			tr, err := Create(p, r.file, 4*storage.KB)
			if err != nil {
				ok = false
				return
			}
			rng := rand.New(rand.NewSource(seed))
			model := make(map[uint64][]byte)
			for i := 0; i < 800 && ok; i++ {
				k := uint64(rng.Intn(300))
				switch rng.Intn(10) {
				case 0, 1, 2, 3, 4, 5:
					v := make([]byte, 1+rng.Intn(64))
					rng.Read(v)
					if err := tr.Put(p, k, v); err != nil {
						ok = false
					}
					model[k] = v
				case 6, 7:
					err := tr.Delete(p, k)
					if _, in := model[k]; in {
						if err != nil {
							ok = false
						}
						delete(model, k)
					} else if err != ErrNotFound {
						ok = false
					}
				default:
					v, err := tr.Get(p, k)
					want, in := model[k]
					if in {
						if err != nil || string(v) != string(want) {
							ok = false
						}
					} else if err != ErrNotFound {
						ok = false
					}
				}
			}
			if err := tr.Check(p); err != nil {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}
