// Package btree implements a byte-exact, page-level B+-tree over a host
// file: checksummed fixed-size pages, uint64 keys, small byte-slice values,
// leaf splits, range scans and a persistent superblock.
//
// The tree issues one device write per modified page and never journals:
// on a device with atomic page writes (DuraSSD) that is crash-safe by
// construction, which is exactly the "leaner and more robust design"
// opportunity the paper's introduction claims. On a device that can tear
// pages, the checksums expose the corruption — the crash harnesses and the
// examples use both sides of that coin.
package btree

import (
	"encoding/binary"
	"errors"
	"fmt"

	"durassd/internal/sim"
	"durassd/internal/storage"
)

// File is the storage surface the tree needs: host.File satisfies it, and
// wrappers (e.g. the sqlite package's rollback-journaled file) can
// interpose on the write path.
type File interface {
	ReadPages(p *sim.Proc, off int64, n int, buf []byte) error
	WritePages(p *sim.Proc, off int64, n int, data []byte) error
	PageSize() int
	Pages() int64
}

// Errors.
var (
	ErrNotFound  = errors.New("btree: key not found")
	ErrCorrupt   = errors.New("btree: page checksum mismatch (torn write?)")
	ErrValueSize = errors.New("btree: value too large for page")
	ErrFull      = errors.New("btree: file out of pages")
)

const (
	magic         = 0xD17A55D0
	pageTypeLeaf  = 1
	pageTypeInner = 2

	hdrChecksum = 0  // uint32
	hdrType     = 4  // byte
	hdrCount    = 5  // uint16
	hdrSelf     = 7  // uint64
	hdrRight    = 15 // uint64 (leaf sibling)
	hdrEnd      = 23

	innerEntry = 16 // key + child
)

// Tree is a B+-tree rooted in a file. One Tree must be used from one
// simulated process at a time.
type Tree struct {
	file      File
	pageBytes int
	perPage   int // device pages per tree page

	root   uint64
	next   uint64 // next unallocated page
	height int
}

// Create formats a new tree on the file with the given page size (a
// multiple of the device page).
func Create(p *sim.Proc, file File, pageBytes int) (*Tree, error) {
	devPage := file.PageSize()
	if pageBytes <= hdrEnd || pageBytes%devPage != 0 {
		return nil, fmt.Errorf("btree: bad page size %d", pageBytes)
	}
	t := &Tree{file: file, pageBytes: pageBytes, perPage: pageBytes / devPage}
	t.root = 1
	t.next = 2
	t.height = 1
	// Empty leaf root.
	leaf := t.newPage(pageTypeLeaf, t.root)
	if err := t.writePage(p, t.root, leaf); err != nil {
		return nil, err
	}
	if err := t.writeSuper(p); err != nil {
		return nil, err
	}
	return t, nil
}

// Open loads an existing tree from the file.
func Open(p *sim.Proc, file File, pageBytes int) (*Tree, error) {
	devPage := file.PageSize()
	if pageBytes <= hdrEnd || pageBytes%devPage != 0 {
		return nil, fmt.Errorf("btree: bad page size %d", pageBytes)
	}
	t := &Tree{file: file, pageBytes: pageBytes, perPage: pageBytes / devPage}
	super := make([]byte, pageBytes)
	if err := file.ReadPages(p, 0, t.perPage, super); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(super[0:4]) != storage.Checksum(super[4:]) {
		return nil, ErrCorrupt
	}
	if binary.LittleEndian.Uint32(super[4:8]) != magic {
		return nil, fmt.Errorf("btree: bad magic")
	}
	t.root = binary.LittleEndian.Uint64(super[8:16])
	t.next = binary.LittleEndian.Uint64(super[16:24])
	t.height = int(binary.LittleEndian.Uint32(super[24:28]))
	return t, nil
}

// Height returns the current tree height (1 = a single leaf).
func (t *Tree) Height() int { return t.height }

// PageBytes returns the tree page size.
func (t *Tree) PageBytes() int { return t.pageBytes }

func (t *Tree) writeSuper(p *sim.Proc) error {
	super := make([]byte, t.pageBytes)
	binary.LittleEndian.PutUint32(super[4:8], magic)
	binary.LittleEndian.PutUint64(super[8:16], t.root)
	binary.LittleEndian.PutUint64(super[16:24], t.next)
	binary.LittleEndian.PutUint32(super[24:28], uint32(t.height))
	binary.LittleEndian.PutUint32(super[0:4], storage.Checksum(super[4:]))
	return t.file.WritePages(p, 0, t.perPage, super)
}

func (t *Tree) newPage(typ byte, id uint64) []byte {
	pg := make([]byte, t.pageBytes)
	pg[hdrType] = typ
	binary.LittleEndian.PutUint64(pg[hdrSelf:], id)
	return pg
}

func (t *Tree) alloc() (uint64, error) {
	if int64(t.next+1)*int64(t.perPage) > t.file.Pages() {
		return 0, ErrFull
	}
	id := t.next
	t.next++
	return id, nil
}

// allocPersist reserves n pages and persists the allocation pointer BEFORE
// the pages are used, so a crash can never lead to re-allocating pages that
// a committed split already references. A crash after this write merely
// leaks the reservation.
func (t *Tree) allocPersist(p *sim.Proc, n int) ([]uint64, error) {
	ids := make([]uint64, n)
	for i := range ids {
		id, err := t.alloc()
		if err != nil {
			return nil, err
		}
		ids[i] = id
	}
	if err := t.writeSuper(p); err != nil {
		return nil, err
	}
	return ids, nil
}

func (t *Tree) readPage(p *sim.Proc, id uint64) ([]byte, error) {
	pg := make([]byte, t.pageBytes)
	if err := t.file.ReadPages(p, int64(id)*int64(t.perPage), t.perPage, pg); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(pg[0:4]) != storage.Checksum(pg[4:]) {
		return nil, fmt.Errorf("%w: page %d", ErrCorrupt, id)
	}
	if got := binary.LittleEndian.Uint64(pg[hdrSelf:]); got != id {
		return nil, fmt.Errorf("%w: page %d claims id %d", ErrCorrupt, id, got)
	}
	return pg, nil
}

func (t *Tree) writePage(p *sim.Proc, id uint64, pg []byte) error {
	binary.LittleEndian.PutUint32(pg[0:4], storage.Checksum(pg[4:]))
	return t.file.WritePages(p, int64(id)*int64(t.perPage), t.perPage, pg)
}

// --- page accessors ---

func count(pg []byte) int       { return int(binary.LittleEndian.Uint16(pg[hdrCount:])) }
func setCount(pg []byte, n int) { binary.LittleEndian.PutUint16(pg[hdrCount:], uint16(n)) }

// Inner pages store: keys[count] then children[count+1], fixed 8-byte each.
func innerKey(pg []byte, i int) uint64 {
	return binary.LittleEndian.Uint64(pg[hdrEnd+8*i:])
}
func innerChild(pg []byte, n, i int) uint64 {
	return binary.LittleEndian.Uint64(pg[hdrEnd+8*n+8*i:])
}
func innerCapacity(pageBytes int) int {
	return (pageBytes - hdrEnd - 8) / innerEntry
}

// Leaf pages store a sorted directory of (key, offset) pairs growing from
// hdrEnd, and values growing down from the end.
// Entry: key uint64, voff uint16, vlen uint16 — 12 bytes.
const leafEntry = 12

func leafKey(pg []byte, i int) uint64 {
	return binary.LittleEndian.Uint64(pg[hdrEnd+leafEntry*i:])
}
func leafVal(pg []byte, i int) []byte {
	off := binary.LittleEndian.Uint16(pg[hdrEnd+leafEntry*i+8:])
	vlen := binary.LittleEndian.Uint16(pg[hdrEnd+leafEntry*i+10:])
	return pg[off : off+vlen]
}
func leafRight(pg []byte) uint64       { return binary.LittleEndian.Uint64(pg[hdrRight:]) }
func setLeafRight(pg []byte, r uint64) { binary.LittleEndian.PutUint64(pg[hdrRight:], r) }

// leafSearch returns the index of key, or (insert position, false).
func leafSearch(pg []byte, key uint64) (int, bool) {
	lo, hi := 0, count(pg)
	for lo < hi {
		mid := (lo + hi) / 2
		k := leafKey(pg, mid)
		if k == key {
			return mid, true
		}
		if k < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, false
}

// innerDescend picks the child covering key.
func innerDescend(pg []byte, key uint64) uint64 {
	n := count(pg)
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if innerKey(pg, mid) <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return innerChild(pg, n, lo)
}

// Get returns the value stored at key.
func (t *Tree) Get(p *sim.Proc, key uint64) ([]byte, error) {
	pg, _, err := t.findLeaf(p, key)
	if err != nil {
		return nil, err
	}
	i, ok := leafSearch(pg, key)
	if !ok {
		return nil, ErrNotFound
	}
	return append([]byte(nil), leafVal(pg, i)...), nil
}

func (t *Tree) findLeaf(p *sim.Proc, key uint64) (pg []byte, path []uint64, err error) {
	id := t.root
	for level := 0; ; level++ {
		pg, err = t.readPage(p, id)
		if err != nil {
			return nil, nil, err
		}
		path = append(path, id)
		if pg[hdrType] == pageTypeLeaf {
			return pg, path, nil
		}
		id = innerDescend(pg, key)
	}
}

// Put inserts or replaces the value at key.
func (t *Tree) Put(p *sim.Proc, key uint64, value []byte) error {
	if len(value) > t.pageBytes/4 {
		return ErrValueSize
	}
	leaf, path, err := t.findLeaf(p, key)
	if err != nil {
		return err
	}
	leafID := path[len(path)-1]
	if t.leafFits(leaf, key, value) {
		t.leafInsert(leaf, key, value)
		return t.writePage(p, leafID, leaf)
	}
	// Copy-on-write split: both halves go to fresh pages and the old leaf
	// is left untouched, so the single-page parent update below is the
	// atomic commit point — a crash at any instant leaves either the old
	// tree or the new one, never a mix.
	ids, err := t.allocPersist(p, 2)
	if err != nil {
		return err
	}
	newLeftID, newRightID := ids[0], ids[1]
	items := leafItems(leaf)
	pos := 0
	replaced := false
	for pos < len(items) && items[pos].k < key {
		pos++
	}
	if pos < len(items) && items[pos].k == key {
		items[pos].v = value
		replaced = true
	}
	if !replaced {
		items = append(items, kvPair{})
		copy(items[pos+1:], items[pos:])
		items[pos] = kvPair{key, value}
	}
	mid := len(items) / 2
	sepKey := items[mid].k
	left := t.newPage(pageTypeLeaf, newLeftID)
	t.leafRebuild(left, items[:mid])
	right := t.newPage(pageTypeLeaf, newRightID)
	t.leafRebuild(right, items[mid:])
	if err := t.writePage(p, newRightID, right); err != nil {
		return err
	}
	if err := t.writePage(p, newLeftID, left); err != nil {
		return err
	}
	return t.replaceInParent(p, path[:len(path)-1], leafID, newLeftID, sepKey, newRightID)
}

// leafFits reports whether (key, value) can be placed in the leaf,
// accounting for replacement of an existing value.
func (t *Tree) leafFits(pg []byte, key uint64, value []byte) bool {
	n := count(pg)
	used := hdrEnd + leafEntry*n
	var valBytes int
	for i := 0; i < n; i++ {
		valBytes += len(leafVal(pg, i))
	}
	if i, ok := leafSearch(pg, key); ok {
		valBytes -= len(leafVal(pg, i))
		return used+valBytes+len(value) <= t.pageBytes
	}
	return used+leafEntry+valBytes+len(value) <= t.pageBytes
}

// kvPair is one leaf entry during rebuilds.
type kvPair struct {
	k uint64
	v []byte
}

// leafItems extracts a leaf's entries (values copied).
func leafItems(pg []byte) []kvPair {
	n := count(pg)
	items := make([]kvPair, n)
	for i := 0; i < n; i++ {
		items[i] = kvPair{leafKey(pg, i), append([]byte(nil), leafVal(pg, i)...)}
	}
	return items
}

// leafInsert rewrites the leaf with (key, value) applied. Rebuilding
// compacts the value heap, so deletes and replacements never fragment.
func (t *Tree) leafInsert(pg []byte, key uint64, value []byte) {
	items := leafItems(pg)
	pos, ok := 0, false
	for i, it := range items {
		if it.k >= key {
			pos, ok = i, it.k == key
			break
		}
		pos = i + 1
	}
	if ok {
		items[pos].v = value
	} else {
		items = append(items, kvPair{})
		copy(items[pos+1:], items[pos:])
		items[pos] = kvPair{key, value}
	}
	t.leafRebuild(pg, items)
}

// leafRebuild writes the sorted items into the page: directory from the
// front, value heap from the back.
func (t *Tree) leafRebuild(pg []byte, items []kvPair) {
	self := binary.LittleEndian.Uint64(pg[hdrSelf:])
	right := leafRight(pg)
	for i := hdrEnd; i < len(pg); i++ {
		pg[i] = 0
	}
	pg[hdrType] = pageTypeLeaf
	binary.LittleEndian.PutUint64(pg[hdrSelf:], self)
	setLeafRight(pg, right)
	setCount(pg, len(items))
	heap := t.pageBytes
	for i, it := range items {
		heap -= len(it.v)
		copy(pg[heap:], it.v)
		e := hdrEnd + leafEntry*i
		binary.LittleEndian.PutUint64(pg[e:], it.k)
		binary.LittleEndian.PutUint16(pg[e+8:], uint16(heap))
		binary.LittleEndian.PutUint16(pg[e+10:], uint16(len(it.v)))
	}
}

// replaceInParent atomically swings the parent pointer from oldChild to
// newLeft and inserts (sepKey -> newRight). The parent update is a single
// page write (atomic on DuraSSD); if the parent itself overflows it is
// split copy-on-write and the commitment recurses upward, ending at a
// superblock write for a root split.
func (t *Tree) replaceInParent(p *sim.Proc, path []uint64, oldChild, newLeft uint64, sepKey uint64, newRight uint64) error {
	if len(path) == 0 {
		// oldChild was the root: commit by publishing a new root in the
		// superblock.
		ids, err := t.allocPersist(p, 1)
		if err != nil {
			return err
		}
		root := t.newPage(pageTypeInner, ids[0])
		setCount(root, 1)
		binary.LittleEndian.PutUint64(root[hdrEnd:], sepKey)
		binary.LittleEndian.PutUint64(root[hdrEnd+8:], newLeft)
		binary.LittleEndian.PutUint64(root[hdrEnd+16:], newRight)
		if err := t.writePage(p, ids[0], root); err != nil {
			return err
		}
		t.root = ids[0]
		t.height++
		return t.writeSuper(p)
	}
	parentID := path[len(path)-1]
	parent, err := t.readPage(p, parentID)
	if err != nil {
		return err
	}
	keys, children := innerItems(parent)
	pos := -1
	for i, c := range children {
		if c == oldChild {
			pos = i
			break
		}
	}
	if pos < 0 {
		return fmt.Errorf("btree: parent %d does not reference child %d", parentID, oldChild)
	}
	children[pos] = newLeft
	keys = append(keys, 0)
	copy(keys[pos+1:], keys[pos:])
	keys[pos] = sepKey
	children = append(children, 0)
	copy(children[pos+2:], children[pos+1:])
	children[pos+1] = newRight

	if len(keys) <= innerCapacity(t.pageBytes) {
		innerRebuild(parent, keys, children)
		return t.writePage(p, parentID, parent) // atomic commit point
	}
	// Inner overflow: copy-on-write split of the parent.
	ids, err := t.allocPersist(p, 2)
	if err != nil {
		return err
	}
	mid := len(keys) / 2
	upKey := keys[mid]
	leftPg := t.newPage(pageTypeInner, ids[0])
	innerRebuild(leftPg, keys[:mid], children[:mid+1])
	rightPg := t.newPage(pageTypeInner, ids[1])
	innerRebuild(rightPg, keys[mid+1:], children[mid+1:])
	if err := t.writePage(p, ids[1], rightPg); err != nil {
		return err
	}
	if err := t.writePage(p, ids[0], leftPg); err != nil {
		return err
	}
	return t.replaceInParent(p, path[:len(path)-1], parentID, ids[0], upKey, ids[1])
}

func innerItems(pg []byte) (keys []uint64, children []uint64) {
	n := count(pg)
	keys = make([]uint64, n)
	children = make([]uint64, n+1)
	for i := 0; i < n; i++ {
		keys[i] = innerKey(pg, i)
	}
	for i := 0; i <= n; i++ {
		children[i] = innerChild(pg, n, i)
	}
	return keys, children
}

func innerRebuild(pg []byte, keys []uint64, children []uint64) {
	self := binary.LittleEndian.Uint64(pg[hdrSelf:])
	for i := hdrEnd; i < len(pg); i++ {
		pg[i] = 0
	}
	pg[hdrType] = pageTypeInner
	binary.LittleEndian.PutUint64(pg[hdrSelf:], self)
	setCount(pg, len(keys))
	for i, k := range keys {
		binary.LittleEndian.PutUint64(pg[hdrEnd+8*i:], k)
	}
	base := hdrEnd + 8*len(keys)
	for i, c := range children {
		binary.LittleEndian.PutUint64(pg[base+8*i:], c)
	}
}

// Delete removes key, returning ErrNotFound if absent. Leaves are not
// rebalanced (InnoDB-style lazy deletion).
func (t *Tree) Delete(p *sim.Proc, key uint64) error {
	leaf, path, err := t.findLeaf(p, key)
	if err != nil {
		return err
	}
	i, ok := leafSearch(leaf, key)
	if !ok {
		return ErrNotFound
	}
	items := leafItems(leaf)
	items = append(items[:i], items[i+1:]...)
	t.leafRebuild(leaf, items)
	return t.writePage(p, path[len(path)-1], leaf)
}

// Scan visits up to limit key/value pairs with key >= start in order.
// Because splits are copy-on-write (no maintained sibling chain), the scan
// re-descends for each successor leaf, using the inner separators seen on
// the way down to find the next leaf's key range. fn returning false stops
// the scan.
func (t *Tree) Scan(p *sim.Proc, start uint64, limit int, fn func(key uint64, value []byte) bool) error {
	seen := 0
	cursor := start
	for seen < limit {
		leaf, nextSep, haveNext, err := t.findLeafWithSuccessor(p, cursor)
		if err != nil {
			return err
		}
		n := count(leaf)
		for i := 0; i < n && seen < limit; i++ {
			k := leafKey(leaf, i)
			if k < cursor {
				continue
			}
			if !fn(k, append([]byte(nil), leafVal(leaf, i)...)) {
				return nil
			}
			seen++
		}
		if seen >= limit || !haveNext {
			return nil
		}
		cursor = nextSep
	}
	return nil
}

// findLeafWithSuccessor descends to the leaf covering key and also returns
// the smallest inner separator greater than key (the start of the next
// leaf's range), if one exists.
func (t *Tree) findLeafWithSuccessor(p *sim.Proc, key uint64) (leaf []byte, nextSep uint64, haveNext bool, err error) {
	id := t.root
	for {
		pg, err := t.readPage(p, id)
		if err != nil {
			return nil, 0, false, err
		}
		if pg[hdrType] == pageTypeLeaf {
			return pg, nextSep, haveNext, nil
		}
		n := count(pg)
		// Child to descend into, and the separator bounding it above.
		lo, hi := 0, n
		for lo < hi {
			mid := (lo + hi) / 2
			if innerKey(pg, mid) <= key {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < n {
			sep := innerKey(pg, lo)
			if !haveNext || sep < nextSep {
				nextSep, haveNext = sep, true
			}
		}
		id = innerChild(pg, n, lo)
	}
}

// Check walks the whole tree verifying checksums, ordering and reachability.
func (t *Tree) Check(p *sim.Proc) error {
	return t.check(p, t.root, 0, ^uint64(0), 1)
}

func (t *Tree) check(p *sim.Proc, id uint64, lo, hi uint64, depth int) error {
	if depth > t.height {
		return fmt.Errorf("btree: page %d below recorded height", id)
	}
	pg, err := t.readPage(p, id)
	if err != nil {
		return err
	}
	n := count(pg)
	if pg[hdrType] == pageTypeLeaf {
		var prev uint64
		for i := 0; i < n; i++ {
			k := leafKey(pg, i)
			if i > 0 && k <= prev {
				return fmt.Errorf("btree: leaf %d keys out of order", id)
			}
			if k < lo || k > hi {
				return fmt.Errorf("btree: leaf %d key %d outside [%d,%d]", id, k, lo, hi)
			}
			prev = k
		}
		return nil
	}
	keys, children := innerItems(pg)
	for i, k := range keys {
		if (i > 0 && k <= keys[i-1]) || k < lo || k > hi {
			return fmt.Errorf("btree: inner %d key %d misplaced", id, k)
		}
	}
	for i, c := range children {
		clo, chi := lo, hi
		if i > 0 {
			clo = keys[i-1]
		}
		if i < len(keys) {
			chi = keys[i] - 1
		}
		if err := t.check(p, c, clo, chi, depth+1); err != nil {
			return err
		}
	}
	return nil
}
