package repro

import (
	"fmt"

	"durassd/internal/stats"
	"durassd/internal/storage"
)

// EnduranceResult quantifies the paper's fourth contribution: "the
// absolute amount of data written to flash memory is reduced more than 50%
// by avoiding redundant writes and by utilizing a small page size".
type EnduranceResult struct {
	Table *stats.Table
	// FlashBytesPerTx[config] = NAND bytes programmed per committed
	// transaction, for "default" (DWB on, 16 KB) and "durassd" (DWB off,
	// 4 KB).
	FlashBytesPerTx map[string]float64
	// Reduction is 1 - durassd/default.
	Reduction float64
}

// Endurance runs the same LinkBench workload under the MySQL default
// configuration and the DuraSSD-optimal one (both with barriers off, so
// the comparison isolates write volume, not flush stalls) and compares
// NAND bytes programmed per transaction.
func Endurance(cfg LinkBenchConfig) (*EnduranceResult, error) {
	cfg.defaults()
	run := func(pageBytes int, dwb bool) (float64, error) {
		c := cfg
		c.PageBytes = pageBytes
		c.Barrier = false
		c.DoubleWrite = dwb
		var basePrograms int64
		var st *storage.Stats
		c.onMeasureStart = func() { basePrograms = st.NANDPrograms }
		res, e, err := runLinkBenchInnerWithStats(c, &st, nil)
		if err != nil {
			return 0, err
		}
		if res.Requests == 0 {
			return 0, fmt.Errorf("endurance: no requests measured")
		}
		_ = e
		physPage := 8 * storage.KB
		return float64(st.NANDPrograms-basePrograms) * float64(physPage) / float64(res.Requests), nil
	}
	def, err := run(16*storage.KB, true)
	if err != nil {
		return nil, err
	}
	dura, err := run(4*storage.KB, false)
	if err != nil {
		return nil, err
	}
	res := &EnduranceResult{
		FlashBytesPerTx: map[string]float64{"default": def, "durassd": dura},
	}
	if def > 0 {
		res.Reduction = 1 - dura/def
	}
	tbl := stats.NewTable("Endurance: NAND bytes programmed per LinkBench request",
		"Config", "KB/request")
	tbl.AddRow("16KB pages + double-write (MySQL default)", def/1024)
	tbl.AddRow("4KB pages, no double-write (DuraSSD)", dura/1024)
	tbl.AddComment("reduction: %.0f%% (paper claims >50%%)", res.Reduction*100)
	res.Table = tbl
	return res, nil
}
