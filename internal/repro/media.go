package repro

import (
	"errors"
	"fmt"
	"time"

	"durassd/internal/iotrace"
	"durassd/internal/nand"
	"durassd/internal/sim"
	"durassd/internal/ssd"
	"durassd/internal/stats"
	"durassd/internal/storage"
)

// MediaSweepConfig scales the media-reliability sweep.
type MediaSweepConfig struct {
	Scale int
	// Pages is the cold working set (logical slots) audited at the end.
	Pages int
	// Rounds is the number of aging rounds before the audit; each round is
	// ~2 ms of virtual retention time with one hot write to keep the flush
	// worker (and thus the scrubber's idle wakeups) cycling.
	Rounds int
	Seed   int64
}

func (c *MediaSweepConfig) defaults() {
	if c.Scale <= 0 {
		c.Scale = 16
	}
	if c.Pages <= 0 {
		c.Pages = 16
	}
	if c.Rounds <= 0 {
		c.Rounds = 120
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// MediaRates is the retention-loss sweep: expected soft bit errors per page
// per millisecond of virtual time. The ECC corrects 8 bits per page and the
// DuraSSD profile retries reads 3 times (each retry halving the transient
// errors), so a page is recoverable until ~72 accumulated soft errors. Over
// the ~250 ms aging window the low rate needs at most one retry, the middle
// rate leans on the full retry ladder, and the top rate sails past the
// ceiling — unreadable unless the scrubber refreshed it first.
var MediaRates = []float64{0.05, 0.15, 0.4}

// MediaSweepResult holds the formatted table and the raw per-cell counters.
type MediaSweepResult struct {
	Table *stats.Table
	// Uncorrectable[cell] counts audit reads that still failed after all
	// retries; the paper-facing claim is that this stays zero with
	// scrubbing on at every swept rate.
	Uncorrectable map[string]float64
	// Refreshes[cell] counts scrubber/read-triggered page rewrites.
	Refreshes map[string]float64
}

func mediaCell(rate float64, scrub bool) string {
	s := "off"
	if scrub {
		s = "on"
	}
	return fmt.Sprintf("rate=%g/scrub=%s", rate, s)
}

// MediaSweep crosses retention error rates with scrubbing on/off on a raw
// DuraSSD and counts uncorrectable host reads. It is the device-level
// durability complement to the throughput sweeps: a durable write cache is
// worthless if the flash behind it silently rots, so the firmware patrols
// and refreshes aging pages before retention outruns the ECC. The sweep is
// sized to what one scrubber proc can actually sustain — a refresh program
// costs 900 µs of virtual time, so patrol capacity is ~1.1 pages/ms and the
// cold set is kept small enough that the top rate is still refreshable.
func MediaSweep(cfg MediaSweepConfig) (*MediaSweepResult, error) {
	cfg.defaults()
	res := &MediaSweepResult{
		Uncorrectable: make(map[string]float64),
		Refreshes:     make(map[string]float64),
	}
	tbl := stats.NewTable("Media sweep: retention error rate × scrubbing (DuraSSD, raw device)",
		"Rate (bits/ms)", "Scrub", "Uncorrectable", "Retries", "Corrected bits", "Scrub passes", "Refreshes")
	for _, rate := range MediaRates {
		for _, scrub := range []bool{false, true} {
			cell := mediaCell(rate, scrub)
			uncorrectable, st, err := mediaCellRun(cfg, rate, scrub)
			if err != nil {
				return nil, fmt.Errorf("media sweep %s: %w", cell, err)
			}
			res.Uncorrectable[cell] = float64(uncorrectable)
			res.Refreshes[cell] = float64(st.RefreshPrograms)
			onOff := "off"
			if scrub {
				onOff = "on"
			}
			tbl.AddRow(rate, onOff, uncorrectable, st.ReadRetries, st.CorrectedBits,
				st.ScrubPasses, st.RefreshPrograms)
		}
	}
	tbl.AddComment("uncorrectable: audit reads still failing after ECC + 3 read retries")
	tbl.AddComment("scrub on keeps every swept rate readable by refreshing pages before retention outruns the ECC")
	res.Table = tbl
	return res, nil
}

// mediaCellRun runs one sweep cell: fill a cold working set, let it age
// while a trickle of hot writes keeps the device awake (idle windows are
// what wake the scrubber), then audit-read every cold page and count
// uncorrectable host reads.
func mediaCellRun(cfg MediaSweepConfig, rate float64, scrub bool) (int64, *storage.Stats, error) {
	eng := sim.New()
	prof := ssd.DuraSSD(cfg.Scale)
	prof.NAND.Media = nand.MediaConfig{Seed: cfg.Seed, RetentionPerMs: rate}
	// A cache smaller than the cold set so audit reads actually reach the
	// NAND instead of being served from DRAM, and no reserve pool: the
	// sweep isolates patrol reads and refresh, not bad-block retirement.
	prof.Cache.Frames = cfg.Pages / 2
	prof.FTL.ReserveBlocks = 0
	if scrub {
		prof.FTL.ScrubInterval = 2 * time.Millisecond
	}
	dev, err := ssd.New(eng, prof)
	if err != nil {
		return 0, nil, err
	}
	var uncorrectable int64
	var runErr error
	eng.Go("media-sweep", func(p *sim.Proc) {
		reg := dev.Registry()
		buf := make([]byte, dev.PageSize())
		write := func(lpn storage.LPN) bool {
			req := reg.NewReq(p, iotrace.OpWrite, iotrace.OriginUnknown, uint64(lpn), 1)
			err := dev.Write(p, req, lpn, 1, buf)
			req.Finish(p)
			if err != nil {
				runErr = fmt.Errorf("write %d: %w", lpn, err)
				return false
			}
			return true
		}
		for i := 0; i < cfg.Pages; i++ {
			if !write(storage.LPN(i)) {
				return
			}
		}
		freq := reg.NewReq(p, iotrace.OpFlush, iotrace.OriginUnknown, 0, 0)
		err := dev.Flush(p, freq)
		freq.Finish(p)
		if err != nil {
			runErr = fmt.Errorf("flush: %w", err)
			return
		}
		// Age the cold set. The hot-page writes keep the flush worker
		// cycling, which is what wakes the scrubber between rounds (real
		// firmware patrols in exactly these idle windows).
		hot := storage.LPN(cfg.Pages)
		for r := 0; r < cfg.Rounds; r++ {
			p.Sleep(2 * time.Millisecond)
			if !write(hot + storage.LPN(r%4)) {
				return
			}
		}
		// Audit: every cold page must still be readable.
		for i := 0; i < cfg.Pages; i++ {
			lpn := storage.LPN(i)
			req := reg.NewReq(p, iotrace.OpRead, iotrace.OriginUnknown, uint64(lpn), 1)
			err := dev.Read(p, req, lpn, 1, buf)
			req.Finish(p)
			if errors.Is(err, storage.ErrUncorrectable) {
				uncorrectable++
			} else if err != nil {
				runErr = fmt.Errorf("read %d: %w", lpn, err)
				return
			}
		}
	})
	eng.Run()
	if runErr != nil {
		return 0, nil, runErr
	}
	return uncorrectable, dev.Stats(), nil
}
