package repro

import (
	"testing"

	"durassd/internal/storage"
)

// These are fast smoke versions of the paper's experiments; the full-size
// shape assertions live in the repository-root benchmark suite.

func TestTable1SmokeShapes(t *testing.T) {
	res, err := Table1(Table1Config{Scale: 32, OpsPerCell: 400, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dura := res.IOPS["DuraSSD/ON"]
	nb := res.IOPS["DuraSSD/ON(NoBarrier)"]
	hddOff := res.IOPS["HDD/OFF"]
	// fsync frequency dominates cache-on SSD throughput.
	if dura[0] < 10*dura[1] {
		t.Fatalf("DuraSSD ON: no-fsync %v not >> fsync-1 %v", dura[0], dura[1])
	}
	// NoBarrier is nearly flat and high.
	if nb[1] < 3*dura[1] {
		t.Fatalf("NoBarrier fsync-1 %v not much faster than barrier fsync-1 %v", nb[1], dura[1])
	}
	// Disk gains little from batching compared with SSDs.
	if gain := hddOff[0] / hddOff[1]; gain > 10 {
		t.Fatalf("HDD OFF no-fsync/fsync-1 gain %v too large", gain)
	}
	// SSDs beat the disk outright with caches on and rare fsyncs.
	if dura[0] < 5*res.IOPS["HDD/ON"][0] {
		t.Fatalf("DuraSSD %v not >> HDD %v", dura[0], res.IOPS["HDD/ON"][0])
	}
}

func TestTable2SmokeShapes(t *testing.T) {
	res, err := Table2(Table2Config{Scale: 32, OpsPerCell: 1500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ro := res.IOPS[T2ReadOnly128]
	if ro[4*storage.KB] < 2*ro[16*storage.KB] {
		t.Fatalf("read-only 4KB %v not >> 16KB %v", ro[4*storage.KB], ro[16*storage.KB])
	}
	w1 := res.IOPS[T2Write1Fsync]
	ratio := w1[4*storage.KB] / w1[16*storage.KB]
	if ratio < 0.7 || ratio > 2.0 {
		t.Fatalf("write 1-fsync page-size ratio %v; should be nearly flat", ratio)
	}
	hr := res.IOPS[T2HDDRead128]
	hratio := hr[4*storage.KB] / hr[16*storage.KB]
	if hratio < 0.9 || hratio > 1.3 {
		t.Fatalf("HDD read page-size ratio %v; disk should be insensitive", hratio)
	}
}

func TestLinkBenchSmoke(t *testing.T) {
	res, err := RunLinkBench(LinkBenchConfig{
		Scale: 1024, Requests: 6_000, Warmup: 1_000, Clients: 32,
		PageBytes: 4 * storage.KB, Barrier: false, DoubleWrite: false, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TPS() <= 0 || res.Requests < 5_000 {
		t.Fatalf("TPS=%v requests=%d", res.TPS(), res.Requests)
	}
}

func TestTPCCSmoke(t *testing.T) {
	res, err := RunTPCC(TPCCConfig{
		Scale: 256, Requests: 3_000, Warmup: 300, Clients: 16,
		PageBytes: 4 * storage.KB, Barrier: false, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TpmC() <= 0 {
		t.Fatal("zero tpmC")
	}
}

func TestYCSBSmoke(t *testing.T) {
	on, err := RunYCSB(YCSBConfig{Docs: 200_000, Operations: 1_000, Barrier: true, BatchSize: 1, UpdatePct: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	off, err := RunYCSB(YCSBConfig{Docs: 200_000, Operations: 1_000, Barrier: false, BatchSize: 1, UpdatePct: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if off.OPS() < 2*on.OPS() {
		t.Fatalf("barrier off (%v OPS) not much faster than on (%v OPS)", off.OPS(), on.OPS())
	}
}

func TestEnduranceReduction(t *testing.T) {
	res, err := Endurance(LinkBenchConfig{Scale: 512, Requests: 20_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reduction < 0.5 {
		t.Fatalf("flash write reduction = %.0f%%, paper claims >50%%", res.Reduction*100)
	}
}

func TestTailLatencyCollapsesWithoutBarriers(t *testing.T) {
	res, err := TailLatency(TailLatencyConfig{Scale: 32, Ops: 8_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	on, off := res.ReadP99[true], res.ReadP99[false]
	if on < 2*off {
		t.Fatalf("read P99 with barriers (%v) not clearly above without (%v)", on, off)
	}
}
