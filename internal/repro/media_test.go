package repro

import (
	"reflect"
	"testing"
)

// TestMediaSweepShapes pins the sweep's paper-facing story: scrubbing keeps
// every swept retention rate fully readable, while without it the top rate
// outruns ECC + read retries and the audit loses pages.
func TestMediaSweepShapes(t *testing.T) {
	res, err := MediaSweep(MediaSweepConfig{})
	if err != nil {
		t.Fatal(err)
	}
	top := MediaRates[len(MediaRates)-1]
	for _, rate := range MediaRates {
		on := mediaCell(rate, true)
		if got := res.Uncorrectable[on]; got != 0 {
			t.Errorf("%s: %v uncorrectable audit reads; scrubbing must keep the set readable", on, got)
		}
		if got := res.Refreshes[on]; got == 0 {
			t.Errorf("%s: scrubber refreshed nothing", on)
		}
	}
	offTop := mediaCell(top, false)
	if got := res.Uncorrectable[offTop]; got == 0 {
		t.Errorf("%s: expected audit losses without scrubbing at the top rate", offTop)
	}
	low := mediaCell(MediaRates[0], false)
	if got := res.Uncorrectable[low]; got != 0 {
		t.Errorf("%s: low rate must stay readable on retries alone, lost %v", low, got)
	}
}

// TestMediaSweepDeterministic reruns the sweep with the same seed and
// demands byte-identical counters: the media model's stochastic rounding is
// seeded, so the whole campaign must replay exactly.
func TestMediaSweepDeterministic(t *testing.T) {
	a, err := MediaSweep(MediaSweepConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MediaSweep(MediaSweepConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Uncorrectable, b.Uncorrectable) {
		t.Errorf("uncorrectable counters differ across identical runs:\n%v\n%v", a.Uncorrectable, b.Uncorrectable)
	}
	if !reflect.DeepEqual(a.Refreshes, b.Refreshes) {
		t.Errorf("refresh counters differ across identical runs:\n%v\n%v", a.Refreshes, b.Refreshes)
	}
}
