// Package repro regenerates every table and figure of the paper's
// evaluation (§2 and §4) on the simulated devices and database engines.
// Each experiment returns both a formatted table (matching the paper's
// layout) and the raw numbers, so the benchmark suite can assert the
// paper's qualitative shapes: who wins, by roughly what factor, and where
// the crossovers fall.
package repro

import (
	"fmt"

	"durassd/internal/hdd"
	"durassd/internal/host"
	"durassd/internal/sim"
	"durassd/internal/ssd"
	"durassd/internal/storage"
)

// DeviceKind names one of the paper's four evaluation devices.
type DeviceKind string

// The paper's devices (Table 1).
const (
	HDD     DeviceKind = "HDD"
	SSDA    DeviceKind = "SSD-A"
	SSDB    DeviceKind = "SSD-B"
	DuraSSD DeviceKind = "DuraSSD"
)

// Rig bundles one device behind a filesystem on a fresh engine.
type Rig struct {
	Eng *sim.Engine
	FS  *host.FS
	Dev storage.Device
}

// SSDDev returns the device as an *ssd.Device (nil for the HDD).
func (r *Rig) SSDDev() *ssd.Device {
	d, _ := r.Dev.(*ssd.Device)
	return d
}

// NewRig builds a powered-on device of the given kind at the given capacity
// scale, with write barriers in the given state.
func NewRig(kind DeviceKind, scale int, barrier bool) (*Rig, error) {
	eng := sim.New()
	var dev storage.Device
	switch kind {
	case HDD:
		d, err := hdd.New(eng, hdd.Cheetah15K(scale))
		if err != nil {
			return nil, err
		}
		dev = d
	case SSDA:
		d, err := ssd.New(eng, ssd.SSDA(scale))
		if err != nil {
			return nil, err
		}
		dev = d
	case SSDB:
		d, err := ssd.New(eng, ssd.SSDB(scale))
		if err != nil {
			return nil, err
		}
		dev = d
	case DuraSSD:
		d, err := ssd.New(eng, ssd.DuraSSD(scale))
		if err != nil {
			return nil, err
		}
		dev = d
	default:
		return nil, fmt.Errorf("repro: unknown device kind %q", kind)
	}
	return &Rig{Eng: eng, FS: host.NewFS(dev, barrier), Dev: dev}, nil
}

// setWriteCache toggles the device write cache regardless of kind (SSDs,
// disks and volumes all expose the same knob).
func (r *Rig) setWriteCache(on bool) {
	if d, ok := r.Dev.(interface{ SetWriteCache(bool) }); ok {
		d.SetWriteCache(on)
	}
}
