package repro

import (
	"fmt"
	"time"

	"durassd/internal/host"
	"durassd/internal/innodb"
	"durassd/internal/iotrace"
	"durassd/internal/sim"
	"durassd/internal/ssd"
	"durassd/internal/stats"
	"durassd/internal/storage"
	"durassd/internal/workload/linkbench"
)

// LinkBenchConfig scales the paper's MySQL/LinkBench experiment: a 100 GB
// database (≈54 M nodes) and 10 GB buffer pool, shrunk by Scale with the
// DB:buffer ratio preserved. Data and log live on two DuraSSD drives, as
// in §4.2.
type LinkBenchConfig struct {
	Scale    int // divide paper-scale sizes (default 64)
	Requests int // measured requests (paper: 6.4 M)
	Warmup   int
	Clients  int
	Seed     int64

	PageBytes   int   // database page size
	BufferBytes int64 // buffer pool size (0 = 10 GB / Scale)
	Barrier     bool  // filesystem write barriers
	DoubleWrite bool  // InnoDB double-write buffer

	onMeasureStart func() // internal: counter snapshot at warm-up end
}

func (c *LinkBenchConfig) defaults() {
	if c.Scale <= 0 {
		c.Scale = 256
	}
	if c.Requests <= 0 {
		c.Requests = 160_000
	}
	if c.Clients <= 0 {
		c.Clients = 128
	}
	if c.PageBytes <= 0 {
		c.PageBytes = 16 * storage.KB
	}
	if c.BufferBytes <= 0 {
		c.BufferBytes = 10 * storage.GB / int64(c.Scale)
	}
	if c.Warmup < 0 {
		c.Warmup = 0
	} else if c.Warmup == 0 {
		// The paper warms for 600 s to fill the buffer pool; we warm until
		// the pool has filled and the dirty fraction has reached steady
		// state (≈ two requests per frame).
		c.Warmup = 2 * int(c.BufferBytes/int64(c.PageBytes))
		if min := c.Requests / 4; c.Warmup < min {
			c.Warmup = min
		}
	}
}

// RunLinkBench builds the two-DuraSSD rig, loads the scaled social graph
// and runs the benchmark.
func RunLinkBench(cfg LinkBenchConfig) (*linkbench.Result, error) {
	cfg.defaults()
	res, _, err := runLinkBenchInner(cfg)
	return res, err
}

func runLinkBenchInner(cfg LinkBenchConfig) (*linkbench.Result, *innodb.Engine, error) {
	return runLinkBenchInnerWithStats(cfg, nil, nil)
}

// runLinkBenchInnerWithStats additionally publishes the data device's stats
// pointer and metrics registry before the run starts (for counter snapshots
// in hooks and per-origin reporting).
func runLinkBenchInnerWithStats(cfg LinkBenchConfig, stPtr **storage.Stats, regPtr **iotrace.Registry) (*linkbench.Result, *innodb.Engine, error) {
	eng := sim.New()
	dataDev, err := ssd.New(eng, ssd.DuraSSD(2))
	if err != nil {
		return nil, nil, err
	}
	if stPtr != nil {
		*stPtr = dataDev.Stats()
	}
	if regPtr != nil {
		*regPtr = dataDev.Registry()
	}
	logDev, err := ssd.New(eng, ssd.DuraSSD(16))
	if err != nil {
		return nil, nil, err
	}
	dataFS := host.NewFS(dataDev, cfg.Barrier)
	logFS := host.NewFS(logDev, cfg.Barrier)

	dataPages := dataDev.Pages() * int64(dataDev.PageSize()) / int64(cfg.PageBytes) * 9 / 10
	e, err := innodb.Open(eng, dataFS, logFS, innodb.Config{
		PageBytes:    cfg.PageBytes,
		BufferBytes:  cfg.BufferBytes,
		DoubleWrite:  cfg.DoubleWrite,
		DataPages:    dataPages,
		LogFilePages: logDev.Pages() / 4,
		LogFiles:     3,
	})
	if err != nil {
		return nil, nil, err
	}
	defer e.Close()

	nodes := int64(54_000_000) / int64(cfg.Scale)
	b, err := linkbench.Setup(eng, e, linkbench.Config{
		Nodes:          nodes,
		Clients:        cfg.Clients,
		Requests:       cfg.Requests,
		Warmup:         cfg.Warmup,
		Seed:           cfg.Seed,
		OnMeasureStart: cfg.onMeasureStart,
	})
	if err != nil {
		return nil, nil, err
	}
	res, err := b.Run(eng)
	return res, e, err
}

// Fig5Result holds Figure 5's TPS grid: TPS[config][pageBytes], where
// config is "barrier/doublewrite" ("ON/ON", "ON/OFF", "OFF/ON", "OFF/OFF").
// Origins attributes the data device's write amplification per request
// origin (data pages vs double-write buffer) for the 16 KB runs.
type Fig5Result struct {
	Table   *stats.Table
	Origins *stats.Table
	TPS     map[string]map[int]float64
}

// Fig5Configs lists the barrier/double-write combinations in paper order.
var Fig5Configs = []struct {
	Name        string
	Barrier     bool
	DoubleWrite bool
}{
	{"ON/ON", true, true},
	{"ON/OFF", true, false},
	{"OFF/ON", false, true},
	{"OFF/OFF", false, false},
}

// Fig5 reproduces Figure 5: LinkBench transaction throughput under the four
// write-barrier × double-write configurations at three page sizes.
func Fig5(cfg LinkBenchConfig) (*Fig5Result, error) {
	cfg.defaults()
	res := &Fig5Result{TPS: make(map[string]map[int]float64)}
	tbl := stats.NewTable("Figure 5: LinkBench TPS (write-barrier / double-write-buffer)",
		"Config", "16KB", "8KB", "4KB")
	ot := stats.NewTable("Figure 5 addendum: data-device write amplification by origin (16KB pages)",
		"Config", "Origin", "PagesWritten", "NANDSlots", "GCSlots", "WA")
	for _, fc := range Fig5Configs {
		cells := make(map[int]float64, len(PageSizes))
		row := []any{fc.Name}
		for _, ps := range PageSizes {
			c := cfg
			c.PageBytes = ps
			c.Barrier = fc.Barrier
			c.DoubleWrite = fc.DoubleWrite
			var reg *iotrace.Registry
			r, _, err := runLinkBenchInnerWithStats(c, nil, &reg)
			if err != nil {
				return nil, fmt.Errorf("fig5 %s %dKB: %w", fc.Name, ps/storage.KB, err)
			}
			cells[ps] = r.TPS()
			row = append(row, r.TPS())
			if ps == 16*storage.KB {
				for o := iotrace.Origin(0); o < iotrace.NumOrigins; o++ {
					oc := reg.Origin(o)
					if oc.PagesWritten == 0 && oc.NANDSlots == 0 {
						continue
					}
					ot.AddRow(fc.Name, o.String(), oc.PagesWritten, oc.NANDSlots,
						oc.GCSlots, oc.WriteAmplification())
				}
			}
		}
		res.TPS[fc.Name] = cells
		tbl.AddRow(row...)
	}
	ot.AddComment("WA: NAND slots programmed per host page written, per origin")
	res.Table = tbl
	res.Origins = ot
	return res, nil
}

// Fig6Result holds Figure 6: miss ratio and TPS vs buffer pool size under
// OFF/OFF, per page size. Keyed [pageBytes][bufferGB].
type Fig6Result struct {
	MissTable *stats.Table
	TPSTable  *stats.Table
	Miss      map[int]map[int]float64
	TPS       map[int]map[int]float64
}

// Fig6BufferGB is the paper's buffer-pool sweep in (pre-scale) gigabytes.
var Fig6BufferGB = []int{2, 4, 6, 8, 10}

// Fig6 reproduces Figure 6: LinkBench buffer miss ratio (a) and TPS (b) as
// the buffer pool grows from 2 GB to 10 GB (scaled), OFF/OFF configuration.
func Fig6(cfg LinkBenchConfig) (*Fig6Result, error) {
	cfg.defaults()
	res := &Fig6Result{
		Miss: make(map[int]map[int]float64),
		TPS:  make(map[int]map[int]float64),
	}
	mt := stats.NewTable("Figure 6(a): LinkBench buffer miss ratio % (OFF/OFF)",
		"Buffer(GB)", "16KB", "8KB", "4KB")
	tt := stats.NewTable("Figure 6(b): LinkBench TPS (OFF/OFF)",
		"Buffer(GB)", "16KB", "8KB", "4KB")
	for _, ps := range PageSizes {
		res.Miss[ps] = make(map[int]float64)
		res.TPS[ps] = make(map[int]float64)
	}
	for _, gb := range Fig6BufferGB {
		mrow := []any{gb}
		trow := []any{gb}
		for _, ps := range PageSizes {
			c := cfg
			c.PageBytes = ps
			c.Barrier = false
			c.DoubleWrite = false
			c.BufferBytes = int64(gb) * storage.GB / int64(c.Scale)
			r, err := RunLinkBench(c)
			if err != nil {
				return nil, fmt.Errorf("fig6 %dKB %dGB: %w", ps/storage.KB, gb, err)
			}
			res.Miss[ps][gb] = r.MissRatio * 100
			res.TPS[ps][gb] = r.TPS()
			mrow = append(mrow, r.MissRatio*100)
			trow = append(trow, r.TPS())
		}
		mt.AddRow(mrow...)
		tt.AddRow(trow...)
	}
	res.MissTable, res.TPSTable = mt, tt
	return res, nil
}

// Table3Result holds the latency distributions of the paper's Table 3.
type Table3Result struct {
	Table   *stats.Table
	Default *linkbench.Result // ON/ON, 16 KB pages (MySQL defaults)
	Best    *linkbench.Result // OFF/OFF, 4 KB pages (DuraSSD sweet spot)
}

// Table3 reproduces Table 3: per-operation latency distributions under the
// MySQL default configuration versus the DuraSSD-optimal one.
func Table3(cfg LinkBenchConfig) (*Table3Result, error) {
	cfg.defaults()
	def := cfg
	def.PageBytes = 16 * storage.KB
	def.Barrier = true
	def.DoubleWrite = true
	best := cfg
	best.PageBytes = 4 * storage.KB
	best.Barrier = false
	best.DoubleWrite = false

	defRes, err := RunLinkBench(def)
	if err != nil {
		return nil, fmt.Errorf("table3 default: %w", err)
	}
	bestRes, err := RunLinkBench(best)
	if err != nil {
		return nil, fmt.Errorf("table3 best: %w", err)
	}
	tbl := stats.NewTable("Table 3: LinkBench latency (ms) — ON/ON 16KB vs OFF/OFF 4KB",
		"Op", "Mean", "P25", "P50", "P75", "P99", "Max", "|", "Mean'", "P25'", "P50'", "P75'", "P99'", "Max'")
	for _, op := range linkbench.OpTypes() {
		d := defRes.Hist(op)
		b := bestRes.Hist(op)
		tbl.AddRow(op.String(),
			ms(d.Mean()), ms(d.Percentile(25)), ms(d.Percentile(50)), ms(d.Percentile(75)), ms(d.Percentile(99)), ms(d.Max()),
			"|",
			ms(b.Mean()), ms(b.Percentile(25)), ms(b.Percentile(50)), ms(b.Percentile(75)), ms(b.Percentile(99)), ms(b.Max()))
	}
	tbl.AddComment("left: MySQL default (barriers on, double-write on, 16KB); right: DuraSSD best (off/off, 4KB)")
	return &Table3Result{Table: tbl, Default: defRes, Best: bestRes}, nil
}

func ms(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// RunLinkBenchDebug is RunLinkBench plus a pool/engine state dump for
// calibration work.
func RunLinkBenchDebug(cfg LinkBenchConfig) (*linkbench.Result, error) {
	cfg.defaults()
	cfg.Warmup = int(cfg.BufferBytes/int64(cfg.PageBytes)) * 2
	res, e, err := runLinkBenchInner(cfg)
	if err != nil {
		return nil, err
	}
	st := e.Pool().Stats()
	fmt.Printf("  pool: frames=%d dirty=%d evict=%d dirtyEvict=%d cleaner=%d miss=%d commits=%d pw=%d dwb=%d logflush=%d grouped=%d\n",
		e.Pool().Frames(), e.Pool().DirtyPages(), st.Evictions, st.DirtyEvictions, st.CleanerFlushes, st.Misses,
		e.Commits, e.PageWrites, e.DWBWrites, e.Log().Flushes, e.Log().GroupedCount)
	return res, nil
}
