package repro

import (
	"fmt"

	"durassd/internal/couch"
	"durassd/internal/host"
	"durassd/internal/innodb"
	"durassd/internal/sim"
	"durassd/internal/ssd"
	"durassd/internal/stats"
	"durassd/internal/storage"
	"durassd/internal/workload/tpcc"
	"durassd/internal/workload/ycsb"
)

// TPCCConfig scales the paper's commercial-DBMS TPC-C experiment: 1000
// warehouses (~100 GB) with a 2 GB buffer, shrunk by Scale with the 2%
// buffer:database ratio preserved. The engine opens its data file with
// O_DSYNC and runs without a double-write buffer, as §4.3.2 describes.
type TPCCConfig struct {
	Scale    int // divide paper-scale sizes (default 256)
	Requests int
	Warmup   int
	Clients  int
	Seed     int64

	PageBytes int
	Barrier   bool
}

func (c *TPCCConfig) defaults() {
	if c.Scale <= 0 {
		c.Scale = 256
	}
	if c.Requests <= 0 {
		c.Requests = 60_000
	}
	if c.Clients <= 0 {
		c.Clients = 64
	}
	if c.PageBytes <= 0 {
		c.PageBytes = 16 * storage.KB
	}
	if c.Warmup == 0 {
		c.Warmup = c.Requests / 4
	}
}

// RunTPCC executes one TPC-C cell.
func RunTPCC(cfg TPCCConfig) (*tpcc.Result, error) {
	cfg.defaults()
	eng := sim.New()
	dataDev, err := ssd.New(eng, ssd.DuraSSD(2))
	if err != nil {
		return nil, err
	}
	logDev, err := ssd.New(eng, ssd.DuraSSD(16))
	if err != nil {
		return nil, err
	}
	dataFS := host.NewFS(dataDev, cfg.Barrier)
	logFS := host.NewFS(logDev, cfg.Barrier)

	warehouses := 1000 / cfg.Scale
	if warehouses < 4 {
		warehouses = 4
	}
	bufferBytes := 2 * storage.GB / int64(cfg.Scale)
	dataPages := dataDev.Pages() * int64(dataDev.PageSize()) / int64(cfg.PageBytes) * 9 / 10
	e, err := innodb.Open(eng, dataFS, logFS, innodb.Config{
		PageBytes:    cfg.PageBytes,
		BufferBytes:  bufferBytes,
		DoubleWrite:  false,
		ODSync:       true,
		DataPages:    dataPages,
		LogFilePages: logDev.Pages() / 4,
	})
	if err != nil {
		return nil, err
	}
	defer e.Close()

	b, err := tpcc.Setup(eng, e, tpcc.Config{
		Warehouses: warehouses,
		Clients:    cfg.Clients,
		Requests:   cfg.Requests,
		Warmup:     cfg.Warmup,
		Seed:       cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return b.Run(eng)
}

// Table4Result holds the paper's Table 4: tpmC per barrier setting and
// page size. Keyed TpmC[barrier?"On":"Off"][pageBytes].
type Table4Result struct {
	Table *stats.Table
	TpmC  map[string]map[int]float64
}

// Table4 reproduces Table 4: TPC-C throughput on the commercial database,
// write barriers on vs off, across page sizes.
func Table4(cfg TPCCConfig) (*Table4Result, error) {
	cfg.defaults()
	res := &Table4Result{TpmC: map[string]map[int]float64{"On": {}, "Off": {}}}
	tbl := stats.NewTable("Table 4: TPC-C throughput measured in tpmC", "TpmC", "16KB", "8KB", "4KB")
	for _, barrier := range []bool{true, false} {
		name := "Barrier Off"
		key := "Off"
		if barrier {
			name, key = "Barrier On", "On"
		}
		row := []any{name}
		for _, ps := range PageSizes {
			c := cfg
			c.PageBytes = ps
			c.Barrier = barrier
			r, err := RunTPCC(c)
			if err != nil {
				return nil, fmt.Errorf("table4 %s %dKB: %w", name, ps/storage.KB, err)
			}
			res.TpmC[key][ps] = r.TpmC()
			row = append(row, r.TpmC())
		}
		tbl.AddRow(row...)
	}
	res.Table = tbl
	return res, nil
}

// YCSBConfig scales the paper's Couchbase/YCSB experiment (Table 5).
type YCSBConfig struct {
	Docs       int64 // documents in the bucket (scaled-down 100 GB store)
	Operations int
	Seed       int64

	Barrier   bool
	BatchSize int
	UpdatePct int
}

func (c *YCSBConfig) defaults() {
	if c.Docs <= 0 {
		c.Docs = 2_000_000
	}
	if c.Operations <= 0 {
		c.Operations = 100_000
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 1
	}
	if c.UpdatePct <= 0 {
		c.UpdatePct = 50
	}
}

// RunYCSB executes one Couchbase/YCSB cell on a DuraSSD.
func RunYCSB(cfg YCSBConfig) (*ycsb.Result, error) {
	cfg.defaults()
	eng := sim.New()
	dev, err := ssd.New(eng, ssd.DuraSSD(4))
	if err != nil {
		return nil, err
	}
	fs := host.NewFS(dev, cfg.Barrier)
	st, err := couch.Open(eng, fs, couch.Config{
		Docs:      cfg.Docs,
		BatchSize: cfg.BatchSize,
	})
	if err != nil {
		return nil, err
	}
	return ycsb.Run(eng, st, cfg.Docs, ycsb.Config{
		Operations: cfg.Operations,
		UpdatePct:  cfg.UpdatePct,
		Seed:       cfg.Seed,
	})
}

// Table5BatchSizes is the paper's batch-size sweep.
var Table5BatchSizes = []int{1, 2, 5, 10, 100}

// Table5Result holds the paper's Table 5: Couchbase OPS under write
// barriers on (a) and off (b). Keyed OPS[barrier]["100"|"50"][batch].
type Table5Result struct {
	On  *stats.Table
	Off *stats.Table
	OPS map[string]map[string]map[int]float64
}

// Table5 reproduces Table 5: YCSB throughput of the Couchbase-style store
// as the fsync batch size grows, barriers on and off, 100% and 50% updates.
func Table5(cfg YCSBConfig) (*Table5Result, error) {
	cfg.defaults()
	res := &Table5Result{OPS: map[string]map[string]map[int]float64{
		"On":  {"100": {}, "50": {}},
		"Off": {"100": {}, "50": {}},
	}}
	build := func(barrier bool, title, key string) (*stats.Table, error) {
		tbl := stats.NewTable(title, "batch-size", "1", "2", "5", "10", "100")
		for _, upd := range []int{100, 50} {
			row := []any{fmt.Sprintf("Update %d%%", upd)}
			for _, bs := range Table5BatchSizes {
				c := cfg
				c.Barrier = barrier
				c.BatchSize = bs
				c.UpdatePct = upd
				r, err := RunYCSB(c)
				if err != nil {
					return nil, fmt.Errorf("table5 barrier=%v upd=%d bs=%d: %w", barrier, upd, bs, err)
				}
				res.OPS[key][fmt.Sprint(upd)][bs] = r.OPS()
				row = append(row, r.OPS())
			}
			tbl.AddRow(row...)
		}
		return tbl, nil
	}
	var err error
	if res.On, err = build(true, "Table 5(a): Couchbase YCSB OPS, write barriers on", "On"); err != nil {
		return nil, err
	}
	if res.Off, err = build(false, "Table 5(b): Couchbase YCSB OPS, write barriers off", "Off"); err != nil {
		return nil, err
	}
	return res, nil
}
