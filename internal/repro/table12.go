package repro

import (
	"fmt"

	"durassd/internal/fio"
	"durassd/internal/stats"
	"durassd/internal/storage"
)

// FsyncSweep is the paper's Table 1 x-axis: writes per fsync, with 0
// meaning no fsync at all.
var FsyncSweep = []int{1, 4, 8, 16, 32, 64, 128, 256, 0}

// Table1Config scales the Table 1 reproduction.
type Table1Config struct {
	Scale      int   // device capacity divisor (default 16)
	OpsPerCell int   // operations per table cell (default 1200)
	Seed       int64 // workload seed
}

func (c *Table1Config) defaults() {
	if c.Scale <= 0 {
		c.Scale = 16
	}
	if c.OpsPerCell <= 0 {
		c.OpsPerCell = 1200
	}
}

// Table1Row identifies one table row: a device and its cache mode.
type Table1Row struct {
	Device    DeviceKind
	CacheOn   bool
	NoBarrier bool // DuraSSD's extra "ON (NoBarrier)" row
}

func (r Table1Row) String() string {
	mode := "OFF"
	if r.CacheOn {
		mode = "ON"
	}
	if r.NoBarrier {
		mode = "ON(NoBarrier)"
	}
	return fmt.Sprintf("%s/%s", r.Device, mode)
}

// Table1Rows lists the paper's nine rows in order.
var Table1Rows = []Table1Row{
	{HDD, false, false},
	{HDD, true, false},
	{SSDA, false, false},
	{SSDA, true, false},
	{SSDB, false, false},
	{SSDB, true, false},
	{DuraSSD, false, false},
	{DuraSSD, true, false},
	{DuraSSD, true, true},
}

// Table1Result holds the formatted table and raw IOPS per row and fsync
// frequency (key 0 = no fsync).
type Table1Result struct {
	Table *stats.Table
	IOPS  map[string]map[int]float64
}

// Table1 reproduces the paper's Table 1: the effect of fsync frequency and
// the flush-cache command on 4 KB random-write IOPS, across the disk, two
// volatile-cache SSDs and DuraSSD.
func Table1(cfg Table1Config) (*Table1Result, error) {
	cfg.defaults()
	res := &Table1Result{IOPS: make(map[string]map[int]float64)}
	tbl := stats.NewTable("Table 1: effect of fsync and flush cache on 4KB random write IOPS",
		append([]string{"Device", "Cache"}, fsyncHeaders()...)...)

	for _, row := range Table1Rows {
		rig, err := NewRig(row.Device, cfg.Scale, !row.NoBarrier)
		if err != nil {
			return nil, err
		}
		rig.setWriteCache(row.CacheOn)
		filePages := rig.Dev.Pages() * 11 / 20
		file, err := rig.FS.Create("t1", filePages)
		if err != nil {
			return nil, err
		}
		if err := file.Preload(0, filePages, nil); err != nil {
			return nil, err
		}
		cells := make(map[int]float64, len(FsyncSweep))
		rowCells := []any{string(row.Device), cacheLabel(row)}
		for _, every := range FsyncSweep {
			r, err := fio.RunFile(rig.Eng, file, fio.Job{
				Name:       row.String(),
				Threads:    1,
				BlockBytes: 4 * storage.KB,
				FsyncEvery: every,
				Ops:        cfg.OpsPerCell,
				Seed:       cfg.Seed + int64(every),
			})
			if err != nil {
				return nil, fmt.Errorf("table1 %s fsync=%d: %w", row, every, err)
			}
			cells[every] = r.IOPS()
			rowCells = append(rowCells, r.IOPS())
		}
		res.IOPS[row.String()] = cells
		tbl.AddRow(rowCells...)
	}
	tbl.AddComment("columns: writes per fsync; last column: no fsync")
	res.Table = tbl
	return res, nil
}

func cacheLabel(r Table1Row) string {
	switch {
	case r.NoBarrier:
		return "ON (NoBarrier)"
	case r.CacheOn:
		return "ON"
	default:
		return "OFF"
	}
}

func fsyncHeaders() []string {
	hs := make([]string, len(FsyncSweep))
	for i, f := range FsyncSweep {
		if f == 0 {
			hs[i] = "no fsync"
		} else {
			hs[i] = fmt.Sprint(f)
		}
	}
	return hs
}

// Table2Config scales the Table 2 reproduction.
type Table2Config struct {
	Scale      int
	OpsPerCell int
	Seed       int64
}

func (c *Table2Config) defaults() {
	if c.Scale <= 0 {
		c.Scale = 16
	}
	if c.OpsPerCell <= 0 {
		c.OpsPerCell = 4000
	}
}

// PageSizes is the paper's page-size sweep (bytes), largest first.
var PageSizes = []int{16 * storage.KB, 8 * storage.KB, 4 * storage.KB}

// Table2Result holds the formatted tables and the raw IOPS:
// IOPS[workload][pageBytes].
type Table2Result struct {
	DuraSSD *stats.Table
	HDD     *stats.Table
	IOPS    map[string]map[int]float64
}

// Table 2 workload row names.
const (
	T2ReadOnly128  = "Read-only (128 threads)"
	T2Write1Fsync  = "Write-only (1-fsync)"
	T2Write256     = "Write-only (256-fsync)"
	T2Write128NoBa = "Write-only (128 no-barrier)"
	T2HDDRead128   = "HDD Read-only (128 threads)"
	T2HDDWrite128  = "HDD Write-only (128 threads)"
)

// Table2 reproduces the paper's Table 2: the effect of page size on IOPS
// for DuraSSD (a) and the disk (b).
func Table2(cfg Table2Config) (*Table2Result, error) {
	cfg.defaults()
	res := &Table2Result{IOPS: make(map[string]map[int]float64)}

	type rowSpec struct {
		name    string
		kind    DeviceKind
		threads int
		readPct int
		fsync   int
		barrier bool
	}
	duraRows := []rowSpec{
		{T2ReadOnly128, DuraSSD, 128, 100, 0, true},
		{T2Write1Fsync, DuraSSD, 1, 0, 1, true},
		{T2Write256, DuraSSD, 1, 0, 256, true},
		{T2Write128NoBa, DuraSSD, 128, 0, 0, false},
	}
	hddRows := []rowSpec{
		{T2HDDRead128, HDD, 128, 100, 0, true},
		{T2HDDWrite128, HDD, 128, 0, 0, true},
	}

	run := func(rows []rowSpec, title string) (*stats.Table, error) {
		tbl := stats.NewTable(title, "Random IOPS", "16KB", "8KB", "4KB")
		for _, row := range rows {
			cells := make(map[int]float64, len(PageSizes))
			rowCells := []any{row.name}
			for _, ps := range PageSizes {
				rig, err := NewRig(row.kind, cfg.Scale, row.barrier)
				if err != nil {
					return nil, err
				}
				filePages := rig.Dev.Pages() * 11 / 20
				file, err := rig.FS.Create("t2", filePages)
				if err != nil {
					return nil, err
				}
				if err := file.Preload(0, filePages, nil); err != nil {
					return nil, err
				}
				r, err := fio.RunFile(rig.Eng, file, fio.Job{
					Name:       row.name,
					Threads:    row.threads,
					BlockBytes: ps,
					ReadPct:    row.readPct,
					FsyncEvery: row.fsync,
					Ops:        cfg.OpsPerCell,
					Seed:       cfg.Seed + int64(ps),
				})
				if err != nil {
					return nil, fmt.Errorf("table2 %s page=%d: %w", row.name, ps, err)
				}
				cells[ps] = r.IOPS()
				rowCells = append(rowCells, r.IOPS())
			}
			res.IOPS[row.name] = cells
			tbl.AddRow(rowCells...)
		}
		return tbl, nil
	}

	var err error
	if res.DuraSSD, err = run(duraRows, "Table 2(a): effect of page size on IOPS — DuraSSD"); err != nil {
		return nil, err
	}
	if res.HDD, err = run(hddRows, "Table 2(b): effect of page size on IOPS — HDD"); err != nil {
		return nil, err
	}
	return res, nil
}
