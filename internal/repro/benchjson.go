package repro

import (
	"cmp"
	"encoding/json"
	"fmt"
	"os"
	"slices"
	"sort"

	"durassd/internal/stats"
)

// SchemaVersion identifies the JSON result schema shared by every
// benchmark command (-json flag). Bump it when the shape changes so
// downstream tooling can dispatch on it.
const SchemaVersion = 1

// JSONTable is the machine-readable form of one result table: the same
// formatted cells the terminal rendering shows, plus the raw structure.
type JSONTable struct {
	Title    string     `json:"title"`
	Header   []string   `json:"header"`
	Rows     [][]string `json:"rows"`
	Comments []string   `json:"comments,omitempty"`
}

// TableJSON converts a stats.Table into its serialized form.
func TableJSON(t *stats.Table) JSONTable {
	return JSONTable{
		Title:    t.Title,
		Header:   t.Header(),
		Rows:     t.Rows(),
		Comments: t.Comments(),
	}
}

// JSONReport is the result document every benchmark command emits with
// -json: which tool ran with which knobs, the tables it printed, and a
// flat map of scalar metrics (raw IOPS/TPS values keyed by experiment and
// cell) for plotting and regression tracking without string-parsing the
// tables.
type JSONReport struct {
	Schema  int                `json:"schema"`
	Tool    string             `json:"tool"`
	Config  map[string]any     `json:"config,omitempty"`
	Tables  []JSONTable        `json:"tables"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// NewJSONReport starts a report for the named tool.
func NewJSONReport(tool string) *JSONReport {
	return &JSONReport{Schema: SchemaVersion, Tool: tool}
}

// SetConfig records one configuration knob.
func (r *JSONReport) SetConfig(key string, value any) {
	if r.Config == nil {
		r.Config = make(map[string]any)
	}
	r.Config[key] = value
}

// AddTable appends a rendered table.
func (r *JSONReport) AddTable(t *stats.Table) {
	if t != nil {
		r.Tables = append(r.Tables, TableJSON(t))
	}
}

// AddMetric records one scalar under a hierarchical key, e.g.
// "table1/DuraSSD/ON/fsync=1".
func (r *JSONReport) AddMetric(key string, value float64) {
	if r.Metrics == nil {
		r.Metrics = make(map[string]float64)
	}
	r.Metrics[key] = value
}

// SortedKeys returns m's keys in sorted order. Report assembly iterates
// result maps through it so that metric insertion order is deterministic
// (simlint's maporder analyzer enforces this at the call sites).
func SortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// AddMetricMap records every entry of m under prefix/key.
func (r *JSONReport) AddMetricMap(prefix string, m map[string]float64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		r.AddMetric(prefix+"/"+k, m[k])
	}
}

// WriteFile marshals the report (indented, trailing newline) to path;
// "-" writes to stdout.
func (r *JSONReport) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("repro: writing JSON report: %w", err)
	}
	return nil
}
