package repro

import (
	"fmt"

	"durassd/internal/fio"
	"durassd/internal/hdd"
	"durassd/internal/host"
	"durassd/internal/sim"
	"durassd/internal/ssd"
	"durassd/internal/stats"
	"durassd/internal/storage"
	"durassd/internal/vol"
)

// Layout names a multi-device volume geometry.
type Layout string

// Supported layouts.
const (
	Single   Layout = "single"
	Striped  Layout = "striped" // RAID-0
	Mirrored Layout = "mirror"  // RAID-1
	Concat   Layout = "concat"  // linear
)

// VolumeSpec describes a volume geometry over identical member devices.
type VolumeSpec struct {
	Layout Layout
	Width  int // member count (ignored for Single)
	Chunk  int // stripe unit in pages; 0 = vol.DefaultChunkPages
}

func (v VolumeSpec) String() string {
	if v.Layout == Single || v.Layout == "" || v.Width <= 1 {
		return string(Single)
	}
	return fmt.Sprintf("%s-%d", v.Layout, v.Width)
}

// newMember builds one device of the given kind on eng.
func newMember(eng *sim.Engine, kind DeviceKind, scale int) (storage.Device, error) {
	switch kind {
	case HDD:
		return hdd.New(eng, hdd.Cheetah15K(scale))
	case SSDA:
		return ssd.New(eng, ssd.SSDA(scale))
	case SSDB:
		return ssd.New(eng, ssd.SSDB(scale))
	case DuraSSD:
		return ssd.New(eng, ssd.DuraSSD(scale))
	}
	return nil, fmt.Errorf("repro: unknown device kind %q", kind)
}

// NewVolumeRig builds spec.Width devices of the given kind on one engine,
// composes them per the spec, and mounts a filesystem on the result. A
// Single spec degenerates to NewRig.
func NewVolumeRig(kind DeviceKind, spec VolumeSpec, scale int, barrier bool) (*Rig, error) {
	if spec.Layout == Single || spec.Layout == "" || spec.Width <= 1 {
		return NewRig(kind, scale, barrier)
	}
	eng := sim.New()
	members := make([]storage.Device, spec.Width)
	for i := range members {
		m, err := newMember(eng, kind, scale)
		if err != nil {
			return nil, err
		}
		members[i] = m
	}
	var dev storage.Device
	var err error
	switch spec.Layout {
	case Striped:
		dev, err = vol.NewStriped(eng, members, spec.Chunk)
	case Mirrored:
		dev, err = vol.NewMirror(eng, members)
	case Concat:
		dev, err = vol.NewConcat(eng, members)
	default:
		err = fmt.Errorf("repro: unknown layout %q", spec.Layout)
	}
	if err != nil {
		return nil, err
	}
	return &Rig{Eng: eng, FS: host.NewFS(dev, barrier), Dev: dev}, nil
}

// VolumeSweepConfig scales the volume-geometry sweep.
type VolumeSweepConfig struct {
	Scale      int
	OpsPerCell int
	Threads    int
	Seed       int64
}

func (c *VolumeSweepConfig) defaults() {
	if c.Scale <= 0 {
		c.Scale = 16
	}
	if c.OpsPerCell <= 0 {
		c.OpsPerCell = 4000
	}
	if c.Threads <= 0 {
		c.Threads = 64
	}
}

// VolumeRow is one sweep cell: a device kind, a volume geometry, and the
// fsync regime of the workload.
type VolumeRow struct {
	Device     DeviceKind
	Spec       VolumeSpec
	Barrier    bool
	FsyncEvery int // writes per fsync; 0 = never
}

func (r VolumeRow) String() string {
	regime := "no-barrier"
	if r.Barrier {
		regime = fmt.Sprintf("fsync-%d", r.FsyncEvery)
	}
	return fmt.Sprintf("%s/%s/%s", r.Device, regime, r.Spec)
}

// VolumeSweepRows is the default sweep: DuraSSD scales with the stripe
// because the durable cache never forces a queue-draining flush, while the
// volatile drive under fsync-every-write wastes the stripe — each fsync
// drains every member's queue, so added spindles buy almost nothing.
var VolumeSweepRows = []VolumeRow{
	{DuraSSD, VolumeSpec{Layout: Single}, false, 0},
	{DuraSSD, VolumeSpec{Layout: Striped, Width: 2}, false, 0},
	{DuraSSD, VolumeSpec{Layout: Striped, Width: 4}, false, 0},
	{DuraSSD, VolumeSpec{Layout: Mirrored, Width: 2}, false, 0},
	{SSDA, VolumeSpec{Layout: Single}, true, 1},
	{SSDA, VolumeSpec{Layout: Striped, Width: 2}, true, 1},
	{SSDA, VolumeSpec{Layout: Striped, Width: 4}, true, 1},
}

// VolumeSweepResult holds the formatted table and raw IOPS per row.
type VolumeSweepResult struct {
	Table *stats.Table
	IOPS  map[string]float64
}

// Speedup returns the IOPS ratio of row over the single-device row with
// the same device and fsync regime (0 when either row is missing).
func (r *VolumeSweepResult) Speedup(row VolumeRow) float64 {
	base := row
	base.Spec = VolumeSpec{Layout: Single}
	b := r.IOPS[base.String()]
	if b == 0 {
		return 0
	}
	return r.IOPS[row.String()] / b
}

// VolumeSweep measures 4 KB random-write IOPS across volume geometries.
// It reproduces the paper's scaling argument at the array level: flash
// arrays only scale when the per-device flush-cache tax is gone, which is
// exactly what the durable write cache removes.
func VolumeSweep(cfg VolumeSweepConfig) (*VolumeSweepResult, error) {
	cfg.defaults()
	res := &VolumeSweepResult{IOPS: make(map[string]float64)}
	tbl := stats.NewTable("Volume sweep: 4KB random-write IOPS by geometry",
		"Device", "Regime", "Volume", "IOPS", "vs single")
	for _, row := range VolumeSweepRows {
		rig, err := NewVolumeRig(row.Device, row.Spec, cfg.Scale, row.Barrier)
		if err != nil {
			return nil, err
		}
		filePages := rig.Dev.Pages() * 11 / 20
		file, err := rig.FS.Create("volsweep", filePages)
		if err != nil {
			return nil, err
		}
		if err := file.Preload(0, filePages, nil); err != nil {
			return nil, err
		}
		r, err := fio.RunFile(rig.Eng, file, fio.Job{
			Name:       row.String(),
			Threads:    cfg.Threads,
			BlockBytes: 4 * storage.KB,
			FsyncEvery: row.FsyncEvery,
			Ops:        cfg.OpsPerCell,
			Seed:       cfg.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("volume sweep %s: %w", row, err)
		}
		res.IOPS[row.String()] = r.IOPS()
		regime := "no-barrier"
		if row.Barrier {
			regime = fmt.Sprintf("fsync every %d", row.FsyncEvery)
		}
		tbl.AddRow(string(row.Device), regime, row.Spec.String(), r.IOPS(), res.Speedup(row))
	}
	tbl.AddComment("vs single: IOPS ratio against the same device and regime on one drive")
	tbl.AddComment("durable cache scales with the stripe; fsync-every-write wastes it")
	res.Table = tbl
	return res, nil
}
