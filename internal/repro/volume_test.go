package repro

import "testing"

func TestVolumeSweepShapes(t *testing.T) {
	res, err := VolumeSweep(VolumeSweepConfig{Scale: 32, OpsPerCell: 1200, Threads: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The durable cache lets the stripe scale: 4 members ≥ 3× one drive.
	dura4 := VolumeRow{DuraSSD, VolumeSpec{Layout: Striped, Width: 4}, false, 0}
	if s := res.Speedup(dura4); s < 3 {
		t.Fatalf("DuraSSD striped-4 speedup %.2f < 3 — stripe not scaling", s)
	}
	// fsync-every-write wastes the stripe on the volatile drive: < 1.5×.
	ssda4 := VolumeRow{SSDA, VolumeSpec{Layout: Striped, Width: 4}, true, 1}
	if s := res.Speedup(ssda4); s >= 1.5 {
		t.Fatalf("SSD-A striped-4 under fsync-every-write speedup %.2f >= 1.5 — flush drain not modeled", s)
	}
	// The mirror writes everything twice; it must not beat a single drive.
	mirror := VolumeRow{DuraSSD, VolumeSpec{Layout: Mirrored, Width: 2}, false, 0}
	if s := res.Speedup(mirror); s > 1.2 {
		t.Fatalf("DuraSSD mirror-2 write speedup %.2f > 1.2 — mirror should not scale writes", s)
	}
}
