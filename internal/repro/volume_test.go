package repro

import (
	"bytes"
	"testing"

	"durassd/internal/crashpoint"
	"durassd/internal/faults"
	"durassd/internal/iotrace"
	"durassd/internal/sim"
	"durassd/internal/ssd"
	"durassd/internal/storage"
	"durassd/internal/vol"
)

func TestVolumeSweepShapes(t *testing.T) {
	res, err := VolumeSweep(VolumeSweepConfig{Scale: 32, OpsPerCell: 1200, Threads: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The durable cache lets the stripe scale: 4 members ≥ 3× one drive.
	dura4 := VolumeRow{DuraSSD, VolumeSpec{Layout: Striped, Width: 4}, false, 0}
	if s := res.Speedup(dura4); s < 3 {
		t.Fatalf("DuraSSD striped-4 speedup %.2f < 3 — stripe not scaling", s)
	}
	// fsync-every-write wastes the stripe on the volatile drive: < 1.5×.
	ssda4 := VolumeRow{SSDA, VolumeSpec{Layout: Striped, Width: 4}, true, 1}
	if s := res.Speedup(ssda4); s >= 1.5 {
		t.Fatalf("SSD-A striped-4 under fsync-every-write speedup %.2f >= 1.5 — flush drain not modeled", s)
	}
	// The mirror writes everything twice; it must not beat a single drive.
	mirror := VolumeRow{DuraSSD, VolumeSpec{Layout: Mirrored, Width: 2}, false, 0}
	if s := res.Speedup(mirror); s > 1.2 {
		t.Fatalf("DuraSSD mirror-2 write speedup %.2f > 1.2 — mirror should not scale writes", s)
	}
}

func TestMirrorReadRepairAfterRecovery(t *testing.T) {
	// Regression for the recovery path of vol.Mirror: after a power cycle
	// the mirror comes back degraded, serves reads from the primary, and
	// repairs the secondary copy as ranges are read — visible as extra
	// write traffic on member 1.
	eng := sim.New()
	members := make([]storage.Device, 2)
	for i := range members {
		m, err := ssd.New(eng, ssd.DuraSSD(16))
		if err != nil {
			t.Fatal(err)
		}
		members[i] = m
	}
	m, err := vol.NewMirror(eng, members)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x6b}, 4*m.PageSize())
	eng.Go("io", func(p *sim.Proc) {
		if err := m.Write(p, iotrace.Req{}, 40, 4, data); err != nil {
			t.Errorf("Write: %v", err)
			return
		}
		if err := m.Flush(p, iotrace.Req{}); err != nil {
			t.Errorf("Flush: %v", err)
			return
		}
		m.PowerFail()
		if err := m.Reboot(p); err != nil {
			t.Errorf("Reboot: %v", err)
			return
		}
		if !m.Degraded() {
			t.Error("mirror not degraded after a power cycle")
			return
		}
		secondaryWrites := members[1].Stats().PagesWritten
		buf := make([]byte, 4*m.PageSize())
		if err := m.Read(p, iotrace.Req{}, 40, 4, buf); err != nil {
			t.Errorf("degraded Read: %v", err)
			return
		}
		if !bytes.Equal(buf, data) {
			t.Error("degraded read returned wrong data")
			return
		}
		repair := members[1].Stats().PagesWritten - secondaryWrites
		if repair != 4 {
			t.Errorf("read-repair wrote %d pages onto the secondary, want 4", repair)
			return
		}
		// The repaired range must not be repaired again.
		if err := m.Read(p, iotrace.Req{}, 40, 4, buf); err != nil {
			t.Errorf("second Read: %v", err)
			return
		}
		if got := members[1].Stats().PagesWritten - secondaryWrites; got != repair {
			t.Errorf("repaired range re-repaired: secondary writes %d -> %d", repair, got)
		}
	})
	eng.Run()
}

func TestStripedGeometryCrashAudit(t *testing.T) {
	// Regression for crash-point exploration over a composed geometry: the
	// per-member event schedule must stay deterministic, and a stripe of
	// DuraSSDs must survive every enumerated point in the fast config.
	c := crashpoint.Campaign{
		Scenario: faults.Scenario{
			Device: faults.DuraSSD, Layout: faults.Striped, Width: 2,
			Barrier: false, DoubleWrite: false,
			Clients: 4, Updates: 120, Seed: 11,
		},
		MaxPoints: 6,
		DumpTears: 1,
	}
	res, err := crashpoint.Explore(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no crash points enumerated over the striped geometry")
	}
	if res.Unsafe != 0 {
		t.Fatalf("DuraSSD striped-2 fast config unsafe at %d/%d points (lost=%d torn=%d)",
			res.Unsafe, len(res.Points), res.Lost, res.Torn)
	}
	res2, err := crashpoint.Explore(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Digest != res2.Digest {
		t.Fatalf("striped exploration not deterministic:\n  %s\n  %s", res.Digest, res2.Digest)
	}
}
