package repro

import (
	"fmt"
	"time"

	"durassd/internal/fio"
	"durassd/internal/iotrace"
	"durassd/internal/stats"
	"durassd/internal/storage"
)

// BreakdownConfig scales the per-layer latency breakdown run.
type BreakdownConfig struct {
	Scale int   // device capacity divisor (default 16)
	Ops   int   // operations per device (default 1500)
	Seed  int64 // workload seed
}

func (c *BreakdownConfig) defaults() {
	if c.Scale <= 0 {
		c.Scale = 16
	}
	if c.Ops <= 0 {
		c.Ops = 1500
	}
}

// BreakdownResult holds one per-layer latency table per device plus a
// per-origin traffic table, and the raw layer means keyed by device row
// name then layer.
type BreakdownResult struct {
	Tables    []*stats.Table
	LayerMean map[string]map[iotrace.Layer]time.Duration
}

// breakdownRows are the Table 1 configurations the breakdown instruments:
// the durable cache and a representative volatile-cache SSD, both with the
// write cache on and barriers enabled.
var breakdownRows = []Table1Row{
	{DuraSSD, true, false},
	{SSDA, true, false},
}

// breakdownLayers is the display order of the per-layer table.
var breakdownLayers = []iotrace.Layer{
	iotrace.LayerHostQueue,
	iotrace.LayerLink,
	iotrace.LayerFirmware,
	iotrace.LayerCache,
	iotrace.LayerFlushDrain,
	iotrace.LayerFTL,
	iotrace.LayerGC,
	iotrace.LayerNAND,
}

// Breakdown runs a mixed 4 KB random workload with periodic fsyncs against
// each instrumented device with request tracing enabled, and attributes
// every microsecond of request latency to the layer that spent it: host
// queue, link transfer, firmware, device cache, flush drain, FTL, GC and
// NAND. The share column is each layer's exclusive time as a fraction of
// all layer time, so the rows of one device sum to ~100%.
func Breakdown(cfg BreakdownConfig) (*BreakdownResult, error) {
	cfg.defaults()
	res := &BreakdownResult{LayerMean: make(map[string]map[iotrace.Layer]time.Duration)}

	for _, row := range breakdownRows {
		rig, err := NewRig(row.Device, cfg.Scale, !row.NoBarrier)
		if err != nil {
			return nil, err
		}
		rig.setWriteCache(row.CacheOn)
		reg := rig.Dev.Registry()
		reg.EnableTracing(true)

		filePages := rig.Dev.Pages() * 11 / 20
		file, err := rig.FS.Create("breakdown", filePages)
		if err != nil {
			return nil, err
		}
		if err := file.Preload(0, filePages, nil); err != nil {
			return nil, err
		}
		if _, err := fio.RunFile(rig.Eng, file, fio.Job{
			Name:       "breakdown-" + row.String(),
			Threads:    4,
			BlockBytes: 4 * storage.KB,
			ReadPct:    20,
			FsyncEvery: 16,
			Ops:        cfg.Ops,
			Seed:       cfg.Seed,
		}); err != nil {
			return nil, fmt.Errorf("breakdown %s: %w", row, err)
		}

		var total time.Duration
		for _, l := range breakdownLayers {
			total += reg.LayerLatency(l).Sum()
		}
		tbl := stats.NewTable(
			fmt.Sprintf("Per-layer latency breakdown — %s, cache %s", row.Device, cacheLabel(row)),
			"Layer", "Spans", "Mean", "Total", "Share")
		means := make(map[iotrace.Layer]time.Duration)
		for _, l := range breakdownLayers {
			h := reg.LayerLatency(l)
			if h.Count() == 0 {
				continue
			}
			means[l] = h.Mean()
			share := 0.0
			if total > 0 {
				share = 100 * float64(h.Sum()) / float64(total)
			}
			tbl.AddRow(l.String(), h.Count(), h.Mean(), h.Sum(),
				fmt.Sprintf("%.1f%%", share))
		}
		tbl.AddComment("mean/total are exclusive time: child-layer time is subtracted")
		res.LayerMean[row.String()] = means
		res.Tables = append(res.Tables, tbl)
		res.Tables = append(res.Tables, OriginTable(reg,
			fmt.Sprintf("Per-origin traffic — %s, cache %s", row.Device, cacheLabel(row))))
	}
	return res, nil
}

// OriginTable renders the per-origin traffic counters of one registry:
// host pages in/out, NAND slots programmed on the origin's behalf, the GC
// share of those slots, and the resulting per-origin write amplification.
func OriginTable(reg *iotrace.Registry, title string) *stats.Table {
	tbl := stats.NewTable(title,
		"Origin", "PagesWritten", "PagesRead", "NANDSlots", "GCSlots", "WA")
	for o := iotrace.Origin(0); o < iotrace.NumOrigins; o++ {
		c := reg.Origin(o)
		if c.PagesWritten == 0 && c.PagesRead == 0 && c.NANDSlots == 0 {
			continue
		}
		tbl.AddRow(o.String(), c.PagesWritten, c.PagesRead, c.NANDSlots, c.GCSlots,
			c.WriteAmplification())
	}
	return tbl
}
