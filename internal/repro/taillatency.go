package repro

import (
	"time"

	"durassd/internal/fio"
	"durassd/internal/stats"
	"durassd/internal/storage"
)

// TailLatencyConfig sizes the read-tail experiment.
type TailLatencyConfig struct {
	Scale int
	Ops   int
	Seed  int64
}

func (c *TailLatencyConfig) defaults() {
	if c.Scale <= 0 {
		c.Scale = 16
	}
	if c.Ops <= 0 {
		c.Ops = 20_000
	}
}

// TailLatencyResult captures read-latency percentiles for a mixed workload
// under the two barrier settings.
type TailLatencyResult struct {
	Table *stats.Table
	// ReadP99[barrier] in time units.
	ReadP99 map[bool]time.Duration
	ReadP50 map[bool]time.Duration
}

// TailLatency reproduces the paper's motivation (§1-2): under a mixed
// read/write load with frequent fsyncs, read latency becomes hostage to
// the write path — flush-cache storms and cache-full stalls push the read
// tail orders of magnitude above the read median. Turning barriers off
// (safe on DuraSSD) collapses the tail.
func TailLatency(cfg TailLatencyConfig) (*TailLatencyResult, error) {
	cfg.defaults()
	res := &TailLatencyResult{
		ReadP99: make(map[bool]time.Duration),
		ReadP50: make(map[bool]time.Duration),
	}
	tbl := stats.NewTable("Read latency under a mixed 70/30 workload with per-8-writes fsync (DuraSSD)",
		"Barriers", "Read P50", "Read P99", "Read max", "Write P99")
	for _, barrier := range []bool{true, false} {
		rig, err := NewRig(DuraSSD, cfg.Scale, barrier)
		if err != nil {
			return nil, err
		}
		r, err := fio.Run(rig.Eng, rig.FS, fio.Job{
			Name:       "tail",
			Threads:    64,
			BlockBytes: 4 * storage.KB,
			ReadPct:    70,
			FsyncEvery: 8,
			Ops:        cfg.Ops,
			FilePages:  rig.Dev.Pages() * 11 / 20,
			Preload:    true,
			Seed:       cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		res.ReadP99[barrier] = r.ReadLat.Percentile(99)
		res.ReadP50[barrier] = r.ReadLat.Percentile(50)
		name := "off"
		if barrier {
			name = "on"
		}
		tbl.AddRow(name, r.ReadLat.Percentile(50), r.ReadLat.Percentile(99),
			r.ReadLat.Max(), r.WriteLat.Percentile(99))
	}
	tbl.AddComment("barriers off is only safe on a durable cache — that is the paper")
	res.Table = tbl
	return res, nil
}
