// Package ycsb implements the Yahoo! Cloud Serving Benchmark core
// workloads against the couch document store. The paper uses workload-A
// (50% reads / 50% updates over a zipfian key space) and a 100%-update
// variant to evaluate DuraSSD's effect on Couchbase (Table 5).
package ycsb

import (
	"fmt"
	"math/rand"
	"time"

	"durassd/internal/couch"
	"durassd/internal/sim"
	"durassd/internal/stats"
)

// Config sizes a YCSB run.
type Config struct {
	Operations int // total operations (paper: 200,000)
	UpdatePct  int // 50 for workload-A, 100 for the update-only variant
	Threads    int // paper: single thread
	Seed       int64
	ZipfS      float64
	ZipfV      float64
}

func (c *Config) defaults() {
	if c.Operations <= 0 {
		c.Operations = 200_000
	}
	if c.UpdatePct < 0 || c.UpdatePct > 100 {
		c.UpdatePct = 50
	}
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.01
	}
	if c.ZipfV == 0 {
		c.ZipfV = 50
	}
}

// Result is one run's outcome.
type Result struct {
	Ops     int64
	Elapsed time.Duration
	Lat     stats.Hist
}

// OPS returns operations per second of virtual time (the paper's metric).
func (r *Result) OPS() float64 { return stats.Throughput(r.Ops, r.Elapsed) }

// Run drives cfg against the store and returns the result. It runs the
// simulation to completion.
func Run(eng *sim.Engine, st *couch.Store, docs int64, cfg Config) (*Result, error) {
	pd := Start(eng, st, docs, cfg)
	eng.Run()
	return pd.Result()
}

// Pending is a started run whose simulation the caller drives (Engine.Run,
// or Cluster.Run when this store is one shard of a multi-domain
// benchmark). Collect the outcome with Result after the run drains.
type Pending struct {
	eng      *sim.Engine
	res      *Result
	firstErr *error
	start    time.Duration
}

// Result returns the run outcome; call it only after the simulation has
// drained.
func (pd *Pending) Result() (*Result, error) {
	if *pd.firstErr != nil {
		return nil, *pd.firstErr
	}
	pd.res.Elapsed = pd.eng.Now() - pd.start
	return pd.res, nil
}

// Start spawns the client threads on eng without driving the simulation,
// in exactly the order Run would — the event schedule is identical, only
// the caller owns the Run.
func Start(eng *sim.Engine, st *couch.Store, docs int64, cfg Config) *Pending {
	cfg.defaults()
	res := &Result{}
	perThread := cfg.Operations / cfg.Threads
	if perThread == 0 {
		perThread = 1
	}
	var firstErr error
	pd := &Pending{eng: eng, res: res, firstErr: &firstErr, start: eng.Now()}
	for t := 0; t < cfg.Threads; t++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(t)*22695477))
		zipf := rand.NewZipf(rng, cfg.ZipfS, cfg.ZipfV, uint64(docs-1))
		eng.Go(fmt.Sprintf("ycsb-%d", t), func(p *sim.Proc) {
			for i := 0; i < perThread; i++ {
				key := int64(zipf.Uint64())
				t0 := p.Now()
				var err error
				if rng.Intn(100) < cfg.UpdatePct {
					err = st.Update(p, key)
				} else {
					// Couchbase serves the hot set from its managed cache;
					// zipfian traffic hits it most of the time.
					cached := rng.Intn(100) < 80
					err = st.Read(p, key, cached)
				}
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				res.Lat.Record(p.Now() - t0)
				res.Ops++
			}
		})
	}
	return pd
}
