package ycsb

import (
	"testing"

	"durassd/internal/couch"
	"durassd/internal/host"
	"durassd/internal/sim"
	"durassd/internal/ssd"
)

func newStore(t *testing.T, barrier bool, batch int) (*sim.Engine, *couch.Store) {
	t.Helper()
	eng := sim.New()
	dev, err := ssd.New(eng, ssd.DuraSSD(16))
	if err != nil {
		t.Fatal(err)
	}
	fs := host.NewFS(dev, barrier)
	st, err := couch.Open(eng, fs, couch.Config{Docs: 50_000, BatchSize: batch})
	if err != nil {
		t.Fatal(err)
	}
	return eng, st
}

func TestWorkloadARuns(t *testing.T) {
	eng, st := newStore(t, true, 10)
	res, err := Run(eng, st, 50_000, Config{Operations: 2_000, UpdatePct: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 2_000 {
		t.Fatalf("ops = %d", res.Ops)
	}
	if res.OPS() <= 0 {
		t.Fatal("zero OPS")
	}
	if res.Lat.Count() != 2_000 {
		t.Fatalf("latency samples = %d", res.Lat.Count())
	}
}

func TestUpdateOnlySlowerThanMixed(t *testing.T) {
	run := func(updPct int) float64 {
		eng, st := newStore(t, true, 1)
		res, err := Run(eng, st, 50_000, Config{Operations: 1_000, UpdatePct: updPct, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		return res.OPS()
	}
	if full, half := run(100), run(50); full >= half {
		t.Fatalf("100%% updates (%v OPS) not slower than 50%% (%v OPS) under per-update fsync", full, half)
	}
}

func TestBatchSizeSpeedsThroughput(t *testing.T) {
	run := func(batch int) float64 {
		eng, st := newStore(t, true, batch)
		res, err := Run(eng, st, 50_000, Config{Operations: 1_500, UpdatePct: 100, Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		return res.OPS()
	}
	b1, b100 := run(1), run(100)
	if b100 < 5*b1 {
		t.Fatalf("batch-100 (%v) should be far faster than batch-1 (%v) with barriers on", b100, b1)
	}
}

func TestDeterministic(t *testing.T) {
	run := func() float64 {
		eng, st := newStore(t, false, 5)
		res, err := Run(eng, st, 50_000, Config{Operations: 1_000, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return res.OPS()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}
