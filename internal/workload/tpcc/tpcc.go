// Package tpcc implements the TPC-C order-entry benchmark against the
// innodb engine: nine tables, the five standard transaction profiles at
// the standard mix, and the tpmC metric (NewOrder transactions per
// minute) — the workload behind the paper's Table 4.
//
// The paper runs TPC-C on a commercial database that opens its files with
// O_DSYNC, "expecting a write barrier to be requested for every page it
// wrote"; the harness configures the engine accordingly.
package tpcc

import (
	"fmt"
	"math/rand"
	"time"

	"durassd/internal/dbsim/index"
	"durassd/internal/innodb"
	"durassd/internal/sim"
	"durassd/internal/stats"
)

// TxType enumerates the five TPC-C transactions.
type TxType int

// The TPC-C transaction profiles.
const (
	NewOrder TxType = iota
	Payment
	OrderStatus
	Delivery
	StockLevel
	numTx
)

// String names the transaction.
func (t TxType) String() string {
	return [...]string{"NewOrder", "Payment", "OrderStatus", "Delivery", "StockLevel"}[t]
}

// Standard mix percentages (TPC-C §5.2.4 minimums, NewOrder taking the
// remainder).
var txMix = [numTx]float64{
	NewOrder:    44.9,
	Payment:     43.1,
	OrderStatus: 4.0,
	Delivery:    4.0,
	StockLevel:  4.0,
}

// Config sizes a TPC-C run.
type Config struct {
	Warehouses int
	Clients    int
	Requests   int // measured transactions
	Warmup     int
	Seed       int64

	Cores    int
	BaseCPU  time.Duration
	PageCPU  time.Duration
	WriteCPU time.Duration
}

func (c *Config) defaults() {
	if c.Warehouses <= 0 {
		c.Warehouses = 16
	}
	if c.Clients <= 0 {
		c.Clients = 64
	}
	if c.Requests <= 0 {
		c.Requests = 40_000
	}
	if c.Cores <= 0 {
		c.Cores = 32
	}
	if c.BaseCPU == 0 {
		c.BaseCPU = 300 * time.Microsecond
	}
	if c.PageCPU == 0 {
		c.PageCPU = 40 * time.Microsecond
	}
	if c.WriteCPU == 0 {
		c.WriteCPU = 200 * time.Microsecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// TPC-C scale constants.
const (
	districtsPerW = 10
	customersPerD = 3000
	stockPerW     = 100_000
	items         = 100_000
	linesPerOrder = 10
)

// Bench is one TPC-C database.
type Bench struct {
	cfg Config
	e   *innodb.Engine
	cpu *sim.Resource

	warehouse, district, customer *innodb.Table
	stock, item                   *innodb.Table
	orders, orderLine, newOrder   *innodb.Table
	history                       *innodb.Table

	nextOrder int64 // order id allocator
}

// Result is one run's outcome.
type Result struct {
	Total     int64
	NewOrders int64
	Elapsed   time.Duration
	Lat       [numTx]*stats.Hist
}

// TpmC returns NewOrder transactions per minute of virtual time.
func (r *Result) TpmC() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.NewOrders) / r.Elapsed.Minutes()
}

// TPS returns total transactions per second.
func (r *Result) TPS() float64 { return stats.Throughput(r.Total, r.Elapsed) }

// Setup creates and loads the TPC-C schema.
func Setup(eng *sim.Engine, e *innodb.Engine, cfg Config) (*Bench, error) {
	cfg.defaults()
	b := &Bench{cfg: cfg, e: e, cpu: sim.NewResource(eng, cfg.Cores)}
	w := int64(cfg.Warehouses)
	create := func(name string, rows int64, rowBytes int, headroom int64) (*innodb.Table, error) {
		t, err := e.CreateTable(name, index.Config{RowBytes: rowBytes, MaxRows: rows*headroom + 1})
		if err != nil {
			return nil, fmt.Errorf("tpcc: create %s: %w", name, err)
		}
		if err := t.BulkLoad(rows); err != nil {
			return nil, err
		}
		return t, nil
	}
	var err error
	if b.warehouse, err = create("warehouse", w, 100, 1); err != nil {
		return nil, err
	}
	if b.district, err = create("district", w*districtsPerW, 100, 1); err != nil {
		return nil, err
	}
	if b.customer, err = create("customer", w*districtsPerW*customersPerD, 600, 1); err != nil {
		return nil, err
	}
	if b.stock, err = create("stock", w*stockPerW, 300, 1); err != nil {
		return nil, err
	}
	if b.item, err = create("item", items, 80, 1); err != nil {
		return nil, err
	}
	// Orders grow during the run; reserve generous headroom.
	initialOrders := w * districtsPerW * customersPerD
	if b.orders, err = create("orders", initialOrders, 50, 2); err != nil {
		return nil, err
	}
	if b.orderLine, err = create("order_line", initialOrders*linesPerOrder, 60, 2); err != nil {
		return nil, err
	}
	if b.newOrder, err = create("new_order", initialOrders/3, 40, 8); err != nil {
		return nil, err
	}
	if b.history, err = create("history", initialOrders, 60, 2); err != nil {
		return nil, err
	}
	b.nextOrder = initialOrders
	return b, nil
}

// Run executes the benchmark and returns the measured result.
func (b *Bench) Run(eng *sim.Engine) (*Result, error) {
	cfg := b.cfg
	res := &Result{}
	for i := range res.Lat {
		res.Lat[i] = &stats.Hist{}
	}
	total := cfg.Warmup + cfg.Requests
	perClient := total / cfg.Clients
	if perClient == 0 {
		perClient = 1
	}
	warmPer := cfg.Warmup / cfg.Clients

	var firstErr error
	var started bool
	var startT time.Duration
	for c := 0; c < cfg.Clients; c++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(c)*15485863))
		eng.Go(fmt.Sprintf("tpcc-%d", c), func(p *sim.Proc) {
			for i := 0; i < perClient; i++ {
				if i == warmPer && !started {
					started = true
					startT = p.Now()
				}
				tt := b.pickTx(rng)
				t0 := p.Now()
				if err := b.doTx(p, rng, tt); err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				if i >= warmPer {
					res.Lat[tt].Record(p.Now() - t0)
					res.Total++
					if tt == NewOrder {
						res.NewOrders++
					}
				}
			}
		})
	}
	eng.Run()
	if firstErr != nil {
		return nil, firstErr
	}
	res.Elapsed = eng.Now() - startT
	return res, nil
}

func (b *Bench) pickTx(rng *rand.Rand) TxType {
	x := rng.Float64() * 100
	var cum float64
	for t := TxType(0); t < numTx; t++ {
		cum += txMix[t]
		if x < cum {
			return t
		}
	}
	return NewOrder
}

// Rank helpers (dense keys).
func (b *Bench) wRank(rng *rand.Rand) int64 { return rng.Int63n(int64(b.cfg.Warehouses)) }
func (b *Bench) dRank(w int64, rng *rand.Rand) int64 {
	return w*districtsPerW + rng.Int63n(districtsPerW)
}
func (b *Bench) cRank(d int64, rng *rand.Rand) int64 {
	return d*customersPerD + nonUniform(rng, 1023, customersPerD)
}
func (b *Bench) sRank(w int64, rng *rand.Rand) int64 {
	return w*stockPerW + nonUniform(rng, 8191, stockPerW)
}

// nonUniform is TPC-C's NURand distribution.
func nonUniform(rng *rand.Rand, a, x int64) int64 {
	return ((rng.Int63n(a+1) | rng.Int63n(x)) % x)
}

func (b *Bench) burnCPU(p *sim.Proc, pages int, writes int) {
	d := b.cfg.BaseCPU + time.Duration(pages)*b.cfg.PageCPU + time.Duration(writes)*b.cfg.WriteCPU
	b.cpu.Acquire(p, 1)
	p.Sleep(d)
	b.cpu.Release(1)
}

func (b *Bench) doTx(p *sim.Proc, rng *rand.Rand, tt TxType) error {
	switch tt {
	case NewOrder:
		return b.newOrderTx(p, rng)
	case Payment:
		return b.paymentTx(p, rng)
	case OrderStatus:
		return b.orderStatusTx(p, rng)
	case Delivery:
		return b.deliveryTx(p, rng)
	default:
		return b.stockLevelTx(p, rng)
	}
}

func (b *Bench) newOrderTx(p *sim.Proc, rng *rand.Rand) error {
	w := b.wRank(rng)
	d := b.dRank(w, rng)
	tx := b.e.Begin()
	b.burnCPU(p, 30, 13)
	if err := tx.Lookup(p, b.warehouse, w); err != nil {
		return err
	}
	if err := tx.Update(p, b.district, d); err != nil {
		return err
	}
	if err := tx.Lookup(p, b.customer, b.cRank(d, rng)); err != nil {
		return err
	}
	nItems := 5 + rng.Intn(11) // 5..15, avg 10
	for i := 0; i < nItems; i++ {
		if err := tx.Lookup(p, b.item, rng.Int63n(items)); err != nil {
			return err
		}
		if err := tx.Update(p, b.stock, b.sRank(w, rng)); err != nil {
			return err
		}
	}
	oid := b.nextOrder
	b.nextOrder++
	if err := tx.Insert(p, b.orders, oid); err != nil {
		return err
	}
	if err := tx.Insert(p, b.newOrder, oid%b.newOrder.Tree().Rows()+1); err != nil {
		return err
	}
	for i := 0; i < nItems; i++ {
		if err := tx.Insert(p, b.orderLine, oid*linesPerOrder+int64(i)); err != nil {
			return err
		}
	}
	return tx.Commit(p)
}

func (b *Bench) paymentTx(p *sim.Proc, rng *rand.Rand) error {
	w := b.wRank(rng)
	d := b.dRank(w, rng)
	tx := b.e.Begin()
	b.burnCPU(p, 8, 4)
	if err := tx.Update(p, b.warehouse, w); err != nil {
		return err
	}
	if err := tx.Update(p, b.district, d); err != nil {
		return err
	}
	if err := tx.Update(p, b.customer, b.cRank(d, rng)); err != nil {
		return err
	}
	if err := tx.Insert(p, b.history, b.nextOrder%b.history.Tree().Rows()); err != nil {
		return err
	}
	return tx.Commit(p)
}

func (b *Bench) orderStatusTx(p *sim.Proc, rng *rand.Rand) error {
	w := b.wRank(rng)
	d := b.dRank(w, rng)
	tx := b.e.Begin()
	b.burnCPU(p, 12, 0)
	if err := tx.Lookup(p, b.customer, b.cRank(d, rng)); err != nil {
		return err
	}
	oid := rng.Int63n(maxI64(b.nextOrder, 1))
	if err := tx.Lookup(p, b.orders, oid); err != nil {
		return err
	}
	return tx.Scan(p, b.orderLine, oid*linesPerOrder, linesPerOrder)
}

func (b *Bench) deliveryTx(p *sim.Proc, rng *rand.Rand) error {
	w := b.wRank(rng)
	tx := b.e.Begin()
	b.burnCPU(p, 40, 30)
	for d := 0; d < districtsPerW; d++ {
		oid := rng.Int63n(maxI64(b.nextOrder, 1))
		if err := tx.Delete(p, b.newOrder, oid%maxI64(b.newOrder.Tree().Rows(), 1)); err != nil {
			return err
		}
		if err := tx.Update(p, b.orders, oid); err != nil {
			return err
		}
		if err := tx.Update(p, b.orderLine, oid*linesPerOrder); err != nil {
			return err
		}
		if err := tx.Update(p, b.customer, w*districtsPerW*customersPerD+rng.Int63n(districtsPerW*customersPerD)); err != nil {
			return err
		}
	}
	return tx.Commit(p)
}

func (b *Bench) stockLevelTx(p *sim.Proc, rng *rand.Rand) error {
	w := b.wRank(rng)
	d := b.dRank(w, rng)
	tx := b.e.Begin()
	b.burnCPU(p, 25, 0)
	if err := tx.Lookup(p, b.district, d); err != nil {
		return err
	}
	oid := rng.Int63n(maxI64(b.nextOrder, 1))
	if err := tx.Scan(p, b.orderLine, oid*linesPerOrder, 20*linesPerOrder); err != nil {
		return err
	}
	for i := 0; i < 10; i++ {
		if err := tx.Lookup(p, b.stock, b.sRank(w, rng)); err != nil {
			return err
		}
	}
	return nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
