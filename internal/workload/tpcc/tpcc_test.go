package tpcc

import (
	"math/rand"
	"testing"

	"durassd/internal/host"
	"durassd/internal/innodb"
	"durassd/internal/sim"
	"durassd/internal/ssd"
	"durassd/internal/storage"
)

func newBench(t *testing.T, warehouses, clients, requests int) (*sim.Engine, *Bench) {
	t.Helper()
	eng := sim.New()
	dev, err := ssd.New(eng, ssd.DuraSSD(4))
	if err != nil {
		t.Fatal(err)
	}
	fs := host.NewFS(dev, false)
	e, err := innodb.Open(eng, fs, fs, innodb.Config{
		PageBytes:    4 * storage.KB,
		BufferBytes:  8 * storage.MB,
		DataPages:    dev.Pages() * 9 / 10,
		LogFilePages: 8_000,
		LogFiles:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Setup(eng, e, Config{
		Warehouses: warehouses, Clients: clients, Requests: requests, Warmup: requests / 10, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, b
}

func TestMixSumsTo100(t *testing.T) {
	var sum float64
	for _, pct := range txMix {
		sum += pct
	}
	if sum < 99.9 || sum > 100.1 {
		t.Fatalf("tx mix sums to %v", sum)
	}
}

func TestRunProducesTpmC(t *testing.T) {
	eng, b := newBench(t, 4, 16, 4_000)
	res, err := b.Run(eng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total < 3_000 {
		t.Fatalf("measured %d transactions", res.Total)
	}
	if res.NewOrders == 0 {
		t.Fatal("no NewOrder transactions")
	}
	frac := float64(res.NewOrders) / float64(res.Total)
	if frac < 0.35 || frac > 0.55 {
		t.Fatalf("NewOrder fraction = %v, want ~0.45", frac)
	}
	if res.TpmC() <= 0 {
		t.Fatal("zero tpmC")
	}
	for tt := TxType(0); tt < numTx; tt++ {
		if res.Lat[tt].Count() == 0 {
			t.Fatalf("transaction %s never ran", tt)
		}
	}
}

func TestNonUniformDistribution(t *testing.T) {
	// NURand must stay in range and not be uniform-at-the-extremes.
	eng, b := newBench(t, 4, 1, 10)
	_ = eng
	rng := newTestRNG()
	counts := make(map[int64]int)
	for i := 0; i < 20_000; i++ {
		c := b.cRank(0, rng)
		if c < 0 || c >= customersPerD {
			t.Fatalf("customer rank %d out of range", c)
		}
		counts[c%100]++
	}
	if len(counts) < 50 {
		t.Fatal("NURand collapsed to too few values")
	}
}

func TestDeterministic(t *testing.T) {
	run := func() float64 {
		eng, b := newBench(t, 4, 8, 2_000)
		res, err := b.Run(eng)
		if err != nil {
			t.Fatal(err)
		}
		return res.TpmC()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic tpmC: %v vs %v", a, b)
	}
}

func newTestRNG() *rand.Rand { return rand.New(rand.NewSource(11)) }
