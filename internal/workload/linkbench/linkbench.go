// Package linkbench implements the LinkBench social-graph benchmark
// (Armstrong et al., SIGMOD'13) against the innodb engine: three tables
// (nodes, links, link counts), the standard ten-operation mix with ~31%
// writes, and power-law access skew — the workload behind the paper's
// Figure 5, Figure 6 and Table 3.
package linkbench

import (
	"fmt"
	"math/rand"
	"time"

	"durassd/internal/dbsim/index"
	"durassd/internal/innodb"
	"durassd/internal/sim"
	"durassd/internal/stats"
)

// OpType enumerates the LinkBench request types (Table 3's rows).
type OpType int

// The ten LinkBench operations.
const (
	GetNode OpType = iota
	CountLink
	GetLinkList
	MultigetLink
	AddNode
	DeleteNode
	UpdateNode
	AddLink
	DeleteLink
	UpdateLink
	numOps
)

// String returns the paper's Table 3 name for the operation.
func (o OpType) String() string {
	return [...]string{"Get Node", "Count Link", "Get Link List", "Multiget Link",
		"ADD Node", "Delete Node", "Update Node", "Add Link", "Delete Link", "Update Link"}[o]
}

// IsWrite reports whether the operation mutates the graph.
func (o OpType) IsWrite() bool { return o >= AddNode }

// opMix is the standard LinkBench workload mix in percent (sums to 100):
// ~69% reads dominated by link-list scans, ~31% writes.
var opMix = [numOps]float64{
	GetNode:      12.9,
	CountLink:    4.9,
	GetLinkList:  50.7,
	MultigetLink: 0.5,
	AddNode:      2.6,
	DeleteNode:   1.0,
	UpdateNode:   7.4,
	AddLink:      9.0,
	DeleteLink:   3.0,
	UpdateLink:   8.0,
}

// Config sizes a LinkBench run.
type Config struct {
	Nodes        int64 // graph nodes (rows in the node table)
	LinksPerNode int64 // average out-links per node
	Clients      int   // concurrent request threads (paper: 128)
	Requests     int   // measured requests
	Warmup       int   // unmeasured warm-up requests
	Seed         int64

	// Host CPU model: the paper's server has 32 cores; MySQL burns CPU per
	// request and per page access, which caps throughput when I/O is cheap.
	Cores      int
	BaseCPU    time.Duration // per request
	PageCPU    time.Duration // per page access; 0 = 40µs + 3µs/KB of page
	WriteCPU   time.Duration // extra per write request
	ZipfS      float64       // zipf exponent (>1)
	ZipfV      float64       // zipf plateau
	ListLength int64         // rows returned by Get Link List

	// OnMeasureStart, if set, fires once when the warm-up ends and
	// measurement begins (harnesses snapshot device counters here).
	OnMeasureStart func()
}

func (c *Config) defaults() {
	if c.Nodes <= 0 {
		c.Nodes = 800_000
	}
	if c.LinksPerNode <= 0 {
		c.LinksPerNode = 10
	}
	if c.Clients <= 0 {
		c.Clients = 128
	}
	if c.Requests <= 0 {
		c.Requests = 100_000
	}
	if c.Cores <= 0 {
		c.Cores = 32
	}
	if c.BaseCPU == 0 {
		c.BaseCPU = 300 * time.Microsecond
	}
	// PageCPU left 0 means "derive from the page size in Setup".
	if c.WriteCPU == 0 {
		c.WriteCPU = 300 * time.Microsecond
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.01
	}
	if c.ZipfV == 0 {
		c.ZipfV = 20
	}
	if c.ListLength <= 0 {
		c.ListLength = 10
	}
}

// Result is one LinkBench run's outcome.
type Result struct {
	Requests  int64
	Elapsed   time.Duration
	PerOp     [numOps]*stats.Hist
	MissRatio float64
}

// TPS returns transactions per second of virtual time.
func (r *Result) TPS() float64 { return stats.Throughput(r.Requests, r.Elapsed) }

// Hist returns the latency histogram of one operation type.
func (r *Result) Hist(o OpType) *stats.Hist { return r.PerOp[o] }

// OpTypes lists all operation types in Table 3 order.
func OpTypes() []OpType {
	ops := make([]OpType, numOps)
	for i := range ops {
		ops[i] = OpType(i)
	}
	return ops
}

// Bench drives LinkBench against an engine.
type Bench struct {
	cfg   Config
	e     *innodb.Engine
	nodes *innodb.Table
	links *innodb.Table
	cnts  *innodb.Table
	cpu   *sim.Resource
	maxID int64
}

// Setup creates and bulk-loads the LinkBench schema on the engine.
func Setup(eng *sim.Engine, e *innodb.Engine, cfg Config) (*Bench, error) {
	cfg.defaults()
	if cfg.PageCPU == 0 {
		// Larger pages cost more CPU per access: checksums, binary search
		// over more rows, bigger memcpys.
		cfg.PageCPU = 35*time.Microsecond + 3*time.Microsecond*time.Duration(e.PageBytes()/1024)
	}
	b := &Bench{cfg: cfg, e: e, maxID: cfg.Nodes}
	var err error
	// Row sizes approximate LinkBench's MySQL schema footprints.
	if b.nodes, err = e.CreateTable("nodetable", index.Config{
		RowBytes: 300, MaxRows: cfg.Nodes*5/4 + 1,
	}); err != nil {
		return nil, err
	}
	if b.links, err = e.CreateTable("linktable", index.Config{
		RowBytes: 150, MaxRows: cfg.Nodes*cfg.LinksPerNode*6/5 + 1,
	}); err != nil {
		return nil, err
	}
	if b.cnts, err = e.CreateTable("counttable", index.Config{
		RowBytes: 50, MaxRows: cfg.Nodes*5/4 + 1,
	}); err != nil {
		return nil, err
	}
	if err = b.nodes.BulkLoad(cfg.Nodes); err != nil {
		return nil, err
	}
	if err = b.links.BulkLoad(cfg.Nodes * cfg.LinksPerNode); err != nil {
		return nil, err
	}
	if err = b.cnts.BulkLoad(cfg.Nodes); err != nil {
		return nil, err
	}
	b.cpu = sim.NewResource(eng, cfg.Cores)
	return b, nil
}

// Run executes warmup + measured requests with cfg.Clients concurrent
// clients and returns the measured result. It drives the engine's
// simulation to completion.
func (b *Bench) Run(eng *sim.Engine) (*Result, error) {
	cfg := b.cfg
	res := &Result{}
	for i := range res.PerOp {
		res.PerOp[i] = &stats.Hist{}
	}
	total := cfg.Warmup + cfg.Requests
	perClient := total / cfg.Clients
	if perClient == 0 {
		perClient = 1
	}
	warmPer := cfg.Warmup / cfg.Clients

	var firstErr error
	var started bool
	var startT time.Duration
	var startGets, startMiss int64
	for c := 0; c < cfg.Clients; c++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(c)*104729))
		zipf := rand.NewZipf(rng, cfg.ZipfS, cfg.ZipfV, uint64(cfg.Nodes-1))
		eng.Go(fmt.Sprintf("lb-client-%d", c), func(p *sim.Proc) {
			for i := 0; i < perClient; i++ {
				if i == warmPer && !started {
					started = true
					startT = p.Now()
					st := b.e.Pool().Stats()
					startGets, startMiss = st.Gets, st.Misses
					if cfg.OnMeasureStart != nil {
						cfg.OnMeasureStart()
					}
				}
				op := b.pickOp(rng)
				t0 := p.Now()
				if err := b.doOp(p, rng, zipf, op); err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				if i >= warmPer {
					res.PerOp[op].Record(p.Now() - t0)
					res.Requests++
				}
			}
		})
	}
	eng.Run()
	if firstErr != nil {
		return nil, firstErr
	}
	res.Elapsed = eng.Now() - startT
	st := b.e.Pool().Stats()
	if gets := st.Gets - startGets; gets > 0 {
		res.MissRatio = float64(st.Misses-startMiss) / float64(gets)
	}
	return res, nil
}

func (b *Bench) pickOp(rng *rand.Rand) OpType {
	x := rng.Float64() * 100
	var cum float64
	for op := OpType(0); op < numOps; op++ {
		cum += opMix[op]
		if x < cum {
			return op
		}
	}
	return GetLinkList
}

// nodeID draws a node and scatters it across the key space: Facebook's
// caching tier strips the temporal and spatial locality from the traffic
// that reaches MySQL (paper §4.1), so hot nodes are NOT neighbors on disk.
// Scattering is what makes small pages pollute the buffer pool less.
func (b *Bench) nodeID(zipf *rand.Zipf) int64 {
	hot := int64(zipf.Uint64())
	return int64((uint64(hot) * 0x9E3779B97F4A7C15) % uint64(b.cfg.Nodes))
}

func (b *Bench) linkRank(id int64, rng *rand.Rand) int64 {
	return id*b.cfg.LinksPerNode + rng.Int63n(b.cfg.LinksPerNode)
}

// burnCPU models server CPU for a request touching `pages` pages.
func (b *Bench) burnCPU(p *sim.Proc, op OpType, pages int) {
	d := b.cfg.BaseCPU + time.Duration(pages)*b.cfg.PageCPU
	if op.IsWrite() {
		d += b.cfg.WriteCPU
	}
	b.cpu.Acquire(p, 1)
	p.Sleep(d)
	b.cpu.Release(1)
}

func (b *Bench) doOp(p *sim.Proc, rng *rand.Rand, zipf *rand.Zipf, op OpType) error {
	id := b.nodeID(zipf)
	tx := b.e.Begin()
	var err error
	var pages int
	switch op {
	case GetNode:
		pages = b.nodes.Tree().Depth()
		b.burnCPU(p, op, pages)
		err = tx.Lookup(p, b.nodes, id)
	case CountLink:
		pages = b.cnts.Tree().Depth()
		b.burnCPU(p, op, pages)
		err = tx.Lookup(p, b.cnts, id)
	case GetLinkList:
		pages = b.links.Tree().Depth() + 1
		b.burnCPU(p, op, pages)
		err = tx.Scan(p, b.links, id*b.cfg.LinksPerNode, b.cfg.ListLength)
	case MultigetLink:
		pages = b.links.Tree().Depth() * 2
		b.burnCPU(p, op, pages)
		if err = tx.Lookup(p, b.links, b.linkRank(id, rng)); err == nil {
			err = tx.Lookup(p, b.links, b.linkRank(id, rng))
		}
	case AddNode:
		pages = b.nodes.Tree().Depth()
		b.burnCPU(p, op, pages)
		b.maxID++
		err = tx.Insert(p, b.nodes, b.maxID)
	case DeleteNode:
		pages = b.nodes.Tree().Depth() + b.cnts.Tree().Depth()
		b.burnCPU(p, op, pages)
		if err = tx.Delete(p, b.nodes, id); err == nil {
			err = tx.Delete(p, b.cnts, id)
		}
	case UpdateNode:
		pages = b.nodes.Tree().Depth()
		b.burnCPU(p, op, pages)
		err = tx.Update(p, b.nodes, id)
	case AddLink:
		pages = b.links.Tree().Depth() + b.cnts.Tree().Depth()
		b.burnCPU(p, op, pages)
		if err = tx.Insert(p, b.links, b.linkRank(id, rng)); err == nil {
			err = tx.Update(p, b.cnts, id)
		}
	case DeleteLink:
		pages = b.links.Tree().Depth() + b.cnts.Tree().Depth()
		b.burnCPU(p, op, pages)
		if err = tx.Delete(p, b.links, b.linkRank(id, rng)); err == nil {
			err = tx.Update(p, b.cnts, id)
		}
	case UpdateLink:
		pages = b.links.Tree().Depth()
		b.burnCPU(p, op, pages)
		err = tx.Update(p, b.links, b.linkRank(id, rng))
	}
	if err != nil {
		return err
	}
	return tx.Commit(p)
}
