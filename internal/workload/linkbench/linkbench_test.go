package linkbench

import (
	"math/rand"
	"testing"

	"durassd/internal/dbsim/index"
	"durassd/internal/host"
	"durassd/internal/innodb"
	"durassd/internal/sim"
	"durassd/internal/ssd"
	"durassd/internal/storage"
)

func newBench(t *testing.T, cfg Config) (*sim.Engine, *Bench) {
	t.Helper()
	eng := sim.New()
	dev, err := ssd.New(eng, ssd.DuraSSD(8))
	if err != nil {
		t.Fatal(err)
	}
	fs := host.NewFS(dev, false)
	e, err := innodb.Open(eng, fs, fs, innodb.Config{
		PageBytes:    4 * storage.KB,
		BufferBytes:  4 * storage.MB,
		DataPages:    dev.Pages() * 8 / 10,
		LogFilePages: 8_000,
		LogFiles:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Setup(eng, e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, b
}

func TestOpMixSumsTo100(t *testing.T) {
	var sum float64
	for _, pct := range opMix {
		sum += pct
	}
	if sum < 99.9 || sum > 100.1 {
		t.Fatalf("op mix sums to %v", sum)
	}
}

func TestWriteFractionAbout30Pct(t *testing.T) {
	var writes float64
	for op, pct := range opMix {
		if OpType(op).IsWrite() {
			writes += pct
		}
	}
	if writes < 28 || writes > 34 {
		t.Fatalf("write fraction = %v%%, paper says ~30%%", writes)
	}
}

func TestRunProducesAllOpTypes(t *testing.T) {
	eng, b := newBench(t, Config{
		Nodes: 50_000, Clients: 16, Requests: 8_000, Warmup: 500, Seed: 3,
	})
	res, err := b.Run(eng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests < 7_000 {
		t.Fatalf("measured %d requests", res.Requests)
	}
	if res.TPS() <= 0 {
		t.Fatal("zero TPS")
	}
	for _, op := range OpTypes() {
		if res.Hist(op).Count() == 0 {
			t.Fatalf("op %s never executed", op)
		}
	}
	if res.MissRatio <= 0 || res.MissRatio >= 1 {
		t.Fatalf("miss ratio = %v", res.MissRatio)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() float64 {
		eng, b := newBench(t, Config{
			Nodes: 30_000, Clients: 8, Requests: 3_000, Warmup: 200, Seed: 7,
		})
		res, err := b.Run(eng)
		if err != nil {
			t.Fatal(err)
		}
		return res.TPS()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic TPS: %v vs %v", a, b)
	}
}

func TestScatteredIDsStayInRange(t *testing.T) {
	eng, b := newBench(t, Config{Nodes: 10_000, Clients: 1, Requests: 1, Warmup: 0})
	_ = eng
	rng := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(rng, 1.01, 20, uint64(b.cfg.Nodes-1))
	for i := 0; i < 10_000; i++ {
		id := b.nodeID(zipf)
		if id < 0 || id >= b.cfg.Nodes {
			t.Fatalf("scattered id %d out of range", id)
		}
	}
}

func TestSchemaFitsReservation(t *testing.T) {
	// The three tables must fit the reserved data-file range.
	eng := sim.New()
	dev, _ := ssd.New(eng, ssd.DuraSSD(8))
	fs := host.NewFS(dev, false)
	e, err := innodb.Open(eng, fs, fs, innodb.Config{
		PageBytes:    16 * storage.KB,
		BufferBytes:  4 * storage.MB,
		DataPages:    dev.Pages() * int64(dev.PageSize()) / int64(16*storage.KB) * 8 / 10,
		LogFilePages: 4_000,
		LogFiles:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Setup(eng, e, Config{Nodes: 100_000}); err != nil {
		t.Fatal(err)
	}
	var _ = index.Config{}
}
