// Package index models the page-access topology of a B+-tree without
// materializing its bytes: given a page size, record size and key count it
// computes which database pages a lookup, scan or insert touches, including
// the deeper trees that small pages produce — the source of the paper's
// Figure 5 anomaly, where 4 KB pages underperform 8 KB ones when frequent
// flush-caches hide the IOPS advantage of small pages.
//
// Keys are dense 64-bit ranks (0..N-1); the engines map their natural keys
// onto ranks arithmetically. Page IDs are stable: each level owns a fixed
// region sized for MaxRows, so the tree can grow without remapping.
//
// A byte-exact page-level B+-tree lives in internal/btree for the
// correctness work; this package is the scalable twin used by the
// benchmark-scale engines.
package index

import (
	"fmt"

	"durassd/internal/dbsim/buffer"
)

// Config describes one tree.
type Config struct {
	PageBytes  int     // database page size
	RowBytes   int     // leaf record size (including row overhead)
	KeyBytes   int     // internal node entry size (key + child pointer)
	FillFactor float64 // steady-state page fill (default 0.70)
	MaxRows    int64   // capacity to reserve page IDs for
}

func (c *Config) defaults() error {
	if c.FillFactor <= 0 || c.FillFactor > 1 {
		c.FillFactor = 0.70
	}
	if c.KeyBytes <= 0 {
		c.KeyBytes = 16
	}
	switch {
	case c.PageBytes <= 0:
		return fmt.Errorf("index: PageBytes must be positive")
	case c.RowBytes <= 0 || c.RowBytes > c.PageBytes:
		return fmt.Errorf("index: RowBytes %d invalid for page %d", c.RowBytes, c.PageBytes)
	case c.MaxRows <= 0:
		return fmt.Errorf("index: MaxRows must be positive")
	}
	return nil
}

// Tree is one arithmetic B+-tree.
type Tree struct {
	cfg         Config
	rowsPerLeaf int64
	fanout      int64
	levels      int     // number of levels including the leaf level
	levelBase   []int64 // page-ID offset of each level, leaf level first
	pages       int64   // total page IDs reserved
	base        buffer.PageID
	rows        int64
	inserts     int64
}

// New sizes a tree for cfg and assigns it the page-ID range
// [base, base+Pages()).
func New(cfg Config, base buffer.PageID) (*Tree, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	t := &Tree{cfg: cfg, base: base}
	t.rowsPerLeaf = int64(float64(cfg.PageBytes) / float64(cfg.RowBytes) * cfg.FillFactor)
	if t.rowsPerLeaf < 1 {
		t.rowsPerLeaf = 1
	}
	t.fanout = int64(float64(cfg.PageBytes) / float64(cfg.KeyBytes) * cfg.FillFactor)
	if t.fanout < 2 {
		t.fanout = 2
	}
	// Level widths at MaxRows determine the reserved regions.
	width := (cfg.MaxRows + t.rowsPerLeaf - 1) / t.rowsPerLeaf
	if width < 1 {
		width = 1
	}
	for {
		t.levelBase = append(t.levelBase, t.pages)
		t.pages += width
		t.levels++
		if width == 1 {
			break
		}
		width = (width + t.fanout - 1) / t.fanout
	}
	return t, nil
}

// Pages returns the number of page IDs reserved for the tree.
func (t *Tree) Pages() int64 { return t.pages }

// Rows returns the current row count.
func (t *Tree) Rows() int64 { return t.rows }

// SetRows installs the row count after a bulk load.
func (t *Tree) SetRows(n int64) { t.rows = n }

// RowsPerLeaf returns the steady-state records per leaf page.
func (t *Tree) RowsPerLeaf() int64 { return t.rowsPerLeaf }

// Fanout returns the internal-node fanout.
func (t *Tree) Fanout() int64 { return t.fanout }

// Depth returns the number of pages on a root-to-leaf path for the current
// row count: deeper for smaller pages, shallower for larger ones.
func (t *Tree) Depth() int {
	leaves := t.rows / t.rowsPerLeaf
	if leaves < 1 {
		leaves = 1
	}
	d := 1
	for w := leaves; w > 1; w = (w + t.fanout - 1) / t.fanout {
		d++
	}
	if d > t.levels {
		d = t.levels
	}
	return d
}

func (t *Tree) pageAt(level int, idx int64) buffer.PageID {
	return t.base + buffer.PageID(t.levelBase[level]+idx)
}

// SearchPath returns the root-to-leaf page IDs visited when looking up the
// rank (leaf last).
func (t *Tree) SearchPath(rank int64) []buffer.PageID {
	if rank < 0 {
		rank = 0
	}
	depth := t.Depth()
	path := make([]buffer.PageID, depth)
	idx := rank / t.rowsPerLeaf
	for level := 0; level < depth; level++ {
		path[depth-1-level] = t.pageAt(level, idx)
		idx /= t.fanout
	}
	return path
}

// LeafOf returns the leaf page holding the rank.
func (t *Tree) LeafOf(rank int64) buffer.PageID {
	return t.pageAt(0, rank/t.rowsPerLeaf)
}

// ScanLeaves returns the leaf pages covering [startRank, startRank+n).
func (t *Tree) ScanLeaves(startRank, n int64) []buffer.PageID {
	if n <= 0 {
		return nil
	}
	first := startRank / t.rowsPerLeaf
	last := (startRank + n - 1) / t.rowsPerLeaf
	pages := make([]buffer.PageID, 0, last-first+1)
	for i := first; i <= last; i++ {
		pages = append(pages, t.pageAt(0, i))
	}
	return pages
}

// Insert records an insert of the given rank and returns the pages the
// insert dirties: always the leaf; on a (deterministic, amortized) split,
// the parent as well, one extra level per fanout power.
func (t *Tree) Insert(rank int64) []buffer.PageID {
	t.rows++
	t.inserts++
	dirty := []buffer.PageID{t.LeafOf(rank)}
	depth := t.Depth()
	stride := t.rowsPerLeaf
	idx := rank / t.rowsPerLeaf
	for level := 1; level < depth; level++ {
		if t.inserts%stride != 0 {
			break
		}
		idx /= t.fanout
		dirty = append(dirty, t.pageAt(level, idx))
		stride *= t.fanout
	}
	return dirty
}

// Delete records a delete; it dirties the leaf only (no rebalancing, like
// InnoDB's purge in practice).
func (t *Tree) Delete(rank int64) []buffer.PageID {
	if t.rows > 0 {
		t.rows--
	}
	return []buffer.PageID{t.LeafOf(rank)}
}
