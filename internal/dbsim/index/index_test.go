package index

import (
	"testing"
	"testing/quick"

	"durassd/internal/dbsim/buffer"
	"durassd/internal/storage"
)

func newTree(t *testing.T, pageBytes int, rows int64) *Tree {
	t.Helper()
	tr, err := New(Config{PageBytes: pageBytes, RowBytes: 150, MaxRows: rows * 2}, 100)
	if err != nil {
		t.Fatal(err)
	}
	tr.SetRows(rows)
	return tr
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{PageBytes: 0, RowBytes: 100, MaxRows: 10}, 0); err == nil {
		t.Fatal("zero page size accepted")
	}
	if _, err := New(Config{PageBytes: 4096, RowBytes: 8192, MaxRows: 10}, 0); err == nil {
		t.Fatal("row bigger than page accepted")
	}
	if _, err := New(Config{PageBytes: 4096, RowBytes: 100, MaxRows: 0}, 0); err == nil {
		t.Fatal("zero rows accepted")
	}
}

func TestSmallerPagesMakeDeeperTrees(t *testing.T) {
	// The source of the paper's Figure 5 anomaly.
	rows := int64(2_500_000)
	d4 := newTree(t, 4*storage.KB, rows).Depth()
	d16 := newTree(t, 16*storage.KB, rows).Depth()
	if d4 <= d16 {
		t.Fatalf("depth(4KB)=%d <= depth(16KB)=%d for %d rows", d4, d16, rows)
	}
}

func TestSearchPathShape(t *testing.T) {
	tr := newTree(t, 4*storage.KB, 1_000_000)
	path := tr.SearchPath(123_456)
	if len(path) != tr.Depth() {
		t.Fatalf("path length %d != depth %d", len(path), tr.Depth())
	}
	if path[len(path)-1] != tr.LeafOf(123_456) {
		t.Fatal("path does not end at the key's leaf")
	}
	// Same leaf for neighbors within one leaf's rows.
	if tr.LeafOf(0) != tr.LeafOf(tr.RowsPerLeaf()-1) {
		t.Fatal("neighbors in one leaf map to different pages")
	}
	if tr.LeafOf(0) == tr.LeafOf(tr.RowsPerLeaf()) {
		t.Fatal("different leaves map to the same page")
	}
}

func TestPageIDsDisjointAcrossLevels(t *testing.T) {
	tr := newTree(t, 4*storage.KB, 1_000_000)
	seen := make(map[buffer.PageID]bool)
	for _, rank := range []int64{0, 1, 999_999, 500_000} {
		path := tr.SearchPath(rank)
		for i := 0; i < len(path)-1; i++ {
			for j := i + 1; j < len(path); j++ {
				if path[i] == path[j] {
					t.Fatalf("path reuses page %d at two levels", path[i])
				}
			}
		}
		_ = seen
	}
}

func TestScanLeavesCoverRange(t *testing.T) {
	tr := newTree(t, 4*storage.KB, 100_000)
	per := tr.RowsPerLeaf()
	leaves := tr.ScanLeaves(0, per*3)
	if len(leaves) < 3 || len(leaves) > 4 {
		t.Fatalf("scan of 3 leaves' rows returned %d pages", len(leaves))
	}
	if tr.ScanLeaves(10, 0) != nil {
		t.Fatal("empty scan returned pages")
	}
}

func TestInsertDirtiesLeafAndSometimesParent(t *testing.T) {
	tr := newTree(t, 4*storage.KB, 1000)
	splits := 0
	n := int(tr.RowsPerLeaf()) * 10
	for i := 0; i < n; i++ {
		dirty := tr.Insert(int64(i))
		if len(dirty) == 0 || dirty[0] != tr.LeafOf(int64(i)) {
			t.Fatal("insert did not dirty the leaf")
		}
		if len(dirty) > 1 {
			splits++
		}
	}
	if splits == 0 {
		t.Fatal("no amortized splits over many inserts")
	}
	if splits > n/int(tr.RowsPerLeaf())+1 {
		t.Fatalf("too many splits: %d", splits)
	}
}

func TestRowsTracked(t *testing.T) {
	tr := newTree(t, 4*storage.KB, 10)
	tr.Insert(11)
	if tr.Rows() != 11 {
		t.Fatalf("rows = %d", tr.Rows())
	}
	tr.Delete(5)
	if tr.Rows() != 10 {
		t.Fatalf("rows after delete = %d", tr.Rows())
	}
}

func TestPagesWithinReservation(t *testing.T) {
	check := func(seed int64) bool {
		rows := 1000 + (seed%100_000+100_000)%100_000
		tr, err := New(Config{PageBytes: 8 * storage.KB, RowBytes: 200, MaxRows: rows}, 0)
		if err != nil {
			return false
		}
		tr.SetRows(rows)
		// Every path page must fall inside the reserved range.
		for _, rank := range []int64{0, rows / 2, rows - 1} {
			for _, id := range tr.SearchPath(rank) {
				if int64(id) < 0 || int64(id) >= tr.Pages() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDepthGrowsWithRows(t *testing.T) {
	tr, _ := New(Config{PageBytes: 4 * storage.KB, RowBytes: 150, MaxRows: 10_000_000}, 0)
	tr.SetRows(10)
	small := tr.Depth()
	tr.SetRows(9_000_000)
	big := tr.Depth()
	if big <= small {
		t.Fatalf("depth did not grow: %d -> %d", small, big)
	}
}
