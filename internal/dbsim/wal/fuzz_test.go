package wal

import (
	"bytes"
	"testing"
)

// encodedRecord returns the canonical on-disk block for rec.
func encodedRecord(rec Record, blockBytes int) []byte {
	block := make([]byte, blockBytes)
	encodeRecord(block, rec)
	return block
}

// FuzzDecodeRecord throws arbitrary log blocks at the decoder. Any block
// the decoder accepts must survive an encode/decode round trip unchanged —
// the redo path trusts accepted records completely, so acceptance must
// imply integrity.
func FuzzDecodeRecord(f *testing.F) {
	f.Add(encodedRecord(Record{LSN: 1, Page: 7, Version: 3}, 4096))
	f.Add(encodedRecord(Record{LSN: 42, Page: 1 << 40, Version: 9, FullImage: true}, 4096))
	f.Add(encodedRecord(Record{LSN: 0, Page: 0, Version: 0}, 4096)) // LSN 0 must be rejected
	f.Add(make([]byte, 4096))                                       // never-written block
	f.Add([]byte{})                                                 // truncated block
	f.Add(bytes.Repeat([]byte{0xff}, 29))                           // minimal-size garbage
	f.Fuzz(func(t *testing.T, block []byte) {
		rec, ok := decodeRecord(block)
		if !ok {
			return
		}
		if rec.LSN == 0 {
			t.Fatal("decoder accepted a record with LSN 0 (the never-written sentinel)")
		}
		out := make([]byte, 4096)
		encodeRecord(out, rec)
		rec2, ok2 := decodeRecord(out)
		if !ok2 {
			t.Fatalf("re-encoded record rejected: %+v", rec)
		}
		if rec2 != rec {
			t.Fatalf("round trip changed the record: %+v -> %+v", rec, rec2)
		}
	})
}

// FuzzDecodeRecordCorruption flips one byte of a valid record block and
// requires the decoder to either reject the block or decode the original
// record (a flip past offset 29 is outside the covered region).
func FuzzDecodeRecordCorruption(f *testing.F) {
	f.Add(uint64(1), uint64(7), uint64(3), false, 0)
	f.Add(uint64(9), uint64(500), uint64(12), true, 28)
	f.Add(uint64(5), uint64(2), uint64(1), false, 100)
	f.Fuzz(func(t *testing.T, lsn, page, version uint64, full bool, flip int) {
		rec := Record{LSN: lsn, Page: page, Version: version, FullImage: full}
		block := encodedRecord(rec, 4096)
		want, wantOK := decodeRecord(block)
		if lsn == 0 {
			if wantOK {
				t.Fatal("LSN-0 record accepted")
			}
			return
		}
		if !wantOK || want != rec {
			t.Fatalf("clean decode failed: got %+v ok=%v, want %+v", want, wantOK, rec)
		}
		if flip < 0 {
			flip = -flip
		}
		flip %= len(block)
		block[flip] ^= 0x40
		got, ok := decodeRecord(block)
		if flip < 29 {
			// Inside the checksummed region (or the checksum itself): the
			// corruption must not be silently accepted as a different record.
			if ok && got != rec {
				t.Fatalf("corrupt block at offset %d decoded as %+v", flip, got)
			}
		} else if !ok || got != rec {
			t.Fatalf("flip outside the record at offset %d broke decoding: %+v ok=%v", flip, got, ok)
		}
	})
}
