// Package wal implements a redo write-ahead log with group commit over a
// host file, the durability mechanism both database engines in the paper's
// evaluation rely on ("the database log tail was set to flush by each
// committing transaction", §4.2).
//
// Records are appended to an in-memory log tail; Commit forces the tail up
// to the transaction's LSN using fdatasync semantics (a device flush only
// when the filesystem has write barriers on). Concurrent committers share
// one physical flush (group commit).
package wal

import (
	"encoding/binary"
	"fmt"

	"durassd/internal/host"
	"durassd/internal/iotrace"
	"durassd/internal/sim"
	"durassd/internal/storage"
)

func putU64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }
func getU64(b []byte) uint64    { return binary.LittleEndian.Uint64(b) }
func putU32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }
func getU32(b []byte) uint32    { return binary.LittleEndian.Uint32(b) }

func checksum(b []byte) uint32 { return storage.Checksum(b) }

// Config tunes the log.
type Config struct {
	// FilePages is the size of each log file in device pages (the paper
	// uses three 4 GB files). The log wraps across files round-robin.
	FilePages int64
	// Files is the number of log files.
	Files int
	// RealBytes stores real, checksummed record blocks so crash tests can
	// replay redo after a power failure. Each record occupies one log
	// block in this mode.
	RealBytes bool
}

// Record is one redo record in RealBytes mode: "page reached version".
// Page images are reproducible from (Page, Version); FullImage marks
// records that carried the entire page (PostgreSQL full-page writes),
// which are the only records that can repair a torn page — ordinary delta
// records need an intact base.
type Record struct {
	LSN       uint64
	Page      uint64
	Version   uint64
	FullImage bool
}

// Log is a redo log with group commit.
type Log struct {
	eng   *sim.Engine
	cfg   Config
	files []*host.File

	nextLSN    uint64
	durableLSN uint64
	tailBytes  int64 // unflushed bytes buffered in the log tail
	writePos   int64 // next page offset in the current file
	curFile    int
	pending    []Record // unflushed records (RealBytes mode)

	flushing  bool
	flushDone *sim.Queue

	// Stats
	Flushes      int64
	GroupedCount int64 // commits that piggybacked on another flush
	Records      int64
	BytesLogged  int64
}

// New creates the log files on fs and returns the log.
func New(eng *sim.Engine, fs *host.FS, cfg Config) (*Log, error) {
	if cfg.Files <= 0 {
		cfg.Files = 3
	}
	if cfg.FilePages <= 0 {
		return nil, fmt.Errorf("wal: FilePages must be positive")
	}
	l := &Log{eng: eng, cfg: cfg, flushDone: sim.NewQueue(eng)}
	for i := 0; i < cfg.Files; i++ {
		f, err := fs.Create(fmt.Sprintf("redo-%d", i), cfg.FilePages)
		if err != nil {
			return nil, err
		}
		f.SetOrigin(iotrace.OriginRedo)
		l.files = append(l.files, f)
	}
	return l, nil
}

// Reopen attaches to existing log files after a crash (for ReadAll-based
// recovery followed by fresh appends; the write position restarts, which is
// fine for crash tests that recover before appending).
func Reopen(eng *sim.Engine, fs *host.FS, cfg Config) (*Log, error) {
	if cfg.Files <= 0 {
		cfg.Files = 3
	}
	l := &Log{eng: eng, cfg: cfg, flushDone: sim.NewQueue(eng)}
	for i := 0; i < cfg.Files; i++ {
		f, err := fs.Open(fmt.Sprintf("redo-%d", i))
		if err != nil {
			return nil, err
		}
		l.files = append(l.files, f)
	}
	return l, nil
}

// Append adds a redo record of the given payload size and returns its LSN.
// The record sits in the volatile log tail until a flush reaches it.
func (l *Log) Append(sizeBytes int) uint64 {
	l.nextLSN++
	l.tailBytes += int64(sizeBytes)
	l.Records++
	l.BytesLogged += int64(sizeBytes)
	return l.nextLSN
}

// AppendRecord adds a "page reached version" delta redo record (RealBytes
// mode).
func (l *Log) AppendRecord(page, version uint64, sizeBytes int) uint64 {
	lsn := l.Append(sizeBytes)
	if l.cfg.RealBytes {
		l.pending = append(l.pending, Record{LSN: lsn, Page: page, Version: version})
	}
	return lsn
}

// AppendFullImage adds a full-page-image record (PostgreSQL-style torn-page
// protection): sizeBytes should be the page size plus record overhead.
func (l *Log) AppendFullImage(page, version uint64, sizeBytes int) uint64 {
	lsn := l.Append(sizeBytes)
	if l.cfg.RealBytes {
		l.pending = append(l.pending, Record{LSN: lsn, Page: page, Version: version, FullImage: true})
	}
	return lsn
}

// DurableLSN returns the highest LSN known to be on storage.
func (l *Log) DurableLSN() uint64 { return l.durableLSN }

// CurrentLSN returns the latest assigned LSN.
func (l *Log) CurrentLSN() uint64 { return l.nextLSN }

// Commit makes the log durable up to lsn and returns when it is. Multiple
// committers share one flush (group commit).
func (l *Log) Commit(p *sim.Proc, lsn uint64) error {
	for l.durableLSN < lsn {
		if l.flushing {
			// Piggyback on the in-progress flush; re-check afterwards.
			l.GroupedCount++
			l.flushDone.Wait(p)
			continue
		}
		if err := l.flush(p); err != nil {
			return err
		}
	}
	return nil
}

// Flush forces the whole tail to storage regardless of LSN.
func (l *Log) Flush(p *sim.Proc) error {
	for l.durableLSN < l.nextLSN {
		if l.flushing {
			l.flushDone.Wait(p)
			continue
		}
		if err := l.flush(p); err != nil {
			return err
		}
	}
	return nil
}

// flush writes the buffered tail sequentially and fdatasyncs it.
func (l *Log) flush(p *sim.Proc) error {
	l.flushing = true
	defer func() {
		l.flushing = false
		l.flushDone.WakeAll()
	}()
	target := l.nextLSN
	bytes := l.tailBytes
	l.tailBytes = 0
	if l.cfg.RealBytes {
		if err := l.flushRecords(p); err != nil {
			return err
		}
	} else {
		// Sequential log writes, padded to whole log blocks (device pages).
		blockBytes := int64(l.files[0].PageSize())
		pages := (bytes + blockBytes - 1) / blockBytes
		if pages == 0 {
			pages = 1 // the commit record itself
		}
		for pages > 0 {
			f := l.files[l.curFile]
			n := pages
			if l.writePos+n > l.cfg.FilePages {
				n = l.cfg.FilePages - l.writePos
			}
			if n == 0 {
				l.curFile = (l.curFile + 1) % len(l.files)
				l.writePos = 0
				continue
			}
			if err := f.WritePages(p, l.writePos, int(n), nil); err != nil {
				return err
			}
			l.writePos += n
			pages -= n
		}
	}
	if err := l.files[l.curFile].Fdatasync(p); err != nil {
		return err
	}
	l.Flushes++
	if target > l.durableLSN {
		l.durableLSN = target
	}
	return nil
}

// flushRecords writes each pending record as one checksummed log block
// (RealBytes mode).
func (l *Log) flushRecords(p *sim.Proc) error {
	recs := l.pending
	l.pending = nil
	if len(recs) == 0 {
		recs = []Record{{}} // the flush still writes a padding block
	}
	blockBytes := l.files[0].PageSize()
	for _, rec := range recs {
		if l.writePos >= l.cfg.FilePages {
			l.curFile = (l.curFile + 1) % len(l.files)
			l.writePos = 0
		}
		block := make([]byte, blockBytes)
		encodeRecord(block, rec)
		if err := l.files[l.curFile].WritePages(p, l.writePos, 1, block); err != nil {
			return err
		}
		l.writePos++
	}
	return nil
}

func encodeRecord(block []byte, rec Record) {
	putU64(block[4:], rec.LSN)
	putU64(block[12:], rec.Page)
	putU64(block[20:], rec.Version)
	if rec.FullImage {
		block[28] = 1
	}
	putU32(block[0:], checksum(block[4:29]))
}

func decodeRecord(block []byte) (Record, bool) {
	if len(block) < 29 || getU32(block[0:]) != checksum(block[4:29]) {
		return Record{}, false
	}
	rec := Record{
		LSN:       getU64(block[4:]),
		Page:      getU64(block[12:]),
		Version:   getU64(block[20:]),
		FullImage: block[28] == 1,
	}
	return rec, rec.LSN != 0
}

// ReadAll replays the on-storage log (RealBytes mode), returning surviving
// records in LSN order. Reading stops at the first invalid block of each
// file; records from all files are merged and sorted by LSN.
func (l *Log) ReadAll(p *sim.Proc) ([]Record, error) {
	var recs []Record
	block := make([]byte, l.files[0].PageSize())
	for _, f := range l.files {
		for pos := int64(0); pos < l.cfg.FilePages; pos++ {
			if err := f.ReadPages(p, pos, 1, block); err != nil {
				return nil, err
			}
			rec, ok := decodeRecord(block)
			if !ok {
				break
			}
			recs = append(recs, rec)
		}
	}
	sortRecords(recs)
	return recs, nil
}

func sortRecords(recs []Record) {
	// Records are nearly sorted already (single-file tests): insertion sort.
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j].LSN < recs[j-1].LSN; j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
}
