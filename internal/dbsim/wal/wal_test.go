package wal

import (
	"testing"
	"time"

	"durassd/internal/host"
	"durassd/internal/sim"
	"durassd/internal/ssd"
)

func newLog(t *testing.T, barrier, realBytes bool) (*sim.Engine, *Log, *ssd.Device) {
	t.Helper()
	eng := sim.New()
	dev, err := ssd.New(eng, ssd.DuraSSD(16))
	if err != nil {
		t.Fatal(err)
	}
	fs := host.NewFS(dev, barrier)
	l, err := New(eng, fs, Config{FilePages: 1024, Files: 2, RealBytes: realBytes})
	if err != nil {
		t.Fatal(err)
	}
	return eng, l, dev
}

func TestCommitAdvancesDurableLSN(t *testing.T) {
	eng, l, _ := newLog(t, true, false)
	eng.Go("t", func(p *sim.Proc) {
		lsn := l.Append(100)
		if l.DurableLSN() != 0 {
			t.Error("durable before commit")
		}
		if err := l.Commit(p, lsn); err != nil {
			t.Errorf("Commit: %v", err)
		}
		if l.DurableLSN() < lsn {
			t.Error("commit did not advance durable LSN")
		}
	})
	eng.Run()
	if l.Flushes != 1 {
		t.Fatalf("flushes = %d", l.Flushes)
	}
}

func TestGroupCommit(t *testing.T) {
	eng, l, _ := newLog(t, true, false)
	const committers = 16
	for i := 0; i < committers; i++ {
		eng.Go("c", func(p *sim.Proc) {
			lsn := l.Append(128)
			if err := l.Commit(p, lsn); err != nil {
				t.Errorf("Commit: %v", err)
			}
		})
	}
	eng.Run()
	if l.Flushes >= committers {
		t.Fatalf("flushes = %d for %d committers; no group commit", l.Flushes, committers)
	}
	if l.GroupedCount == 0 {
		t.Fatal("no commits piggybacked")
	}
}

func TestBarrierOffCommitIsCheap(t *testing.T) {
	eng, l, dev := newLog(t, false, false)
	var cost time.Duration
	eng.Go("t", func(p *sim.Proc) {
		lsn := l.Append(128)
		start := p.Now()
		if err := l.Commit(p, lsn); err != nil {
			t.Errorf("Commit: %v", err)
		}
		cost = p.Now() - start
	})
	eng.Run()
	if dev.Stats().FlushCommands != 0 {
		t.Fatal("barrier-off commit sent flush-cache")
	}
	if cost > 500*time.Microsecond {
		t.Fatalf("barrier-off commit cost %v", cost)
	}
}

func TestCommitIdempotent(t *testing.T) {
	eng, l, _ := newLog(t, true, false)
	eng.Go("t", func(p *sim.Proc) {
		lsn := l.Append(64)
		_ = l.Commit(p, lsn)
		before := l.Flushes
		_ = l.Commit(p, lsn) // already durable
		if l.Flushes != before {
			t.Error("re-commit of durable LSN flushed again")
		}
	})
	eng.Run()
}

func TestRealBytesRoundTrip(t *testing.T) {
	eng, l, _ := newLog(t, true, true)
	eng.Go("t", func(p *sim.Proc) {
		var last uint64
		for i := uint64(1); i <= 20; i++ {
			last = l.AppendRecord(i, i*10, 64)
		}
		if err := l.Commit(p, last); err != nil {
			t.Errorf("Commit: %v", err)
			return
		}
		recs, err := l.ReadAll(p)
		if err != nil {
			t.Errorf("ReadAll: %v", err)
			return
		}
		if len(recs) != 20 {
			t.Errorf("records = %d, want 20", len(recs))
			return
		}
		for i, r := range recs {
			if r.Page != uint64(i+1) || r.Version != uint64(i+1)*10 {
				t.Errorf("record %d = %+v", i, r)
				return
			}
			if i > 0 && recs[i].LSN <= recs[i-1].LSN {
				t.Error("records out of LSN order")
				return
			}
		}
	})
	eng.Run()
}

func TestUnflushedRecordsNotVisible(t *testing.T) {
	eng, l, _ := newLog(t, true, true)
	eng.Go("t", func(p *sim.Proc) {
		lsn := l.AppendRecord(1, 10, 64)
		_ = l.Commit(p, lsn)
		l.AppendRecord(2, 20, 64) // never committed
		recs, err := l.ReadAll(p)
		if err != nil {
			t.Errorf("ReadAll: %v", err)
			return
		}
		for _, r := range recs {
			if r.Page == 2 {
				t.Error("uncommitted record visible on storage")
			}
		}
	})
	eng.Run()
}

func TestLogWrapsAcrossFiles(t *testing.T) {
	eng := sim.New()
	dev, _ := ssd.New(eng, ssd.DuraSSD(16))
	fs := host.NewFS(dev, true)
	l, err := New(eng, fs, Config{FilePages: 4, Files: 3})
	if err != nil {
		t.Fatal(err)
	}
	eng.Go("t", func(p *sim.Proc) {
		for i := 0; i < 30; i++ {
			lsn := l.Append(8192) // 2 pages per record
			if err := l.Commit(p, lsn); err != nil {
				t.Errorf("Commit %d: %v", i, err)
				return
			}
		}
	})
	eng.Run()
	if l.Flushes == 0 {
		t.Fatal("no flushes")
	}
}
