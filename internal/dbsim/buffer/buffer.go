// Package buffer implements a database buffer pool with the structure of
// the paper's Figure 1: a main LRU list, a free list, a dirty-page set, a
// background page cleaner, and — critically for the paper's latency
// argument — reads that block on writing back a dirty victim when the free
// list is empty.
//
// The pool is engine-agnostic: dirty pages are persisted through a
// PageWriter, which lets InnoDB interpose its double-write buffer and
// write-ahead-log ordering without the pool knowing.
package buffer

import (
	"container/list"
	"fmt"
	"time"

	"durassd/internal/sim"
)

// PageID identifies a database page within the engine's page space.
type PageID int64

// PageWrite is one dirty page image handed to the PageWriter.
type PageWrite struct {
	ID   PageID
	LSN  uint64 // newest log record touching the page (WAL ordering)
	Data []byte // nil in timing-only mode
}

// PageWriter persists a batch of dirty pages. Implementations decide the
// atomic-write strategy: plain in-place writes, or InnoDB's double-write
// buffer (write the batch to the DWB area, fsync, write in place, fsync).
type PageWriter interface {
	WritePages(p *sim.Proc, pages []PageWrite) error
}

// PageReader fills a page image from storage.
type PageReader interface {
	ReadPage(p *sim.Proc, id PageID, buf []byte) error
}

// Config tunes the pool.
type Config struct {
	Frames    int // pool size in pages
	PageBytes int // database page size
	RealBytes bool

	// CleanerInterval is the background page-cleaner period; 0 disables
	// the cleaner (every write-back then happens on the eviction path).
	CleanerInterval time.Duration
	// CleanerBatch is the number of dirty pages flushed per cleaner round.
	CleanerBatch int
	// CleanerDirtyPct triggers cleaning when dirty pages exceed this
	// fraction of the pool (percent).
	CleanerDirtyPct int
}

func (c *Config) defaults() {
	if c.CleanerBatch <= 0 {
		c.CleanerBatch = 64
	}
	if c.CleanerDirtyPct <= 0 {
		c.CleanerDirtyPct = 50
	}
}

// Stats counts pool activity.
type Stats struct {
	Gets            int64
	Hits            int64
	Misses          int64
	Evictions       int64
	DirtyEvictions  int64 // reads that had to write back a victim first
	CleanerFlushes  int64
	ReadsBlockedByW int64 // alias of DirtyEvictions seen from the read side
}

// MissRatio returns misses / gets (Figure 6a's metric).
func (s *Stats) MissRatio() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Gets)
}

// Frame is a buffer frame. Access it only while pinned.
type Frame struct {
	id     PageID
	data   []byte
	lsn    uint64
	dirty  bool
	pins   int
	busy   bool // I/O in progress
	inPool bool
	elem   *list.Element
	latch  *sim.Resource // exclusive page latch (created on first use)
}

// ID returns the page held by the frame.
func (f *Frame) ID() PageID { return f.id }

// Data returns the page image (nil in timing-only pools).
func (f *Frame) Data() []byte { return f.data }

// LSN returns the frame's recovery LSN.
func (f *Frame) LSN() uint64 { return f.lsn }

// Dirty reports whether the frame has unflushed changes.
func (f *Frame) Dirty() bool { return f.dirty }

// Pool is the buffer pool.
type Pool struct {
	eng    *sim.Engine
	cfg    Config
	reader PageReader
	writer PageWriter

	frames map[PageID]*Frame
	lru    *list.List // front = MRU, back = LRU victim side
	free   []*Frame
	dirty  int

	inIO     map[PageID]*sim.Signal // page reads in progress
	flushers *sim.Queue             // procs waiting for a frame being written
	cleanerQ *sim.Queue             // wakes the cleaner when dirty crosses the threshold

	closed bool
	stats  Stats
}

// New builds a pool of cfg.Frames frames over the given reader/writer and
// starts the background cleaner (if configured).
func New(eng *sim.Engine, cfg Config, reader PageReader, writer PageWriter) (*Pool, error) {
	cfg.defaults()
	if cfg.Frames <= 0 {
		return nil, fmt.Errorf("buffer: pool needs at least one frame")
	}
	bp := &Pool{
		eng:      eng,
		cfg:      cfg,
		reader:   reader,
		writer:   writer,
		frames:   make(map[PageID]*Frame, cfg.Frames),
		lru:      list.New(),
		inIO:     make(map[PageID]*sim.Signal),
		flushers: sim.NewQueue(eng),
		cleanerQ: sim.NewQueue(eng),
	}
	bp.free = make([]*Frame, 0, cfg.Frames)
	for i := 0; i < cfg.Frames; i++ {
		fr := &Frame{}
		if cfg.RealBytes {
			fr.data = make([]byte, cfg.PageBytes)
		}
		bp.free = append(bp.free, fr)
	}
	if cfg.CleanerInterval > 0 {
		eng.Go("page-cleaner", bp.cleaner)
	}
	return bp, nil
}

// Stats returns the live counters.
func (bp *Pool) Stats() *Stats { return &bp.stats }

// Frames returns the configured pool size.
func (bp *Pool) Frames() int { return bp.cfg.Frames }

// DirtyPages returns the current number of dirty frames.
func (bp *Pool) DirtyPages() int { return bp.dirty }

// Get pins the page, reading it from storage on a miss. The returned frame
// stays pinned until Unpin.
func (bp *Pool) Get(p *sim.Proc, id PageID) (*Frame, error) {
	bp.stats.Gets++
	for {
		if fr, ok := bp.frames[id]; ok {
			if fr.busy {
				// Someone is reading or writing this exact page; wait.
				sig := bp.inIO[id]
				if sig == nil {
					// Being written back; retry after the writer finishes.
					bp.flushers.Wait(p)
					continue
				}
				sig.Wait(p)
				continue
			}
			bp.stats.Hits++
			fr.pins++
			bp.lru.MoveToFront(fr.elem)
			return fr, nil
		}
		// Miss. Serialize concurrent faults on the same page.
		if sig, ok := bp.inIO[id]; ok {
			sig.Wait(p)
			continue
		}
		bp.stats.Misses++
		sig := sim.NewSignal(bp.eng)
		bp.inIO[id] = sig
		fr, err := bp.takeFreeFrame(p)
		if err == nil {
			fr.id = id
			fr.busy = true
			fr.dirty = false
			fr.lsn = 0
			fr.inPool = true
			bp.frames[id] = fr
			fr.elem = bp.lru.PushFront(fr)
			err = bp.reader.ReadPage(p, id, fr.data)
			fr.busy = false
		}
		delete(bp.inIO, id)
		sig.Fire()
		if err != nil {
			if fr != nil && fr.inPool {
				bp.removeFrame(fr)
				bp.free = append(bp.free, fr)
			}
			return nil, err
		}
		fr.pins++
		return fr, nil
	}
}

// takeFreeFrame returns a frame from the free list, evicting (and if dirty,
// writing back — the "read blocked by write" of Figure 1) when empty.
func (bp *Pool) takeFreeFrame(p *sim.Proc) (*Frame, error) {
	for {
		if n := len(bp.free); n > 0 {
			fr := bp.free[n-1]
			bp.free = bp.free[:n-1]
			return fr, nil
		}
		fr, err := bp.evictOne(p)
		if err != nil {
			return nil, err
		}
		if fr != nil {
			return fr, nil
		}
		// Everything pinned or busy: wait for a write-back to finish.
		bp.flushers.Wait(p)
	}
}

// evictOne scans the LRU list from the tail for an unpinned victim.
// A dirty victim is written back synchronously before reuse.
func (bp *Pool) evictOne(p *sim.Proc) (*Frame, error) {
	for e := bp.lru.Back(); e != nil; e = e.Prev() {
		fr := e.Value.(*Frame)
		if fr.pins > 0 || fr.busy {
			continue
		}
		if fr.dirty {
			bp.stats.DirtyEvictions++
			bp.stats.ReadsBlockedByW++
			if err := bp.writeBack(p, []*Frame{fr}); err != nil {
				return nil, err
			}
			// State may have changed while writing; restart the scan.
			if fr.dirty || fr.pins > 0 || !fr.inPool {
				return nil, nil
			}
		}
		bp.removeFrame(fr)
		bp.stats.Evictions++
		return fr, nil
	}
	return nil, nil
}

func (bp *Pool) removeFrame(fr *Frame) {
	delete(bp.frames, fr.id)
	if fr.elem != nil {
		bp.lru.Remove(fr.elem)
		fr.elem = nil
	}
	fr.inPool = false
	fr.dirty = false
}

// writeBack persists the given dirty frames as one batch via the writer.
func (bp *Pool) writeBack(p *sim.Proc, victims []*Frame) error {
	writes := make([]PageWrite, len(victims))
	for i, fr := range victims {
		fr.busy = true
		writes[i] = PageWrite{ID: fr.id, LSN: fr.lsn, Data: fr.data}
	}
	err := bp.writer.WritePages(p, writes)
	for _, fr := range victims {
		fr.busy = false
		if err == nil && fr.dirty {
			fr.dirty = false
			bp.dirty--
		}
	}
	bp.flushers.WakeAll()
	return err
}

// LockX acquires the frame's exclusive page latch. Modifying operations
// hold it for their page-CPU time, so a hot 16 KB leaf serializes four
// times the key range of a 4 KB one — the concurrency-granularity effect
// behind the paper's small-page argument (§2.4).
func (bp *Pool) LockX(p *sim.Proc, fr *Frame) {
	if fr.latch == nil {
		fr.latch = sim.NewResource(bp.eng, 1)
	}
	fr.latch.Acquire(p, 1)
}

// UnlockX releases the exclusive page latch.
func (bp *Pool) UnlockX(fr *Frame) { fr.latch.Release(1) }

// MarkDirty records a modification to a pinned frame at the given LSN.
func (bp *Pool) MarkDirty(fr *Frame, lsn uint64) {
	if fr.pins <= 0 {
		panic("buffer: MarkDirty on unpinned frame")
	}
	if !fr.dirty {
		fr.dirty = true
		bp.dirty++
		if bp.overThreshold() {
			bp.cleanerQ.WakeOne()
		}
	}
	if lsn > fr.lsn {
		fr.lsn = lsn
	}
}

// Unpin releases a pinned frame.
func (bp *Pool) Unpin(fr *Frame) {
	if fr.pins <= 0 {
		panic("buffer: Unpin of unpinned frame")
	}
	fr.pins--
}

// cleaner is the background flusher: it keeps the dirty fraction below the
// configured threshold by writing LRU-tail pages in batches. It is
// condition-driven (woken by MarkDirty when the threshold is crossed) so an
// idle pool schedules no events.
func (bp *Pool) cleaner(p *sim.Proc) {
	for !bp.closed {
		if !bp.overThreshold() {
			bp.cleanerQ.Wait(p)
			continue
		}
		p.Sleep(bp.cfg.CleanerInterval) // batching delay
		if bp.closed {
			return
		}
		victims := bp.collectDirtyTail(bp.cfg.CleanerBatch)
		if len(victims) == 0 {
			// Dirty pages are all pinned or busy; yield until state changes.
			bp.cleanerQ.Wait(p)
			continue
		}
		if err := bp.writeBack(p, victims); err != nil {
			return
		}
		bp.stats.CleanerFlushes += int64(len(victims))
	}
}

func (bp *Pool) overThreshold() bool {
	return bp.dirty*100 >= bp.cfg.Frames*bp.cfg.CleanerDirtyPct
}

func (bp *Pool) collectDirtyTail(max int) []*Frame {
	var victims []*Frame
	for e := bp.lru.Back(); e != nil && len(victims) < max; e = e.Prev() {
		fr := e.Value.(*Frame)
		if fr.dirty && !fr.busy && fr.pins == 0 {
			victims = append(victims, fr)
		}
	}
	return victims
}

// FlushAll writes every dirty page (checkpoint / clean shutdown).
func (bp *Pool) FlushAll(p *sim.Proc) error {
	for {
		victims := bp.collectDirtyTail(bp.cfg.CleanerBatch)
		if len(victims) == 0 {
			if bp.dirty == 0 {
				return nil
			}
			// Dirty pages are pinned or busy; let their holders progress.
			bp.flushers.Wait(p)
			continue
		}
		if err := bp.writeBack(p, victims); err != nil {
			return err
		}
	}
}

// Close stops the cleaner.
func (bp *Pool) Close() { bp.closed = true }
