package buffer

import (
	"testing"
	"time"

	"durassd/internal/sim"
)

// fakeIO counts reads/writes and charges a fixed latency.
type fakeIO struct {
	eng      *sim.Engine
	readLat  time.Duration
	writeLat time.Duration
	reads    int
	writes   int
	written  map[PageID]int
}

func newFakeIO(eng *sim.Engine) *fakeIO {
	return &fakeIO{eng: eng, readLat: 100 * time.Microsecond, writeLat: 200 * time.Microsecond,
		written: make(map[PageID]int)}
}

func (f *fakeIO) ReadPage(p *sim.Proc, id PageID, buf []byte) error {
	f.reads++
	p.Sleep(f.readLat)
	return nil
}

func (f *fakeIO) WritePages(p *sim.Proc, pages []PageWrite) error {
	f.writes++
	for _, pg := range pages {
		f.written[pg.ID]++
	}
	p.Sleep(f.writeLat)
	return nil
}

func newPool(t *testing.T, eng *sim.Engine, frames int, io *fakeIO) *Pool {
	t.Helper()
	bp, err := New(eng, Config{Frames: frames, PageBytes: 4096, CleanerInterval: time.Millisecond}, io, io)
	if err != nil {
		t.Fatal(err)
	}
	return bp
}

func TestHitAndMissAccounting(t *testing.T) {
	eng := sim.New()
	io := newFakeIO(eng)
	bp := newPool(t, eng, 8, io)
	eng.Go("t", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			fr, err := bp.Get(p, 7)
			if err != nil {
				t.Errorf("Get: %v", err)
				return
			}
			bp.Unpin(fr)
		}
	})
	eng.Run()
	st := bp.Stats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("hits/misses = %d/%d", st.Hits, st.Misses)
	}
	if io.reads != 1 {
		t.Fatalf("device reads = %d", io.reads)
	}
}

func TestEvictionLRUOrder(t *testing.T) {
	eng := sim.New()
	io := newFakeIO(eng)
	bp := newPool(t, eng, 3, io)
	eng.Go("t", func(p *sim.Proc) {
		for _, id := range []PageID{1, 2, 3} {
			fr, _ := bp.Get(p, id)
			bp.Unpin(fr)
		}
		// Touch 1 so it becomes MRU; adding 4 must evict 2.
		fr, _ := bp.Get(p, 1)
		bp.Unpin(fr)
		fr, _ = bp.Get(p, 4)
		bp.Unpin(fr)
		// 2 should now miss, 1 and 3... 3 was evicted? order: LRU=2.
		before := bp.Stats().Misses
		fr, _ = bp.Get(p, 1)
		bp.Unpin(fr)
		if bp.Stats().Misses != before {
			t.Error("page 1 was evicted despite being MRU")
		}
		fr, _ = bp.Get(p, 2)
		bp.Unpin(fr)
		if bp.Stats().Misses != before+1 {
			t.Error("page 2 (LRU) was not evicted")
		}
	})
	eng.Run()
}

func TestDirtyEvictionBlocksReader(t *testing.T) {
	// Figure 1: a read that needs a frame must first write back the dirty
	// victim, paying the write latency before the read latency.
	eng := sim.New()
	io := newFakeIO(eng)
	bp := newPool(t, eng, 1, io)
	var elapsed time.Duration
	eng.Go("t", func(p *sim.Proc) {
		fr, _ := bp.Get(p, 1)
		bp.MarkDirty(fr, 1)
		bp.Unpin(fr)
		start := p.Now()
		fr2, err := bp.Get(p, 2)
		if err != nil {
			t.Errorf("Get: %v", err)
			return
		}
		bp.Unpin(fr2)
		elapsed = p.Now() - start
	})
	eng.Run()
	if elapsed < io.writeLat+io.readLat {
		t.Fatalf("read of page 2 took %v; must include victim write-back", elapsed)
	}
	if bp.Stats().DirtyEvictions != 1 {
		t.Fatalf("dirty evictions = %d", bp.Stats().DirtyEvictions)
	}
}

func TestConcurrentMissesShareOneRead(t *testing.T) {
	eng := sim.New()
	io := newFakeIO(eng)
	bp := newPool(t, eng, 8, io)
	for i := 0; i < 5; i++ {
		eng.Go("r", func(p *sim.Proc) {
			fr, err := bp.Get(p, 9)
			if err != nil {
				t.Errorf("Get: %v", err)
				return
			}
			bp.Unpin(fr)
		})
	}
	eng.Run()
	if io.reads != 1 {
		t.Fatalf("concurrent faults issued %d reads, want 1", io.reads)
	}
}

func TestCleanerFlushesAboveThreshold(t *testing.T) {
	eng := sim.New()
	io := newFakeIO(eng)
	bp, err := New(eng, Config{
		Frames: 10, PageBytes: 4096,
		CleanerInterval: 100 * time.Microsecond, CleanerBatch: 4, CleanerDirtyPct: 40,
	}, io, io)
	if err != nil {
		t.Fatal(err)
	}
	eng.Go("t", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			fr, _ := bp.Get(p, PageID(i))
			bp.MarkDirty(fr, uint64(i+1))
			bp.Unpin(fr)
		}
		p.Sleep(5 * time.Millisecond) // let the cleaner run
	})
	eng.Run()
	if bp.Stats().CleanerFlushes == 0 {
		t.Fatal("cleaner never flushed above threshold")
	}
}

func TestFlushAllDrains(t *testing.T) {
	eng := sim.New()
	io := newFakeIO(eng)
	bp := newPool(t, eng, 16, io)
	eng.Go("t", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			fr, _ := bp.Get(p, PageID(i))
			bp.MarkDirty(fr, uint64(i+1))
			bp.Unpin(fr)
		}
		if err := bp.FlushAll(p); err != nil {
			t.Errorf("FlushAll: %v", err)
		}
		if bp.DirtyPages() != 0 {
			t.Errorf("dirty pages = %d after FlushAll", bp.DirtyPages())
		}
	})
	eng.Run()
}

func TestPinnedPagesNotEvicted(t *testing.T) {
	eng := sim.New()
	io := newFakeIO(eng)
	bp := newPool(t, eng, 2, io)
	eng.Go("t", func(p *sim.Proc) {
		pinned, _ := bp.Get(p, 1)
		fr, _ := bp.Get(p, 2)
		bp.Unpin(fr)
		// Getting page 3 must evict 2, never pinned 1.
		fr3, err := bp.Get(p, 3)
		if err != nil {
			t.Errorf("Get: %v", err)
			return
		}
		bp.Unpin(fr3)
		before := bp.Stats().Misses
		same, _ := bp.Get(p, 1)
		if bp.Stats().Misses != before {
			t.Error("pinned page was evicted")
		}
		bp.Unpin(same)
		bp.Unpin(pinned)
	})
	eng.Run()
}

func TestMissRatio(t *testing.T) {
	eng := sim.New()
	io := newFakeIO(eng)
	bp := newPool(t, eng, 4, io)
	eng.Go("t", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			fr, _ := bp.Get(p, PageID(i))
			bp.Unpin(fr)
		}
		for i := 0; i < 12; i++ {
			fr, _ := bp.Get(p, PageID(i%4))
			bp.Unpin(fr)
		}
	})
	eng.Run()
	if got := bp.Stats().MissRatio(); got != 0.25 {
		t.Fatalf("miss ratio = %v, want 0.25", got)
	}
}
