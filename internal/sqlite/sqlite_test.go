package sqlite

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"durassd/internal/btree"
	"durassd/internal/host"
	"durassd/internal/sim"
	"durassd/internal/ssd"
	"durassd/internal/storage"
)

func newRig(t *testing.T, kind string, barrier bool) (*sim.Engine, *ssd.Device, *host.FS) {
	t.Helper()
	eng := sim.New()
	var prof ssd.Profile
	if kind == "dura" {
		prof = ssd.DuraSSD(16)
	} else {
		prof = ssd.SSDA(16)
	}
	dev, err := ssd.New(eng, prof)
	if err != nil {
		t.Fatal(err)
	}
	return eng, dev, host.NewFS(dev, barrier)
}

func TestBasicTxCycle(t *testing.T) {
	eng, _, fs := newRig(t, "dura", true)
	eng.Go("t", func(p *sim.Proc) {
		st, err := Open(p, fs, Config{Journal: true})
		if err != nil {
			t.Errorf("Open: %v", err)
			return
		}
		if err := st.Put(p, 1, []byte("x")); err != ErrNoTx {
			t.Errorf("journal-on write outside tx = %v", err)
		}
		if err := st.Begin(p); err != nil {
			t.Errorf("Begin: %v", err)
		}
		if err := st.Put(p, 1, []byte("hello")); err != nil {
			t.Errorf("Put: %v", err)
		}
		if err := st.Commit(p); err != nil {
			t.Errorf("Commit: %v", err)
		}
		v, err := st.Get(p, 1)
		if err != nil || string(v) != "hello" {
			t.Errorf("Get = %q, %v", v, err)
		}
	})
	eng.Run()
}

func TestExplicitRollback(t *testing.T) {
	eng, _, fs := newRig(t, "dura", true)
	eng.Go("t", func(p *sim.Proc) {
		st, err := Open(p, fs, Config{Journal: true})
		if err != nil {
			t.Errorf("Open: %v", err)
			return
		}
		_ = st.Begin(p)
		_ = st.Put(p, 7, []byte("committed"))
		_ = st.Commit(p)
		_ = st.Begin(p)
		_ = st.Put(p, 7, []byte("doomed"))
		_ = st.Put(p, 8, []byte("doomed-too"))
		if _, err := st.Rollback(p); err != nil {
			t.Errorf("Rollback: %v", err)
			return
		}
		// Reload the tree from the rolled-back file.
		st2, err := Open(p, fs, Config{Journal: true})
		if err != nil {
			t.Errorf("reopen: %v", err)
			return
		}
		if v, err := st2.Get(p, 7); err != nil || string(v) != "committed" {
			t.Errorf("key 7 = %q, %v after rollback", v, err)
		}
		if _, err := st2.Get(p, 8); !errors.Is(err, btree.ErrNotFound) {
			t.Errorf("uncommitted key 8 survived rollback: %v", err)
		}
	})
	eng.Run()
}

// crashRun drives transactions until the power dies, then reopens and
// audits. Returns (#committed keys verified, corruption error if any).
func crashRun(t *testing.T, kind string, barrier, journal bool, seed int64) (int, error) {
	t.Helper()
	eng, dev, fs := newRig(t, kind, barrier)
	committed := make(map[uint64][]byte)
	var openErr error
	eng.Go("w", func(p *sim.Proc) {
		st, err := Open(p, fs, Config{Journal: journal})
		if err != nil {
			openErr = err
			return
		}
		rng := rand.New(rand.NewSource(seed))
		for {
			if journal {
				if err := st.Begin(p); err != nil {
					return
				}
			}
			pending := make(map[uint64][]byte)
			for j := 0; j < 3; j++ {
				k := uint64(rng.Intn(300))
				v := []byte(fmt.Sprintf("v%d-%d", k, rng.Int()))
				if err := st.Put(p, k, v); err != nil {
					return
				}
				pending[k] = v
			}
			if journal {
				if err := st.Commit(p); err != nil {
					return
				}
			}
			for k, v := range pending {
				committed[k] = v
			}
		}
	})
	cut := time.Duration(3+seed*13%60) * time.Millisecond
	eng.Schedule(cut, func() { dev.PowerFail() })
	eng.Run()
	if openErr != nil {
		return 0, openErr
	}

	var auditErr error
	verified := 0
	eng.Go("r", func(p *sim.Proc) {
		if err := dev.Reboot(p); err != nil {
			auditErr = err
			return
		}
		st, err := Open(p, fs, Config{Journal: journal})
		if err != nil {
			auditErr = fmt.Errorf("reopen: %w", err)
			return
		}
		if err := st.Check(p); err != nil {
			auditErr = fmt.Errorf("structure: %w", err)
			return
		}
		for k, want := range committed {
			v, err := st.Get(p, k)
			if err != nil {
				auditErr = fmt.Errorf("key %d: %w", k, err)
				return
			}
			if journal && string(v) != string(want) {
				// With rollback-journal transactions, a committed value is
				// exact; without the journal only page-level atomicity
				// holds, so later uncommitted writes may legitimately
				// supersede it.
				auditErr = fmt.Errorf("key %d = %q, want %q", k, v, want)
				return
			}
			verified++
		}
	})
	eng.Run()
	return verified, auditErr
}

func TestJournalProtectsVolatileSSD(t *testing.T) {
	// Barriers on + rollback journal on a torn-write drive: the SQLite
	// safe default. Every committed transaction must survive intact.
	for seed := int64(0); seed < 8; seed++ {
		n, err := crashRun(t, "ssda", true, true, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		_ = n
	}
}

func TestDuraSSDJournalOffIsSafe(t *testing.T) {
	// The paper's pitch for mobile engines: journal_mode=OFF on DuraSSD —
	// no before-images, no fsync storms, still structurally crash-safe
	// with committed data readable.
	total := 0
	for seed := int64(0); seed < 8; seed++ {
		n, err := crashRun(t, "dura", false, false, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		total += n
	}
	if total == 0 {
		t.Fatal("no writes verified; scenario too short")
	}
}

func TestJournalOffOnTornDeviceCorrupts(t *testing.T) {
	// journal_mode=OFF on a volatile torn-write drive: across enough power
	// cuts, the tree must end up corrupt or lossy at least once.
	failures := 0
	for seed := int64(0); seed < 15; seed++ {
		if _, err := crashRun(t, "ssda", false, false, seed); err != nil {
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("journal-off on a volatile drive never corrupted anything across 15 cuts")
	}
}

func TestJournalFullErrors(t *testing.T) {
	eng, _, fs := newRig(t, "dura", true)
	eng.Go("t", func(p *sim.Proc) {
		st, err := Open(p, fs, Config{Journal: true, DBPages: 4096, JPages: 8})
		if err != nil {
			t.Errorf("Open: %v", err)
			return
		}
		_ = st.Begin(p)
		var lastErr error
		for i := uint64(0); i < 100; i++ {
			if lastErr = st.Put(p, i*977, make([]byte, 300)); lastErr != nil {
				break
			}
		}
		if lastErr == nil {
			t.Error("tiny journal never filled")
		}
	})
	eng.Run()
	var _ = storage.KB
}
