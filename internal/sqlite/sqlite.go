// Package sqlite implements the third software torn-page scheme the paper
// names in §2.1: the rollback journal of mobile engines (SQLite, Sybase
// SQL Anywhere). Before a transaction's first in-place write to a page,
// the page's **before-image** is copied to a journal file and fsynced;
// commit invalidates the journal header; crash recovery rolls the
// database back from any valid journal.
//
// Like the double-write buffer and full-page writes, the journal exists
// only because ordinary storage tears pages. On DuraSSD the store can run
// with the journal off (SQLite's journal_mode=OFF) and remain crash-safe —
// every page write is atomic and durable on acknowledgement.
package sqlite

import (
	"encoding/binary"
	"errors"
	"fmt"

	"durassd/internal/btree"
	"durassd/internal/host"
	"durassd/internal/iotrace"
	"durassd/internal/sim"
	"durassd/internal/storage"
)

// ErrNoTx reports a write outside a transaction.
var ErrNoTx = errors.New("sqlite: write outside a transaction")

// Config tunes the store.
type Config struct {
	PageBytes int  // tree page size (default 4 KB)
	Journal   bool // rollback journal on (the safe default off DuraSSD)
	DBPages   int64
	JPages    int64
}

// Store is a journaled key-value store: a btree over a journaled file.
type Store struct {
	cfg  Config
	fs   *host.FS
	db   *jfile
	tree *btree.Tree
}

// jfile wraps the database file, copying before-images into the journal
// ahead of in-place writes while a transaction is open.
type jfile struct {
	db      *host.File
	journal *host.File
	cfg     *Config

	inTx     bool
	bypass   bool           // formatting/recovery writes skip journaling
	logged   map[int64]bool // tree pages journaled this tx
	jPos     int64          // next journal page (device pages)
	jEntries uint32
	perTree  int // device pages per tree page
}

// Open creates (or reopens) the store on fs. Reopening runs rollback
// recovery first when a valid journal exists.
func Open(p *sim.Proc, fs *host.FS, cfg Config) (*Store, error) {
	if cfg.PageBytes <= 0 {
		cfg.PageBytes = 4 * storage.KB
	}
	if cfg.DBPages <= 0 {
		cfg.DBPages = fs.Device().Pages() / 2
	}
	if cfg.JPages <= 0 {
		cfg.JPages = cfg.DBPages / 4
	}
	devPage := fs.Device().PageSize()
	if cfg.PageBytes%devPage != 0 {
		return nil, fmt.Errorf("sqlite: bad page size %d", cfg.PageBytes)
	}
	st := &Store{cfg: cfg, fs: fs}
	var db, journal *host.File
	var err error
	fresh := false
	if db, err = fs.Open("sqlite.db"); err != nil {
		if db, err = fs.Create("sqlite.db", cfg.DBPages); err != nil {
			return nil, err
		}
		if journal, err = fs.Create("sqlite.journal", cfg.JPages); err != nil {
			return nil, err
		}
		fresh = true
	} else if journal, err = fs.Open("sqlite.journal"); err != nil {
		return nil, err
	}
	db.SetOrigin(iotrace.OriginData)
	journal.SetOrigin(iotrace.OriginJournal)
	st.db = &jfile{db: db, journal: journal, cfg: &st.cfg, perTree: cfg.PageBytes / devPage}
	st.db.bypass = true
	defer func() { st.db.bypass = false }()
	if fresh {
		if st.tree, err = btree.Create(p, st.db, cfg.PageBytes); err != nil {
			return nil, err
		}
		// An invalid header marks "no journal to roll back".
		if cfg.Journal {
			if err := st.db.writeHeader(p, 0, false); err != nil {
				return nil, err
			}
		}
		return st, nil
	}
	// Reopen path: roll back from the journal if one is valid, then load.
	if _, err := st.Rollback(p); err != nil {
		return nil, err
	}
	if st.tree, err = btree.Open(p, st.db, cfg.PageBytes); err != nil {
		return nil, err
	}
	return st, nil
}

// journal header layout (device page 0 of the journal file):
// [0:4] crc over [4:12], [4:8] magic, [8:12] entry count.
const jMagic = 0x5AFEC0DE

func (f *jfile) writeHeader(p *sim.Proc, entries uint32, valid bool) error {
	hdr := make([]byte, f.db.PageSize())
	if valid {
		binary.LittleEndian.PutUint32(hdr[4:8], jMagic)
	}
	binary.LittleEndian.PutUint32(hdr[8:12], entries)
	binary.LittleEndian.PutUint32(hdr[0:4], storage.Checksum(hdr[4:12]))
	if err := f.journal.WritePages(p, 0, 1, hdr); err != nil {
		return err
	}
	return f.journal.Fsync(p)
}

// ReadPages implements btree.File.
func (f *jfile) ReadPages(p *sim.Proc, off int64, n int, buf []byte) error {
	return f.db.ReadPages(p, off, n, buf)
}

// PageSize implements btree.File.
func (f *jfile) PageSize() int { return f.db.PageSize() }

// Pages implements btree.File.
func (f *jfile) Pages() int64 { return f.db.Pages() }

// WritePages implements btree.File: with the journal on, the before-image
// of each not-yet-logged tree page is appended to the journal and synced
// before the in-place write proceeds.
func (f *jfile) WritePages(p *sim.Proc, off int64, n int, data []byte) error {
	if f.cfg.Journal && !f.bypass {
		if !f.inTx {
			return ErrNoTx
		}
		treePage := off / int64(f.perTree)
		if !f.logged[treePage] {
			img := make([]byte, f.cfg.PageBytes+f.db.PageSize())
			// Entry: one device page of metadata + the before-image. The
			// checksum covers the image too, so a journal entry torn by a
			// power cut is detected and never restored.
			binary.LittleEndian.PutUint64(img[4:12], uint64(treePage))
			if err := f.db.ReadPages(p, treePage*int64(f.perTree), f.perTree, img[f.db.PageSize():]); err != nil {
				return err
			}
			binary.LittleEndian.PutUint32(img[0:4], storage.Checksum(img[4:]))
			need := int64(1 + f.perTree)
			if f.jPos+need > f.journal.Pages() {
				return fmt.Errorf("sqlite: journal full")
			}
			if err := f.journal.WritePages(p, f.jPos, int(need), img); err != nil {
				return err
			}
			f.jPos += need
			f.jEntries++
			f.logged[treePage] = true
			// The header (entry count) must be durable before the page is
			// overwritten in place.
			if err := f.writeHeader(p, f.jEntries, true); err != nil {
				return err
			}
		}
	}
	return f.db.WritePages(p, off, n, data)
}

// Begin opens a transaction (required when the journal is on).
func (s *Store) Begin(p *sim.Proc) error {
	f := s.db
	if f.inTx {
		return fmt.Errorf("sqlite: nested transaction")
	}
	f.inTx = true
	f.logged = make(map[int64]bool)
	f.jPos = 1 // page 0 is the header
	f.jEntries = 0
	return nil
}

// Commit makes the transaction durable: data pages are synced, then the
// journal header is invalidated (SQLite's commit point).
func (s *Store) Commit(p *sim.Proc) error {
	f := s.db
	if !f.inTx {
		return ErrNoTx
	}
	if err := f.db.Fsync(p); err != nil {
		return err
	}
	if f.cfg.Journal {
		if err := f.writeHeader(p, 0, false); err != nil {
			return err
		}
	}
	f.inTx = false
	return nil
}

// Rollback restores before-images from a valid journal (crash recovery or
// explicit abort). It reports how many pages were restored.
func (s *Store) Rollback(p *sim.Proc) (int, error) {
	f := s.db
	f.inTx = false
	wasBypass := f.bypass
	f.bypass = true
	defer func() { f.bypass = wasBypass }()
	if !f.cfg.Journal {
		return 0, nil
	}
	hdr := make([]byte, f.db.PageSize())
	if err := f.journal.ReadPages(p, 0, 1, hdr); err != nil {
		return 0, err
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != storage.Checksum(hdr[4:12]) ||
		binary.LittleEndian.Uint32(hdr[4:8]) != jMagic {
		return 0, nil // no valid journal: nothing to roll back
	}
	entries := binary.LittleEndian.Uint32(hdr[8:12])
	restored := 0
	pos := int64(1)
	entry := make([]byte, f.cfg.PageBytes+f.db.PageSize())
	for i := uint32(0); i < entries; i++ {
		if err := f.journal.ReadPages(p, pos, 1+f.perTree, entry); err != nil {
			return restored, err
		}
		if binary.LittleEndian.Uint32(entry[0:4]) != storage.Checksum(entry[4:]) {
			break // torn journal tail: entries beyond it never committed
		}
		treePage := int64(binary.LittleEndian.Uint64(entry[4:12]))
		if err := f.db.WritePages(p, treePage*int64(f.perTree), f.perTree, entry[f.db.PageSize():]); err != nil {
			return restored, err
		}
		restored++
		pos += int64(1 + f.perTree)
	}
	if err := f.db.Fsync(p); err != nil {
		return restored, err
	}
	if err := f.writeHeader(p, 0, false); err != nil {
		return restored, err
	}
	return restored, nil
}

// Put inserts or replaces a key inside the current transaction (or as an
// autocommit write when the journal is off).
func (s *Store) Put(p *sim.Proc, key uint64, value []byte) error {
	return s.tree.Put(p, key, value)
}

// Get reads a key.
func (s *Store) Get(p *sim.Proc, key uint64) ([]byte, error) {
	return s.tree.Get(p, key)
}

// Delete removes a key.
func (s *Store) Delete(p *sim.Proc, key uint64) error {
	return s.tree.Delete(p, key)
}

// Check verifies the tree structure and checksums.
func (s *Store) Check(p *sim.Proc) error { return s.tree.Check(p) }
