package host

import (
	"testing"
	"time"

	"durassd/internal/sim"
	"durassd/internal/ssd"
	"durassd/internal/storage"
)

func newFS(t *testing.T, barrier bool) (*sim.Engine, *FS, *ssd.Device) {
	t.Helper()
	eng := sim.New()
	dev, err := ssd.New(eng, ssd.DuraSSD(16))
	if err != nil {
		t.Fatal(err)
	}
	return eng, NewFS(dev, barrier), dev
}

func TestCreateOpenAndBounds(t *testing.T) {
	eng, fs, _ := newFS(t, true)
	f, err := fs.Create("a", 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("a", 10); err == nil {
		t.Fatal("duplicate create succeeded")
	}
	if _, err := fs.Open("missing"); err == nil {
		t.Fatal("open of missing file succeeded")
	}
	got, err := fs.Open("a")
	if err != nil || got != f {
		t.Fatalf("Open = %v, %v", got, err)
	}
	eng.Go("io", func(p *sim.Proc) {
		if err := f.WritePages(p, 99, 2, nil); err == nil {
			t.Error("write beyond EOF succeeded")
		}
		if err := f.ReadPages(p, -1, 1, nil); err == nil {
			t.Error("negative-offset read succeeded")
		}
	})
	eng.Run()
}

func TestFilesAreDisjoint(t *testing.T) {
	eng, fs, dev := newFS(t, true)
	a, _ := fs.Create("a", 10)
	b, _ := fs.Create("b", 10)
	pg := dev.PageSize()
	eng.Go("io", func(p *sim.Proc) {
		bufA := make([]byte, pg)
		for i := range bufA {
			bufA[i] = 0xaa
		}
		if err := a.WritePages(p, 0, 1, bufA); err != nil {
			t.Errorf("write a: %v", err)
		}
		got := make([]byte, pg)
		if err := b.ReadPages(p, 0, 1, got); err != nil {
			t.Errorf("read b: %v", err)
		}
		for _, x := range got {
			if x != 0 {
				t.Error("file b sees file a's data")
				break
			}
		}
	})
	eng.Run()
}

func TestFsyncSendsFlushOnlyWithBarriers(t *testing.T) {
	for _, barrier := range []bool{true, false} {
		eng, fs, dev := newFS(t, barrier)
		f, _ := fs.Create("a", 10)
		eng.Go("io", func(p *sim.Proc) {
			if err := f.WritePages(p, 0, 1, nil); err != nil {
				t.Errorf("write: %v", err)
			}
			if err := f.Fsync(p); err != nil {
				t.Errorf("fsync: %v", err)
			}
		})
		eng.Run()
		flushes := dev.Stats().FlushCommands
		if barrier && flushes == 0 {
			t.Fatal("barrier on: fsync sent no flush-cache")
		}
		if !barrier && flushes != 0 {
			t.Fatal("barrier off: fsync sent flush-cache")
		}
	}
}

func TestBarrierOffFsyncIsCPUOnly(t *testing.T) {
	eng, fs, _ := newFS(t, false)
	f, _ := fs.Create("a", 10)
	var cost time.Duration
	eng.Go("io", func(p *sim.Proc) {
		if err := f.WritePages(p, 0, 1, nil); err != nil {
			t.Errorf("write: %v", err)
		}
		start := p.Now()
		if err := f.Fsync(p); err != nil {
			t.Errorf("fsync: %v", err)
		}
		cost = p.Now() - start
	})
	eng.Run()
	if cost > 50*time.Microsecond {
		t.Fatalf("no-barrier fsync cost %v; should be CPU only", cost)
	}
}

func TestODSyncFlushesEveryWrite(t *testing.T) {
	eng, fs, dev := newFS(t, true)
	f, _ := fs.Create("a", 10)
	f.SetODSync(true)
	eng.Go("io", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			if err := f.WritePages(p, int64(i), 1, nil); err != nil {
				t.Errorf("write: %v", err)
			}
		}
	})
	eng.Run()
	if dev.Stats().FlushCommands != 3 {
		t.Fatalf("O_DSYNC flushes = %d, want 3", dev.Stats().FlushCommands)
	}
}

func TestPreloadInstant(t *testing.T) {
	eng, fs, _ := newFS(t, true)
	f, _ := fs.Create("a", 100)
	if err := f.Preload(0, 100, nil); err != nil {
		t.Fatal(err)
	}
	if eng.Now() != 0 {
		t.Fatal("preload consumed virtual time")
	}
}

func TestDeviceFullCreate(t *testing.T) {
	_, fs, dev := newFS(t, true)
	if _, err := fs.Create("big", dev.Pages()+1); err == nil {
		t.Fatal("oversized create succeeded")
	}
	if _, err := fs.Create("x", 0); err == nil {
		t.Fatal("zero-size create succeeded")
	}
	var _ storage.Device = dev
}
