// Package host models the host-side storage stack between a database
// engine and a device: a minimal extent-based filesystem with O_DIRECT
// semantics, fsync/fdatasync, O_DSYNC files and — the knob the paper turns —
// write barriers.
//
// With barriers on (the safe default for volatile-cache devices), fsync
// sends a flush-cache command to the device (paper Figure 2). With barriers
// off, fsync completes once the device has acknowledged the writes — which
// is only safe when the device cache is durable, i.e. DuraSSD (§2.2).
package host

import (
	"fmt"
	"time"

	"durassd/internal/iotrace"
	"durassd/internal/sim"
	"durassd/internal/storage"
)

// FS is a minimal filesystem over one device.
type FS struct {
	dev     storage.Device
	reg     *iotrace.Registry
	barrier bool
	next    storage.LPN // bump allocator for extents
	files   map[string]*File

	// FsyncCPU is the host-side bookkeeping cost of an fsync call.
	FsyncCPU time.Duration
}

// NewFS creates a filesystem on dev with write barriers in the given state.
func NewFS(dev storage.Device, barrier bool) *FS {
	return &FS{
		dev:      dev,
		reg:      dev.Registry(),
		barrier:  barrier,
		files:    make(map[string]*File),
		FsyncCPU: 3 * time.Microsecond,
	}
}

// SetBarrier switches write barriers on or off (mount -o nobarrier).
func (fs *FS) SetBarrier(on bool) { fs.barrier = on }

// Barrier reports whether write barriers are enabled.
func (fs *FS) Barrier() bool { return fs.barrier }

// Device returns the underlying device.
func (fs *FS) Device() storage.Device { return fs.dev }

// File is a preallocated extent of device pages opened with O_DIRECT.
type File struct {
	fs     *FS
	name   string
	base   storage.LPN
	pages  int64
	meta   storage.LPN // the file's inode/metadata page
	dsync  bool        // O_DSYNC: every write is followed by a barrier
	origin iotrace.Origin
}

// Create preallocates a file of the given size in device pages.
func (fs *FS) Create(name string, pages int64) (*File, error) {
	if pages <= 0 {
		return nil, fmt.Errorf("host: file %q size must be positive", name)
	}
	if _, ok := fs.files[name]; ok {
		return nil, fmt.Errorf("host: file %q exists", name)
	}
	// One metadata page, then the extent.
	need := pages + 1
	if int64(fs.next)+need > fs.dev.Pages() {
		return nil, fmt.Errorf("host: device full creating %q (%d pages)", name, pages)
	}
	f := &File{fs: fs, name: name, meta: fs.next, base: fs.next + 1, pages: pages}
	fs.next += storage.LPN(need)
	fs.files[name] = f
	return f, nil
}

// Open returns an existing file.
func (fs *FS) Open(name string) (*File, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("host: file %q not found", name)
	}
	return f, nil
}

// SetODSync puts the file in O_DSYNC mode: every write is immediately
// followed by a write barrier (when barriers are enabled). The commercial
// database in the paper's TPC-C experiment opens its files this way.
func (f *File) SetODSync(on bool) { f.dsync = on }

// SetOrigin tags every request issued through this file with the given
// database-level origin (redo log, double-write buffer, data pages, ...).
func (f *File) SetOrigin(o iotrace.Origin) { f.origin = o }

// Origin returns the file's request origin tag.
func (f *File) Origin() iotrace.Origin { return f.origin }

// Name returns the file name.
func (f *File) Name() string { return f.name }

// PageSize returns the underlying device page size in bytes.
func (f *File) PageSize() int { return f.fs.dev.PageSize() }

// Pages returns the file size in device pages.
func (f *File) Pages() int64 { return f.pages }

// WritePages writes n device pages at page offset off as one command
// (O_DIRECT: no host page cache).
func (f *File) WritePages(p *sim.Proc, off int64, n int, data []byte) error {
	if off < 0 || off+int64(n) > f.pages {
		return fmt.Errorf("host: write beyond EOF of %q (off %d, n %d)", f.name, off, n)
	}
	lpn := f.base + storage.LPN(off)
	req := f.fs.reg.NewReq(p, iotrace.OpWrite, f.origin, uint64(lpn), n)
	err := f.fs.dev.Write(p, req, lpn, n, data)
	req.Finish(p)
	if err != nil {
		return err
	}
	if f.dsync && f.fs.barrier {
		freq := f.fs.reg.NewReq(p, iotrace.OpFlush, f.origin, 0, 0)
		err = f.fs.dev.Flush(p, freq)
		freq.Finish(p)
		return err
	}
	return nil
}

// ReadPages reads n device pages at page offset off as one command.
func (f *File) ReadPages(p *sim.Proc, off int64, n int, buf []byte) error {
	if off < 0 || off+int64(n) > f.pages {
		return fmt.Errorf("host: read beyond EOF of %q (off %d, n %d)", f.name, off, n)
	}
	lpn := f.base + storage.LPN(off)
	req := f.fs.reg.NewReq(p, iotrace.OpRead, f.origin, uint64(lpn), n)
	err := f.fs.dev.Read(p, req, lpn, n, buf)
	req.Finish(p)
	return err
}

// Fsync persists data and metadata. With barriers on it writes the file's
// metadata page (journal commit) and sends flush-cache to the device
// (paper Figure 2). With barriers off the journal commit happens
// asynchronously and the data writes were already acknowledged, so fsync
// costs only CPU — this is exactly why the paper's "NoBarrier" rows are
// flat across fsync frequencies.
func (f *File) Fsync(p *sim.Proc) error {
	p.Sleep(f.fs.FsyncCPU)
	if !f.fs.barrier {
		return nil
	}
	mreq := f.fs.reg.NewReq(p, iotrace.OpWrite, iotrace.OriginMeta, uint64(f.meta), 1)
	err := f.fs.dev.Write(p, mreq, f.meta, 1, nil)
	mreq.Finish(p)
	if err != nil {
		return err
	}
	freq := f.fs.reg.NewReq(p, iotrace.OpFlush, f.origin, 0, 0)
	err = f.fs.dev.Flush(p, freq)
	freq.Finish(p)
	return err
}

// Fdatasync persists data only (no metadata write); with barriers on it
// still sends flush-cache.
func (f *File) Fdatasync(p *sim.Proc) error {
	p.Sleep(f.fs.FsyncCPU)
	if f.fs.barrier {
		freq := f.fs.reg.NewReq(p, iotrace.OpFlush, f.origin, 0, 0)
		err := f.fs.dev.Flush(p, freq)
		freq.Finish(p)
		return err
	}
	return nil
}

// Preloader is implemented by devices that support instant bulk loads
// (database initialization before a measured run).
type Preloader interface {
	PreloadPages(lpn storage.LPN, n int64, data []byte) error
}

// Preload installs n pages of the file instantly, starting at page offset
// off. data may be nil (timing-only) or n*PageSize bytes.
func (f *File) Preload(off, n int64, data []byte) error {
	pl, ok := f.fs.dev.(Preloader)
	if !ok {
		return fmt.Errorf("host: device does not support preloading")
	}
	return pl.PreloadPages(f.base+storage.LPN(off), n, data)
}
