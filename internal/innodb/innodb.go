// Package innodb implements a MySQL/InnoDB-style storage engine on the
// simulated storage stack: a shared buffer pool (LRU + free list + page
// cleaner), B+-tree tables, a redo log with group commit, and the
// double-write buffer — the redundant-write mechanism the paper's Figure 5
// turns on and off.
//
// Flush path semantics follow the paper's description (§2.1):
//
//   - double-write ON: a batch of dirty pages is written sequentially to
//     the double-write area, fsync'd, rewritten in place, and fsync'd
//     again — two physical writes and two flush-cache commands per batch
//     when the filesystem has barriers on.
//   - double-write OFF: pages are written in place once and fsync'd once,
//     which is only safe on a device with atomic page writes (DuraSSD).
//
// In RealBytes mode every page carries a checksummed, version-stamped
// image (storage.BuildPageImage) and the redo log stores real records, so
// crash tests can replay recovery and detect torn or lost writes exactly
// like production checksum validation would.
package innodb

import (
	"errors"
	"fmt"
	"time"

	"durassd/internal/dbsim/buffer"
	"durassd/internal/dbsim/index"
	"durassd/internal/dbsim/wal"
	"durassd/internal/host"
	"durassd/internal/iotrace"
	"durassd/internal/sim"
	"durassd/internal/storage"
)

// ErrTornPage reports a page whose checksum failed validation on read.
var ErrTornPage = errors.New("innodb: torn page detected (checksum mismatch)")

// Config tunes the engine.
type Config struct {
	PageBytes   int   // database page size: 4, 8 or 16 KB
	BufferBytes int64 // buffer pool size
	DoubleWrite bool  // the paper's double-write-buffer knob
	DataPages   int64 // data file capacity in database pages

	LogFilePages int64 // device pages per redo file (3 files)
	LogFiles     int

	RealBytes bool // page images + real redo records (crash testing)

	// ODSync opens the data file with O_DSYNC, the commercial database's
	// behaviour in the paper's TPC-C experiment: every page write carries
	// its own write barrier (when the filesystem honors barriers), and the
	// engine issues no separate fsyncs on the flush path.
	ODSync bool

	CleanerInterval time.Duration
	CleanerBatch    int
	DWBBatch        int // double-write batch capacity in pages

	LogRecordBytes int // redo record payload per row change
	// WriteHoldCPU is the time a row change holds the leaf page's
	// exclusive latch (0 = derive from the page size).
	WriteHoldCPU time.Duration
}

func (c *Config) defaults() error {
	if c.PageBytes <= 0 {
		c.PageBytes = 16 * storage.KB
	}
	if c.BufferBytes <= 0 {
		return fmt.Errorf("innodb: BufferBytes must be positive")
	}
	if c.DataPages <= 0 {
		return fmt.Errorf("innodb: DataPages must be positive")
	}
	if c.LogFiles <= 0 {
		c.LogFiles = 3
	}
	if c.LogFilePages <= 0 {
		c.LogFilePages = 64 * 1024 // 256 MB at 4 KB device pages
	}
	if c.CleanerInterval == 0 {
		c.CleanerInterval = 5 * time.Millisecond
	}
	if c.CleanerBatch <= 0 {
		c.CleanerBatch = 64
	}
	if c.DWBBatch <= 0 {
		c.DWBBatch = 128
	}
	if c.LogRecordBytes <= 0 {
		c.LogRecordBytes = 128
	}
	if c.WriteHoldCPU == 0 {
		// Row-change CPU while holding the leaf's exclusive latch; scales
		// mildly with page size (bigger pages: longer searches and copies).
		c.WriteHoldCPU = 100*time.Microsecond + 4*time.Microsecond*time.Duration(c.PageBytes/1024)
	}
	return nil
}

// Engine is the storage engine.
type Engine struct {
	eng    *sim.Engine
	cfg    Config
	dataFS *host.FS
	logFS  *host.FS

	dataFile *host.File
	dwbFile  *host.File
	pool     *buffer.Pool
	log      *wal.Log
	tables   map[string]*Table
	nextPage buffer.PageID
	perDB    int // device pages per database page

	versions map[buffer.PageID]uint64 // bytes mode: current page versions

	// Stats
	Commits    int64
	PageWrites int64
	DWBWrites  int64
}

// Open creates an engine with its data files on dataFS and redo log on
// logFS (the paper gives the log its own DuraSSD; pass the same FS to share
// one device).
func Open(eng *sim.Engine, dataFS, logFS *host.FS, cfg Config) (*Engine, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	devPage := dataFS.Device().PageSize()
	if cfg.PageBytes%devPage != 0 {
		return nil, fmt.Errorf("innodb: page %d not a multiple of device page %d", cfg.PageBytes, devPage)
	}
	e := &Engine{
		eng:    eng,
		cfg:    cfg,
		dataFS: dataFS,
		logFS:  logFS,
		tables: make(map[string]*Table),
		perDB:  cfg.PageBytes / devPage,
	}
	var err error
	if e.dataFile, err = dataFS.Create("ibdata", cfg.DataPages*int64(e.perDB)); err != nil {
		return nil, err
	}
	e.dataFile.SetODSync(cfg.ODSync)
	e.dataFile.SetOrigin(iotrace.OriginData)
	if e.dwbFile, err = dataFS.Create("ib-doublewrite", int64(cfg.DWBBatch*e.perDB)); err != nil {
		return nil, err
	}
	e.dwbFile.SetOrigin(iotrace.OriginDoubleWrite)
	if e.log, err = wal.New(eng, logFS, wal.Config{FilePages: cfg.LogFilePages, Files: cfg.LogFiles, RealBytes: cfg.RealBytes}); err != nil {
		return nil, err
	}
	frames := int(cfg.BufferBytes / int64(cfg.PageBytes))
	e.pool, err = buffer.New(eng, buffer.Config{
		Frames:          frames,
		PageBytes:       cfg.PageBytes,
		RealBytes:       cfg.RealBytes,
		CleanerInterval: cfg.CleanerInterval,
		CleanerBatch:    cfg.CleanerBatch,
	}, (*pageReader)(e), (*pageWriter)(e))
	if err != nil {
		return nil, err
	}
	if cfg.RealBytes {
		e.versions = make(map[buffer.PageID]uint64)
	}
	return e, nil
}

// Pool exposes the buffer pool (stats for Figure 6a).
func (e *Engine) Pool() *buffer.Pool { return e.pool }

// DataDevice returns the device under the data filesystem (endurance and
// write-amplification accounting).
func (e *Engine) DataDevice() storage.Device { return e.dataFS.Device() }

// Log exposes the redo log.
func (e *Engine) Log() *wal.Log { return e.log }

// PageBytes returns the configured database page size.
func (e *Engine) PageBytes() int { return e.cfg.PageBytes }

// pageReader adapts the engine to buffer.PageReader.
type pageReader Engine

func (r *pageReader) ReadPage(p *sim.Proc, id buffer.PageID, buf []byte) error {
	e := (*Engine)(r)
	if err := e.dataFile.ReadPages(p, int64(id)*int64(e.perDB), e.perDB, buf); err != nil {
		return err
	}
	if e.cfg.RealBytes && buf != nil {
		if want, ok := e.versions[id]; ok && want > 0 {
			if _, _, valid := storage.ParsePageImage(buf); !valid {
				return fmt.Errorf("%w: page %d", ErrTornPage, id)
			}
		}
	}
	return nil
}

// pageWriter adapts the engine to buffer.PageWriter, implementing the
// WAL-before-data rule and the double-write buffer.
type pageWriter Engine

func (w *pageWriter) WritePages(p *sim.Proc, pages []buffer.PageWrite) error {
	e := (*Engine)(w)
	// WAL rule: the log must be durable up to the newest LSN in the batch
	// before any of these pages hits storage.
	var maxLSN uint64
	for _, pg := range pages {
		if pg.LSN > maxLSN {
			maxLSN = pg.LSN
		}
	}
	if maxLSN > 0 {
		if err := e.log.Commit(p, maxLSN); err != nil {
			return err
		}
	}
	if e.cfg.DoubleWrite {
		// Phase 1: sequential batch into the double-write area + fsync.
		for start := 0; start < len(pages); start += e.cfg.DWBBatch {
			end := start + e.cfg.DWBBatch
			if end > len(pages) {
				end = len(pages)
			}
			chunk := pages[start:end]
			var img []byte
			if e.cfg.RealBytes {
				img = make([]byte, len(chunk)*e.cfg.PageBytes)
				for i, pg := range chunk {
					copy(img[i*e.cfg.PageBytes:], pg.Data)
				}
			}
			if err := e.dwbFile.WritePages(p, 0, len(chunk)*e.perDB, img); err != nil {
				return err
			}
			if err := e.syncData(p, e.dwbFile); err != nil {
				return err
			}
			// Phase 2: in-place writes + fsync.
			for _, pg := range chunk {
				if err := e.dataFile.WritePages(p, int64(pg.ID)*int64(e.perDB), e.perDB, pg.Data); err != nil {
					return err
				}
				e.PageWrites++
			}
			e.DWBWrites += int64(len(chunk))
			if err := e.syncData(p, e.dataFile); err != nil {
				return err
			}
		}
		return nil
	}
	// Single in-place write per page + one fsync per batch.
	for _, pg := range pages {
		if err := e.dataFile.WritePages(p, int64(pg.ID)*int64(e.perDB), e.perDB, pg.Data); err != nil {
			return err
		}
		e.PageWrites++
	}
	return e.syncData(p, e.dataFile)
}

// syncData fsyncs a data file unless the engine runs O_DSYNC (each write
// already carried its barrier).
func (e *Engine) syncData(p *sim.Proc, f *host.File) error {
	if e.cfg.ODSync {
		return nil
	}
	return f.Fdatasync(p)
}

// Table is a B+-tree-organized table (or secondary index).
type Table struct {
	e    *Engine
	name string
	tree *index.Tree
}

// CreateTable reserves page space for a table of at most cfg.MaxRows rows.
// cfg.PageBytes is forced to the engine's page size.
func (e *Engine) CreateTable(name string, cfg index.Config) (*Table, error) {
	if _, ok := e.tables[name]; ok {
		return nil, fmt.Errorf("innodb: table %q exists", name)
	}
	cfg.PageBytes = e.cfg.PageBytes
	tree, err := index.New(cfg, e.nextPage)
	if err != nil {
		return nil, err
	}
	if int64(e.nextPage)+tree.Pages() > e.cfg.DataPages {
		return nil, fmt.Errorf("innodb: data file full creating %q", name)
	}
	e.nextPage += buffer.PageID(tree.Pages())
	t := &Table{e: e, name: name, tree: tree}
	e.tables[name] = t
	return t, nil
}

// Tree exposes the table's index topology.
func (t *Table) Tree() *index.Tree { return t.tree }

// BulkLoad installs rows instantly (initial database load): the row count
// is set and the table's pages are preloaded on the device.
func (t *Table) BulkLoad(rows int64) error {
	t.tree.SetRows(rows)
	leaves := rows / t.tree.RowsPerLeaf()
	if leaves < 1 {
		leaves = 1
	}
	// Preload the whole reserved range; timing-only images.
	start := int64(t.tree.LeafOf(0)) * int64(t.e.perDB)
	n := t.tree.Pages() * int64(t.e.perDB)
	return t.e.dataFile.Preload(start, n, nil)
}

// Tx is a transaction handle.
type Tx struct {
	e       *Engine
	maxLSN  uint64
	writes  int
	touched map[buffer.PageID]uint64 // bytes mode: page -> version written
}

// Touched returns the page versions this transaction wrote (bytes mode);
// crash harnesses record them after Commit to verify durability.
func (tx *Tx) Touched() map[buffer.PageID]uint64 { return tx.touched }

// Begin starts a transaction.
func (e *Engine) Begin() *Tx { return &Tx{e: e} }

// touch pins and unpins one page (read access).
func (e *Engine) touch(p *sim.Proc, id buffer.PageID, dirtyLSN uint64) error {
	if dirtyLSN != 0 {
		panic("innodb: use touchWrite for modifications")
	}
	fr, err := e.pool.Get(p, id)
	if err != nil {
		return err
	}
	e.pool.Unpin(fr)
	return nil
}

// touchWrite applies one row change to the page: it holds the page's
// exclusive latch for the row-change CPU time, advances the page version,
// appends the redo record and dirties the frame. Version assignment and
// logging happen under the latch, so concurrent writers to the same page
// serialize correctly.
func (e *Engine) touchWrite(p *sim.Proc, tx *Tx, id buffer.PageID) error {
	fr, err := e.pool.Get(p, id)
	if err != nil {
		return err
	}
	e.pool.LockX(p, fr)
	p.Sleep(e.cfg.WriteHoldCPU)
	var lsn uint64
	if e.cfg.RealBytes {
		e.versions[id]++
		storage.BuildPageImage(fr.Data(), uint64(id), e.versions[id])
		lsn = e.log.AppendRecord(uint64(id), e.versions[id], e.cfg.LogRecordBytes)
		if tx.touched == nil {
			tx.touched = make(map[buffer.PageID]uint64)
		}
		tx.touched[id] = e.versions[id]
	} else {
		lsn = e.log.Append(e.cfg.LogRecordBytes)
	}
	if lsn > tx.maxLSN {
		tx.maxLSN = lsn
	}
	tx.writes++
	e.pool.MarkDirty(fr, lsn)
	e.pool.UnlockX(fr)
	e.pool.Unpin(fr)
	return nil
}

// Lookup reads the row at rank through the tree path.
func (tx *Tx) Lookup(p *sim.Proc, t *Table, rank int64) error {
	for _, id := range t.tree.SearchPath(rank) {
		if err := tx.e.touch(p, id, 0); err != nil {
			return err
		}
	}
	return nil
}

// Scan reads n consecutive rows starting at rank (path to the first leaf,
// then sibling leaves).
func (tx *Tx) Scan(p *sim.Proc, t *Table, rank, n int64) error {
	for _, id := range t.tree.SearchPath(rank) {
		if err := tx.e.touch(p, id, 0); err != nil {
			return err
		}
	}
	leaves := t.tree.ScanLeaves(rank, n)
	for _, id := range leaves[1:] {
		if err := tx.e.touch(p, id, 0); err != nil {
			return err
		}
	}
	return nil
}

// Update modifies the row at rank: tree path read, leaf dirtied, redo
// logged.
func (tx *Tx) Update(p *sim.Proc, t *Table, rank int64) error {
	path := t.tree.SearchPath(rank)
	for _, id := range path[:len(path)-1] {
		if err := tx.e.touch(p, id, 0); err != nil {
			return err
		}
	}
	return tx.e.touchWrite(p, tx, path[len(path)-1])
}

// Insert adds a row at rank; splits dirty parent pages amortizedly.
func (tx *Tx) Insert(p *sim.Proc, t *Table, rank int64) error {
	path := t.tree.SearchPath(rank)
	for _, id := range path[:len(path)-1] {
		if err := tx.e.touch(p, id, 0); err != nil {
			return err
		}
	}
	for _, id := range t.tree.Insert(rank) {
		if err := tx.e.touchWrite(p, tx, id); err != nil {
			return err
		}
	}
	return nil
}

// Delete removes the row at rank.
func (tx *Tx) Delete(p *sim.Proc, t *Table, rank int64) error {
	path := t.tree.SearchPath(rank)
	for _, id := range path[:len(path)-1] {
		if err := tx.e.touch(p, id, 0); err != nil {
			return err
		}
	}
	for _, id := range t.tree.Delete(rank) {
		if err := tx.e.touchWrite(p, tx, id); err != nil {
			return err
		}
	}
	return nil
}

// Commit makes the transaction durable: the log is flushed up to its last
// LSN (group commit; honors the filesystem barrier setting).
func (tx *Tx) Commit(p *sim.Proc) error {
	if tx.writes == 0 {
		return nil
	}
	if err := tx.e.log.Commit(p, tx.maxLSN); err != nil {
		return err
	}
	tx.e.Commits++
	return nil
}

// FlushAll checkpoints: every dirty page goes to storage.
func (e *Engine) FlushAll(p *sim.Proc) error { return e.pool.FlushAll(p) }

// Close stops background workers.
func (e *Engine) Close() { e.pool.Close() }
