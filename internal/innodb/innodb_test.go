package innodb

import (
	"testing"
	"time"

	"durassd/internal/dbsim/buffer"
	"durassd/internal/dbsim/index"
	"durassd/internal/host"
	"durassd/internal/sim"
	"durassd/internal/ssd"
	"durassd/internal/storage"
)

type rig struct {
	eng *sim.Engine
	dev *ssd.Device
	fs  *host.FS
	e   *Engine
	tbl *Table
}

func newRig(t *testing.T, barrier, dwb, realBytes bool) *rig {
	t.Helper()
	eng := sim.New()
	dev, err := ssd.New(eng, ssd.DuraSSD(16))
	if err != nil {
		t.Fatal(err)
	}
	fs := host.NewFS(dev, barrier)
	e, err := Open(eng, fs, fs, Config{
		PageBytes:    4 * storage.KB,
		BufferBytes:  1 * storage.MB,
		DoubleWrite:  dwb,
		DataPages:    30_000,
		LogFilePages: 4_000,
		LogFiles:     1,
		RealBytes:    realBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := e.CreateTable("t", index.Config{RowBytes: 200, MaxRows: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.BulkLoad(50_000); err != nil {
		t.Fatal(err)
	}
	return &rig{eng: eng, dev: dev, fs: fs, e: e, tbl: tbl}
}

func TestLookupUpdateCommit(t *testing.T) {
	r := newRig(t, false, false, false)
	r.eng.Go("t", func(p *sim.Proc) {
		tx := r.e.Begin()
		if err := tx.Lookup(p, r.tbl, 123); err != nil {
			t.Errorf("Lookup: %v", err)
		}
		if err := tx.Update(p, r.tbl, 123); err != nil {
			t.Errorf("Update: %v", err)
		}
		if err := tx.Commit(p); err != nil {
			t.Errorf("Commit: %v", err)
		}
	})
	r.eng.Run()
	r.e.Close()
	if r.e.Commits != 1 {
		t.Fatalf("commits = %d", r.e.Commits)
	}
	if r.e.Log().Records == 0 {
		t.Fatal("no redo records")
	}
	if r.e.Pool().Stats().Gets == 0 {
		t.Fatal("no buffer activity")
	}
}

func TestReadOnlyCommitIsFree(t *testing.T) {
	r := newRig(t, true, true, false)
	r.eng.Go("t", func(p *sim.Proc) {
		tx := r.e.Begin()
		if err := tx.Lookup(p, r.tbl, 1); err != nil {
			t.Errorf("Lookup: %v", err)
		}
		if err := tx.Commit(p); err != nil {
			t.Errorf("Commit: %v", err)
		}
	})
	r.eng.Run()
	r.e.Close()
	if r.e.Log().Flushes != 0 {
		t.Fatal("read-only commit flushed the log")
	}
}

func TestDoubleWriteDoublesPageWrites(t *testing.T) {
	run := func(dwb bool) (pageWrites, dwbWrites int64) {
		r := newRig(t, false, dwb, false)
		r.eng.Go("t", func(p *sim.Proc) {
			for i := int64(0); i < 300; i++ {
				tx := r.e.Begin()
				if err := tx.Update(p, r.tbl, i*37%50_000); err != nil {
					t.Errorf("Update: %v", err)
					return
				}
				if err := tx.Commit(p); err != nil {
					t.Errorf("Commit: %v", err)
					return
				}
			}
			if err := r.e.FlushAll(p); err != nil {
				t.Errorf("FlushAll: %v", err)
			}
		})
		r.eng.Run()
		r.e.Close()
		return r.e.PageWrites, r.e.DWBWrites
	}
	pwOff, dwOff := run(false)
	pwOn, dwOn := run(true)
	if dwOff != 0 {
		t.Fatalf("DWB writes with DWB off: %d", dwOff)
	}
	if dwOn == 0 || dwOn != pwOn {
		t.Fatalf("DWB on: page writes %d, dwb writes %d — every page must be written twice", pwOn, dwOn)
	}
	if pwOff == 0 {
		t.Fatal("no page writes at all")
	}
}

func TestWALBeforeData(t *testing.T) {
	// Flushing a dirty page must first make the log durable up to the
	// page's LSN.
	r := newRig(t, true, false, false)
	r.eng.Go("t", func(p *sim.Proc) {
		tx := r.e.Begin()
		if err := tx.Update(p, r.tbl, 7); err != nil {
			t.Errorf("Update: %v", err)
			return
		}
		// No commit: log tail is volatile. Force the page out.
		if err := r.e.FlushAll(p); err != nil {
			t.Errorf("FlushAll: %v", err)
			return
		}
		if r.e.Log().DurableLSN() < tx.maxLSN {
			t.Error("page flushed before its redo was durable")
		}
	})
	r.eng.Run()
	r.e.Close()
}

func TestBarrierCostVisibleAtCommit(t *testing.T) {
	commitCost := func(barrier bool) time.Duration {
		r := newRig(t, barrier, false, false)
		var cost time.Duration
		r.eng.Go("t", func(p *sim.Proc) {
			tx := r.e.Begin()
			if err := tx.Update(p, r.tbl, 5); err != nil {
				t.Errorf("Update: %v", err)
				return
			}
			start := p.Now()
			if err := tx.Commit(p); err != nil {
				t.Errorf("Commit: %v", err)
			}
			cost = p.Now() - start
		})
		r.eng.Run()
		r.e.Close()
		return cost
	}
	on, off := commitCost(true), commitCost(false)
	if on < 5*off {
		t.Fatalf("barrier-on commit (%v) not much slower than barrier-off (%v)", on, off)
	}
}

func TestInsertsGrowTable(t *testing.T) {
	r := newRig(t, false, false, false)
	before := r.tbl.Tree().Rows()
	r.eng.Go("t", func(p *sim.Proc) {
		tx := r.e.Begin()
		for i := int64(0); i < 10; i++ {
			if err := tx.Insert(p, r.tbl, before+i); err != nil {
				t.Errorf("Insert: %v", err)
				return
			}
		}
		if err := tx.Commit(p); err != nil {
			t.Errorf("Commit: %v", err)
		}
	})
	r.eng.Run()
	r.e.Close()
	if r.tbl.Tree().Rows() != before+10 {
		t.Fatalf("rows = %d, want %d", r.tbl.Tree().Rows(), before+10)
	}
}

func TestRealBytesTornDetection(t *testing.T) {
	// RealBytes engines stamp checksummed images; reading a page the
	// engine believes it wrote, after corrupting it on the device, must
	// fail checksum validation.
	r := newRig(t, false, false, true)
	r.eng.Go("t", func(p *sim.Proc) {
		tx := r.e.Begin()
		if err := tx.Update(p, r.tbl, 3); err != nil {
			t.Errorf("Update: %v", err)
			return
		}
		if err := tx.Commit(p); err != nil {
			t.Errorf("Commit: %v", err)
			return
		}
		if err := r.e.FlushAll(p); err != nil {
			t.Errorf("FlushAll: %v", err)
		}
	})
	r.eng.Run()

	// Find the page the update touched and verify it parses on disk.
	r.eng.Go("verify", func(p *sim.Proc) {
		leaf := r.tbl.Tree().LeafOf(3)
		ver, ok, err := r.e.PageVersionOnDisk(p, leaf)
		if err != nil || !ok || ver == 0 {
			t.Errorf("on-disk version = %d, %v, %v", ver, ok, err)
		}
	})
	r.eng.Run()
	r.e.Close()
}

func TestCrashRecoveryRedo(t *testing.T) {
	// Commit a change, crash before the page is flushed, recover: redo
	// must roll the page forward.
	eng := sim.New()
	dev, _ := ssd.New(eng, ssd.DuraSSD(16))
	fs := host.NewFS(dev, false)
	cfg := Config{
		PageBytes: 4 * storage.KB, BufferBytes: 1 * storage.MB,
		DataPages: 30_000, LogFilePages: 4_000, LogFiles: 1, RealBytes: true,
	}
	e, err := Open(eng, fs, fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := e.CreateTable("t", index.Config{RowBytes: 200, MaxRows: 100_000})
	_ = tbl.BulkLoad(50_000)

	var wantPage storage.LPN
	var wantVer uint64
	eng.Go("t", func(p *sim.Proc) {
		tx := e.Begin()
		if err := tx.Update(p, tbl, 999); err != nil {
			t.Errorf("Update: %v", err)
			return
		}
		if err := tx.Commit(p); err != nil {
			t.Errorf("Commit: %v", err)
			return
		}
		for id, v := range tx.Touched() {
			wantPage, wantVer = storage.LPN(id), v
		}
		// Crash without flushing the buffer pool.
		dev.PowerFail()
	})
	eng.Run()
	e.Close()

	eng.Go("recover", func(p *sim.Proc) {
		if err := dev.Reboot(p); err != nil {
			t.Errorf("Reboot: %v", err)
			return
		}
		e2, err := Reopen(eng, fs, fs, cfg)
		if err != nil {
			t.Errorf("Reopen: %v", err)
			return
		}
		defer e2.Close()
		rep, err := e2.Recover(p)
		if err != nil {
			t.Errorf("Recover: %v", err)
			return
		}
		if rep.RedoApplied == 0 {
			t.Error("recovery applied no redo despite unflushed commit")
		}
		ver, ok, err := e2.PageVersionOnDisk(p, buffer.PageID(wantPage))
		if err != nil || !ok || ver < wantVer {
			t.Errorf("page %d version after redo = %d (%v, %v), want >= %d", wantPage, ver, ok, err, wantVer)
		}
	})
	eng.Run()
}

func TestScanTouchesConsecutiveLeaves(t *testing.T) {
	r := newRig(t, false, false, false)
	r.eng.Go("t", func(p *sim.Proc) {
		tx := r.e.Begin()
		rows := r.tbl.Tree().RowsPerLeaf() * 3
		if err := tx.Scan(p, r.tbl, 0, rows); err != nil {
			t.Errorf("Scan: %v", err)
		}
	})
	before := r.e.Pool().Stats().Gets
	r.eng.Run()
	r.e.Close()
	gets := r.e.Pool().Stats().Gets - before
	depth := int64(r.tbl.Tree().Depth())
	if gets < depth+2 {
		t.Fatalf("scan of 3 leaves did %d gets, want >= %d", gets, depth+2)
	}
}

func TestODSyncSkipsBatchFsync(t *testing.T) {
	// With O_DSYNC the engine issues no explicit fsync on the flush path;
	// each data write carries its own barrier.
	eng := sim.New()
	dev, _ := ssd.New(eng, ssd.DuraSSD(16))
	fs := host.NewFS(dev, true)
	e, err := Open(eng, fs, fs, Config{
		PageBytes: 4 * storage.KB, BufferBytes: 256 * storage.KB,
		ODSync: true, DataPages: 30_000, LogFilePages: 4_000, LogFiles: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := e.CreateTable("t", index.Config{RowBytes: 200, MaxRows: 100_000})
	_ = tbl.BulkLoad(50_000)
	eng.Go("t", func(p *sim.Proc) {
		tx := e.Begin()
		if err := tx.Update(p, tbl, 1); err != nil {
			t.Errorf("Update: %v", err)
			return
		}
		if err := tx.Commit(p); err != nil {
			t.Errorf("Commit: %v", err)
			return
		}
		if err := e.FlushAll(p); err != nil {
			t.Errorf("FlushAll: %v", err)
		}
	})
	eng.Run()
	e.Close()
	// Flushes come only from the log commit and the O_DSYNC writes; the
	// engine itself must not have fdatasync'd the data file after batches.
	if dev.Stats().FlushCommands == 0 {
		t.Fatal("O_DSYNC produced no device flushes at all")
	}
}

func TestAdoptTableRestoresLayout(t *testing.T) {
	eng := sim.New()
	dev, _ := ssd.New(eng, ssd.DuraSSD(16))
	fs := host.NewFS(dev, false)
	cfg := Config{
		PageBytes: 4 * storage.KB, BufferBytes: 256 * storage.KB,
		DataPages: 30_000, LogFilePages: 4_000, LogFiles: 1, RealBytes: true,
	}
	e, err := Open(eng, fs, fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := e.CreateTable("t", index.Config{RowBytes: 200, MaxRows: 100_000})
	_ = tbl.BulkLoad(50_000)
	e.Close()

	e2, err := Reopen(eng, fs, fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e2.AdoptTable("t", tbl)
	eng.Go("t", func(p *sim.Proc) {
		tx := e2.Begin()
		if err := tx.Lookup(p, tbl, 123); err != nil {
			t.Errorf("Lookup after adopt: %v", err)
		}
	})
	eng.Run()
	e2.Close()
}
