package innodb

import (
	"fmt"

	"durassd/internal/dbsim/buffer"
	"durassd/internal/dbsim/wal"
	"durassd/internal/host"
	"durassd/internal/sim"
	"durassd/internal/storage"
)

// Reopen attaches a fresh engine (empty buffer pool, as after a process or
// power crash) to existing data and log files. The caller then runs Recover.
func Reopen(eng *sim.Engine, dataFS, logFS *host.FS, cfg Config) (*Engine, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	devPage := dataFS.Device().PageSize()
	if cfg.PageBytes%devPage != 0 {
		return nil, fmt.Errorf("innodb: page %d not a multiple of device page %d", cfg.PageBytes, devPage)
	}
	e := &Engine{
		eng:    eng,
		cfg:    cfg,
		dataFS: dataFS,
		logFS:  logFS,
		tables: make(map[string]*Table),
		perDB:  cfg.PageBytes / devPage,
	}
	var err error
	if e.dataFile, err = dataFS.Open("ibdata"); err != nil {
		return nil, err
	}
	if e.dwbFile, err = dataFS.Open("ib-doublewrite"); err != nil {
		return nil, err
	}
	if e.log, err = wal.Reopen(eng, logFS, wal.Config{FilePages: cfg.LogFilePages, Files: cfg.LogFiles, RealBytes: cfg.RealBytes}); err != nil {
		return nil, err
	}
	frames := int(cfg.BufferBytes / int64(cfg.PageBytes))
	e.pool, err = buffer.New(eng, buffer.Config{
		Frames:          frames,
		PageBytes:       cfg.PageBytes,
		RealBytes:       cfg.RealBytes,
		CleanerInterval: cfg.CleanerInterval,
		CleanerBatch:    cfg.CleanerBatch,
	}, (*pageReader)(e), (*pageWriter)(e))
	if err != nil {
		return nil, err
	}
	if cfg.RealBytes {
		e.versions = make(map[buffer.PageID]uint64)
	}
	return e, nil
}

// RecoveryReport summarizes what crash recovery found and fixed.
type RecoveryReport struct {
	DWBPagesScanned int
	TornRepaired    int // torn in-place pages restored from the DWB copy
	TornUnrepaired  int // torn pages with no valid DWB copy (data loss!)
	RedoRecords     int // surviving log records
	RedoApplied     int // page versions rolled forward
	MaxLSN          uint64
}

// Recover runs InnoDB-style crash recovery (RealBytes engines only):
//
//  1. Double-write scan: every valid page image in the DWB area repairs a
//     torn in-place copy of the same page. Without the DWB (the paper's
//     OFF configurations), torn pages remain — and are only safe because
//     DuraSSD never produces them.
//  2. Redo: surviving log records roll pages forward to their logged
//     versions.
//
// It returns a report; TornUnrepaired > 0 means the database is corrupt.
func (e *Engine) Recover(p *sim.Proc) (*RecoveryReport, error) {
	if !e.cfg.RealBytes {
		return nil, fmt.Errorf("innodb: Recover requires RealBytes mode")
	}
	rep := &RecoveryReport{}
	pageBuf := make([]byte, e.cfg.PageBytes)

	// Phase 1: double-write buffer scan.
	dwbCopies := make(map[uint64][]byte)
	if e.cfg.DoubleWrite {
		img := make([]byte, int(e.dwbFile.Pages())*e.dataFS.Device().PageSize())
		if err := e.dwbFile.ReadPages(p, 0, int(e.dwbFile.Pages()), img); err != nil {
			return nil, err
		}
		for off := 0; off+e.cfg.PageBytes <= len(img); off += e.cfg.PageBytes {
			pg := img[off : off+e.cfg.PageBytes]
			if id, _, ok := storage.ParsePageImage(pg); ok {
				dwbCopies[id] = append([]byte(nil), pg...)
				rep.DWBPagesScanned++
			}
		}
	}

	// Phase 2: redo scan. Records also tell us which pages to validate.
	recs, err := e.log.ReadAll(p)
	if err != nil {
		return nil, err
	}
	rep.RedoRecords = len(recs)

	// Validate and repair every page named by the DWB or the log.
	checked := make(map[uint64]uint64) // id -> on-disk version (0 if torn)
	torn := make(map[uint64]bool)      // torn with no repair source
	validate := func(id uint64) (uint64, error) {
		if v, ok := checked[id]; ok {
			return v, nil
		}
		if err := e.dataFile.ReadPages(p, int64(id)*int64(e.perDB), e.perDB, pageBuf); err != nil {
			return 0, err
		}
		gotID, ver, ok := storage.ParsePageImage(pageBuf)
		if !ok || gotID != id {
			// Torn or never written. Try the double-write copy.
			if cp, have := dwbCopies[id]; have {
				if err := e.dataFile.WritePages(p, int64(id)*int64(e.perDB), e.perDB, cp); err != nil {
					return 0, err
				}
				_, ver, _ = storage.ParsePageImage(cp)
				rep.TornRepaired++
			} else {
				if !ok && isNonZero(pageBuf) {
					// A shorn write with no intact copy anywhere: delta
					// redo records cannot repair it (they need a valid
					// base), so the page stays corrupt.
					rep.TornUnrepaired++
					torn[id] = true
				}
				ver = 0
			}
		}
		checked[id] = ver
		return ver, nil
	}
	for id := range dwbCopies {
		if _, err := validate(id); err != nil {
			return nil, err
		}
	}
	for _, rec := range recs {
		if rec.LSN > rep.MaxLSN {
			rep.MaxLSN = rec.LSN
		}
		ver, err := validate(rec.Page)
		if err != nil {
			return nil, err
		}
		if torn[rec.Page] && !rec.FullImage {
			continue // no valid base to apply the delta to
		}
		if torn[rec.Page] && rec.FullImage {
			delete(torn, rec.Page) // a full image re-establishes the base
			rep.TornUnrepaired--
			rep.TornRepaired++
			ver = 0
			checked[rec.Page] = 0
		}
		if ver < rec.Version {
			storage.BuildPageImage(pageBuf, rec.Page, rec.Version)
			if err := e.dataFile.WritePages(p, int64(rec.Page)*int64(e.perDB), e.perDB, pageBuf); err != nil {
				return nil, err
			}
			checked[rec.Page] = rec.Version
			rep.RedoApplied++
		}
	}
	// Adopt the recovered versions.
	for id, v := range checked {
		if v > 0 {
			e.versions[buffer.PageID(id)] = v
		}
	}
	return rep, nil
}

// isNonZero reports whether the page holds any data at all (an all-zero
// page is "never written", not torn).
func isNonZero(b []byte) bool {
	for _, x := range b {
		if x != 0 {
			return true
		}
	}
	return false
}

// PageVersionOnDisk reads a page directly from storage and returns its
// image version (0 if unreadable or never written). Crash harnesses use it
// to verify durability claims.
func (e *Engine) PageVersionOnDisk(p *sim.Proc, id buffer.PageID) (uint64, bool, error) {
	buf := make([]byte, e.cfg.PageBytes)
	if err := e.dataFile.ReadPages(p, int64(id)*int64(e.perDB), e.perDB, buf); err != nil {
		return 0, false, err
	}
	gotID, ver, ok := storage.ParsePageImage(buf)
	if !ok || gotID != uint64(id) {
		return 0, false, nil
	}
	return ver, true, nil
}

// AdoptTable re-registers a table layout after Reopen (same parameters as
// the original CreateTable, so page ranges line up).
func (e *Engine) AdoptTable(name string, t *Table) {
	t.e = e
	e.tables[name] = t
	end := buffer.PageID(int64(t.tree.LeafOf(0))) + buffer.PageID(t.tree.Pages())
	if end > e.nextPage {
		e.nextPage = end
	}
}
