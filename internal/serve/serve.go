// Package serve is the sharded multi-tenant serving layer above the
// simulated storage stack: the front end ROADMAP item 1 asks for. One
// gateway domain routes tenant requests over a consistent-hash ring to N
// shard replica groups — each group R durable document stores on their own
// devices in their own sim.Domains, written at quorum W and read with
// hedging (see Group). The gateway adds the things a real serving box
// adds — admission control (bounded queues, typed shedding), a host-side
// read cache (TinyLFU admission, negative-lookup bloom filters),
// per-tenant QoS (token buckets, tail-latency accounting), and a failure-
// handling plane (deadlines, bounded retries, circuit breakers, graceful
// degradation below quorum) — while the whole tower stays deterministic:
// identical seeds produce byte-identical per-tenant reports and iotrace
// digests at any cluster worker count, including under fault injection.
//
// Crash semantics survive the layer. An acknowledged Put means the shard's
// group-commit fdatasync completed; whether that ack survives a power cut
// mid-burst is decided by the device, which is the paper's claim — DuraSSD
// shards keep every acked write in the fast (no-barrier) configuration,
// volatile-cache shards do not. The MidBurst crashpoint campaign audits
// exactly this across shards.
package serve

import (
	"errors"
	"fmt"
	"time"

	"durassd/internal/iotrace"
	"durassd/internal/sim"
)

// Config tunes the gateway.
type Config struct {
	// Concurrency is the per-shard in-flight operation limit (the size of
	// each shard's dispatch window). Default 8.
	Concurrency int
	// QueueDepth bounds each shard's admission queue: a request arriving
	// with the window full and QueueDepth waiters ahead of it is shed with
	// ErrOverloaded instead of queuing unboundedly. Default 16.
	QueueDepth int
	// CacheSize is the gateway read cache capacity in entries. Default 1024.
	CacheSize int
	// Group tunes the replication layer (quorum, deadlines, hedging,
	// breakers); the zero value picks the documented defaults.
	Group GroupConfig
}

func (c *Config) defaults() {
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 1024
	}
}

// Gateway CPU costs: the host-side work of answering from the cache or
// rejecting via the bloom filter, and the routing/dispatch overhead paid
// by every request that goes to a shard.
const (
	cacheHitCPU = 2 * time.Microsecond
	dispatchCPU = 1 * time.Microsecond
)

// Server is the gateway: it lives in one cluster domain (the front) and
// ships storage operations to shard domains with Domain.Call. All methods
// taking a *sim.Proc must run on the front domain's engine; the gateway's
// state (cache, ring, accounting) is confined to that domain, so it needs
// no locks and evolves in deterministic virtual-time order.
type Server struct {
	front  *sim.Domain
	ring   *Ring
	groups []*Group
	neg    []*Bloom        // per-shard negative-lookup filter
	admit  []*sim.Resource // per-shard dispatch windows (front domain)
	cache  *Cache
	cfg    Config
	reg    *iotrace.Registry // gateway counters (shed, throttle, cache)

	shedByShard []*int64
	shedTotal   *int64
	throttles   *int64
	cacheHits   *int64
	bloomSkips  *int64
	staleReads  *int64
	unavailable *int64
}

// New builds a gateway in domain front over the given shard stores, each an
// unreplicated (R=1) group — the original single-copy layout. Shard i of
// the ring is stores[i]; the caller built each store in its own domain. The
// per-shard bloom filters are built here, over each shard's full key space
// — the only property the read path relies on is that a present key is
// never reported absent.
func New(front *sim.Domain, stores []*Store, cfg Config) (*Server, error) {
	groups := make([][]*Store, len(stores))
	for i, st := range stores {
		groups[i] = []*Store{st}
	}
	return NewReplicated(front, groups, cfg)
}

// NewReplicated builds a gateway whose shard i is a replica group over
// storesByShard[i] (every group the same size R; cfg.Group.Quorum is W).
// Replica 0 of each group holds the shard's key space; its peers must be
// built over the identical keys.
func NewReplicated(front *sim.Domain, storesByShard [][]*Store, cfg Config) (*Server, error) {
	if len(storesByShard) == 0 {
		return nil, errors.New("serve: need at least one shard store")
	}
	cfg.defaults()
	s := &Server{
		front: front,
		ring:  NewRing(len(storesByShard)),
		neg:   make([]*Bloom, len(storesByShard)),
		admit: make([]*sim.Resource, len(storesByShard)),
		cache: NewCache(cfg.CacheSize),
		cfg:   cfg,
		reg:   iotrace.NewRegistry(),
	}
	s.shedByShard = make([]*int64, len(storesByShard))
	for i, reps := range storesByShard {
		g, err := NewGroup(i, front, reps, cfg.Group)
		if err != nil {
			return nil, err
		}
		s.groups = append(s.groups, g)
		s.admit[i] = sim.NewResource(front.Engine(), cfg.Concurrency)
		s.shedByShard[i] = s.reg.RegisterCounter(fmt.Sprintf("serve_shed_shard%d", i))
	}
	s.shedTotal = s.reg.RegisterCounter("serve_shed")
	s.throttles = s.reg.RegisterCounter("serve_throttled")
	s.cacheHits = s.reg.RegisterCounter("serve_cache_hits")
	s.bloomSkips = s.reg.RegisterCounter("serve_bloom_skips")
	s.staleReads = s.reg.RegisterCounter("serve_stale_reads")
	s.unavailable = s.reg.RegisterCounter("serve_unavailable")
	return s, nil
}

// BuildFilters (re)builds the per-shard negative-lookup filters from the
// stores' key spaces. New calls it; it is exposed so conformance tests can
// exercise rebuild-after-load.
func (s *Server) BuildFilters(keysByShard [][]uint64) {
	for i := range s.neg {
		b := NewBloom(len(keysByShard[i]))
		for _, k := range keysByShard[i] {
			b.Add(k)
		}
		s.neg[i] = b
	}
}

// PartitionKeys splits a key set by ring ownership: the slice at index i
// is shard i's key space, each in input order. Build the shard stores from
// this partition so routing and placement agree.
func PartitionKeys(ring *Ring, keys []uint64) [][]uint64 {
	parts := make([][]uint64, ring.Shards())
	for _, k := range keys {
		sh := ring.Lookup(k)
		parts[sh] = append(parts[sh], k)
	}
	return parts
}

// Ring returns the server's consistent-hash ring (for partitioning keys
// before the stores exist: NewRing(n) with the same n builds the identical
// ring, since placement is a pure function of the shard count).
func (s *Server) Ring() *Ring { return s.ring }

// Cache returns the gateway read cache.
func (s *Server) Cache() *Cache { return s.cache }

// Registry returns the gateway's metrics registry (shed, throttle and
// cache counters, published alongside the device registries).
func (s *Server) Registry() *iotrace.Registry { return s.reg }

// Shards returns the shard count.
func (s *Server) Shards() int { return len(s.groups) }

// Shard returns shard i's primary store (replica 0 of its group).
func (s *Server) Shard(i int) *Store { return s.groups[i].Replica(0) }

// Group returns shard i's replica group.
func (s *Server) Group(i int) *Group { return s.groups[i] }

// RobustnessCounters aggregates the replication layer's tallies across all
// shard groups — the failure-handling story in numbers.
type RobustnessCounters struct {
	Hedges       int64 // hedged second reads launched
	Deadlines    int64 // replica RPCs that blew their deadline
	Retries      int64 // group-level retried attempts (with backoff)
	BreakerOpens int64 // closed->open breaker transitions
	Unavailable  int64 // operations shed below quorum / with no readable replica
	CatchupKeys  int64 // keys delta-transferred to rejoining replicas
	StaleReads   int64 // cache hits served while the owning group was degraded
}

// Robustness sums the replication-layer counters over the server's groups.
func (s *Server) Robustness() RobustnessCounters {
	var rc RobustnessCounters
	for _, g := range s.groups {
		h, d, r, u, c := g.Counters()
		rc.Hedges += h
		rc.Deadlines += d
		rc.Retries += r
		rc.Unavailable += u
		rc.CatchupKeys += c
		rc.BreakerOpens += g.BreakerOpens()
	}
	rc.StaleReads = *s.staleReads
	return rc
}

// ShardFor returns the shard index owning key.
func (s *Server) ShardFor(key uint64) int { return s.ring.Lookup(key) }

// ShedCount returns the number of requests shed at shard i.
func (s *Server) ShedCount(i int) int64 { return *s.shedByShard[i] }

// throttle charges the tenant's token bucket and sleeps out any
// non-conformance. The bucket runs on virtual time, so pacing is exact and
// deterministic.
func (s *Server) throttle(p *sim.Proc, t *TenantAccount) {
	if wait := t.Bucket.Take(p.Now()); wait > 0 {
		t.Throttled++
		t.ThrottleT += wait
		*s.throttles++
		p.Sleep(wait)
	}
}

// admitShard claims a slot in shard sh's dispatch window, queuing behind
// at most QueueDepth waiters. It reports false — the request is shed —
// when the queue is already full; the caller returns ErrOverloaded.
func (s *Server) admitShard(p *sim.Proc, sh int, t *TenantAccount) bool {
	r := s.admit[sh]
	if r.InUse() >= r.Capacity() && r.QueueLen() >= s.cfg.QueueDepth {
		t.Shed++
		*s.shedByShard[sh]++
		*s.shedTotal++
		return false
	}
	r.Acquire(p, 1)
	return true
}

// Get serves a read for the tenant: token bucket, then cache, then the
// shard's bloom filter, then (on a miss) an admission-controlled shard
// round trip. The end-to-end latency — including throttle and queueing —
// lands in the tenant's read histogram; that is the p99 the report shows.
func (s *Server) Get(p *sim.Proc, t *TenantAccount, key uint64) (uint64, error) {
	start := p.Now()
	s.throttle(p, t)
	sh := s.ring.Lookup(key)
	g := s.groups[sh]
	if v, ok := s.cache.Get(key); ok {
		p.Sleep(cacheHitCPU)
		t.CacheHits++
		*s.cacheHits++
		if g.BelowQuorum() {
			// Degraded-mode fallback: the cache may be the only copy we can
			// still answer from, but with the group below quorum a fresher
			// version could exist that we cannot see. Serve it — availability
			// over consistency for reads — and flag it in the accounting.
			t.StaleReads++
			*s.staleReads++
		}
		t.Ops++
		t.Reads.Record(p.Now() - start)
		return v, nil
	}
	if !s.neg[sh].Contains(key) {
		p.Sleep(cacheHitCPU)
		t.BloomSkip++
		*s.bloomSkips++
		t.Ops++
		t.Reads.Record(p.Now() - start)
		return 0, ErrNotFound
	}
	if !s.admitShard(p, sh, t) {
		return 0, ErrOverloaded
	}
	p.Sleep(dispatchCPU)
	v, found, err := g.Get(p, key)
	s.admit[sh].Release(1)
	if err != nil {
		if errors.Is(err, ErrShardUnavailable) {
			t.Unavailable++
			*s.unavailable++
		}
		return 0, err
	}
	if !found {
		// Bloom false positive: the shard answered definitively.
		t.Ops++
		t.Reads.Record(p.Now() - start)
		return 0, ErrNotFound
	}
	s.cache.Admit(key, v)
	t.Ops++
	t.Reads.Record(p.Now() - start)
	return v, nil
}

// Put serves a durable write for the tenant and returns the acknowledged
// version. A nil error is the serving layer's commit ack: the shard wrote
// the page image and its covering group-commit fdatasync completed.
func (s *Server) Put(p *sim.Proc, t *TenantAccount, key uint64) (uint64, error) {
	start := p.Now()
	s.throttle(p, t)
	sh := s.ring.Lookup(key)
	if !s.admitShard(p, sh, t) {
		return 0, ErrOverloaded
	}
	p.Sleep(dispatchCPU)
	v, err := s.groups[sh].Put(p, key)
	s.admit[sh].Release(1)
	if err != nil {
		if errors.Is(err, ErrShardUnavailable) {
			t.Unavailable++
			*s.unavailable++
		}
		return 0, err
	}
	s.cache.Update(key, v)
	t.Ops++
	t.Writes.Record(p.Now() - start)
	return v, nil
}
