package serve

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"durassd/internal/iotrace"
	"durassd/internal/sim"
	"durassd/internal/ssd"
	"durassd/internal/storage"
)

// The ReplicaLoss crash scenario: a write burst through replicated shard
// groups with a single replica power-failed at an adversarial instant —
// mid-quorum, just after an ack, during a flush drain, or while another
// replica is catching up. The claim under audit is the replication layer's
// contract: a write acknowledged at quorum W over DuraSSD replicas survives
// the loss of any single replica (any W-1, since one is all a single cut
// can take), is readable from the survivors before the victim returns, and
// converges everywhere once the victim reboots and catches up from a live
// peer. The R=1 volatile control row demonstrates the opposite: with no
// quorum and no durable cache, acked writes vanish.

// ReplicaSpec configures one replica-loss crash run.
type ReplicaSpec struct {
	// Groups is the number of shard replica groups (default 2).
	Groups int
	// Replicas is the replication factor R per group (default 3).
	Replicas int
	// Quorum is the write quorum W (default majority).
	Quorum int
	// Volatile builds the replicas on volatile-cache SSD-A drives instead of
	// DuraSSD — the control configuration that loses acked writes.
	Volatile bool
	// Writers is the number of writer processes (default 4).
	Writers int
	// Updates is the total number of Put attempts (default 160).
	Updates int
	// Keys is the key-space size (default 96).
	Keys int
	Seed int64
	// CutAfter is the instant the victim replica of every group loses power.
	// Zero with NoCut unset means 5ms.
	CutAfter time.Duration
	// CutReplica is the victim replica index, cut in every group.
	CutReplica int
	// CutPeerDuringCatchup power-fails replica PeerCut of every group
	// shortly after the victim's catch-up starts — the recovery-under-
	// failure arm.
	CutPeerDuringCatchup bool
	PeerCut              int
}

func (sp *ReplicaSpec) defaults() {
	if sp.Groups <= 0 {
		sp.Groups = 2
	}
	if sp.Replicas <= 0 {
		sp.Replicas = 3
	}
	if sp.Quorum <= 0 {
		sp.Quorum = sp.Replicas/2 + 1
	}
	if sp.Writers <= 0 {
		sp.Writers = 4
	}
	if sp.Updates <= 0 {
		sp.Updates = 160
	}
	if sp.Keys <= 0 {
		sp.Keys = 96
	}
	if sp.CutAfter == 0 {
		sp.CutAfter = 5 * time.Millisecond
	}
	if sp.CutReplica < 0 || sp.CutReplica >= sp.Replicas {
		sp.CutReplica = 0
	}
	if sp.PeerCut == sp.CutReplica || sp.PeerCut < 0 || sp.PeerCut >= sp.Replicas {
		sp.PeerCut = (sp.CutReplica + 1) % sp.Replicas
	}
}

// Name summarizes the configuration (stable: it feeds schedule digests).
func (sp ReplicaSpec) Name() string {
	cp := sp
	cp.defaults()
	dev := "durassd"
	if cp.Volatile {
		dev = "ssda"
	}
	return fmt.Sprintf("serve replicaloss groups=%d r=%d w=%d dev=%s", cp.Groups, cp.Replicas, cp.Quorum, dev)
}

// ReplicaOptions are the probe/replay knobs of crash-point exploration.
type ReplicaOptions struct {
	// NoCut runs the burst with no fault at all (the probe run).
	NoCut bool
	// EventFn observes device events on every replica
	// (member = group*Replicas + replica).
	EventFn func(member int, kind iotrace.EventKind, at time.Duration)
}

// ReplicaVerdict is the audited outcome of one replica-loss run.
type ReplicaVerdict struct {
	AckedCommits int // Puts acknowledged at quorum before the end of traffic
	AckedKeys    int // distinct acked keys audited
	// GroupLost counts acked keys whose acked version was not readable from
	// any live replica before the victim rebooted — the availability half of
	// the quorum claim (must be 0 when live replicas >= 1 and W >= 2).
	GroupLost int
	// Lost counts (replica, key) pairs below the acked version after every
	// reboot and catch-up completed — the convergence half (must be 0 for
	// replicated DuraSSD groups; the R=1 volatile control expects loss here).
	Lost int
	// Torn counts page images failing their checksum in either audit.
	Torn int
	// CatchupKeys is the total keys delta-transferred to rejoining replicas;
	// TotalKeys the resident key count (catch-up must move strictly less — a
	// delta, not a rebuild).
	CatchupKeys int
	TotalKeys   int
	// BehindAfter counts keys still marked behind after all catch-up passes
	// (non-zero only when no live peer exists, e.g. the R=1 control).
	BehindAfter int
	Shed        int // Puts shed by admission control (never acknowledged)
	Unavailable int // Puts refused below quorum (never acknowledged)
	Err         error
}

// Safe reports whether the replicated claim held: no acked write was ever
// unreadable, nothing was lost after convergence, and no page tore.
func (v *ReplicaVerdict) Safe() bool {
	return v.Err == nil && v.GroupLost == 0 && v.Lost == 0 && v.Torn == 0
}

// RunReplicaLoss executes the replica-loss crash scenario and audits the
// aftermath: pre-reboot availability from the survivors, then reboot, peer
// catch-up and full convergence.
func RunReplicaLoss(sp ReplicaSpec, o ReplicaOptions) (*ReplicaVerdict, error) {
	sp.defaults()
	v := &ReplicaVerdict{}
	R := sp.Replicas

	// One worker: the campaign replays need determinism of the recorded
	// schedule, not wall-clock speed (the digest sweeps cover parallelism).
	cluster := sim.NewCluster(1+sp.Groups*R, burstLatency, 1)
	defer cluster.Close()
	front := cluster.Domain(0)

	ring := NewRing(sp.Groups)
	keys := make([]uint64, sp.Keys)
	for i := range keys {
		keys[i] = tenantKey(0, i)
	}
	parts := PartitionKeys(ring, keys)
	v.TotalKeys = sp.Keys

	prof := ssd.DuraSSD(16)
	if sp.Volatile {
		prof = ssd.SSDA(16)
	}
	storesByShard := make([][]*Store, sp.Groups)
	devs := make([][]storage.Device, sp.Groups)
	for g := 0; g < sp.Groups; g++ {
		devs[g] = make([]storage.Device, R)
		for r := 0; r < R; r++ {
			dom := cluster.Domain(1 + g*R + r)
			dev, err := ssd.New(dom.Engine(), prof)
			if err != nil {
				return nil, err
			}
			devs[g][r] = dev
			st, err := OpenStore(dom, dev, parts[g], StoreConfig{Barrier: false, RealBytes: true})
			if err != nil {
				return nil, err
			}
			storesByShard[g] = append(storesByShard[g], st)
			if o.EventFn != nil {
				member := g*R + r
				dev.Registry().SetEventFn(func(kind iotrace.EventKind, at time.Duration) {
					o.EventFn(member, kind, at)
				})
			}
		}
	}
	srv, err := NewReplicated(front, storesByShard, Config{
		Concurrency: 8, QueueDepth: 64, CacheSize: 64,
		Group: GroupConfig{Quorum: sp.Quorum},
	})
	if err != nil {
		return nil, err
	}
	srv.BuildFilters(parts)

	// Writers: Put random keys, record the versions acknowledged at quorum.
	// An ack through the gateway is the durability contract under audit.
	acked := make(map[uint64]uint64)
	acct := NewTenantAccount("writer", 1_000_000, 64)
	perClient := sp.Updates / sp.Writers
	for c := 0; c < sp.Writers; c++ {
		cn := c
		rng := sim.NewRand(sp.Seed + int64(cn)*7_919)
		front.Go(fmt.Sprintf("replica-burst-%d", cn), func(p *sim.Proc) {
			for i := 0; i < perClient; i++ {
				key := tenantKey(0, rng.Intn(sp.Keys))
				ver, err := srv.Put(p, acct, key)
				switch {
				case err == nil:
					if ver > acked[key] {
						acked[key] = ver
					}
					v.AckedCommits++
				case errors.Is(err, ErrOverloaded):
					v.Shed++
				case errors.Is(err, ErrShardUnavailable):
					v.Unavailable++
				default:
					// Unexpected taxonomy escape; surface it in the verdict.
					if v.Err == nil {
						v.Err = fmt.Errorf("writer %d: %w", cn, err)
					}
					return
				}
			}
		})
	}

	down := make([]bool, R) // victim replica indices currently powered off
	if !o.NoCut {
		down[sp.CutReplica] = true
		for g := 0; g < sp.Groups; g++ {
			cy := devs[g][sp.CutReplica].(storage.PowerCycler)
			storesByShard[g][sp.CutReplica].Domain().Engine().Schedule(sp.CutAfter, cy.PowerFail)
		}
	}
	cluster.Run()
	for g := range devs {
		for _, dev := range devs[g] {
			dev.Registry().SetEventFn(nil) // the schedule covers the workload only
		}
	}

	// Partition the acked keys by owning group, in sorted key order so the
	// audit schedule never depends on map iteration.
	sortedKeys := make([]uint64, 0, len(acked))
	for k := range acked {
		sortedKeys = append(sortedKeys, k)
	}
	sort.Slice(sortedKeys, func(i, j int) bool { return sortedKeys[i] < sortedKeys[j] })
	byGroup := make([][]uint64, sp.Groups)
	for _, k := range sortedKeys {
		byGroup[ring.Lookup(k)] = append(byGroup[ring.Lookup(k)], k)
	}
	v.AckedKeys = len(sortedKeys)

	// crashReadAll reads every acked key of every group on the replicas sel
	// selects, returning per-group per-replica (version, parsed-ok) results.
	crashReadAll := func(label string, sel func(r int) bool) ([][][]uint64, [][][]bool, error) {
		vers := make([][][]uint64, sp.Groups)
		oks := make([][][]bool, sp.Groups)
		errs := make([]error, sp.Groups*R)
		for g := 0; g < sp.Groups; g++ {
			vers[g] = make([][]uint64, R)
			oks[g] = make([][]bool, R)
			for r := 0; r < R; r++ {
				if !sel(r) {
					continue
				}
				g, r := g, r
				st := storesByShard[g][r]
				vers[g][r] = make([]uint64, len(byGroup[g]))
				oks[g][r] = make([]bool, len(byGroup[g]))
				st.Domain().Go(fmt.Sprintf("%s-%d-%d", label, g, r), func(p *sim.Proc) {
					for i, k := range byGroup[g] {
						got, ok, err := st.CrashRead(p, k)
						if err != nil {
							errs[g*R+r] = fmt.Errorf("group %d replica %d audit: %w", g, r, err)
							return
						}
						vers[g][r][i] = got
						oks[g][r][i] = ok
					}
				})
			}
		}
		cluster.Run()
		for _, err := range errs {
			if err != nil {
				return nil, nil, err
			}
		}
		return vers, oks, nil
	}

	// Phase A — availability before the victim returns: every acked key must
	// be readable at its acked version from some still-powered replica. Live
	// replicas were never power-cut, so a torn image here is a real bug.
	vers, oks, err := crashReadAll("preaudit", func(r int) bool { return !down[r] })
	if err != nil {
		return nil, err
	}
	anyLive := false
	for r := 0; r < R; r++ {
		if !down[r] {
			anyLive = true
		}
	}
	for g := 0; g < sp.Groups; g++ {
		for i, k := range byGroup[g] {
			var max uint64
			for r := 0; r < R; r++ {
				if down[r] {
					continue
				}
				if !oks[g][r][i] {
					v.Torn++
					continue
				}
				if vers[g][r][i] > max {
					max = vers[g][r][i]
				}
			}
			if anyLive && max < acked[k] {
				v.GroupLost++
			}
		}
	}

	// Reboot the victims (firmware recovery: DuraSSD recharges and keeps its
	// cache; SSD-A comes back empty-cached having lost whatever was in it).
	if !o.NoCut {
		rebootErrs := make([]error, sp.Groups)
		for g := 0; g < sp.Groups; g++ {
			g := g
			st := storesByShard[g][sp.CutReplica]
			cy := devs[g][sp.CutReplica].(storage.PowerCycler)
			st.Domain().Go(fmt.Sprintf("replica-reboot-%d", g), func(p *sim.Proc) {
				rebootErrs[g] = cy.Reboot(p)
			})
		}
		cluster.Run()
		for g, err := range rebootErrs {
			if err != nil {
				return nil, fmt.Errorf("group %d victim reboot: %w", g, err)
			}
		}
		down[sp.CutReplica] = false

		// Catch up the rejoined victims from live peers — with, in the
		// recovery-under-failure arm, a second replica power-failing shortly
		// after the transfers begin.
		if sp.CutPeerDuringCatchup {
			down[sp.PeerCut] = true
			for g := 0; g < sp.Groups; g++ {
				cy := devs[g][sp.PeerCut].(storage.PowerCycler)
				storesByShard[g][sp.PeerCut].Domain().Engine().Schedule(200*time.Microsecond, cy.PowerFail)
			}
		}
		caught := make([]int, sp.Groups)
		for g := 0; g < sp.Groups; g++ {
			g := g
			front.Go(fmt.Sprintf("replica-catchup-%d", g), func(p *sim.Proc) {
				caught[g] = srv.Group(g).CatchUp(p, sp.CutReplica)
			})
		}
		cluster.Run()
		for _, n := range caught {
			v.CatchupKeys += n
		}

		// Recover the second victim too, then run anti-entropy on every
		// replica still marked behind (including healthy replicas that
		// merely missed an RPC) so the convergence audit is meaningful.
		if sp.CutPeerDuringCatchup {
			rebootErrs := make([]error, sp.Groups)
			for g := 0; g < sp.Groups; g++ {
				g := g
				st := storesByShard[g][sp.PeerCut]
				cy := devs[g][sp.PeerCut].(storage.PowerCycler)
				st.Domain().Go(fmt.Sprintf("peer-reboot-%d", g), func(p *sim.Proc) {
					rebootErrs[g] = cy.Reboot(p)
				})
			}
			cluster.Run()
			for g, err := range rebootErrs {
				if err != nil {
					return nil, fmt.Errorf("group %d peer reboot: %w", g, err)
				}
			}
			down[sp.PeerCut] = false
		}
		for g := range caught {
			caught[g] = 0
		}
		for g := 0; g < sp.Groups; g++ {
			g := g
			front.Go(fmt.Sprintf("anti-entropy-%d", g), func(p *sim.Proc) {
				for r := 0; r < R; r++ {
					if srv.Group(g).Behind(r) > 0 {
						caught[g] += srv.Group(g).CatchUp(p, r)
					}
				}
			})
		}
		cluster.Run()
		for _, n := range caught {
			v.CatchupKeys += n
		}
	}
	for g := 0; g < sp.Groups; g++ {
		for r := 0; r < R; r++ {
			v.BehindAfter += srv.Group(g).Behind(r)
		}
	}

	// Phase B — convergence: after reboot and catch-up, every replica of
	// every group must hold every acked key at or above its acked version.
	// (For the R=1 control this is simply "did the sole copy survive".)
	vers, oks, err = crashReadAll("postaudit", func(r int) bool { return !down[r] })
	if err != nil {
		return nil, err
	}
	for g := 0; g < sp.Groups; g++ {
		for i, k := range byGroup[g] {
			for r := 0; r < R; r++ {
				if down[r] {
					continue
				}
				if !oks[g][r][i] {
					v.Torn++
					v.Lost++
					continue
				}
				if vers[g][r][i] < acked[k] {
					v.Lost++
				}
			}
		}
	}
	return v, nil
}
