package serve

import (
	"runtime"
	"testing"
)

// The acceptance gate of this package: the mixed-tenant scenario is a pure
// function of its seed. The same configuration must render a byte-identical
// per-tenant report and produce an identical merged iotrace digest at every
// cluster worker count and under every GOMAXPROCS value — the conservative
// parallel engine's whole contract, observed end to end through the serving
// layer.

// scenarioFingerprint runs the default scenario and returns the rendered
// report plus the schedule digest.
func scenarioFingerprint(t *testing.T, workers int) (string, string) {
	t.Helper()
	res, err := RunScenario(ScenarioConfig{Workers: workers, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return res.Render(), res.Digest
}

// TestScenarioDeterminismAcrossWorkers: 1 vs 2 vs 4 cluster workers.
func TestScenarioDeterminismAcrossWorkers(t *testing.T) {
	baseReport, baseDigest := scenarioFingerprint(t, 1)
	if baseDigest == "" {
		t.Fatal("empty digest: the recorder saw no device events")
	}
	for _, workers := range []int{2, 4} {
		report, digest := scenarioFingerprint(t, workers)
		if digest != baseDigest {
			t.Errorf("workers=%d: digest %s != workers=1 digest %s", workers, digest, baseDigest)
		}
		if report != baseReport {
			t.Errorf("workers=%d: rendered report diverged from workers=1:\n%s\n--- vs ---\n%s",
				workers, report, baseReport)
		}
	}
}

// TestScenarioDeterminismAcrossGOMAXPROCS: the schedule must not depend on
// how many OS threads the Go runtime multiplexes the workers onto.
func TestScenarioDeterminismAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	runtime.GOMAXPROCS(1)
	baseReport, baseDigest := scenarioFingerprint(t, 4)
	for _, procs := range []int{2, 4} {
		runtime.GOMAXPROCS(procs)
		report, digest := scenarioFingerprint(t, 4)
		if digest != baseDigest {
			t.Errorf("GOMAXPROCS=%d: digest %s != GOMAXPROCS=1 digest %s", procs, digest, baseDigest)
		}
		if report != baseReport {
			t.Errorf("GOMAXPROCS=%d: rendered report diverged from GOMAXPROCS=1", procs)
		}
	}
}

// TestScenarioSeedSensitivity: the digest actually captures the workload —
// a different seed yields a different schedule, so digest identity above is
// meaningful rather than vacuous.
func TestScenarioSeedSensitivity(t *testing.T) {
	a, err := RunScenario(ScenarioConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(ScenarioConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest == b.Digest {
		t.Fatalf("seeds 1 and 2 produced the same digest %s", a.Digest)
	}
}

// TestScenarioServesAndSheds: the default mix actually exercises the layer —
// every tenant completes operations, the TPC-C tenant is throttled by its
// QoS contract, the cache absorbs reads, and at least one shard sheds.
func TestScenarioServesAndSheds(t *testing.T) {
	res, err := RunScenario(ScenarioConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var shed int64
	for _, n := range res.ShedByShard {
		shed += n
	}
	if shed == 0 {
		t.Error("default scenario shed nothing: admission control untested")
	}
	if res.CacheHits == 0 {
		t.Error("default scenario never hit the host cache")
	}
	for _, tr := range res.Tenants {
		if tr.Ops == 0 {
			t.Errorf("tenant %s completed no operations", tr.Name)
		}
		if tr.ReadP99 <= 0 || tr.WriteP99 <= 0 {
			t.Errorf("tenant %s: empty latency histograms (p99 read %v, write %v)",
				tr.Name, tr.ReadP99, tr.WriteP99)
		}
	}
	if res.Tenants[2].Name != "tpcc" || res.Tenants[2].Throttled == 0 {
		t.Error("the rate-capped tpcc tenant was never throttled")
	}
}
