package serve

// Bloom is a fixed-size Bloom filter over uint64 keys, used by the serving
// layer as a negative-lookup filter: the gateway builds one per shard over
// the keys that exist there, and a read whose key the filter rejects is
// answered "not found" without paying the shard round trip. The filter is
// built once at load time and queried on the read path, so the only
// property the serving layer relies on is the structural one: a key that
// was inserted is never reported absent (no false negatives, ever). False
// positives merely cost one shard read.
//
// Hashing is splitmix64-derived double hashing (h1 + i*h2), the standard
// Kirsch–Mitzenmacher construction; everything is fixed arithmetic, so the
// filter is deterministic across runs and platforms.
type Bloom struct {
	bits  []uint64
	nbits uint64
	k     int
	n     int // keys inserted
}

// NewBloom sizes a filter for the expected number of keys at roughly 1%
// false positives (10 bits per key, 7 hash functions).
func NewBloom(expected int) *Bloom {
	if expected < 1 {
		expected = 1
	}
	nbits := uint64(expected) * 10
	// Round up to a multiple of 64 with a small floor so tiny filters
	// still have room to spread their hash functions.
	if nbits < 256 {
		nbits = 256
	}
	nbits = (nbits + 63) &^ 63
	return &Bloom{bits: make([]uint64, nbits/64), nbits: nbits, k: 7}
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit hash.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashes derives the double-hashing pair for a key. h2 is forced odd so
// successive probes cycle through distinct bit positions.
func (b *Bloom) hashes(key uint64) (h1, h2 uint64) {
	h1 = mix64(key)
	h2 = mix64(key^0xa5a5a5a5a5a5a5a5) | 1
	return h1, h2
}

// Add inserts a key.
func (b *Bloom) Add(key uint64) {
	h1, h2 := b.hashes(key)
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % b.nbits
		b.bits[bit/64] |= 1 << (bit % 64)
	}
	b.n++
}

// Contains reports whether the key may have been inserted. False positives
// are possible; false negatives are not.
func (b *Bloom) Contains(key uint64) bool {
	h1, h2 := b.hashes(key)
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % b.nbits
		if b.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// Len returns the number of keys inserted.
func (b *Bloom) Len() int { return b.n }
