package serve

import (
	"errors"
	"testing"
	"time"

	"durassd/internal/sim"
	"durassd/internal/ssd"
	"durassd/internal/storage"
)

// groupHarness is a front domain plus one R-way replica group over
// timing-mode DuraSSD stores, keys 0..63.
type groupHarness struct {
	cluster *sim.Cluster
	front   *sim.Domain
	g       *Group
	stores  []*Store
	devs    []storage.Device
}

func buildGroupHarness(t *testing.T, replicas int, cfg GroupConfig) *groupHarness {
	t.Helper()
	cluster := sim.NewCluster(1+replicas, 100*time.Microsecond, 1)
	t.Cleanup(cluster.Close)
	front := cluster.Domain(0)
	keys := make([]uint64, 64)
	for i := range keys {
		keys[i] = uint64(i)
	}
	h := &groupHarness{cluster: cluster, front: front}
	for r := 0; r < replicas; r++ {
		dom := cluster.Domain(1 + r)
		dev, err := ssd.New(dom.Engine(), ssd.DuraSSD(16))
		if err != nil {
			t.Fatalf("ssd.New: %v", err)
		}
		st, err := OpenStore(dom, dev, keys, StoreConfig{})
		if err != nil {
			t.Fatalf("OpenStore: %v", err)
		}
		h.devs = append(h.devs, dev)
		h.stores = append(h.stores, st)
	}
	g, err := NewGroup(0, front, h.stores, cfg)
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	h.g = g
	return h
}

// A quorum Put converges on every replica once the cluster drains, and a
// subsequent Get observes it.
func TestGroupQuorumPutConverges(t *testing.T) {
	h := buildGroupHarness(t, 3, GroupConfig{Quorum: 2})
	var (
		ver    uint64
		got    uint64
		found  bool
		putErr error
		getErr error
	)
	h.front.Go("writer", func(p *sim.Proc) {
		ver, putErr = h.g.Put(p, 7)
		got, found, getErr = h.g.Get(p, 7)
	})
	h.cluster.Run()
	if putErr != nil || getErr != nil {
		t.Fatalf("put err %v, get err %v", putErr, getErr)
	}
	if ver != 1 || got != 1 || !found {
		t.Fatalf("ver=%d got=%d found=%v, want 1/1/true", ver, got, found)
	}
	for r, st := range h.stores {
		if v := st.Version(7); v != 1 {
			t.Errorf("replica %d version = %d, want 1 (all replicas converge after drain)", r, v)
		}
	}
}

// With one replica of three power-failed, writes still ack at W=2; with two
// down, the group sheds writes with ErrShardUnavailable, and the dead
// replicas accumulate behind-markers for the writes they missed.
func TestGroupMinorityLossAndQuorumLoss(t *testing.T) {
	h := buildGroupHarness(t, 3, GroupConfig{Quorum: 2, Retries: 1, RetryBase: 50 * time.Microsecond})
	h.devs[2].(storage.PowerCycler).PowerFail()
	var (
		ver1, ver2 uint64
		err1, err2 error
	)
	h.front.Go("writer", func(p *sim.Proc) {
		ver1, err1 = h.g.Put(p, 3)
		h.devs[1].(storage.PowerCycler).PowerFail()
		_, err2 = h.g.Put(p, 3)
		ver2 = h.g.vers[3]
	})
	h.cluster.Run()
	if err1 != nil || ver1 != 1 {
		t.Fatalf("minority loss: Put = (%d, %v), want (1, nil)", ver1, err1)
	}
	if !errors.Is(err2, ErrShardUnavailable) {
		t.Fatalf("quorum loss: Put err = %v, want ErrShardUnavailable", err2)
	}
	if ver2 != 2 {
		t.Errorf("version authority advanced to %d, want 2 (failed attempts burn a version)", ver2)
	}
	if h.g.Behind(2) == 0 {
		t.Errorf("dead replica 2 has no behind-markers; the write it missed must be tracked")
	}
	if _, _, _, unavail, _ := h.g.Counters(); unavail == 0 {
		t.Errorf("unavailable counter = 0, want > 0")
	}
}

// A rebooted replica catches up exactly the writes it missed from a live
// peer — a delta transfer — and then holds the latest version.
func TestGroupCatchUpAfterReboot(t *testing.T) {
	h := buildGroupHarness(t, 3, GroupConfig{Quorum: 2})
	var putErr error
	h.front.Go("writer", func(p *sim.Proc) {
		for k := uint64(0); k < 8; k++ { // baseline: all replicas have v1
			if _, err := h.g.Put(p, k); err != nil && putErr == nil {
				putErr = err
			}
		}
	})
	h.cluster.Run()
	if putErr != nil {
		t.Fatalf("baseline puts: %v", putErr)
	}

	h.devs[2].(storage.PowerCycler).PowerFail()
	h.front.Go("writer2", func(p *sim.Proc) {
		for k := uint64(0); k < 4; k++ { // missed by replica 2
			if _, err := h.g.Put(p, k); err != nil && putErr == nil {
				putErr = err
			}
		}
	})
	h.cluster.Run()
	if putErr != nil {
		t.Fatalf("degraded puts: %v", putErr)
	}
	missed := h.g.Behind(2)
	if missed != 4 {
		t.Fatalf("replica 2 behind on %d keys, want 4", missed)
	}

	var rebootErr error
	h.stores[2].Domain().Go("reboot", func(p *sim.Proc) {
		rebootErr = h.devs[2].(storage.PowerCycler).Reboot(p)
	})
	h.cluster.Run()
	if rebootErr != nil {
		t.Fatalf("reboot: %v", rebootErr)
	}
	var transferred int
	h.front.Go("catchup", func(p *sim.Proc) {
		transferred = h.g.CatchUp(p, 2)
	})
	h.cluster.Run()
	if transferred != missed {
		t.Errorf("catch-up transferred %d keys, want %d (the delta, not the %d-key space)",
			transferred, missed, h.stores[2].Keys())
	}
	if h.g.Behind(2) != 0 {
		t.Errorf("replica 2 still behind on %d keys after catch-up", h.g.Behind(2))
	}
	for k := uint64(0); k < 4; k++ {
		if v := h.stores[2].Version(k); v != 2 {
			t.Errorf("replica 2 key %d version = %d, want 2 after catch-up", k, v)
		}
	}
	if h.g.Breaker(2).Open() {
		t.Errorf("breaker still open after successful catch-up")
	}
}

// A browned-out preferred replica triggers the hedged second read, and the
// hedge answers; a replica slower than the deadline trips the deadline
// counter and the read fails over.
func TestGroupHedgedReadAndDeadline(t *testing.T) {
	const key = 11
	h := buildGroupHarness(t, 3, GroupConfig{
		Quorum:      2,
		HedgeAfter:  500 * time.Microsecond,
		CallTimeout: 4 * time.Millisecond,
	})
	preferred := RendezvousOrder(key, 3, nil)[0]
	var (
		got   uint64
		found bool
		err   error
	)
	h.front.Go("driver", func(p *sim.Proc) {
		if _, perr := h.g.Put(p, key); perr != nil {
			err = perr
			return
		}
		h.stores[preferred].SetSlowdown(2 * time.Millisecond) // > HedgeAfter, < deadline
		got, found, err = h.g.Get(p, key)
	})
	h.cluster.Run()
	if err != nil || !found || got != 1 {
		t.Fatalf("hedged read = (%d, %v, %v), want (1, true, nil)", got, found, err)
	}
	hedges, _, _, _, _ := h.g.Counters()
	if hedges == 0 {
		t.Errorf("hedges = 0, want > 0 (preferred replica slower than HedgeAfter)")
	}

	// Now slower than the deadline on every replica the read tries first:
	// the deadline fires and the read still answers via failover/retry.
	h.front.Go("driver2", func(p *sim.Proc) {
		h.stores[preferred].SetSlowdown(20 * time.Millisecond) // > deadline
		got, found, err = h.g.Get(p, key)
	})
	h.cluster.Run()
	if err != nil || !found || got != 1 {
		t.Fatalf("deadline read = (%d, %v, %v), want (1, true, nil)", got, found, err)
	}
	_, deadlines, _, _, _ := h.g.Counters()
	if deadlines == 0 {
		t.Errorf("deadlines = 0, want > 0 (replica slower than CallTimeout)")
	}
}

// The breaker state machine: opens on the configured consecutive-failure
// threshold, refuses while cooling down, half-opens exactly one probe, and
// closes on probe success / re-opens on probe failure.
func TestBreakerLifecycle(t *testing.T) {
	b := NewBreaker(3, 10*time.Millisecond)
	now := time.Duration(0)
	for i := 0; i < 2; i++ {
		b.Failure(now)
		if b.Open() {
			t.Fatalf("open after %d failures, threshold is 3", i+1)
		}
	}
	b.Success() // resets the consecutive count
	for i := 0; i < 3; i++ {
		b.Failure(now)
	}
	if !b.Open() || b.Opens() != 1 {
		t.Fatalf("want open with 1 transition, got open=%v opens=%d", b.Open(), b.Opens())
	}
	if b.Allow(now + 5*time.Millisecond) {
		t.Fatalf("allowed during cooldown")
	}
	probeAt := now + 11*time.Millisecond
	if !b.Allow(probeAt) {
		t.Fatalf("half-open probe refused after cooldown")
	}
	if b.Allow(probeAt) {
		t.Fatalf("second concurrent probe allowed; half-open admits exactly one")
	}
	b.Failure(probeAt + time.Millisecond) // probe failed: cooldown restarts
	if b.Allow(probeAt + 2*time.Millisecond) {
		t.Fatalf("allowed right after failed probe")
	}
	if !b.Allow(probeAt + 13*time.Millisecond) {
		t.Fatalf("probe refused after restarted cooldown")
	}
	b.Success()
	if b.Open() {
		t.Fatalf("still open after successful probe")
	}
	if !b.Allow(probeAt + 14*time.Millisecond) {
		t.Fatalf("closed breaker refused traffic")
	}
}

// Rendezvous minimal movement: excluding one replica changes the preferred
// replica only for keys that preferred the excluded one — every other key
// keeps its assignment, so a replica death never reshuffles healthy routes.
func TestRendezvousMinimalMovement(t *testing.T) {
	const n, dead = 5, 2
	moved, kept := 0, 0
	for key := uint64(0); key < 2000; key++ {
		full := RendezvousOrder(key, n, nil)
		pruned := RendezvousOrder(key, n, func(ri int) bool { return ri != dead })
		if len(full) != n || len(pruned) != n-1 {
			t.Fatalf("key %d: lengths %d/%d, want %d/%d", key, len(full), len(pruned), n, n-1)
		}
		if full[0] == dead {
			moved++
			// The new preference must be the old runner-up.
			if pruned[0] != full[1] {
				t.Fatalf("key %d: after losing its preferred replica, top = %d, want old runner-up %d",
					key, pruned[0], full[1])
			}
			continue
		}
		kept++
		if pruned[0] != full[0] {
			t.Fatalf("key %d: preferred replica moved %d -> %d though replica %d was not its choice",
				key, full[0], pruned[0], dead)
		}
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
	// Roughly 1/n of the keys should have preferred the dead replica.
	if moved < 200 || moved > 700 {
		t.Errorf("moved=%d of 2000, want roughly 1/%d", moved, n)
	}
}
