package serve

import (
	"sort"
	"testing"
	"time"

	"durassd/internal/sim"
)

// Property tests for the serving-layer primitives. All randomness is drawn
// from sim.Rand with fixed seeds, so every run checks the same cases.

// TestBloomNoFalseNegatives is the filter's load-bearing property: the
// negative-lookup path turns "not in filter" into a client-visible
// ErrNotFound without touching the shard, so a false negative would make the
// gateway deny a key that exists. Members must always test positive.
func TestBloomNoFalseNegatives(t *testing.T) {
	for _, n := range []int{1, 10, 1000, 20000} {
		rng := sim.NewRand(int64(n))
		b := NewBloom(n)
		members := make([]uint64, n)
		for i := range members {
			members[i] = rng.Uint64()
			b.Add(members[i])
		}
		for i, k := range members {
			if !b.Contains(k) {
				t.Fatalf("n=%d: false negative on member %d (key %#x)", n, i, k)
			}
		}
		// False positives are allowed but must stay near the designed rate
		// (10 bits/key, 7 hashes => ~1%); a broken hash would blow past this.
		fp := 0
		const probes = 20000
		for i := 0; i < probes; i++ {
			if b.Contains(rng.Uint64()) {
				fp++
			}
		}
		if rate := float64(fp) / probes; rate > 0.03 {
			t.Errorf("n=%d: false-positive rate %.4f, want < 0.03", n, rate)
		}
	}
}

// TestSketchOverestimateOnly: a count-min sketch may overestimate (hash
// collisions add counts) but must never underestimate below the saturation
// cap — TinyLFU admission leans on estimates never being too small for the
// keys that matter.
func TestSketchOverestimateOnly(t *testing.T) {
	rng := sim.NewRand(42)
	s := NewSketch(4096) // halve limit 40960: stay under it
	truth := make(map[uint64]int)
	keys := make([]uint64, 500)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	for total := 0; total < 10000; total++ {
		k := keys[rng.Intn(len(keys))]
		if truth[k] >= 14 {
			continue // stay below the 4-bit saturation cap
		}
		s.Increment(k)
		truth[k]++
	}
	for _, k := range keys {
		if got, want := s.Estimate(k), truth[k]; got < want {
			t.Fatalf("underestimate: key %#x counted %d, estimated %d", k, want, got)
		}
	}
}

// TestSketchSaturatesAndHalves: counters cap at 15 instead of wrapping, and
// Halve (the TinyLFU aging step) divides every counter by two.
func TestSketchSaturatesAndHalves(t *testing.T) {
	s := NewSketch(64)
	key := uint64(0xdeadbeef)
	for i := 0; i < 100; i++ {
		s.Increment(key)
	}
	if got := s.Estimate(key); got != 15 {
		t.Fatalf("saturated estimate = %d, want 15", got)
	}
	s.Halve()
	if got := s.Estimate(key); got != 7 {
		t.Fatalf("estimate after Halve = %d, want 7", got)
	}
}

// TestTokenBucketNeverAdmitsAboveRate: the GCRA property. Whatever the
// arrival pattern, the conforming times handed out by Take never exceed
// burst + rate*W operations inside any window of length W.
func TestTokenBucketNeverAdmitsAboveRate(t *testing.T) {
	const (
		rate  = 1000 // ops/sec
		burst = 20
	)
	rng := sim.NewRand(7)
	tb := NewTokenBucket(rate, burst)
	var admits []time.Duration
	now := time.Duration(0)
	for i := 0; i < 5000; i++ {
		// Bursty arrivals: mostly back-to-back, occasional long gaps.
		if rng.Intn(10) == 0 {
			now += time.Duration(rng.Intn(20)) * time.Millisecond
		} else {
			now += time.Duration(rng.Intn(50)) * time.Microsecond
		}
		wait := tb.Take(now)
		if wait < 0 {
			t.Fatalf("op %d: negative wait %v", i, wait)
		}
		admits = append(admits, now+wait)
	}
	if !sort.SliceIsSorted(admits, func(i, j int) bool { return admits[i] < admits[j] }) {
		t.Fatal("conforming times went backwards")
	}
	for _, window := range []time.Duration{10 * time.Millisecond, 100 * time.Millisecond, time.Second} {
		allowed := burst + int(int64(rate)*int64(window)/int64(time.Second))
		lo := 0
		for hi := range admits {
			for admits[hi]-admits[lo] > window {
				lo++
			}
			if count := hi - lo + 1; count > allowed+1 {
				t.Fatalf("window %v ending at op %d admitted %d ops, allowed %d",
					window, hi, count, allowed)
			}
		}
	}
}

// TestTokenBucketIdleRefill: after a long idle gap the bucket admits a full
// burst immediately, but not more.
func TestTokenBucketIdleRefill(t *testing.T) {
	tb := NewTokenBucket(100, 10)
	now := 10 * time.Second
	for i := 0; i < 10; i++ {
		if wait := tb.Take(now); wait != 0 {
			t.Fatalf("burst op %d after idle: wait %v, want 0", i, wait)
		}
	}
	if wait := tb.Take(now); wait <= 0 {
		t.Fatalf("op past the burst: wait %v, want > 0", wait)
	}
}

// TestRingDeterminismAndCoverage: two rings over the same shard count route
// every key identically; PartitionKeys assigns every key to exactly one
// shard; and the 64-vnode placement keeps the load roughly balanced.
func TestRingDeterminismAndCoverage(t *testing.T) {
	const shards = 4
	r1, r2 := NewRing(shards), NewRing(shards)
	rng := sim.NewRand(3)
	keys := make([]uint64, 10000)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	counts := make([]int, shards)
	for _, k := range keys {
		sh := r1.Lookup(k)
		if sh != r2.Lookup(k) {
			t.Fatalf("rings disagree on key %#x", k)
		}
		counts[sh]++
	}
	parts := PartitionKeys(r1, keys)
	total := 0
	for sh, part := range parts {
		total += len(part)
		if len(part) != counts[sh] {
			t.Errorf("shard %d: partition %d keys, lookup %d", sh, len(part), counts[sh])
		}
	}
	if total != len(keys) {
		t.Fatalf("partition covers %d of %d keys", total, len(keys))
	}
	for sh, c := range counts {
		frac := float64(c) / float64(len(keys))
		if frac < 0.08 || frac > 0.50 {
			t.Errorf("shard %d owns %.3f of the space; balance broken", sh, frac)
		}
	}
}

// TestRingMinimalMovement is the property consistent hashing buys: growing
// the ring by one shard relocates only a minority of keys.
func TestRingMinimalMovement(t *testing.T) {
	const shards = 4
	small, big := NewRing(shards), NewRing(shards+1)
	rng := sim.NewRand(9)
	moved, n := 0, 10000
	for i := 0; i < n; i++ {
		k := rng.Uint64()
		if small.Lookup(k) != big.Lookup(k) {
			moved++
		}
	}
	// Ideal is 1/(shards+1) = 20%; allow headroom for vnode variance.
	if frac := float64(moved) / float64(n); frac > 0.40 {
		t.Errorf("adding one shard moved %.3f of keys, want < 0.40", frac)
	}
}

// TestCacheAdmissionAndMonotonicVersions: TinyLFU admits freely while there
// is spare capacity, rejects cold candidates against a hot victim once full,
// and never rolls a cached version backwards (Put completions can race at
// the gateway, so stale completions must lose).
func TestCacheAdmissionAndMonotonicVersions(t *testing.T) {
	c := NewCache(4)
	for k := uint64(1); k <= 4; k++ {
		if !c.Admit(k, 1) {
			t.Fatalf("admission with spare capacity rejected key %d", k)
		}
	}
	// Heat the residents: every Get feeds the frequency sketch.
	for i := 0; i < 8; i++ {
		for k := uint64(1); k <= 4; k++ {
			c.Get(k)
		}
	}
	if c.Admit(99, 1) {
		t.Error("cold candidate evicted a hot resident")
	}
	// A candidate hotter than the LRU victim does get in.
	for i := 0; i < 20; i++ {
		c.Get(77) // misses, but each miss feeds the sketch
	}
	if !c.Admit(77, 1) {
		t.Error("hot candidate rejected against a colder victim")
	}
	// Version monotonicity (key 4 was the most recently heated resident, so
	// it survived the eviction above).
	c.Update(4, 9)
	c.Update(4, 5)
	if v, ok := c.Get(4); !ok || v != 9 {
		t.Errorf("version rolled back: got (%d, %t), want (9, true)", v, ok)
	}
	c.Admit(4, 3)
	if v, _ := c.Get(4); v != 9 {
		t.Errorf("Admit rolled a resident version back to %d", v)
	}
}
