package serve

import "sort"

// Ring is a consistent-hash ring mapping document keys to shards. Each
// shard owns vnodesPerShard points on the ring (hashed with mix64, so the
// placement is deterministic and platform-independent), and a key routes to
// the shard owning the first point clockwise from the key's hash. The usual
// consistent-hashing property holds: adding or removing one shard moves
// only ~1/N of the key space, so a resharded deployment keeps most of its
// cache and slot placement intact.
type Ring struct {
	points []ringPoint // sorted by hash
	shards int
}

type ringPoint struct {
	hash  uint64
	shard int
}

const vnodesPerShard = 64

// NewRing builds a ring over the given number of shards (minimum 1).
func NewRing(shards int) *Ring {
	if shards < 1 {
		shards = 1
	}
	r := &Ring{points: make([]ringPoint, 0, shards*vnodesPerShard), shards: shards}
	for s := 0; s < shards; s++ {
		// Double-mix with a salt keeps vnode placement in a different hash
		// domain than key lookup: a key whose raw bits happen to equal a
		// (shard, vnode) encoding must not hash onto that vnode's point.
		base := mix64(uint64(s) ^ 0x517cc1b727220a95)
		for v := 0; v < vnodesPerShard; v++ {
			h := mix64(base + uint64(v)*0x9e3779b97f4a7c15)
			r.points = append(r.points, ringPoint{hash: h, shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by shard id so the order —
		// and therefore routing — never depends on sort stability.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Lookup returns the shard owning the key.
func (r *Ring) Lookup(key uint64) int {
	h := mix64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: first point clockwise from the top of the ring
	}
	return r.points[i].shard
}

// Shards returns the number of shards on the ring.
func (r *Ring) Shards() int { return r.shards }
