package serve

import (
	"errors"
	"fmt"
	"testing"
)

// The taxonomy contract: every layer wraps with %w, so errors.Is resolves
// the sentinel through any depth of context — from a replica RPC, through
// the group's quorum wrapper, to the gateway and the client.
func TestErrorTaxonomyUnwraps(t *testing.T) {
	cases := []struct {
		name     string
		err      error
		sentinel error
	}{
		{"bare overloaded", ErrOverloaded, ErrOverloaded},
		{"bare not found", ErrNotFound, ErrNotFound},
		{"bare deadline", ErrDeadlineExceeded, ErrDeadlineExceeded},
		{"bare unavailable", ErrShardUnavailable, ErrShardUnavailable},
		{
			"wrapped deadline",
			fmt.Errorf("serve: group 3 put key 9: %w", ErrDeadlineExceeded),
			ErrDeadlineExceeded,
		},
		{
			"quorum failure carrying its cause",
			fmt.Errorf("serve: group 1 put key 4: %w",
				fmt.Errorf("%w: 1/2 acks: %w", ErrShardUnavailable, ErrDeadlineExceeded)),
			ErrShardUnavailable,
		},
		{
			"cause visible through the quorum wrapper",
			fmt.Errorf("serve: group 1 put key 4: %w",
				fmt.Errorf("%w: 1/2 acks: %w", ErrShardUnavailable, ErrDeadlineExceeded)),
			ErrDeadlineExceeded,
		},
		{
			"tenant-level wrap of a shed",
			fmt.Errorf("serve: tenant ycsb thread 2: %w", ErrOverloaded),
			ErrOverloaded,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if !errors.Is(tc.err, tc.sentinel) {
				t.Errorf("errors.Is(%v, %v) = false, want true", tc.err, tc.sentinel)
			}
		})
	}

	// Sentinels must stay distinct: no Is relation between any pair.
	sentinels := []error{ErrOverloaded, ErrNotFound, ErrDeadlineExceeded, ErrShardUnavailable}
	for i, a := range sentinels {
		for j, b := range sentinels {
			if i != j && errors.Is(a, b) {
				t.Errorf("sentinel %v unexpectedly matches %v", a, b)
			}
		}
	}
}
