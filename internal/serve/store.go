package serve

import (
	"fmt"
	"sort"
	"time"

	"durassd/internal/host"
	"durassd/internal/sim"
	"durassd/internal/storage"
)

// Store is one shard's durable document store: a fixed key space laid out
// one key per device page behind a host.FS file. A Put writes the key's
// canonical page image (storage.BuildPageImage: id, version, CRC) and group-
// commits an fdatasync before acknowledging, so "Put returned nil" means
// exactly what a database commit ack means — and whether that ack survives
// a power cut is decided by the device underneath, which is the paper's
// whole argument: with barriers off, fdatasync never flushes the device
// cache, so a DuraSSD shard keeps every acked write while a volatile-cache
// shard loses whatever had not drained.
//
// A Store is confined to its shard's domain: every method taking a
// *sim.Proc must run on that domain's engine (the Server ships operations
// over with Domain.Call).
type Store struct {
	dom   *sim.Domain
	dev   storage.Device
	fs    *host.FS
	file  *host.File
	slots map[uint64]int64  // key -> page offset in the file
	vers  map[uint64]uint64 // key -> last durably acked version
	real  bool              // write real page images (crash campaigns) vs timing-only

	// slowdown is extra service latency injected before every operation —
	// the chaos plane's replica brownout. Zero in normal operation.
	slowdown time.Duration

	// Striped write locks: Puts to the same key serialize, so a later ack
	// always means a later (or equal) on-media version — the property the
	// crash audit's "max acked version per key" bookkeeping relies on.
	stripes []*sim.Resource

	// Group commit: writers wait for a sync generation covering their
	// write; one of them leads the fdatasync, the rest ride along.
	writeGen uint64
	syncGen  uint64
	syncing  bool
	syncDone *sim.Queue

	puts  int64
	gets  int64
	syncs int64
}

const storeStripes = 64

// StoreConfig configures one shard store.
type StoreConfig struct {
	// Barrier sets the host filesystem's write-barrier mode. The paper's
	// fast configuration is false: fdatasync costs CPU only and relies on
	// the device cache being durable.
	Barrier bool
	// RealBytes selects checksummed page images (crash campaigns audit
	// them) over timing-only nil buffers (benchmarks).
	RealBytes bool
}

// OpenStore lays the key set out on dev (one page per key, slot order =
// sorted key order, so the layout is deterministic) and preloads every
// page so reads of never-written keys are well-defined version-0 hits.
func OpenStore(dom *sim.Domain, dev storage.Device, keys []uint64, cfg StoreConfig) (*Store, error) {
	if int64(len(keys))+1 > dev.Pages() {
		return nil, fmt.Errorf("serve: %d keys exceed device capacity %d pages", len(keys), dev.Pages())
	}
	sorted := make([]uint64, len(keys))
	copy(sorted, keys)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("serve: duplicate key %d in shard key set", sorted[i])
		}
	}
	fs := host.NewFS(dev, cfg.Barrier)
	file, err := fs.Create("shard", int64(len(sorted)))
	if err != nil {
		return nil, err
	}
	st := &Store{
		dom:      dom,
		dev:      dev,
		fs:       fs,
		file:     file,
		slots:    make(map[uint64]int64, len(sorted)),
		vers:     make(map[uint64]uint64, len(sorted)),
		real:     cfg.RealBytes,
		stripes:  make([]*sim.Resource, storeStripes),
		syncDone: sim.NewQueue(dom.Engine()),
	}
	for i := range st.stripes {
		st.stripes[i] = sim.NewResource(dom.Engine(), 1)
	}
	for i, k := range sorted {
		st.slots[k] = int64(i)
	}
	if err := st.preload(sorted); err != nil {
		return nil, err
	}
	return st, nil
}

// preload installs the initial version-0 image of every key instantly
// (virtual time does not advance), in chunks to bound the staging buffer.
func (st *Store) preload(sorted []uint64) error {
	const chunk = 256
	ps := st.file.PageSize()
	var buf []byte
	if st.real {
		buf = make([]byte, chunk*ps)
	}
	for off := 0; off < len(sorted); off += chunk {
		n := len(sorted) - off
		if n > chunk {
			n = chunk
		}
		var data []byte
		if st.real {
			data = buf[:n*ps]
			for i := 0; i < n; i++ {
				storage.BuildPageImage(data[i*ps:(i+1)*ps], sorted[off+i], 0)
			}
		}
		if err := st.file.Preload(int64(off), int64(n), data); err != nil {
			return err
		}
	}
	return nil
}

// Domain returns the shard's simulation domain.
func (st *Store) Domain() *sim.Domain { return st.dom }

// Device returns the shard's device.
func (st *Store) Device() storage.Device { return st.dev }

// Keys returns the shard's key count.
func (st *Store) Keys() int { return len(st.slots) }

// Counters returns cumulative put/get/fdatasync tallies.
func (st *Store) Counters() (puts, gets, syncs int64) { return st.puts, st.gets, st.syncs }

// SetSlowdown injects extra service latency before every subsequent store
// operation — the chaos plane's replica brownout knob. Call it from the
// store's own domain (schedule an event there); zero restores normal speed.
func (st *Store) SetSlowdown(d time.Duration) { st.slowdown = d }

// Version returns the store's last durably acked version of key (0 for a
// never-written resident key). It is a pure memory read for catch-up
// planning; serving reads go through Get.
func (st *Store) Version(key uint64) uint64 { return st.vers[key] }

// Put durably writes the next version of key and returns it. The version
// is assigned under the key's stripe lock, so concurrent Puts to one key
// serialize and versions land on media in ascending order. The returned
// version is acknowledged: the write and its covering fdatasync completed.
func (st *Store) Put(p *sim.Proc, key uint64) (uint64, error) {
	slot, ok := st.slots[key]
	if !ok {
		return 0, fmt.Errorf("serve: put of unknown key %d", key)
	}
	lock := st.stripes[mix64(key)%storeStripes]
	lock.Acquire(p, 1)
	defer lock.Release(1)
	if st.slowdown > 0 {
		p.Sleep(st.slowdown)
	}
	version := st.vers[key] + 1
	if err := st.writeLocked(p, key, slot, version); err != nil {
		return 0, err
	}
	return version, nil
}

// PutVersion durably writes key at a caller-assigned version — the replica
// half of a quorum write, where the group (not the replica) is the version
// authority. It is idempotent: a version at or below the replica's durable
// state is acknowledged without device traffic, so a retried quorum attempt
// or a catch-up replay of an already-applied write costs nothing and never
// regresses the media. The applied version is whatever is durable afterwards
// (max of the replica's state and ver).
func (st *Store) PutVersion(p *sim.Proc, key uint64, ver uint64) error {
	slot, ok := st.slots[key]
	if !ok {
		return fmt.Errorf("serve: put of unknown key %d", key)
	}
	lock := st.stripes[mix64(key)%storeStripes]
	lock.Acquire(p, 1)
	defer lock.Release(1)
	if st.slowdown > 0 {
		p.Sleep(st.slowdown)
	}
	if st.vers[key] >= ver {
		return nil // already durable at this version or newer
	}
	return st.writeLocked(p, key, slot, ver)
}

// writeLocked performs the write + group-commit under the caller-held
// stripe lock and records the new durable version.
func (st *Store) writeLocked(p *sim.Proc, key uint64, slot int64, version uint64) error {
	var data []byte
	if st.real {
		data = make([]byte, st.file.PageSize())
		storage.BuildPageImage(data, key, version)
	}
	if err := st.file.WritePages(p, slot, 1, data); err != nil {
		return err
	}
	st.writeGen++
	if err := st.syncThrough(p, st.writeGen); err != nil {
		return err
	}
	if version > st.vers[key] {
		st.vers[key] = version
	}
	st.puts++
	return nil
}

// Get reads the key's page and returns its current version. A key outside
// the shard's key space returns found=false without device traffic (the
// gateway's bloom filter makes this path rare, but false positives land
// here). In real-bytes mode the version comes from the page image itself
// (a corrupt image is an error — serving never papers over a failed
// checksum); in timing mode the device read still happens but the version
// is tracked in memory.
func (st *Store) Get(p *sim.Proc, key uint64) (version uint64, found bool, err error) {
	slot, ok := st.slots[key]
	if !ok {
		return 0, false, nil
	}
	if st.slowdown > 0 {
		p.Sleep(st.slowdown)
	}
	var buf []byte
	if st.real {
		buf = make([]byte, st.file.PageSize())
	}
	if err := st.file.ReadPages(p, slot, 1, buf); err != nil {
		return 0, false, err
	}
	st.gets++
	if !st.real {
		return st.vers[key], true, nil
	}
	id, version, ok := storage.ParsePageImage(buf)
	if !ok || id != key {
		return 0, false, fmt.Errorf("serve: corrupt page image for key %d", key)
	}
	return version, true, nil
}

// syncThrough blocks until a completed fdatasync covers write generation
// gen. The first waiter of a round leads the sync; everyone whose write
// preceded the leader's snapshot is acknowledged by the same device round
// trip — classic group commit.
func (st *Store) syncThrough(p *sim.Proc, gen uint64) error {
	for st.syncGen < gen {
		if st.syncing {
			st.syncDone.Wait(p)
			continue
		}
		st.syncing = true
		covered := st.writeGen
		err := st.file.Fdatasync(p)
		st.syncing = false
		st.syncDone.WakeAll()
		if err != nil {
			return err
		}
		st.syncs++
		if covered > st.syncGen {
			st.syncGen = covered
		}
	}
	return nil
}

// CrashRead reads the key's page image after a crash and reboot, returning
// the on-media version. ok is false when the image fails its checksum (a
// torn page) or carries the wrong key. Only meaningful in real-bytes mode.
func (st *Store) CrashRead(p *sim.Proc, key uint64) (version uint64, ok bool, err error) {
	slot, present := st.slots[key]
	if !present {
		return 0, false, fmt.Errorf("serve: crash read of unknown key %d", key)
	}
	buf := make([]byte, st.file.PageSize())
	if err := st.file.ReadPages(p, slot, 1, buf); err != nil {
		return 0, false, err
	}
	id, version, ok := storage.ParsePageImage(buf)
	if !ok || id != key {
		return 0, false, nil
	}
	return version, true, nil
}
